// Package mob4x4 is a from-scratch reproduction of "Internet Mobility
// 4x4" (Stuart Cheshire and Mary Baker, SIGCOMM '96): the 4x4 grid of
// Mobile IP routing choices, the mechanism that implements every useful
// cell of it, and the decision machinery that picks the best cell per
// correspondent — all running over a deterministic simulated
// internetwork built with nothing but the Go standard library.
//
// Layout:
//
//   - internal/core — the paper's contribution: the grid, its
//     classification, the delivery-method cache and start strategies,
//     the port heuristics and the correspondent-side policy.
//   - internal/mobileip — home agent, mobile node, smart correspondent,
//     foreign agent, registration protocol.
//   - internal/{vtime,netsim,ipv4,arp,stack,udp,icmp,encap,tcplite,
//     dnssim,dhcpsim,icmphost,inet} — the substrates: virtual time,
//     simulated link layer, IPv4 with fragmentation, ARP with proxying,
//     a per-host stack with the paper's route-lookup override, three
//     tunnel codecs, a miniature TCP, name/lease services and a
//     topology builder.
//   - internal/experiments — the scenario and measurement code that
//     regenerates every figure; bench_test.go in this directory exposes
//     one benchmark per figure/table.
//   - cmd/mob4x4, cmd/gridshow — CLI front ends.
//   - examples/ — runnable walkthroughs of the public behavior.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results.
package mob4x4
