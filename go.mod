module mob4x4

go 1.22
