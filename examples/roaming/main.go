// Roaming: a long-lived interactive session (think telnet) that survives
// the mobile host moving between three networks — the connection is keyed
// to the permanent home address, so "putting a laptop computer to sleep
// while moving it from place to place does not necessarily break
// connections" (Section 2). A second session keyed to the temporary
// address breaks on the first move, illustrating the Out-DT trade-off.
package main

import (
	"fmt"

	"mob4x4/internal/core"
	"mob4x4/internal/experiments"
	"mob4x4/internal/tcplite"
)

func main() {
	s := experiments.Build(experiments.Options{
		Seed:     7,
		Selector: core.NewSelector(core.StartOptimistic),
	})
	fmt.Println("topology up; mobile host at home:", s.MN.Home())

	// Echo ("remote login") server on the distant correspondent.
	if _, err := s.CHFarTCP.Listen(23, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		panic(err)
	}

	careOf := s.Roam()
	fmt.Printf("roamed to %s (care-of %s), registered=%v\n\n", s.VisitA.Name, careOf, s.MN.Registered())

	type session struct {
		conn   *tcplite.Conn
		echoes int
		dead   bool
	}
	open := func(name string) *session {
		addr := s.MN.Home()
		if name == "temporary" {
			addr = s.MN.CareOf()
		}
		conn, err := s.MHTCP.Dial(addr, s.CHFar.FirstAddr(), 23)
		if err != nil {
			panic(err)
		}
		sess := &session{conn: conn}
		conn.OnData = func(p []byte) { sess.echoes++ }
		conn.OnError = func(e error) {
			sess.dead = true
			fmt.Printf("  [%s session] DEAD at t=%v: %v\n", name, s.Net.Sim.Now(), e)
		}
		conn.OnEstablished = func() {
			fmt.Printf("  [%s session] established (endpoint %s)\n", name, addr)
		}
		tick := func() {}
		tick = func() {
			if sess.dead || conn.State() == tcplite.StateClosed {
				return
			}
			_ = conn.Write([]byte("k"))
			s.Net.Sched().After(1e9, tick)
		}
		s.Net.Sched().After(1e9, tick)
		return sess
	}

	homeSess := open("home")
	tempSess := open("temporary")
	s.Net.RunFor(5e9)

	moves := []func() string{
		func() string { s.RoamB(); return s.VisitB.Name },
		func() string { s.Roam(); return s.VisitA.Name },
		func() string { s.RoamB(); return s.VisitB.Name },
	}
	for i, move := range moves {
		hBefore, tBefore := homeSess.echoes, tempSess.echoes
		where := move()
		s.Net.RunFor(10e9)
		fmt.Printf("move %d -> %s: home-session +%d echoes, temp-session +%d echoes (care-of now %s)\n",
			i+1, where, homeSess.echoes-hBefore, tempSess.echoes-tBefore, s.MN.CareOf())
	}

	// Let the stranded temporary-address connection exhaust its
	// retransmission budget.
	s.Net.RunFor(60e9)
	fmt.Printf("\nfinal: home session alive=%v (%d echoes, %dB in), temp session alive=%v (%d echoes)\n",
		!homeSess.dead, homeSess.echoes, homeSess.conn.BytesIn, !tempSess.dead, tempSess.echoes)
	fmt.Println("the home-address session survived every move; the temporary-address session did not.")
}
