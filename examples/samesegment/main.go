// Samesegment: Row C. A mobile host visits an institution and talks to a
// server on the very network it is plugged into. With a conventional
// setup every packet from the server would detour through the (possibly
// distant) home agent; with In-DH/Out-DH the packets never touch a
// router — "especially [valuable] if the visited institution is in Japan
// and the home agent is at MIT" (Section 5).
package main

import (
	"fmt"

	"mob4x4/internal/core"
	"mob4x4/internal/experiments"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/udp"
)

func main() {
	// Put the home network 8 router hops away to make the detour hurt.
	run := func(smart bool) {
		s := experiments.Build(experiments.Options{
			Seed: 3, HADistance: 8,
			CHAware: smart, CHDecap: smart,
			Selector: core.NewSelector(core.StartOptimistic),
		})
		careOf := s.Roam()
		if smart {
			// The local server knows its visitor (it saw the care-of
			// address on its own segment).
			s.CHNearC.LearnBinding(core.Binding{Home: s.MN.Home(), CareOf: careOf}, 0)
		}
		p := s.PingFrom(s.CHNearIC, s.CHNear, s.MN.Home(), 30*experiments.Second)
		mode := "conventional (In-IE via distant HA)"
		if smart {
			mode = "same-segment aware (In-DH)"
		}
		fmt.Printf("%-36s delivered=%v rtt=%-8v hops=%d\n  path: %s\n",
			mode, p.Delivered, p.RTT, p.RequestHops, p.RequestPath)
	}
	fmt.Println("visiting server <-> mobile guest on the same segment:")
	run(false)
	run(true)

	// And the guest's own traffic to the local server needs no Mobile IP
	// either: the mobile node detects the on-link destination and uses
	// Out-DH automatically.
	s := experiments.Build(experiments.Options{Seed: 3, HADistance: 8,
		Selector: core.NewSelector(core.StartPessimistic)})
	s.Roam()
	got := 0
	if _, err := s.CHNear.OpenUDP(ipv4.Zero, udp.PortHTTP, func(src ipv4.Addr, sp uint16, dst ipv4.Addr, p []byte) {
		got++
	}); err != nil {
		panic(err)
	}
	sock, err := s.MHHost.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		panic(err)
	}
	_ = sock.SendToFrom(s.MN.Home(), s.CHNear.FirstAddr(), udp.PortHTTP, []byte("local"))
	s.Net.RunFor(2e9)
	fmt.Printf("\nguest -> local server, home-sourced: delivered=%d, modes used: Out-DH=%d Out-IE=%d\n",
		got, s.MN.Stats.OutByMode[core.OutDH], s.MN.Stats.OutByMode[core.OutIE])
}
