// Zeroconf: everything Section 2 says about arriving on a strange
// network, in one run. The mobile host lands on a visited segment knowing
// nothing. It acquires a care-of address by DHCP, registers it with its
// home agent, publishes it as a DNS CA record for smart correspondents,
// and is immediately reachable at its permanent home address. Then it
// hears a foreign-agent beacon on another segment and attaches through
// the agent instead — the IETF-style alternative.
package main

import (
	"fmt"

	"mob4x4/internal/dnssim"
	"mob4x4/internal/experiments"
	"mob4x4/internal/icmp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

func main() {
	s := experiments.Build(experiments.Options{Seed: 12, WithServices: true})
	const name = "mh.mosquitonet.stanford.edu"

	// 1. Arrive with nothing and DHCP a care-of address.
	fmt.Println("arriving on visited network with no configuration...")
	addr, err := s.RoamDHCP()
	if err != nil {
		panic(err)
	}
	fmt.Printf("  DHCP lease: %s, registered with home agent: %v\n", addr, s.MN.Registered())

	// 2. Publish the care-of address in the DNS (the paper's extension).
	resolver, err := dnssim.NewResolver(s.MHHost, s.Net.Host("dns").FirstAddr())
	if err != nil {
		panic(err)
	}
	resolver.UpdateCA(name, addr, 300, func(err error) {
		fmt.Printf("  DNS CA record published: err=%v\n", err)
	})
	s.Net.RunFor(3e9)

	// 3. Reachable at the home address immediately.
	var rtt string
	s.CHFarIC.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) {
		rtt = "ok"
		fmt.Printf("  ping %s (home address) answered from %s\n", s.MN.Home(), src)
	}
	_ = s.CHFarIC.Ping(ipv4.Zero, s.MN.Home(), 1, 1, nil)
	s.Net.RunFor(3e9)
	if rtt == "" {
		fmt.Println("  ping failed!")
	}

	// 4. A smart correspondent resolves the name and sees both records.
	chRes, err := dnssim.NewResolver(s.CHFar, s.Net.Host("dns").FirstAddr())
	if err != nil {
		panic(err)
	}
	chRes.Query(name, func(recs []dnssim.Record, err error) {
		for _, r := range recs {
			fmt.Printf("  DNS %s -> %s %s (ttl %d)\n", name, r.Type, r.Addr, r.TTL)
		}
		if a, isCA, ok := dnssim.BestAddr(recs); ok && isCA {
			fmt.Printf("  smart correspondent may now send directly to %s (In-DE)\n", a)
		}
	})
	s.Net.RunFor(3e9)

	// 5. Move on: a foreign agent beacons on visited LAN B; the node
	// discovers it and re-attaches with zero configuration again.
	faHost := s.Net.AddHost("fa", s.VisitB)
	s.Net.ComputeRoutes()
	fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{})
	if err != nil {
		panic(err)
	}
	stopAdv := fa.Advertise(1e9)
	defer stopAdv()
	stopListen, err := s.MN.ListenForAgents()
	if err != nil {
		panic(err)
	}
	defer stopListen()

	fmt.Println("\nmoving to the next network (foreign agent territory)...")
	s.MN.Detach()
	s.MHIfc.Attach(s.VisitB.Seg)
	s.Net.RunFor(10e9)
	fmt.Printf("  discovered agent %s, registered=%v, care-of=%s (the agent's address)\n",
		fa.Addr(), s.MN.Registered(), s.MN.CareOf())

	done := false
	s.CHFarIC.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) {
		done = true
		fmt.Printf("  ping at the new location answered from %s, relayed by the agent\n", src)
	}
	_ = s.CHFarIC.Ping(ipv4.Zero, s.MN.Home(), 1, 2, nil)
	s.Net.RunFor(3e9)
	if !done {
		fmt.Println("  ping failed!")
	}
}
