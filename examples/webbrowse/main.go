// Webbrowse: the Row D argument. Short HTTP-like fetches are made twice —
// once through full Mobile IP (endpoint = home address, every reply
// triangle-routed via the home agent) and once with the paper's port-80
// heuristic choosing Out-DT (plain IP from the care-of address). The
// heuristic wins on both latency and backbone load; the price is that a
// fetch in flight during a move would break — which the browser's
// 'reload' button absorbs.
package main

import (
	"fmt"

	"mob4x4/internal/experiments"
)

func main() {
	const fetches = 10
	mip := experiments.RunWebBrowse(42, fetches, true)
	dt := experiments.RunWebBrowse(42, fetches, false)

	fmt.Println("Row D — web browsing from a visited network, 8KiB pages:")
	for _, r := range []experiments.WebBrowseResult{mip, dt} {
		fmt.Printf("  %-9s completed %2d/%2d   total %-10v  backbone bytes %d\n",
			r.Mode, r.Completed, r.Fetches, r.TotalTime, r.BackboneBytes)
	}
	fmt.Printf("\nOut-DT speedup: %.2fx, backbone savings: %.1f%%\n",
		float64(mip.TotalTime)/float64(dt.TotalTime),
		100*(1-float64(dt.BackboneBytes)/float64(mip.BackboneBytes)))
	fmt.Println("\"In many cases the user may prefer the small risk of an occasional")
	fmt.Println(" incomplete image, rather than the large cost of slowing down all Web")
	fmt.Println(" browsing with the overhead of using Mobile IP for every connection.\"")
}
