// Quickstart: build a small internet, start a home agent, roam a mobile
// host to a visited network, and watch a conventional correspondent ping
// it at its home address — the complete Figure 1 flow in one file.
package main

import (
	"fmt"

	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

func main() {
	const ms = vtime.Duration(1e6)

	// 1. Topology: home and visited LANs joined across a tiny backbone.
	net := inet.New(2026)
	home := net.AddLAN("home", "36.1.1.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	visit := net.AddLAN("visit", "128.9.1.0/24", netsim.SegmentOpts{Latency: 1 * ms})
	far := net.AddLAN("far", "17.5.0.0/24", netsim.SegmentOpts{Latency: 1 * ms})

	homeGW := net.AddRouter("homeGW")
	visitGW := net.AddRouter("visitGW")
	farGW := net.AddRouter("farGW")
	bb := net.AddRouter("backbone")
	net.AttachRouter(homeGW, home)
	net.AttachRouter(visitGW, visit)
	net.AttachRouter(farGW, far)
	net.Link(homeGW, bb, 5*ms)
	net.Link(visitGW, bb, 5*ms)
	net.Link(farGW, bb, 5*ms)

	// 2. Hosts: a home agent, a mobile host, a correspondent.
	haHost := net.AddHost("ha", home)
	mhHost := net.AddHost("mh", home)
	chHost := net.AddHost("ch", far)
	net.ComputeRoutes()

	ha, err := mobileip.NewHomeAgent(haHost, haHost.Ifaces()[0], mobileip.HomeAgentConfig{})
	if err != nil {
		panic(err)
	}
	mhIfc := mhHost.Ifaces()[0]
	icmphost.Install(mhHost) // answer pings
	mn, err := mobileip.NewMobileNode(mhHost, mhIfc, mobileip.MobileNodeConfig{
		Home:       mhIfc.Addr(),
		HomePrefix: home.Prefix,
		HomeAgent:  haHost.Ifaces()[0].Addr(),
	})
	if err != nil {
		panic(err)
	}

	// 3. Roam: attach to the visited LAN, take a care-of address there,
	// and register it with the home agent.
	careOf := visit.NextAddr()
	mn.MoveTo(visit.Seg, careOf, visit.Prefix, visit.Gateway)
	net.RunFor(2e9)
	fmt.Printf("mobile host: home=%s care-of=%s registered=%v (HA bindings: %d)\n",
		mn.Home(), mn.CareOf(), mn.Registered(), ha.Bindings())

	// 4. The correspondent pings the PERMANENT home address; the home
	// agent captures and tunnels; the reply comes back directly.
	chIC := icmphost.Install(chHost)
	chIC.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) {
		fmt.Printf("echo reply seq=%d from %s at t=%v\n", msg.Seq, src, net.Sim.Now())
	}
	for seq := uint16(1); seq <= 3; seq++ {
		_ = chIC.Ping(ipv4.Zero, mn.Home(), 1, seq, []byte("hello"))
		net.RunFor(1e9)
	}

	// 5. The packet trail: tunnel entry and exit are visible in the trace.
	fmt.Println("\ntrace (tunnel events only):")
	for _, e := range net.Sim.Trace.Events() {
		if e.Kind == netsim.EventEncap || e.Kind == netsim.EventDecap {
			fmt.Println(" ", e)
		}
	}
}
