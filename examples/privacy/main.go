// Privacy: the Out-IE motivation from Section 4 — "In some situations,
// mobile users may not wish to reveal their current location to the
// correspondent host." With privacy mode on, every packet is tunneled via
// the home agent even though cheaper direct modes are available, and the
// correspondent's side of the network only ever sees the home address.
package main

import (
	"fmt"
	"strings"

	"mob4x4/internal/core"
	"mob4x4/internal/experiments"
	"mob4x4/internal/netsim"
)

func main() {
	run := func(privacy bool) {
		// Without privacy: a mobile-aware correspondent learns the
		// binding from the home agent's notices and exchanges packets
		// directly — the care-of address appears in the outer headers
		// crossing the correspondent's border router. With privacy:
		// notices stay off and the mobile host pins everything to
		// Out-IE, so only the home address is ever visible there.
		s := experiments.Build(experiments.Options{
			Seed:     5,
			Notices:  !privacy,
			CHAware:  !privacy,
			CHDecap:  !privacy,
			Selector: core.NewSelector(core.StartOptimistic),
		})
		s.Roam()
		s.MN.SetPrivacy(privacy)
		careOf := s.MN.CareOf().String()
		// Two pings: the first teaches the correspondent (if aware),
		// the second uses whatever mode it learned.
		s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*experiments.Second)

		p := s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*experiments.Second)

		// Did the care-of address ever appear in traffic near the
		// correspondent (at its border router)?
		careOfVisible := false
		for _, e := range s.Net.Sim.Trace.Events() {
			if e.Where == "farGW" && e.Kind == netsim.EventForward &&
				strings.Contains(e.Detail, careOf) {
				careOfVisible = true
			}
		}

		label := "privacy OFF (optimistic, direct replies)"
		if privacy {
			label = "privacy ON  (everything via home agent)"
		}
		fmt.Printf("%s\n", label)
		fmt.Printf("  reply delivered=%v from %s\n  reply path: %s\n", p.Delivered, p.ReplySource, p.ReplyPath)
		fmt.Printf("  care-of address visible near the correspondent: %v\n\n", careOfVisible)
	}
	run(false)
	run(true)
	fmt.Println("with privacy on, the correspondent's network never sees the care-of address;")
	fmt.Println("the cost is indirect delivery of every packet (Out-IE, Section 4).")
}
