// Command mob4x4 runs the reproduction experiments for "Internet Mobility
// 4x4" (Cheshire & Baker, SIGCOMM '96) and prints the tables and paths
// that regenerate each figure.
//
// Usage:
//
//	mob4x4 [-seed N] [-parallel N] [-shards N] [-metrics | -metrics-json]
//	       [-pcap DIR] [-cpuprofile FILE] [-memprofile FILE] <experiment>
//
// Flags may also follow the experiment name (mob4x4 fig10 -metrics).
// -parallel runs independent trials concurrently; -shards parallelizes
// the region shards inside each fleet trial (both byte-identical for any
// value, and freely combined). -pcap writes the packet captures of
// capture-aware experiments (httpgrid) into the given directory as
// classic .pcap files. -cpuprofile/-memprofile write pprof profiles for
// the run.
// With -metrics (text) or -metrics-json, the run's metrics registries
// are dumped after the experiment output; grid/fig10 instead emit the
// machine-readable 4x4 grid report (deterministic JSON, byte-identical
// for any seed and worker count), and chaos emits each trial's final
// snapshot plus the 2s-period drop-counter time series.
//
// Experiments:
//
//	fig1        basic Mobile IP: asymmetric routing via the home agent
//	fig2        source-address filtering drops Out-DH (filter on)
//	fig3        alias for fig2 with the Out-IE row highlighted
//	fig4        triangle routing vs home-agent distance sweep
//	fig5        smart correspondent: ICMP + DNS care-of discovery
//	formats     packet formats of Figures 6-9 (s/d/S/D table)
//	grid        the 4x4 matrix of Figure 10 (see also cmd/gridshow)
//	fig10       alias for grid
//	overhead    encapsulation size overhead and MTU crossing (Section 3.3)
//	adaptive    start-strategy comparison (Section 7.1.2)
//	durability  connection survival across movement (Section 2)
//	webbrowse   Out-DT port heuristic vs full Mobile IP (Row D)
//	fa          foreign-agent vs self-sufficient attachment (Section 2)
//	transitions correspondent-side mode transitions (Section 7.2)
//	multicast   local group join vs home-agent relay (Section 6.4)
//	trace       traceroute to the home address, at home vs roamed
//	httpgrid    unmodified net/http + DNS over the socket facade in all
//	            16 (Out,In) pairs, with per-cell pcap capture hashes
//	dualmobile  both endpoints mobile, session survives both roaming (§1)
//	asymmetry   latency/bandwidth asymmetry of the two path directions (§2)
//	savings     shared-resource load per correspondent capability (§3.2)
//	chaos       fault injection & self-healing soak (-trials N for more)
//	fleet       fleet-scale handoff storm (-nodes N -cells K -model M)
//	adversary   authenticated fleet vs attack storm (same flags as fleet)
//	routeopt    route-optimization tier: pushed binding updates, compact
//	            encapsulation, hierarchical registration (fleet flags)
//	report      every experiment rendered as one markdown document
//	all         every experiment in order
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"mob4x4/internal/experiments"
	"mob4x4/internal/metrics"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	parallel := flag.Int("parallel", 1, "worker goroutines for independent trials (grid/adaptive/durability/webbrowse/chaos/fleet/adversary/routeopt)")
	trials := flag.Int("trials", 1, "independent chaos/fleet/adversary/routeopt trials (seeds seed..seed+N-1)")
	nodes := flag.Int("nodes", 2000, "fleet: mobile node count")
	cells := flag.Int("cells", 32, "fleet: visited cell count")
	model := flag.String("model", "waypoint", "fleet: movement model (waypoint | markov)")
	shards := flag.Int("shards", 1, "fleet: worker goroutines driving the region shards inside one trial (output is byte-identical for any value; other experiments accept and ignore it)")
	metricsText := flag.Bool("metrics", false, "dump metrics after the experiment (grid/fig10: the machine-readable 4x4 report)")
	metricsJSON := flag.Bool("metrics-json", false, "like -metrics, as JSON")
	pcapDir := flag.String("pcap", "", "write capture-aware experiments' packet captures into `dir` (httpgrid)")
	cpuprofile := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to `file`")
	memprofile := flag.String("memprofile", "", "write a pprof heap profile (post-run, after GC) to `file`")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: mob4x4 [-seed N] [-parallel N] [-shards N] [-metrics | -metrics-json] [-cpuprofile FILE] [-memprofile FILE] <experiment>\nrun 'go doc mob4x4/cmd/mob4x4' for the experiment list\n")
	}
	flag.Parse()
	if flag.NArg() < 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	if flag.NArg() > 1 {
		// Allow flags after the experiment name: mob4x4 fig10 -metrics.
		_ = flag.CommandLine.Parse(flag.Args()[1:])
		if flag.NArg() != 0 {
			flag.Usage()
			os.Exit(2)
		}
	}
	wantMetrics := *metricsText || *metricsJSON

	// Profiles cover the whole dispatch below and are finalized on normal
	// exit (error paths exit hard and abandon them, like the rest of the
	// tooling expects).
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "mob4x4: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "mob4x4: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "mob4x4: memprofile: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			runtime.GC() // settle the live set so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "mob4x4: memprofile: %v\n", err)
				os.Exit(1)
			}
		}()
	}

	// Every scenario built below registers its registry here; the dump
	// after the experiment is sorted, so it is deterministic for any
	// worker count.
	var coll metrics.Collector
	if wantMetrics {
		experiments.SetCollector(&coll)
	}
	if *pcapDir != "" {
		experiments.SetCaptureDir(*pcapDir)
	}
	// Capture files land after the experiment; the note goes to stderr so
	// stdout stays byte-comparable across runs.
	writeCaptures := func() {
		if *pcapDir == "" {
			return
		}
		n, err := experiments.WriteCaptures()
		if err != nil {
			fmt.Fprintf(os.Stderr, "mob4x4: write captures: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "mob4x4: wrote %d capture(s) to %s\n", n, *pcapDir)
	}
	defer writeCaptures()
	dumpCollector := func() {
		if *metricsJSON {
			b, err := json.MarshalIndent(coll.Snapshots(), "", "  ")
			if err != nil {
				fmt.Fprintf(os.Stderr, "mob4x4: marshal metrics: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(b))
		} else if *metricsText {
			if err := coll.WriteText(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "mob4x4: write metrics: %v\n", err)
				os.Exit(1)
			}
		}
	}

	run := map[string]func(int64){
		"fig1": func(s int64) { fmt.Print(experiments.RunFig1(s).String()) },
		"fig2": func(s int64) {
			fmt.Print(experiments.RunFig2(s, true).String())
			fmt.Println()
			fmt.Print(experiments.RunFig2(s, false).String())
		},
		"fig3": func(s int64) { fmt.Print(experiments.RunFig2(s, true).String()) },
		"fig4": func(s int64) {
			// Beyond d=16 the doubled triangle path exceeds the default
			// TTL (64) and In-IE stops delivering at all — a real
			// deployment consequence of triangle routing, but beyond
			// the figure's sweep.
			fmt.Print(experiments.Fig4Table(experiments.RunFig4(s, []int{0, 1, 2, 4, 8, 16})))
		},
		"fig5":    func(s int64) { fmt.Print(experiments.RunFig5(s).String()) },
		"formats": func(int64) { fmt.Print(experiments.FormatsTable(experiments.RunFormats())) },
		"grid": func(s int64) {
			if wantMetrics {
				// The machine-readable report: deterministic JSON,
				// byte-identical for any seed and worker count.
				fmt.Print(experiments.RunGridReport(s, *parallel).JSON())
				return
			}
			grid := experiments.RunGridParallel(s, *parallel)
			fmt.Print(experiments.GridTable(grid))
			m, t, _ := experiments.GridAgreement(grid)
			fmt.Printf("agreement with paper classification: %d/%d\n", m, t)
		},
		"overhead": func(s int64) {
			fmt.Print(experiments.OverheadTable(experiments.RunOverhead(
				[]int{64, 512, 1400, 1456, 1460, 1470, 1475, 1480, 1500, 4000, 8192}, 1500)))
			fr := experiments.RunTunnelFragmentation(s, 1460)
			fmt.Printf("\nend-to-end: %dB payload crossed the backbone in %d packets plain, %d tunneled (delivered=%v)\n",
				fr.PayloadBytes, fr.PlainPackets, fr.TunnelPackets, fr.Delivered)
		},
		"adaptive": func(s int64) {
			fmt.Print(experiments.AdaptiveTable(experiments.RunAdaptiveParallel(s, true, *parallel)))
			fmt.Println()
			fmt.Print(experiments.AdaptiveTable(experiments.RunAdaptiveParallel(s, false, *parallel)))
		},
		"durability": func(s int64) {
			fmt.Print(experiments.DurabilityTable(experiments.RunDurabilityParallel(s, 3, *parallel)))
		},
		"webbrowse": func(s int64) {
			rows := experiments.RunWebBrowseParallel(s, 10, *parallel)
			fmt.Printf("Row D — web browsing, 10 sequential fetches of 8KiB:\n")
			for _, r := range rows {
				fmt.Printf("  %-9s completed=%d/%d  time=%-12v backbone=%dB\n",
					r.Mode, r.Completed, r.Fetches, r.TotalTime, r.BackboneBytes)
			}
		},
		"fa": func(s int64) {
			rows := []experiments.FAResult{
				experiments.RunForeignAgent(s, false),
				experiments.RunForeignAgent(s, true),
			}
			fmt.Print(experiments.FATable(rows))
		},
		"transitions": func(s int64) { fmt.Println(experiments.RunCorrespondentTransitions(s).String()) },
		"multicast": func(s int64) {
			rows := []experiments.MulticastResult{
				experiments.RunMulticast(s, true, 10),
				experiments.RunMulticast(s, false, 10),
			}
			fmt.Print(experiments.MulticastTable(rows))
		},
		"trace": func(s int64) {
			fmt.Print(experiments.TraceTable(experiments.RunTraceroutes(s)))
		},
		"httpgrid": func(s int64) {
			fmt.Print(experiments.HTTPGridTable(experiments.RunHTTPGridParallel(s, *parallel)))
		},
		"dualmobile": func(s int64) {
			fmt.Print(experiments.RunDualMobile(s).String())
		},
		"asymmetry": func(s int64) {
			fmt.Print(experiments.RunAsymmetry(s).String())
		},
		"savings": func(s int64) {
			fmt.Print(experiments.SavingsTable(experiments.RunSavings(s)))
		},
		"chaos": func(s int64) {
			rows := experiments.RunChaosParallel(s, *trials, *parallel)
			fmt.Print(experiments.ChaosTable(rows))
			if wantMetrics {
				for _, r := range rows {
					fmt.Printf("== chaos seed=%d ==\n", r.Seed)
					if *metricsJSON {
						os.Stdout.Write(r.Metrics.JSON())
					} else if err := r.Metrics.WriteText(os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "mob4x4: write metrics: %v\n", err)
						os.Exit(1)
					}
					err := metrics.WriteTSV(os.Stdout, r.Series,
						"ip/delivered", "drop/gilbert_elliott", "drop/blackhole", "drop/down")
					if err != nil {
						fmt.Fprintf(os.Stderr, "mob4x4: write series: %v\n", err)
						os.Exit(1)
					}
				}
			}
			for _, r := range rows {
				if len(r.Violations) > 0 {
					fmt.Fprintf(os.Stderr, "mob4x4: chaos invariant violations (reproduce: mob4x4 -seed %d chaos)\n", r.Seed)
					os.Exit(1)
				}
			}
		},
		"fleet": func(s int64) {
			spec := experiments.FleetSpec{Nodes: *nodes, Cells: *cells, Model: *model, Shards: *shards}
			rows := experiments.RunFleetParallel(s, *trials, *parallel, spec)
			fmt.Print(experiments.FleetTable(rows))
			if wantMetrics {
				for _, r := range rows {
					fmt.Printf("== fleet seed=%d ==\n", r.Seed)
					if *metricsJSON {
						os.Stdout.Write(r.Metrics.JSON())
					} else if err := r.Metrics.WriteText(os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "mob4x4: write metrics: %v\n", err)
						os.Exit(1)
					}
				}
			}
			for _, r := range rows {
				if len(r.Violations) > 0 {
					fmt.Fprintf(os.Stderr, "mob4x4: fleet invariant violations (reproduce: mob4x4 -seed %d -nodes %d -cells %d -model %s fleet)\n",
						r.Seed, *nodes, *cells, *model)
					os.Exit(1)
				}
			}
		},
		"adversary": func(s int64) {
			spec := experiments.AdversarySpec{Nodes: *nodes, Cells: *cells, Model: *model, Shards: *shards}
			rows := experiments.RunAdversaryParallel(s, *trials, *parallel, spec)
			fmt.Print(experiments.AdversaryTable(rows))
			if wantMetrics {
				for i := range rows {
					r := &rows[i]
					fmt.Printf("== adversary seed=%d (attacked run) ==\n", r.Attack.Seed)
					if *metricsJSON {
						os.Stdout.Write(r.Attack.Metrics.JSON())
					} else if err := r.Attack.Metrics.WriteText(os.Stdout); err != nil {
						fmt.Fprintf(os.Stderr, "mob4x4: write metrics: %v\n", err)
						os.Exit(1)
					}
				}
			}
			for i := range rows {
				if len(rows[i].Violations) > 0 {
					fmt.Fprintf(os.Stderr, "mob4x4: adversary invariant violations (reproduce: mob4x4 -seed %d -nodes %d -cells %d -model %s adversary)\n",
						rows[i].Attack.Seed, *nodes, *cells, *model)
					os.Exit(1)
				}
			}
		},
		"routeopt": func(s int64) {
			spec := experiments.RouteOptSpec{Nodes: *nodes, Cells: *cells, Model: *model, Shards: *shards}
			rows := experiments.RunRouteOptParallel(s, *trials, *parallel, spec)
			fmt.Print(experiments.RouteOptTable(rows))
			if wantMetrics {
				for i := range rows {
					for j := range rows[i].Trials {
						tr := &rows[i].Trials[j]
						fmt.Printf("== routeopt seed=%d config=%s ==\n", tr.Seed, tr.Name)
						if *metricsJSON {
							os.Stdout.Write(tr.Metrics.JSON())
						} else if err := tr.Metrics.WriteText(os.Stdout); err != nil {
							fmt.Fprintf(os.Stderr, "mob4x4: write metrics: %v\n", err)
							os.Exit(1)
						}
					}
				}
			}
			for i := range rows {
				if len(rows[i].Violations) > 0 {
					fmt.Fprintf(os.Stderr, "mob4x4: routeopt invariant violations (reproduce: mob4x4 -seed %d -nodes %d -cells %d -model %s routeopt)\n",
						rows[i].Trials[0].Seed, *nodes, *cells, *model)
					os.Exit(1)
				}
			}
		},
		"report": func(s int64) {
			fmt.Print(experiments.Report(s))
		},
	}
	run["fig10"] = run["grid"]
	order := []string{"fig1", "fig2", "fig4", "fig5", "formats", "grid", "overhead",
		"adaptive", "durability", "webbrowse", "fa", "transitions", "multicast", "trace",
		"httpgrid", "dualmobile", "asymmetry", "savings", "chaos"}

	if name == "all" {
		for _, exp := range order {
			run[exp](*seed)
			fmt.Println()
		}
		dumpCollector()
		return
	}
	fn, ok := run[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "mob4x4: unknown experiment %q\n", name)
		flag.Usage()
		os.Exit(2)
	}
	fn(*seed)
	switch name {
	case "grid", "fig10", "chaos", "fleet", "adversary", "routeopt":
		// These print their own metrics form above.
	default:
		dumpCollector()
	}
}
