// Command mob4x4vet runs the repository's static-analysis suite
// (internal/lint) over the module: the analyzers that machine-check the
// determinism, shard-safety and Figure 10 grid invariants the paper's
// claims rest on (run -list for the full set).
//
// Usage:
//
//	go run ./cmd/mob4x4vet ./...
//
// The only supported pattern is the whole module (./... or no argument):
// the analyzers are whole-module invariants, and loading everything is
// what keeps cross-package rules (vtime exemptions, core enum sentinels)
// sound. Diagnostics print as file:line:col and the exit status is 1
// when any invariant is violated, 2 on a load or usage error.
//
// With -json, diagnostics are emitted instead as one JSON array of
// objects {"file","line","col","analyzer","message"} on stdout — file is
// module-root-relative with forward slashes, line and col are 1-based —
// sorted by position, an empty array when the module is clean. Exit
// status is unchanged, so CI can both gate on it and archive the
// machine-readable listing.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"mob4x4/internal/lint"
)

// jsonDiag is the -json wire form of one diagnostic.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("mob4x4vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and the invariant each encodes, then exit")
	only := fs.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := fs.Bool("json", false, "emit diagnostics as a JSON array (file/line/col/analyzer/message) instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: mob4x4vet [-list] [-json] [-only a,b] [./...]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	for _, pat := range fs.Args() {
		if pat != "./..." && pat != "..." {
			fmt.Fprintf(stderr, "mob4x4vet: unsupported pattern %q (the suite always runs over the whole module; use ./...)\n", pat)
			return 2
		}
	}

	analyzers := lint.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, err := lint.ByName(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintf(stderr, "mob4x4vet: %v\n", err)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "mob4x4vet: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(wd)
	if err != nil {
		fmt.Fprintf(stderr, "mob4x4vet: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "mob4x4vet: %v\n", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintf(stderr, "mob4x4vet: %v\n", err)
		return 2
	}

	diags := lint.Run(pkgs, analyzers)
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(root, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = filepath.ToSlash(rel)
			}
			out = append(out, jsonDiag{
				File: name, Line: d.Pos.Line, Col: d.Pos.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(stderr, "mob4x4vet: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			name := d.Pos.Filename
			if rel, err := filepath.Rel(wd, name); err == nil && !strings.HasPrefix(rel, "..") {
				name = rel
			}
			fmt.Fprintf(stdout, "%s:%d:%d: %s [%s]\n", name, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "mob4x4vet: %d violation(s)\n", len(diags))
		return 1
	}
	return 0
}
