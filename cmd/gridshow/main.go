// Command gridshow prints the measured Internet Mobility 4x4 matrix —
// the reproduction of Figure 10 — together with the agreement check
// against the paper's classification.
//
// Usage:
//
//	gridshow [-seed N] [-cells]
//
// With -cells, every cell's detail (deliverability, consistency, hops,
// overhead, requirements) is listed after the matrix.
package main

import (
	"flag"
	"fmt"
	"os"

	"mob4x4/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	cells := flag.Bool("cells", false, "print per-cell detail")
	flag.Parse()

	grid := experiments.RunGrid(*seed)
	fmt.Print(experiments.GridTable(grid))

	matches, total, mismatches := experiments.GridAgreement(grid)
	fmt.Printf("\nagreement with the paper's classification: %d/%d\n", matches, total)
	for _, c := range mismatches {
		fmt.Printf("  MISMATCH %s: class=%v in=%v out=%v consistent=%v\n",
			c.Combo, c.Class, c.DeliveredIn, c.DeliveredOut, c.Consistent)
	}

	if *cells {
		fmt.Println()
		for _, c := range grid {
			fmt.Printf("%-15s class=%-15v tcp=%-5v in=%dh out=%dh +%d/%dB  requires: %s\n",
				c.Combo, c.Class, c.WorksForTCP(), c.InHops, c.OutHops,
				c.InOverheadBytes, c.OutOverheadBytes, c.Requirements)
		}
	}
	if matches != total {
		os.Exit(1)
	}
}
