package sock_test

import (
	"testing"
	"time"

	"mob4x4/internal/dnssim"
	"mob4x4/internal/sock"
	"mob4x4/internal/udp"
)

// TestDNSOverFacade performs a DNS lookup through the facade's packet
// socket using the wire helpers: the blocking client writes a query
// datagram and reads the response, while the dnssim server runs
// unmodified on the simulation side.
func TestDNSOverFacade(t *testing.T) {
	w := newWorld(41)
	defer w.d.Shutdown()

	srv, err := dnssim.NewServer(w.server)
	if err != nil {
		t.Fatal(err)
	}
	srv.AddA("mh.example", w.client.FirstAddr())

	pc, err := w.cnet.ListenPacket("udp", ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer pc.Close()

	q, err := dnssim.MarshalQuery(77, "mh.example")
	if err != nil {
		t.Fatal(err)
	}
	dst := sock.Addr{IP: w.server.FirstAddr(), Port: udp.PortDNS, Proto: "udp"}
	if _, err := pc.WriteTo(q, dst); err != nil {
		t.Fatal(err)
	}
	pc.SetReadDeadline(w.d.WallNow().Add(2 * time.Second))
	buf := make([]byte, 512)
	n, src, err := pc.ReadFrom(buf)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	if a := src.(sock.Addr); a.Port != udp.PortDNS {
		t.Fatalf("response from %v, want port %d", src, udp.PortDNS)
	}
	id, name, recs, err := dnssim.ParseResponse(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if id != 77 || name != "mh.example" {
		t.Fatalf("response id=%d name=%q", id, name)
	}
	addr, isCareOf, ok := dnssim.BestAddr(recs)
	if !ok || isCareOf || addr != w.client.FirstAddr() {
		t.Fatalf("records %+v", recs)
	}
}
