package sock

import (
	"net"

	"mob4x4/internal/tcplite"
)

// acceptWaiter is one parked Accept call.
type acceptWaiter struct {
	c    *Conn
	err  error
	done chan struct{}
}

// Listener adapts a tcplite listener to net.Listener. Facade callbacks
// are installed on each inbound connection at SYN time so no transport
// event can be missed; connections queue for Accept once established.
type Listener struct {
	d    *Driver
	addr Addr
	tl   *tcplite.Listener

	backlog []*Conn
	waiters []*acceptWaiter
	closed  bool

	// acceptCore, when set (core mode), receives each established
	// connection on the event loop instead of the backlog.
	acceptCore func(*Conn)
}

// Addr returns the listening address. A zero IP means the listener
// accepts connections addressed to any of the host's addresses (the
// §7.1.1 "let the mobility policy choose" bind); a specific IP filters
// — connections reaching the host under another address are refused,
// the way a bound socket's demux filter would.
func (l *Listener) Addr() net.Addr { return l.addr }

func (l *Listener) opErr(op string, err error) error {
	return opError(op, "tcp", l.addr, nil, err)
}

// onSYN runs on the event loop when tcplite creates a passive
// connection (SYN received). The facade conn wraps it immediately so
// the establishment callback is never missed.
func (l *Listener) onSYN(tc *tcplite.Conn) {
	if l.closed {
		tc.Abort()
		return
	}
	if !l.addr.IP.IsZero() && tc.LocalAddr() != l.addr.IP {
		// Bound listener: refuse connections addressed elsewhere.
		tc.Abort()
		return
	}
	c := newConn(l.d, tc, "tcp")
	c.tc.OnEstablished = func() {
		c.onEstablished()
		l.deliver(c)
	}
}

// deliver hands an established connection to Accept (or the core
// callback). Event-loop context.
func (l *Listener) deliver(c *Conn) {
	if l.closed {
		c.closeCore()
		return
	}
	if l.acceptCore != nil {
		l.acceptCore(c)
		return
	}
	if len(l.waiters) > 0 {
		w := l.waiters[0]
		l.waiters = l.waiters[1:]
		w.c = c
		close(w.done)
		if l.d != nil {
			l.d.noteActivity()
		}
		return
	}
	l.backlog = append(l.backlog, c)
}

// Accept implements net.Listener: blocks until a connection completes
// its handshake or the listener is closed.
func (l *Listener) Accept() (net.Conn, error) {
	var (
		c   *Conn
		err error
		w   *acceptWaiter
	)
	l.d.do(func() {
		if l.closed {
			err = l.opErr("accept", net.ErrClosed)
			return
		}
		if len(l.backlog) > 0 {
			c = l.backlog[0]
			l.backlog = l.backlog[1:]
			return
		}
		w = &acceptWaiter{done: make(chan struct{})}
		l.waiters = append(l.waiters, w)
	})
	if w == nil {
		if err != nil {
			return nil, err
		}
		return c, nil
	}
	<-w.done
	if w.err != nil {
		return nil, w.err
	}
	return w.c, nil
}

// Close implements net.Listener: stops accepting, releases blocked
// Accept calls with net.ErrClosed and closes queued-but-unaccepted
// connections.
func (l *Listener) Close() error {
	l.d.do(func() { l.closeCore() })
	return nil
}

// CloseCore is the core-layer close. Event-loop context only.
func (l *Listener) CloseCore() { l.closeCore() }

func (l *Listener) closeCore() {
	if l.closed {
		return
	}
	l.closed = true
	l.tl.Close()
	for _, w := range l.waiters {
		w.err = l.opErr("accept", net.ErrClosed)
		close(w.done)
		if l.d != nil {
			l.d.noteActivity()
		}
	}
	l.waiters = nil
	for _, c := range l.backlog {
		c.closeCore()
	}
	l.backlog = nil
}
