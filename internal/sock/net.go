package sock

import (
	"context"
	"fmt"
	"net"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
)

// Net is one host's facade entry point: Dial / Listen / ListenPacket
// with stdlib signatures, bound to the host's stack and transport —
// and therefore to its mobility policy. Source addresses for outbound
// connections and unbound datagrams are chosen by the host's policy
// table with transport context (the §7.1.2 port heuristic), exactly as
// for raw sockets; the facade adds no addressing decisions of its own.
//
// Blocking methods require a started Driver. The *Core variants run on
// the event loop (no Driver needed) for deterministic workloads.
type Net struct {
	d    *Driver
	host *stack.Host
	tcp  *tcplite.Endpoint

	nextListenPort uint16 // Listen(":0") allocator
}

// NewNet builds a facade for host. tcp may be shared with other users
// of the endpoint; d may be nil for core-only (event-loop) use.
func NewNet(d *Driver, host *stack.Host, tcp *tcplite.Endpoint) *Net {
	return &Net{d: d, host: host, tcp: tcp, nextListenPort: 50000}
}

// Driver returns the driver (nil in core-only use).
func (n *Net) Driver() *Driver { return n.d }

// Dial connects to address over network ("tcp" or "udp"). TCP dials
// block until the handshake completes or fails; UDP dials return a
// connected packet socket immediately.
func (n *Net) Dial(network, address string) (net.Conn, error) {
	raddr, err := resolveAddr(network, address)
	if err != nil {
		return nil, err
	}
	if raddr.Proto == "tcp" {
		return n.dialTCP(raddr)
	}
	return n.dialUDP(raddr)
}

// DialContext is Dial with the stdlib signature net/http's Transport
// wants. The context's cancellation is NOT honored mid-handshake: the
// facade runs on virtual time, where a context carrying a real-clock
// deadline is meaningless. Handshake failures (reset, retransmission
// timeout) still fail the dial.
func (n *Net) DialContext(_ context.Context, network, address string) (net.Conn, error) {
	return n.Dial(network, address)
}

func (n *Net) dialTCP(raddr Addr) (net.Conn, error) {
	est := make(chan error, 1)
	var (
		c   *Conn
		err error
	)
	n.d.do(func() {
		var tc *tcplite.Conn
		tc, err = n.tcp.Dial(ipv4.Zero, raddr.IP, raddr.Port)
		if err != nil {
			return
		}
		c = newConn(n.d, tc, "tcp")
		if c.established {
			est <- nil
		} else {
			c.estWaiters = append(c.estWaiters, est)
		}
	})
	if err != nil {
		return nil, opError("dial", "tcp", nil, raddr, err)
	}
	if e := <-est; e != nil {
		return nil, opError("dial", "tcp", nil, raddr, e)
	}
	return c, nil
}

func (n *Net) dialUDP(raddr Addr) (net.Conn, error) {
	var (
		pc  *PacketConn
		err error
	)
	n.d.do(func() { pc, err = n.openPacket(Addr{Proto: "udp"}) })
	if err != nil {
		return nil, err
	}
	pc.connected, pc.peer = true, raddr
	return pc, nil
}

// DialCore opens a TCP facade connection from the event loop: returns
// immediately with the handshake in flight. Install SetEvent (or poll
// IsEstablished / Err) to learn the outcome. Event-loop context only.
func (n *Net) DialCore(raddr Addr) (*Conn, error) {
	tc, err := n.tcp.Dial(ipv4.Zero, raddr.IP, raddr.Port)
	if err != nil {
		return nil, opError("dial", "tcp", nil, raddr, err)
	}
	return newConn(n.d, tc, "tcp"), nil
}

// IsEstablished reports handshake completion. Event-loop context only.
func (c *Conn) IsEstablished() bool { return c.established }

// Err returns the sticky connection error (nil while healthy).
// Event-loop context only.
func (c *Conn) Err() error { return c.connErr }

// Listen announces on a TCP address. Port 0 allocates one.
func (n *Net) Listen(network, address string) (net.Listener, error) {
	laddr, err := resolveAddr(network, address)
	if err != nil {
		return nil, err
	}
	if laddr.Proto != "tcp" {
		return nil, net.UnknownNetworkError(network)
	}
	var l *Listener
	n.d.do(func() { l, err = n.listenCore(laddr, nil) })
	if err != nil {
		return nil, err
	}
	return l, nil
}

// ListenCore is Listen from the event loop: each established inbound
// connection is handed to accept instead of an Accept queue.
// Event-loop context only.
func (n *Net) ListenCore(laddr Addr, accept func(*Conn)) (*Listener, error) {
	laddr.Proto = "tcp"
	return n.listenCore(laddr, accept)
}

func (n *Net) listenCore(laddr Addr, accept func(*Conn)) (*Listener, error) {
	l := &Listener{d: n.d, addr: laddr, acceptCore: accept}
	if laddr.Port == 0 {
		for tries := 0; ; tries++ {
			if tries > 65535 {
				return nil, fmt.Errorf("sock: no free listen port")
			}
			n.nextListenPort++
			if n.nextListenPort < 50000 {
				n.nextListenPort = 50000
			}
			tl, err := n.tcp.Listen(n.nextListenPort, l.onSYN)
			if err == nil {
				l.addr.Port = n.nextListenPort
				l.tl = tl
				return l, nil
			}
		}
	}
	tl, err := n.tcp.Listen(laddr.Port, l.onSYN)
	if err != nil {
		return nil, opError("listen", "tcp", laddr, nil, err)
	}
	l.tl = tl
	return l, nil
}

// ListenPacket binds a UDP facade socket. An empty or zero host leaves
// the socket unbound — sends resolve their source through the mobility
// policy per destination (§7.1.1/§7.1.2); a specific host pins it.
func (n *Net) ListenPacket(network, address string) (net.PacketConn, error) {
	laddr, err := resolveAddr(network, address)
	if err != nil {
		return nil, err
	}
	if laddr.Proto != "udp" {
		return nil, net.UnknownNetworkError(network)
	}
	var pc *PacketConn
	n.d.do(func() { pc, err = n.openPacket(laddr) })
	if err != nil {
		return nil, err
	}
	return pc, nil
}

// ListenPacketCore is ListenPacket from the event loop. Event-loop
// context only.
func (n *Net) ListenPacketCore(laddr Addr) (*PacketConn, error) {
	laddr.Proto = "udp"
	return n.openPacket(laddr)
}

func (n *Net) openPacket(laddr Addr) (*PacketConn, error) {
	pc := &PacketConn{d: n.d}
	us, err := n.host.OpenUDP(laddr.IP, laddr.Port, pc.onDatagram)
	if err != nil {
		return nil, opError("listen", "udp", laddr, nil, err)
	}
	pc.us = us
	pc.local = Addr{IP: laddr.IP, Port: us.Port(), Proto: "udp"}
	return pc, nil
}
