package sock

import (
	"net"
	"time"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// dgramQueueMax bounds the receive queue of a facade packet conn; like
// a kernel socket buffer, arrivals past the bound are dropped (newest
// dropped — a deterministic policy, unlike a race between reader and
// interrupt).
const dgramQueueMax = 512

// dgram is one queued datagram.
type dgram struct {
	payload []byte
	src     Addr
}

// pcWaiter is one parked ReadFrom call.
type pcWaiter struct {
	p    []byte
	n    int
	src  Addr
	err  error
	done chan struct{}
}

// PacketConn adapts a stack UDP socket to net.PacketConn — and to
// net.Conn when connected to a peer (ListenPacket yields the former,
// Dial the latter; same object, stdlib UDPConn style). The socket is
// bound to the zero address unless the caller asked otherwise, so
// every send resolves its source through the host's mobility policy
// with transport context — the §7.1.2 port heuristic applies to facade
// datagrams exactly as to raw ones.
type PacketConn struct {
	d  *Driver
	us *stack.UDPSocket

	local Addr

	connected bool
	peer      Addr

	queue   []dgram
	dropped uint64 // arrivals discarded on queue overflow
	readers []*pcWaiter
	closed  bool

	rdDeadline vtime.Time
	rdHas      bool
	rdTimer    *vtime.Timer
	wrDeadline vtime.Time
	wrHas      bool

	// event, when set (core mode), fires on the event loop whenever a
	// datagram is queued.
	event func()
}

// SetEvent installs the core-layer notification hook. Event-loop
// context only.
func (p *PacketConn) SetEvent(fn func()) { p.event = fn }

// LocalAddr implements net.PacketConn.
func (p *PacketConn) LocalAddr() net.Addr { return p.local }

// RemoteAddr returns the connected peer (zero Addr when unconnected).
func (p *PacketConn) RemoteAddr() net.Addr {
	if !p.connected {
		return Addr{Proto: "udp"}
	}
	return p.peer
}

// Dropped reports datagrams discarded because the receive queue was
// full.
func (p *PacketConn) Dropped() uint64 { return p.dropped }

// Connect pins a peer address: inbound datagrams from other sources
// are filtered out and the net.Conn methods (Read/Write) become
// meaningful, mirroring a connected kernel UDP socket.
func (p *PacketConn) Connect(addr net.Addr) error {
	a, ok := addr.(Addr)
	if !ok {
		return p.opErr("connect", net.ErrClosed)
	}
	a.Proto = "udp"
	var err error
	p.d.do(func() {
		if p.closed {
			err = p.opErr("connect", net.ErrClosed)
			return
		}
		p.connected, p.peer = true, a
	})
	return err
}

// ConnectCore is Connect from the event loop. Event-loop context only.
func (p *PacketConn) ConnectCore(a Addr) {
	a.Proto = "udp"
	p.connected, p.peer = true, a
}

func (p *PacketConn) opErr(op string, err error) error {
	var remote net.Addr
	if p.connected {
		remote = p.peer
	}
	return opError(op, "udp", p.local, remote, err)
}

// onDatagram is the stack delivery callback: copy (the payload aliases
// a pooled buffer) and queue. Event-loop context.
func (p *PacketConn) onDatagram(src ipv4.Addr, srcPort uint16, _ ipv4.Addr, payload []byte) {
	if p.closed {
		return
	}
	from := Addr{IP: src, Port: srcPort, Proto: "udp"}
	if p.connected && (from.IP != p.peer.IP || from.Port != p.peer.Port) {
		return // connected socket: filter foreign sources, like the kernel
	}
	if len(p.queue) >= dgramQueueMax {
		p.dropped++
		return
	}
	p.queue = append(p.queue, dgram{payload: append([]byte(nil), payload...), src: from})
	p.pumpReaders()
	if p.event != nil {
		p.event()
	}
}

// --- read path ---

// ReadFrom implements net.PacketConn. Short reads truncate the
// datagram (the remainder is discarded, standard UDP semantics).
func (p *PacketConn) ReadFrom(b []byte) (int, net.Addr, error) {
	var (
		n   int
		src Addr
		err error
		w   *pcWaiter
	)
	p.d.do(func() { n, src, err, w = p.startRead(b) })
	if w == nil {
		if err != nil {
			return n, nil, err
		}
		return n, src, nil
	}
	<-w.done
	if w.err != nil {
		return w.n, nil, w.err
	}
	return w.n, w.src, nil
}

// Read implements net.Conn for connected sockets.
func (p *PacketConn) Read(b []byte) (int, error) {
	n, _, err := p.ReadFrom(b)
	return n, err
}

func (p *PacketConn) startRead(b []byte) (int, Addr, error, *pcWaiter) {
	if p.closed {
		return 0, Addr{}, p.opErr("read", net.ErrClosed), nil
	}
	if len(p.queue) > 0 {
		n, src := p.popInto(b)
		return n, src, nil, nil
	}
	if p.rdHas && !p.rdDeadline.After(p.d.sched.Now()) {
		return 0, Addr{}, p.opErr("read", errTimeout), nil
	}
	w := &pcWaiter{p: b, done: make(chan struct{})}
	p.readers = append(p.readers, w)
	return 0, Addr{}, nil, w
}

func (p *PacketConn) popInto(b []byte) (int, Addr) {
	d := p.queue[0]
	p.queue = p.queue[1:]
	return copy(b, d.payload), d.src
}

// TryReadFrom is the core-layer read: pops one queued datagram without
// blocking; ok reports whether one was available. Event-loop context
// only.
func (p *PacketConn) TryReadFrom(b []byte) (n int, src Addr, ok bool, err error) {
	if p.closed {
		return 0, Addr{}, false, p.opErr("read", net.ErrClosed)
	}
	if len(p.queue) == 0 {
		return 0, Addr{}, false, nil
	}
	n, src = p.popInto(b)
	return n, src, true, nil
}

func (p *PacketConn) pumpReaders() {
	for len(p.readers) > 0 {
		w := p.readers[0]
		switch {
		case len(p.queue) > 0:
			w.n, w.src = p.popInto(w.p)
		case p.closed:
			w.err = p.opErr("read", net.ErrClosed)
		default:
			return
		}
		p.readers = p.readers[1:]
		close(w.done)
		p.d.noteActivity()
	}
}

// --- write path ---

// WriteTo implements net.PacketConn. Sends never block: the simulated
// NIC queues or drops, so only a closed socket, an expired write
// deadline or an unroutable destination fail.
func (p *PacketConn) WriteTo(b []byte, addr net.Addr) (int, error) {
	dst, ok := addr.(Addr)
	if !ok || dst.Proto != "udp" {
		return 0, p.opErr("write", net.ErrClosed)
	}
	var err error
	p.d.do(func() { err = p.writeCore(b, dst) })
	if err != nil {
		return 0, err
	}
	return len(b), nil
}

// Write implements net.Conn for connected sockets.
func (p *PacketConn) Write(b []byte) (int, error) {
	if !p.connected {
		return 0, p.opErr("write", net.ErrClosed)
	}
	return p.WriteTo(b, p.peer)
}

// WriteToCore is the core-layer send. Event-loop context only.
func (p *PacketConn) WriteToCore(b []byte, dst Addr) error { return p.writeCore(b, dst) }

func (p *PacketConn) writeCore(b []byte, dst Addr) error {
	if p.closed {
		return p.opErr("write", net.ErrClosed)
	}
	if p.wrHas && !p.wrDeadline.After(p.d.sched.Now()) {
		return p.opErr("write", errTimeout)
	}
	if err := p.us.SendTo(dst.IP, dst.Port, b); err != nil {
		return opError("write", "udp", p.local, dst, err)
	}
	return nil
}

// --- close ---

// Close implements net.PacketConn.
func (p *PacketConn) Close() error {
	p.d.do(func() { p.closeCore() })
	return nil
}

// CloseCore is the core-layer close. Event-loop context only.
func (p *PacketConn) CloseCore() { p.closeCore() }

func (p *PacketConn) closeCore() {
	if p.closed {
		return
	}
	p.closed = true
	p.us.Close()
	for _, w := range p.readers {
		w.err = p.opErr("read", net.ErrClosed)
		close(w.done)
		p.d.noteActivity()
	}
	p.readers = nil
	if p.rdTimer != nil {
		p.rdTimer.Stop()
	}
}

// --- deadlines ---

// SetDeadline implements net.PacketConn.
func (p *PacketConn) SetDeadline(t time.Time) error {
	var err error
	p.d.do(func() {
		if p.closed {
			err = p.opErr("set", net.ErrClosed)
			return
		}
		p.setReadDeadlineCore(t)
		p.setWriteDeadlineCore(t)
	})
	return err
}

// SetReadDeadline implements net.PacketConn.
func (p *PacketConn) SetReadDeadline(t time.Time) error {
	var err error
	p.d.do(func() {
		if p.closed {
			err = p.opErr("set", net.ErrClosed)
			return
		}
		p.setReadDeadlineCore(t)
	})
	return err
}

// SetWriteDeadline implements net.PacketConn.
func (p *PacketConn) SetWriteDeadline(t time.Time) error {
	var err error
	p.d.do(func() {
		if p.closed {
			err = p.opErr("set", net.ErrClosed)
			return
		}
		p.setWriteDeadlineCore(t)
	})
	return err
}

func (p *PacketConn) setReadDeadlineCore(t time.Time) {
	if t.IsZero() {
		p.rdHas = false
		if p.rdTimer != nil {
			p.rdTimer.Stop()
		}
		return
	}
	vt := vtimeOf(t)
	p.rdHas, p.rdDeadline = true, vt
	now := p.d.sched.Now()
	if !vt.After(now) {
		if p.rdTimer != nil {
			p.rdTimer.Stop()
		}
		p.expireReaders()
		return
	}
	if p.rdTimer == nil {
		p.rdTimer = p.d.sched.After(vt.Sub(now), p.onReadDeadline)
	} else {
		p.rdTimer.Reset(vt.Sub(now))
	}
}

func (p *PacketConn) setWriteDeadlineCore(t time.Time) {
	if t.IsZero() {
		p.wrHas = false
		return
	}
	// Writes never park, so no timer: the deadline is checked at each
	// send.
	p.wrHas, p.wrDeadline = true, vtimeOf(t)
}

func (p *PacketConn) onReadDeadline() {
	if p.rdHas && !p.rdDeadline.After(p.d.sched.Now()) {
		p.expireReaders()
	}
}

func (p *PacketConn) expireReaders() {
	for _, w := range p.readers {
		w.err = p.opErr("read", errTimeout)
		close(w.done)
		p.d.noteActivity()
	}
	p.readers = nil
}
