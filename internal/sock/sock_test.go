package sock_test

import (
	"errors"
	"io"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"mob4x4/internal/sock"
)

// udpPair returns two connected facade packet sockets on a fresh world.
func udpPair(t *testing.T, seed int64) (*world, *sock.PacketConn, *sock.PacketConn) {
	t.Helper()
	w := newWorld(seed)
	pc1, err := w.cnet.ListenPacket("udp", ":5001")
	if err != nil {
		t.Fatal(err)
	}
	pc2, err := w.snet.ListenPacket("udp", ":5002")
	if err != nil {
		t.Fatal(err)
	}
	p1, p2 := pc1.(*sock.PacketConn), pc2.(*sock.PacketConn)
	if err := p1.Connect(sock.Addr{IP: w.server.FirstAddr(), Port: 5002}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Connect(sock.Addr{IP: w.client.FirstAddr(), Port: 5001}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		p1.Close()
		p2.Close()
		w.d.Shutdown()
	})
	return w, p1, p2
}

func wantTimeout(t *testing.T, op string, err error) {
	t.Helper()
	var ne net.Error
	if err == nil || !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("%s: got %v, want net.Error timeout", op, err)
	}
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("%s: %v does not match os.ErrDeadlineExceeded", op, err)
	}
}

// TestUDPZeroDeadlineBlocks: with no deadline set, a read blocks across
// virtual time until a datagram arrives (it does not error or return
// early).
func TestUDPZeroDeadlineBlocks(t *testing.T) {
	w, p1, p2 := udpPair(t, 11)
	start := w.d.WallNow()
	type res struct {
		n   int
		err error
	}
	done := make(chan res, 1)
	go func() {
		buf := make([]byte, 64)
		n, err := p1.Read(buf)
		done <- res{n, err}
	}()
	if _, err := p2.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	r := <-done
	if r.err != nil || r.n != 4 {
		t.Fatalf("read: n=%d err=%v", r.n, r.err)
	}
	// The datagram crossed two LANs and a router: virtual time must
	// have advanced past the path latency while the reader blocked.
	if elapsed := w.d.WallNow().Sub(start); elapsed < 2*time.Millisecond {
		t.Fatalf("virtual elapsed %v, want >= path latency", elapsed)
	}
}

// TestUDPPastDeadlineImmediate: a deadline in the past fails the read
// without consuming any virtual time.
func TestUDPPastDeadlineImmediate(t *testing.T) {
	w, p1, _ := udpPair(t, 12)
	start := w.d.WallNow()
	p1.SetReadDeadline(start.Add(-time.Second))
	_, err := p1.Read(make([]byte, 16))
	wantTimeout(t, "read", err)
	if elapsed := w.d.WallNow().Sub(start); elapsed != 0 {
		t.Fatalf("past-deadline read advanced virtual time by %v", elapsed)
	}
}

// TestUDPDeadlineResetMidWait: a read parked under a far deadline is
// re-timed when the deadline is shortened mid-wait. The resetter is
// itself paced by virtual time (a 20ms deadline read on the peer
// socket), so the sequence is deterministic in virtual time.
func TestUDPDeadlineResetMidWait(t *testing.T) {
	w, p1, p2 := udpPair(t, 13)
	start := w.d.WallNow()
	const far = 10 * time.Second
	const near = 100 * time.Millisecond

	type res struct {
		err     error
		elapsed time.Duration
	}
	done := make(chan res, 1)
	p1.SetReadDeadline(start.Add(far))
	go func() {
		_, err := p1.Read(make([]byte, 16))
		done <- res{err, w.d.WallNow().Sub(start)}
	}()

	// Park 20ms of virtual time on the peer, then shorten the deadline.
	p2.SetReadDeadline(start.Add(20 * time.Millisecond))
	_, err := p2.Read(make([]byte, 16))
	wantTimeout(t, "pacing read", err)
	p1.SetReadDeadline(start.Add(near))

	r := <-done
	wantTimeout(t, "read", r.err)
	if r.elapsed < near || r.elapsed >= far {
		t.Fatalf("read returned after %v of virtual time, want ~%v (reset) not %v (original)", r.elapsed, near, far)
	}
}

// TestUDPConcurrentSetReadDeadline: racing SetReadDeadline calls while
// a read is blocked neither hang nor corrupt; the read times out under
// whichever deadline landed last.
func TestUDPConcurrentSetReadDeadline(t *testing.T) {
	w, p1, _ := udpPair(t, 14)
	start := w.d.WallNow()
	done := make(chan error, 1)
	p1.SetReadDeadline(start.Add(50 * time.Millisecond))
	go func() {
		_, err := p1.Read(make([]byte, 16))
		done <- err
	}()
	var wg sync.WaitGroup
	for _, d := range []time.Duration{30, 40, 60} {
		wg.Add(1)
		go func(d time.Duration) {
			defer wg.Done()
			p1.SetReadDeadline(start.Add(d * time.Millisecond))
		}(d)
	}
	wg.Wait()
	wantTimeout(t, "read", <-done)
	if elapsed := w.d.WallNow().Sub(start); elapsed > 100*time.Millisecond {
		t.Fatalf("read released after %v, beyond every candidate deadline", elapsed)
	}
}

// TestUDPWriteDeadline: writes check the write deadline even though
// they never block.
func TestUDPWriteDeadline(t *testing.T) {
	w, p1, _ := udpPair(t, 15)
	p1.SetWriteDeadline(w.d.WallNow().Add(-time.Millisecond))
	_, err := p1.Write([]byte("x"))
	wantTimeout(t, "write", err)
	p1.SetWriteDeadline(time.Time{})
	if _, err := p1.Write([]byte("x")); err != nil {
		t.Fatalf("write after clearing deadline: %v", err)
	}
}

// TestUDPTruncationAndAddr: short read buffers truncate datagrams; the
// reported source is the sender's address.
func TestUDPTruncationAndAddr(t *testing.T) {
	w := newWorld(16)
	pc1, err := w.cnet.ListenPacket("udp", ":5001")
	if err != nil {
		t.Fatal(err)
	}
	pc2, err := w.snet.ListenPacket("udp", ":5002")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		pc1.Close()
		pc2.Close()
		w.d.Shutdown()
	})
	payload := make([]byte, 100)
	for i := range payload {
		payload[i] = byte(i)
	}
	dst := sock.Addr{IP: w.client.FirstAddr(), Port: 5001, Proto: "udp"}
	if _, err := pc2.WriteTo(payload, dst); err != nil {
		t.Fatal(err)
	}
	small := make([]byte, 10)
	n, src, err := pc1.ReadFrom(small)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 || small[9] != 9 {
		t.Fatalf("truncated read: n=%d buf=%v", n, small)
	}
	a, ok := src.(sock.Addr)
	if !ok || a.IP != w.server.FirstAddr() || a.Port != 5002 {
		t.Fatalf("source addr %v, want server:5002", src)
	}
	// The truncated remainder is gone: the next read blocks (bounded
	// here by a deadline) instead of returning stale bytes.
	pc1.SetReadDeadline(w.d.WallNow().Add(10 * time.Millisecond))
	_, _, err = pc1.ReadFrom(small)
	wantTimeout(t, "second read", err)
}

// TestUDPQueueOverflow: arrivals beyond the queue bound are dropped
// deterministically (newest first) and counted.
func TestUDPQueueOverflow(t *testing.T) {
	w, p1, p2 := udpPair(t, 17)
	const sends = 600 // queue bound is 512
	for i := 0; i < sends; i++ {
		if _, err := p2.Write([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Let every datagram arrive with no reader parked (pace virtual
	// time on the peer socket, which expects no traffic), so the queue
	// bound — not reader interleaving — decides what survives.
	p2.SetReadDeadline(w.d.WallNow().Add(50 * time.Millisecond))
	if _, err := p2.Read(make([]byte, 4)); err == nil {
		t.Fatal("pacing read returned data")
	}
	buf := make([]byte, 4)
	got := 0
	p1.SetReadDeadline(w.d.WallNow().Add(time.Second))
	for {
		_, err := p1.Read(buf)
		if err != nil {
			break
		}
		got++
	}
	if got != 512 {
		t.Fatalf("received %d datagrams, want the queue bound 512", got)
	}
	w.d.Shutdown()
	if p1.Dropped() != sends-512 {
		t.Fatalf("dropped %d, want %d", p1.Dropped(), sends-512)
	}
}

// TestTCPWriteBackpressure: one large write blocks on the send backlog
// and completes once the receiver drains.
func TestTCPWriteBackpressure(t *testing.T) {
	p, err := tcpPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	const total = 256 << 10 // 4x the 64K backlog bound
	src := make([]byte, total)
	for i := range src {
		src[i] = byte(i * 7)
	}
	go func() {
		if n, err := p.C1.Write(src); err != nil || n != total {
			t.Errorf("write: n=%d err=%v", n, err)
		}
	}()
	got := make([]byte, 0, total)
	buf := make([]byte, 32<<10)
	for len(got) < total {
		n, err := p.C2.Read(buf)
		if err != nil {
			t.Fatalf("read at %d: %v", len(got), err)
		}
		got = append(got, buf[:n]...)
	}
	for i := range got {
		if got[i] != byte(i*7) {
			t.Fatalf("corruption at offset %d", i)
		}
	}
}

// TestTCPCloseWithUnreadData: closing a conn that still has undelivered
// inbound data must not wedge the peer's close handshake (the tcplite
// FIN fixes): both sides converge and later use fails cleanly.
func TestTCPCloseWithUnreadData(t *testing.T) {
	p, err := tcpPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, err := p.C1.Write(make([]byte, 8<<10)); err != nil {
		t.Fatal(err)
	}
	// C2 closes without reading; C1 closes its side too.
	if err := p.C2.Close(); err != nil {
		t.Fatal(err)
	}
	if err := p.C1.Close(); err != nil {
		t.Fatal(err)
	}
	// Post-close operations return the stable sentinel.
	if _, err := p.C2.Read(make([]byte, 4)); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("read after close: %v, want net.ErrClosed", err)
	}
	if _, err := p.C2.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close: %v, want net.ErrClosed", err)
	}
	if err := p.C2.SetDeadline(time.Time{}); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("set deadline after close: %v, want net.ErrClosed", err)
	}
}

// TestTCPHalfClose: after the peer closes, buffered data still drains
// before EOF.
func TestTCPHalfClose(t *testing.T) {
	p, err := tcpPipe()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()
	if _, err := p.C1.Write([]byte("last words")); err != nil {
		t.Fatal(err)
	}
	if err := p.C1.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(p.C2)
	if err != nil {
		t.Fatalf("drain after peer close: %v", err)
	}
	if string(got) != "last words" {
		t.Fatalf("drained %q", got)
	}
}

// TestDialRefused: dialing a port with no listener fails with the
// transport's reset error, not a hang.
func TestDialRefused(t *testing.T) {
	w := newWorld(18)
	defer w.d.Shutdown()
	_, err := w.cnet.Dial("tcp", w.serverAddr(7999))
	if err == nil {
		t.Fatal("dial to closed port succeeded")
	}
	var oe *net.OpError
	if !errors.As(err, &oe) || oe.Op != "dial" {
		t.Fatalf("dial error %v, want *net.OpError{Op: dial}", err)
	}
}

// TestListenerBoundAddrFilter: a listener bound to an address the
// connection did not target refuses it.
func TestListenerBoundAddrFilter(t *testing.T) {
	w := newWorld(19)
	defer w.d.Shutdown()
	// Bind the server's listener to the client's address: SYNs arriving
	// for the server's own address must be refused.
	ln, err := w.snet.Listen("tcp", w.client.FirstAddr().String()+":7000")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := w.cnet.Dial("tcp", w.serverAddr(7000)); err == nil {
		t.Fatal("dial to mis-bound listener succeeded")
	}
}

// TestListenerCloseUnblocksAccept: Close releases a parked Accept with
// net.ErrClosed, and closes queued connections it never handed out.
func TestListenerCloseUnblocksAccept(t *testing.T) {
	w := newWorld(20)
	defer w.d.Shutdown()
	ln, err := w.snet.Listen("tcp", ":7000")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	//mob4x4vet:allow wallclock real-time staging so Accept parks before Close; assertions hold either way
	time.Sleep(5 * time.Millisecond)
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, net.ErrClosed) {
		t.Fatalf("accept after close: %v, want net.ErrClosed", err)
	}
	// Accept on a closed listener fails immediately.
	if _, err := ln.Accept(); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("second accept: %v, want net.ErrClosed", err)
	}
}

// TestResolveAddrErrors: the facade rejects what it cannot represent.
func TestResolveAddrErrors(t *testing.T) {
	w := newWorld(21)
	defer w.d.Shutdown()
	if _, err := w.cnet.Dial("unix", "/tmp/sock"); err == nil {
		t.Fatal("unix dial succeeded")
	}
	if _, err := w.cnet.Dial("tcp", "not-an-ip:80"); err == nil {
		t.Fatal("hostname dial succeeded (facade has no resolver)")
	}
	if _, err := w.cnet.Dial("tcp", "10.2.0.1:99999"); err == nil {
		t.Fatal("oversized port accepted")
	}
	if _, err := w.cnet.Dial("tcp", "10.2.0.1"); err == nil {
		t.Fatal("missing port accepted")
	}
	if _, err := w.cnet.Listen("udp", ":7000"); err == nil {
		t.Fatal("Listen accepted udp")
	}
	if _, err := w.cnet.ListenPacket("tcp", ":7000"); err == nil {
		t.Fatal("ListenPacket accepted tcp")
	}
	a := sock.Addr{IP: w.server.FirstAddr(), Port: 80, Proto: "tcp"}
	if a.Network() != "tcp" || a.String() != w.serverAddr(80) {
		t.Fatalf("Addr rendering: %q / %q", a.Network(), a.String())
	}
}

// TestListenEphemeralPort: Listen(":0") allocates a usable port.
func TestListenEphemeralPort(t *testing.T) {
	w := newWorld(22)
	defer w.d.Shutdown()
	ln, err := w.snet.Listen("tcp", ":0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	port := ln.Addr().(sock.Addr).Port
	if port == 0 {
		t.Fatal("ephemeral listen port is 0")
	}
	acc := make(chan net.Conn, 1)
	go func() {
		c, _ := ln.Accept()
		acc <- c
	}()
	c, err := w.cnet.Dial("tcp", w.serverAddr(int(port)))
	if err != nil {
		t.Fatal(err)
	}
	c.Close()
	if s := <-acc; s != nil {
		s.Close()
	}
}

// TestPostShutdownOps: socket teardown after Driver.Shutdown runs
// inline and does not hang.
func TestPostShutdownOps(t *testing.T) {
	w, p1, _ := udpPair(t, 23)
	w.d.Shutdown()
	w.d.Shutdown() // idempotent
	if err := p1.Close(); err != nil {
		t.Fatalf("close after shutdown: %v", err)
	}
	if _, err := p1.Write([]byte("x")); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("write after close: %v", err)
	}
}
