package sock_test

import (
	"fmt"
	"net"
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/netsim"
	"mob4x4/internal/sock"
	"mob4x4/internal/sock/conntest"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

const ms = vtime.Duration(1e6)

// world is the canonical facade test topology: client and server hosts
// on separate LANs joined by a router, one facade Net each, one driver
// owning the clock.
type world struct {
	nw             *inet.Network
	d              *sock.Driver
	client, server *stack.Host
	cnet, snet     *sock.Net
}

// newWorld builds the topology and starts the driver.
func newWorld(seed int64) *world {
	nw := inet.New(seed)
	a := nw.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	b := nw.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	r := nw.AddRouter("r")
	nw.AttachRouter(r, a)
	nw.AttachRouter(r, b)
	client := nw.AddHost("client", a)
	server := nw.AddHost("server", b)
	nw.ComputeRoutes()
	d := sock.NewDriver(nw.Sched())
	w := &world{
		nw:     nw,
		d:      d,
		client: client,
		server: server,
		cnet:   sock.NewNet(d, client, tcplite.New(client)),
		snet:   sock.NewNet(d, server, tcplite.New(server)),
	}
	d.Start()
	return w
}

func (w *world) serverAddr(port int) string {
	return fmt.Sprintf("%s:%d", w.server.FirstAddr(), port)
}

// tcpPipe dials a facade TCP connection through the router.
func tcpPipe() (conntest.Pipe, error) {
	w := newWorld(7)
	ln, err := w.snet.Listen("tcp", ":7000")
	if err != nil {
		return conntest.Pipe{}, err
	}
	type result struct {
		c   net.Conn
		err error
	}
	acc := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		acc <- result{c, err}
	}()
	c1, err := w.cnet.Dial("tcp", w.serverAddr(7000))
	if err != nil {
		return conntest.Pipe{}, err
	}
	r := <-acc
	if r.err != nil {
		return conntest.Pipe{}, r.err
	}
	return conntest.Pipe{
		C1:  c1,
		C2:  r.c,
		Now: w.d.WallNow,
		Stop: func() {
			c1.Close()
			r.c.Close()
			ln.Close()
			w.d.Shutdown()
		},
	}, nil
}

// udpPipe connects two bound facade packet sockets to each other.
func udpPipe() (conntest.Pipe, error) {
	w := newWorld(9)
	pc1, err := w.cnet.ListenPacket("udp", ":5001")
	if err != nil {
		return conntest.Pipe{}, err
	}
	pc2, err := w.snet.ListenPacket("udp", ":5002")
	if err != nil {
		return conntest.Pipe{}, err
	}
	p1 := pc1.(*sock.PacketConn)
	p2 := pc2.(*sock.PacketConn)
	if err := p1.Connect(sock.Addr{IP: w.server.FirstAddr(), Port: 5002}); err != nil {
		return conntest.Pipe{}, err
	}
	if err := p2.Connect(sock.Addr{IP: w.client.FirstAddr(), Port: 5001}); err != nil {
		return conntest.Pipe{}, err
	}
	return conntest.Pipe{
		C1:       p1,
		C2:       p2,
		Now:      w.d.WallNow,
		Datagram: true,
		Stop: func() {
			p1.Close()
			p2.Close()
			w.d.Shutdown()
		},
	}, nil
}

// TestConnTCP runs the conformance suite over tcplite-backed conns.
func TestConnTCP(t *testing.T) { conntest.TestConn(t, tcpPipe) }

// TestConnUDP runs the conformance suite over UDP-backed packet conns.
func TestConnUDP(t *testing.T) { conntest.TestConn(t, udpPipe) }
