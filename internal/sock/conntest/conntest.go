// Package conntest is a stdlib-style conformance suite for net.Conn
// implementations that run on virtual time — the same shape as
// golang.org/x/net/nettest.TestConn, re-founded on a pipe-supplied
// clock so deadline cases are exact instead of flaky: "wait 100ms" is
// a virtual-time fact the suite can assert on, not a race against the
// wall clock.
//
// The facade's blocking layer is exercised exactly as an application
// would: real goroutines calling Read/Write/SetDeadline/Close
// concurrently, with the driver advancing virtual time underneath.
package conntest

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"net"
	"os"
	"sync"
	"testing"
	"time"
)

// Pipe is one bidirectional connection under test. C1 and C2 are its
// two ends (data written to one is readable on the other). Now reports
// the connection's wall clock (virtual time behind a facade); Stop
// tears the world down after the subtest.
type Pipe struct {
	C1, C2 net.Conn
	Now    func() time.Time
	Stop   func()

	// Datagram marks a message-oriented pipe: the suite keeps each
	// write within one datagram and counts messages, not byte streams.
	Datagram bool
}

// MakePipe builds a fresh Pipe. Each subtest gets its own.
type MakePipe func() (Pipe, error)

// TestConn runs the conformance suite against mp.
func TestConn(t *testing.T, mp MakePipe) {
	t.Run("BasicIO", func(t *testing.T) { run(t, mp, testBasicIO) })
	t.Run("PingPong", func(t *testing.T) { run(t, mp, testPingPong) })
	t.Run("RacyRead", func(t *testing.T) { run(t, mp, testRacyRead) })
	t.Run("PastTimeout", func(t *testing.T) { run(t, mp, testPastTimeout) })
	t.Run("PresentTimeout", func(t *testing.T) { run(t, mp, testPresentTimeout) })
	t.Run("FutureTimeout", func(t *testing.T) { run(t, mp, testFutureTimeout) })
	t.Run("CloseTimeout", func(t *testing.T) { run(t, mp, testCloseTimeout) })
}

func run(t *testing.T, mp MakePipe, f func(*testing.T, Pipe)) {
	t.Helper()
	p, err := mp()
	if err != nil {
		t.Fatalf("MakePipe: %v", err)
	}
	defer p.Stop()
	f(t, p)
}

// isTimeout reports whether err is the facade's deadline error: a
// net.Error with Timeout() true that also matches
// os.ErrDeadlineExceeded.
func isTimeout(err error) bool {
	var ne net.Error
	return err != nil && errors.As(err, &ne) && ne.Timeout() &&
		errors.Is(err, os.ErrDeadlineExceeded)
}

// checkTimeout asserts isTimeout; test-goroutine use only (Fatalf).
func checkTimeout(t *testing.T, op string, err error) {
	t.Helper()
	if !isTimeout(err) {
		t.Fatalf("%s: got %v, want a net.Error timeout matching os.ErrDeadlineExceeded", op, err)
	}
}

// testBasicIO transfers a payload C1->C2 and verifies content.
func testBasicIO(t *testing.T, p Pipe) {
	const total = 64 << 10
	chunk := 8 << 10
	if p.Datagram {
		chunk = 512 // stay safely inside one datagram
	}
	src := make([]byte, total)
	rnd := rand.New(rand.NewSource(42))
	rnd.Read(src)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for off := 0; off < total; off += chunk {
			end := off + chunk
			if end > total {
				end = total
			}
			if _, err := p.C1.Write(src[off:end]); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()

	var got bytes.Buffer
	buf := make([]byte, 64<<10)
	for got.Len() < total {
		n, err := p.C2.Read(buf)
		if err != nil {
			t.Fatalf("read after %d bytes: %v", got.Len(), err)
		}
		got.Write(buf[:n])
	}
	wg.Wait()
	if !bytes.Equal(got.Bytes(), src) {
		t.Fatalf("transfer corrupted: got %d bytes, mismatch", got.Len())
	}
}

// testPingPong bounces a counter back and forth, verifying strict
// alternation and content.
func testPingPong(t *testing.T, p Pipe) {
	const rounds = 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // echo side
		defer wg.Done()
		buf := make([]byte, 16)
		for {
			n, err := p.C2.Read(buf)
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
					t.Errorf("echo read: %v", err)
				}
				return
			}
			if _, err := p.C2.Write(buf[:n]); err != nil {
				t.Errorf("echo write: %v", err)
				return
			}
		}
	}()

	buf := make([]byte, 16)
	for i := byte(0); i < rounds; i++ {
		if _, err := p.C1.Write([]byte{i}); err != nil {
			t.Fatalf("round %d write: %v", i, err)
		}
		n, err := p.C1.Read(buf)
		if err != nil {
			t.Fatalf("round %d read: %v", i, err)
		}
		if n != 1 || buf[0] != i {
			t.Fatalf("round %d: got % x", i, buf[:n])
		}
	}
	p.C1.Close()
	p.C2.Close()
	wg.Wait()
}

// testRacyRead hammers reads with short deadlines from several
// goroutines while the peer streams data: every error must be a
// deadline timeout, and the reads must never corrupt or crash.
func testRacyRead(t *testing.T, p Pipe) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // writer side: a bounded burst keeps data flowing
		defer wg.Done()
		msg := make([]byte, 256)
		for i := 0; i < 200; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := p.C1.Write(msg); err != nil {
				return
			}
		}
	}()

	var rg sync.WaitGroup
	for g := 0; g < 4; g++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			buf := make([]byte, 1024)
			for i := 0; i < 10; i++ {
				p.C2.SetReadDeadline(p.Now().Add(2 * time.Millisecond))
				_, err := p.C2.Read(buf)
				if err != nil && !isTimeout(err) {
					t.Errorf("racy read: %v", err)
				}
			}
		}()
	}
	rg.Wait()
	close(stop)
	p.C2.Close() // unblock a writer parked on back-pressure
	p.C1.Close()
	wg.Wait()
}

// testPastTimeout: deadlines already in the past fail reads and writes
// immediately.
func testPastTimeout(t *testing.T, p Pipe) {
	c := p.C1
	c.SetDeadline(p.Now().Add(-time.Second))
	buf := make([]byte, 16)
	_, err := c.Read(buf)
	checkTimeout(t, "read", err)
	_, err = c.Write(buf)
	checkTimeout(t, "write", err)
}

// testPresentTimeout: a deadline of exactly now behaves as expired.
func testPresentTimeout(t *testing.T, p Pipe) {
	c := p.C1
	c.SetReadDeadline(p.Now())
	buf := make([]byte, 16)
	_, err := c.Read(buf)
	checkTimeout(t, "read", err)
	// Clearing the deadline lifts the failure mode.
	c.SetReadDeadline(time.Time{})
	c.SetWriteDeadline(p.Now().Add(time.Second))
	if _, err := c.Write([]byte("x")); err != nil {
		t.Fatalf("write after clearing read deadline: %v", err)
	}
}

// testFutureTimeout: a blocked read returns a timeout once virtual
// time reaches the deadline — and not a moment of virtual time before.
func testFutureTimeout(t *testing.T, p Pipe) {
	const wait = 100 * time.Millisecond
	c := p.C1
	start := p.Now()
	c.SetReadDeadline(start.Add(wait))
	buf := make([]byte, 16)
	_, err := c.Read(buf)
	checkTimeout(t, "read", err)
	if elapsed := p.Now().Sub(start); elapsed < wait {
		t.Fatalf("read returned after %v of virtual time, deadline was %v", elapsed, wait)
	}
	// The deadline is sticky: the next read fails without blocking.
	_, err = c.Read(buf)
	checkTimeout(t, "second read", err)
}

// testCloseTimeout: Close releases a read blocked under a deadline
// before that deadline expires.
func testCloseTimeout(t *testing.T, p Pipe) {
	c := p.C1
	c.SetReadDeadline(p.Now().Add(10 * time.Second))
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, 16)
		_, err := c.Read(buf)
		done <- err
	}()
	// Real-time pause so the reader actually parks before the close;
	// the assertion below is order-insensitive either way.
	//mob4x4vet:allow wallclock real-time staging of a goroutine race in a conformance-suite helper; no simulated ordering depends on it
	time.Sleep(10 * time.Millisecond)
	c.Close()
	err := <-done
	if err == nil {
		t.Fatal("read returned nil after close")
	}
	if !errors.Is(err, net.ErrClosed) && !errors.Is(err, io.EOF) {
		t.Fatalf("read after close: %v (want net.ErrClosed or EOF)", err)
	}
}
