// The conformance suite is itself load-bearing — a bug here silently
// weakens the guarantee TestConnTCP/TestConnUDP claim to prove — so it
// is exercised in-package against the reference implementation it was
// written for: the facade over the simulated stack. This is the same
// world the sock package's own conformance tests build; duplicating the
// small harness here keeps the suite's verification independent of the
// package under test's test files.
package conntest

import (
	"fmt"
	"net"
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/netsim"
	"mob4x4/internal/sock"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

const ms = vtime.Duration(1e6)

type selfWorld struct {
	d              *sock.Driver
	client, server *stack.Host
	cnet, snet     *sock.Net
}

func newSelfWorld(seed int64) *selfWorld {
	nw := inet.New(seed)
	a := nw.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	b := nw.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	r := nw.AddRouter("r")
	nw.AttachRouter(r, a)
	nw.AttachRouter(r, b)
	client := nw.AddHost("client", a)
	server := nw.AddHost("server", b)
	nw.ComputeRoutes()
	d := sock.NewDriver(nw.Sched())
	w := &selfWorld{
		d:      d,
		client: client,
		server: server,
		cnet:   sock.NewNet(d, client, tcplite.New(client)),
		snet:   sock.NewNet(d, server, tcplite.New(server)),
	}
	d.Start()
	return w
}

func selfTCPPipe() (Pipe, error) {
	w := newSelfWorld(31)
	ln, err := w.snet.Listen("tcp", ":7000")
	if err != nil {
		return Pipe{}, err
	}
	type result struct {
		c   net.Conn
		err error
	}
	acc := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		acc <- result{c, err}
	}()
	c1, err := w.cnet.Dial("tcp", fmt.Sprintf("%s:7000", w.server.FirstAddr()))
	if err != nil {
		return Pipe{}, err
	}
	r := <-acc
	if r.err != nil {
		return Pipe{}, r.err
	}
	return Pipe{
		C1:  c1,
		C2:  r.c,
		Now: w.d.WallNow,
		Stop: func() {
			c1.Close()
			r.c.Close()
			ln.Close()
			w.d.Shutdown()
		},
	}, nil
}

func selfUDPPipe() (Pipe, error) {
	w := newSelfWorld(33)
	pc1, err := w.cnet.ListenPacket("udp", ":5001")
	if err != nil {
		return Pipe{}, err
	}
	pc2, err := w.snet.ListenPacket("udp", ":5002")
	if err != nil {
		return Pipe{}, err
	}
	p1 := pc1.(*sock.PacketConn)
	p2 := pc2.(*sock.PacketConn)
	if err := p1.Connect(sock.Addr{IP: w.server.FirstAddr(), Port: 5002}); err != nil {
		return Pipe{}, err
	}
	if err := p2.Connect(sock.Addr{IP: w.client.FirstAddr(), Port: 5001}); err != nil {
		return Pipe{}, err
	}
	return Pipe{
		C1:       p1,
		C2:       p2,
		Now:      w.d.WallNow,
		Datagram: true,
		Stop: func() {
			p1.Close()
			p2.Close()
			w.d.Shutdown()
		},
	}, nil
}

// TestSuiteSelfTCP proves the suite end to end over a stream transport.
func TestSuiteSelfTCP(t *testing.T) { TestConn(t, selfTCPPipe) }

// TestSuiteSelfUDP proves the suite's datagram mode (bounded chunks,
// message counting).
func TestSuiteSelfUDP(t *testing.T) { TestConn(t, selfUDPPipe) }
