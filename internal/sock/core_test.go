package sock_test

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"

	"mob4x4/internal/inet"
	"mob4x4/internal/netsim"
	"mob4x4/internal/sock"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
)

// coreWorld is the driverless topology: same shape as newWorld but no
// Driver and no goroutines — everything runs on the caller via nw.Run,
// the way the fleet's facade workload class uses the core layer.
type coreWorld struct {
	nw             *inet.Network
	client, server *stack.Host
	cnet, snet     *sock.Net
}

func newCoreWorld(seed int64) *coreWorld {
	nw := inet.New(seed)
	a := nw.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	b := nw.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	r := nw.AddRouter("r")
	nw.AttachRouter(r, a)
	nw.AttachRouter(r, b)
	client := nw.AddHost("client", a)
	server := nw.AddHost("server", b)
	nw.ComputeRoutes()
	return &coreWorld{
		nw:     nw,
		client: client,
		server: server,
		cnet:   sock.NewNet(nil, client, tcplite.New(client)),
		snet:   sock.NewNet(nil, server, tcplite.New(server)),
	}
}

// TestCoreTCPConversation drives a full TCP conversation through the
// goroutine-free core layer: ListenCore's accept callback, DialCore's
// in-flight handshake observed via SetEvent/IsEstablished, TryRead /
// WriteCore data exchange, orderly close delivering EOF, and the
// post-close error contract.
func TestCoreTCPConversation(t *testing.T) {
	w := newCoreWorld(17)
	if w.cnet.Driver() != nil {
		t.Fatal("core-only Net reports a driver")
	}

	var accepted []*sock.Conn
	ln, err := w.snet.ListenCore(sock.Addr{Port: 7000}, func(c *sock.Conn) {
		accepted = append(accepted, c)
	})
	if err != nil {
		t.Fatalf("ListenCore: %v", err)
	}

	cli, err := w.cnet.DialCore(sock.Addr{IP: w.server.FirstAddr(), Port: 7000})
	if err != nil {
		t.Fatalf("DialCore: %v", err)
	}
	events := 0
	cli.SetEvent(func() { events++ })
	if cli.IsEstablished() {
		t.Fatal("established before any packet moved")
	}
	w.nw.Run()
	if !cli.IsEstablished() || cli.Err() != nil {
		t.Fatalf("handshake: established=%v err=%v", cli.IsEstablished(), cli.Err())
	}
	if events == 0 {
		t.Fatal("SetEvent hook never fired during the handshake")
	}
	if len(accepted) != 1 {
		t.Fatalf("accepted %d connections, want 1", len(accepted))
	}
	sc := accepted[0]
	if cli.Tcplite() == nil || sc.Tcplite() == nil {
		t.Fatal("Tcplite returned nil for a live connection")
	}

	buf := make([]byte, 128)
	if n, err := cli.TryRead(buf); n != 0 || err != nil {
		t.Fatalf("TryRead on empty conn: n=%d err=%v", n, err)
	}

	payload := []byte("core-layer request")
	if n, err := cli.WriteCore(payload); err != nil || n != len(payload) {
		t.Fatalf("WriteCore: n=%d err=%v", n, err)
	}
	w.nw.Run()
	n, err := sc.TryRead(buf)
	if err != nil || string(buf[:n]) != string(payload) {
		t.Fatalf("server TryRead: %q err=%v", buf[:n], err)
	}
	if _, err := sc.WriteCore(buf[:n]); err != nil {
		t.Fatalf("server echo WriteCore: %v", err)
	}
	w.nw.Run()
	n, err = cli.TryRead(buf)
	if err != nil || string(buf[:n]) != string(payload) {
		t.Fatalf("client TryRead echo: %q err=%v", buf[:n], err)
	}

	// Orderly close: FIN is delivered as EOF after buffered data.
	sc.CloseCore()
	w.nw.Run()
	if _, err := cli.TryRead(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("TryRead after peer close: %v, want EOF", err)
	}
	cli.CloseCore()
	if _, err := cli.TryRead(buf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("TryRead after local close: %v, want net.ErrClosed", err)
	}
	if _, err := cli.WriteCore(payload); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("WriteCore after local close: %v, want net.ErrClosed", err)
	}

	// A dial against the closed listener must surface a sticky error —
	// polled through Err, the core layer's failure channel.
	ln.CloseCore()
	c2, err := w.cnet.DialCore(sock.Addr{IP: w.server.FirstAddr(), Port: 7000})
	if err != nil {
		t.Fatalf("DialCore after listener close: %v", err)
	}
	w.nw.Run()
	if c2.IsEstablished() || c2.Err() == nil {
		t.Fatalf("dial to closed listener: established=%v err=%v", c2.IsEstablished(), c2.Err())
	}
	c2.CloseCore()
	w.nw.Run()
}

// TestCorePacketConnLifecycle exercises the packet side of the core
// layer: address accessors, ConnectCore pinning, WriteToCore /
// TryReadFrom exchange via SetEvent, and the closed-socket error paths.
func TestCorePacketConnLifecycle(t *testing.T) {
	w := newCoreWorld(19)
	srv, err := w.snet.ListenPacketCore(sock.Addr{Port: 6100})
	if err != nil {
		t.Fatalf("server ListenPacketCore: %v", err)
	}
	cli, err := w.cnet.ListenPacketCore(sock.Addr{})
	if err != nil {
		t.Fatalf("client ListenPacketCore: %v", err)
	}
	la := cli.LocalAddr().(sock.Addr)
	if la.Port == 0 || la.Proto != "udp" {
		t.Fatalf("client LocalAddr: %v", la)
	}
	if ra := cli.RemoteAddr().(sock.Addr); !ra.IP.IsZero() {
		t.Fatalf("unconnected RemoteAddr: %v", ra)
	}

	peer := sock.Addr{IP: w.server.FirstAddr(), Port: 6100}
	cli.ConnectCore(peer)
	if ra := cli.RemoteAddr().(sock.Addr); ra.IP != peer.IP || ra.Port != peer.Port {
		t.Fatalf("connected RemoteAddr: %v, want %v", ra, peer)
	}

	sbuf := make([]byte, 64)
	srv.SetEvent(func() {
		for {
			n, src, ok, rerr := srv.TryReadFrom(sbuf)
			if !ok || rerr != nil {
				return
			}
			_ = srv.WriteToCore(sbuf[:n], src)
		}
	})
	var got []byte
	cbuf := make([]byte, 64)
	cli.SetEvent(func() {
		for {
			n, _, ok, rerr := cli.TryReadFrom(cbuf)
			if !ok || rerr != nil {
				return
			}
			got = append(got, cbuf[:n]...)
		}
	})

	if n, _, ok, err := cli.TryReadFrom(cbuf); n != 0 || ok || err != nil {
		t.Fatalf("TryReadFrom on empty queue: n=%d ok=%v err=%v", n, ok, err)
	}
	payload := []byte("core-datagram")
	if err := cli.WriteToCore(payload, sock.Addr{IP: peer.IP, Port: peer.Port, Proto: "udp"}); err != nil {
		t.Fatalf("WriteToCore: %v", err)
	}
	w.nw.Run()
	if string(got) != string(payload) {
		t.Fatalf("echo: %q, want %q", got, payload)
	}

	cli.CloseCore()
	cli.CloseCore() // idempotent
	if _, _, _, err := cli.TryReadFrom(cbuf); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("TryReadFrom after close: %v, want net.ErrClosed", err)
	}
	if err := cli.WriteToCore(payload, peer); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("WriteToCore after close: %v, want net.ErrClosed", err)
	}
	srv.CloseCore()
}

// TestDriverDoSetSettle covers the driver's public op-submission path,
// the settle tuning knob (including a zero sleep), and the shutdown
// contract: double Shutdown, shutdown of a never-started driver, and
// inline execution of ops submitted after shutdown.
func TestDriverDoSetSettle(t *testing.T) {
	nw := inet.New(21)
	d := sock.NewDriver(nw.Sched())
	d.SetSettle(5, 0)
	d.Start()
	d.Start() // second Start is a no-op

	ran := false
	d.Do(func() { ran = true })
	if !ran {
		t.Fatal("Do did not run the op")
	}
	if now := d.WallNow(); now.Before(sock.EpochTime()) {
		t.Fatalf("WallNow before the virtual epoch: %v", now)
	}
	d.Shutdown()
	d.Shutdown() // idempotent
	ran = false
	d.Do(func() { ran = true }) // post-shutdown ops run inline
	if !ran {
		t.Fatal("post-shutdown Do did not run the op")
	}

	d2 := sock.NewDriver(inet.New(22).Sched())
	d2.Shutdown() // never started: must not hang
}

// TestDialUDPBlocking covers the blocking layer's UDP dial: Dial("udp")
// returns a connected packet socket whose net.Conn methods round-trip
// through an unconnected server socket, and whose post-close deadline
// calls fail with net.ErrClosed.
func TestDialUDPBlocking(t *testing.T) {
	w := newWorld(11)
	pcRaw, err := w.snet.ListenPacket("udp", ":6000")
	if err != nil {
		t.Fatalf("ListenPacket: %v", err)
	}
	spc := pcRaw.(*sock.PacketConn)
	if _, err := spc.Write([]byte("x")); err == nil {
		t.Fatal("Write on unconnected packet socket succeeded")
	}
	go func() { // echo until closed
		buf := make([]byte, 256)
		for {
			n, src, err := spc.ReadFrom(buf)
			if err != nil {
				return
			}
			if _, err := spc.WriteTo(buf[:n], src); err != nil {
				return
			}
		}
	}()

	c, err := w.cnet.Dial("udp", w.serverAddr(6000))
	if err != nil {
		t.Fatalf("Dial udp: %v", err)
	}
	if ra := c.RemoteAddr().(sock.Addr); ra.Port != 6000 {
		t.Fatalf("dialed RemoteAddr: %v", ra)
	}
	payload := []byte("dial-udp-ping")
	if _, err := c.Write(payload); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 256)
	n, err := c.Read(buf)
	if err != nil || string(buf[:n]) != string(payload) {
		t.Fatalf("echo read: %q err=%v", buf[:n], err)
	}

	c.Close()
	cpc := c.(*sock.PacketConn)
	if err := cpc.SetDeadline(w.d.WallNow()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("SetDeadline after close: %v", err)
	}
	if err := cpc.SetReadDeadline(w.d.WallNow()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("SetReadDeadline after close: %v", err)
	}
	if err := cpc.SetWriteDeadline(w.d.WallNow()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("SetWriteDeadline after close: %v", err)
	}
	spc.Close()
	w.d.Shutdown()
}

// TestTCPWriteDeadlineExpiry parks a large Write against back-pressure
// and lets the write deadline fire before the first acknowledgement can
// free backlog space (5ms of virtual time against an 8ms round trip):
// the Write must return the partial count and a timeout, exactly at the
// deadline. Then the closed-connection deadline errors are checked.
func TestTCPWriteDeadlineExpiry(t *testing.T) {
	w := newWorld(13)
	ln, err := w.snet.Listen("tcp", ":7100")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	type result struct {
		c   net.Conn
		err error
	}
	acc := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		acc <- result{c, err}
	}()
	c, err := w.cnet.Dial("tcp", w.serverAddr(7100))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	r := <-acc
	if r.err != nil {
		t.Fatalf("Accept: %v", r.err)
	}

	if err := c.SetWriteDeadline(w.d.WallNow().Add(5 * time.Millisecond)); err != nil {
		t.Fatalf("SetWriteDeadline: %v", err)
	}
	big := make([]byte, 256<<10)
	n, err := c.Write(big)
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("parked write: err=%v, want deadline exceeded", err)
	}
	if n == 0 || n >= len(big) {
		t.Fatalf("parked write accepted %d of %d bytes, want a partial count", n, len(big))
	}

	c.Close()
	if err := c.SetDeadline(w.d.WallNow()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("SetDeadline after close: %v", err)
	}
	if err := c.SetReadDeadline(w.d.WallNow()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("SetReadDeadline after close: %v", err)
	}
	if err := c.SetWriteDeadline(w.d.WallNow()); !errors.Is(err, net.ErrClosed) {
		t.Fatalf("SetWriteDeadline after close: %v", err)
	}
	r.c.Close()
	ln.Close()
	w.d.Shutdown()
}

// TestReadEmptyBuffer pins the stdlib corner: a zero-length Read on a
// conn with nothing buffered returns (0, nil) without blocking.
func TestReadEmptyBuffer(t *testing.T) {
	w := newWorld(15)
	ln, err := w.snet.Listen("tcp", ":7200")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	acc := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			acc <- nil
			return
		}
		acc <- c
	}()
	c, err := w.cnet.Dial("tcp", w.serverAddr(7200))
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	sc := <-acc
	if sc == nil {
		t.Fatal("Accept failed")
	}
	if n, err := c.Read(nil); n != 0 || err != nil {
		t.Fatalf("zero-length read: n=%d err=%v", n, err)
	}
	c.Close()
	sc.Close()
	ln.Close()
	w.d.Shutdown()
}
