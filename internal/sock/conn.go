package sock

import (
	"io"
	"net"
	"time"

	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

// writeBufMax bounds the facade's send backlog per connection: Write
// blocks once this many bytes are queued or in flight below it, giving
// the blocking layer back-pressure instead of unbounded buffering.
const writeBufMax = 64 << 10

// readWaiter is one parked Read call.
type readWaiter struct {
	p    []byte
	n    int
	err  error
	done chan struct{}
}

// writeWaiter is one parked Write call; off tracks how much of p the
// flow-control pump has already pushed into tcplite.
type writeWaiter struct {
	p    []byte
	off  int
	err  error
	done chan struct{}
}

// Conn adapts one tcplite connection to net.Conn. All unexported state
// below the driver pointer is sim-side: touched only on the event loop
// (via Driver.do from the blocking layer, or directly by core-layer
// callers that already run on the loop).
type Conn struct {
	d  *Driver // nil in core mode: blocking methods are unavailable
	tc *tcplite.Conn

	local, remote Addr

	buf     []byte // receive buffer (bufOff..len readable)
	bufOff  int
	eof     bool  // peer sent FIN (delivered after buffered data)
	connErr error // reset / retransmission-timeout; sticky
	closed  bool  // local Close

	readers []*readWaiter
	writers []*writeWaiter

	established bool
	estWaiters  []chan error // Dial callers awaiting the handshake

	rdDeadline vtime.Time
	rdHas      bool
	rdTimer    *vtime.Timer
	wrDeadline vtime.Time
	wrHas      bool
	wrTimer    *vtime.Timer

	// event, when set (core mode), fires on the event loop whenever the
	// connection's readable/established/error status may have changed.
	event func()
}

// newConn wraps tc and installs its callbacks. Runs on the event loop.
func newConn(d *Driver, tc *tcplite.Conn, proto string) *Conn {
	c := &Conn{
		d:      d,
		tc:     tc,
		local:  Addr{IP: tc.LocalAddr(), Port: tc.LocalPort(), Proto: proto},
		remote: Addr{IP: tc.RemoteAddr(), Port: tc.RemotePort(), Proto: proto},
	}
	c.established = tc.Established()
	tc.OnEstablished = c.onEstablished
	tc.OnData = c.onData
	tc.OnClose = c.onPeerClose
	tc.OnError = c.onConnError
	tc.OnDrain = c.onDrain
	return c
}

// Tcplite exposes the wrapped transport connection for metrics reads
// (SRTT, byte counters). Event-loop context only.
func (c *Conn) Tcplite() *tcplite.Conn { return c.tc }

// SetEvent installs the core-layer notification hook (see DialCore).
// Event-loop context only.
func (c *Conn) SetEvent(fn func()) { c.event = fn }

// LocalAddr returns the connection's endpoint identifier — the address
// the mobility policy chose at setup (home vs care-of), which is
// exactly what determines whether the conversation survives movement.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the peer address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

func (c *Conn) opErr(op string, err error) error {
	return opError(op, c.local.Proto, c.local, c.remote, err)
}

// --- callbacks (event loop) ---

func (c *Conn) onEstablished() {
	c.established = true
	for _, ch := range c.estWaiters {
		ch <- nil
		c.notifyWake()
	}
	c.estWaiters = nil
	c.notifyEvent()
}

func (c *Conn) onData(p []byte) {
	// tcplite hands us its own delivery slice; copy so the facade owns
	// its buffer regardless of what the transport does next.
	c.buf = append(c.buf, p...)
	c.pumpReaders()
	c.notifyEvent()
}

func (c *Conn) onPeerClose() {
	c.eof = true
	c.pumpReaders()
	c.notifyEvent()
}

func (c *Conn) onConnError(err error) {
	if c.connErr == nil {
		c.connErr = err
	}
	for _, ch := range c.estWaiters {
		ch <- err
		c.notifyWake()
	}
	c.estWaiters = nil
	c.pumpReaders()
	c.failWriters(c.opErr("write", err))
	c.notifyEvent()
}

func (c *Conn) onDrain() {
	c.pumpWriters()
}

func (c *Conn) notifyEvent() {
	if c.event != nil {
		c.event()
	}
}

// notifyWake tells the driver a blocked caller was released, so virtual
// time settles before advancing (the determinism contract).
func (c *Conn) notifyWake() {
	if c.d != nil {
		c.d.noteActivity()
	}
}

// --- read path ---

// Read implements net.Conn. Delivery order: buffered data, then EOF,
// then the connection error; a local Close or an expired read deadline
// preempts with their respective errors.
func (c *Conn) Read(p []byte) (int, error) {
	var (
		n   int
		err error
		w   *readWaiter
	)
	c.d.do(func() { n, err, w = c.startRead(p) })
	if w == nil {
		return n, err
	}
	<-w.done
	return w.n, w.err
}

// startRead runs on the event loop: satisfy immediately or park.
func (c *Conn) startRead(p []byte) (int, error, *readWaiter) {
	if c.closed {
		return 0, c.opErr("read", net.ErrClosed), nil
	}
	if n := c.readable(); n > 0 {
		return c.copyOut(p), nil, nil
	}
	if c.eof {
		return 0, io.EOF, nil
	}
	if c.connErr != nil {
		return 0, c.opErr("read", c.connErr), nil
	}
	if c.rdHas && !c.rdDeadline.After(c.d.sched.Now()) {
		return 0, c.opErr("read", errTimeout), nil
	}
	if len(p) == 0 {
		return 0, nil, nil
	}
	w := &readWaiter{p: p, done: make(chan struct{})}
	c.readers = append(c.readers, w)
	return 0, nil, w
}

func (c *Conn) readable() int { return len(c.buf) - c.bufOff }

func (c *Conn) copyOut(p []byte) int {
	n := copy(p, c.buf[c.bufOff:])
	c.bufOff += n
	if c.bufOff == len(c.buf) {
		c.buf = c.buf[:0]
		c.bufOff = 0
	}
	return n
}

// TryRead is the core-layer read: copy what is buffered without
// blocking. Returns 0, nil when nothing is readable yet; io.EOF after
// the peer's orderly close; the sticky connection error otherwise.
// Event-loop context only.
func (c *Conn) TryRead(p []byte) (int, error) {
	if c.closed {
		return 0, c.opErr("read", net.ErrClosed)
	}
	if c.readable() > 0 {
		return c.copyOut(p), nil
	}
	if c.eof {
		return 0, io.EOF
	}
	if c.connErr != nil {
		return 0, c.opErr("read", c.connErr)
	}
	return 0, nil
}

// pumpReaders releases parked Read calls in FIFO order as data, EOF or
// errors become deliverable.
func (c *Conn) pumpReaders() {
	for len(c.readers) > 0 {
		w := c.readers[0]
		switch {
		case c.readable() > 0:
			w.n = c.copyOut(w.p)
		case c.closed:
			w.err = c.opErr("read", net.ErrClosed)
		case c.eof:
			w.err = io.EOF
		case c.connErr != nil:
			w.err = c.opErr("read", c.connErr)
		default:
			return
		}
		c.readers = c.readers[1:]
		close(w.done)
		c.notifyWake()
	}
}

// --- write path ---

// Write implements net.Conn: blocks while the per-connection send
// backlog (writeBufMax) is full, returns the byte count accepted by the
// transport before any error.
func (c *Conn) Write(p []byte) (int, error) {
	var (
		n   int
		err error
		w   *writeWaiter
	)
	c.d.do(func() { n, err, w = c.startWrite(p) })
	if w == nil {
		return n, err
	}
	<-w.done
	return w.off, w.err
}

func (c *Conn) startWrite(p []byte) (int, error, *writeWaiter) {
	if c.closed {
		return 0, c.opErr("write", net.ErrClosed), nil
	}
	if c.connErr != nil {
		return 0, c.opErr("write", c.connErr), nil
	}
	if c.wrHas && !c.wrDeadline.After(c.d.sched.Now()) {
		return 0, c.opErr("write", errTimeout), nil
	}
	n, err := c.writeSome(p, 0)
	if err != nil {
		return n, err, nil
	}
	if n == len(p) {
		return n, nil, nil
	}
	w := &writeWaiter{p: p, off: n, done: make(chan struct{})}
	c.writers = append(c.writers, w)
	return 0, nil, w
}

// writeSome pushes as much of p[off:] into tcplite as the backlog
// bound allows; returns the new offset.
func (c *Conn) writeSome(p []byte, off int) (int, error) {
	for off < len(p) {
		room := writeBufMax - c.tc.PendingOut()
		if room <= 0 {
			return off, nil
		}
		chunk := len(p) - off
		if chunk > room {
			chunk = room
		}
		if err := c.tc.Write(p[off : off+chunk]); err != nil {
			return off, c.opErr("write", err)
		}
		off += chunk
	}
	return off, nil
}

// WriteCore is the core-layer write: accepts what fits in the backlog
// without blocking and reports how much. Event-loop context only.
func (c *Conn) WriteCore(p []byte) (int, error) {
	if c.closed {
		return 0, c.opErr("write", net.ErrClosed)
	}
	if c.connErr != nil {
		return 0, c.opErr("write", c.connErr)
	}
	return c.writeSome(p, 0)
}

// pumpWriters resumes parked Write calls as acknowledgements free
// backlog space.
func (c *Conn) pumpWriters() {
	for len(c.writers) > 0 {
		w := c.writers[0]
		off, err := c.writeSome(w.p, w.off)
		w.off = off
		if err != nil {
			w.err = err
		} else if off < len(w.p) {
			return // backlog full again
		}
		c.writers = c.writers[1:]
		close(w.done)
		c.notifyWake()
	}
}

func (c *Conn) failWriters(err error) {
	for _, w := range c.writers {
		w.err = err
		close(w.done)
		c.notifyWake()
	}
	c.writers = nil
}

// --- close ---

// Close implements net.Conn: initiates the orderly transport shutdown
// and releases every blocked Read/Write with net.ErrClosed.
func (c *Conn) Close() error {
	c.d.do(func() { c.closeCore() })
	return nil
}

// CloseCore is the core-layer close. Event-loop context only.
func (c *Conn) CloseCore() { c.closeCore() }

func (c *Conn) closeCore() {
	if c.closed {
		return
	}
	c.closed = true
	err := c.opErr("close", net.ErrClosed)
	for _, ch := range c.estWaiters {
		ch <- err
		c.notifyWake()
	}
	c.estWaiters = nil
	c.pumpReaders() // releases all: closed wins
	c.failWriters(c.opErr("write", net.ErrClosed))
	if c.rdTimer != nil {
		c.rdTimer.Stop()
	}
	if c.wrTimer != nil {
		c.wrTimer.Stop()
	}
	c.tc.Close()
}

// --- deadlines ---

// SetDeadline implements net.Conn.
func (c *Conn) SetDeadline(t time.Time) error {
	var err error
	c.d.do(func() {
		if c.closed {
			err = c.opErr("set", net.ErrClosed)
			return
		}
		c.setReadDeadlineCore(t)
		c.setWriteDeadlineCore(t)
	})
	return err
}

// SetReadDeadline implements net.Conn. A past deadline releases blocked
// and fails future Reads with a timeout until the deadline is changed;
// a zero deadline clears it.
func (c *Conn) SetReadDeadline(t time.Time) error {
	var err error
	c.d.do(func() {
		if c.closed {
			err = c.opErr("set", net.ErrClosed)
			return
		}
		c.setReadDeadlineCore(t)
	})
	return err
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	var err error
	c.d.do(func() {
		if c.closed {
			err = c.opErr("set", net.ErrClosed)
			return
		}
		c.setWriteDeadlineCore(t)
	})
	return err
}

func (c *Conn) setReadDeadlineCore(t time.Time) {
	if t.IsZero() {
		c.rdHas = false
		if c.rdTimer != nil {
			c.rdTimer.Stop()
		}
		return
	}
	vt := vtimeOf(t)
	c.rdHas, c.rdDeadline = true, vt
	now := c.d.sched.Now()
	if !vt.After(now) {
		if c.rdTimer != nil {
			c.rdTimer.Stop()
		}
		c.expireReaders()
		return
	}
	c.armTimer(&c.rdTimer, vt.Sub(now), c.onReadDeadline)
}

func (c *Conn) setWriteDeadlineCore(t time.Time) {
	if t.IsZero() {
		c.wrHas = false
		if c.wrTimer != nil {
			c.wrTimer.Stop()
		}
		return
	}
	vt := vtimeOf(t)
	c.wrHas, c.wrDeadline = true, vt
	now := c.d.sched.Now()
	if !vt.After(now) {
		if c.wrTimer != nil {
			c.wrTimer.Stop()
		}
		c.expireWriters()
		return
	}
	c.armTimer(&c.wrTimer, vt.Sub(now), c.onWriteDeadline)
}

func (c *Conn) armTimer(t **vtime.Timer, d vtime.Duration, fn func()) {
	if *t == nil {
		*t = c.d.sched.After(d, fn)
		return
	}
	(*t).Reset(d)
}

func (c *Conn) onReadDeadline() {
	if c.rdHas && !c.rdDeadline.After(c.d.sched.Now()) {
		c.expireReaders()
	}
}

func (c *Conn) onWriteDeadline() {
	if c.wrHas && !c.wrDeadline.After(c.d.sched.Now()) {
		c.expireWriters()
	}
}

func (c *Conn) expireReaders() {
	for _, w := range c.readers {
		w.err = c.opErr("read", errTimeout)
		close(w.done)
		c.notifyWake()
	}
	c.readers = nil
}

func (c *Conn) expireWriters() {
	for _, w := range c.writers {
		w.err = c.opErr("write", errTimeout)
		close(w.done)
		c.notifyWake()
	}
	c.writers = nil
}
