package sock_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestHTTPOverFacade runs an unmodified net/http server and client
// over the facade: the stdlib speaks to sock.Listener / sock.Conn
// exactly as it would to kernel sockets, while every byte rides the
// simulated 4x4 stack on virtual time.
func TestHTTPOverFacade(t *testing.T) {
	w := newWorld(31)
	defer w.d.Shutdown()

	ln, err := w.snet.Listen("tcp", ":80")
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/hello", func(rw http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(rw, "hello %s", r.URL.Query().Get("name"))
	})
	mux.HandleFunc("/echo", func(rw http.ResponseWriter, r *http.Request) {
		// Drain fully before writing: the stdlib server closes an
		// unread body once the response starts (see net/http Issue
		// 15527), on the facade exactly as on kernel sockets.
		b, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(rw, err.Error(), http.StatusBadRequest)
			return
		}
		rw.Write(b)
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	client := &http.Client{Transport: &http.Transport{DialContext: w.cnet.DialContext}}
	defer client.Transport.(*http.Transport).CloseIdleConnections()

	get := func(url string) string {
		t.Helper()
		resp, err := client.Get(url)
		if err != nil {
			t.Fatalf("GET %s: %v", url, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", url, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s body: %v", url, err)
		}
		return string(b)
	}

	base := "http://" + w.serverAddr(80)
	if got := get(base + "/hello?name=mobile"); got != "hello mobile" {
		t.Fatalf("GET /hello: %q", got)
	}

	// A large POST exercises chunked writes, back-pressure and
	// keep-alive connection reuse in one round trip.
	payload := strings.Repeat("internet mobility 4x4 ", 8192) // ~176KB
	resp, err := client.Post(base+"/echo", "text/plain", strings.NewReader(payload))
	if err != nil {
		t.Fatalf("POST /echo: %v", err)
	}
	defer resp.Body.Close()
	echoed, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST /echo body: %v", err)
	}
	if string(echoed) != payload {
		t.Fatalf("POST /echo: %d bytes echoed, want %d (content mismatch)", len(echoed), len(payload))
	}

	// A second GET on the same client reuses the pooled connection.
	if got := get(base + "/hello?name=again"); got != "hello again" {
		t.Fatalf("GET reuse: %q", got)
	}
}
