package sock

import (
	"fmt"
	"net"
	"os"
	"strconv"

	"mob4x4/internal/ipv4"
)

// Addr is the facade's net.Addr: a simulated IPv4 address and port.
// Proto is "tcp" or "udp" (Network()'s return value).
type Addr struct {
	IP    ipv4.Addr
	Port  uint16
	Proto string
}

// Network returns "tcp" or "udp".
func (a Addr) Network() string { return a.Proto }

func (a Addr) String() string {
	return net.JoinHostPort(a.IP.String(), strconv.Itoa(int(a.Port)))
}

// resolveAddr parses a network ("tcp"/"tcp4"/"udp"/"udp4") and a
// "host:port" address into facade terms. The host must be an IPv4
// literal (or empty / "0.0.0.0" for the unspecified address — the
// "let the mobility policy choose" bind, §7.1.1); name resolution is
// the application's job (e.g. via the dnssim facade client).
func resolveAddr(network, address string) (Addr, error) {
	var proto string
	switch network {
	case "tcp", "tcp4":
		proto = "tcp"
	case "udp", "udp4":
		proto = "udp"
	default:
		return Addr{}, net.UnknownNetworkError(network)
	}
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return Addr{}, fmt.Errorf("sock: bad address %q: %w", address, err)
	}
	a := Addr{Proto: proto}
	if host != "" {
		a.IP, err = ipv4.ParseAddr(host)
		if err != nil {
			return Addr{}, fmt.Errorf("sock: bad address %q: %w", address, err)
		}
	}
	p, err := strconv.Atoi(portStr)
	if err != nil || p < 0 || p > 65535 {
		return Addr{}, fmt.Errorf("sock: bad port in %q", address)
	}
	a.Port = uint16(p)
	return a, nil
}

// opError wraps err in the stdlib's *net.OpError shape so the facade
// honors net.Error contracts: errors.Is(err, os.ErrDeadlineExceeded)
// and Timeout() for deadline hits, errors.Is(err, net.ErrClosed) for
// operations on closed sockets.
func opError(op, proto string, local, remote net.Addr, err error) error {
	return &net.OpError{Op: op, Net: proto, Source: local, Addr: remote, Err: err}
}

// errTimeout is the inner error for deadline expiry; the stdlib
// sentinel already implements net.Error's Timeout() == true.
var errTimeout = os.ErrDeadlineExceeded
