// Package sock is a net.Conn / net.Listener / net.PacketConn compatible
// facade over the simulated stack: tcplite connections and stack UDP
// sockets wrapped so unmodified Go application protocols (net/http, DNS
// clients) run over the 4x4 mobility grid. Deadlines map onto vtime
// timers through a fixed virtual epoch, Dial/Listen resolve source
// addresses through the host's mobility policy table (the §7.1.2
// source/port heuristic governs facade sockets exactly as raw ones),
// and blocking reads are driven by the virtual-time scheduler.
//
// Two layers share one connection state machine:
//
//   - The core layer runs entirely on the simulation event loop —
//     callback-driven, allocation-light, shard-safe (a facade socket
//     lives on its host's region shard). Deterministic workloads
//     (internal/fleet's facade class) use it directly.
//   - The blocking layer adds real goroutine semantics on top via a
//     Driver: app goroutines submit closures to the event-loop
//     goroutine and park on per-operation channels, so net.Conn's
//     blocking contract holds without touching scheduler state from
//     more than one goroutine.
//
// See DESIGN.md "Socket facade & capture plane" for the determinism
// contract (why virtual time only advances after a real-time settle
// window, and what that guarantees for captured traffic).
package sock

import (
	"runtime"
	"sync"
	"time"

	"mob4x4/internal/race"
	"mob4x4/internal/vtime"
)

// EpochTime is the real-world instant mapped to virtual time zero:
// 2000-01-01T00:00:00Z. Facade deadlines are converted through it, so a
// time.Time deadline in the far real-world future (anything derived
// from the host's actual clock) lands decades into the virtual future —
// effectively "no deadline", which is exactly what an application that
// never heard of virtual time should get.
func EpochTime() time.Time { return time.Date(2000, 1, 1, 0, 0, 0, 0, time.UTC) }

// Driver owns a scheduler on behalf of blocking facade callers. Exactly
// one goroutine (the loop started by Start) touches the scheduler and
// all sim-side socket state; application goroutines funnel every
// operation through do and park until it completes.
//
// Virtual time only advances when the loop has drained all submitted
// operations AND a settle window of real time has passed with no new
// submissions after the last wakeup it delivered. Application turnaround
// (a woken net/http goroutine computing its next Read/Write) happens in
// zero virtual time provided it outruns the settle window — the basis of
// the capture-determinism contract (DESIGN.md §12).
type Driver struct {
	sched *vtime.Scheduler
	ops   chan func()

	mu      sync.RWMutex // guards stopped against op submission
	stopped bool
	stopq   chan struct{}
	exited  chan struct{}
	postMu  sync.Mutex // serializes post-shutdown stragglers

	// settlePolls x settleSleep is the real-time window the loop waits
	// after delivering a wakeup before letting virtual time advance.
	settlePolls int
	settleSleep time.Duration
	// activity marks that an op ran or a waiter was woken since the
	// last settle; loop-goroutine state.
	activity bool
	started  bool
}

// NewDriver wraps the scheduler. Build the topology first; once Start
// is called, all scheduler access must go through the driver until
// Shutdown returns.
func NewDriver(sched *vtime.Scheduler) *Driver {
	d := &Driver{
		sched:       sched,
		ops:         make(chan func(), 128),
		stopq:       make(chan struct{}),
		exited:      make(chan struct{}),
		settlePolls: 20,
		settleSleep: 200 * time.Microsecond,
	}
	if race.Enabled {
		// The race detector slows application turnaround severely;
		// widen the window so wakeup->next-op still lands inside it.
		d.settlePolls *= 3
	}
	return d
}

// SetSettle tunes the settle window (polls x sleep per settle). Call
// before Start. Larger windows buy determinism margin on loaded
// machines at the cost of real-time throughput.
func (d *Driver) SetSettle(polls int, sleep time.Duration) {
	d.settlePolls, d.settleSleep = polls, sleep
}

// Start launches the event-loop goroutine.
func (d *Driver) Start() {
	if d.started {
		return
	}
	d.started = true
	// Begin settled: scenarios hand over schedulers with timers already
	// pending (Mobile IP beacons, registration refresh), and the caller's
	// setup burst (Listen, first sends) must land at the current virtual
	// instant — not at whatever instant a free-running first advance
	// would reach before those ops arrive.
	d.activity = true
	go d.loop()
}

// Shutdown stops the loop and waits for it to exit. Callers should
// first close every facade socket and join the goroutines using them:
// operations submitted after Shutdown run inline on the submitting
// goroutine (serialized, but no longer concurrent-safe against other
// stragglers' sim access — fine for the intended "everything already
// joined" shape). After Shutdown the scheduler may be used directly
// again (e.g. RunFor to drain close handshakes).
func (d *Driver) Shutdown() {
	d.mu.Lock()
	if d.stopped {
		d.mu.Unlock()
		<-d.exited
		return
	}
	d.stopped = true
	d.mu.Unlock()
	if !d.started {
		close(d.exited)
		return
	}
	close(d.stopq)
	<-d.exited
}

// do runs fn on the event-loop goroutine and returns when it has
// completed. Safe to call from any goroutine; fn may touch all sim
// state. Calls on the loop goroutine itself (core-layer callbacks)
// must not use do — they already own the loop.
func (d *Driver) do(fn func()) {
	d.mu.RLock()
	if d.stopped {
		d.mu.RUnlock()
		<-d.exited
		d.postMu.Lock()
		defer d.postMu.Unlock()
		fn()
		return
	}
	done := make(chan struct{})
	d.ops <- func() { fn(); close(done) }
	d.mu.RUnlock()
	<-done
}

// Do runs fn on the event-loop goroutine and returns when it has
// completed — the public form of the blocking layer's op submission,
// for callers (experiments, tools) that need a consistent view of
// sim-side state while the loop owns it. fn must not call back into
// blocking facade operations.
func (d *Driver) Do(fn func()) { d.do(fn) }

// noteActivity records (on the loop goroutine) that a blocked caller
// was woken; the loop settles before the next time advance.
func (d *Driver) noteActivity() { d.activity = true }

// WallNow returns the facade's wall clock: EpochTime plus the current
// virtual time. Safe from any goroutine.
func (d *Driver) WallNow() time.Time {
	var now vtime.Time
	d.do(func() { now = d.sched.Now() })
	return EpochTime().Add(time.Duration(now))
}

// vtimeOf converts a wall-clock deadline to a virtual instant. Zero
// input means "no deadline" and is handled by callers before this.
func vtimeOf(t time.Time) vtime.Time { return vtime.Time(t.Sub(EpochTime())) }

func (d *Driver) loop() {
	defer close(d.exited)
	for {
		// Run everything due at the current instant, interleaved with
		// op draining, until neither makes progress.
		for {
			ran := d.drainOps()
			if t, ok := d.sched.NextAt(); ok && !t.After(d.sched.Now()) {
				d.sched.RunUntil(d.sched.Now())
				ran = true
			}
			if !ran {
				break
			}
		}
		// If anything woke a blocked caller (or an op ran), give the
		// application a real-time window to submit its next operation
		// before virtual time moves.
		if d.activity {
			d.activity = false
			if d.settle() {
				continue
			}
		}
		select {
		case <-d.stopq:
			d.finalDrain()
			return
		default:
		}
		if t, ok := d.sched.NextAt(); ok {
			d.sched.RunUntil(t)
			continue
		}
		// Nothing scheduled and nothing submitted: park.
		select {
		case fn := <-d.ops:
			fn()
			d.activity = true
		case <-d.stopq:
			d.finalDrain()
			return
		}
	}
}

// drainOps runs queued ops without blocking; reports whether any ran.
func (d *Driver) drainOps() bool {
	ran := false
	for {
		select {
		case fn := <-d.ops:
			fn()
			ran = true
			d.activity = true
		default:
			return ran
		}
	}
}

// settle waits the real-time window for follow-up operations. Returns
// true if one arrived (and ran) — the caller restarts its cycle.
func (d *Driver) settle() bool {
	for i := 0; i < d.settlePolls; i++ {
		runtime.Gosched()
		select {
		case fn := <-d.ops:
			fn()
			d.activity = true
			return true
		default:
		}
		if d.settleSleep > 0 {
			//mob4x4vet:allow wallclock the settle window is a real-time liveness aid for blocking callers; virtual-time order never depends on its length (DESIGN.md §12)
			time.Sleep(d.settleSleep)
		}
	}
	return false
}

// finalDrain serves ops already committed to the buffer before the
// stopped flag flipped (submission happens under mu.RLock, so nothing
// new can arrive once Shutdown holds the write lock).
func (d *Driver) finalDrain() {
	for {
		select {
		case fn := <-d.ops:
			fn()
		default:
			return
		}
	}
}
