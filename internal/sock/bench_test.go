package sock_test

import (
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/netsim"
	"mob4x4/internal/sock"
)

// BenchmarkFacadeCoreUDPRoundTrip measures the facade's core layer the
// way the fleet workload uses it: no driver goroutines, both ends on
// facade packet sockets, one request/echo round trip per iteration with
// the scheduler drained inline. The delta against the raw-socket
// benchmarks in internal/stack is the facade's own overhead (one queue
// copy per delivered datagram).
func BenchmarkFacadeCoreUDPRoundTrip(b *testing.B) {
	nw := inet.New(1)
	a := nw.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	bb := nw.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 2 * ms})
	r := nw.AddRouter("r")
	nw.AttachRouter(r, a)
	nw.AttachRouter(r, bb)
	client := nw.AddHost("client", a)
	server := nw.AddHost("server", bb)
	nw.ComputeRoutes()

	srv, err := sock.NewNet(nil, server, nil).ListenPacketCore(sock.Addr{Port: 7})
	if err != nil {
		b.Fatal(err)
	}
	sbuf := make([]byte, 64)
	srv.SetEvent(func() {
		for {
			n, src, ok, _ := srv.TryReadFrom(sbuf)
			if !ok {
				return
			}
			_ = srv.WriteToCore(sbuf[:n], src)
		}
	})

	cli, err := sock.NewNet(nil, client, nil).ListenPacketCore(sock.Addr{})
	if err != nil {
		b.Fatal(err)
	}
	got := 0
	cbuf := make([]byte, 64)
	cli.SetEvent(func() {
		for {
			if _, _, ok, _ := cli.TryReadFrom(cbuf); !ok {
				return
			}
			got++
		}
	})

	dst := sock.Addr{IP: server.FirstAddr(), Port: 7, Proto: "udp"}
	payload := []byte("bench-facade-payload")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.WriteToCore(payload, dst); err != nil {
			b.Fatal(err)
		}
		nw.Run()
	}
	if got != b.N {
		b.Fatalf("echoed %d of %d round trips", got, b.N)
	}
}
