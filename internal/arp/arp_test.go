package arp

import (
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Op:        OpRequest,
		SenderMAC: netsim.MAC(0x020000000001),
		SenderIP:  ipv4.MustParseAddr("10.0.0.1"),
		TargetMAC: 0,
		TargetIP:  ipv4.MustParseAddr("10.0.0.2"),
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip: %+v vs %+v", got, m)
	}
}

func TestMessageRoundTripProperty(t *testing.T) {
	f := func(op bool, smac, tmac uint64, sip, tip uint32) bool {
		m := Message{
			Op:        OpRequest,
			SenderMAC: netsim.MAC(smac & 0xffffffffffff),
			TargetMAC: netsim.MAC(tmac & 0xffffffffffff),
			SenderIP:  ipv4.AddrFromUint32(sip),
			TargetIP:  ipv4.AddrFromUint32(tip),
		}
		if op {
			m.Op = OpReply
		}
		got, err := Unmarshal(m.Marshal())
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	m := Message{Op: OpRequest}
	good := m.Marshal()

	if _, err := Unmarshal(good[:10]); err == nil {
		t.Error("truncated accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] = 9 // wrong hardware type
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad htype accepted")
	}
	bad = append([]byte(nil), good...)
	bad[7] = 99 // unknown op
	if _, err := Unmarshal(bad); err == nil {
		t.Error("bad op accepted")
	}
}

func TestOpString(t *testing.T) {
	if OpRequest.String() != "request" || OpReply.String() != "reply" {
		t.Error("op strings")
	}
	if Op(9).String() == "" {
		t.Error("unknown op should render")
	}
}

func TestCacheLookupAndTTL(t *testing.T) {
	c := NewCache()
	ip := ipv4.MustParseAddr("10.0.0.1")
	mac := netsim.MAC(42)

	if _, ok := c.Lookup(ip, 0, 100); ok {
		t.Error("empty cache hit")
	}
	c.Learn(ip, mac, 10)
	if got, ok := c.Lookup(ip, 50, 100); !ok || got != mac {
		t.Errorf("lookup = %v,%v", got, ok)
	}
	// Expired at now=111 with ttl=100 (age 101 > 100).
	if _, ok := c.Lookup(ip, 111, 100); ok {
		t.Error("stale entry returned")
	}
	if c.Len() != 0 {
		t.Error("stale entry not evicted")
	}
	// ttl=0 means no expiry.
	c.Learn(ip, mac, 10)
	if _, ok := c.Lookup(ip, 1<<40, 0); !ok {
		t.Error("ttl=0 entry expired")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestCacheRefreshAndInvalidate(t *testing.T) {
	c := NewCache()
	ip := ipv4.MustParseAddr("10.0.0.1")
	c.Learn(ip, 1, 0)
	c.Learn(ip, 2, 50) // refresh with new MAC
	if got, _ := c.Lookup(ip, 60, 100); got != 2 {
		t.Errorf("refresh lost: %v", got)
	}
	c.Invalidate(ip)
	if _, ok := c.Lookup(ip, 60, 100); ok {
		t.Error("invalidated entry returned")
	}
	c.Learn(ip, 3, 0)
	c.Flush()
	if c.Len() != 0 {
		t.Error("flush incomplete")
	}
}

func TestProxySet(t *testing.T) {
	p := NewProxy()
	a := ipv4.MustParseAddr("36.1.1.3")
	if p.Contains(a) {
		t.Error("empty proxy contains")
	}
	p.Add(a)
	if !p.Contains(a) || p.Len() != 1 {
		t.Error("add failed")
	}
	p.Add(a) // idempotent
	if p.Len() != 1 {
		t.Error("duplicate add changed length")
	}
	p.Remove(a)
	if p.Contains(a) || p.Len() != 0 {
		t.Error("remove failed")
	}
}

func TestGratuitousRequestShape(t *testing.T) {
	mac := netsim.MAC(7)
	ip := ipv4.MustParseAddr("36.1.1.3")
	g := GratuitousRequest(mac, ip)
	if g.Op != OpRequest {
		t.Error("gratuitous must be a request")
	}
	if g.SenderIP != ip || g.TargetIP != ip {
		t.Error("gratuitous must have sender == target IP")
	}
	if g.SenderMAC != mac {
		t.Error("sender MAC wrong")
	}
	// Round-trips cleanly.
	if _, err := Unmarshal(g.Marshal()); err != nil {
		t.Error(err)
	}
}

func BenchmarkMarshal(b *testing.B) {
	m := Message{Op: OpRequest, SenderMAC: 1, SenderIP: ipv4.MustParseAddr("10.0.0.1"),
		TargetIP: ipv4.MustParseAddr("10.0.0.2")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}

func BenchmarkCacheLookup(b *testing.B) {
	c := NewCache()
	var ips []ipv4.Addr
	for i := 0; i < 256; i++ {
		ip := ipv4.AddrFromUint32(0x0a000000 + uint32(i))
		c.Learn(ip, netsim.MAC(i), 0)
		ips = append(ips, ip)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Lookup(ips[i%256], 0, 0)
	}
}
