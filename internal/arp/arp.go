// Package arp implements the Address Resolution Protocol over simulated
// segments, including the gratuitous / proxy ARP behavior ([RFC1027],
// [RFC826]) that a Mobile IP home agent uses to capture packets addressed
// to an absent mobile host.
//
// The package provides the wire codec and the per-interface cache/state
// machine; package stack wires it to NICs and drives timers.
package arp

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// Op is the ARP operation code.
type Op uint16

// ARP operations.
const (
	OpRequest Op = 1
	OpReply   Op = 2
)

func (o Op) String() string {
	switch o {
	case OpRequest:
		return "request"
	case OpReply:
		return "reply"
	default:
		return fmt.Sprintf("op(%d)", uint16(o))
	}
}

// Message is an ARP packet for IPv4-over-simulated-Ethernet.
type Message struct {
	Op        Op
	SenderMAC netsim.MAC
	SenderIP  ipv4.Addr
	TargetMAC netsim.MAC
	TargetIP  ipv4.Addr
}

// wireLen is the serialized size: fixed ARP header (8) + 2*(6+4).
const wireLen = 28

// Marshal serializes the message into a fresh slice. Hot paths should use
// AppendMarshal with a pooled buffer instead.
func (m *Message) Marshal() []byte {
	return m.AppendMarshal(nil)
}

// AppendMarshal appends the serialized message to dst and returns the
// extended slice. Every wire byte is written explicitly, so dst may come
// from a pool with dirty spare capacity.
func (m *Message) AppendMarshal(dst []byte) []byte {
	start := len(dst)
	if cap(dst)-start < wireLen {
		grown := make([]byte, start, start+wireLen)
		copy(grown, dst)
		dst = grown
	}
	b := dst[start : start+wireLen]
	binary.BigEndian.PutUint16(b[0:], 1)      // htype: Ethernet
	binary.BigEndian.PutUint16(b[2:], 0x0800) // ptype: IPv4
	b[4] = 6                                  // hlen
	b[5] = 4                                  // plen
	binary.BigEndian.PutUint16(b[6:], uint16(m.Op))
	putMAC(b[8:14], m.SenderMAC)
	copy(b[14:18], m.SenderIP[:])
	putMAC(b[18:24], m.TargetMAC)
	copy(b[24:28], m.TargetIP[:])
	return dst[:start+wireLen]
}

// Unmarshal parses an ARP packet.
func Unmarshal(b []byte) (Message, error) {
	var m Message
	if len(b) < wireLen {
		return m, fmt.Errorf("arp: truncated message (%d bytes)", len(b))
	}
	if binary.BigEndian.Uint16(b[0:]) != 1 || binary.BigEndian.Uint16(b[2:]) != 0x0800 ||
		b[4] != 6 || b[5] != 4 {
		return m, fmt.Errorf("arp: unsupported hardware/protocol types")
	}
	m.Op = Op(binary.BigEndian.Uint16(b[6:]))
	if m.Op != OpRequest && m.Op != OpReply {
		return m, fmt.Errorf("arp: bad op %d", m.Op)
	}
	m.SenderMAC = getMAC(b[8:14])
	copy(m.SenderIP[:], b[14:18])
	m.TargetMAC = getMAC(b[18:24])
	copy(m.TargetIP[:], b[24:28])
	return m, nil
}

func putMAC(b []byte, m netsim.MAC) {
	b[0] = byte(m >> 40)
	b[1] = byte(m >> 32)
	b[2] = byte(m >> 24)
	b[3] = byte(m >> 16)
	b[4] = byte(m >> 8)
	b[5] = byte(m)
}

func getMAC(b []byte) netsim.MAC {
	return netsim.MAC(b[0])<<40 | netsim.MAC(b[1])<<32 | netsim.MAC(b[2])<<24 |
		netsim.MAC(b[3])<<16 | netsim.MAC(b[4])<<8 | netsim.MAC(b[5])
}

// Cache is a per-interface ARP table. Expiry is driven by the owner
// calling Tick with the current virtual time; entries older than TTL are
// evicted lazily on lookup as well.
type Cache struct {
	entries map[ipv4.Addr]entry
	// Hits/Misses count Lookup outcomes.
	Hits, Misses uint64
}

type entry struct {
	mac   netsim.MAC
	added int64 // opaque timestamp from the owner (virtual nanoseconds)
}

// NewCache returns an empty cache. The entry map is allocated lazily on
// the first Learn: most interfaces in a large simulation never resolve
// anything (reads and deletes on a nil map are safe in Go).
func NewCache() *Cache {
	return &Cache{}
}

// Learn records (or refreshes) a mapping at time now.
func (c *Cache) Learn(ip ipv4.Addr, mac netsim.MAC, now int64) {
	if c.entries == nil {
		c.entries = make(map[ipv4.Addr]entry)
	}
	c.entries[ip] = entry{mac: mac, added: now}
}

// Lookup returns the MAC for ip if present and not older than ttl.
func (c *Cache) Lookup(ip ipv4.Addr, now, ttl int64) (netsim.MAC, bool) {
	e, ok := c.entries[ip]
	if !ok || (ttl > 0 && now-e.added > ttl) {
		if ok {
			delete(c.entries, ip)
		}
		c.Misses++
		return 0, false
	}
	c.Hits++
	return e.mac, true
}

// Flush removes every entry (used when a mobile host moves to a new
// segment: cached neighbours are meaningless there). The map's capacity is
// reused — mobility events flush constantly and the next cell refills with
// a similar neighbour count.
func (c *Cache) Flush() {
	clear(c.entries)
}

// Invalidate removes one entry.
func (c *Cache) Invalidate(ip ipv4.Addr) { delete(c.entries, ip) }

// Len reports the number of live entries (including possibly stale ones
// not yet evicted).
func (c *Cache) Len() int { return len(c.entries) }

// Proxy is the set of addresses an interface answers ARP for on behalf of
// other hosts. A Mobile IP home agent inserts the mobile host's home
// address here while the mobile host is away, so that packets for the MH
// are link-delivered to the agent ([RFC1027] gratuitous proxy ARP).
type Proxy struct {
	addrs map[ipv4.Addr]bool
}

// NewProxy returns an empty proxy set. The map is allocated lazily on the
// first Add: only home agents ever proxy.
func NewProxy() *Proxy { return &Proxy{} }

// Add starts proxying for ip.
func (p *Proxy) Add(ip ipv4.Addr) {
	if p.addrs == nil {
		p.addrs = make(map[ipv4.Addr]bool)
	}
	p.addrs[ip] = true
}

// Remove stops proxying for ip.
func (p *Proxy) Remove(ip ipv4.Addr) { delete(p.addrs, ip) }

// Contains reports whether ip is proxied.
func (p *Proxy) Contains(ip ipv4.Addr) bool { return p.addrs[ip] }

// Len reports the number of proxied addresses.
func (p *Proxy) Len() int { return len(p.addrs) }

// GratuitousRequest builds the gratuitous ARP a host (or proxy) broadcasts
// to update neighbours' caches: sender==target IP, broadcast target.
func GratuitousRequest(mac netsim.MAC, ip ipv4.Addr) Message {
	return Message{
		Op:        OpRequest,
		SenderMAC: mac,
		SenderIP:  ip,
		TargetMAC: 0,
		TargetIP:  ip,
	}
}
