// Package icmphost wires the ICMP codec into a stack.Host: an echo
// responder (every well-behaved Internet host answers pings — the
// experiments' standard workload), an echo client, and callback dispatch
// for mobility binding notices and error messages.
package icmphost

import (
	"mob4x4/internal/icmp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
)

// ICMP is a host's ICMP endpoint.
type ICMP struct {
	host *stack.Host

	// EchoResponder controls whether echo requests are answered
	// (default true).
	EchoResponder bool

	// OnEchoReply fires for every echo reply received.
	OnEchoReply func(src ipv4.Addr, msg icmp.Message)
	// OnEchoRequest fires for every echo request received (after the
	// responder, if enabled, has replied).
	OnEchoRequest func(src ipv4.Addr, msg icmp.Message)
	// OnBinding fires for mobility binding notices (Section 3.2): the
	// home agent telling us a host we talk to is mobile, and where.
	OnBinding func(src ipv4.Addr, msg icmp.Message)
	// OnError fires for destination-unreachable and time-exceeded.
	OnError func(src ipv4.Addr, msg icmp.Message)

	// EchoRequests/EchoReplies count traffic.
	EchoRequests, EchoReplies uint64
}

// Install registers the ICMP protocol handler on h and returns the
// endpoint. Call at most once per host; components that need ICMP events
// share the returned value.
func Install(h *stack.Host) *ICMP {
	ic := &ICMP{host: h, EchoResponder: true}
	h.Handle(ipv4.ProtoICMP, ic.receive)
	return ic
}

func (ic *ICMP) receive(ifc *stack.Iface, pkt ipv4.Packet) {
	msg, err := icmp.Unmarshal(pkt.Payload)
	if err != nil {
		return
	}
	switch msg.Type {
	case icmp.TypeEchoRequest:
		ic.EchoRequests++
		if ic.EchoResponder {
			reply := icmp.EchoReplyTo(msg)
			src := pkt.Dst // reply from the address we were pinged at
			if src.IsBroadcast() || src.IsMulticast() {
				src = ipv4.Zero
			}
			_ = ic.host.SendIP(ipv4.Packet{
				Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: src, Dst: pkt.Src},
				Payload: reply.Marshal(),
			})
		}
		if ic.OnEchoRequest != nil {
			ic.OnEchoRequest(pkt.Src, msg)
		}
	case icmp.TypeEchoReply:
		ic.EchoReplies++
		if ic.OnEchoReply != nil {
			ic.OnEchoReply(pkt.Src, msg)
		}
	case icmp.TypeMobilityBinding:
		if ic.OnBinding != nil {
			ic.OnBinding(pkt.Src, msg)
		}
	case icmp.TypeDestUnreachable, icmp.TypeTimeExceeded:
		if ic.OnError != nil {
			ic.OnError(pkt.Src, msg)
		}
	}
}

// Ping sends one echo request from src (zero = routing chooses) to dst.
func (ic *ICMP) Ping(src, dst ipv4.Addr, id, seq uint16, payload []byte) error {
	msg := icmp.EchoRequest(id, seq, payload)
	return ic.host.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: src, Dst: dst},
		Payload: msg.Marshal(),
	})
}
