package icmphost

import (
	"testing"

	"mob4x4/internal/icmp"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
)

// chainNet builds src -- r0 -- r1 -- r2 -- dst with router errors enabled.
func chainNet(t testing.TB) (*inet.Network, *ICMP, ipv4.Addr) {
	t.Helper()
	n := inet.New(9)
	a := n.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	b := n.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	rs := n.Chain("r", 3, 1e6)
	n.AttachRouter(rs[0], a)
	n.AttachRouter(rs[2], b)
	src := n.AddHost("src", a)
	dst := n.AddHost("dst", b)
	n.ComputeRoutes()
	for _, r := range rs {
		EnableRouterErrors(r)
	}
	ic := Install(src)
	Install(dst)
	if err := RespondToProbes(dst); err != nil {
		t.Fatal(err)
	}
	return n, ic, dst.FirstAddr()
}

func TestTTLExpiryGeneratesTimeExceeded(t *testing.T) {
	n, ic, dstAddr := chainNet(t)
	var errs []icmp.Message
	var errFrom []ipv4.Addr
	ic.OnError = func(src ipv4.Addr, m icmp.Message) {
		errs = append(errs, m)
		errFrom = append(errFrom, src)
	}
	// TTL 1 dies at the first router.
	srcHost := n.Host("src")
	_ = srcHost.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 1, Dst: dstAddr},
		Payload: []byte{0x9c, 0x40, 0x82, 0x9a, 0x00, 0x09, 0x00, 0x00, 0x55},
	})
	n.RunFor(3e9)
	if len(errs) != 1 {
		t.Fatalf("errors = %d", len(errs))
	}
	if errs[0].Type != icmp.TypeTimeExceeded {
		t.Errorf("type = %v", errs[0].Type)
	}
	// The error comes from r0's address on LAN a.
	if !ipv4.MustParsePrefix("10.1.0.0/24").Contains(errFrom[0]) {
		t.Errorf("error source = %s, want on the arrival LAN", errFrom[0])
	}
}

func TestTraceroute(t *testing.T) {
	n, ic, dstAddr := chainNet(t)
	var hops []TracerouteHop
	finished := false
	Traceroute(n.Host("src"), ic, dstAddr, 10, &hops, func() { finished = true })
	n.RunFor(10e9)
	if !finished {
		t.Fatalf("traceroute never finished; hops: %+v", hops)
	}
	// Path: r0, r1, r2, then the destination answers.
	if len(hops) != 4 {
		t.Fatalf("hops = %+v", hops)
	}
	for i, h := range hops[:3] {
		if h.Reached {
			t.Errorf("hop %d marked reached", i+1)
		}
		if h.TTL != i+1 {
			t.Errorf("hop %d TTL = %d", i+1, h.TTL)
		}
	}
	last := hops[3]
	if !last.Reached || last.From != dstAddr {
		t.Errorf("final hop = %+v", last)
	}
}

func TestTracerouteMaxTTLStops(t *testing.T) {
	n, ic, dstAddr := chainNet(t)
	var hops []TracerouteHop
	finished := false
	Traceroute(n.Host("src"), ic, dstAddr, 2, &hops, func() { finished = true })
	n.RunFor(10e9)
	if !finished {
		t.Fatal("did not stop at maxTTL")
	}
	if len(hops) != 2 {
		t.Errorf("hops = %+v", hops)
	}
	for _, h := range hops {
		if h.Reached {
			t.Error("reached within maxTTL=2 on a 3-router path")
		}
	}
}

func TestFragNeededError(t *testing.T) {
	// A narrow link in the middle: r0--r1 link gets MTU 576.
	n := inet.New(9)
	a := n.AddLAN("a", "10.1.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	b := n.AddLAN("b", "10.2.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	r0 := n.AddRouter("r0")
	r1 := n.AddRouter("r1")
	n.AttachRouter(r0, a)
	n.AttachRouter(r1, b)
	// Manually build the narrow transfer net.
	narrow := n.Sim.NewSegment("narrow", netsim.SegmentOpts{Latency: 1e6, MTU: 576})
	p := ipv4.MustParsePrefix("10.200.0.0/30")
	r0.AddIface("to-r1", narrow, p.Host(1), p)
	r1.AddIface("to-r0", narrow, p.Host(2), p)
	r0.Routes().Add(routeVia(r0, "10.2.0.0/24", p.Host(2)))
	r1.Routes().Add(routeVia(r1, "10.1.0.0/24", p.Host(1)))
	src := n.AddHost("src", a)
	dst := n.AddHost("dst", b)
	n.ComputeRoutes()
	// ComputeRoutes does not know about the manual link; re-add.
	r0.Routes().Add(routeVia(r0, "10.2.0.0/24", p.Host(2)))
	r1.Routes().Add(routeVia(r1, "10.1.0.0/24", p.Host(1)))
	EnableRouterErrors(r0)
	EnableRouterErrors(r1)
	ic := Install(src)
	Install(dst)

	var gotMTU int
	ic.OnError = func(from ipv4.Addr, m icmp.Message) {
		if m.Type == icmp.TypeDestUnreachable && m.Code == icmp.CodeFragNeeded {
			gotMTU = int(m.MTU)
		}
	}
	// A DF-marked packet bigger than the narrow link.
	_ = src.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Dst: dst.FirstAddr(), DontFrag: true},
		Payload: make([]byte, 1000),
	})
	n.RunFor(3e9)
	if gotMTU != 576 {
		t.Errorf("frag-needed MTU = %d, want 576", gotMTU)
	}
}

// routeVia builds a route through the first interface of h that can reach
// nexthop.
func routeVia(h *stack.Host, prefix string, nexthop ipv4.Addr) stack.Route {
	for _, ifc := range h.Ifaces() {
		if ifc.Prefix().Contains(nexthop) {
			return stack.Route{
				Prefix:  ipv4.MustParsePrefix(prefix),
				NextHop: nexthop,
				Iface:   ifc,
				Metric:  5,
			}
		}
	}
	panic("no interface reaches " + nexthop.String())
}
