package icmphost

import (
	"testing"

	"mob4x4/internal/icmp"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

func twoHosts(t testing.TB) (*inet.Network, *ICMP, *ICMP, ipv4.Addr, ipv4.Addr) {
	t.Helper()
	n := inet.New(1)
	lan := n.AddLAN("lan", "10.0.0.0/24", netsim.SegmentOpts{Latency: 1e6})
	gw := n.AddRouter("gw")
	n.AttachRouter(gw, lan)
	a := n.AddHost("a", lan)
	b := n.AddHost("b", lan)
	n.ComputeRoutes()
	return n, Install(a), Install(b), a.FirstAddr(), b.FirstAddr()
}

func TestEchoResponder(t *testing.T) {
	n, ica, icb, aAddr, bAddr := twoHosts(t)
	var replies []icmp.Message
	ica.OnEchoReply = func(src ipv4.Addr, m icmp.Message) {
		if src != bAddr {
			t.Errorf("reply from %s", src)
		}
		replies = append(replies, m)
	}
	_ = ica.Ping(ipv4.Zero, bAddr, 77, 3, []byte("data"))
	n.RunFor(2e9)
	if len(replies) != 1 {
		t.Fatalf("replies = %d", len(replies))
	}
	if replies[0].ID != 77 || replies[0].Seq != 3 || string(replies[0].Body) != "data" {
		t.Errorf("reply = %+v", replies[0])
	}
	if icb.EchoRequests != 1 || ica.EchoReplies != 1 {
		t.Errorf("counters: req=%d rep=%d", icb.EchoRequests, ica.EchoReplies)
	}
	_ = aAddr
}

func TestResponderDisabled(t *testing.T) {
	n, ica, icb, _, bAddr := twoHosts(t)
	icb.EchoResponder = false
	got := 0
	ica.OnEchoReply = func(ipv4.Addr, icmp.Message) { got++ }
	var sawRequest bool
	icb.OnEchoRequest = func(ipv4.Addr, icmp.Message) { sawRequest = true }
	_ = ica.Ping(ipv4.Zero, bAddr, 1, 1, nil)
	n.RunFor(2e9)
	if got != 0 {
		t.Error("disabled responder replied")
	}
	if !sawRequest {
		t.Error("request callback not invoked")
	}
}

func TestBindingNoticeDispatch(t *testing.T) {
	n, ica, _, aAddr, bAddr := twoHosts(t)
	var gotBinding *icmp.Message
	ica.OnBinding = func(src ipv4.Addr, m icmp.Message) { gotBinding = &m }

	// b sends a binding notice to a.
	notice := icmp.BindingNotice(ipv4.MustParseAddr("36.1.1.3"), ipv4.MustParseAddr("128.9.1.4"), 60)
	bHost := n.Host("b")
	_ = bHost.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: bAddr, Dst: aAddr},
		Payload: notice.Marshal(),
	})
	n.RunFor(2e9)
	if gotBinding == nil {
		t.Fatal("binding notice not dispatched")
	}
	if gotBinding.Home != ipv4.MustParseAddr("36.1.1.3") || gotBinding.Lifetime != 60 {
		t.Errorf("binding = %+v", gotBinding)
	}
}

func TestErrorDispatch(t *testing.T) {
	n, ica, _, aAddr, bAddr := twoHosts(t)
	var gotErr *icmp.Message
	ica.OnError = func(src ipv4.Addr, m icmp.Message) { gotErr = &m }
	orig := ipv4.Packet{Header: ipv4.Header{Protocol: 99, TTL: 1, Src: aAddr, Dst: bAddr}}
	msg, err := icmp.TimeExceeded(orig)
	if err != nil {
		t.Fatal(err)
	}
	_ = n.Host("b").SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: bAddr, Dst: aAddr},
		Payload: msg.Marshal(),
	})
	n.RunFor(2e9)
	if gotErr == nil || gotErr.Type != icmp.TypeTimeExceeded {
		t.Errorf("error dispatch: %+v", gotErr)
	}
}

func TestMalformedICMPIgnored(t *testing.T) {
	n, _, icb, _, bAddr := twoHosts(t)
	a := n.Host("a")
	_ = a.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Dst: bAddr},
		Payload: []byte{8, 0, 0}, // truncated
	})
	n.RunFor(2e9)
	if icb.EchoRequests != 0 {
		t.Error("malformed message counted")
	}
}
