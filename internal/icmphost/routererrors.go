package icmphost

import (
	"mob4x4/internal/icmp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// EnableRouterErrors wires ICMP error generation into a router's drop
// paths: TTL expiry produces Time Exceeded (what traceroute listens for)
// and a DF packet exceeding the output MTU produces Destination
// Unreachable / Fragmentation Needed (what path-MTU discovery listens
// for). The errors are sourced from the address of the interface the
// offending packet arrived on, per router convention.
func EnableRouterErrors(h *stack.Host) {
	h.TTLExceeded = func(in *stack.Iface, pkt ipv4.Packet) {
		if pkt.Protocol == ipv4.ProtoICMP {
			// Crude anti-storm rule: never answer ICMP with ICMP
			// errors about errors. (Echo requests deserve answers, but
			// distinguishing would require parsing; traceroute in this
			// simulation probes with UDP, the classic Van Jacobson
			// arrangement, so nothing is lost.)
			return
		}
		msg, err := icmp.TimeExceeded(pkt)
		if err != nil {
			return
		}
		src := routerErrorSource(h, in)
		if src.IsZero() {
			return
		}
		_ = h.SendIP(ipv4.Packet{
			Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: src, Dst: pkt.Src},
			Payload: msg.Marshal(),
		})
	}
	h.FragNeeded = func(out *stack.Iface, pkt ipv4.Packet, mtu int) {
		if pkt.Protocol == ipv4.ProtoICMP {
			return
		}
		msg, err := icmp.FragNeeded(pkt, mtu)
		if err != nil {
			return
		}
		src := routerErrorSource(h, nil)
		if src.IsZero() {
			return
		}
		_ = h.SendIP(ipv4.Packet{
			Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: src, Dst: pkt.Src},
			Payload: msg.Marshal(),
		})
	}
}

func routerErrorSource(h *stack.Host, preferred *stack.Iface) ipv4.Addr {
	if preferred != nil && !preferred.Addr().IsZero() {
		return preferred.Addr()
	}
	return h.FirstAddr()
}

// TracerouteHop is one probe result.
type TracerouteHop struct {
	TTL     int
	From    ipv4.Addr // router (or destination) that answered
	Reached bool      // true when the destination itself answered
}

// Traceroute runs the classic TTL sweep from a host toward dst with UDP
// probes (the Van Jacobson arrangement), collecting the Time Exceeded
// senders hop by hop. Results land in *hops as they arrive; done fires
// when the destination answers or maxTTL is exhausted. Routers on the
// path need EnableRouterErrors; the destination needs RespondToProbes
// (this simulation's hosts drop unknown-port UDP silently instead of
// sending Port Unreachable, so arrival is signalled by a UDP answer).
// The caller drives the scheduler.
func Traceroute(h *stack.Host, src *ICMP, dst ipv4.Addr, maxTTL int,
	hops *[]TracerouteHop, done func()) {
	const probePort = uint16(33434)
	const probeTimeout = vtime.Duration(2e9)

	finished := false
	finish := func() {
		if !finished {
			finished = true
			if done != nil {
				done()
			}
		}
	}
	var probe func(ttl int)
	var pending *vtime.Timer
	answered := func(hop TracerouteHop) {
		if finished {
			return
		}
		if pending != nil {
			pending.Stop()
		}
		*hops = append(*hops, hop)
		if hop.Reached || hop.TTL >= maxTTL {
			finish()
			return
		}
		probe(hop.TTL + 1)
	}

	sock, err := h.OpenUDP(ipv4.Zero, 0, func(s ipv4.Addr, sp uint16, d ipv4.Addr, p []byte) {
		// Response from the destination's probe responder.
		answered(TracerouteHop{TTL: len(*hops) + 1, From: s, Reached: true})
	})
	if err != nil {
		finish()
		return
	}

	prevOnError := src.OnError
	src.OnError = func(from ipv4.Addr, msg icmp.Message) {
		if prevOnError != nil {
			prevOnError(from, msg)
		}
		if msg.Type != icmp.TypeTimeExceeded {
			return
		}
		answered(TracerouteHop{TTL: len(*hops) + 1, From: from})
	}
	probe = func(ttl int) {
		d := udpDatagram(sock.Port(), probePort, []byte("traceroute-probe"))
		_ = h.SendIP(ipv4.Packet{
			Header: ipv4.Header{
				Protocol: ipv4.ProtoUDP, TTL: uint8(ttl),
				Src: h.SourceForDestination(dst), Dst: dst,
			},
			Payload: d,
		})
		// A probe can vanish (expired inside a tunnel, whose errors go
		// to the tunnel endpoint, not to us — Mobile IP hides hops).
		// Record a silent hop and move on.
		pending = h.Sched().After(probeTimeout, func() {
			answered(TracerouteHop{TTL: ttl})
		})
	}
	probe(1)
}

// RespondToProbes makes a host answer traceroute probes (UDP port 33434)
// so the sweep can detect arrival.
func RespondToProbes(h *stack.Host) error {
	var sock *stack.UDPSocket
	sock, err := h.OpenUDP(ipv4.Zero, 33434, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, p []byte) {
		_ = sock.SendToFrom(dst, src, srcPort, []byte("reached"))
	})
	return err
}

// udpDatagram builds a UDP payload without importing package udp (which
// would be fine, but the zero-checksum form keeps this helper tiny).
func udpDatagram(srcPort, dstPort uint16, body []byte) []byte {
	b := make([]byte, 8+len(body))
	b[0], b[1] = byte(srcPort>>8), byte(srcPort)
	b[2], b[3] = byte(dstPort>>8), byte(dstPort)
	total := 8 + len(body)
	b[4], b[5] = byte(total>>8), byte(total)
	copy(b[8:], body)
	return b
}
