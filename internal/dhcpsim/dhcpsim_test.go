package dhcpsim

import (
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
)

// dhcpLAN: a server and n clients on one segment.
func dhcpLAN(t testing.TB, poolSize int) (*inet.Network, *Server, func(name string) (*stack.Host, *Client)) {
	t.Helper()
	n := inet.New(5)
	lan := n.AddLAN("lan", "128.9.1.0/24", netsim.SegmentOpts{Latency: 1e6})
	gw := n.AddRouter("gw")
	n.AttachRouter(gw, lan)
	serverHost := n.AddHost("dhcp", lan)
	n.ComputeRoutes()
	srv, err := NewServer(serverHost, lan.Prefix, lan.Gateway, 100, 100+poolSize-1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string) (*stack.Host, *Client) {
		h := stack.NewHost(n.Sim, name)
		ifc := h.AddIface("eth0", lan.Seg, ipv4.Zero, ipv4.Prefix{})
		c, err := NewClient(h, ifc)
		if err != nil {
			t.Fatal(err)
		}
		return h, c
	}
	return n, srv, mk
}

func acquire(t testing.TB, n *inet.Network, c *Client) (Lease, error) {
	t.Helper()
	var lease Lease
	var aerr error
	done := false
	c.Acquire(func(l Lease, err error) { lease, aerr, done = l, err, true })
	n.RunFor(10e9)
	if !done {
		t.Fatal("acquisition never completed")
	}
	return lease, aerr
}

func TestAcquireLease(t *testing.T) {
	n, srv, mk := dhcpLAN(t, 10)
	_, c := mk("guest")
	lease, err := acquire(t, n, c)
	if err != nil {
		t.Fatal(err)
	}
	if lease.Addr != ipv4.MustParseAddr("128.9.1.100") {
		t.Errorf("leased %s", lease.Addr)
	}
	if lease.Prefix.Bits != 24 || lease.Gateway.IsZero() || lease.TTLSec == 0 {
		t.Errorf("lease incomplete: %+v", lease)
	}
	if srv.Available() != 9 {
		t.Errorf("pool = %d", srv.Available())
	}
}

func TestDistinctClientsDistinctAddresses(t *testing.T) {
	n, _, mk := dhcpLAN(t, 10)
	_, c1 := mk("g1")
	_, c2 := mk("g2")
	l1, err1 := acquire(t, n, c1)
	l2, err2 := acquire(t, n, c2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if l1.Addr == l2.Addr {
		t.Errorf("both clients got %s", l1.Addr)
	}
}

func TestSameClientKeepsAddress(t *testing.T) {
	n, _, mk := dhcpLAN(t, 10)
	_, c := mk("guest")
	l1, _ := acquire(t, n, c)
	l2, err := acquire(t, n, c) // re-acquire (e.g. after wake from sleep)
	if err != nil {
		t.Fatal(err)
	}
	if l1.Addr != l2.Addr {
		t.Errorf("address changed: %s -> %s", l1.Addr, l2.Addr)
	}
}

func TestPoolExhaustion(t *testing.T) {
	n, srv, mk := dhcpLAN(t, 1)
	_, c1 := mk("g1")
	if _, err := acquire(t, n, c1); err != nil {
		t.Fatal(err)
	}
	_, c2 := mk("g2")
	c2.Retries = 2
	if _, err := acquire(t, n, c2); err == nil {
		t.Error("second lease granted from empty pool")
	}
	if srv.Stats.PoolEmpty == 0 {
		t.Error("pool-empty not counted")
	}
}

func TestReleaseReturnsAddress(t *testing.T) {
	n, srv, mk := dhcpLAN(t, 1)
	_, c1 := mk("g1")
	if _, err := acquire(t, n, c1); err != nil {
		t.Fatal(err)
	}
	c1.Release()
	n.RunFor(2e9)
	if srv.Available() != 1 {
		t.Fatalf("pool = %d after release", srv.Available())
	}
	_, c2 := mk("g2")
	if _, err := acquire(t, n, c2); err != nil {
		t.Errorf("released address not reusable: %v", err)
	}
}

func TestLeaseExpiry(t *testing.T) {
	n, srv, mk := dhcpLAN(t, 1)
	srv.LeaseSec = 30
	_, c := mk("g1")
	if _, err := acquire(t, n, c); err != nil {
		t.Fatal(err)
	}
	if srv.Available() != 0 {
		t.Fatal("lease not committed")
	}
	n.RunFor(31e9)
	if srv.Available() != 1 {
		t.Errorf("lease did not expire: pool = %d", srv.Available())
	}
}

func TestAcquireTimesOutWithoutServer(t *testing.T) {
	n := inet.New(5)
	lan := n.AddLAN("lan", "128.9.1.0/24", netsim.SegmentOpts{})
	h := stack.NewHost(n.Sim, "lonely")
	ifc := h.AddIface("eth0", lan.Seg, ipv4.Zero, ipv4.Prefix{})
	c, err := NewClient(h, ifc)
	if err != nil {
		t.Fatal(err)
	}
	c.Retries = 2
	var gotErr error
	done := false
	c.Acquire(func(l Lease, err error) { gotErr, done = err, true })
	n.RunFor(10e9)
	if !done || gotErr == nil {
		t.Errorf("expected timeout: done=%v err=%v", done, gotErr)
	}
}
