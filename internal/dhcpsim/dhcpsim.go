// Package dhcpsim implements the address-assignment path of Section 2:
// a mobile host arriving on a visited network "may [obtain a guest
// connection] by connecting to an Ethernet segment and having an address
// assigned automatically by DHCP [RFC1541]". The exchange is the classic
// DISCOVER/OFFER/REQUEST/ACK over UDP broadcast, simplified to the fields
// the simulation uses: offered address, prefix, gateway and lease time.
package dhcpsim

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// Message types.
const (
	typeDiscover uint8 = 1
	typeOffer    uint8 = 2
	typeRequest  uint8 = 3
	typeAck      uint8 = 5
	typeRelease  uint8 = 7
)

// message is the simplified DHCP wire unit.
type message struct {
	mtype      uint8
	xid        uint32 // transaction id, chosen by the client
	clientID   uint64 // stable client identity (the NIC's MAC)
	addr       ipv4.Addr
	prefixBits uint8
	gateway    ipv4.Addr
	leaseSec   uint32
}

const msgLen = 1 + 4 + 8 + 4 + 1 + 4 + 4

func (m *message) marshal() []byte {
	b := make([]byte, msgLen)
	b[0] = m.mtype
	binary.BigEndian.PutUint32(b[1:], m.xid)
	binary.BigEndian.PutUint64(b[5:], m.clientID)
	copy(b[13:17], m.addr[:])
	b[17] = m.prefixBits
	copy(b[18:22], m.gateway[:])
	binary.BigEndian.PutUint32(b[22:], m.leaseSec)
	return b
}

func parseMessage(b []byte) (message, error) {
	var m message
	if len(b) < msgLen {
		return m, fmt.Errorf("dhcpsim: truncated message (%d bytes)", len(b))
	}
	m.mtype = b[0]
	m.xid = binary.BigEndian.Uint32(b[1:])
	m.clientID = binary.BigEndian.Uint64(b[5:])
	copy(m.addr[:], b[13:17])
	m.prefixBits = b[17]
	copy(m.gateway[:], b[18:22])
	m.leaseSec = binary.BigEndian.Uint32(b[22:])
	return m, nil
}

// ServerStats counts server activity.
type ServerStats struct {
	Discovers uint64
	Offers    uint64
	Acks      uint64
	Releases  uint64
	PoolEmpty uint64
}

// Server leases addresses from a pool on one LAN.
type Server struct {
	host    *stack.Host
	sock    *stack.UDPSocket
	prefix  ipv4.Prefix
	gateway ipv4.Addr
	// LeaseSec is the lease duration granted (default 600).
	LeaseSec uint32

	pool   []ipv4.Addr
	leases map[uint64]*lease // by clientID

	Stats ServerStats
}

type lease struct {
	addr   ipv4.Addr
	expiry *vtime.Timer
}

// NewServer starts a DHCP server on host, leasing addresses first..last
// (host numbers within prefix) with the given gateway.
func NewServer(host *stack.Host, prefix ipv4.Prefix, gateway ipv4.Addr, first, last int) (*Server, error) {
	s := &Server{
		host:     host,
		prefix:   prefix,
		gateway:  gateway,
		LeaseSec: 600,
		leases:   make(map[uint64]*lease),
	}
	for i := first; i <= last; i++ {
		s.pool = append(s.pool, prefix.Host(i))
	}
	sock, err := host.OpenUDP(ipv4.Zero, udp.PortDHCPServer, s.serve)
	if err != nil {
		return nil, fmt.Errorf("dhcpsim: %w", err)
	}
	s.sock = sock
	return s, nil
}

// Available reports the number of unleased addresses.
func (s *Server) Available() int { return len(s.pool) }

func (s *Server) serve(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	m, err := parseMessage(payload)
	if err != nil {
		return
	}
	switch m.mtype {
	case typeDiscover:
		s.Stats.Discovers++
		addr, ok := s.addrFor(m.clientID)
		if !ok {
			s.Stats.PoolEmpty++
			return
		}
		s.Stats.Offers++
		s.reply(message{
			mtype: typeOffer, xid: m.xid, clientID: m.clientID,
			addr: addr, prefixBits: uint8(s.prefix.Bits), gateway: s.gateway,
			leaseSec: s.LeaseSec,
		})
	case typeRequest:
		s.Stats.Acks++
		addr, ok := s.addrFor(m.clientID)
		if !ok || addr != m.addr {
			return // stale request for an address we did not offer
		}
		s.commit(m.clientID, addr)
		s.reply(message{
			mtype: typeAck, xid: m.xid, clientID: m.clientID,
			addr: addr, prefixBits: uint8(s.prefix.Bits), gateway: s.gateway,
			leaseSec: s.LeaseSec,
		})
	case typeRelease:
		s.Stats.Releases++
		s.release(m.clientID)
	}
}

// addrFor returns the address this client holds or would be offered.
func (s *Server) addrFor(clientID uint64) (ipv4.Addr, bool) {
	if l, ok := s.leases[clientID]; ok {
		return l.addr, true
	}
	if len(s.pool) == 0 {
		return ipv4.Zero, false
	}
	return s.pool[0], true
}

func (s *Server) commit(clientID uint64, addr ipv4.Addr) {
	l, ok := s.leases[clientID]
	if !ok {
		// Take addr out of the pool.
		for i, a := range s.pool {
			if a == addr {
				s.pool = append(s.pool[:i], s.pool[i+1:]...)
				break
			}
		}
		l = &lease{addr: addr}
		s.leases[clientID] = l
	} else if l.expiry != nil {
		l.expiry.Stop()
	}
	id := clientID
	l.expiry = s.host.Sched().After(vtime.Duration(s.LeaseSec)*1e9, func() {
		s.release(id)
	})
}

func (s *Server) release(clientID uint64) {
	l, ok := s.leases[clientID]
	if !ok {
		return
	}
	if l.expiry != nil {
		l.expiry.Stop()
	}
	delete(s.leases, clientID)
	s.pool = append(s.pool, l.addr)
}

// reply broadcasts (the client has no address yet).
func (s *Server) reply(m message) {
	_ = s.sock.SendToFrom(s.host.FirstAddr(), ipv4.Broadcast, udp.PortDHCPClient, m.marshal())
}

// Lease is the result a client obtains.
type Lease struct {
	Addr    ipv4.Addr
	Prefix  ipv4.Prefix
	Gateway ipv4.Addr
	TTLSec  uint32
}

// Client performs one DHCP acquisition on an interface.
type Client struct {
	host *stack.Host
	ifc  *stack.Iface
	sock *stack.UDPSocket

	xid   uint32
	state uint8 // 0 idle, 1 discovering, 2 requesting, 3 bound
	offer message
	timer *vtime.Timer
	tries int
	done  func(Lease, error)

	// Timeout and Retries configure patience (defaults 1s, 4).
	Timeout vtime.Duration
	Retries int
}

// NewClient creates a DHCP client bound to the interface.
func NewClient(host *stack.Host, ifc *stack.Iface) (*Client, error) {
	c := &Client{host: host, ifc: ifc, Timeout: vtime.Duration(1e9), Retries: 4}
	sock, err := host.OpenUDP(ipv4.Zero, udp.PortDHCPClient, c.receive)
	if err != nil {
		return nil, fmt.Errorf("dhcpsim: client: %w", err)
	}
	c.sock = sock
	return c, nil
}

// Acquire runs DISCOVER/OFFER/REQUEST/ACK; done receives the lease. The
// interface needs no address — everything is broadcast.
func (c *Client) Acquire(done func(Lease, error)) {
	c.xid++
	c.state = 1
	c.tries = 0
	c.done = done
	c.sendDiscover()
}

func (c *Client) clientID() uint64 { return uint64(c.ifc.NIC().MAC()) }

func (c *Client) sendDiscover() {
	m := message{mtype: typeDiscover, xid: c.xid, clientID: c.clientID()}
	_ = c.sock.SendToFrom(c.ifc.Addr(), ipv4.Broadcast, udp.PortDHCPServer, m.marshal())
	c.armTimer(func() { c.sendDiscover() })
}

func (c *Client) sendRequest() {
	m := message{mtype: typeRequest, xid: c.xid, clientID: c.clientID(), addr: c.offer.addr}
	_ = c.sock.SendToFrom(c.ifc.Addr(), ipv4.Broadcast, udp.PortDHCPServer, m.marshal())
	c.armTimer(func() { c.sendRequest() })
}

// Release gives the lease back.
func (c *Client) Release() {
	if c.state != 3 {
		return
	}
	m := message{mtype: typeRelease, xid: c.xid, clientID: c.clientID()}
	_ = c.sock.SendToFrom(c.ifc.Addr(), ipv4.Broadcast, udp.PortDHCPServer, m.marshal())
	c.state = 0
}

func (c *Client) armTimer(resend func()) {
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timer = c.host.Sched().After(c.Timeout, func() {
		c.tries++
		if c.tries >= c.Retries {
			st := c.state
			c.state = 0
			if c.done != nil && st != 0 && st != 3 {
				c.done(Lease{}, fmt.Errorf("dhcpsim: acquisition timed out"))
			}
			return
		}
		resend()
	})
}

func (c *Client) receive(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	m, err := parseMessage(payload)
	if err != nil || m.clientID != c.clientID() || m.xid != c.xid {
		return
	}
	switch {
	case m.mtype == typeOffer && c.state == 1:
		c.offer = m
		c.state = 2
		c.tries = 0
		c.sendRequest()
	case m.mtype == typeAck && c.state == 2:
		c.state = 3
		if c.timer != nil {
			c.timer.Stop()
		}
		if c.done != nil {
			c.done(Lease{
				Addr:    m.addr,
				Prefix:  ipv4.PrefixFrom(m.addr, int(m.prefixBits)),
				Gateway: m.gateway,
				TTLSec:  m.leaseSec,
			}, nil)
		}
	}
}
