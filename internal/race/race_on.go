//go:build race

package race

func init() { Enabled = true }
