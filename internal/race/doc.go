// Package race exposes whether the race detector is compiled into the
// current binary. Allocation-pinning tests consult it: the detector's
// shadow memory and altered GC cadence make sync.Pool hit rates — and so
// testing.AllocsPerRun counts — nondeterministic, so those assertions
// only hold in non-race builds (the benchmark gate covers them there).
package race

// Enabled reports whether the race detector is compiled in. It is set by
// an init function in a race-tagged file (a build-tagged constant pair
// would trip tools that load all files regardless of tags).
var Enabled bool
