package metrics

import (
	"sort"

	"mob4x4/internal/assert"
)

// Merge folds src into r. The sharded engine gives every region Sim its
// own Registry — updated single-threaded from inside that region's event
// loop, no locks — and the measurement phase merges them into one
// cluster-wide view once the workers have joined:
//
//   - Counters (static families, drop causes, named) sum.
//   - Gauges sum: every gauge in this codebase moves by Add deltas
//     (registered-node counts, binding-table sizes), so per-region levels
//     are disjoint contributions to the cluster level.
//   - Histograms merge bucket-wise, which is exact — bucket counts and
//     sums are commutative monoids — so quantiles computed after the
//     merge equal those of a single-registry run over the same
//     observations. Matching names must use identical bounds.
//
// Named instruments present only in src are created in r; names are
// visited in sorted order so instrument creation stays deterministic.
// src is left untouched.
func (r *Registry) Merge(src *Registry) {
	r.IPSent.Add(src.IPSent.Value())
	r.IPForwarded.Add(src.IPForwarded.Value())
	r.IPDelivered.Add(src.IPDelivered.Value())
	r.LinkFrames.Add(src.LinkFrames.Value())
	r.LinkBytes.Add(src.LinkBytes.Value())
	r.Encaps.Add(src.Encaps.Value())
	r.Decaps.Add(src.Decaps.Value())
	r.TunnelForwards.Add(src.TunnelForwards.Value())
	for i := 0; i < NumModes; i++ {
		r.OutPackets[i].Add(src.OutPackets[i].Value())
		r.OutBytes[i].Add(src.OutBytes[i].Value())
		r.InPackets[i].Add(src.InPackets[i].Value())
		r.InBytes[i].Add(src.InBytes[i].Value())
		r.OutWireBytes[i].Add(src.OutWireBytes[i].Value())
		r.InWireBytes[i].Add(src.InWireBytes[i].Value())
	}
	for c := 0; c < NumDropCauses; c++ {
		r.drops[c].Add(src.drops[c].Value())
	}
	for _, name := range sortedKeys(src.counters) {
		r.Counter(name).Add(src.counters[name].Value())
	}
	for _, name := range sortedKeys(src.gauges) {
		r.Gauge(name).Add(src.gauges[name].Value())
	}
	for _, name := range sortedKeys(src.histograms) {
		sh := src.histograms[name]
		dh := r.Histogram(name, sh.bounds)
		if len(dh.bounds) != len(sh.bounds) {
			assert.Unreachable("metrics: Merge of histogram %q with mismatched bounds (%d vs %d)",
				name, len(dh.bounds), len(sh.bounds))
		}
		for i, b := range sh.bounds {
			if dh.bounds[i] != b {
				assert.Unreachable("metrics: Merge of histogram %q with mismatched bounds", name)
			}
		}
		for i, c := range sh.counts {
			dh.counts[i] += c
		}
		dh.sum += sh.sum
		dh.n += sh.n
	}
}

// sortedKeys returns m's keys in lexical order (deterministic merge
// visitation).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
