// Package metrics is the deterministic observability layer for the
// mobility reproduction. A Registry belongs to one netsim.Sim and is
// updated single-threaded from inside the event loop, so instruments
// carry no locks and no atomics: an increment is a plain integer add,
// which is what keeps the steady-state forwarding path at zero
// allocations and lets every metric be asserted byte-for-byte in tests
// (the simulation is deterministic, therefore so are its counters).
//
// The registry has two tiers:
//
//   - Static hot families: fixed struct fields updated on the per-packet
//     fast path (IP dispositions, link frames/bytes, encap/decap, the
//     per-mode 4x4 packet/byte grids, the drop-cause vector). These are
//     addressed at compile time — no map lookup, no interning, no
//     allocation.
//   - Named instruments: Counter/Gauge/Histogram looked up by string
//     name. These are for control-plane events (registrations, moves,
//     binding-table sizes) where a map lookup at setup time is fine;
//     callers resolve the instrument once and keep the pointer.
//
// All timing flows through vtime; nothing here reads the wall clock.
package metrics

import "mob4x4/internal/vtime"

// Counter is a monotonically increasing uint64. The zero value is ready
// to use.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is an instantaneous signed level (binding-table size, registered
// flag). The zero value is ready to use.
type Gauge struct{ v int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v = n }

// Add moves the level by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v += delta }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v }

// Histogram accumulates observations into fixed upper-bound buckets
// (ascending, in the unit the caller chooses — registration RTTs use
// vtime nanoseconds). Observe is a linear scan over a handful of bounds:
// no allocation, no branching on map state. counts has len(bounds)+1
// entries; the last is the overflow bucket.
type Histogram struct {
	bounds []int64
	counts []uint64
	sum    int64
	n      uint64
}

// NewHistogram builds a histogram with the given ascending upper bounds.
// The bounds slice is retained; callers pass package-level arrays.
func NewHistogram(bounds []int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.n++
}

// ObserveDuration records a vtime duration in nanoseconds.
func (h *Histogram) ObserveDuration(d vtime.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// DefaultLatencyBuckets are nanosecond bounds spanning one LAN hop to a
// badly-backed-off registration round trip.
var DefaultLatencyBuckets = []int64{
	1e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6, 1e9, 5e9,
}

// DropCause names why a packet died anywhere in the system — link faults,
// stack dispositions, and injected failures share this one vector so the
// chaos invariants (and the operator) read a single table instead of
// cross-referencing tracer internals. DropFault is deliberately the zero
// value: a netsim fault hook that drops without setting a cause still
// lands in a real bucket.
type DropCause int

const (
	// DropFault is a fault-hook drop with no more specific attribution.
	DropFault DropCause = iota
	// DropGilbertElliott is a loss-burst drop from the two-state channel.
	DropGilbertElliott
	// DropBlackhole is a drop by an injected silent-discard hook.
	DropBlackhole
	// DropDown is a frame offered to an administratively-down segment.
	DropDown
	// DropMTU is an oversized frame rejected by a segment.
	DropMTU
	// DropLoss is a segment's configured random loss.
	DropLoss
	// DropNoDest is a frame with no attached receiver on the segment.
	DropNoDest
	// DropFilter is a boundary-filter (ingress/egress) rejection.
	DropFilter
	// DropTTL is a forwardable packet whose TTL expired.
	DropTTL
	// DropNoRoute is a packet with no matching route.
	DropNoRoute
	// DropNoARP is a packet abandoned after ARP resolution failed.
	DropNoARP
	// DropMalformed is an unparseable IP header or bad reassembly.
	DropMalformed
	// DropNoProto is a delivered packet with no protocol handler.
	DropNoProto
	// DropFragNeeded is a DF-marked packet larger than the output MTU.
	DropFragNeeded
	// DropARPExpired is a packet shed from the ARP pending queue.
	DropARPExpired
	// DropAuthBadMAC is a registration message rejected because its
	// mobile-home authenticator was missing, malformed, or failed
	// verification (forged or tampered message).
	DropAuthBadMAC
	// DropAuthReplay is a registration rejected because its
	// identification was already accepted inside the replay window
	// (an exact re-emission of a legitimate message).
	DropAuthReplay
	// DropAuthStaleID is a registration rejected because its
	// identification fell behind the replay window entirely (an old
	// message replayed after the window moved on).
	DropAuthStaleID

	// NumDropCauses closes the enum (mob4x4vet:modeswitch sentinel).
	NumDropCauses = 18
)

var dropCauseNames = [NumDropCauses]string{
	"fault", "gilbert_elliott", "blackhole", "down", "mtu", "loss",
	"no_dest", "filter", "ttl", "no_route", "no_arp", "malformed",
	"no_proto", "frag_needed", "arp_expired", "auth_bad_mac",
	"auth_replay", "auth_stale_id",
}

// String returns the stable snake_case cause label used in snapshots.
func (c DropCause) String() string {
	if c < 0 || int(c) >= NumDropCauses {
		return "invalid"
	}
	return dropCauseNames[c]
}

// NumModes is the side of the paper's grid. The registry deliberately
// does not import core (core sits above netsim, which owns a Registry),
// so the mode axes are mirrored here and cross-checked against
// core.OutMode/core.InMode String() values by a test in experiments.
const NumModes = 4

// OutModeNames and InModeNames label the mode-indexed families below,
// index-compatible with core.OutMode / core.InMode.
var (
	OutModeNames = [NumModes]string{"Out-IE", "Out-DE", "Out-DH", "Out-DT"}
	InModeNames  = [NumModes]string{"In-IE", "In-DE", "In-DH", "In-DT"}
)

// Registry is one simulation's metric store.
type Registry struct {
	// IP dispositions (per-stack totals, summed over all hosts).
	IPSent      Counter
	IPForwarded Counter
	IPDelivered Counter

	// Link layer: frames and on-the-wire bytes actually carried.
	LinkFrames Counter
	LinkBytes  Counter

	// Tunnel plumbing: encapsulations, decapsulations, and forwarding
	// hops taken by packets still inside a tunnel (outer protocol is an
	// encapsulation protocol).
	Encaps         Counter
	Decaps         Counter
	TunnelForwards Counter

	// The 4x4 grid, mobile-host centric: packets/bytes sent by the
	// mobile host per Out mode, and delivered to it per In mode. Bytes
	// count the inner (useful) packet, not tunnel overhead — overhead is
	// Encaps × codec overhead, reported separately.
	OutPackets [NumModes]Counter
	OutBytes   [NumModes]Counter
	InPackets  [NumModes]Counter
	InBytes    [NumModes]Counter

	// Bytes-on-wire per mode: what the mobile host's traffic actually
	// cost the network, tunnel headers included — the outer packet's
	// total length for encapsulated modes, the plain packet's for the
	// rest. OutWireBytes[m] - OutBytes[m] is the encapsulation overhead
	// the route-optimization tier exists to shrink (E17).
	OutWireBytes [NumModes]Counter
	InWireBytes  [NumModes]Counter

	drops [NumDropCauses]Counter

	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Drop counts one packet death for the given cause. Out-of-range causes
// (future enum growth crossing package versions) land in DropFault
// rather than corrupting memory.
func (r *Registry) Drop(c DropCause) {
	if c < 0 || int(c) >= NumDropCauses {
		c = DropFault
	}
	r.drops[c].Inc()
}

// DropN counts n packet deaths at once (batch sheds, e.g. an ARP queue
// expiring with several packets waiting).
func (r *Registry) DropN(c DropCause, n uint64) {
	if c < 0 || int(c) >= NumDropCauses {
		c = DropFault
	}
	r.drops[c].Add(n)
}

// DropCount returns the count for one cause.
func (r *Registry) DropCount(c DropCause) uint64 {
	if c < 0 || int(c) >= NumDropCauses {
		return 0
	}
	return r.drops[c].Value()
}

// Counter returns the named counter, creating it on first use. Callers
// on any hot path must resolve once at setup and keep the pointer.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	if r.counters == nil {
		r.counters = make(map[string]*Counter)
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls ignore bounds (the first registration
// wins), matching the resolve-once discipline.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	if h, ok := r.histograms[name]; ok {
		return h
	}
	if r.histograms == nil {
		r.histograms = make(map[string]*Histogram)
	}
	h := NewHistogram(bounds)
	r.histograms[name] = h
	return h
}
