package metrics

import "testing"

func TestQuantileEmpty(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30})
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %d, want 0", got)
	}
}

func TestQuantileSingleBucket(t *testing.T) {
	h := NewHistogram([]int64{100})
	for i := 0; i < 10; i++ {
		h.Observe(50)
	}
	// All mass in [0,100]: p50 interpolates to the middle of the bucket.
	if got := h.Quantile(0.5); got != 50 {
		t.Fatalf("p50 = %d, want 50", got)
	}
	if got := h.Quantile(1); got != 100 {
		t.Fatalf("p100 = %d, want 100", got)
	}
}

func TestQuantileUniform(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 30, 40})
	// One observation per bucket: quartiles land on bucket edges.
	for _, v := range []int64{5, 15, 25, 35} {
		h.Observe(v)
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.25, 10},
		{0.5, 20},
		{0.75, 30},
		{1, 40},
	}
	for _, c := range cases {
		if got := h.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	h := NewHistogram([]int64{10, 110})
	h.Observe(5) // bucket [0,10]
	for i := 0; i < 9; i++ {
		h.Observe(60) // bucket (10,110]
	}
	// p50: rank 5 of 10; first bucket holds 1, so the rank sits 4/9 of
	// the way through the second bucket: 10 + 100*4/9 ≈ 54.
	got := h.Quantile(0.5)
	if got < 50 || got > 58 {
		t.Fatalf("p50 = %d, want ≈54", got)
	}
}

func TestQuantileOverflowClamps(t *testing.T) {
	h := NewHistogram([]int64{10, 20})
	h.Observe(1000)
	h.Observe(2000)
	if got := h.Quantile(0.99); got != 20 {
		t.Fatalf("overflow p99 = %d, want clamp to last bound 20", got)
	}
}

func TestQuantileSnapshotMatchesLive(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", []int64{10, 20, 30})
	for _, v := range []int64{3, 12, 17, 22, 29} {
		h.Observe(v)
	}
	s := r.Snapshot()
	var hs HistogramSample
	found := false
	for _, c := range s.Histograms {
		if c.Name == "q_test" {
			hs, found = c, true
		}
	}
	if !found {
		t.Fatal("q_test histogram missing from snapshot")
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		if hs.Quantile(q) != h.Quantile(q) {
			t.Errorf("Quantile(%v): snapshot %d != live %d", q, hs.Quantile(q), h.Quantile(q))
		}
	}
}
