package metrics

import (
	"io"
	"sort"
	"sync"
)

// Collector gathers registries from many scenarios (one per Sim) so
// cmd/mob4x4 can dump every run's metrics after an experiment finishes.
// Registration is the only concurrent operation — parallel experiment
// workers build scenarios simultaneously — so it takes a mutex; reads
// happen after all workers join. Output is sorted by (label, content)
// so worker count and completion order never change a dump.
type Collector struct {
	mu      sync.Mutex
	entries []collectorEntry
}

type collectorEntry struct {
	label string
	reg   *Registry
}

// Register adds a registry under a human-readable label (typically
// "seed=N" or an experiment-specific cell label).
func (c *Collector) Register(label string, reg *Registry) {
	if c == nil || reg == nil {
		return
	}
	c.mu.Lock()
	c.entries = append(c.entries, collectorEntry{label: label, reg: reg})
	c.mu.Unlock()
}

// snapshotAll snapshots every registered registry and sorts by label,
// breaking ties by serialized content.
func (c *Collector) snapshotAll() []LabeledSnapshot {
	c.mu.Lock()
	entries := append([]collectorEntry(nil), c.entries...)
	c.mu.Unlock()
	out := make([]LabeledSnapshot, 0, len(entries))
	for _, e := range entries {
		out = append(out, LabeledSnapshot{Label: e.label, Snap: e.reg.Snapshot()})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return string(out[i].Snap.JSON()) < string(out[j].Snap.JSON())
	})
	return out
}

// LabeledSnapshot pairs a snapshot with its registration label.
type LabeledSnapshot struct {
	Label string   `json:"label"`
	Snap  Snapshot `json:"snapshot"`
}

// WriteText dumps every registered registry as text, each under a
// "== label ==" header.
func (c *Collector) WriteText(w io.Writer) error {
	for _, ls := range c.snapshotAll() {
		if _, err := io.WriteString(w, "== "+ls.Label+" ==\n"); err != nil {
			return err
		}
		if err := ls.Snap.WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

// Snapshots returns the sorted labeled snapshots (for JSON dumps).
func (c *Collector) Snapshots() []LabeledSnapshot { return c.snapshotAll() }
