package metrics

import (
	"encoding/json"
	"io"
	"sort"
	"strconv"

	"mob4x4/internal/assert"
)

// CounterSample is one counter at snapshot time.
type CounterSample struct {
	Name  string `json:"name"`
	Value uint64 `json:"value"`
}

// GaugeSample is one gauge at snapshot time.
type GaugeSample struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSample is one histogram at snapshot time. Buckets holds
// cumulative-style per-bucket counts aligned with Bounds plus a final
// overflow entry.
type HistogramSample struct {
	Name    string   `json:"name"`
	Count   uint64   `json:"count"`
	Sum     int64    `json:"sum"`
	Bounds  []int64  `json:"bounds"`
	Buckets []uint64 `json:"buckets"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name so that
// two identical registries always serialize to identical bytes. Static
// families appear under stable slash-separated names ("ip/forwarded",
// "drop/blackhole", "grid/out_pkts{Out-IE}"); zero-valued static
// counters are elided to keep dumps readable, while named instruments
// always appear (their existence is itself a signal the subsystem ran).
type Snapshot struct {
	Counters   []CounterSample   `json:"counters"`
	Gauges     []GaugeSample     `json:"gauges,omitempty"`
	Histograms []HistogramSample `json:"histograms,omitempty"`
}

func appendStatic(dst []CounterSample, name string, c *Counter) []CounterSample {
	if v := c.Value(); v != 0 {
		dst = append(dst, CounterSample{Name: name, Value: v})
	}
	return dst
}

// Snapshot copies the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot

	s.Counters = appendStatic(s.Counters, "ip/sent", &r.IPSent)
	s.Counters = appendStatic(s.Counters, "ip/forwarded", &r.IPForwarded)
	s.Counters = appendStatic(s.Counters, "ip/delivered", &r.IPDelivered)
	s.Counters = appendStatic(s.Counters, "link/frames", &r.LinkFrames)
	s.Counters = appendStatic(s.Counters, "link/bytes", &r.LinkBytes)
	s.Counters = appendStatic(s.Counters, "tunnel/encaps", &r.Encaps)
	s.Counters = appendStatic(s.Counters, "tunnel/decaps", &r.Decaps)
	s.Counters = appendStatic(s.Counters, "tunnel/forwards", &r.TunnelForwards)
	for i := 0; i < NumModes; i++ {
		s.Counters = appendStatic(s.Counters, "grid/out_pkts{"+OutModeNames[i]+"}", &r.OutPackets[i])
		s.Counters = appendStatic(s.Counters, "grid/out_bytes{"+OutModeNames[i]+"}", &r.OutBytes[i])
		s.Counters = appendStatic(s.Counters, "grid/in_pkts{"+InModeNames[i]+"}", &r.InPackets[i])
		s.Counters = appendStatic(s.Counters, "grid/in_bytes{"+InModeNames[i]+"}", &r.InBytes[i])
		s.Counters = appendStatic(s.Counters, "grid/out_wire_bytes{"+OutModeNames[i]+"}", &r.OutWireBytes[i])
		s.Counters = appendStatic(s.Counters, "grid/in_wire_bytes{"+InModeNames[i]+"}", &r.InWireBytes[i])
	}
	for c := 0; c < NumDropCauses; c++ {
		s.Counters = appendStatic(s.Counters, "drop/"+DropCause(c).String(), &r.drops[c])
	}
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterSample{Name: name, Value: c.Value()})
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })

	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugeSample{Name: name, Value: g.Value()})
	}
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })

	for name, h := range r.histograms {
		hs := HistogramSample{
			Name:    name,
			Count:   h.Count(),
			Sum:     h.Sum(),
			Bounds:  append([]int64(nil), h.bounds...),
			Buckets: append([]uint64(nil), h.counts...),
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })

	return s
}

// Counter returns the sampled value for name and whether it was present.
func (s Snapshot) Counter(name string) (uint64, bool) {
	i := sort.Search(len(s.Counters), func(i int) bool { return s.Counters[i].Name >= name })
	if i < len(s.Counters) && s.Counters[i].Name == name {
		return s.Counters[i].Value, true
	}
	return 0, false
}

// JSON renders the snapshot as indented, deterministic JSON.
func (s Snapshot) JSON() []byte {
	b, err := json.MarshalIndent(s, "", "  ")
	// Snapshot contains only integers, strings and slices; Marshal
	// cannot fail on it.
	assert.NoError(err, "metrics: snapshot marshal")
	return append(b, '\n')
}

// WriteText renders a line-oriented dump: "name value" for counters and
// gauges, "name count=N sum=S" for histograms. Deterministic.
func (s Snapshot) WriteText(w io.Writer) error {
	var buf []byte
	for _, c := range s.Counters {
		buf = buf[:0]
		buf = append(buf, c.Name...)
		buf = append(buf, ' ')
		buf = strconv.AppendUint(buf, c.Value, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		buf = buf[:0]
		buf = append(buf, g.Name...)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, g.Value, 10)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		buf = buf[:0]
		buf = append(buf, h.Name...)
		buf = append(buf, " count="...)
		buf = strconv.AppendUint(buf, h.Count, 10)
		buf = append(buf, " sum="...)
		buf = strconv.AppendInt(buf, h.Sum, 10)
		for i, n := range h.Buckets {
			buf = append(buf, " le:"...)
			if i < len(h.Bounds) {
				buf = strconv.AppendInt(buf, h.Bounds[i], 10)
			} else {
				buf = append(buf, "+inf"...)
			}
			buf = append(buf, '=')
			buf = strconv.AppendUint(buf, n, 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
