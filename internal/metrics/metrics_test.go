package metrics

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"mob4x4/internal/vtime"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Fatalf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBucketing(t *testing.T) {
	h := NewHistogram([]int64{10, 100})
	for _, v := range []int64{1, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	if h.Sum() != 1+10+11+100+101+5000 {
		t.Fatalf("sum = %d", h.Sum())
	}
	want := []uint64{2, 2, 2} // <=10, <=100, overflow
	if !reflect.DeepEqual(h.counts, want) {
		t.Fatalf("buckets = %v, want %v", h.counts, want)
	}
}

func TestNamedInstrumentsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("Counter(name) must return the same instrument")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(name) must return the same instrument")
	}
	if r.Histogram("h", DefaultLatencyBuckets) != r.Histogram("h", nil) {
		t.Fatal("Histogram(name) must return the same instrument")
	}
}

func TestDropCauseNamesAndBounds(t *testing.T) {
	seen := map[string]bool{}
	for c := 0; c < NumDropCauses; c++ {
		name := DropCause(c).String()
		if name == "" || name == "invalid" {
			t.Fatalf("cause %d has no name", c)
		}
		if seen[name] {
			t.Fatalf("duplicate cause name %q", name)
		}
		seen[name] = true
	}
	if DropCause(-1).String() != "invalid" || DropCause(NumDropCauses).String() != "invalid" {
		t.Fatal("out-of-range causes must stringify as invalid")
	}
	r := NewRegistry()
	r.Drop(DropCause(99)) // out of range lands in the generic bucket
	if r.DropCount(DropFault) != 1 {
		t.Fatal("out-of-range drop must land in DropFault")
	}
	if r.DropCount(DropCause(99)) != 0 {
		t.Fatal("out-of-range DropCount must read 0")
	}
}

// TestAuthDropCauses pins the registration plane's three authentication
// rejection causes: their names are part of the metrics-dump format the
// determinism gate compares, and each rejection class must stay
// distinguishable end to end — counted apart, snapshot apart, merged
// apart.
func TestAuthDropCauses(t *testing.T) {
	causes := []struct {
		c    DropCause
		name string
	}{
		{DropAuthBadMAC, "auth_bad_mac"},
		{DropAuthReplay, "auth_replay"},
		{DropAuthStaleID, "auth_stale_id"},
	}
	r := NewRegistry()
	for i, tc := range causes {
		if got := tc.c.String(); got != tc.name {
			t.Errorf("cause %d stringifies as %q, want %q", tc.c, got, tc.name)
		}
		for j := 0; j <= i; j++ {
			r.Drop(tc.c)
		}
	}
	merged := NewRegistry()
	merged.Merge(r)
	merged.Merge(r)
	s := merged.Snapshot()
	for i, tc := range causes {
		if got := r.DropCount(tc.c); got != uint64(i+1) {
			t.Errorf("DropCount(%s) = %d, want %d", tc.name, got, i+1)
		}
		if got, ok := s.Counter("drop/" + tc.name); !ok || got != uint64(2*(i+1)) {
			t.Errorf("merged snapshot drop/%s = %d,%v, want %d", tc.name, got, ok, 2*(i+1))
		}
	}
}

func TestSnapshotDeterministicAndSorted(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.IPForwarded.Add(3)
		r.OutPackets[2].Inc()
		r.InBytes[1].Add(40)
		r.Drop(DropBlackhole)
		r.Counter("mn/moves").Add(2)
		r.Gauge("ha/bindings").Set(1)
		r.Histogram("mn/reg_rtt", DefaultLatencyBuckets).Observe(3e6)
		return r
	}
	s1, s2 := build().Snapshot(), build().Snapshot()
	if !bytes.Equal(s1.JSON(), s2.JSON()) {
		t.Fatal("identical registries must snapshot to identical JSON")
	}
	for i := 1; i < len(s1.Counters); i++ {
		if s1.Counters[i-1].Name >= s1.Counters[i].Name {
			t.Fatalf("counters not strictly sorted: %q >= %q", s1.Counters[i-1].Name, s1.Counters[i].Name)
		}
	}
	if v, ok := s1.Counter("ip/forwarded"); !ok || v != 3 {
		t.Fatalf("Counter lookup = %d,%v", v, ok)
	}
	if _, ok := s1.Counter("ip/sent"); ok {
		t.Fatal("zero static counter must be elided")
	}
	if v, ok := s1.Counter("grid/out_pkts{Out-DH}"); !ok || v != 1 {
		t.Fatalf("mode counter = %d,%v", v, ok)
	}
	if v, ok := s1.Counter("drop/blackhole"); !ok || v != 1 {
		t.Fatalf("drop counter = %d,%v", v, ok)
	}
	var txt strings.Builder
	if err := s1.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "mn/reg_rtt count=1 sum=3000000") {
		t.Fatalf("text dump missing histogram line:\n%s", txt.String())
	}
	if !strings.Contains(txt.String(), "ha/bindings 1") {
		t.Fatalf("text dump missing gauge line:\n%s", txt.String())
	}
}

func TestSamplerSeriesAndStop(t *testing.T) {
	sched := vtime.NewScheduler(1)
	r := NewRegistry()
	samp := NewSampler(sched, r, 10)
	sched.After(5, func() { r.IPSent.Inc() })
	sched.After(15, func() { r.IPSent.Inc() })
	sched.RunUntil(25)
	samp.Stop()
	sched.RunUntil(100)
	got := samp.Samples()
	if len(got) != 2 {
		t.Fatalf("samples = %d, want 2 (stop must cancel future samples)", len(got))
	}
	if got[0].At != 10 || got[1].At != 20 {
		t.Fatalf("sample times = %v, %v", got[0].At, got[1].At)
	}
	v0, _ := got[0].Snap.Counter("ip/sent")
	v1, _ := got[1].Snap.Counter("ip/sent")
	if v0 != 1 || v1 != 2 {
		t.Fatalf("sampled values = %d, %d, want 1, 2", v0, v1)
	}
	if sched.Pending() != 0 {
		t.Fatalf("stopped sampler left %d pending events", sched.Pending())
	}

	var tsv strings.Builder
	if err := WriteTSV(&tsv, got, "ip/sent", "absent"); err != nil {
		t.Fatal(err)
	}
	want := "vtime_ns\tip/sent\tabsent\n10\t1\t0\n20\t2\t0\n"
	if tsv.String() != want {
		t.Fatalf("tsv = %q, want %q", tsv.String(), want)
	}
}

func TestCollectorSortedByLabel(t *testing.T) {
	var c Collector
	rb := NewRegistry()
	rb.IPSent.Inc()
	ra := NewRegistry()
	ra.IPForwarded.Inc()
	c.Register("seed=2", rb)
	c.Register("seed=1", ra)
	c.Register("", nil) // nil registry is ignored
	snaps := c.Snapshots()
	if len(snaps) != 2 || snaps[0].Label != "seed=1" || snaps[1].Label != "seed=2" {
		t.Fatalf("snapshots out of order: %+v", snaps)
	}
	var txt strings.Builder
	if err := c.WriteText(&txt); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(txt.String(), "== seed=1 ==\nip/forwarded 1\n") {
		t.Fatalf("collector text dump:\n%s", txt.String())
	}
}
