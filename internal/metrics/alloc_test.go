package metrics

import (
	"testing"

	"mob4x4/internal/race"
)

// TestHotPathInstrumentsZeroAllocs pins the instruments used on the
// per-packet fast path — static counter increments, mode-indexed grid
// counters, the drop-cause vector, and histogram observation — at zero
// allocations per operation. If any of these ever allocates, the
// stack's steady-state forwarding pins (stack/alloc_test.go) break too;
// this test localizes the blame.
func TestHotPathInstrumentsZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	r := NewRegistry()
	h := r.Histogram("rtt", DefaultLatencyBuckets)
	named := r.Counter("named")
	g := r.Gauge("level")

	allocs := testing.AllocsPerRun(1000, func() {
		r.IPSent.Inc()
		r.IPForwarded.Add(3)
		r.LinkBytes.Add(1514)
		r.OutPackets[2].Inc()
		r.InBytes[1].Add(40)
		r.Drop(DropGilbertElliott)
		h.Observe(7e6)
		named.Inc()
		g.Add(1)
	})
	if allocs != 0 {
		t.Fatalf("hot-path instrument updates allocated %.1f times per run, want 0", allocs)
	}
}

// BenchmarkCounterInc keeps the single-increment cost visible in bench
// runs (it should be a handful of nanoseconds — one add through a
// pointer).
func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < b.N; i++ {
		r.IPForwarded.Inc()
	}
	if r.IPForwarded.Value() != uint64(b.N) {
		b.Fatal("miscount")
	}
}
