package metrics

// Quantile estimation from fixed histogram buckets, Prometheus-style:
// find the bucket holding the q-th observation and interpolate linearly
// inside it. Every experiment used to re-derive summary statistics from
// the raw bucket vector by hand; the fleet report was the third copy,
// so the derivation moved here.

// quantileFromBuckets estimates the q-quantile of a bucketed
// distribution. counts is per-bucket (not cumulative) with one overflow
// entry beyond bounds; n is the total observation count. Values in the
// overflow bucket are clamped to the last bound (there is no upper edge
// to interpolate toward). Returns 0 when the histogram is empty.
func quantileFromBuckets(bounds []int64, counts []uint64, n uint64, q float64) int64 {
	if n == 0 || len(bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the (1-based, fractional) position of the quantile in the
	// sorted observation sequence.
	rank := q * float64(n)
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// Overflow bucket: no upper edge, clamp to the last bound.
			return bounds[len(bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		// Position of the rank within this bucket's count.
		within := (rank - float64(cum-c)) / float64(c)
		return lo + int64(float64(hi-lo)*within)
	}
	return bounds[len(bounds)-1]
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values
// by linear interpolation within the bucket containing the rank. The
// estimate is exact at bucket edges and deterministic — the same
// histogram always yields the same value — which is all the fleet
// report's p50/p95/p99 need.
func (h *Histogram) Quantile(q float64) int64 {
	return quantileFromBuckets(h.bounds, h.counts, h.n, q)
}

// Quantile estimates the q-quantile of a snapshotted histogram; see
// Histogram.Quantile.
func (h HistogramSample) Quantile(q float64) int64 {
	return quantileFromBuckets(h.Bounds, h.Buckets, h.Count, q)
}
