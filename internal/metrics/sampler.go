package metrics

import (
	"io"
	"strconv"

	"mob4x4/internal/vtime"
)

// Sample is one periodic observation of a registry.
type Sample struct {
	At   vtime.Time `json:"at"`
	Snap Snapshot   `json:"snapshot"`
}

// Sampler snapshots a registry at a fixed virtual-time period, producing
// a time series for experiments that want trajectory rather than totals
// (the chaos run samples every 2s of vtime). It is driven entirely by
// the simulation scheduler: samples are taken at deterministic instants
// and the series is identical across runs and worker counts.
type Sampler struct {
	reg     *Registry
	every   vtime.Duration
	timer   *vtime.Timer
	samples []Sample
}

// NewSampler starts sampling reg every period (first sample one period
// in). Call Stop before draining the scheduler, or the rearming timer
// keeps the event queue non-empty forever.
func NewSampler(sched *vtime.Scheduler, reg *Registry, every vtime.Duration) *Sampler {
	s := &Sampler{reg: reg, every: every}
	s.timer = sched.After(every, func() {
		s.samples = append(s.samples, Sample{At: sched.Now(), Snap: reg.Snapshot()})
		s.timer.Reset(every)
	})
	return s
}

// Stop cancels future samples; already-captured samples remain.
func (s *Sampler) Stop() { s.timer.Stop() }

// Samples returns the captured series in time order.
func (s *Sampler) Samples() []Sample { return s.samples }

// WriteTSV renders the series as a tab-separated table: one row per
// sample, one column per requested counter name (missing counters read
// 0), with a vtime_ns first column. Deterministic.
func WriteTSV(w io.Writer, series []Sample, names ...string) error {
	var buf []byte
	buf = append(buf, "vtime_ns"...)
	for _, n := range names {
		buf = append(buf, '\t')
		buf = append(buf, n...)
	}
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for _, smp := range series {
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(smp.At), 10)
		for _, n := range names {
			v, _ := smp.Snap.Counter(n)
			buf = append(buf, '\t')
			buf = strconv.AppendUint(buf, v, 10)
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
