package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// bufretainPkgs are the consumers of the pooled-frame ownership contract
// (netsim.Buf): every package whose callbacks are handed a netsim.Frame
// or ipv4.Packet whose payload storage returns to the pool the moment
// the callback returns. internal/netsim itself is exempt — it is the
// owner side of the contract (it retains frames while they are in
// flight and is the one place PutBuf is called).
var bufretainPkgs = map[string]bool{
	"internal/stack":    true,
	"internal/encap":    true,
	"internal/mobileip": true,
	"internal/fleet":    true,
	"internal/tcplite":  true,
	"internal/udp":      true,
	"internal/icmp":     true,
	"internal/icmphost": true,
	"internal/arp":      true,
	"internal/faults":   true,
	"internal/sock":     true,
	"internal/pcap":     true,
	"internal/routeopt": true,
}

// BufRetain returns the analyzer enforcing the receive-side half of the
// netsim.GetBuf/PutBuf ownership contract: a callback handed a
// netsim.Frame or ipv4.Packet may read the payload only until it
// returns. The check is intra-procedural taint: the frame/packet
// parameters (and simple aliases and subslices of their payload) must
// not be stored into a field, a map or slice element, a package var,
// sent on a channel, handed to a goroutine, or captured by a deferred
// function literal. Retention by copy (append([]byte(nil), p...),
// Clone) launders the taint and is always legal; a deliberate aliasing
// retention carries a //mob4x4vet:allow bufretain directive.
func BufRetain() *Analyzer {
	a := &Analyzer{
		Name: "bufretain",
		Doc:  "receive callbacks must not retain a pooled frame payload past return (netsim.GetBuf/PutBuf ownership contract): no field stores, element stores, channel sends or escaping closures over Frame/Packet params in the datapath packages; copy instead",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		rel := strings.TrimPrefix(pkg.Path, pkg.ModulePath+"/")
		if !bufretainPkgs[rel] &&
			!strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/lintfixture/bufretain/") {
			return
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					checkRetention(pass, fn.Type, fn.Body)
				case *ast.FuncLit:
					checkRetention(pass, fn.Type, fn.Body)
				}
				return true
			})
		}
	}
	return a
}

// frameParam reports whether t is (a pointer to) netsim.Frame or
// ipv4.Packet — the two borrowed-payload carriers of the contract.
func frameParam(modulePath string, t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case modulePath + "/internal/netsim":
		return obj.Name() == "Frame"
	case modulePath + "/internal/ipv4":
		return obj.Name() == "Packet"
	}
	return false
}

// checkRetention taints ftype's Frame/Packet parameters and walks body
// flagging every way a tainted value can outlive the call.
func checkRetention(pass *Pass, ftype *ast.FuncType, body *ast.BlockStmt) {
	if body == nil || ftype.Params == nil {
		return
	}
	pkg := pass.Pkg
	taint := make(map[types.Object]bool)
	for _, field := range ftype.Params.List {
		for _, name := range field.Names {
			obj := pkg.Info.Defs[name]
			if obj != nil && frameParam(pkg.ModulePath, obj.Type()) {
				taint[obj] = true
			}
		}
	}
	if len(taint) == 0 {
		return
	}
	r := &retentionCheck{pass: pass, taint: taint}
	r.walk(body)
}

type retentionCheck struct {
	pass  *Pass
	taint map[types.Object]bool
}

// walk visits stmts in source order so alias tracking is flow-ordered.
// Nested function literals are only checked for captures: a literal that
// captures no tainted ident cannot retain anything, and one that does is
// flagged once at the capture (its body can create no new taint — the
// literal's own Frame/Packet params are visited independently by Run).
func (r *retentionCheck) walk(n ast.Node) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			r.checkCapture(n)
			return false
		case *ast.AssignStmt:
			r.assign(n)
		case *ast.SendStmt:
			if r.tainted(n.Value) {
				r.pass.Report(n.Arrow,
					"sending a borrowed frame payload on a channel retains it past the callback; the pooled buffer is recycled when the callback returns — copy first")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if r.tainted(arg) {
					r.pass.Report(arg.Pos(),
						"passing a borrowed frame payload to a goroutine lets it outlive the callback; the pooled buffer is recycled when the callback returns — copy first")
				}
			}
		}
		return true
	})
}

// assign handles both alias tracking (x := tainted taints x; x = clean
// untaints it) and the store checks (tainted into a field, element or
// package var escapes the callback).
func (r *retentionCheck) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y := f() — call results are never tainted
		}
		rhs := as.Rhs[i]
		rhsTainted := r.tainted(rhs)
		if id, ok := lhs.(*ast.Ident); ok {
			// Plain (re)assignment: a package-level target escapes, a
			// local one propagates or clears taint.
			obj := r.pass.Pkg.Info.Defs[id]
			if obj == nil {
				obj = r.pass.Pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == r.pass.Pkg.Types.Scope() {
				if rhsTainted {
					r.pass.Report(id.Pos(),
						"storing a borrowed frame payload in package-level var %s retains it past the callback; the pooled buffer is recycled when the callback returns — copy first", id.Name)
				}
				continue
			}
			r.taint[obj] = rhsTainted
			continue
		}
		if !rhsTainted {
			continue
		}
		switch lhs := lhs.(type) {
		case *ast.SelectorExpr:
			// x.f = tainted: writing INTO the borrowed object itself
			// (pkt.Payload[...] rewrites, pkt.Header = h) is mutation,
			// not retention; storing into anything else escapes.
			if r.tainted(lhs.X) {
				continue
			}
			r.pass.Report(lhs.Sel.Pos(),
				"storing a borrowed frame payload in field %s retains it past the callback; the pooled buffer is recycled when the callback returns — copy first (append([]byte(nil), p...) or Clone)", lhs.Sel.Name)
		case *ast.IndexExpr:
			if r.tainted(lhs.X) {
				continue
			}
			r.pass.Report(lhs.Lbrack,
				"storing a borrowed frame payload in a map or slice element retains it past the callback; the pooled buffer is recycled when the callback returns — copy first (append([]byte(nil), p...) or Clone)")
		}
	}
}

// checkCapture flags a function literal that closes over a tainted
// ident: closures are how retention sneaks through schedulers (the
// literal runs after the callback returned and the buffer was recycled).
// Immediately-invoked literals never outlive the statement, but they are
// rare enough here that the annotation escape hatch covers them.
func (r *retentionCheck) checkCapture(fl *ast.FuncLit) {
	// Idents re-bound as the literal's own params are not captures.
	local := make(map[types.Object]bool)
	if fl.Type.Params != nil {
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if obj := r.pass.Pkg.Info.Defs[name]; obj != nil {
					local[obj] = true
				}
			}
		}
	}
	reported := false
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if reported {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := r.pass.Pkg.Info.Uses[id]
		if obj == nil || local[obj] || !r.taint[obj] {
			return true
		}
		reported = true
		r.pass.Report(id.Pos(),
			"closure captures borrowed frame payload %s; the literal can run after the callback returned and the pooled buffer was recycled — copy before capturing", id.Name)
		return false
	})
}

// tainted reports whether e aliases a borrowed frame payload: a tainted
// ident, a slice/pointer-typed field of a tainted value (Frame.Payload,
// Frame.Buf, Packet.Payload), a subslice of a tainted slice, a composite
// literal embedding a tainted element, or append whose destination is
// tainted. Call results (Clone, parse helpers, append-to-fresh copies)
// are clean — the check is intra-procedural by design.
func (r *retentionCheck) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := r.pass.Pkg.Info.Uses[e]
		if obj == nil {
			obj = r.pass.Pkg.Info.Defs[e]
		}
		return obj != nil && r.taint[obj]
	case *ast.SelectorExpr:
		if !r.tainted(e.X) {
			return false
		}
		// Only reference-typed fields alias the borrowed storage; a
		// copied header or scalar is safe.
		if tv, ok := r.pass.Pkg.Info.Types[e]; ok {
			switch tv.Type.Underlying().(type) {
			case *types.Slice, *types.Pointer:
				return true
			}
			return false
		}
		return true
	case *ast.SliceExpr:
		return r.tainted(e.X)
	case *ast.ParenExpr:
		return r.tainted(e.X)
	case *ast.UnaryExpr:
		return r.tainted(e.X)
	case *ast.StarExpr:
		return r.tainted(e.X)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if r.tainted(el) {
				return true
			}
		}
		return false
	case *ast.CallExpr:
		// append(tainted, ...) still aliases the tainted backing array;
		// every other call result (Clone, append-to-fresh) is a copy or
		// the callee's responsibility.
		if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "append" && len(e.Args) > 0 {
			return r.tainted(e.Args[0])
		}
		return false
	}
	return false
}
