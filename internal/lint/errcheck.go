package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck returns the analyzer flagging dropped error returns from this
// module's own functions. The scope is deliberately narrower than a
// general-purpose errcheck: the repo's simulation layers (stack, encap,
// mobileip) use error returns to report packet-level failures — exactly
// the handover and header edge cases the reproduction exists to measure —
// so discarding one hides a protocol bug. Calls are flagged when the
// result is ignored entirely (an expression statement, go, or defer);
// an explicit `_ =` assignment remains a visible, reviewable discard.
func ErrCheck() *Analyzer {
	a := &Analyzer{
		Name: "errcheck",
		Doc:  "error results of module-internal functions must not be silently discarded",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				var call *ast.CallExpr
				switch s := n.(type) {
				case *ast.ExprStmt:
					call, _ = s.X.(*ast.CallExpr)
				case *ast.GoStmt:
					call = s.Call
				case *ast.DeferStmt:
					call = s.Call
				}
				if call != nil {
					checkDiscardedError(pass, call)
				}
				return true
			})
		}
	}
	return a
}

func checkDiscardedError(pass *Pass, call *ast.CallExpr) {
	info := pass.Pkg.Info
	// Skip conversions and builtins; only function/method calls return
	// errors.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	errIdx := -1
	for i := 0; i < sig.Results().Len(); i++ {
		if isErrorType(sig.Results().At(i).Type()) {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return
	}
	obj := calleeObject(info, call)
	if obj == nil || obj.Pkg() == nil {
		return
	}
	path := obj.Pkg().Path()
	if path != pass.Pkg.ModulePath && !strings.HasPrefix(path, pass.Pkg.ModulePath+"/") {
		return
	}
	pass.Report(call.Pos(),
		"result of %s includes an error that is silently discarded; handle it or assign it to _ explicitly",
		calleeName(call, obj))
}

// calleeObject resolves the called function, method, or func-typed
// variable to its defining object.
func calleeObject(info *types.Info, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return info.Uses[fun]
	case *ast.SelectorExpr:
		return info.Uses[fun.Sel]
	}
	return nil
}

func calleeName(call *ast.CallExpr, obj types.Object) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if recv, ok := sel.X.(*ast.Ident); ok {
			return recv.Name + "." + sel.Sel.Name
		}
		return sel.Sel.Name
	}
	return obj.Name()
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}
