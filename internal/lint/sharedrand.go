package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// sharedrandDraws are the math/rand package-level functions that consume
// the process-global locked stream (plus Seed, which reseeds it). One
// draw from the global stream makes the result depend on every other
// goroutine's draws — the exact coupling the sharded engine must not
// have. rand.New/rand.NewSource are constructors and stay legal.
var sharedrandDraws = map[string]bool{
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Read": true, "Seed": true,
}

// SharedRand returns the analyzer enforcing per-entity RNG streams in
// internal/*: every consumer of randomness owns a *rand.Rand derived from
// (seed, index) — vtime's Scheduler.NewStream or an explicit
// rand.New(rand.NewSource(mix(seed, idx))) — so the draw sequence each
// entity sees is a pure function of the seed, independent of how events
// from different entities interleave. Three shapes break that:
//
//   - the global math/rand stream (package-level Intn/Float64/...),
//   - accessor methods named Rand that hand one entity's stream to
//     another (two consumers of one stream couple their draw sequences
//     to event order),
//   - package-level *rand.Rand / rand.Source vars (a process-wide
//     stream shared by every Sim and shard).
func SharedRand() *Analyzer {
	a := &Analyzer{
		Name: "sharedrand",
		Doc:  "no global math/rand stream, no shared *rand.Rand between entities in internal/*; derive per-entity streams from (seed, index) via Scheduler.NewStream or rand.New(rand.NewSource(...))",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		if !strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/") {
			return
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.CallExpr:
					checkRandCall(pass, n)
				case *ast.GenDecl:
					if n.Tok.String() != "var" {
						return true
					}
					for _, spec := range n.Specs {
						vs, ok := spec.(*ast.ValueSpec)
						if !ok {
							continue
						}
						for _, name := range vs.Names {
							obj := pkg.Info.Defs[name]
							if obj == nil || obj.Parent() != pkg.Types.Scope() {
								continue // not package-level
							}
							if isRandStream(obj.Type()) {
								pass.Report(name.Pos(),
									"package-level var %s is a process-wide RNG stream shared by every Sim and shard; derive a per-entity stream from (seed, index) instead",
									name.Name)
							}
						}
					}
				}
				return true
			})
		}
	}
	return a
}

// checkRandCall flags the two call shapes: a math/rand package-level draw
// and a module-owned accessor method named Rand returning *rand.Rand.
func checkRandCall(pass *Pass, call *ast.CallExpr) {
	pkg := pass.Pkg
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Global stream: rand.Intn(...) et al.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() == "math/rand" && sharedrandDraws[sel.Sel.Name] {
				pass.Report(sel.Pos(),
					"rand.%s draws from the process-global math/rand stream, coupling this draw to every other goroutine; use a per-entity stream derived from (seed, index)",
					sel.Sel.Name)
			}
			return
		}
	}
	// Accessor: x.Rand() returning *rand.Rand from a module-owned method.
	if sel.Sel.Name != "Rand" {
		return
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 || !isRandStream(sig.Results().At(0).Type()) {
		return
	}
	owner := fn.Pkg()
	if owner == nil || (owner.Path() != pkg.ModulePath &&
		!strings.HasPrefix(owner.Path(), pkg.ModulePath+"/")) {
		return
	}
	pass.Report(sel.Sel.Pos(),
		"%s() hands out another entity's RNG stream; two consumers of one stream couple their draw sequences to event interleaving — derive an owned stream from (seed, index) (Scheduler.NewStream)",
		sel.Sel.Name)
}

// isRandStream reports whether t is *math/rand.Rand or math/rand.Source.
func isRandStream(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "math/rand" {
		return false
	}
	return obj.Name() == "Rand" || obj.Name() == "Source"
}
