package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// globalstatePkgs are the shard-candidate packages: the sharded engine
// will run many instances of this code concurrently, one per region
// shard, and any package-level mutable state — a counter, a cache map, a
// sync.Once, a reusable scratch buffer — is invisibly shared between
// shards. Per-Sim state lives on the Sim (or an object hanging off it);
// genuinely process-wide state (a sync.Pool, an atomic leak counter)
// carries an annotation whose justification says why sharing is safe.
var globalstatePkgs = map[string]bool{
	"internal/vtime":    true,
	"internal/netsim":   true,
	"internal/stack":    true,
	"internal/encap":    true,
	"internal/mobileip": true,
	"internal/fleet":    true,
	"internal/core":     true,
	"internal/routeopt": true,
}

// GlobalState returns the analyzer banning package-level mutable state in
// shard-candidate packages. Error sentinels (var ErrX = errors.New(...))
// are exempt: they are write-once by convention and compared by identity.
// Everything else needs a //mob4x4vet:allow globalstate directive WITH a
// justification string, or a move into per-Sim state.
func GlobalState() *Analyzer {
	a := &Analyzer{
		Name:          "globalstate",
		Doc:           "no package-level mutable state in shard-candidate packages (internal/vtime, internal/netsim, internal/stack, internal/encap, internal/mobileip, internal/fleet, internal/core, internal/routeopt); move it into per-Sim state or annotate with a justification",
		RequireReason: true,
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		rel := strings.TrimPrefix(pkg.Path, pkg.ModulePath+"/")
		if !globalstatePkgs[rel] &&
			!strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/lintfixture/globalstate/") {
			return
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				gd, ok := decl.(*ast.GenDecl)
				if !ok || gd.Tok.String() != "var" {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for i, name := range vs.Names {
						if name.Name == "_" || errSentinel(pkg, vs, i) {
							continue
						}
						pass.Report(name.Pos(),
							"package-level var %s is mutable state shared across every shard and Sim in the process; move it into per-Sim state, or annotate why process-wide sharing is safe",
							name.Name)
					}
				}
			}
		}
	}
	return a
}

// errSentinel reports whether the i-th name of vs is a conventional error
// sentinel: error-typed, Err-prefixed, initialized from errors.New or
// fmt.Errorf. Sentinels are package-level vars only because Go has no
// const errors; nothing ever assigns to them.
func errSentinel(pkg *Package, vs *ast.ValueSpec, i int) bool {
	name := vs.Names[i]
	if !strings.HasPrefix(name.Name, "Err") && !strings.HasPrefix(name.Name, "err") {
		return false
	}
	obj := pkg.Info.Defs[name]
	if obj == nil || !types.Identical(obj.Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	if i >= len(vs.Values) {
		return false
	}
	call, ok := vs.Values[i].(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pkg.Info.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	switch pn.Imported().Path() {
	case "errors":
		return sel.Sel.Name == "New"
	case "fmt":
		return sel.Sel.Name == "Errorf"
	}
	return false
}
