// Package mapiterbad iterates maps straight into output and scheduling
// decisions; every loop here must be flagged.
package mapiterbad

import "strconv"

// Export renders counters in whatever order the map yields — the dump
// differs between two runs of the same binary.
func Export(counters map[string]uint64) []string {
	var out []string
	for name, v := range counters {
		out = append(out, name+"="+strconv.FormatUint(v, 10))
	}
	return out
}

// Arm schedules one timer per peer; the map order decides the scheduler
// sequence numbers, so the whole event trace inherits the randomness.
func Arm(peers map[int]func(), schedule func(int, func())) {
	for id, fn := range peers {
		schedule(id, fn)
	}
}

// Sum collects but never sorts — appending alone does not launder the
// order, only a later sort call does.
func Sum(m map[string]int) []int {
	var vals []int
	for _, v := range m {
		vals = append(vals, v)
	}
	return vals
}
