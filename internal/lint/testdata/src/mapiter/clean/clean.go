// Package mapiterclean shows the three deterministic shapes: collect
// keys then sort, collect rows then sort.Slice, and an annotated
// order-insensitive reduction. The mapiter analyzer must stay silent.
package mapiterclean

import (
	"sort"
	"strconv"
)

// Export sorts the keys before rendering, so the dump is byte-identical
// for any map iteration order.
func Export(counters map[string]uint64) []string {
	keys := make([]string, 0, len(counters))
	for name := range counters {
		keys = append(keys, name)
	}
	sort.Strings(keys)
	out := make([]string, 0, len(keys))
	for _, name := range keys {
		out = append(out, name+"="+strconv.FormatUint(counters[name], 10))
	}
	return out
}

// Rows collects structured rows and sorts them as a unit.
func Rows(m map[int]string) []row {
	var rows []row
	for id, label := range m {
		rows = append(rows, row{id, label})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	return rows
}

type row struct {
	id    int
	label string
}

// Total is order-insensitive by construction: integer addition commutes,
// and nothing but the final scalar leaves the loop.
func Total(m map[string]int) int {
	total := 0
	//mob4x4vet:allow mapiter commutative sum, only the scalar escapes
	for _, v := range m {
		total += v
	}
	return total
}
