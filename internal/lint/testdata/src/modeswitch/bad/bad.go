// Package modeswitchbad exercises the modeswitch analyzer: each switch
// below skips at least one constant of a Num-sentinel enum and has no
// default clause.
package modeswitchbad

import "mob4x4/internal/core"

// Phase is a local enum following the core.OutMode sentinel convention,
// proving the analyzer is not hardwired to the core types.
type Phase int

// Phases of a probe cycle.
const (
	PhaseIdle Phase = iota
	PhaseProbe
	PhaseSettled

	NumPhases = 3
)

// DescribeOut misses OutDH and OutDT.
func DescribeOut(m core.OutMode) string {
	switch m {
	case core.OutIE:
		return "indirect tunnel"
	case core.OutDE:
		return "direct tunnel"
	}
	return ""
}

// DescribeIn misses InDT.
func DescribeIn(m core.InMode) string {
	switch m {
	case core.InIE, core.InDE, core.InDH:
		return "mobile-ip"
	}
	return ""
}

// NextPhase misses PhaseSettled.
func NextPhase(p Phase) Phase {
	switch p {
	case PhaseIdle:
		return PhaseProbe
	case PhaseProbe:
		return PhaseSettled
	}
	return p
}
