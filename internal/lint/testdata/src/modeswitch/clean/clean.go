// Package modeswitchclean holds switches the modeswitch analyzer must
// accept: exhaustive case lists, default clauses, and enums without a
// Num sentinel (which opt out of the convention entirely).
package modeswitchclean

import "mob4x4/internal/core"

// Level has no Num sentinel, so exhaustiveness is not required.
type Level int

// Levels.
const (
	LevelLow Level = iota
	LevelHigh
)

// Describe lists all four constants; no default needed.
func Describe(m core.OutMode) string {
	switch m {
	case core.OutIE:
		return "ie"
	case core.OutDE:
		return "de"
	case core.OutDH:
		return "dh"
	case core.OutDT:
		return "dt"
	}
	return ""
}

// DescribeIn relies on its default clause.
func DescribeIn(m core.InMode) string {
	switch m {
	case core.InIE:
		return "ie"
	default:
		return "other"
	}
}

// DescribeLevel is incomplete but Level is not sentinel-counted.
func DescribeLevel(l Level) string {
	switch l {
	case LevelLow:
		return "low"
	}
	return "high"
}
