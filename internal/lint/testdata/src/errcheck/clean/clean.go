// Package errcheckclean handles or visibly discards every module error;
// the errcheck analyzer must stay silent.
package errcheckclean

import (
	"fmt"

	"mob4x4/internal/ipv4"
)

// Checked demonstrates the accepted patterns.
func Checked() error {
	if _, err := ipv4.ParseAddr("10.0.0.1"); err != nil {
		return err
	}
	a, _ := ipv4.ParseAddr("10.0.0.2")
	// Non-module calls are out of scope even when they return errors.
	fmt.Println(a)
	p := ipv4.Packet{Header: ipv4.Header{Src: a, Dst: a, TTL: 1}}
	// An explicit blank assignment is a visible, reviewable discard.
	_, _ = p.Marshal()
	return nil
}
