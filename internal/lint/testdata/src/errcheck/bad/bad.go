// Package errcheckbad discards module-internal error results in each of
// the three statement forms the errcheck analyzer covers (expression
// statement, defer, go); all four calls must be flagged.
package errcheckbad

import (
	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
)

// Drop loses four errors.
func Drop(c encap.Codec, pkt ipv4.Packet) {
	ipv4.ParseAddr("not an address")
	c.Decapsulate(pkt)
	defer pkt.Marshal()
	go encap.ByName("nope")
}
