// Package globalstateclean keeps every piece of mutable state on a
// per-Sim struct; the one deliberate process-wide object carries a
// justified annotation. The globalstate analyzer must stay silent.
package globalstateclean

import (
	"errors"
	"sync"
)

// ErrDrained is an exempt error sentinel.
var ErrDrained = errors.New("globalstateclean: drained")

// bufPool is process-wide on purpose: sync.Pool is safe for concurrent
// shards and pooled buffers carry no cross-Sim information.
//
//mob4x4vet:allow globalstate sync.Pool is concurrency-safe and buffers carry no state between users
var bufPool = sync.Pool{New: func() any { return make([]byte, 0, 64) }}

// Sim owns its state: counters and caches live here, one per shard.
type Sim struct {
	seq        uint64
	routeCache map[string]int
}

// Next is the shard-safe shape of the same logic.
func (s *Sim) Next() uint64 {
	if s.routeCache == nil {
		s.routeCache = map[string]int{"warm": 1}
	}
	b := bufPool.Get().([]byte)
	bufPool.Put(b[:0])
	s.seq++
	return s.seq
}
