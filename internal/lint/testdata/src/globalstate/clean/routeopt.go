// The shard-safe shape: each pusher owns its binding-update sequence
// counter.
package globalstateclean

// Pusher owns its update sequence, one per (node, correspondent) pair.
type Pusher struct {
	seq uint16
}

// NextSeq is a pure function of this pusher's history.
func (p *Pusher) NextSeq() uint16 {
	p.seq++
	return p.seq
}
