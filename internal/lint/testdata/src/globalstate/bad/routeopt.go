// A binding-update sequence counter at package level couples every
// shard's pushes to one stream — the exact coupling the regional tier
// cannot tolerate.
package globalstatebad

// pushSeq would order every node's binding updates through one shared
// counter.
var pushSeq uint16

// NextPushSeq bumps the shared counter.
func NextPushSeq() uint16 {
	pushSeq++
	return pushSeq
}
