// Package globalstatebad declares the package-level mutable state shapes
// the sharded engine cannot tolerate: a plain counter, a cache map
// literal, hidden sync state, and a bare allow directive with no
// justification (which suppresses nothing and is itself reported).
package globalstatebad

import (
	"errors"
	"sync"
)

// seq is the classic hidden coupling: every Sim in the process shares it.
var seq uint64

// routeCache looks innocent but is written from every shard at once.
var routeCache = map[string]int{}

// Hidden mutable state: a sync.Once fires for the first shard only.
var initOnce sync.Once

// A bare directive carries no justification, so it must not suppress —
// the var is still flagged and the directive reported as needing a
// reason.
//
//mob4x4vet:allow globalstate
var scratch []byte

// ErrNotReady is an exempt error sentinel: write-once by convention.
var ErrNotReady = errors.New("globalstatebad: not ready")

// Next bumps the shared counter (the uses keep the vars referenced).
func Next() uint64 {
	initOnce.Do(func() { routeCache["warm"] = 1 })
	scratch = append(scratch[:0], 0)
	seq++
	return seq
}
