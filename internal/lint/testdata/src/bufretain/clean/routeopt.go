// The contract-respecting binding-update receiver: parse inside the
// callback, keep only owned fields (here, a copy).
package bufretainclean

import "mob4x4/internal/ipv4"

// updateCache keeps an owned copy of the last update's bytes.
type updateCache struct {
	lastUpdate []byte
}

// OnUpdate copies what it keeps into owned storage before returning.
func (c *updateCache) OnUpdate(pkt ipv4.Packet) {
	c.lastUpdate = append(c.lastUpdate[:0], pkt.Payload...)
}
