// Package bufretainclean is the contract-respecting shape of the same
// callbacks: read freely until return, copy anything kept, mutate in
// place when transforming. The bufretain analyzer must stay silent.
package bufretainclean

import (
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

type sink struct {
	last []byte
	byID map[uint16][]byte
	pkt  ipv4.Packet
}

// OnFrame copies what it keeps into owned storage and mutates the
// borrowed payload in place (corruption modeling does this).
func (s *sink) OnFrame(n *netsim.NIC, f netsim.Frame) {
	s.last = append(s.last[:0], f.Payload...)
	f.Payload[0] ^= 1
}

// OnPacket keeps deep copies, reads headers by value, and lets a local
// alias die with the call.
func (s *sink) OnPacket(pkt ipv4.Packet) {
	s.byID[pkt.Header.ID] = append([]byte(nil), pkt.Payload...)
	s.pkt = pkt.Clone()
	hdr := pkt.Header
	p := pkt.Payload[2:]
	parse(hdr.TTL, p)
}

func parse(uint8, []byte) {}
