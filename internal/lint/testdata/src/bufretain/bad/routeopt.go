// The route-optimization receiver parses binding updates out of pooled
// datagram payloads; caching the raw bytes instead of the parsed fields
// retains the pooled buffer.
package bufretainbad

import "mob4x4/internal/ipv4"

// updateCache mimics a binding-update receiver keeping the wire bytes.
type updateCache struct {
	lastUpdate []byte
}

// OnUpdate is the binding-update receive callback: the datagram's
// payload storage returns to the pool when it returns, so the field
// store must be flagged.
func (c *updateCache) OnUpdate(pkt ipv4.Packet) {
	c.lastUpdate = pkt.Payload
}
