// Package bufretainbad retains borrowed frame payloads in every way the
// ownership contract forbids: field stores, element stores, channel
// sends, whole-packet stores, goroutine handoff and closure capture. One
// annotated retention at the end must be excused.
package bufretainbad

import (
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

type sink struct {
	last []byte
	byID map[uint16][]byte
	ch   chan []byte
	pkt  ipv4.Packet
}

// OnFrame is an OnInPacket-style receive callback: the pooled buffer
// behind f.Payload is recycled the moment it returns.
func (s *sink) OnFrame(n *netsim.NIC, f netsim.Frame) {
	s.last = f.Payload
	s.byID[7] = f.Payload[2:]
	s.ch <- f.Payload
}

// OnPacket retains through an alias, a whole-struct store and a deferred
// closure.
func (s *sink) OnPacket(pkt ipv4.Packet) {
	p := pkt.Payload
	s.pkt = pkt
	defer func() { use(p) }()
}

// Fan hands the frame to a goroutine that outlives the callback.
func Fan(out func(netsim.Frame), f netsim.Frame) {
	go out(f)
}

// Retain is a deliberate, documented retention point; the directive
// excuses it.
func (s *sink) Retain(f netsim.Frame) {
	//mob4x4vet:allow bufretain owner guarantees the buffer outlives this queue
	s.last = f.Payload
}

func use([]byte) {}
