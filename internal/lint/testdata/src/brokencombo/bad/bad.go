// Package brokencombobad constructs two of the six dark-shaded broken
// grid cells of Figure 10 as constant composite literals; both must be
// flagged.
package brokencombobad

import "mob4x4/internal/core"

// TempInOnly is In-DT/Out-IE: the peer addresses the temporary address
// while we reply from the home address via the home agent — the two ends
// disagree about the connection endpoints.
var TempInOnly = core.Combo{In: core.InDT, Out: core.OutIE}

// Positional construction (In-IE/Out-DT) is caught too.
func Positional() core.Combo {
	return core.Combo{core.InIE, core.OutDT}
}

// A directive naming a different analyzer does not suppress this one.
//
//mob4x4vet:allow wallclock wrong analyzer name
var StillFlagged = core.Combo{In: core.InDT, Out: core.OutDH}
