// Package brokencomboclean constructs only workable grid cells — or
// escapes the rule explicitly; the brokencombo analyzer must stay silent.
package brokencomboclean

import "mob4x4/internal/core"

// Conservative is the always-works cell (In-IE/Out-IE).
var Conservative = core.Combo{In: core.InIE, Out: core.OutIE}

// PlainIP is the paper's Row D/column D cell: both directions use the
// temporary address, so the endpoints agree.
var PlainIP = core.Combo{core.InDT, core.OutDT}

// FromModes builds combos at run time; only constant construction is in
// scope for the analyzer.
func FromModes(in core.InMode, out core.OutMode) core.Combo {
	return core.Combo{In: in, Out: out}
}

// Deliberate demonstrations carry a directive.
//
//mob4x4vet:allow brokencombo demonstrating the Figure 10 failure cell
var Demonstration = core.Combo{In: core.InDT, Out: core.OutIE}
