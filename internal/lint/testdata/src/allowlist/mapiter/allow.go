// Package allowlist exercises the suppression mechanism end to end: one
// annotated violation (suppressed), one identical unannotated violation
// (still flagged), and one well-formed directive with no matching
// finding (reported stale). The positions are pinned by
// TestAllowlistMechanism — keep line numbers stable.
package allowlist

// Excused sums values under a justified directive: suppressed.
func Excused(m map[string]int) int {
	total := 0
	//mob4x4vet:allow mapiter commutative sum, only the scalar escapes
	for _, v := range m {
		total += v
	}
	return total
}

// Flagged is the identical loop without a directive: still flagged.
func Flagged(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Stale carries a directive over a loop that is not a map range; the
// directive suppresses nothing and must itself be reported.
func Stale(xs []int) int {
	total := 0
	//mob4x4vet:allow mapiter slices iterate in index order
	for _, v := range xs {
		total += v
	}
	return total
}
