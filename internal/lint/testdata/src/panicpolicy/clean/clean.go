// Package panicpolicyclean panics only through the sanctioned channels;
// the panicpolicy analyzer must stay silent.
package panicpolicyclean

import "mob4x4/internal/assert"

// MustByte follows the stdlib Must* convention for panic-on-error
// wrappers, which the policy exempts.
func MustByte(b []byte) byte {
	if len(b) == 0 {
		panic("empty input")
	}
	return b[0]
}

// First routes its invariant through internal/assert.
func First(b []byte) byte {
	if len(b) == 0 {
		assert.Unreachable("caller guarantees non-empty input")
	}
	return b[0]
}

// Parse returns an error for bad input instead of crashing.
func Parse(b []byte) (byte, error) {
	if len(b) == 0 {
		return 0, errEmpty
	}
	return b[0], nil
}

type parseError string

func (e parseError) Error() string { return string(e) }

var errEmpty = parseError("empty input")
