// Package panicpolicybad calls bare panic from library code in the two
// places the panicpolicy analyzer scans: function bodies and
// package-level var initializers.
package panicpolicybad

// First crashes on input instead of returning an error.
func First(b []byte) byte {
	if len(b) == 0 {
		panic("empty input")
	}
	return b[0]
}

// Closures in var initializers are scanned too.
var handler = func() {
	panic("inline")
}
