// A minimal datapath shape used only by the scope test: unlike the bad
// fixture it must not import internal/routeopt, because the test loads
// it under that very import path.
package hotpathallocscoped

import "mob4x4/internal/mobileip"

// Register serializes the allocating way; under a scoped import path
// the analyzer must flag it.
func Register(req *mobileip.Request) []byte {
	return req.Marshal()
}
