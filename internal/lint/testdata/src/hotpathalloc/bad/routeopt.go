// The route-optimization push path serializes one binding update per
// handoff per active correspondent, so its allocating codec forms are
// in scope too.
package hotpathallocbad

import "mob4x4/internal/routeopt"

// PushUpdate serializes a binding update the allocating way; the send
// path is pinned at 0 allocs/op, so this must be flagged.
func PushUpdate(u *routeopt.BindingUpdate) []byte {
	return u.Marshal()
}

// AckUpdate serializes the acknowledgment the allocating way.
func AckUpdate(a *routeopt.BindingAck) []byte {
	return a.Marshal()
}
