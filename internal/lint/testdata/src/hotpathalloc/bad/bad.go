// Package hotpathallocbad calls every allocating codec form the
// hotpathalloc analyzer polices, plus one annotated call that must be
// excused and one non-module call that must be ignored.
package hotpathallocbad

import (
	"encoding/json"

	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

// Transmit allocates three times per packet; all three must be flagged.
func Transmit(c encap.Codec, pkt ipv4.Packet, src, dst ipv4.Addr) ([]byte, error) {
	kept := pkt.Clone()
	_ = kept
	if _, err := c.Encapsulate(pkt, src, dst); err != nil {
		return nil, err
	}
	return pkt.Marshal()
}

// Queue retains the packet past the caller's buffer lifetime; the
// directive excuses the copy, so it must not be flagged.
func Queue(q []ipv4.Packet, pkt ipv4.Packet) []ipv4.Packet {
	//mob4x4vet:allow hotpathalloc queued packets outlive the frame buffer
	return append(q, pkt.Clone())
}

// Encode uses a package-level Marshal from outside the module; not a
// method on a module type, so it is out of scope.
func Encode(v any) ([]byte, error) {
	return json.Marshal(v)
}

// Register serializes a registration request the allocating way. The
// registration path runs once per handoff — tens of thousands of times
// in a fleet storm — so this must be flagged too.
func Register(req *mobileip.Request) []byte {
	return req.Marshal()
}
