// The zero-allocation shape of the route-optimization push path:
// binding updates and acks marshal into caller-provided buffers.
package hotpathallocclean

import "mob4x4/internal/routeopt"

// PushUpdate appends the binding update into a pooled buffer — the
// 0 allocs/op send-path shape.
func PushUpdate(u *routeopt.BindingUpdate, buf []byte) []byte {
	return u.AppendMarshal(buf[:0])
}

// AckUpdate appends the acknowledgment the same way.
func AckUpdate(a *routeopt.BindingAck, buf []byte) []byte {
	return a.AppendMarshal(buf[:0])
}
