// Package hotpathallocclean is the zero-allocation shape of the same
// datapath: append-style codecs into caller-provided buffers. The
// hotpathalloc analyzer must stay silent.
package hotpathallocclean

import (
	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

// Transmit reuses buf for both the tunnel wrap and the wire bytes.
func Transmit(c encap.Codec, pkt ipv4.Packet, src, dst ipv4.Addr, buf []byte) ([]byte, error) {
	outer, err := c.AppendEncap(pkt, src, dst, buf[:0])
	if err != nil {
		return nil, err
	}
	return outer.AppendMarshal(buf[len(buf):])
}

// Register marshals the registration request into a caller-provided
// (pooled) buffer — the handoff fast path's shape.
func Register(req *mobileip.Request, buf []byte) []byte {
	return req.AppendMarshal(buf[:0])
}
