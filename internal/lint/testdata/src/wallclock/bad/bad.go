// Package wallclockbad exercises the wallclock analyzer: every real-clock
// use below must be flagged when the package is loaded under a
// mob4x4/internal/... import path.
package wallclockbad

import "time"

// Deadline leaks the real clock four ways.
func Deadline() time.Time {
	time.Sleep(time.Millisecond)
	<-time.After(time.Millisecond)
	t := time.NewTimer(time.Second)
	defer t.Stop()
	return time.Now()
}
