// Package wallclockclean uses only the virtual clock and time's pure
// value types; the wallclock analyzer must stay silent.
package wallclockclean

import (
	"time"

	"mob4x4/internal/vtime"
)

// Backoff doubles a retransmission interval, capped at a second. Duration
// arithmetic and constants are fine — only clock reads are banned.
func Backoff(d vtime.Duration) vtime.Duration {
	d *= 2
	if d > time.Second {
		d = time.Second
	}
	return d
}

// Fire schedules on the virtual clock.
func Fire(s *vtime.Scheduler, d vtime.Duration, fn func()) *vtime.Timer {
	return s.After(d, fn)
}
