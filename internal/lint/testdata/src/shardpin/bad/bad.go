// Package shardpinbad touches the far half of a split segment in every
// way the cross-shard ownership rule forbids: dereferencing it directly
// and through an alias, pinning it into a field, a map element and a
// package var, and handing it to a channel and a goroutine. One
// annotated pin at the end — the sanctioned delivery-queue shape — must
// be excused.
package shardpinbad

import (
	"mob4x4/internal/netsim"
)

var uplinkPeer *netsim.Segment

type router struct {
	peer   *netsim.Segment
	byName map[string]*netsim.Segment
	ch     chan *netsim.Segment
}

// Probe dereferences the far half, directly and via a local alias.
func Probe(seg *netsim.Segment) int {
	p := seg.RemotePeer()
	if p == nil {
		return 0
	}
	n := len(seg.RemotePeer().NICs())
	return n + p.MTU()
}

// Pin stores the far half everywhere local state can hold it.
func (r *router) Pin(seg *netsim.Segment) {
	r.peer = seg.RemotePeer()
	r.byName["uplink"] = seg.RemotePeer()
	uplinkPeer = seg.RemotePeer()
	r.ch <- seg.RemotePeer()
}

// Fan hands the far half to a goroutine on this shard.
func Fan(seg *netsim.Segment) {
	go drain(seg.RemotePeer())
}

func drain(*netsim.Segment) {}

// Deliver is the sanctioned crossing shape: the peer goes into a job
// drained by its own shard's delivery queue. The directive excuses it.
func (r *router) Deliver(seg *netsim.Segment) {
	//mob4x4vet:allow shardpin the job is executed by the peer's own shard via SendTo
	r.peer = seg.RemotePeer()
}
