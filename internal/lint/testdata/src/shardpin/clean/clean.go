// Package shardpinclean is the ownership-respecting shape of the same
// code: hold the far-half reference, compare it to nil, read the local
// half freely, and let a clean reassignment clear an alias. The shardpin
// analyzer must stay silent.
package shardpinclean

import (
	"mob4x4/internal/netsim"
)

type router struct {
	local *netsim.Segment
}

// Split reports whether the segment crosses shards: obtaining and
// nil-checking the reference is the topology question, not a pin.
func Split(seg *netsim.Segment) bool {
	return seg.RemotePeer() != nil
}

// Local state is this shard's own; reading and storing it is free.
func (r *router) Attach(seg *netsim.Segment) int {
	r.local = seg
	return seg.MTU()
}

// Relabel shows an alias dying cleanly: p is foreign only until the
// reassignment, and nothing dereferences it in between.
func Relabel(seg, other *netsim.Segment) int {
	p := seg.RemotePeer()
	if p == nil {
		return 0
	}
	p = other
	return p.MTU()
}
