// Package sharedrandbad draws from the process-global math/rand stream,
// hands one entity's stream to another through a Rand() accessor, and
// parks a stream in a package-level var — the three shapes that couple
// draw sequences to event interleaving.
package sharedrandbad

import "math/rand"

// shared is one stream for every Sim and shard in the process.
var shared = rand.New(rand.NewSource(1))

// Jitter draws from the global locked stream: the value depends on every
// other goroutine's draws since process start.
func Jitter() int64 {
	return rand.Int63n(100)
}

// Reseed makes it worse: it perturbs every other consumer.
func Reseed(seed int64) {
	rand.Seed(seed)
}

// sched owns a stream and leaks it through an accessor.
type sched struct {
	rng *rand.Rand
}

// Rand hands the scheduler's stream to whoever asks.
func (s *sched) Rand() *rand.Rand { return s.rng }

// Impair couples its loss draws to every other consumer of the
// scheduler's stream: reordering unrelated events changes which frames
// drop.
func Impair(s *sched) bool {
	return s.Rand().Float64() < 0.5
}
