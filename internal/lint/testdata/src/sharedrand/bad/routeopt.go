// Retransmission jitter for binding updates drawn from the global
// stream couples every in-flight push to every other goroutine's draws.
package sharedrandbad

import "math/rand"

// RetransmitJitter must be flagged: the backoff becomes a function of
// event interleaving instead of (seed, index).
func RetransmitJitter() int64 {
	return rand.Int63n(50)
}
