// Retransmission jitter drawn from the pusher's own stream: the
// backoff sequence is a pure function of (seed, index).
package sharedrandclean

import "math/rand"

// pusher owns its jitter stream for its whole lifetime.
type pusher struct {
	rng *rand.Rand
}

// retransmitJitter draws only from the pusher's own stream.
func (p *pusher) retransmitJitter() int64 {
	return p.rng.Int63n(50)
}
