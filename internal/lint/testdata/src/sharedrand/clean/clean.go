// Package sharedrandclean derives one stream per entity from
// (seed, index): each entity's draw sequence is a pure function of the
// seed, whatever order events interleave in. The sharedrand analyzer
// must stay silent.
package sharedrandclean

import "math/rand"

// sched mints streams; it never hands out its own.
type sched struct {
	seed    int64
	streams int64
}

// NewStream derives an independent stream for the next entity index.
func (s *sched) NewStream() *rand.Rand {
	s.streams++
	return rand.New(rand.NewSource(s.seed*1_000_003 + s.streams))
}

// link owns its stream for its whole lifetime.
type link struct {
	rng *rand.Rand
}

// newLink threads a freshly derived stream into the entity.
func newLink(s *sched) *link {
	return &link{rng: s.NewStream()}
}

// Impair draws only from the link's own stream.
func (l *link) Impair() bool {
	return l.rng.Float64() < 0.5
}
