package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one loaded, type-checked package: the parsed non-test
// files plus the go/types objects the analyzers consult. Test files are
// deliberately excluded — every invariant in this suite is scoped to
// non-test code (tests construct broken combos and fake clocks on
// purpose).
type Package struct {
	// Path is the import path the package was loaded under.
	Path string
	// Dir is the directory the files were read from.
	Dir string
	// ModulePath is the module the load session belongs to ("mob4x4");
	// analyzers use it to scope rules like "everything under
	// <module>/internal/".
	ModulePath string

	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	directives     map[directiveKey][]*directive
	directiveOrder []*directive
}

// A Loader parses and type-checks packages of a single module using only
// the standard library: go/parser for syntax, go/types for checking, and
// go/importer's source importer for dependencies outside the module.
// Module-internal imports are resolved recursively through the loader
// itself, so no compiled export data is needed anywhere.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module path declared in go.mod.
	ModulePath string

	fset    *token.FileSet
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the directory containing go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	b, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(b), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// LoadModule loads every package in the module, in deterministic
// (import-path) order. Directories named testdata, hidden directories,
// and directories with no non-test Go files are skipped, matching the go
// tool's conventions.
func (l *Loader) LoadModule() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.ModuleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModuleRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.ModuleRoot, path)
		if err != nil {
			return err
		}
		ip := l.ModulePath
		if rel != "." {
			ip = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	pkgs := make([]*Package, 0, len(paths))
	for _, ip := range paths {
		pkg, err := l.Load(ip)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// Load loads a module-internal package by import path.
func (l *Loader) Load(importPath string) (*Package, error) {
	dir, ok := l.dirFor(importPath)
	if !ok {
		return nil, fmt.Errorf("lint: %q is not in module %s", importPath, l.ModulePath)
	}
	return l.LoadDir(dir, importPath)
}

// LoadDir parses and type-checks the non-test Go files of dir, recording
// the package under the given import path. The directory need not be
// inside the module tree — the analyzer test fixtures live under
// testdata and are loaded through this entry point with synthetic
// module-internal import paths.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(importPath, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{
		Path:       importPath,
		Dir:        dir,
		ModulePath: l.ModulePath,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// importDep resolves one import during type-checking: module-internal
// paths recurse through the loader, everything else goes to the stdlib
// source importer.
func (l *Loader) importDep(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(importPath string) (string, bool) {
	if importPath == l.ModulePath {
		return l.ModuleRoot, true
	}
	rel, ok := strings.CutPrefix(importPath, l.ModulePath+"/")
	if !ok {
		return "", false
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), true
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
