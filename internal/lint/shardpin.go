package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// shardpinPkgs are the packages that touch split segments: netsim owns
// the split-pair mechanism, fleet builds cross-region topologies on top
// of it. Everything else reaches segments only through its own region's
// Sim and cannot hold a foreign half.
var shardpinPkgs = map[string]bool{
	"internal/netsim": true,
	"internal/fleet":  true,
}

// ShardPin returns the analyzer enforcing the cross-shard ownership rule
// of the sharded engine: the far half of a split segment — obtained from
// Segment.RemotePeer or netsim's internal remote.peer field — belongs to
// another shard's event loop. Holding the reference and nil-checking it
// is fine (topology code asks "is this link split?"); dereferencing it
// (any field or method access, and the Host/NIC state behind it) or
// pinning it into local state (field, element, package var, channel,
// goroutine) races with the owning shard. The one sanctioned crossing —
// handing the peer to its own shard's delivery queue via
// Scheduler.SendTo — carries a //mob4x4vet:allow shardpin directive.
func ShardPin() *Analyzer {
	a := &Analyzer{
		Name: "shardpin",
		Doc:  "the far half of a split segment (Segment.RemotePeer / remote.peer) is owned by another shard: nil-check it or hand it to the peer's delivery queue (Scheduler.SendTo), never dereference it or pin it into local state",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		rel := strings.TrimPrefix(pkg.Path, pkg.ModulePath+"/")
		if !shardpinPkgs[rel] &&
			!strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/lintfixture/shardpin/") {
			return
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch fn := n.(type) {
				case *ast.FuncDecl:
					if fn.Body != nil {
						s := &shardpinCheck{pass: pass, taint: map[types.Object]bool{}}
						s.walk(fn.Body)
					}
					return false
				case *ast.FuncLit:
					// Package-level literals only: literals inside a
					// FuncDecl are walked with their enclosing taint.
					s := &shardpinCheck{pass: pass, taint: map[types.Object]bool{}}
					s.walk(fn.Body)
					return false
				}
				return true
			})
		}
	}
	return a
}

type shardpinCheck struct {
	pass  *Pass
	taint map[types.Object]bool
}

// walk visits one function body in source order, including nested
// function literals (captured foreign references are visible inside
// them, and a literal scheduled later is exactly how a pin escapes).
func (s *shardpinCheck) walk(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			s.assign(n)
		case *ast.SelectorExpr:
			if s.tainted(n.X) {
				s.pass.Report(n.Sel.Pos(),
					"reading %s through the far half of a split segment pins state owned by another shard; only the delivery queue (Scheduler.SendTo) may cross the boundary", n.Sel.Name)
				return false
			}
		case *ast.SendStmt:
			if s.tainted(n.Value) {
				s.pass.Report(n.Arrow,
					"sending the far half of a split segment on a channel bypasses the delivery queue; cross shards with Scheduler.SendTo")
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				if s.tainted(arg) {
					s.pass.Report(arg.Pos(),
						"handing the far half of a split segment to a goroutine bypasses the delivery queue; cross shards with Scheduler.SendTo")
				}
			}
		}
		return true
	})
}

// assign tracks aliases (p := seg.RemotePeer() taints p, reassignment
// from a clean value clears it) and flags every store that pins a
// foreign segment where the owning shard cannot see it.
func (s *shardpinCheck) assign(as *ast.AssignStmt) {
	for i, lhs := range as.Lhs {
		if i >= len(as.Rhs) {
			break // x, y := f(): multi-value call results handled by tainted()
		}
		rhs := as.Rhs[i]
		rhsTainted := s.tainted(rhs)
		if id, ok := lhs.(*ast.Ident); ok {
			obj := s.pass.Pkg.Info.Defs[id]
			if obj == nil {
				obj = s.pass.Pkg.Info.Uses[id]
			}
			if obj == nil {
				continue
			}
			if v, ok := obj.(*types.Var); ok && v.Parent() == s.pass.Pkg.Types.Scope() {
				if rhsTainted {
					s.pass.Report(id.Pos(),
						"storing the far half of a split segment in package-level var %s keeps a cross-shard reference the owning shard cannot see; hand frames to the peer's delivery queue (Scheduler.SendTo) instead", id.Name)
				}
				continue
			}
			s.taint[obj] = rhsTainted
			continue
		}
		if !rhsTainted {
			continue
		}
		switch lhs := lhs.(type) {
		case *ast.SelectorExpr:
			s.pass.Report(lhs.Sel.Pos(),
				"storing the far half of a split segment in field %s keeps a cross-shard reference the owning shard cannot see; hand frames to the peer's delivery queue (Scheduler.SendTo) instead", lhs.Sel.Name)
		case *ast.IndexExpr:
			s.pass.Report(lhs.Lbrack,
				"storing the far half of a split segment in a map or slice element keeps a cross-shard reference the owning shard cannot see; hand frames to the peer's delivery queue (Scheduler.SendTo) instead")
		}
	}
}

// tainted reports whether e is (an alias of) the far half of a split
// segment: a RemotePeer() call, a remote.peer field read, or a local
// already tainted by one. Nil comparisons and returns are not uses, so
// they never reach here as flagged sites.
func (s *shardpinCheck) tainted(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		obj := s.pass.Pkg.Info.Uses[e]
		if obj == nil {
			obj = s.pass.Pkg.Info.Defs[e]
		}
		return obj != nil && s.taint[obj]
	case *ast.ParenExpr:
		return s.tainted(e.X)
	case *ast.CallExpr:
		sel, ok := e.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "RemotePeer" {
			return false
		}
		return s.netsimType(sel.X, "Segment")
	case *ast.SelectorExpr:
		if e.Sel.Name != "peer" {
			return false
		}
		return s.netsimType(e.X, "remoteEnd")
	}
	return false
}

// netsimType reports whether expr's type is (a pointer to) the named
// netsim type.
func (s *shardpinCheck) netsimType(expr ast.Expr, name string) bool {
	tv, ok := s.pass.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil &&
		obj.Pkg().Path() == s.pass.Pkg.ModulePath+"/internal/netsim" &&
		obj.Name() == name
}
