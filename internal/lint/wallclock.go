package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// wallclockFuncs are the package-time functions that read or wait on the
// host's real clock. Any of these inside the simulation makes a run
// depend on machine speed and scheduling, destroying the determinism the
// reproduction's experiments (and determinism_test.go) rely on.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Sleep":     true,
	"After":     true,
	"NewTimer":  true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTicker": true,
	"Since":     true,
	"Until":     true,
}

// Wallclock returns the analyzer enforcing that all timing in
// <module>/internal/* flows through the internal/vtime virtual clock.
// vtime itself is the only exempt package: it owns the time.Duration
// re-export and is the single place virtual instants are defined.
func Wallclock() *Analyzer {
	a := &Analyzer{
		Name: "wallclock",
		Doc:  "no real-clock time.Now/Sleep/After/NewTimer in internal/* (use internal/vtime)",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		if !strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/") {
			return
		}
		if pkg.Path == pkg.ModulePath+"/internal/vtime" {
			return
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallclockFuncs[sel.Sel.Name] {
					return true
				}
				id, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[id].(*types.PkgName)
				if !ok || pn.Imported().Path() != "time" {
					return true
				}
				pass.Report(sel.Pos(),
					"time.%s reads the real clock; route all timing through internal/vtime to keep the simulation deterministic",
					sel.Sel.Name)
				return true
			})
		}
	}
	return a
}
