package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mob4x4/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// sharedLoader type-checks the standard library from source once per test
// binary; every test that can share the cache does.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return lint.NewLoader(root)
})

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// loadFixtureAs loads testdata/src/<name>/<variant> under an explicit
// import path (the path decides which scoping rules apply).
func loadFixtureAs(t *testing.T, l *lint.Loader, name, variant, importPath string) *lint.Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name, variant), importPath)
	if err != nil {
		t.Fatalf("loading %s/%s fixture: %v", name, variant, err)
	}
	return pkg
}

func loadFixture(t *testing.T, name, variant string) *lint.Package {
	t.Helper()
	l := loader(t)
	return loadFixtureAs(t, l, name, variant,
		l.ModulePath+"/internal/lintfixture/"+name+"/"+variant)
}

func format(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s [%s]\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	return b.String()
}

// TestAnalyzersGolden runs every analyzer over its bad fixture and
// compares the full diagnostic listing (file:line:col, message, analyzer)
// against the golden file, then checks the clean fixture stays silent.
// Regenerate goldens with: go test ./internal/lint -run Golden -update
func TestAnalyzersGolden(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			bad := loadFixture(t, a.Name, "bad")
			got := format(lint.Run([]*lint.Package{bad}, []*lint.Analyzer{a}))
			if got == "" {
				t.Fatalf("analyzer %s reported nothing on its bad fixture", a.Name)
			}
			goldenPath := filepath.Join("testdata", "golden", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}

			clean := loadFixture(t, a.Name, "clean")
			if diags := lint.Run([]*lint.Package{clean}, []*lint.Analyzer{a}); len(diags) != 0 {
				t.Errorf("analyzer %s fired on its clean fixture:\n%s", a.Name, format(diags))
			}
		})
	}
}

// TestDiagnosticPositions pins exact line/column positions for one
// representative diagnostic per analyzer, independent of the golden
// files, plus the total count on the bad fixture.
func TestDiagnosticPositions(t *testing.T) {
	tests := []struct {
		analyzer  string
		wantCount int
		line, col int    // position of the first diagnostic
		contains  string // substring of the first diagnostic's message
	}{
		{"wallclock", 4, 10, 2, "time.Sleep"},
		{"modeswitch", 3, 23, 2, "missing OutDH, OutDT"},
		{"brokencombo", 3, 11, 18, "InDT"},
		{"errcheck", 4, 13, 2, "ParseAddr"},
		{"panicpolicy", 2, 9, 3, "bare panic"},
	}
	for _, tc := range tests {
		t.Run(tc.analyzer, func(t *testing.T) {
			a, err := lint.ByName(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			bad := loadFixture(t, tc.analyzer, "bad")
			diags := lint.Run([]*lint.Package{bad}, []*lint.Analyzer{a})
			if len(diags) != tc.wantCount {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), tc.wantCount, format(diags))
			}
			first := diags[0]
			if first.Pos.Line != tc.line || first.Pos.Column != tc.col {
				t.Errorf("first diagnostic at %d:%d, want %d:%d (%s)",
					first.Pos.Line, first.Pos.Column, tc.line, tc.col, first.Message)
			}
			if !strings.Contains(first.Message, tc.contains) {
				t.Errorf("first diagnostic %q does not mention %q", first.Message, tc.contains)
			}
			if first.Analyzer != tc.analyzer {
				t.Errorf("diagnostic attributed to %q, want %q", first.Analyzer, tc.analyzer)
			}
		})
	}
}

// TestWallclockScope checks the two scoping rules: the same real-clock
// code is fine outside <module>/internal/, and internal/vtime itself is
// exempt (it is the package that wraps the clock).
func TestWallclockScope(t *testing.T) {
	l := loader(t)
	a, err := lint.ByName("wallclock")
	if err != nil {
		t.Fatal(err)
	}

	outside := loadFixtureAs(t, l, "wallclock", "bad", l.ModulePath+"/lintfixture/wallclockout")
	if diags := lint.Run([]*lint.Package{outside}, []*lint.Analyzer{a}); len(diags) != 0 {
		t.Errorf("wallclock fired outside internal/:\n%s", format(diags))
	}

	// A fresh loader so the fixture can masquerade as the real vtime
	// import path without poisoning the shared cache.
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	asVtime := loadFixtureAs(t, fresh, "wallclock", "bad", fresh.ModulePath+"/internal/vtime")
	if diags := lint.Run([]*lint.Package{asVtime}, []*lint.Analyzer{a}); len(diags) != 0 {
		t.Errorf("wallclock fired on the exempt vtime package path:\n%s", format(diags))
	}
}

// TestDirectiveSuppression checks //mob4x4vet:allow silences exactly the
// named analyzer at the annotated position: the clean brokencombo
// fixture holds a broken combo under a matching directive (must be
// silent), and the bad fixture holds one under a wrong-name directive
// (must still be flagged — pinned here by count, and by position in the
// golden file).
func TestDirectiveSuppression(t *testing.T) {
	bc, err := lint.ByName("brokencombo")
	if err != nil {
		t.Fatal(err)
	}
	clean := loadFixture(t, "brokencombo", "clean")
	if diags := lint.Run([]*lint.Package{clean}, []*lint.Analyzer{bc}); len(diags) != 0 {
		t.Errorf("matching directive did not suppress brokencombo:\n%s", format(diags))
	}
	bad := loadFixture(t, "brokencombo", "bad")
	if diags := lint.Run([]*lint.Package{bad}, []*lint.Analyzer{bc}); len(diags) != 3 {
		t.Errorf("got %d diagnostics on bad fixture, want 3 (wrong-name directive must not suppress):\n%s",
			len(diags), format(diags))
	}
}
