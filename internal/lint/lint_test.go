package lint_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mob4x4/internal/lint"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// sharedLoader type-checks the standard library from source once per test
// binary; every test that can share the cache does.
var sharedLoader = sync.OnceValues(func() (*lint.Loader, error) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		return nil, err
	}
	return lint.NewLoader(root)
})

func loader(t *testing.T) *lint.Loader {
	t.Helper()
	l, err := sharedLoader()
	if err != nil {
		t.Fatalf("loader: %v", err)
	}
	return l
}

// loadFixtureAs loads testdata/src/<name>/<variant> under an explicit
// import path (the path decides which scoping rules apply).
func loadFixtureAs(t *testing.T, l *lint.Loader, name, variant, importPath string) *lint.Package {
	t.Helper()
	pkg, err := l.LoadDir(filepath.Join("testdata", "src", name, variant), importPath)
	if err != nil {
		t.Fatalf("loading %s/%s fixture: %v", name, variant, err)
	}
	return pkg
}

func loadFixture(t *testing.T, name, variant string) *lint.Package {
	t.Helper()
	l := loader(t)
	return loadFixtureAs(t, l, name, variant,
		l.ModulePath+"/internal/lintfixture/"+name+"/"+variant)
}

func format(diags []lint.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s:%d:%d: %s [%s]\n",
			filepath.Base(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	return b.String()
}

// TestAnalyzersGolden runs every analyzer over its bad fixture and
// compares the full diagnostic listing (file:line:col, message, analyzer)
// against the golden file, then checks the clean fixture stays silent.
// Regenerate goldens with: go test ./internal/lint -run Golden -update
func TestAnalyzersGolden(t *testing.T) {
	for _, a := range lint.All() {
		t.Run(a.Name, func(t *testing.T) {
			bad := loadFixture(t, a.Name, "bad")
			got := format(lint.Run([]*lint.Package{bad}, []*lint.Analyzer{a}))
			if got == "" {
				t.Fatalf("analyzer %s reported nothing on its bad fixture", a.Name)
			}
			goldenPath := filepath.Join("testdata", "golden", a.Name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics differ from %s:\n--- got ---\n%s--- want ---\n%s", goldenPath, got, want)
			}

			clean := loadFixture(t, a.Name, "clean")
			if diags := lint.Run([]*lint.Package{clean}, []*lint.Analyzer{a}); len(diags) != 0 {
				t.Errorf("analyzer %s fired on its clean fixture:\n%s", a.Name, format(diags))
			}
		})
	}
}

// TestDiagnosticPositions pins exact line/column positions for one
// representative diagnostic per analyzer, independent of the golden
// files, plus the total count on the bad fixture.
func TestDiagnosticPositions(t *testing.T) {
	tests := []struct {
		analyzer  string
		wantCount int
		line, col int    // position of the first diagnostic
		contains  string // substring of the first diagnostic's message
	}{
		{"wallclock", 4, 10, 2, "time.Sleep"},
		{"modeswitch", 3, 23, 2, "missing OutDH, OutDT"},
		{"brokencombo", 3, 11, 18, "InDT"},
		{"errcheck", 4, 13, 2, "ParseAddr"},
		{"panicpolicy", 2, 9, 3, "bare panic"},
		{"mapiter", 3, 11, 2, "map iteration order is randomized"},
		{"globalstate", 6, 13, 5, "package-level var seq"},
		{"sharedrand", 5, 10, 5, "process-wide RNG stream"},
		{"bufretain", 7, 22, 4, "field last"},
		{"shardpin", 7, 27, 28, "reading NICs through the far half"},
	}
	for _, tc := range tests {
		t.Run(tc.analyzer, func(t *testing.T) {
			a, err := lint.ByName(tc.analyzer)
			if err != nil {
				t.Fatal(err)
			}
			bad := loadFixture(t, tc.analyzer, "bad")
			diags := lint.Run([]*lint.Package{bad}, []*lint.Analyzer{a})
			if len(diags) != tc.wantCount {
				t.Fatalf("got %d diagnostics, want %d:\n%s", len(diags), tc.wantCount, format(diags))
			}
			first := diags[0]
			if first.Pos.Line != tc.line || first.Pos.Column != tc.col {
				t.Errorf("first diagnostic at %d:%d, want %d:%d (%s)",
					first.Pos.Line, first.Pos.Column, tc.line, tc.col, first.Message)
			}
			if !strings.Contains(first.Message, tc.contains) {
				t.Errorf("first diagnostic %q does not mention %q", first.Message, tc.contains)
			}
			if first.Analyzer != tc.analyzer {
				t.Errorf("diagnostic attributed to %q, want %q", first.Analyzer, tc.analyzer)
			}
		})
	}
}

// TestWallclockScope checks the two scoping rules: the same real-clock
// code is fine outside <module>/internal/, and internal/vtime itself is
// exempt (it is the package that wraps the clock).
func TestWallclockScope(t *testing.T) {
	l := loader(t)
	a, err := lint.ByName("wallclock")
	if err != nil {
		t.Fatal(err)
	}

	outside := loadFixtureAs(t, l, "wallclock", "bad", l.ModulePath+"/lintfixture/wallclockout")
	if diags := lint.Run([]*lint.Package{outside}, []*lint.Analyzer{a}); len(diags) != 0 {
		t.Errorf("wallclock fired outside internal/:\n%s", format(diags))
	}

	// A fresh loader so the fixture can masquerade as the real vtime
	// import path without poisoning the shared cache.
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	asVtime := loadFixtureAs(t, fresh, "wallclock", "bad", fresh.ModulePath+"/internal/vtime")
	if diags := lint.Run([]*lint.Package{asVtime}, []*lint.Analyzer{a}); len(diags) != 0 {
		t.Errorf("wallclock fired on the exempt vtime package path:\n%s", format(diags))
	}
}

// TestRouteOptScope checks that the scoped analyzers actually cover
// internal/routeopt: each bad fixture, loaded as if it were the real
// route-optimization package, must still fire. (A fresh loader per
// masquerade keeps the shared cache clean, like TestWallclockScope.)
func TestRouteOptScope(t *testing.T) {
	root, err := lint.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"hotpathalloc", "bufretain", "globalstate", "sharedrand"} {
		t.Run(name, func(t *testing.T) {
			a, err := lint.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := lint.NewLoader(root)
			if err != nil {
				t.Fatal(err)
			}
			// The hotpathalloc bad fixture imports internal/routeopt, so
			// it cannot itself masquerade as that path; it has a minimal
			// scoped variant without the import.
			variant := "bad"
			if name == "hotpathalloc" {
				variant = "scoped"
			}
			pkg := loadFixtureAs(t, fresh, name, variant, fresh.ModulePath+"/internal/routeopt")
			if diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a}); len(diags) == 0 {
				t.Errorf("%s stayed silent on its %s fixture under the internal/routeopt import path", name, variant)
			}
		})
	}
}

// TestDirectiveSuppression checks //mob4x4vet:allow silences exactly the
// named analyzer at the annotated position: the clean brokencombo
// fixture holds a broken combo under a matching directive (must be
// silent), and the bad fixture holds one under a wrong-name directive
// (must still be flagged — pinned here by count, and by position in the
// golden file).
func TestDirectiveSuppression(t *testing.T) {
	bc, err := lint.ByName("brokencombo")
	if err != nil {
		t.Fatal(err)
	}
	clean := loadFixture(t, "brokencombo", "clean")
	if diags := lint.Run([]*lint.Package{clean}, []*lint.Analyzer{bc}); len(diags) != 0 {
		t.Errorf("matching directive did not suppress brokencombo:\n%s", format(diags))
	}
	bad := loadFixture(t, "brokencombo", "bad")
	if diags := lint.Run([]*lint.Package{bad}, []*lint.Analyzer{bc}); len(diags) != 3 {
		t.Errorf("got %d diagnostics on bad fixture, want 3 (wrong-name directive must not suppress):\n%s",
			len(diags), format(diags))
	}
}

// TestAllowlistMechanism pins the suppression semantics position by
// position on one fixture holding three identical-shape loops: an
// annotated map range (suppressed — exactly that one, at that position),
// an unannotated twin (still flagged), and a well-formed directive over
// a slice range (no matching finding, so the directive itself must be
// reported stale under the staleallow name at the directive's position).
func TestAllowlistMechanism(t *testing.T) {
	l := loader(t)
	a, err := lint.ByName("mapiter")
	if err != nil {
		t.Fatal(err)
	}
	pkg := loadFixtureAs(t, l, "allowlist", "mapiter",
		l.ModulePath+"/internal/lintfixture/mapiter/allowlist")
	diags := lint.Run([]*lint.Package{pkg}, []*lint.Analyzer{a})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (one flagged loop + one stale directive):\n%s",
			len(diags), format(diags))
	}
	flagged := diags[0]
	if flagged.Analyzer != "mapiter" || flagged.Pos.Line != 21 || flagged.Pos.Column != 2 {
		t.Errorf("unannotated loop: got %s at %d:%d, want mapiter at 21:2",
			flagged.Analyzer, flagged.Pos.Line, flagged.Pos.Column)
	}
	stale := diags[1]
	if stale.Analyzer != lint.StaleAllowName || stale.Pos.Line != 31 || stale.Pos.Column != 2 {
		t.Errorf("stale directive: got %s at %d:%d, want %s at 31:2",
			stale.Analyzer, stale.Pos.Line, stale.Pos.Column, lint.StaleAllowName)
	}
	if !strings.Contains(stale.Message, "suppresses no mapiter finding") {
		t.Errorf("stale message %q does not say the directive suppresses nothing", stale.Message)
	}
	// The annotated twin at 12:2 must not appear anywhere.
	for _, d := range diags {
		if d.Pos.Line == 12 {
			t.Errorf("annotated loop at line 12 was flagged: %s", d.Message)
		}
	}
}
