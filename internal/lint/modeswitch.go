package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// ModeSwitch returns the analyzer enforcing exhaustive switches over
// sentinel-counted enums. The repo's convention (set by core.OutMode and
// core.InMode) is:
//
//	type X int
//	const (
//	    XFirst X = iota
//	    ...
//	    NumXs = <count>   // untyped sentinel closing the enum
//	)
//
// Any switch whose tag has such a type must either list every constant of
// the type or carry a default clause. Without this check, adding a mode
// (the paper's grid has historically grown: the authors note rows can be
// refined) silently falls through existing switches.
func ModeSwitch() *Analyzer {
	a := &Analyzer{
		Name: "modeswitch",
		Doc:  "switches over Num-sentinel enums (core.OutMode, core.InMode, ...) must be exhaustive or have a default",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sw, ok := n.(*ast.SwitchStmt)
				if !ok || sw.Tag == nil {
					return true
				}
				checkModeSwitch(pass, sw)
				return true
			})
		}
	}
	return a
}

func checkModeSwitch(pass *Pass, sw *ast.SwitchStmt) {
	tagType := pass.Pkg.Info.TypeOf(sw.Tag)
	if tagType == nil {
		return
	}
	named, ok := tagType.(*types.Named)
	if !ok {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return
	}
	enum := enumConstants(named)
	if enum == nil {
		return
	}
	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		clause, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if clause.List == nil {
			return // default clause: the switch handles everything
		}
		for _, expr := range clause.List {
			tv, ok := pass.Pkg.Info.Types[expr]
			if !ok || tv.Value == nil {
				// Non-constant case expression: assume it may cover
				// anything and stay silent rather than guess.
				return
			}
			if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
				covered[v] = true
			}
		}
	}
	var missing []string
	for _, c := range enum {
		if !covered[c.value] {
			missing = append(missing, c.name)
		}
	}
	if len(missing) == 0 {
		return
	}
	pass.Report(sw.Pos(),
		"switch over %s is not exhaustive and has no default: missing %s",
		named.Obj().Name(), strings.Join(missing, ", "))
}

type enumConstant struct {
	name  string
	value int64
}

// enumConstants returns the declared constants of named's type if its
// defining package also declares the Num<Name>s sentinel, else nil.
// Distinct names aliased to the same value (none exist today) collapse to
// the first name in source order.
func enumConstants(named *types.Named) []enumConstant {
	obj := named.Obj()
	if obj.Pkg() == nil {
		return nil
	}
	scope := obj.Pkg().Scope()
	sentinel := fmt.Sprintf("Num%ss", obj.Name())
	if _, ok := scope.Lookup(sentinel).(*types.Const); !ok {
		return nil
	}
	var out []enumConstant
	seen := make(map[int64]bool)
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, ok := constant.Int64Val(constant.ToInt(c.Val()))
		if !ok || seen[v] {
			continue
		}
		seen[v] = true
		out = append(out, enumConstant{name: name, value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}
