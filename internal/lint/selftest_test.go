package lint_test

import (
	"testing"

	"mob4x4/internal/lint"
)

// TestRepoIsClean runs the entire analyzer suite over the repository
// itself, making every rule a tier-1 invariant: `go test ./...` fails the
// moment a wallclock call, a non-exhaustive mode switch, a constant
// broken combo, a discarded module error, or a bare library panic lands
// anywhere in the module.
func TestRepoIsClean(t *testing.T) {
	l := loader(t)
	pkgs, err := l.LoadModule()
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader found no packages in the module")
	}
	diags := lint.Run(pkgs, lint.All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("fix the violations or, for a deliberate exception, add a //mob4x4vet:allow <analyzer> directive with a reason")
	}
}
