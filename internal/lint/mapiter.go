package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// mapiterPkgs are the packages whose control flow reaches schedules,
// exports or reports: the experiment drivers, the metrics export layer,
// the whole simulated protocol stack (link layer through Mobile IP, TCP,
// ICMP, DNS and DHCP — every callback there runs inside a scheduler
// event), the fleet storm, the topology builder and the event scheduler
// itself. A `for range` over a map anywhere here injects Go's
// per-iteration randomized map order into byte-compared output or into
// event ordering unless the loop's results are sorted before use.
var mapiterPkgs = map[string]bool{
	"internal/metrics":     true,
	"internal/experiments": true,
	"internal/fleet":       true,
	"internal/vtime":       true,
	"internal/netsim":      true,
	"internal/dhcpsim":     true,
	"internal/stack":       true,
	"internal/mobileip":    true,
	"internal/inet":        true,
	"internal/core":        true,
	"internal/tcplite":     true,
	"internal/faults":      true,
	"internal/icmphost":    true,
	"internal/dnssim":      true,
}

// sortCallPkgs are the packages whose calls count as "feeding a sort":
// a loop that only collects into a slice later passed to one of these is
// deterministic no matter what order the map yielded.
var sortCallPkgs = map[string]bool{"sort": true, "slices": true}

// MapIter returns the analyzer banning raw map iteration on the
// deterministic-output paths. A loop is fine when a slice it appends to
// is subsequently passed to sort/slices in the same function; anything
// genuinely order-insensitive (say, summing values into a scalar) takes a
// //mob4x4vet:allow mapiter directive naming why order cannot leak.
func MapIter() *Analyzer {
	a := &Analyzer{
		Name: "mapiter",
		Doc:  "no unsorted map iteration on export/report/scheduling paths (metrics, experiments, fleet, the scheduler and the whole simulated stack); sort the collected results or annotate an order-insensitive sink",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		rel := strings.TrimPrefix(pkg.Path, pkg.ModulePath+"/")
		if !mapiterPkgs[rel] &&
			!strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/lintfixture/mapiter/") {
			return
		}
		for _, f := range pkg.Files {
			// Walk function bodies so each range statement can be judged
			// against the statements that follow it in the same function.
			ast.Inspect(f, func(n ast.Node) bool {
				var body *ast.BlockStmt
				switch fn := n.(type) {
				case *ast.FuncDecl:
					body = fn.Body
				case *ast.FuncLit:
					body = fn.Body
				}
				if body == nil {
					return true
				}
				checkMapRanges(pass, body)
				return true
			})
		}
	}
	return a
}

// checkMapRanges flags each range-over-map in body whose collected
// results are not sorted later in the same body. Nested function literals
// are skipped here — the Inspect in Run visits them as their own bodies.
func checkMapRanges(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && n.Pos() != body.Pos() {
			return false
		}
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Pkg.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		if feedsSort(pass.Pkg, body, rng) {
			return true
		}
		pass.Report(rng.Pos(),
			"map iteration order is randomized per run and leaks into schedules/reports; collect and sort the keys, use a slice-backed table, or annotate an order-insensitive sink")
		return true
	})
}

// feedsSort reports whether some slice the loop appends to is, after the
// loop, handed to a sort/slices call in the same body — the canonical
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)
//
// shape and its variants (struct rows sorted with sort.Slice, sort.Sort
// over a named slice type, slices.SortFunc, ...).
func feedsSort(pkg *Package, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	// Destinations: every `x = append(x, ...)` target inside the loop.
	var dests []string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok {
				continue
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "append" || i >= len(as.Lhs) {
				continue
			}
			dests = append(dests, types.ExprString(as.Lhs[i]))
		}
		return true
	})
	if len(dests) == 0 {
		return false
	}
	// A sort call after the loop mentioning any destination.
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		id, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[id].(*types.PkgName)
		if !ok || !sortCallPkgs[pn.Imported().Path()] {
			return true
		}
		for _, arg := range call.Args {
			argStr := types.ExprString(arg)
			for _, d := range dests {
				if argStr == d || strings.Contains(argStr, d) {
					sorted = true
					return false
				}
			}
		}
		return true
	})
	return sorted
}
