package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// BrokenCombo returns the analyzer flagging constant construction of the
// six dark-shaded grid cells of Figure 10. The paper's Section 6.5 rule
// is endpoint consistency: a combination where exactly one direction uses
// the temporary care-of address as the endpoint (In-DT xor Out-DT) leaves
// the two hosts disagreeing about the connection endpoints, so "current
// protocols such as TCP" cannot work. Code that hardwires such a
// Combo{In: ..., Out: ...} literal is constructing a configuration the
// paper proves useless; tests that do it on purpose (to verify
// Classify) are exempt because test files are never analyzed, and
// deliberate demonstrations can carry a //mob4x4vet:allow brokencombo
// directive.
func BrokenCombo() *Analyzer {
	a := &Analyzer{
		Name: "brokencombo",
		Doc:  "no constant core.Combo literal may form one of the six broken (dark-shaded) Figure 10 cells",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				lit, ok := n.(*ast.CompositeLit)
				if !ok {
					return true
				}
				checkComboLit(pass, lit)
				return true
			})
		}
	}
	return a
}

func checkComboLit(pass *Pass, lit *ast.CompositeLit) {
	t := pass.Pkg.Info.TypeOf(lit)
	if t == nil {
		return
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "Combo" || obj.Pkg() == nil || obj.Pkg().Path() != pass.Pkg.ModulePath+"/internal/core" {
		return
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return
	}
	// Resolve the constant value (if any) of each field element.
	fieldVal := make(map[string]int64)
	for i, elt := range lit.Elts {
		expr := elt
		name := ""
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			id, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			name = id.Name
			expr = kv.Value
		} else if i < st.NumFields() {
			name = st.Field(i).Name()
		}
		tv, ok := pass.Pkg.Info.Types[expr]
		if !ok || tv.Value == nil {
			continue
		}
		if v, ok := constant.Int64Val(constant.ToInt(tv.Value)); ok {
			fieldVal[name] = v
		}
	}
	in, okIn := fieldVal["In"]
	out, okOut := fieldVal["Out"]
	if !okIn || !okOut {
		return // at least one direction is computed at run time
	}
	scope := obj.Pkg().Scope()
	inDT, ok1 := constValue(scope, "InDT")
	outDT, ok2 := constValue(scope, "OutDT")
	if !ok1 || !ok2 {
		return
	}
	// Section 6.5: broken iff exactly one direction uses the temporary
	// address as the endpoint.
	if (in == inDT) == (out == outDT) {
		return
	}
	pass.Report(lit.Pos(),
		"combo %s/%s is one of the six broken grid cells (Figure 10): one side uses the temporary address, the other the home address",
		modeName(scope, "In", in), modeName(scope, "Out", out))
}

func constValue(scope *types.Scope, name string) (int64, bool) {
	c, ok := scope.Lookup(name).(*types.Const)
	if !ok {
		return 0, false
	}
	return constant.Int64Val(constant.ToInt(c.Val()))
}

// modeName finds the constant with the given prefix ("In"/"Out") and
// value, for readable diagnostics.
func modeName(scope *types.Scope, prefix string, v int64) string {
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || len(name) <= len(prefix) || name[:len(prefix)] != prefix {
			continue
		}
		named, ok := c.Type().(*types.Named)
		if !ok || named.Obj().Name() != prefix+"Mode" {
			continue
		}
		if cv, ok := constant.Int64Val(constant.ToInt(c.Val())); ok && cv == v {
			return name
		}
	}
	return prefix + "Mode(?)"
}
