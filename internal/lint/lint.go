// Package lint is a repo-specific static-analysis suite for the mob4x4
// reproduction. It machine-checks the invariants the paper's claims rest
// on but the Go compiler cannot see:
//
//   - wallclock: the simulation is deterministic only while every timing
//     decision flows through the internal/vtime virtual clock; any
//     time.Now/time.Sleep in internal/* silently breaks reproducibility.
//   - modeswitch: the 4x4 grid machinery (core.OutMode, core.InMode) is
//     exhaustively handled — a switch over a Num-sentinel enum that
//     silently ignores a constant is exactly how a new mode rots.
//   - brokencombo: no code path constructs one of the six dark-shaded
//     broken grid cells of Figure 10 as a constant combination.
//   - errcheck: error returns from this module's own functions are never
//     dropped on the floor.
//   - panicpolicy: library code never calls bare panic; invariants go
//     through internal/assert and input errors are returned.
//   - hotpathalloc: the packet datapath (internal/netsim, internal/stack,
//     internal/encap) never calls the allocating Marshal/Clone/Encapsulate
//     codecs; the zero-allocation fast path uses the Append* forms with
//     pooled buffers, and deliberate retention points are annotated.
//
// The suite is built only on go/parser, go/types and go/importer so the
// module stays dependency-free. cmd/mob4x4vet is the command-line driver;
// the package's own tests run the suite over the repository itself, so
// `go test ./...` fails on any new violation.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// An Analyzer checks one invariant over one type-checked package.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //mob4x4vet:allow directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// encodes.
	Doc string
	// Run inspects pass.Pkg and reports findings via pass.Report.
	Run func(pass *Pass)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock(),
		ModeSwitch(),
		BrokenCombo(),
		ErrCheck(),
		PanicPolicy(),
		HotPathAlloc(),
	}
}

// ByName returns the analyzer with the given name.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q", name)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
}

// Report records a finding at pos unless a //mob4x4vet:allow directive for
// this analyzer covers the position (same line, or the line above).
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.Pkg.allowed(p.Analyzer.Name, position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns all findings
// sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directivePrefix introduces a suppression comment:
//
//	//mob4x4vet:allow <analyzer> [reason]
//
// placed on the flagged line or the line immediately above it. The reason
// is free text for the reviewer; the analyzer name must match exactly.
const directivePrefix = "//mob4x4vet:allow"

// allowed reports whether a directive suppresses analyzer findings at pos.
func (pkg *Package) allowed(analyzer string, pos token.Position) bool {
	if pkg.directives == nil {
		pkg.directives = collectDirectives(pkg.Fset, pkg.Files)
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range pkg.directives[directiveKey{pos.Filename, line}] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

type directiveKey struct {
	file string
	line int
}

func collectDirectives(fset *token.FileSet, files []*ast.File) map[directiveKey][]string {
	out := make(map[directiveKey][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				k := directiveKey{p.Filename, p.Line}
				out[k] = append(out[k], fields[0])
			}
		}
	}
	return out
}
