// Package lint is a repo-specific static-analysis suite for the mob4x4
// reproduction. It machine-checks the invariants the paper's claims rest
// on but the Go compiler cannot see:
//
//   - wallclock: the simulation is deterministic only while every timing
//     decision flows through the internal/vtime virtual clock; any
//     time.Now/time.Sleep in internal/* silently breaks reproducibility.
//   - modeswitch: the 4x4 grid machinery (core.OutMode, core.InMode) is
//     exhaustively handled — a switch over a Num-sentinel enum that
//     silently ignores a constant is exactly how a new mode rots.
//   - brokencombo: no code path constructs one of the six dark-shaded
//     broken grid cells of Figure 10 as a constant combination.
//   - errcheck: error returns from this module's own functions are never
//     dropped on the floor.
//   - panicpolicy: library code never calls bare panic; invariants go
//     through internal/assert and input errors are returned.
//   - hotpathalloc: the packet datapath (internal/netsim, internal/stack,
//     internal/encap) never calls the allocating Marshal/Clone/Encapsulate
//     codecs; the zero-allocation fast path uses the Append* forms with
//     pooled buffers, and deliberate retention points are annotated.
//
// The determinism-and-shard-safety half of the suite machine-checks the
// invariants the sharded multi-core engine will assume (see DESIGN.md
// "Determinism contract"):
//
//   - mapiter: no map iteration order leaks into schedules, exports or
//     reports — every `for range` over a map in the export/report/
//     scheduling packages either feeds a sort or is annotated as an
//     order-insensitive sink.
//   - globalstate: shard-candidate packages hold no package-level mutable
//     state; deliberate process-wide state (sync.Pool, leak counters)
//     carries an annotation with a written justification.
//   - sharedrand: no global math/rand stream and no sharing of one
//     *rand.Rand between entities — every consumer owns a stream derived
//     from (seed, index) so draws are independent of event interleaving.
//   - bufretain: receive callbacks never retain a pooled frame payload
//     (field store, channel send, deferred closure) past their return —
//     the netsim.GetBuf/PutBuf ownership contract, checked.
//   - shardpin: the far half of a split segment belongs to another
//     shard's event loop — code in internal/{netsim,fleet} may nil-check
//     the RemotePeer reference or hand it to the peer's delivery queue
//     (Scheduler.SendTo), never dereference it or pin it into local
//     state behind the owning shard's back.
//
// The suite is built only on go/parser, go/types and go/importer so the
// module stays dependency-free. cmd/mob4x4vet is the command-line driver;
// the package's own tests run the suite over the repository itself, so
// `go test ./...` fails on any new violation. Unused //mob4x4vet:allow
// directives are themselves reported (staleallow) so suppressions cannot
// outlive the code they excused.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// A Diagnostic is one analyzer finding at a resolved source position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// An Analyzer checks one invariant over one type-checked package.
type Analyzer struct {
	// Name is the short identifier used in diagnostics and in
	// //mob4x4vet:allow directives.
	Name string
	// Doc is a one-line description of the invariant the analyzer
	// encodes.
	Doc string
	// RequireReason makes a bare "//mob4x4vet:allow <name>" directive
	// insufficient: the directive must carry a justification string or
	// it suppresses nothing (and is reported as stale).
	RequireReason bool
	// Run inspects pass.Pkg and reports findings via pass.Report.
	Run func(pass *Pass)
}

// All returns the full suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Wallclock(),
		ModeSwitch(),
		BrokenCombo(),
		ErrCheck(),
		PanicPolicy(),
		HotPathAlloc(),
		MapIter(),
		GlobalState(),
		SharedRand(),
		BufRetain(),
		ShardPin(),
	}
}

// ByName returns the analyzer with the given name.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("lint: unknown analyzer %q", name)
}

// A Pass is one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package

	diags *[]Diagnostic
	used  map[*directive]bool
}

// Report records a finding at pos unless a //mob4x4vet:allow directive for
// this analyzer covers the position (same line, or the line above). A
// directive that suppresses a finding is marked used; directives that
// suppress nothing across a whole Run are themselves reported as stale.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if d := p.Pkg.allowing(p.Analyzer, position); d != nil {
		if p.used != nil {
			p.used[d] = true
		}
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// StaleAllowName is the analyzer name stale-directive diagnostics are
// attributed to. It is a meta-check of Run itself, not a member of All():
// an //mob4x4vet:allow directive that names an analyzer included in the
// run but suppresses none of its findings is dead weight — usually a
// leftover from fixed code — and keeping it would hide the next real
// violation at that position.
const StaleAllowName = "staleallow"

// Run applies each analyzer to each package and returns all findings
// sorted by position, including staleallow findings for allow directives
// that name a ran analyzer yet suppressed nothing.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	used := make(map[*directive]bool)
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, diags: &diags, used: used}
			a.Run(pass)
		}
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	for _, pkg := range pkgs {
		for _, d := range pkg.directiveList() {
			a, ran := byName[d.name]
			if !ran || used[d] {
				continue
			}
			msg := fmt.Sprintf("stale //mob4x4vet:allow %s directive: it suppresses no %s finding; delete it", d.name, d.name)
			if a.RequireReason && d.reason == "" {
				msg = fmt.Sprintf("//mob4x4vet:allow %s requires a justification string (\"//mob4x4vet:allow %s <why this is safe>\"); a bare directive suppresses nothing", d.name, d.name)
			}
			diags = append(diags, Diagnostic{Pos: d.pos, Analyzer: StaleAllowName, Message: msg})
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// directivePrefix introduces a suppression comment:
//
//	//mob4x4vet:allow <analyzer> [reason]
//
// placed on the flagged line or the line immediately above it. The reason
// is free text for the reviewer (mandatory for analyzers with
// RequireReason set); the analyzer name must match exactly.
const directivePrefix = "//mob4x4vet:allow"

// A directive is one parsed //mob4x4vet:allow comment.
type directive struct {
	name   string // the analyzer the directive names
	reason string // free-text justification after the name ("" if absent)
	pos    token.Position
}

// allowing returns the directive suppressing analyzer findings at pos,
// or nil. A directive missing a required justification never matches.
func (pkg *Package) allowing(a *Analyzer, pos token.Position) *directive {
	pkg.ensureDirectives()
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, d := range pkg.directives[directiveKey{pos.Filename, line}] {
			if d.name == a.Name && !(a.RequireReason && d.reason == "") {
				return d
			}
		}
	}
	return nil
}

// directiveList returns every parsed directive in the package, in file
// order (the order collectDirectives encountered them).
func (pkg *Package) directiveList() []*directive {
	pkg.ensureDirectives()
	return pkg.directiveOrder
}

func (pkg *Package) ensureDirectives() {
	if pkg.directives == nil {
		pkg.directives, pkg.directiveOrder = collectDirectives(pkg.Fset, pkg.Files)
	}
}

type directiveKey struct {
	file string
	line int
}

func collectDirectives(fset *token.FileSet, files []*ast.File) (map[directiveKey][]*directive, []*directive) {
	out := make(map[directiveKey][]*directive)
	var order []*directive
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, directivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				p := fset.Position(c.Pos())
				d := &directive{
					name:   fields[0],
					reason: strings.Join(fields[1:], " "),
					pos:    p,
				}
				k := directiveKey{p.Filename, p.Line}
				out[k] = append(out[k], d)
				order = append(order, d)
			}
		}
	}
	return out, order
}
