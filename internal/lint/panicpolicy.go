package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PanicPolicy returns the analyzer banning bare panic calls in library
// code. The policy behind it: a panic that can be reached by a packet —
// a malformed header, a truncated tunnel payload, a hostile registration
// message — is a crash an attacker controls, so parse paths must return
// errors; a panic that only a programming mistake can reach must be
// routed through internal/assert so it is greppable, uniformly worded,
// and visibly distinct from input handling.
//
// Exemptions:
//   - package main (cmd/* and examples/* are allowed to die loudly),
//   - <module>/internal/assert itself (it implements the panics),
//   - functions named Must* (the stdlib's own convention for
//     panic-on-error wrappers of a checked API, e.g. MustParseAddr),
//   - test files (never loaded by the driver).
func PanicPolicy() *Analyzer {
	a := &Analyzer{
		Name: "panicpolicy",
		Doc:  "no bare panic in library code; return errors on input, use internal/assert on invariants",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		if pkg.Types.Name() == "main" || pkg.Path == pkg.ModulePath+"/internal/assert" {
			return
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Body == nil || strings.HasPrefix(d.Name.Name, "Must") {
						continue
					}
					checkPanics(pass, d.Body)
				case *ast.GenDecl:
					// Package-level var initializers can hide panics in
					// closures.
					checkPanics(pass, d)
				}
			}
		}
	}
	return a
}

func checkPanics(pass *Pass, root ast.Node) {
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok || id.Name != "panic" {
			return true
		}
		if _, ok := pass.Pkg.Info.Uses[id].(*types.Builtin); !ok {
			return true // a shadowing local function named panic
		}
		pass.Report(call.Pos(),
			"bare panic in library code: return an error for input-reachable failures or call assert.Unreachable/assert.NoError for invariants")
		return true
	})
}
