package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// hotpathallocMethods are the copying codec entry points. Each has an
// append-style sibling (AppendMarshal, AppendEncap) that writes into a
// caller-provided buffer, which is what the pooled fast path uses; a call
// to the allocating form inside a datapath package is either a leftover
// from before the fast path existed or a deliberate retention point that
// deserves an annotation explaining itself.
var hotpathallocMethods = map[string]string{
	"Marshal":     "AppendMarshal into a pooled buffer (netsim.GetBuf/PutBuf)",
	"Clone":       "borrowing the original within the callback, or a pooled copy",
	"Encapsulate": "AppendEncap into a pooled buffer (netsim.GetBuf/PutBuf)",
}

// hotpathallocPkgs are the per-packet datapath packages: every packet in
// every experiment crosses them, so a fresh []byte per call here is a
// fresh allocation per simulated packet. internal/mobileip is on the
// list because registration processing runs once per handoff and a
// fleet-scale storm performs tens of thousands of handoffs per trial;
// internal/fleet because its workload ticker fires once per node per
// simulated second.
var hotpathallocPkgs = map[string]bool{
	"internal/netsim":   true,
	"internal/stack":    true,
	"internal/encap":    true,
	"internal/mobileip": true,
	"internal/fleet":    true,
	"internal/pcap":     true,
	"internal/routeopt": true,
}

// HotPathAlloc returns the analyzer keeping allocating codec calls out of
// the packet datapath. Sites that must allocate (e.g. queueing a packet
// while ARP resolves) carry a //mob4x4vet:allow hotpathalloc directive
// stating why.
func HotPathAlloc() *Analyzer {
	a := &Analyzer{
		Name: "hotpathalloc",
		Doc:  "no allocating Marshal/Clone/Encapsulate calls in the packet datapath (internal/netsim, internal/stack, internal/encap, internal/mobileip, internal/fleet, internal/pcap, internal/routeopt); use the Append* forms with pooled buffers",
	}
	a.Run = func(pass *Pass) {
		pkg := pass.Pkg
		rel := strings.TrimPrefix(pkg.Path, pkg.ModulePath+"/")
		if !hotpathallocPkgs[rel] &&
			!strings.HasPrefix(pkg.Path, pkg.ModulePath+"/internal/lintfixture/hotpathalloc/") {
			return
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fix, hot := hotpathallocMethods[sel.Sel.Name]
				if !hot {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Type().(*types.Signature).Recv() == nil {
					return true // not a method call (or a package-level func)
				}
				owner := fn.Pkg()
				if owner == nil || (owner.Path() != pkg.ModulePath &&
					!strings.HasPrefix(owner.Path(), pkg.ModulePath+"/")) {
					return true // methods from outside the module are not ours to police
				}
				pass.Report(sel.Sel.Pos(),
					"%s allocates a fresh buffer per packet on the datapath; prefer %s, or annotate the retention point",
					sel.Sel.Name, fix)
				return true
			})
		}
	}
	return a
}
