package icmp

import (
	"bytes"
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

func TestEchoRoundTrip(t *testing.T) {
	m := EchoRequest(0x1234, 7, []byte("ping payload"))
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeEchoRequest || got.ID != 0x1234 || got.Seq != 7 {
		t.Errorf("fields: %+v", got)
	}
	if !bytes.Equal(got.Body, m.Body) {
		t.Error("body mismatch")
	}
	reply := EchoReplyTo(got)
	if reply.Type != TypeEchoReply || reply.ID != got.ID || reply.Seq != got.Seq {
		t.Errorf("reply: %+v", reply)
	}
	if !bytes.Equal(reply.Body, got.Body) {
		t.Error("reply body mismatch")
	}
}

func TestEchoRoundTripProperty(t *testing.T) {
	f := func(id, seq uint16, body []byte) bool {
		if len(body) > 60000 {
			body = body[:60000]
		}
		m := EchoRequest(id, seq, body)
		got, err := Unmarshal(m.Marshal())
		return err == nil && got.ID == id && got.Seq == seq && bytes.Equal(got.Body, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumRejection(t *testing.T) {
	m := EchoRequest(1, 2, []byte("x"))
	b := m.Marshal()
	for i := range b {
		c := append([]byte(nil), b...)
		c[i] ^= 0x40
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
}

func TestTruncated(t *testing.T) {
	if _, err := Unmarshal([]byte{8, 0, 0}); err == nil {
		t.Error("truncated header accepted")
	}
	// A mobility binding shorter than its fixed body.
	m := BindingNotice(ipv4.MustParseAddr("36.1.1.3"), ipv4.MustParseAddr("128.9.1.4"), 60)
	b := m.Marshal()
	short := b[:12]
	if _, err := Unmarshal(short); err == nil {
		t.Error("truncated binding accepted")
	}
}

func TestBindingNoticeRoundTrip(t *testing.T) {
	home := ipv4.MustParseAddr("36.1.1.3")
	coa := ipv4.MustParseAddr("128.9.1.4")
	m := BindingNotice(home, coa, 120)
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeMobilityBinding || got.Home != home || got.CareOf != coa || got.Lifetime != 120 {
		t.Errorf("binding: %+v", got)
	}
}

func TestFragNeededQuotesOriginal(t *testing.T) {
	orig := ipv4.Packet{
		Header: ipv4.Header{
			Protocol: ipv4.ProtoTCP, TTL: 64,
			Src: ipv4.MustParseAddr("10.0.0.1"), Dst: ipv4.MustParseAddr("10.0.0.2"),
		},
		Payload: make([]byte, 500),
	}
	m, err := FragNeeded(orig, 576)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeDestUnreachable || got.Code != CodeFragNeeded {
		t.Errorf("type/code: %v/%d", got.Type, got.Code)
	}
	if got.MTU != 576 {
		t.Errorf("mtu = %d", got.MTU)
	}
	// The quote is the original header + 8 bytes; check the embedded
	// source address bytes at their fixed offset.
	if len(got.Body) != ipv4.HeaderLen+8 {
		t.Errorf("quote length = %d", len(got.Body))
	}
	var src ipv4.Addr
	copy(src[:], got.Body[12:16])
	if src != orig.Src {
		t.Errorf("quoted source = %s", src)
	}
}

func TestTimeExceededQuote(t *testing.T) {
	orig := ipv4.Packet{
		Header: ipv4.Header{Protocol: ipv4.ProtoUDP, TTL: 1,
			Src: ipv4.MustParseAddr("1.2.3.4"), Dst: ipv4.MustParseAddr("5.6.7.8")},
		Payload: []byte("abcdefgh-tail"),
	}
	m, err := TimeExceeded(orig)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != TypeTimeExceeded {
		t.Errorf("type = %v", got.Type)
	}
	if len(got.Body) != ipv4.HeaderLen+8 {
		t.Errorf("quote = %d bytes", len(got.Body))
	}
	if !bytes.Equal(got.Body[ipv4.HeaderLen:], []byte("abcdefgh")) {
		t.Errorf("quoted payload = %q", got.Body[ipv4.HeaderLen:])
	}
}

func TestTypeStrings(t *testing.T) {
	for _, typ := range []Type{TypeEchoReply, TypeDestUnreachable, TypeEchoRequest,
		TypeTimeExceeded, TypeMobilityBinding} {
		if typ.String() == "" {
			t.Errorf("type %d has no string", typ)
		}
	}
	if Type(200).String() == "" {
		t.Error("unknown type should render")
	}
}

func BenchmarkEchoMarshal(b *testing.B) {
	m := EchoRequest(1, 1, make([]byte, 56))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m.Marshal()
	}
}
