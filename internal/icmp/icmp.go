// Package icmp implements the ICMP messages the reproduction needs: echo
// request/reply (the experiments' ping workload), destination unreachable
// (including "fragmentation needed"), time exceeded, and the paper's
// care-of-address notification — the message a home agent "may also send
// ... back to the packet's source, informing it of the mobile host's
// current temporary care-of address" (Section 3.2), which is how a smart
// correspondent host learns it can switch from In-IE to In-DE.
package icmp

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// Type is the ICMP message type.
type Type uint8

// ICMP types used in the simulation. TypeMobilityBinding is taken from the
// experimental range; the 1996 proposals predate a fixed assignment.
const (
	TypeEchoReply       Type = 0
	TypeDestUnreachable Type = 3
	TypeEchoRequest     Type = 8
	TypeTimeExceeded    Type = 11
	TypeMobilityBinding Type = 37 // experimental: care-of address notification
)

// Destination-unreachable codes.
const (
	CodeNetUnreachable  uint8 = 0
	CodeHostUnreachable uint8 = 1
	CodeFragNeeded      uint8 = 4
)

func (t Type) String() string {
	switch t {
	case TypeEchoReply:
		return "echo-reply"
	case TypeDestUnreachable:
		return "dest-unreachable"
	case TypeEchoRequest:
		return "echo-request"
	case TypeTimeExceeded:
		return "time-exceeded"
	case TypeMobilityBinding:
		return "mobility-binding"
	default:
		return fmt.Sprintf("type(%d)", uint8(t))
	}
}

// Message is a parsed ICMP message. The meaning of the fields depends on
// the type:
//
//   - Echo: ID/Seq used, Body is echo payload.
//   - DestUnreachable/TimeExceeded: Body is the offending IP header + 8
//     bytes; for CodeFragNeeded, MTU carries the next-hop MTU.
//   - MobilityBinding: Home and CareOf carry the binding; Lifetime is in
//     seconds.
type Message struct {
	Type Type
	Code uint8
	ID   uint16
	Seq  uint16
	MTU  uint16 // CodeFragNeeded only
	Body []byte

	// Mobility binding fields (TypeMobilityBinding only).
	Home     ipv4.Addr
	CareOf   ipv4.Addr
	Lifetime uint16 // seconds
}

// Marshal serializes the message with its checksum.
func (m *Message) Marshal() []byte {
	var b []byte
	switch m.Type {
	case TypeMobilityBinding:
		b = make([]byte, 8+10)
		copy(b[8:12], m.Home[:])
		copy(b[12:16], m.CareOf[:])
		binary.BigEndian.PutUint16(b[16:], m.Lifetime)
	case TypeDestUnreachable, TypeTimeExceeded:
		b = make([]byte, 8+len(m.Body))
		if m.Code == CodeFragNeeded {
			binary.BigEndian.PutUint16(b[6:], m.MTU)
		}
		copy(b[8:], m.Body)
	default: // echo & friends
		b = make([]byte, 8+len(m.Body))
		binary.BigEndian.PutUint16(b[4:], m.ID)
		binary.BigEndian.PutUint16(b[6:], m.Seq)
		copy(b[8:], m.Body)
	}
	b[0] = uint8(m.Type)
	b[1] = m.Code
	binary.BigEndian.PutUint16(b[2:], ipv4.Checksum(b))
	return b
}

// Unmarshal parses and checksums an ICMP message.
func Unmarshal(b []byte) (Message, error) {
	var m Message
	if len(b) < 8 {
		return m, fmt.Errorf("icmp: truncated message (%d bytes)", len(b))
	}
	if ipv4.Checksum(b) != 0 {
		return m, fmt.Errorf("icmp: checksum mismatch")
	}
	m.Type = Type(b[0])
	m.Code = b[1]
	switch m.Type {
	case TypeMobilityBinding:
		if len(b) < 18 {
			return m, fmt.Errorf("icmp: truncated mobility binding (%d bytes)", len(b))
		}
		copy(m.Home[:], b[8:12])
		copy(m.CareOf[:], b[12:16])
		m.Lifetime = binary.BigEndian.Uint16(b[16:])
	case TypeDestUnreachable, TypeTimeExceeded:
		if m.Code == CodeFragNeeded {
			m.MTU = binary.BigEndian.Uint16(b[6:])
		}
		m.Body = b[8:]
	default:
		m.ID = binary.BigEndian.Uint16(b[4:])
		m.Seq = binary.BigEndian.Uint16(b[6:])
		m.Body = b[8:]
	}
	return m, nil
}

// EchoRequest builds an echo request message.
func EchoRequest(id, seq uint16, body []byte) Message {
	return Message{Type: TypeEchoRequest, ID: id, Seq: seq, Body: body}
}

// EchoReplyTo builds the reply matching a request.
func EchoReplyTo(req Message) Message {
	return Message{Type: TypeEchoReply, ID: req.ID, Seq: req.Seq, Body: req.Body}
}

// BindingNotice builds the home agent's care-of notification for a smart
// correspondent host.
func BindingNotice(home, careOf ipv4.Addr, lifetimeSec uint16) Message {
	return Message{Type: TypeMobilityBinding, Home: home, CareOf: careOf, Lifetime: lifetimeSec}
}

// FragNeeded builds the "fragmentation needed and DF set" error for the
// offending packet, quoting its header and first 8 payload bytes.
func FragNeeded(orig ipv4.Packet, mtu int) (Message, error) {
	quoted, err := quote(orig)
	if err != nil {
		return Message{}, err
	}
	return Message{
		Type: TypeDestUnreachable,
		Code: CodeFragNeeded,
		MTU:  uint16(mtu),
		Body: quoted,
	}, nil
}

// TimeExceeded builds the TTL-expired error quoting the offending packet.
func TimeExceeded(orig ipv4.Packet) (Message, error) {
	quoted, err := quote(orig)
	if err != nil {
		return Message{}, err
	}
	return Message{Type: TypeTimeExceeded, Body: quoted}, nil
}

func quote(orig ipv4.Packet) ([]byte, error) {
	b, err := orig.Marshal()
	if err != nil {
		return nil, err
	}
	max := orig.Header.Len() + 8
	if len(b) > max {
		b = b[:max]
	}
	return b, nil
}
