package ipv4

import (
	"bytes"
	"testing"

	"mob4x4/internal/race"
)

// TestAppendMarshalZeroAllocs pins the append-style codec to zero
// allocations when the destination buffer has capacity — the property the
// netsim frame pool depends on for the steady-state fast path.
func TestAppendMarshalZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	pkt := Packet{
		Header: Header{
			TOS:      0x10,
			ID:       0x1234,
			TTL:      DefaultTTL,
			Protocol: ProtoUDP,
			Src:      AddrFrom(36, 22, 0, 5),
			Dst:      AddrFrom(128, 9, 1, 4),
			Options:  []byte{1, 1, 1, 1},
		},
		Payload: bytes.Repeat([]byte{0xa5}, 1400),
	}
	buf := make([]byte, 0, 2048)
	allocs := testing.AllocsPerRun(100, func() {
		b, err := pkt.AppendMarshal(buf)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != pkt.TotalLen() {
			t.Fatalf("marshalled %d bytes, want %d", len(b), pkt.TotalLen())
		}
	})
	if allocs != 0 {
		t.Fatalf("AppendMarshal into a sized buffer allocated %.1f times per run, want 0", allocs)
	}
}
