package ipv4

import (
	"fmt"
)

// ErrFragNeeded is returned by Fragment when the packet has DF set but does
// not fit the MTU; routers convert this into an ICMP "fragmentation needed"
// error in a full stack.
var ErrFragNeeded = fmt.Errorf("ipv4: fragmentation needed but DF set")

// Fragment splits p into fragments that each fit within mtu bytes
// (including the IPv4 header). Section 3.3 of the paper observes that
// encapsulation overhead pushing a packet past the MTU "doubles the packet
// count" — this is the code path that doubling comes from.
//
// If the packet already fits, the returned slice contains p itself.
// Options are carried only in the first fragment (the simulation does not
// model copied options).
func Fragment(p Packet, mtu int) ([]Packet, error) {
	if mtu < HeaderLen+8 {
		return nil, fmt.Errorf("ipv4: mtu %d too small", mtu)
	}
	if p.TotalLen() <= mtu {
		return []Packet{p}, nil
	}
	if p.DontFrag {
		return nil, ErrFragNeeded
	}
	if p.MoreFrags || p.FragOffset != 0 {
		// Re-fragmenting a fragment is legal in IPv4; keep the original
		// offsets as the base.
	}
	var frags []Packet
	base := int(p.FragOffset) * 8
	payload := p.Payload
	hlen := HeaderLen // subsequent fragments never carry our options
	firstHlen := p.Header.Len()

	// Payload bytes available in the first fragment, rounded down to a
	// multiple of 8 (fragment offsets are in 8-byte units).
	chunk0 := (mtu - firstHlen) &^ 7
	chunkN := (mtu - hlen) &^ 7
	if chunk0 <= 0 || chunkN <= 0 {
		return nil, fmt.Errorf("ipv4: mtu %d leaves no room for payload", mtu)
	}

	off := 0
	for off < len(payload) {
		f := Packet{Header: p.Header}
		chunk := chunkN
		if off == 0 {
			chunk = chunk0
		} else {
			f.Options = nil
		}
		end := off + chunk
		last := false
		if end >= len(payload) {
			end = len(payload)
			last = true
		}
		f.Payload = payload[off:end]
		f.FragOffset = uint16((base + off) / 8)
		f.MoreFrags = !last || p.MoreFrags
		frags = append(frags, f)
		off = end
	}
	return frags, nil
}

// fragKey identifies a reassembly context per RFC 791: the tuple
// (src, dst, protocol, identification).
type fragKey struct {
	src, dst Addr
	proto    uint8
	id       uint16
}

type fragSpan struct {
	first, last int // byte range, inclusive start, exclusive end
}

// fragContext assembles fragments in place: each fragment's bytes are
// copied at their final offset into buf the moment they arrive (they may
// alias a pooled frame buffer the link layer recycles when delivery
// returns), and covered tracks the merged byte ranges received so far.
// Completion is exactly "covered is the single span [0, total)", and the
// assembled payload is buf itself — no per-fragment retention copies and
// no second assembly pass.
type fragContext struct {
	buf      []byte     // payload being assembled, len == highest byte seen
	covered  []fragSpan // sorted, disjoint, non-adjacent received ranges
	total    int        // total payload length, -1 until final fragment seen
	header   Header     // header of the zero-offset fragment
	sawFirst bool
}

// Reassembler reconstructs original packets from fragments. It is driven by
// explicit Expire calls (the owning stack wires a vtime timer) rather than
// wall-clock time, keeping the package free of scheduler dependencies.
type Reassembler struct {
	contexts map[fragKey]*fragContext
	// Timeout bookkeeping is the owner's job; Reassembler only counts.
	Drops uint64 // contexts discarded by Expire or error
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{contexts: make(map[fragKey]*fragContext)}
}

// Pending reports the number of in-progress reassembly contexts.
func (r *Reassembler) Pending() int { return len(r.contexts) }

// Add offers a fragment (or whole packet) to the reassembler. If the packet
// is unfragmented it is returned immediately. When the final piece of a
// fragmented packet arrives, the fully reassembled packet is returned with
// done=true; otherwise done is false.
func (r *Reassembler) Add(p Packet) (out Packet, done bool, err error) {
	if !p.MoreFrags && p.FragOffset == 0 {
		return p, true, nil
	}
	key := fragKey{p.Src, p.Dst, p.Protocol, p.ID}
	ctx := r.contexts[key]
	if ctx == nil {
		ctx = &fragContext{total: -1}
		r.contexts[key] = ctx
	}
	off := int(p.FragOffset) * 8
	end := off + len(p.Payload)
	if !p.MoreFrags {
		if ctx.total >= 0 && ctx.total != end {
			delete(r.contexts, key)
			r.Drops++
			return Packet{}, false, fmt.Errorf("ipv4: conflicting reassembly lengths (%d vs %d)", ctx.total, end)
		}
		ctx.total = end
	}
	if off == 0 && !ctx.sawFirst {
		ctx.header = p.Header
		ctx.sawFirst = true
	}
	if ctx.add(off, p.Payload) == 0 {
		return Packet{}, false, nil // duplicate (or fully overlapped): ignore
	}
	if ctx.total < 0 || !ctx.sawFirst ||
		len(ctx.covered) != 1 || ctx.covered[0] != (fragSpan{0, ctx.total}) {
		return Packet{}, false, nil
	}
	delete(r.contexts, key)
	out = Packet{Header: ctx.header, Payload: ctx.buf[:ctx.total]}
	out.MoreFrags = false
	out.FragOffset = 0
	return out, true, nil
}

// add copies the not-yet-covered bytes of a fragment spanning [off, end)
// into the assembly buffer (earlier arrivals win on overlap) and merges
// the span into covered. It returns the number of newly covered bytes.
func (ctx *fragContext) add(off int, payload []byte) int {
	end := off + len(payload)
	if end > len(ctx.buf) {
		if end > cap(ctx.buf) {
			grown := make([]byte, end, max(end, 2*cap(ctx.buf)))
			copy(grown, ctx.buf)
			ctx.buf = grown
		} else {
			ctx.buf = ctx.buf[:end]
		}
	}
	newBytes := 0
	cur := off
	for _, c := range ctx.covered {
		if c.last <= cur {
			continue
		}
		if c.first >= end {
			break
		}
		if c.first > cur {
			seg := min(c.first, end)
			newBytes += copy(ctx.buf[cur:seg], payload[cur-off:seg-off])
		}
		cur = max(cur, c.last)
		if cur >= end {
			break
		}
	}
	if cur < end {
		newBytes += copy(ctx.buf[cur:end], payload[cur-off:end-off])
	}
	if newBytes == 0 {
		return 0
	}
	// Merge [off, end) into the sorted disjoint span list: spans [i, j)
	// overlap or touch it and collapse into one.
	span := fragSpan{off, end}
	i := 0
	for i < len(ctx.covered) && ctx.covered[i].last < span.first {
		i++
	}
	j := i
	for j < len(ctx.covered) && ctx.covered[j].first <= span.last {
		span.first = min(span.first, ctx.covered[j].first)
		span.last = max(span.last, ctx.covered[j].last)
		j++
	}
	if i == j {
		ctx.covered = append(ctx.covered, fragSpan{})
		copy(ctx.covered[i+1:], ctx.covered[i:])
		ctx.covered[i] = span
	} else {
		ctx.covered[i] = span
		ctx.covered = append(ctx.covered[:i+1], ctx.covered[j:]...)
	}
	return newBytes
}

// Expire discards every in-progress context; the owning stack calls it on a
// reassembly timeout tick. It returns the number of contexts dropped.
func (r *Reassembler) Expire() int {
	n := len(r.contexts)
	if n > 0 {
		r.contexts = make(map[fragKey]*fragContext)
		r.Drops += uint64(n)
	}
	return n
}
