package ipv4

import (
	"bytes"
	"testing"
)

// FuzzHeaderParse feeds arbitrary bytes to Unmarshal. The parser sits on
// the repo's hostile-input boundary: every simulated wire byte — tunnel
// payloads included — goes through it, so it must reject garbage with an
// error, never panic, and anything it accepts must survive a
// marshal/unmarshal round trip unchanged.
func FuzzHeaderParse(f *testing.F) {
	valid := Packet{
		Header: Header{
			TOS:      0x10,
			ID:       0x1234,
			TTL:      DefaultTTL,
			Protocol: ProtoUDP,
			Src:      AddrFrom(36, 22, 0, 5),
			Dst:      AddrFrom(128, 9, 1, 4),
		},
		Payload: []byte("seed payload"),
	}
	b, err := valid.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(b)
	f.Add(b[:HeaderLen])
	f.Add(b[:10])
	f.Add([]byte{})
	f.Add([]byte{0x45})
	withOpts := valid
	withOpts.Options = []byte{1, 1, 1, 1} // NOP padding
	ob, err := withOpts.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ob)
	frag := valid
	frag.MoreFrags = true
	frag.FragOffset = 185
	fb, err := frag.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(fb)
	// A UDP/434 registration request carrying an authentication
	// extension (type 32, length 20, SPI, 16-byte MAC) — the datagram
	// shape the adversarial fleet forges, replays, and tampers with.
	reg := valid
	reg.Payload = append(
		[]byte{0x13, 0x88, 0x01, 0xb2, 0x00, 0x3a, 0x00, 0x00}, // UDP header, dst port 434
		1, 0, 0x01, 0x2c, // request, lifetime 300
		36, 1, 1, 3, 36, 1, 1, 2, 128, 9, 1, 4, // home, home agent, care-of
		0, 0, 0xde, 0xad, 0xbe, 0xef, 0xca, 0xfe, // identification
		32, 20, 0x4d, 0x4e, 0x00, 0x01, // auth ext header + SPI
		0xa5, 0xa5, 0xa5, 0xa5, 0xa5, 0xa5, 0xa5, 0xa5,
		0xa5, 0xa5, 0xa5, 0xa5, 0xa5, 0xa5, 0xa5, 0xa5, // MAC
	)
	rb, err := reg.Marshal()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rb)

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Unmarshal(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		out, err := p.Marshal()
		if err != nil {
			t.Fatalf("accepted packet failed to re-marshal: %v (%s)", err, &p)
		}
		// AppendMarshal must produce the same bytes even into dirty
		// memory (it may not rely on make()'s zeroing).
		dirty := bytes.Repeat([]byte{0xff}, len(out))
		appended, err := p.AppendMarshal(dirty[:0])
		if err != nil {
			t.Fatalf("AppendMarshal failed where Marshal succeeded: %v (%s)", err, &p)
		}
		if !bytes.Equal(appended, out) {
			t.Fatalf("AppendMarshal diverges from Marshal:\n append %x\nmarshal %x", appended, out)
		}
		q, err := Unmarshal(out)
		if err != nil {
			t.Fatalf("re-marshalled packet failed to parse: %v (%s)", err, &p)
		}
		if q.Header.TOS != p.Header.TOS || q.ID != p.ID ||
			q.DontFrag != p.DontFrag || q.MoreFrags != p.MoreFrags ||
			q.FragOffset != p.FragOffset || q.TTL != p.TTL ||
			q.Protocol != p.Protocol || q.Src != p.Src || q.Dst != p.Dst {
			t.Fatalf("header changed across round trip:\n first %s\nsecond %s", &p, &q)
		}
		if !bytes.Equal(q.Options, p.Options) {
			t.Fatalf("options changed across round trip: %x -> %x", p.Options, q.Options)
		}
		if !bytes.Equal(q.Payload, p.Payload) {
			t.Fatalf("payload changed across round trip: %d bytes -> %d bytes", len(p.Payload), len(q.Payload))
		}
	})
}
