// Package ipv4 implements the IPv4 wire format used throughout the
// simulated internetwork: addresses and prefixes, header
// marshalling/unmarshalling with the Internet checksum, and
// fragmentation/reassembly. The codec style follows the conventions of
// packet libraries such as gopacket: explicit typed layers, strict
// validation on decode, and allocation-conscious serialization.
package ipv4

import (
	"fmt"
	"strconv"
	"strings"
)

// Addr is an IPv4 address in network byte order. Addr is a comparable value
// type so it can key maps (delivery-method caches, binding tables, ARP
// caches) directly.
type Addr [4]byte

// Zero is the unspecified address 0.0.0.0.
var Zero Addr

// Broadcast is the limited broadcast address 255.255.255.255.
var Broadcast = Addr{255, 255, 255, 255}

// AddrFrom returns the address a.b.c.d.
func AddrFrom(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// ParseAddr parses dotted-quad notation ("36.22.0.5").
func ParseAddr(s string) (Addr, error) {
	var a Addr
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return Zero, fmt.Errorf("ipv4: invalid address %q", s)
	}
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 || v > 255 || (len(p) > 1 && p[0] == '0') {
			return Zero, fmt.Errorf("ipv4: invalid address %q", s)
		}
		a[i] = byte(v)
	}
	return a, nil
}

// MustParseAddr is ParseAddr that panics on error, for tests and literals.
func MustParseAddr(s string) Addr {
	a, err := ParseAddr(s)
	if err != nil {
		panic(err)
	}
	return a
}

// Uint32 returns the address as a big-endian 32-bit integer.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// AddrFromUint32 converts a big-endian 32-bit integer to an address.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// IsZero reports whether a is the unspecified address.
func (a Addr) IsZero() bool { return a == Zero }

// IsBroadcast reports whether a is the limited broadcast address.
func (a Addr) IsBroadcast() bool { return a == Broadcast }

// IsMulticast reports whether a is in 224.0.0.0/4 (class D).
func (a Addr) IsMulticast() bool { return a[0]&0xf0 == 0xe0 }

// IsLoopback reports whether a is in 127.0.0.0/8.
func (a Addr) IsLoopback() bool { return a[0] == 127 }

// Less orders addresses numerically; useful for deterministic iteration.
func (a Addr) Less(b Addr) bool { return a.Uint32() < b.Uint32() }

// Next returns the numerically following address. It wraps at the top of
// the address space.
func (a Addr) Next() Addr { return AddrFromUint32(a.Uint32() + 1) }

func (a Addr) String() string {
	var buf [15]byte
	return string(a.AppendText(buf[:0]))
}

// AppendText appends the dotted-quad form of a to b and returns the
// extended slice. Trace-detail builders use it to format addresses without
// the fmt machinery (no interface boxing, one allocation for the final
// string instead of five).
func (a Addr) AppendText(b []byte) []byte {
	for i, v := range a {
		if i > 0 {
			b = append(b, '.')
		}
		b = strconv.AppendUint(b, uint64(v), 10)
	}
	return b
}

// Prefix is a CIDR-style routing prefix.
type Prefix struct {
	Addr Addr
	Bits int // 0..32
}

// PrefixFrom returns the prefix addr/bits with the address masked down to
// the prefix (host bits cleared).
func PrefixFrom(addr Addr, bits int) Prefix {
	if bits < 0 {
		bits = 0
	}
	if bits > 32 {
		bits = 32
	}
	return Prefix{Addr: AddrFromUint32(addr.Uint32() & maskFor(bits)), Bits: bits}
}

// ParsePrefix parses "a.b.c.d/n".
func ParsePrefix(s string) (Prefix, error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix %q (missing /)", s)
	}
	addr, err := ParseAddr(s[:slash])
	if err != nil {
		return Prefix{}, err
	}
	bits, err := strconv.Atoi(s[slash+1:])
	if err != nil || bits < 0 || bits > 32 {
		return Prefix{}, fmt.Errorf("ipv4: invalid prefix length in %q", s)
	}
	return PrefixFrom(addr, bits), nil
}

// MustParsePrefix is ParsePrefix that panics on error.
func MustParsePrefix(s string) Prefix {
	p, err := ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}

func maskFor(bits int) uint32 {
	if bits <= 0 {
		return 0
	}
	return ^uint32(0) << (32 - uint(bits))
}

// Contains reports whether addr falls inside the prefix.
func (p Prefix) Contains(addr Addr) bool {
	return addr.Uint32()&maskFor(p.Bits) == p.Addr.Uint32()&maskFor(p.Bits)
}

// Overlaps reports whether the two prefixes share any address.
func (p Prefix) Overlaps(q Prefix) bool {
	bits := p.Bits
	if q.Bits < bits {
		bits = q.Bits
	}
	m := maskFor(bits)
	return p.Addr.Uint32()&m == q.Addr.Uint32()&m
}

// BroadcastAddr returns the directed broadcast address of the prefix.
func (p Prefix) BroadcastAddr() Addr {
	return AddrFromUint32(p.Addr.Uint32() | ^maskFor(p.Bits))
}

// Host returns the n'th host address within the prefix (1-based; Host(1) is
// the first usable address after the network address).
func (p Prefix) Host(n int) Addr {
	return AddrFromUint32(p.Addr.Uint32() + uint32(n))
}

func (p Prefix) String() string {
	var buf [18]byte
	b := p.Addr.AppendText(buf[:0])
	b = append(b, '/')
	b = strconv.AppendInt(b, int64(p.Bits), 10)
	return string(b)
}
