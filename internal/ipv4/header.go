package ipv4

import (
	"encoding/binary"
	"fmt"
)

// Protocol numbers carried in the IPv4 Protocol field. The values are the
// IANA assignments; Mobile IP tunneling uses ProtoIPIP (4, "IP in IP"),
// ProtoMinEnc (55, Minimal Encapsulation per [Per95]) and ProtoGRE (47,
// Generic Routing Encapsulation per RFC 1702).
const (
	ProtoICMP   uint8 = 1
	ProtoIPIP   uint8 = 4
	ProtoTCP    uint8 = 6
	ProtoUDP    uint8 = 17
	ProtoGRE    uint8 = 47
	ProtoMinEnc uint8 = 55
	// ProtoCompact is the route-optimization compact encapsulation
	// (internal/encap.Compact); it uses an RFC 3692 experimental number.
	ProtoCompact uint8 = 253
)

// HeaderLen is the length of an IPv4 header without options.
const HeaderLen = 20

// MaxTotalLen is the maximum value of the Total Length field.
const MaxTotalLen = 65535

// Flag bits in the Flags/FragmentOffset word.
const (
	flagDF = 0x4000 // don't fragment
	flagMF = 0x2000 // more fragments
)

// DefaultTTL is the initial TTL used by hosts in the simulation.
const DefaultTTL = 64

// Header is a parsed IPv4 header. Option bytes are carried verbatim
// (padded to a 4-byte multiple on marshal).
type Header struct {
	TOS        uint8
	ID         uint16
	DontFrag   bool
	MoreFrags  bool
	FragOffset uint16 // in 8-byte units
	TTL        uint8
	Protocol   uint8
	Src        Addr
	Dst        Addr
	Options    []byte
}

// Len returns the marshalled header length in bytes (IHL*4).
func (h *Header) Len() int {
	opt := (len(h.Options) + 3) &^ 3
	return HeaderLen + opt
}

// Packet is an IPv4 packet: a header plus payload. Packet values are passed
// through the simulated internetwork; routers mutate only the TTL and
// checksum. Payload contents are shared, not copied, between hops — the
// simulation never mutates payloads in flight.
type Packet struct {
	Header
	Payload []byte
	// TraceID is not wire content: it is simulation metadata identifying
	// the logical packet across hops and tunnels for the tracer. Marshal
	// does not serialize it and Unmarshal leaves it zero; the stack
	// carries it out-of-band on frames and restores it on receive.
	TraceID uint64
}

// TotalLen returns the value the Total Length field will carry.
func (p *Packet) TotalLen() int { return p.Header.Len() + len(p.Payload) }

// Clone returns a deep copy of the packet. Hosts that need to retain or
// modify a received packet (e.g. a decapsulating agent) clone first.
func (p *Packet) Clone() Packet {
	q := *p
	if p.Options != nil {
		q.Options = append([]byte(nil), p.Options...)
	}
	if p.Payload != nil {
		q.Payload = append([]byte(nil), p.Payload...)
	}
	return q
}

func (p *Packet) String() string {
	return fmt.Sprintf("IPv4{%s > %s proto=%d ttl=%d len=%d id=%d}",
		p.Src, p.Dst, p.Protocol, p.TTL, p.TotalLen(), p.ID)
}

// Checksum computes the Internet checksum (RFC 1071) of b.
func Checksum(b []byte) uint16 {
	var sum uint32
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	return ^uint16(sum)
}

// Marshal serializes the packet into wire format, computing the header
// checksum. It returns an error if the packet would exceed the IPv4 total
// length limit or the options are too long.
//
// Marshal allocates a fresh buffer per call. Hot paths (per-hop framing,
// tunnel encapsulation) must use AppendMarshal into a pooled buffer
// instead; the hotpathalloc analyzer enforces this in internal/netsim,
// internal/stack and internal/encap.
func (p *Packet) Marshal() ([]byte, error) {
	b, err := p.AppendMarshal(nil)
	if err != nil {
		return nil, err
	}
	return b, nil
}

// AppendMarshal appends the packet's wire format to dst (growing it if
// needed) and returns the extended slice. The output bytes are identical to
// Marshal's; the only difference is buffer ownership — the caller brings
// the storage, so a pooled or stack-resident dst makes serialization
// allocation-free.
func (p *Packet) AppendMarshal(dst []byte) ([]byte, error) {
	optLen := (len(p.Options) + 3) &^ 3
	if optLen > 40 {
		return dst, fmt.Errorf("ipv4: options too long (%d bytes)", len(p.Options))
	}
	hlen := HeaderLen + optLen
	total := hlen + len(p.Payload)
	if total > MaxTotalLen {
		return dst, fmt.Errorf("ipv4: packet too large (%d bytes)", total)
	}
	start := len(dst)
	if cap(dst)-start < total {
		grown := make([]byte, start, start+total)
		copy(grown, dst)
		dst = grown
	}
	b := dst[start : start+total]
	b[0] = 4<<4 | uint8(hlen/4)
	b[1] = p.TOS
	binary.BigEndian.PutUint16(b[2:], uint16(total))
	binary.BigEndian.PutUint16(b[4:], p.ID)
	ff := p.FragOffset & 0x1fff
	if p.DontFrag {
		ff |= flagDF
	}
	if p.MoreFrags {
		ff |= flagMF
	}
	binary.BigEndian.PutUint16(b[6:], ff)
	b[8] = p.TTL
	b[9] = p.Protocol
	b[10], b[11] = 0, 0
	copy(b[12:16], p.Src[:])
	copy(b[16:20], p.Dst[:])
	if optLen > 0 {
		n := copy(b[HeaderLen:hlen], p.Options)
		for i := HeaderLen + n; i < hlen; i++ {
			b[i] = 0 // pad options to a 4-byte multiple
		}
	}
	binary.BigEndian.PutUint16(b[10:], Checksum(b[:hlen]))
	copy(b[hlen:], p.Payload)
	return dst[:start+total], nil
}

// Unmarshal parses wire format into a Packet, validating the version,
// header length, total length and checksum. The payload slice aliases b.
func Unmarshal(b []byte) (Packet, error) {
	var p Packet
	if len(b) < HeaderLen {
		return p, fmt.Errorf("ipv4: truncated header (%d bytes)", len(b))
	}
	if b[0]>>4 != 4 {
		return p, fmt.Errorf("ipv4: bad version %d", b[0]>>4)
	}
	hlen := int(b[0]&0x0f) * 4
	if hlen < HeaderLen || hlen > len(b) {
		return p, fmt.Errorf("ipv4: bad header length %d", hlen)
	}
	total := int(binary.BigEndian.Uint16(b[2:]))
	if total < hlen || total > len(b) {
		return p, fmt.Errorf("ipv4: bad total length %d (have %d)", total, len(b))
	}
	if Checksum(b[:hlen]) != 0 {
		return p, fmt.Errorf("ipv4: header checksum mismatch")
	}
	p.TOS = b[1]
	p.ID = binary.BigEndian.Uint16(b[4:])
	ff := binary.BigEndian.Uint16(b[6:])
	p.DontFrag = ff&flagDF != 0
	p.MoreFrags = ff&flagMF != 0
	p.FragOffset = ff & 0x1fff
	p.TTL = b[8]
	p.Protocol = b[9]
	copy(p.Src[:], b[12:16])
	copy(p.Dst[:], b[16:20])
	if hlen > HeaderLen {
		p.Options = b[HeaderLen:hlen]
	}
	p.Payload = b[hlen:total]
	return p, nil
}

// PseudoHeaderChecksum computes the partial checksum over the IPv4
// pseudo-header used by UDP and TCP: src, dst, zero, protocol, length.
// The result is NOT complemented; fold it into the transport checksum.
func PseudoHeaderChecksum(src, dst Addr, proto uint8, length int) uint32 {
	var sum uint32
	sum += uint32(binary.BigEndian.Uint16(src[0:2]))
	sum += uint32(binary.BigEndian.Uint16(src[2:4]))
	sum += uint32(binary.BigEndian.Uint16(dst[0:2]))
	sum += uint32(binary.BigEndian.Uint16(dst[2:4]))
	sum += uint32(proto)
	sum += uint32(length)
	return sum
}

// TransportChecksum computes a UDP/TCP checksum over the pseudo-header and
// the transport segment b (whose checksum field must be zeroed by the
// caller).
func TransportChecksum(src, dst Addr, proto uint8, b []byte) uint16 {
	sum := PseudoHeaderChecksum(src, dst, proto, len(b))
	for len(b) >= 2 {
		sum += uint32(binary.BigEndian.Uint16(b))
		b = b[2:]
	}
	if len(b) == 1 {
		sum += uint32(b[0]) << 8
	}
	for sum>>16 != 0 {
		sum = (sum & 0xffff) + sum>>16
	}
	cs := ^uint16(sum)
	if cs == 0 {
		cs = 0xffff // per RFC 768: transmitted as all ones
	}
	return cs
}
