package ipv4

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func bigPacket(n int) Packet {
	p := Packet{
		Header: Header{
			TTL: 64, Protocol: ProtoUDP, ID: 42,
			Src: MustParseAddr("10.0.0.1"), Dst: MustParseAddr("10.0.0.2"),
		},
		Payload: make([]byte, n),
	}
	for i := range p.Payload {
		p.Payload[i] = byte(i)
	}
	return p
}

func TestFragmentFits(t *testing.T) {
	p := bigPacket(100)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 {
		t.Fatalf("got %d fragments, want 1", len(frags))
	}
}

func TestFragmentSplits(t *testing.T) {
	p := bigPacket(3000)
	frags, err := Fragment(p, 1500)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 3 {
		t.Fatalf("got %d fragments, want 3", len(frags))
	}
	total := 0
	for i, f := range frags {
		if f.TotalLen() > 1500 {
			t.Errorf("fragment %d exceeds MTU: %d", i, f.TotalLen())
		}
		if i < len(frags)-1 && !f.MoreFrags {
			t.Errorf("fragment %d missing MF", i)
		}
		if i == len(frags)-1 && f.MoreFrags {
			t.Error("last fragment has MF set")
		}
		if int(f.FragOffset)*8 != total {
			t.Errorf("fragment %d offset %d, want %d", i, int(f.FragOffset)*8, total)
		}
		total += len(f.Payload)
	}
	if total != 3000 {
		t.Errorf("payload bytes = %d, want 3000", total)
	}
}

func TestFragmentDFRejected(t *testing.T) {
	p := bigPacket(3000)
	p.DontFrag = true
	if _, err := Fragment(p, 1500); err != ErrFragNeeded {
		t.Errorf("err = %v, want ErrFragNeeded", err)
	}
	// DF packet that fits is fine.
	p.Payload = p.Payload[:100]
	if _, err := Fragment(p, 1500); err != nil {
		t.Errorf("DF packet that fits rejected: %v", err)
	}
}

func TestFragmentTinyMTU(t *testing.T) {
	p := bigPacket(100)
	if _, err := Fragment(p, 20); err == nil {
		t.Error("mtu 20 accepted")
	}
	frags, err := Fragment(p, 28) // room for exactly 8 payload bytes
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 13 { // ceil(100/8)
		t.Errorf("got %d fragments, want 13", len(frags))
	}
}

func TestReassembleInOrder(t *testing.T) {
	p := bigPacket(5000)
	frags, _ := Fragment(p, 1500)
	r := NewReassembler()
	for i, f := range frags {
		out, done, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if i < len(frags)-1 && done {
			t.Fatal("reassembly finished early")
		}
		if i == len(frags)-1 {
			if !done {
				t.Fatal("reassembly did not finish")
			}
			if !bytes.Equal(out.Payload, p.Payload) {
				t.Error("reassembled payload differs")
			}
			if out.MoreFrags || out.FragOffset != 0 {
				t.Error("reassembled packet still marked fragmented")
			}
		}
	}
	if r.Pending() != 0 {
		t.Errorf("pending contexts = %d", r.Pending())
	}
}

func TestReassembleOutOfOrderAndDuplicates(t *testing.T) {
	p := bigPacket(5000)
	frags, _ := Fragment(p, 1500)
	rng := rand.New(rand.NewSource(3))
	order := rng.Perm(len(frags))
	r := NewReassembler()
	var out Packet
	var done bool
	var err error
	for _, idx := range order {
		// Feed each fragment twice; duplicates must be ignored.
		_, _, _ = r.Add(frags[idx])
		out, done, err = r.Add(frags[idx])
		if err != nil {
			t.Fatal(err)
		}
	}
	// The last Add of the permutation may or may not complete it
	// (duplicate after completion starts a fresh context); feed all
	// again to be sure.
	if !done {
		for _, f := range frags {
			out, done, err = r.Add(f)
			if err != nil {
				t.Fatal(err)
			}
			if done {
				break
			}
		}
	}
	if !done {
		t.Fatal("never completed")
	}
	if !bytes.Equal(out.Payload, p.Payload) {
		t.Error("payload differs after out-of-order reassembly")
	}
}

func TestReassembleDistinctContexts(t *testing.T) {
	// Two packets with different IDs interleaved must not mix.
	a := bigPacket(3000)
	b := bigPacket(3000)
	b.ID = 43
	for i := range b.Payload {
		b.Payload[i] = byte(i * 7)
	}
	fa, _ := Fragment(a, 1500)
	fb, _ := Fragment(b, 1500)
	r := NewReassembler()
	var gotA, gotB Packet
	var doneA, doneB bool
	for i := range fa {
		if out, done, _ := r.Add(fa[i]); done {
			gotA, doneA = out, true
		}
		if out, done, _ := r.Add(fb[i]); done {
			gotB, doneB = out, true
		}
	}
	if !doneA || !doneB {
		t.Fatal("one of the contexts never completed")
	}
	if !bytes.Equal(gotA.Payload, a.Payload) || !bytes.Equal(gotB.Payload, b.Payload) {
		t.Error("contexts mixed payloads")
	}
}

func TestReassembleExpire(t *testing.T) {
	p := bigPacket(3000)
	frags, _ := Fragment(p, 1500)
	r := NewReassembler()
	_, _, _ = r.Add(frags[0])
	if n := r.Expire(); n != 1 {
		t.Errorf("Expire = %d, want 1", n)
	}
	if r.Drops != 1 {
		t.Errorf("Drops = %d, want 1", r.Drops)
	}
	// After expiry the remaining fragments never complete.
	done := false
	for _, f := range frags[1:] {
		_, d, _ := r.Add(f)
		done = done || d
	}
	if done {
		t.Error("completed without the first fragment")
	}
}

func TestReassembleWholePacketPassthrough(t *testing.T) {
	p := bigPacket(100)
	r := NewReassembler()
	out, done, err := r.Add(p)
	if err != nil || !done {
		t.Fatalf("passthrough failed: %v %v", done, err)
	}
	if !bytes.Equal(out.Payload, p.Payload) {
		t.Error("payload differs")
	}
	if r.Pending() != 0 {
		t.Error("context created for whole packet")
	}
}

func TestFragmentReassembleIdentityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func(size uint16, mtuRaw uint16) bool {
		n := int(size)%8000 + 1
		mtu := int(mtuRaw)%1472 + 28 // 28..1500
		p := bigPacket(n)
		rng.Read(p.Payload)
		frags, err := Fragment(p, mtu)
		if err != nil {
			return false
		}
		// Shuffle.
		order := rng.Perm(len(frags))
		r := NewReassembler()
		for _, idx := range order {
			out, done, err := r.Add(frags[idx])
			if err != nil {
				return false
			}
			if done {
				return bytes.Equal(out.Payload, p.Payload) &&
					out.Src == p.Src && out.Dst == p.Dst && out.Protocol == p.Protocol
			}
		}
		return false // never completed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestRefragmentFragment(t *testing.T) {
	// Fragmenting a fragment (smaller MTU downstream) must preserve
	// offsets relative to the original packet.
	p := bigPacket(4000)
	first, _ := Fragment(p, 1500)
	var all []Packet
	for _, f := range first {
		sub, err := Fragment(f, 576)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, sub...)
	}
	r := NewReassembler()
	for i, f := range all {
		out, done, err := r.Add(f)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			if i != len(all)-1 {
				t.Fatal("completed early")
			}
			if !bytes.Equal(out.Payload, p.Payload) {
				t.Error("payload differs after two-level fragmentation")
			}
			return
		}
	}
	t.Fatal("never completed")
}

func BenchmarkFragment(b *testing.B) {
	p := bigPacket(8000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fragment(p, 1500); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReassemble(b *testing.B) {
	p := bigPacket(8000)
	frags, _ := Fragment(p, 1500)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := NewReassembler()
		for _, f := range frags {
			if _, _, err := r.Add(f); err != nil {
				b.Fatal(err)
			}
		}
	}
}
