package ipv4

import (
	"testing"
	"testing/quick"
)

func TestParseAddr(t *testing.T) {
	cases := []struct {
		in   string
		want Addr
		ok   bool
	}{
		{"0.0.0.0", Zero, true},
		{"255.255.255.255", Broadcast, true},
		{"36.1.1.3", Addr{36, 1, 1, 3}, true},
		{"1.2.3", Addr{}, false},
		{"1.2.3.4.5", Addr{}, false},
		{"256.1.1.1", Addr{}, false},
		{"-1.1.1.1", Addr{}, false},
		{"01.1.1.1", Addr{}, false}, // leading zero rejected
		{"a.b.c.d", Addr{}, false},
		{"", Addr{}, false},
		{"1..2.3", Addr{}, false},
	}
	for _, c := range cases {
		got, err := ParseAddr(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseAddr(%q) err=%v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseAddr(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestAddrStringRoundTrip(t *testing.T) {
	f := func(v uint32) bool {
		a := AddrFromUint32(v)
		b, err := ParseAddr(a.String())
		return err == nil && b == a && b.Uint32() == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddrPredicates(t *testing.T) {
	if !MustParseAddr("224.0.0.1").IsMulticast() {
		t.Error("224.0.0.1 should be multicast")
	}
	if MustParseAddr("223.255.255.255").IsMulticast() {
		t.Error("223.255.255.255 should not be multicast")
	}
	if !MustParseAddr("239.255.255.255").IsMulticast() {
		t.Error("239.255.255.255 should be multicast")
	}
	if MustParseAddr("240.0.0.1").IsMulticast() {
		t.Error("240.0.0.1 (class E) should not be multicast")
	}
	if !MustParseAddr("127.0.0.1").IsLoopback() {
		t.Error("127.0.0.1 should be loopback")
	}
	if MustParseAddr("128.0.0.1").IsLoopback() {
		t.Error("128.0.0.1 should not be loopback")
	}
	if !Zero.IsZero() || Broadcast.IsZero() {
		t.Error("IsZero misbehaves")
	}
	if !Broadcast.IsBroadcast() || Zero.IsBroadcast() {
		t.Error("IsBroadcast misbehaves")
	}
}

func TestAddrOrdering(t *testing.T) {
	a := MustParseAddr("10.0.0.1")
	b := MustParseAddr("10.0.0.2")
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Error("Less misbehaves")
	}
	if a.Next() != b {
		t.Errorf("Next: got %v", a.Next())
	}
	if Broadcast.Next() != Zero {
		t.Errorf("Next should wrap: got %v", Broadcast.Next())
	}
}

func TestParsePrefix(t *testing.T) {
	p := MustParsePrefix("36.1.1.0/24")
	if p.Bits != 24 || p.Addr != MustParseAddr("36.1.1.0") {
		t.Errorf("bad prefix %v", p)
	}
	// Host bits cleared on parse.
	q := MustParsePrefix("36.1.1.77/24")
	if q != p {
		t.Errorf("host bits not masked: %v", q)
	}
	for _, bad := range []string{"36.1.1.0", "36.1.1.0/33", "36.1.1.0/-1", "x/24", "36.1.1.0/x"} {
		if _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
}

func TestPrefixContains(t *testing.T) {
	p := MustParsePrefix("36.1.1.0/24")
	for _, in := range []string{"36.1.1.0", "36.1.1.1", "36.1.1.255"} {
		if !p.Contains(MustParseAddr(in)) {
			t.Errorf("%s should contain %s", p, in)
		}
	}
	for _, out := range []string{"36.1.2.0", "36.1.0.255", "37.1.1.1"} {
		if p.Contains(MustParseAddr(out)) {
			t.Errorf("%s should not contain %s", p, out)
		}
	}
	all := MustParsePrefix("0.0.0.0/0")
	if !all.Contains(Broadcast) || !all.Contains(Zero) {
		t.Error("/0 should contain everything")
	}
	host := MustParsePrefix("36.1.1.3/32")
	if !host.Contains(MustParseAddr("36.1.1.3")) || host.Contains(MustParseAddr("36.1.1.4")) {
		t.Error("/32 misbehaves")
	}
}

func TestPrefixOverlaps(t *testing.T) {
	a := MustParsePrefix("10.0.0.0/8")
	b := MustParsePrefix("10.1.0.0/16")
	c := MustParsePrefix("11.0.0.0/8")
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested prefixes should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("disjoint prefixes should not overlap")
	}
	if !a.Overlaps(a) {
		t.Error("prefix should overlap itself")
	}
}

func TestPrefixBroadcastAndHost(t *testing.T) {
	p := MustParsePrefix("36.1.1.0/24")
	if got := p.BroadcastAddr(); got != MustParseAddr("36.1.1.255") {
		t.Errorf("broadcast = %v", got)
	}
	if got := p.Host(1); got != MustParseAddr("36.1.1.1") {
		t.Errorf("Host(1) = %v", got)
	}
	if got := p.Host(254); got != MustParseAddr("36.1.1.254") {
		t.Errorf("Host(254) = %v", got)
	}
	p30 := MustParsePrefix("10.200.0.4/30")
	if got := p30.BroadcastAddr(); got != MustParseAddr("10.200.0.7") {
		t.Errorf("/30 broadcast = %v", got)
	}
}

func TestPrefixContainsConsistentWithMask(t *testing.T) {
	// Property: p.Contains(a) iff masking a down to p.Bits yields p.Addr.
	f := func(addr uint32, pfxAddr uint32, bitsRaw uint8) bool {
		bits := int(bitsRaw % 33)
		p := PrefixFrom(AddrFromUint32(pfxAddr), bits)
		a := AddrFromUint32(addr)
		want := PrefixFrom(a, bits).Addr == p.Addr
		return p.Contains(a) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
