package ipv4

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"testing"
	"testing/quick"
)

func samplePacket() Packet {
	return Packet{
		Header: Header{
			TOS:      0x10,
			ID:       0x1234,
			TTL:      64,
			Protocol: ProtoUDP,
			Src:      MustParseAddr("36.1.1.3"),
			Dst:      MustParseAddr("17.5.0.2"),
		},
		Payload: []byte("the quick brown fox"),
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := samplePacket()
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != HeaderLen+len(p.Payload) {
		t.Fatalf("marshalled length %d", len(b))
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Src != p.Src || q.Dst != p.Dst || q.Protocol != p.Protocol ||
		q.TTL != p.TTL || q.ID != p.ID || q.TOS != p.TOS {
		t.Errorf("header mismatch: %+v vs %+v", q.Header, p.Header)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Errorf("payload mismatch")
	}
}

func TestMarshalChecksumValid(t *testing.T) {
	p := samplePacket()
	b, _ := p.Marshal()
	if Checksum(b[:HeaderLen]) != 0 {
		t.Error("header checksum does not verify")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	p := samplePacket()
	good, _ := p.Marshal()

	// Flip one bit anywhere in the header: the checksum must catch it.
	for bit := 0; bit < HeaderLen*8; bit++ {
		b := append([]byte(nil), good...)
		b[bit/8] ^= 1 << (bit % 8)
		if _, err := Unmarshal(b); err == nil {
			// A flip in the checksum field itself combined with... no:
			// any single-bit flip must fail validation (version, length
			// or checksum).
			t.Fatalf("bit flip at %d accepted", bit)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	p := samplePacket()
	good, _ := p.Marshal()

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:10] }},
		{"empty", func(b []byte) []byte { return nil }},
		{"bad version", func(b []byte) []byte { b[0] = 6<<4 | 5; return b }},
		{"ihl too small", func(b []byte) []byte { b[0] = 4<<4 | 4; return b }},
		{"ihl beyond packet", func(b []byte) []byte { b[0] = 4<<4 | 15; return b[:20] }},
		{"total length beyond buffer", func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[2:], uint16(len(b)+1))
			return b
		}},
		{"total length below header", func(b []byte) []byte {
			binary.BigEndian.PutUint16(b[2:], 10)
			return b
		}},
	}
	for _, c := range cases {
		b := append([]byte(nil), good...)
		if _, err := Unmarshal(c.mut(b)); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestMarshalOptionsPadding(t *testing.T) {
	p := samplePacket()
	p.Options = []byte{0x94, 0x04, 0x00} // 3 bytes -> padded to 4
	b, err := p.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if q.Header.Len() != HeaderLen+4 {
		t.Errorf("header len = %d, want %d", q.Header.Len(), HeaderLen+4)
	}
	if len(q.Options) != 4 || !bytes.Equal(q.Options[:3], p.Options) {
		t.Errorf("options = %x", q.Options)
	}
	if !bytes.Equal(q.Payload, p.Payload) {
		t.Error("payload corrupted by options")
	}
}

func TestMarshalRejectsOversize(t *testing.T) {
	p := samplePacket()
	p.Payload = make([]byte, MaxTotalLen)
	if _, err := p.Marshal(); err == nil {
		t.Error("oversize packet accepted")
	}
	p = samplePacket()
	p.Options = make([]byte, 44)
	if _, err := p.Marshal(); err == nil {
		t.Error("oversize options accepted")
	}
}

func TestFlagsAndFragFieldsRoundTrip(t *testing.T) {
	p := samplePacket()
	p.DontFrag = true
	p.MoreFrags = true
	p.FragOffset = 0x1abc
	b, _ := p.Marshal()
	q, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !q.DontFrag || !q.MoreFrags || q.FragOffset != 0x1abc {
		t.Errorf("flags/offset mismatch: %+v", q.Header)
	}
}

func TestClone(t *testing.T) {
	p := samplePacket()
	p.Options = []byte{1, 2, 3, 4}
	q := p.Clone()
	q.Payload[0] = 'X'
	q.Options[0] = 9
	if p.Payload[0] == 'X' || p.Options[0] == 9 {
		t.Error("Clone shares memory")
	}
}

func TestMarshalRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, src, dst uint32, payloadLen uint16) bool {
		p := Packet{
			Header: Header{
				TOS: tos, ID: id, TTL: ttl, Protocol: proto,
				Src: AddrFromUint32(src), Dst: AddrFromUint32(dst),
				FragOffset: uint16(rng.Intn(1 << 13)),
			},
			Payload: make([]byte, int(payloadLen)%2000),
		}
		rng.Read(p.Payload)
		b, err := p.Marshal()
		if err != nil {
			return false
		}
		q, err := Unmarshal(b)
		if err != nil {
			return false
		}
		return q.Src == p.Src && q.Dst == p.Dst && q.ID == p.ID &&
			q.TTL == p.TTL && q.Protocol == p.Protocol && q.TOS == p.TOS &&
			q.FragOffset == p.FragOffset && bytes.Equal(q.Payload, p.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestChecksumKnownVectors(t *testing.T) {
	// RFC 1071 example: the checksum of this sequence is well-known.
	b := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	sum := Checksum(b)
	// Verify by the defining property: appending the checksum makes the
	// total sum verify to zero.
	withSum := append(append([]byte(nil), b...), byte(sum>>8), byte(sum))
	if Checksum(withSum) != 0 {
		t.Errorf("checksum self-verification failed: %#04x", sum)
	}
	// Odd-length input.
	odd := []byte{0xab, 0xcd, 0xef}
	s := Checksum(odd)
	withSum = append(append([]byte(nil), odd...), 0x00) // pad
	withSum = append(withSum, byte(s>>8), byte(s))
	if Checksum(withSum) != 0 {
		t.Errorf("odd-length checksum failed: %#04x", s)
	}
}

func TestChecksumZeroBuffer(t *testing.T) {
	if got := Checksum(make([]byte, 8)); got != 0xffff {
		t.Errorf("checksum of zeros = %#04x, want 0xffff", got)
	}
	if got := Checksum(nil); got != 0xffff {
		t.Errorf("checksum of nil = %#04x, want 0xffff", got)
	}
}

func TestTransportChecksum(t *testing.T) {
	src := MustParseAddr("10.0.0.1")
	dst := MustParseAddr("10.0.0.2")
	seg := []byte{0x00, 0x07, 0x00, 0x09, 0x00, 0x0c, 0x00, 0x00, 'h', 'i', 0, 0}
	cs := TransportChecksum(src, dst, ProtoUDP, seg)
	if cs == 0 {
		t.Error("transport checksum must never be zero on the wire")
	}
	// Same data, different pseudo-header, different checksum: the
	// pseudo-header binds the segment to its addresses (this is exactly
	// what breaks when a NAT-like rewrite changes the source address).
	cs2 := TransportChecksum(src, MustParseAddr("10.0.0.3"), ProtoUDP, seg)
	if cs == cs2 {
		t.Error("checksum ignores the pseudo-header")
	}
}

func TestPacketString(t *testing.T) {
	p := samplePacket()
	s := p.String()
	if s == "" || len(s) < 10 {
		t.Errorf("String() = %q", s)
	}
}

func BenchmarkMarshal(b *testing.B) {
	p := samplePacket()
	p.Payload = make([]byte, 1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Marshal(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnmarshal(b *testing.B) {
	p := samplePacket()
	p.Payload = make([]byte, 1400)
	buf, _ := p.Marshal()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecksum1500(b *testing.B) {
	buf := make([]byte, 1500)
	b.SetBytes(1500)
	for i := 0; i < b.N; i++ {
		Checksum(buf)
	}
}
