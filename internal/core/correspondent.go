package core

import "mob4x4/internal/ipv4"

// Binding is a correspondent's knowledge of a mobile host's current
// location: home address -> care-of address, valid until the (virtual)
// expiry the owner tracks.
type Binding struct {
	Home   ipv4.Addr
	CareOf ipv4.Addr
}

// CorrespondentPolicy implements Section 7.2, the correspondent host's
// four simple choices:
//
//   - not mobile-aware, or no binding known: In-IE (just send normal IP);
//   - binding known: In-DE (encapsulate to the care-of address);
//   - mobile host detected on the same segment: In-DH;
//   - the mobile host initiated with its temporary address: In-DT
//     (implicit — the correspondent just replies to the source address).
type CorrespondentPolicy struct {
	// MobileAware gates all special behavior; a conventional 1996 host
	// is !MobileAware and always produces In-IE/In-DT behavior
	// implicitly.
	MobileAware bool

	bindings map[ipv4.Addr]Binding // keyed by home address
	onLink   map[ipv4.Addr]bool    // home addresses known to be on our segment
}

// NewCorrespondentPolicy returns a policy; aware selects whether the host
// has mobility-aware networking software at all.
func NewCorrespondentPolicy(aware bool) *CorrespondentPolicy {
	return &CorrespondentPolicy{
		MobileAware: aware,
		bindings:    make(map[ipv4.Addr]Binding),
		onLink:      make(map[ipv4.Addr]bool),
	}
}

// LearnBinding records a home->care-of binding (from an ICMP notification
// or a DNS CA record). Ignored by non-aware hosts.
func (p *CorrespondentPolicy) LearnBinding(b Binding) {
	if !p.MobileAware {
		return
	}
	p.bindings[b.Home] = b
}

// ForgetBinding drops the binding for a home address (lifetime expiry or a
// delivery failure to the care-of address).
func (p *CorrespondentPolicy) ForgetBinding(home ipv4.Addr) {
	delete(p.bindings, home)
}

// Binding returns the known binding for a home address.
func (p *CorrespondentPolicy) Binding(home ipv4.Addr) (Binding, bool) {
	b, ok := p.bindings[home]
	return b, ok
}

// NoteOnLink records that the mobile host with the given home address was
// observed on our own segment (e.g. it sent us an In-DH-style packet, or
// its care-of address matches our prefix).
func (p *CorrespondentPolicy) NoteOnLink(home ipv4.Addr, onLink bool) {
	if !p.MobileAware {
		return
	}
	if onLink {
		p.onLink[home] = true
	} else {
		delete(p.onLink, home)
	}
}

// ModeFor returns how this correspondent will send to dst. peerUsedTemp
// reports whether the conversation was initiated by the peer from its
// temporary address (in which case dst IS that temporary address and the
// reply is In-DT by construction).
func (p *CorrespondentPolicy) ModeFor(dst ipv4.Addr, peerUsedTemp bool) InMode {
	if peerUsedTemp {
		// "the correspondent host, whether or not it is mobile-aware,
		// will necessarily reply using that address" (§7.2).
		return InDT
	}
	if !p.MobileAware {
		return InIE // plain IP to the home address; the HA does the rest
	}
	if p.onLink[dst] {
		return InDH
	}
	if _, ok := p.bindings[dst]; ok {
		return InDE
	}
	return InIE
}
