package core

import (
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

var (
	chAddr  = ipv4.MustParseAddr("17.5.0.2")
	chAddr2 = ipv4.MustParseAddr("18.0.0.9")
)

func TestInitialModeByPolicy(t *testing.T) {
	if got := NewSelector(StartPessimistic).ModeFor(chAddr); got != OutIE {
		t.Errorf("pessimistic start = %s", got)
	}
	if got := NewSelector(StartOptimistic).ModeFor(chAddr); got != OutDH {
		t.Errorf("optimistic start = %s", got)
	}
}

func TestMethodCacheStability(t *testing.T) {
	s := NewSelector(StartOptimistic)
	first := s.ModeFor(chAddr)
	for i := 0; i < 100; i++ {
		if got := s.ModeFor(chAddr); got != first {
			t.Fatalf("mode changed without feedback: %s", got)
		}
	}
	if s.CacheHits != 100 {
		t.Errorf("cache hits = %d", s.CacheHits)
	}
	if s.CacheLen() != 1 {
		t.Errorf("cache len = %d", s.CacheLen())
	}
}

func TestRetransmissionThresholdAndFallback(t *testing.T) {
	s := NewSelector(StartOptimistic) // starts Out-DH
	// One retransmission: below the threshold, no switch.
	if switched, _ := s.ReportRetransmission(chAddr); switched {
		t.Error("switched below threshold")
	}
	// Second consecutive retransmission: fall back to Out-DE.
	switched, mode := s.ReportRetransmission(chAddr)
	if !switched || mode != OutDE {
		t.Errorf("fallback = %v,%s, want true,Out-DE", switched, mode)
	}
	// Two more: fall back to Out-IE.
	s.ReportRetransmission(chAddr)
	_, mode = s.ReportRetransmission(chAddr)
	if mode != OutIE {
		t.Errorf("second fallback = %s, want Out-IE", mode)
	}
	if s.FallbackMoves != 2 {
		t.Errorf("FallbackMoves = %d", s.FallbackMoves)
	}
}

func TestFallbackSkipsDEWhenCHCannotDecapsulate(t *testing.T) {
	s := NewSelector(StartOptimistic)
	s.CHCanDecapsulate = func(ipv4.Addr) bool { return false }
	s.ReportRetransmission(chAddr)
	_, mode := s.ReportRetransmission(chAddr)
	if mode != OutIE {
		t.Errorf("fallback = %s, want Out-IE (DE skipped)", mode)
	}
}

func TestSuccessResetsRetransmissionCount(t *testing.T) {
	s := NewSelector(StartOptimistic)
	s.ReportRetransmission(chAddr)
	s.ReportSuccess(chAddr) // resets the consecutive count
	if switched, _ := s.ReportRetransmission(chAddr); switched {
		t.Error("switched after interleaved success")
	}
}

func TestTryUpgradeAndConfirm(t *testing.T) {
	s := NewSelector(StartPessimistic) // Out-IE
	ok, mode := s.TryUpgrade(chAddr)
	if !ok || mode != OutDE {
		t.Fatalf("upgrade = %v,%s", ok, mode)
	}
	// While probing, no further upgrade.
	if ok, _ := s.TryUpgrade(chAddr); ok {
		t.Error("double probe")
	}
	// Probe confirmed by success; next upgrade goes to Out-DH.
	s.ReportSuccess(chAddr)
	ok, mode = s.TryUpgrade(chAddr)
	if !ok || mode != OutDH {
		t.Errorf("second upgrade = %v,%s", ok, mode)
	}
	s.ReportSuccess(chAddr)
	// At the top: nothing left.
	if ok, _ := s.TryUpgrade(chAddr); ok {
		t.Error("upgrade beyond Out-DH")
	}
	if s.UpgradeMoves != 2 {
		t.Errorf("UpgradeMoves = %d", s.UpgradeMoves)
	}
}

func TestProbeFailureRollsBackToLastGood(t *testing.T) {
	s := NewSelector(StartPessimistic)
	s.ReportSuccess(chAddr) // Out-IE known good
	_, mode := s.TryUpgrade(chAddr)
	if mode != OutDE {
		t.Fatalf("probe mode = %s", mode)
	}
	// Probe fails: two retransmissions roll straight back to Out-IE,
	// not further down.
	s.ReportRetransmission(chAddr)
	switched, mode := s.ReportRetransmission(chAddr)
	if !switched || mode != OutIE {
		t.Errorf("rollback = %v,%s, want true,Out-IE", switched, mode)
	}
	// The failed mode is remembered: the next upgrade skips Out-DE.
	ok, mode := s.TryUpgrade(chAddr)
	if !ok || mode != OutDH {
		t.Errorf("post-failure upgrade = %v,%s, want true,Out-DH", ok, mode)
	}
}

func TestEverythingFailedResetsToOutIE(t *testing.T) {
	s := NewSelector(StartOptimistic)
	// Burn through DH, DE, IE.
	for i := 0; i < 6; i++ {
		s.ReportRetransmission(chAddr)
	}
	// Even Out-IE "failed" now; the selector must still answer Out-IE
	// (the only mode that can be relied upon) and clear history.
	for i := 0; i < 2; i++ {
		s.ReportRetransmission(chAddr)
	}
	if got := s.ModeFor(chAddr); got != OutIE {
		t.Errorf("after total failure: %s", got)
	}
}

func TestRulesForceAndPolicy(t *testing.T) {
	s := NewSelector(StartOptimistic)
	forced := OutIE
	s.AddRule(Rule{Prefix: ipv4.MustParsePrefix("36.1.1.0/24"), ForceMode: &forced})
	s.AddRule(Rule{Prefix: ipv4.MustParsePrefix("17.0.0.0/8"), Policy: StartPessimistic})

	if got := s.ModeFor(ipv4.MustParseAddr("36.1.1.50")); got != OutIE {
		t.Errorf("forced rule = %s", got)
	}
	if got := s.ModeFor(chAddr); got != OutIE { // pessimistic rule
		t.Errorf("policy rule = %s", got)
	}
	if got := s.ModeFor(chAddr2); got != OutDH { // default optimistic
		t.Errorf("default = %s", got)
	}
}

func TestRuleLongestPrefixPrecedence(t *testing.T) {
	s := NewSelector(StartPessimistic)
	dh := OutDH
	ie := OutIE
	s.AddRule(Rule{Prefix: ipv4.MustParsePrefix("17.0.0.0/8"), ForceMode: &ie})
	s.AddRule(Rule{Prefix: ipv4.MustParsePrefix("17.5.0.0/16"), ForceMode: &dh})
	if got := s.ModeFor(chAddr); got != OutDH {
		t.Errorf("longest rule should win: %s", got)
	}
}

func TestForgetAndReset(t *testing.T) {
	s := NewSelector(StartOptimistic)
	s.ModeFor(chAddr)
	s.ModeFor(chAddr2)
	s.Forget(chAddr)
	if s.CacheLen() != 1 {
		t.Errorf("cache len after Forget = %d", s.CacheLen())
	}
	s.Reset()
	if s.CacheLen() != 0 {
		t.Errorf("cache len after Reset = %d", s.CacheLen())
	}
}

func TestSnapshot(t *testing.T) {
	s := NewSelector(StartOptimistic)
	if got := s.Snapshot(chAddr); got == "" {
		t.Error("empty snapshot")
	}
	s.ModeFor(chAddr)
	if got := s.Snapshot(chAddr); got == "" {
		t.Error("empty snapshot for cached entry")
	}
}

// TestSelectorAlwaysReturnsValidMode is the property test: under any
// sequence of feedback events, ModeFor returns one of the three
// home-address modes (never Out-DT — that choice belongs to the
// heuristics, not the home-address method cache).
func TestSelectorAlwaysReturnsValidMode(t *testing.T) {
	f := func(optimistic bool, events []byte) bool {
		pol := StartPessimistic
		if optimistic {
			pol = StartOptimistic
		}
		s := NewSelector(pol)
		for _, e := range events {
			switch e % 4 {
			case 0:
				s.ReportRetransmission(chAddr)
			case 1:
				s.ReportSuccess(chAddr)
			case 2:
				s.TryUpgrade(chAddr)
			case 3:
				m := s.ModeFor(chAddr)
				if m != OutIE && m != OutDE && m != OutDH {
					return false
				}
			}
		}
		m := s.ModeFor(chAddr)
		return m == OutIE || m == OutDE || m == OutDH
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStartPolicyString(t *testing.T) {
	if StartPessimistic.String() != "pessimistic" || StartOptimistic.String() != "optimistic" {
		t.Error("policy strings")
	}
}

// BenchmarkMethodCache is the DESIGN.md method-cache ablation: per-packet
// decision cost with the cache (steady conversation) vs without (fresh
// correspondent each time — the "decide afresh for every packet" case the
// paper's cache avoids).
func BenchmarkMethodCache(b *testing.B) {
	b.Run("cached", func(b *testing.B) {
		s := NewSelector(StartOptimistic)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ModeFor(chAddr)
		}
	})
	b.Run("uncached", func(b *testing.B) {
		s := NewSelector(StartOptimistic)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ModeFor(ipv4.AddrFromUint32(uint32(i)))
			if s.CacheLen() > 4096 {
				s.Reset()
			}
		}
	})
}
