package core

import (
	"testing"

	"mob4x4/internal/ipv4"
)

// The temporary-path (Out-DT via port heuristic) demotion ladder: a
// blackholed DT path must fall back to the cached mode, stay demoted
// for subsequent decisions, and recover only through an explicit retry
// probe.

func TestDTDemotionFallsBackToCachedMode(t *testing.T) {
	s := NewSelector(StartOptimistic) // caches Out-DH
	if got := s.ModeFor(chAddr); got != OutDH {
		t.Fatalf("cached mode = %s", got)
	}
	// The port heuristic elects the temporary path for this conversation.
	s.NoteTemporary(chAddr)
	// The DT packets vanish (an ingress filter appeared): two
	// retransmissions hit the threshold.
	s.ReportRetransmission(chAddr)
	switched, mode := s.ReportRetransmission(chAddr)
	if !switched || mode != OutDH {
		t.Fatalf("demotion = %v,%s, want true,Out-DH (back to cached mode)", switched, mode)
	}
	if s.DTDemotions != 1 {
		t.Errorf("DTDemotions = %d, want 1", s.DTDemotions)
	}
	// The cached mode itself is untouched: DT failed, not DH.
	if got := s.ModeFor(chAddr); got != OutDH {
		t.Errorf("cached mode after demotion = %s, want Out-DH", got)
	}
	// And DT is now marked unusable for this destination.
	if s.TemporaryUsable(chAddr) {
		t.Error("TemporaryUsable still true after a blackholed DT path")
	}
}

func TestDTSuccessDoesNotPromoteCachedMode(t *testing.T) {
	s := NewSelector(StartPessimistic) // caches Out-IE
	if got := s.ModeFor(chAddr); got != OutIE {
		t.Fatalf("cached mode = %s", got)
	}
	s.NoteTemporary(chAddr)
	s.ReportSuccess(chAddr)
	// DT worked, but that says nothing about the home-address modes: the
	// cached mode must still be Out-IE, not "upgraded" by DT's success.
	if got := s.ModeFor(chAddr); got != OutIE {
		t.Errorf("cached mode after DT success = %s, want Out-IE", got)
	}
	if !s.TemporaryUsable(chAddr) {
		t.Error("successful DT path marked unusable")
	}
}

func TestRetryTemporaryRestoresDT(t *testing.T) {
	s := NewSelector(StartOptimistic)
	s.ModeFor(chAddr)
	s.NoteTemporary(chAddr)
	s.ReportRetransmission(chAddr)
	s.ReportRetransmission(chAddr) // demoted
	if s.TemporaryUsable(chAddr) {
		t.Fatal("DT should be unusable after demotion")
	}
	if !s.RetryTemporary(chAddr) {
		t.Fatal("RetryTemporary reported nothing to clear")
	}
	if !s.TemporaryUsable(chAddr) {
		t.Error("DT still unusable after RetryTemporary")
	}
	// A second retry has nothing left to clear.
	if s.RetryTemporary(chAddr) {
		t.Error("RetryTemporary cleared twice")
	}
}

func TestTemporaryUsableUnknownDestination(t *testing.T) {
	s := NewSelector(StartOptimistic)
	if !s.TemporaryUsable(ipv4.MustParseAddr("99.9.9.9")) {
		t.Error("unknown destination should default to DT-usable")
	}
}

func TestDecideSkipsDTWhenDemoted(t *testing.T) {
	s := NewSelector(StartOptimistic)
	ph := DefaultPortHeuristic()

	// Fresh destination + DNS port: the heuristic elects Out-DT.
	d := Decide(s, ph, PreferAuto, chAddr, 53)
	if d.Mode != OutDT {
		t.Fatalf("initial decision = %s, want Out-DT", d.Mode)
	}
	// Blackhole the DT path past the threshold.
	s.ReportRetransmission(chAddr)
	s.ReportRetransmission(chAddr)
	// Same flow decided again: DT is demoted, the heuristic must not
	// re-elect it.
	d = Decide(s, ph, PreferAuto, chAddr, 53)
	if d.Mode == OutDT {
		t.Fatal("Decide re-elected a demoted DT path")
	}
	// After a retry probe clears the demotion, DT is available again.
	s.RetryTemporary(chAddr)
	d = Decide(s, ph, PreferAuto, chAddr, 53)
	if d.Mode != OutDT {
		t.Errorf("post-recovery decision = %s, want Out-DT", d.Mode)
	}
}

func TestDemotionLadderContinuesPastDT(t *testing.T) {
	// After DT demotes to the cached Out-DH, further retransmissions walk
	// the normal ladder: DH -> DE -> IE.
	s := NewSelector(StartOptimistic)
	s.ModeFor(chAddr)
	s.NoteTemporary(chAddr)
	s.ReportRetransmission(chAddr)
	if _, mode := s.ReportRetransmission(chAddr); mode != OutDH {
		t.Fatalf("first demotion -> %s, want Out-DH", mode)
	}
	s.ReportRetransmission(chAddr)
	if _, mode := s.ReportRetransmission(chAddr); mode != OutDE {
		t.Fatalf("second demotion -> %s, want Out-DE", mode)
	}
	s.ReportRetransmission(chAddr)
	if _, mode := s.ReportRetransmission(chAddr); mode != OutIE {
		t.Fatalf("third demotion -> %s, want Out-IE", mode)
	}
	if s.DTDemotions != 1 {
		t.Errorf("DTDemotions = %d, want 1 (later moves are plain fallbacks)", s.DTDemotions)
	}
}
