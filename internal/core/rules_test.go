package core

import (
	"strings"
	"testing"

	"mob4x4/internal/ipv4"
)

const sampleRules = `
# the entire home network always tunnels via the home agent
36.1.1.0/24 out-ie

# campus neighbours: direct is known safe
128.9.0.0/16 optimistic

# a partner lab that can decapsulate but filters plain packets
17.5.0.0/24 out-de

# everything else: be careful
0.0.0.0/0 pessimistic
`

func TestParseRules(t *testing.T) {
	rules, err := ParseRules(sampleRules)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules", len(rules))
	}
	if rules[0].ForceMode == nil || *rules[0].ForceMode != OutIE {
		t.Error("rule 0 should force Out-IE")
	}
	if rules[1].Policy != StartOptimistic || rules[1].ForceMode != nil {
		t.Error("rule 1 should be optimistic policy")
	}
	if rules[2].ForceMode == nil || *rules[2].ForceMode != OutDE {
		t.Error("rule 2 should force Out-DE")
	}
	if rules[3].Policy != StartPessimistic {
		t.Error("rule 3 should be pessimistic")
	}
}

func TestLoadRulesDrivesSelector(t *testing.T) {
	s := NewSelector(StartOptimistic)
	if err := LoadRules(s, sampleRules); err != nil {
		t.Fatal(err)
	}
	cases := map[string]OutMode{
		"36.1.1.77": OutIE, // forced
		"128.9.3.4": OutDH, // optimistic
		"17.5.0.9":  OutDE, // forced
		"192.0.2.1": OutIE, // pessimistic catch-all
	}
	for addr, want := range cases {
		if got := s.ModeFor(ipv4.MustParseAddr(addr)); got != want {
			t.Errorf("ModeFor(%s) = %s, want %s", addr, got, want)
		}
	}
}

func TestParseRulesErrors(t *testing.T) {
	for _, bad := range []string{
		"36.1.1.0/24",              // missing action
		"36.1.1.0/24 out-ie extra", // too many fields
		"not-a-prefix out-ie",
		"36.1.1.0/24 out-dt", // DT is not a home-address method
		"36.1.1.0/24 sideways",
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestFormatRulesRoundTrip(t *testing.T) {
	rules, err := ParseRules(sampleRules)
	if err != nil {
		t.Fatal(err)
	}
	text := FormatRules(rules)
	again, err := ParseRules(text)
	if err != nil {
		t.Fatalf("re-parse failed: %v\n%s", err, text)
	}
	if len(again) != len(rules) {
		t.Fatalf("round trip lost rules: %d vs %d", len(again), len(rules))
	}
	for i := range rules {
		if rules[i].Prefix != again[i].Prefix || rules[i].Policy != again[i].Policy {
			t.Errorf("rule %d changed: %+v vs %+v", i, rules[i], again[i])
		}
		if (rules[i].ForceMode == nil) != (again[i].ForceMode == nil) {
			t.Errorf("rule %d force mode changed", i)
		}
	}
	if !strings.Contains(text, "out-ie") {
		t.Errorf("format output missing actions:\n%s", text)
	}
}
