package core

// Class is the paper's three-way classification of grid cells (Figure 10
// caption): unshaded cells are the useful combinations; lightly shaded
// cells "would work correctly with current protocols such as TCP, but for
// other reasons would not normally be used"; darkly shaded cells "would
// not work correctly with current protocols such as TCP".
type Class int

// Grid cell classes.
const (
	// Useful combinations — the seven modes a mobile host would choose.
	Useful Class = iota
	// ValidUnlikely — works, but a sensible host replies the way it was
	// addressed, so these are not normally used.
	ValidUnlikely
	// Broken — mixing the temporary care-of address on one side with the
	// permanent address on the other leaves the peers disagreeing about
	// the connection endpoints; TCP cannot work.
	Broken
)

func (c Class) String() string {
	switch c {
	case Useful:
		return "useful"
	case ValidUnlikely:
		return "valid-unlikely"
	case Broken:
		return "broken"
	default:
		return "class(?)"
	}
}

// Classify returns the paper's classification of a combination (Section 6).
//
// The rule the paper gives in Section 6.5 is endpoint consistency: "the
// use of the temporary care-of address for communication in one direction
// effectively mandates the use of the same address for the corresponding
// return communication". A combination where exactly one direction uses
// the temporary address as the endpoint is Broken. Among the workable
// cells, replying less directly than you were addressed is valid but
// unlikely (Sections 6.2, 6.3).
func Classify(c Combo) Class {
	inTemp := !c.In.UsesHomeAddress()
	outTemp := !c.Out.UsesHomeAddress()
	if inTemp != outTemp {
		return Broken
	}
	if inTemp && outTemp {
		return Useful // In-DT/Out-DT: plain IP, the paper's Row D choice
	}
	switch c {
	case Combo{InDE, OutIE}:
		// "The first category (In-DE/Out-IE) is also valid, but is
		// unlikely to be used." (§6.2)
		return ValidUnlikely
	case Combo{InDH, OutIE}, Combo{InDH, OutDE}:
		// "(In-DH/Out-IE) and (In-DH/Out-DE) are also valid, but are
		// unlikely to be used." (§6.3)
		return ValidUnlikely
	}
	return Useful
}

// UsefulCombos returns the seven useful grid cells in Figure 10 order.
func UsefulCombos() []Combo {
	var out []Combo
	for _, c := range AllCombos() {
		if Classify(c) == Useful {
			out = append(out, c)
		}
	}
	return out
}

// Requirement describes what a mode needs from the world to work. A Combo
// is feasible in an Environment when every requirement of both of its
// modes is met.
type Requirement int

// Requirements referenced by the grid (the box captions of Figure 10).
const (
	// ReqHomeAgent: a reachable, registered home agent.
	ReqHomeAgent Requirement = iota
	// ReqNoSourceFiltering: no security-conscious router on the path
	// drops packets with topologically-invalid source addresses.
	ReqNoSourceFiltering
	// ReqCHDecapsulation: the correspondent can decapsulate tunneled
	// packets (but need not be otherwise mobile-aware).
	ReqCHDecapsulation
	// ReqCHMobileAware: the correspondent knows the binding and can
	// encapsulate to the care-of address itself.
	ReqCHMobileAware
	// ReqSameSegment: both hosts share a link-layer segment.
	ReqSameSegment
	// ReqForgoMobility: the application accepts that connections break
	// when the host moves.
	ReqForgoMobility
)

func (r Requirement) String() string {
	switch r {
	case ReqHomeAgent:
		return "registered home agent"
	case ReqNoSourceFiltering:
		return "no source-address filtering on path"
	case ReqCHDecapsulation:
		return "correspondent can decapsulate"
	case ReqCHMobileAware:
		return "fully mobile-aware correspondent"
	case ReqSameSegment:
		return "both hosts on same network segment"
	case ReqForgoMobility:
		return "application forgoes mobility support"
	default:
		return "requirement(?)"
	}
}

// OutRequirements returns what an outgoing mode needs (Section 4).
func OutRequirements(m OutMode) []Requirement {
	switch m {
	case OutIE:
		return []Requirement{ReqHomeAgent}
	case OutDE:
		return []Requirement{ReqCHDecapsulation}
	case OutDH:
		return []Requirement{ReqNoSourceFiltering}
	case OutDT:
		return []Requirement{ReqForgoMobility}
	}
	return nil
}

// InRequirements returns what an incoming mode needs (Section 5).
func InRequirements(m InMode) []Requirement {
	switch m {
	case InIE:
		return []Requirement{ReqHomeAgent}
	case InDE:
		return []Requirement{ReqCHMobileAware}
	case InDH:
		return []Requirement{ReqSameSegment}
	case InDT:
		return []Requirement{ReqForgoMobility}
	}
	return nil
}

// Requirements returns the union of a combo's in and out requirements.
func (c Combo) Requirements() []Requirement {
	seen := map[Requirement]bool{}
	var out []Requirement
	for _, r := range append(InRequirements(c.In), OutRequirements(c.Out)...) {
		if !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Environment captures the three factors of the paper's abstract: network
// permissiveness, correspondent capability, and what the connection needs.
type Environment struct {
	// HomeAgentReachable: the MH is registered and the tunnel to the
	// home agent works.
	HomeAgentReachable bool
	// SourceFilteringOnPath: some router between the MH and the CH
	// performs the source-address checks of Section 3.1.
	SourceFilteringOnPath bool
	// CHCanDecapsulate: the CH decapsulates tunneled packets (e.g.
	// "recent versions of Linux") without being fully mobile-aware.
	CHCanDecapsulate bool
	// CHMobileAware: the CH knows the MH's binding and can encapsulate.
	CHMobileAware bool
	// SameSegment: MH and CH share a link-layer segment.
	SameSegment bool
	// DurableConnection: the application needs the conversation to
	// survive movement (rules out the DT modes).
	DurableConnection bool
	// PrivacyRequired: the user does not want the CH (or on-path
	// observers near it) to learn the care-of address; forces indirect
	// delivery (Out-IE motivation, Section 4).
	PrivacyRequired bool
}

// Met reports whether a requirement holds in the environment.
func (e Environment) Met(r Requirement) bool {
	switch r {
	case ReqHomeAgent:
		return e.HomeAgentReachable
	case ReqNoSourceFiltering:
		return !e.SourceFilteringOnPath
	case ReqCHDecapsulation:
		return e.CHCanDecapsulate || e.CHMobileAware
	case ReqCHMobileAware:
		return e.CHMobileAware
	case ReqSameSegment:
		return e.SameSegment
	case ReqForgoMobility:
		return !e.DurableConnection
	}
	return false
}

// Feasible reports whether every requirement of the combo is met, and if
// not, returns the first missing requirement.
func (e Environment) Feasible(c Combo) (bool, Requirement) {
	for _, r := range c.Requirements() {
		if !e.Met(r) {
			return false, r
		}
	}
	if e.PrivacyRequired && (c.Out != OutIE || c.In != InIE) {
		// Every direct mode reveals the care-of address to the
		// correspondent or to observers near it; privacy means "sending
		// all outgoing packets indirectly via the home agent may be the
		// method the user wants, even when other more efficient
		// alternatives are also available" (Section 4, Out-IE).
		return false, ReqHomeAgent
	}
	return true, 0
}

// Cost models the per-packet cost of a combo for ranking: the number of
// tunnel headers added plus a large penalty for each indirect direction
// (triangle routing dominates header overhead in practice).
func Cost(c Combo) int {
	cost := 0
	if c.In.Encapsulated() {
		cost++
	}
	if c.Out.Encapsulated() {
		cost++
	}
	if !c.In.Direct() {
		cost += 10
	}
	if !c.Out.Direct() {
		cost += 10
	}
	return cost
}

// Best returns the cheapest useful combo feasible in the environment. The
// second return is false when nothing works — which per Section 6.1 means
// the host "is not in any meaningful sense connected to the Internet at
// all", since In-IE/Out-IE requires only a working home agent.
func (e Environment) Best() (Combo, bool) {
	var best Combo
	found := false
	for _, c := range AllCombos() {
		if Classify(c) != Useful {
			continue
		}
		if ok, _ := e.Feasible(c); !ok {
			continue
		}
		if !found || Cost(c) < Cost(best) {
			best, found = c, true
		}
	}
	return best, found
}
