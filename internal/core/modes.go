// Package core implements the paper's primary contribution: the 4x4 grid
// of Internet mobility routing choices (Figure 10) and the decision
// machinery a mobile host uses to pick the best available mode for each
// correspondent — the delivery-method cache, the optimistic/pessimistic
// probing strategies and the address/mask rule table of Section 7.1, the
// port-number heuristics, and the correspondent host's four-way choice of
// Section 7.2.
//
// The package is pure policy: it depends only on the address types and
// never touches the simulated network. Package mobileip executes the
// modes this package selects.
package core

import "fmt"

// OutMode is one of the four ways a mobile host can send a packet to a
// correspondent host (Section 4).
type OutMode int

// The four outgoing modes, ordered from most conservative to least.
const (
	// OutIE — Outgoing, Indirect, Encapsulated: tunnel to the home agent,
	// which forwards to the correspondent ("conservative mode").
	OutIE OutMode = iota
	// OutDE — Outgoing, Direct, Encapsulated: tunnel straight to a
	// decapsulation-capable correspondent.
	OutDE
	// OutDH — Outgoing, Direct, Home address: a plain packet with the
	// permanent home address as source; requires no source-address
	// filtering on the path.
	OutDH
	// OutDT — Outgoing, Direct, Temporary address: a plain packet from
	// the care-of address; no Mobile IP at all.
	OutDT

	// NumOutModes is the number of outgoing modes.
	NumOutModes = 4
)

// InMode is one of the four ways a correspondent host's packets can reach
// the mobile host (Section 5).
type InMode int

// The four incoming modes, ordered from most conservative to least.
const (
	// InIE — Incoming, Indirect, Encapsulated: addressed to the home
	// address, captured by the home agent, tunneled to the care-of
	// address (what every conventional correspondent produces).
	InIE InMode = iota
	// InDE — Incoming, Direct, Encapsulated: a mobile-aware
	// correspondent encapsulates to the care-of address itself.
	InDE
	// InDH — Incoming, Direct, Home address: a plain packet to the home
	// address delivered in a single link-layer hop (same segment only).
	InDH
	// InDT — Incoming, Direct, Temporary address: a plain packet to the
	// care-of address; no Mobile IP at all.
	InDT

	// NumInModes is the number of incoming modes.
	NumInModes = 4
)

func (m OutMode) String() string {
	switch m {
	case OutIE:
		return "Out-IE"
	case OutDE:
		return "Out-DE"
	case OutDH:
		return "Out-DH"
	case OutDT:
		return "Out-DT"
	default:
		return fmt.Sprintf("OutMode(%d)", int(m))
	}
}

func (m InMode) String() string {
	switch m {
	case InIE:
		return "In-IE"
	case InDE:
		return "In-DE"
	case InDH:
		return "In-DH"
	case InDT:
		return "In-DT"
	default:
		return fmt.Sprintf("InMode(%d)", int(m))
	}
}

// Valid reports whether m is one of the four defined outgoing modes.
func (m OutMode) Valid() bool { return m >= OutIE && m <= OutDT }

// Valid reports whether m is one of the four defined incoming modes.
func (m InMode) Valid() bool { return m >= InIE && m <= InDT }

// Direct reports whether packets avoid the home agent.
func (m OutMode) Direct() bool { return m != OutIE }

// Encapsulated reports whether the mode adds a tunnel header.
func (m OutMode) Encapsulated() bool { return m == OutIE || m == OutDE }

// UsesHomeAddress reports whether the correspondent sees the permanent
// home address as the communication endpoint.
func (m OutMode) UsesHomeAddress() bool { return m != OutDT }

// Direct reports whether packets avoid the home agent.
func (m InMode) Direct() bool { return m != InIE }

// Encapsulated reports whether packets arrive wearing a tunnel header.
func (m InMode) Encapsulated() bool { return m == InIE || m == InDE }

// UsesHomeAddress reports whether the correspondent addresses the
// permanent home address.
func (m InMode) UsesHomeAddress() bool { return m != InDT }

// OutModes lists all outgoing modes in conservative-to-aggressive order.
func OutModes() []OutMode { return []OutMode{OutIE, OutDE, OutDH, OutDT} }

// InModes lists all incoming modes in conservative-to-aggressive order.
func InModes() []InMode { return []InMode{InIE, InDE, InDH, InDT} }

// Combo is one cell of the 4x4 grid: a way to run a two-way conversation.
type Combo struct {
	In  InMode
	Out OutMode
}

func (c Combo) String() string { return c.In.String() + "/" + c.Out.String() }

// AllCombos enumerates the 16 grid cells row by row (Figure 10 order).
func AllCombos() []Combo {
	cs := make([]Combo, 0, 16)
	for _, in := range InModes() {
		for _, out := range OutModes() {
			cs = append(cs, Combo{in, out})
		}
	}
	return cs
}
