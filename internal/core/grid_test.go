package core

import (
	"testing"
	"testing/quick"
)

// TestClassifyMatchesFigure10 pins every cell to the paper's published
// classification, row by row.
func TestClassifyMatchesFigure10(t *testing.T) {
	want := map[Combo]Class{
		// Row A: conventional correspondent host.
		{InIE, OutIE}: Useful,
		{InIE, OutDE}: Useful,
		{InIE, OutDH}: Useful,
		{InIE, OutDT}: Broken,
		// Row B: mobile-aware correspondent host.
		{InDE, OutIE}: ValidUnlikely,
		{InDE, OutDE}: Useful,
		{InDE, OutDH}: Useful,
		{InDE, OutDT}: Broken,
		// Row C: both hosts on the same network segment.
		{InDH, OutIE}: ValidUnlikely,
		{InDH, OutDE}: ValidUnlikely,
		{InDH, OutDH}: Useful,
		{InDH, OutDT}: Broken,
		// Row D: forgoing mobility support.
		{InDT, OutIE}: Broken,
		{InDT, OutDE}: Broken,
		{InDT, OutDH}: Broken,
		{InDT, OutDT}: Useful,
	}
	if len(want) != 16 {
		t.Fatal("test table incomplete")
	}
	for combo, class := range want {
		if got := Classify(combo); got != class {
			t.Errorf("Classify(%s) = %v, want %v", combo, got, class)
		}
	}
}

func TestClassCounts(t *testing.T) {
	counts := map[Class]int{}
	for _, c := range AllCombos() {
		counts[Classify(c)]++
	}
	if counts[Useful] != 7 {
		t.Errorf("useful = %d, want 7", counts[Useful])
	}
	if counts[ValidUnlikely] != 3 {
		t.Errorf("valid-unlikely = %d, want 3", counts[ValidUnlikely])
	}
	if counts[Broken] != 6 {
		t.Errorf("broken = %d, want 6", counts[Broken])
	}
	if len(UsefulCombos()) != 7 {
		t.Errorf("UsefulCombos = %d", len(UsefulCombos()))
	}
}

// TestBrokenIffEndpointMismatch verifies the Section 6.5 rule as a
// property: a combination is Broken exactly when one side uses the
// temporary address as the endpoint and the other does not.
func TestBrokenIffEndpointMismatch(t *testing.T) {
	for _, c := range AllCombos() {
		mismatch := c.In.UsesHomeAddress() != c.Out.UsesHomeAddress()
		if (Classify(c) == Broken) != mismatch {
			t.Errorf("%s: broken=%v, endpoint mismatch=%v", c, Classify(c) == Broken, mismatch)
		}
	}
}

func TestAllCombosOrderAndCount(t *testing.T) {
	cs := AllCombos()
	if len(cs) != 16 {
		t.Fatalf("len = %d", len(cs))
	}
	// Figure 10 order: row-major over (In, Out).
	if cs[0] != (Combo{InIE, OutIE}) || cs[3] != (Combo{InIE, OutDT}) ||
		cs[15] != (Combo{InDT, OutDT}) {
		t.Errorf("order wrong: %v", cs)
	}
}

func TestModePredicates(t *testing.T) {
	if OutIE.Direct() || !OutDE.Direct() || !OutDH.Direct() || !OutDT.Direct() {
		t.Error("OutMode.Direct")
	}
	if !OutIE.Encapsulated() || !OutDE.Encapsulated() || OutDH.Encapsulated() || OutDT.Encapsulated() {
		t.Error("OutMode.Encapsulated")
	}
	if !OutIE.UsesHomeAddress() || OutDT.UsesHomeAddress() {
		t.Error("OutMode.UsesHomeAddress")
	}
	if InIE.Direct() || !InDE.Direct() || !InDH.Direct() || !InDT.Direct() {
		t.Error("InMode.Direct")
	}
	if !InIE.Encapsulated() || !InDE.Encapsulated() || InDH.Encapsulated() || InDT.Encapsulated() {
		t.Error("InMode.Encapsulated")
	}
	if !InDH.UsesHomeAddress() || InDT.UsesHomeAddress() {
		t.Error("InMode.UsesHomeAddress")
	}
	for _, m := range OutModes() {
		if !m.Valid() || m.String() == "" {
			t.Errorf("out mode %d invalid", m)
		}
	}
	for _, m := range InModes() {
		if !m.Valid() || m.String() == "" {
			t.Errorf("in mode %d invalid", m)
		}
	}
	if OutMode(9).Valid() || InMode(9).Valid() {
		t.Error("out-of-range modes valid")
	}
}

func TestRequirements(t *testing.T) {
	reqOut := map[OutMode]Requirement{
		OutIE: ReqHomeAgent, OutDE: ReqCHDecapsulation,
		OutDH: ReqNoSourceFiltering, OutDT: ReqForgoMobility,
	}
	for m, want := range reqOut {
		rs := OutRequirements(m)
		if len(rs) != 1 || rs[0] != want {
			t.Errorf("OutRequirements(%s) = %v", m, rs)
		}
	}
	reqIn := map[InMode]Requirement{
		InIE: ReqHomeAgent, InDE: ReqCHMobileAware,
		InDH: ReqSameSegment, InDT: ReqForgoMobility,
	}
	for m, want := range reqIn {
		rs := InRequirements(m)
		if len(rs) != 1 || rs[0] != want {
			t.Errorf("InRequirements(%s) = %v", m, rs)
		}
	}
	// Combo requirements deduplicate.
	rs := Combo{InIE, OutIE}.Requirements()
	if len(rs) != 1 || rs[0] != ReqHomeAgent {
		t.Errorf("combo reqs = %v", rs)
	}
	for _, r := range []Requirement{ReqHomeAgent, ReqNoSourceFiltering, ReqCHDecapsulation,
		ReqCHMobileAware, ReqSameSegment, ReqForgoMobility} {
		if r.String() == "" {
			t.Errorf("requirement %d has no string", r)
		}
	}
}

func TestEnvironmentBestMatchesPaperMotivations(t *testing.T) {
	cases := []struct {
		name string
		env  Environment
		want Combo
	}{
		{
			// §6.1: filtering network, conventional CH — "no choice but
			// to use Out-IE".
			name: "conventional CH behind filters",
			env: Environment{HomeAgentReachable: true, SourceFilteringOnPath: true,
				DurableConnection: true},
			want: Combo{InIE, OutIE},
		},
		{
			// Out-DE is "the best choice for a mobile host in a network
			// with source address filtering, communicating with a
			// correspondent host that is able to process encapsulated
			// packets".
			name: "filtering + decap-capable CH",
			env: Environment{HomeAgentReachable: true, SourceFilteringOnPath: true,
				CHCanDecapsulate: true, DurableConnection: true},
			want: Combo{InIE, OutDE},
		},
		{
			name: "no filters, conventional CH",
			env:  Environment{HomeAgentReachable: true, DurableConnection: true},
			want: Combo{InIE, OutDH},
		},
		{
			name: "fully aware CH, no filters",
			env: Environment{HomeAgentReachable: true, CHMobileAware: true,
				DurableConnection: true},
			want: Combo{InDE, OutDH},
		},
		{
			name: "fully aware CH behind filters",
			env: Environment{HomeAgentReachable: true, CHMobileAware: true,
				SourceFilteringOnPath: true, DurableConnection: true},
			want: Combo{InDE, OutDE},
		},
		{
			// §5 In-DH: "the best choice when visiting another
			// institution and connecting to their network".
			name: "same segment",
			env: Environment{HomeAgentReachable: true, SameSegment: true,
				CHMobileAware: true, DurableConnection: true},
			want: Combo{InDH, OutDH},
		},
		{
			// Row D: short-lived connection.
			name: "short-lived connection",
			env:  Environment{HomeAgentReachable: true},
			want: Combo{InDT, OutDT},
		},
		{
			// §4 privacy: indirect everything.
			name: "privacy required",
			env: Environment{HomeAgentReachable: true, CHMobileAware: true,
				PrivacyRequired: true, DurableConnection: true},
			want: Combo{InIE, OutIE},
		},
	}
	for _, c := range cases {
		got, ok := c.env.Best()
		if !ok {
			t.Errorf("%s: no feasible combo", c.name)
			continue
		}
		if got != c.want {
			t.Errorf("%s: Best = %s, want %s", c.name, got, c.want)
		}
	}
}

func TestEnvironmentNothingWorks(t *testing.T) {
	// No home agent and a durable connection required: per §6.1, a host
	// that cannot even reach its home agent "is not in any meaningful
	// sense connected to the Internet at all".
	env := Environment{DurableConnection: true}
	if _, ok := env.Best(); ok {
		t.Error("Best found a combo with no home agent and durability required")
	}
}

// TestBestIsAlwaysFeasibleAndUseful is the property test over random
// environments: whatever Best returns must be classified Useful and
// feasible; and if (HomeAgentReachable && !PrivacyRequired) or
// !DurableConnection, something must be returned.
func TestBestIsAlwaysFeasibleAndUseful(t *testing.T) {
	f := func(ha, filt, decap, aware, seg, durable, privacy bool) bool {
		env := Environment{
			HomeAgentReachable:    ha,
			SourceFilteringOnPath: filt,
			CHCanDecapsulate:      decap,
			CHMobileAware:         aware,
			SameSegment:           seg,
			DurableConnection:     durable,
			PrivacyRequired:       privacy,
		}
		combo, ok := env.Best()
		if !ok {
			// Acceptable only if genuinely nothing works.
			for _, c := range AllCombos() {
				if Classify(c) != Useful {
					continue
				}
				if feasible, _ := env.Feasible(c); feasible {
					return false // Best missed a feasible combo
				}
			}
			return true
		}
		if Classify(combo) != Useful {
			return false
		}
		feasible, _ := env.Feasible(combo)
		if !feasible {
			return false
		}
		// Optimality: no cheaper useful feasible combo exists.
		for _, c := range AllCombos() {
			if Classify(c) != Useful {
				continue
			}
			if ok2, _ := env.Feasible(c); ok2 && Cost(c) < Cost(combo) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCostOrdering(t *testing.T) {
	// Direct beats indirect regardless of encapsulation.
	if Cost(Combo{InDE, OutDE}) >= Cost(Combo{InIE, OutIE}) {
		t.Error("direct encapsulated should beat double-indirect")
	}
	// Unencapsulated beats encapsulated at equal directness.
	if Cost(Combo{InDH, OutDH}) >= Cost(Combo{InDE, OutDE}) {
		t.Error("plain same-segment should be cheapest home-address mode")
	}
	if Cost(Combo{InDT, OutDT}) != 0 {
		t.Error("plain IP should cost 0")
	}
}

func TestClassString(t *testing.T) {
	for _, c := range []Class{Useful, ValidUnlikely, Broken} {
		if c.String() == "" {
			t.Error("class string empty")
		}
	}
	if Class(9).String() == "" {
		t.Error("unknown class should render")
	}
}
