package core

import (
	"fmt"
	"sort"

	"mob4x4/internal/ipv4"
)

// StartPolicy chooses which home-address delivery method a conversation
// begins with when nothing is known about the correspondent (Section
// 7.1.2).
type StartPolicy int

// The start policies the paper discusses.
const (
	// StartPessimistic: begin with Out-IE and tentatively try the more
	// aggressive options over the conversation's lifetime ([Fox96]).
	// Safe but "can be wasteful, because in many cases either one or
	// both of Out-DH and Out-DE will work fine".
	StartPessimistic StartPolicy = iota
	// StartOptimistic: begin with Out-DH and fall back through Out-DE to
	// Out-IE on failure. Wasteful where Out-DH "is known to fail every
	// time".
	StartOptimistic
)

func (p StartPolicy) String() string {
	if p == StartOptimistic {
		return "optimistic"
	}
	return "pessimistic"
}

// Rule is one user-configured entry of the address/mask table the paper
// proposes: "allow the user ... to specify rules stating which addresses
// Mobile IP should begin using in an optimistic mode and which addresses
// it should begin using in a pessimistic mode ... specified similarly to
// the way routing table entries are currently specified, as an address
// and a mask value."
type Rule struct {
	Prefix ipv4.Prefix
	Policy StartPolicy
	// ForceMode, when non-nil, pins the initial mode outright (e.g.
	// "the entire home network is a region where Out-IE should always
	// be used").
	ForceMode *OutMode
}

// RetransmissionThreshold is how many consecutive retransmissions to (or
// from) a correspondent the selector tolerates before concluding that the
// current delivery method is failing (Section 7.1.2's proposed
// original-vs-retransmission IP interface).
const RetransmissionThreshold = 2

// methodState is the per-correspondent entry of the delivery method cache:
// "The mobile host keeps a cache of the currently selected delivery
// method associated with each target IP address ... and allows it to
// build up a history, for each correspondent host, of which communication
// methods have proven to be successful and which have not."
type methodState struct {
	mode OutMode
	// active is the mode the conversation's packets are actually using
	// right now. It usually equals mode, but diverges when the port
	// heuristic sends Out-DT while the cache holds a home-address mode:
	// transport feedback must then be attributed to Out-DT, not to the
	// cached mode, or a blackholed shortcut poisons the wrong rung.
	active OutMode
	// failed records modes observed not to work for this correspondent.
	failed [NumOutModes]bool
	// succeeded records modes observed to work.
	succeeded [NumOutModes]bool
	// retrans counts consecutive retransmissions since the last
	// delivery success.
	retrans int
	// probing marks a tentative upgrade in flight: on failure we return
	// to the last known-good mode instead of degrading further.
	probing  bool
	lastGood OutMode
	hasGood  bool
	// switches counts mode changes (experiment instrumentation).
	switches int
}

// Selector is the mobile host's outgoing-mode decision engine. It is not
// safe for concurrent use; the simulation is single-threaded.
type Selector struct {
	// DefaultPolicy applies where no rule matches.
	DefaultPolicy StartPolicy
	rules         []Rule
	cache         map[ipv4.Addr]*methodState

	// CHCanDecapsulate reports (or guesses) whether a given
	// correspondent can decapsulate; when it returns false the selector
	// skips Out-DE in its ladders. Nil means "unknown: try it".
	CHCanDecapsulate func(ipv4.Addr) bool

	// Stats
	Decisions     uint64
	CacheHits     uint64
	ModeSwitches  uint64
	FallbackMoves uint64
	UpgradeMoves  uint64
	// DTDemotions counts conversations demoted off the Out-DT shortcut
	// after it started blackholing (newly appearing ingress filtering).
	DTDemotions uint64
}

// NewSelector returns a selector with the given default start policy.
func NewSelector(def StartPolicy) *Selector {
	return &Selector{
		DefaultPolicy: def,
		cache:         make(map[ipv4.Addr]*methodState),
	}
}

// AddRule installs a prefix rule. Longer prefixes take precedence.
func (s *Selector) AddRule(r Rule) {
	s.rules = append(s.rules, r)
	sort.SliceStable(s.rules, func(i, j int) bool {
		return s.rules[i].Prefix.Bits > s.rules[j].Prefix.Bits
	})
}

// ruleFor returns the best-matching rule, if any.
func (s *Selector) ruleFor(dst ipv4.Addr) *Rule {
	for i := range s.rules {
		if s.rules[i].Prefix.Contains(dst) {
			return &s.rules[i]
		}
	}
	return nil
}

// initialMode picks the first home-address mode for a fresh correspondent.
func (s *Selector) initialMode(dst ipv4.Addr) OutMode {
	policy := s.DefaultPolicy
	if r := s.ruleFor(dst); r != nil {
		if r.ForceMode != nil {
			return *r.ForceMode
		}
		policy = r.Policy
	}
	if policy == StartOptimistic {
		return OutDH
	}
	return OutIE
}

// ForcedMode reports whether a configured rule pins the outgoing mode
// for dst outright (the "Out-IE should always be used" kind of rule).
func (s *Selector) ForcedMode(dst ipv4.Addr) (OutMode, bool) {
	if r := s.ruleFor(dst); r != nil && r.ForceMode != nil {
		return *r.ForceMode, true
	}
	return 0, false
}

// ModeFor returns the outgoing mode to use for the next packet to dst.
// This is the hot path consulted by the route-lookup override; the method
// cache makes it O(1) after the first packet of a conversation ("This
// saves it from having to make the decision afresh for every packet").
func (s *Selector) ModeFor(dst ipv4.Addr) OutMode {
	s.Decisions++
	if st, ok := s.cache[dst]; ok {
		s.CacheHits++
		st.active = st.mode
		return st.mode
	}
	st := s.newState(dst)
	s.cache[dst] = st
	return st.mode
}

func (s *Selector) newState(dst ipv4.Addr) *methodState {
	m := s.initialMode(dst)
	return &methodState{mode: m, active: m}
}

// state returns (creating if needed) the cache entry for dst.
func (s *Selector) state(dst ipv4.Addr) *methodState {
	st, ok := s.cache[dst]
	if !ok {
		st = s.newState(dst)
		s.cache[dst] = st
	}
	return st
}

// ReportSuccess records that the current method delivered (an
// acknowledgement or reply arrived that was not a retransmission).
func (s *Selector) ReportSuccess(dst ipv4.Addr) {
	st := s.state(dst)
	st.retrans = 0
	st.succeeded[st.active] = true
	if st.active != st.mode {
		// Success on the temporary-address shortcut (port heuristic):
		// confirm Out-DT works again without touching the home-address
		// method history.
		st.failed[st.active] = false
		return
	}
	st.lastGood, st.hasGood = st.mode, true
	if st.probing {
		st.probing = false // tentative upgrade confirmed
	}
}

// ReportRetransmission implements the IP-interface addition the paper
// proposes: transports tell IP whether each packet is an original or a
// retransmission; repeated retransmissions in either direction suggest
// the current delivery method is not working. After
// RetransmissionThreshold consecutive retransmissions the selector
// switches modes and reports the change.
func (s *Selector) ReportRetransmission(dst ipv4.Addr) (switched bool, newMode OutMode) {
	st := s.state(dst)
	st.retrans++
	if st.retrans < RetransmissionThreshold {
		return false, st.mode
	}
	st.retrans = 0
	st.failed[st.active] = true
	st.succeeded[st.active] = false
	if st.active == OutDT && st.mode != OutDT {
		// The port heuristic's Out-DT shortcut is blackholing (ingress
		// filtering appeared mid-conversation): demote this
		// correspondent to the cached home-address mode. Recovery is a
		// separate probe (RetryTemporary) — repeated timeouts must not
		// keep burning packets on a dead shortcut.
		st.active = st.mode
		s.DTDemotions++
		s.FallbackMoves++
		return true, st.mode
	}
	if st.probing && st.hasGood && !st.failed[st.lastGood] {
		// A tentative upgrade failed: fall straight back to the last
		// mode that worked.
		st.probing = false
		s.setMode(st, st.lastGood)
		s.FallbackMoves++
		return true, st.mode
	}
	next, ok := s.nextFallback(dst, st)
	if !ok {
		// Everything failed; the paper's floor is Out-IE, which "can
		// be relied upon to work in all situations". Reset history so
		// we can try again if the world changes.
		for i := range st.failed {
			st.failed[i] = false
		}
		next = OutIE
	}
	s.setMode(st, next)
	s.FallbackMoves++
	return true, st.mode
}

// nextFallback walks down the conservative ladder DH -> DE -> IE skipping
// modes known to fail and Out-DE when the correspondent cannot
// decapsulate.
func (s *Selector) nextFallback(dst ipv4.Addr, st *methodState) (OutMode, bool) {
	ladder := []OutMode{OutDH, OutDE, OutIE}
	idx := 0
	for i, m := range ladder {
		if m == st.mode {
			idx = i + 1
			break
		}
	}
	for _, m := range ladder[idx:] {
		if st.failed[m] {
			continue
		}
		if m == OutDE && s.CHCanDecapsulate != nil && !s.CHCanDecapsulate(dst) {
			continue
		}
		return m, true
	}
	return OutIE, false
}

// TryUpgrade tentatively moves one step up the aggressive ladder
// IE -> DE -> DH for dst (the pessimistic strategy's periodic probe). It
// reports whether a probe was started. A probe that fails rolls back via
// ReportRetransmission; one that works is confirmed by ReportSuccess.
func (s *Selector) TryUpgrade(dst ipv4.Addr) (bool, OutMode) {
	st := s.state(dst)
	if st.probing {
		return false, st.mode
	}
	ladder := []OutMode{OutIE, OutDE, OutDH}
	idx := len(ladder)
	for i, m := range ladder {
		if m == st.mode {
			idx = i + 1
			break
		}
	}
	for _, m := range ladder[idx:] {
		if st.failed[m] {
			continue
		}
		if m == OutDE && s.CHCanDecapsulate != nil && !s.CHCanDecapsulate(dst) {
			continue
		}
		st.lastGood, st.hasGood = st.mode, true
		st.probing = true
		s.setMode(st, m)
		s.UpgradeMoves++
		return true, st.mode
	}
	return false, st.mode
}

func (s *Selector) setMode(st *methodState, m OutMode) {
	st.active = m
	if st.mode != m {
		st.mode = m
		st.switches++
		s.ModeSwitches++
	}
}

// NoteTemporary records that the next packets to dst use the temporary
// address (the port heuristic chose Out-DT), so transport feedback is
// attributed to the Out-DT path rather than the cached home-address mode.
func (s *Selector) NoteTemporary(dst ipv4.Addr) {
	s.state(dst).active = OutDT
}

// TemporaryUsable reports whether Out-DT is believed deliverable for dst.
// Unknown correspondents default to usable; a correspondent whose
// shortcut blackholed reports false until RetryTemporary clears it.
func (s *Selector) TemporaryUsable(dst ipv4.Addr) bool {
	if st, ok := s.cache[dst]; ok {
		return !st.failed[OutDT]
	}
	return true
}

// RetryTemporary clears dst's Out-DT failure mark so the port heuristic
// may try the temporary address again (the recovery probe paired with
// the demotion in ReportRetransmission). It reports whether a mark was
// actually cleared.
func (s *Selector) RetryTemporary(dst ipv4.Addr) bool {
	st, ok := s.cache[dst]
	if !ok || !st.failed[OutDT] {
		return false
	}
	st.failed[OutDT] = false
	return true
}

// Forget drops the cache entry for dst (e.g. after moving to a network
// with different filtering, the old history may be invalid).
func (s *Selector) Forget(dst ipv4.Addr) { delete(s.cache, dst) }

// Reset clears the whole cache (used when the mobile host moves).
func (s *Selector) Reset() { s.cache = make(map[ipv4.Addr]*methodState) }

// CacheLen reports the number of cached correspondents.
func (s *Selector) CacheLen() int { return len(s.cache) }

// Snapshot renders the cache entry for dst for debugging.
func (s *Selector) Snapshot(dst ipv4.Addr) string {
	st, ok := s.cache[dst]
	if !ok {
		return fmt.Sprintf("%s: (no entry)", dst)
	}
	return fmt.Sprintf("%s: mode=%s probing=%v switches=%d failed=%v", dst, st.mode, st.probing, st.switches, st.failed)
}
