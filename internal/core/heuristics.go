package core

import "mob4x4/internal/ipv4"

// AddressPreference is what a mobile-aware application signalled through
// its socket binding (Section 7.1.1): binding to a physical interface
// address requests plain Out-DT through that interface; binding to the
// home address (or nothing) leaves the decision to the mobility software.
type AddressPreference int

// Socket-binding preferences.
const (
	// PreferAuto: socket unbound or bound to the home address — "that is
	// taken as an indication that the application is not mobile-aware,
	// and our Mobile IP software should use its heuristics".
	PreferAuto AddressPreference = iota
	// PreferTemporary: socket bound to a physical (care-of) interface
	// address — send Out-DT, "honoring the application's desired source
	// address".
	PreferTemporary
	// PreferHome: socket explicitly pinned to the home address by a
	// mobile-aware application that wants durable transparent mobility
	// even for traffic the heuristics would shortcut.
	PreferHome
)

func (p AddressPreference) String() string {
	switch p {
	case PreferTemporary:
		return "temporary"
	case PreferHome:
		return "home"
	default:
		return "auto"
	}
}

// PortHeuristic decides whether traffic to a destination port can safely
// forgo Mobile IP (Section 7.1.1): "connections to port 80 are likely to
// be HTTP requests and can safely use Out-DT. Similarly, UDP packets
// addressed to UDP port 53 are likely to be DNS requests".
type PortHeuristic struct {
	// TemporaryOKPorts lists destination ports whose conversations are
	// short-lived enough to use the temporary address.
	TemporaryOKPorts map[uint16]bool
}

// DefaultPortHeuristic returns the paper's examples: HTTP and DNS.
func DefaultPortHeuristic() *PortHeuristic {
	return &PortHeuristic{TemporaryOKPorts: map[uint16]bool{
		80: true, // HTTP: "the user has the option of clicking ... 'reload'"
		53: true, // DNS: "connectionless datagram transactions"
	}}
}

// Allow marks a port as safe for Out-DT.
func (ph *PortHeuristic) Allow(port uint16) {
	if ph.TemporaryOKPorts == nil {
		ph.TemporaryOKPorts = make(map[uint16]bool)
	}
	ph.TemporaryOKPorts[port] = true
}

// TemporaryOK reports whether traffic to dstPort may forgo Mobile IP.
func (ph *PortHeuristic) TemporaryOK(dstPort uint16) bool {
	return ph != nil && ph.TemporaryOKPorts[dstPort]
}

// Decision is the full outcome of the mobile host's two-step choice
// (Section 7.1): first home vs temporary address, then — if home — which
// of the three home-address methods.
type Decision struct {
	Mode OutMode
	// Reason explains the decision for traces and tests.
	Reason string
}

// Decide runs the paper's decision procedure for one packet or connection
// setup:
//
//  1. An explicit application preference wins (socket binding, §7.1.1).
//  2. Otherwise the port heuristic may choose the temporary address.
//  3. Otherwise the home address is used and the Selector's per-
//     correspondent cache picks among Out-IE/Out-DE/Out-DH (§7.1.2).
func Decide(sel *Selector, ph *PortHeuristic, pref AddressPreference, dst ipv4.Addr, dstPort uint16) Decision {
	switch pref {
	case PreferTemporary:
		return Decision{Mode: OutDT, Reason: "socket bound to care-of address"}
	case PreferHome:
		return Decision{Mode: sel.ModeFor(dst), Reason: "socket pinned to home address; method cache"}
	}
	if ph.TemporaryOK(dstPort) && sel.TemporaryUsable(dst) {
		sel.NoteTemporary(dst)
		return Decision{Mode: OutDT, Reason: "port heuristic: short-lived service"}
	}
	return Decision{Mode: sel.ModeFor(dst), Reason: "method cache"}
}
