package core

import (
	"fmt"
	"strings"

	"mob4x4/internal/ipv4"
)

// ParseRules reads the user configuration format Section 7.1.2 sketches:
// "allow the user, as part of the configuration of a Mobile IP machine,
// to specify rules stating which addresses Mobile IP should begin using
// in an optimistic mode and which addresses it should begin using in a
// pessimistic mode. These rules could be specified similarly to the way
// routing table entries are currently specified, as an address and a mask
// value."
//
// One rule per line:
//
//	<prefix> <action>
//
// where action is one of:
//
//	optimistic        start conversations at Out-DH
//	pessimistic       start conversations at Out-IE
//	out-ie | out-de | out-dh
//	                  pin the mode outright (e.g. "the entire home
//	                  network [as] a region where Out-IE should always
//	                  be used")
//
// Blank lines and #-comments are ignored. Longer prefixes take precedence
// regardless of order (Selector semantics).
func ParseRules(text string) ([]Rule, error) {
	var rules []Rule
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("rules: line %d: want \"<prefix> <action>\", got %q", lineNo+1, raw)
		}
		prefix, err := ipv4.ParsePrefix(fields[0])
		if err != nil {
			return nil, fmt.Errorf("rules: line %d: %v", lineNo+1, err)
		}
		rule := Rule{Prefix: prefix}
		switch strings.ToLower(fields[1]) {
		case "optimistic":
			rule.Policy = StartOptimistic
		case "pessimistic":
			rule.Policy = StartPessimistic
		case "out-ie":
			m := OutIE
			rule.ForceMode = &m
		case "out-de":
			m := OutDE
			rule.ForceMode = &m
		case "out-dh":
			m := OutDH
			rule.ForceMode = &m
		default:
			return nil, fmt.Errorf("rules: line %d: unknown action %q", lineNo+1, fields[1])
		}
		rules = append(rules, rule)
	}
	return rules, nil
}

// LoadRules parses text and installs every rule into the selector.
func LoadRules(s *Selector, text string) error {
	rules, err := ParseRules(text)
	if err != nil {
		return err
	}
	for _, r := range rules {
		s.AddRule(r)
	}
	return nil
}

// FormatRules renders rules back into the configuration format
// (round-trips with ParseRules).
func FormatRules(rules []Rule) string {
	var b strings.Builder
	for _, r := range rules {
		action := r.Policy.String()
		if r.ForceMode != nil {
			action = strings.ToLower(r.ForceMode.String())
		}
		fmt.Fprintf(&b, "%s %s\n", r.Prefix, action)
	}
	return b.String()
}
