package core

import (
	"testing"

	"mob4x4/internal/ipv4"
)

func TestDefaultPortHeuristic(t *testing.T) {
	ph := DefaultPortHeuristic()
	if !ph.TemporaryOK(80) {
		t.Error("HTTP should be Out-DT-safe (the paper's example)")
	}
	if !ph.TemporaryOK(53) {
		t.Error("DNS should be Out-DT-safe (the paper's example)")
	}
	if ph.TemporaryOK(23) {
		t.Error("telnet must keep Mobile IP")
	}
	ph.Allow(8080)
	if !ph.TemporaryOK(8080) {
		t.Error("Allow failed")
	}
	var nilPH *PortHeuristic
	if nilPH.TemporaryOK(80) {
		t.Error("nil heuristic should deny")
	}
	empty := &PortHeuristic{}
	empty.Allow(443)
	if !empty.TemporaryOK(443) {
		t.Error("Allow on zero-value heuristic failed")
	}
}

func TestDecidePreferences(t *testing.T) {
	sel := NewSelector(StartPessimistic)
	ph := DefaultPortHeuristic()
	dst := ipv4.MustParseAddr("17.5.0.2")

	// §7.1.1: socket bound to the care-of address — Out-DT, always.
	d := Decide(sel, ph, PreferTemporary, dst, 23)
	if d.Mode != OutDT {
		t.Errorf("PreferTemporary: %s", d.Mode)
	}
	// Socket pinned to the home address: heuristics are bypassed even
	// for port 80.
	d = Decide(sel, ph, PreferHome, dst, 80)
	if d.Mode == OutDT {
		t.Errorf("PreferHome overridden by heuristic: %s", d.Mode)
	}
	// Unbound socket + HTTP: the port heuristic chooses Out-DT.
	d = Decide(sel, ph, PreferAuto, dst, 80)
	if d.Mode != OutDT {
		t.Errorf("port-80 heuristic: %s", d.Mode)
	}
	// Unbound + long-lived port: the method cache answers.
	d = Decide(sel, ph, PreferAuto, dst, 23)
	if d.Mode != OutIE { // pessimistic selector
		t.Errorf("auto long-lived: %s", d.Mode)
	}
	if d.Reason == "" {
		t.Error("decision lacks a reason")
	}
}

func TestDecideNilHeuristic(t *testing.T) {
	sel := NewSelector(StartOptimistic)
	d := Decide(sel, nil, PreferAuto, ipv4.MustParseAddr("17.5.0.2"), 80)
	if d.Mode != OutDH {
		t.Errorf("nil heuristic: %s", d.Mode)
	}
}

func TestAddressPreferenceString(t *testing.T) {
	for _, p := range []AddressPreference{PreferAuto, PreferTemporary, PreferHome} {
		if p.String() == "" {
			t.Error("preference string empty")
		}
	}
}

func TestCorrespondentPolicyUnaware(t *testing.T) {
	p := NewCorrespondentPolicy(false)
	home := ipv4.MustParseAddr("36.1.1.3")
	p.LearnBinding(Binding{Home: home, CareOf: ipv4.MustParseAddr("128.9.1.4")}) // ignored
	if got := p.ModeFor(home, false); got != InIE {
		t.Errorf("unaware CH mode = %s", got)
	}
	if _, ok := p.Binding(home); ok {
		t.Error("unaware CH learned a binding")
	}
	// But replies to a temporary-address initiation are In-DT even for
	// an unaware host — it just answers the source address.
	if got := p.ModeFor(ipv4.MustParseAddr("128.9.1.4"), true); got != InDT {
		t.Errorf("temp-initiated reply = %s", got)
	}
}

func TestCorrespondentPolicyAware(t *testing.T) {
	p := NewCorrespondentPolicy(true)
	home := ipv4.MustParseAddr("36.1.1.3")
	coa := ipv4.MustParseAddr("128.9.1.4")

	if got := p.ModeFor(home, false); got != InIE {
		t.Errorf("no binding yet: %s", got)
	}
	p.LearnBinding(Binding{Home: home, CareOf: coa})
	if got := p.ModeFor(home, false); got != InDE {
		t.Errorf("with binding: %s", got)
	}
	p.NoteOnLink(home, true)
	if got := p.ModeFor(home, false); got != InDH {
		t.Errorf("on-link: %s", got)
	}
	p.NoteOnLink(home, false)
	if got := p.ModeFor(home, false); got != InDE {
		t.Errorf("off-link again: %s", got)
	}
	p.ForgetBinding(home)
	if got := p.ModeFor(home, false); got != InIE {
		t.Errorf("after forget: %s", got)
	}
}
