package fleet

import (
	"reflect"
	"testing"

	"mob4x4/internal/netsim"
)

// advOpts arms the CI-sized fleet with authentication and the full
// adversarial storm.
func advOpts(seed int64) Options {
	o := smallOpts(seed)
	o.Auth = true
	o.Attack.Enabled = true
	return o
}

func TestFleetAdversaryInvariants(t *testing.T) {
	outstanding := netsim.BufOutstanding()
	r := New(advOpts(1)).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if got := netsim.BufOutstanding(); got != outstanding {
		t.Errorf("pooled buffers outstanding drifted %d -> %d across the run", outstanding, got)
	}
	if r.Hijacks != 0 {
		t.Fatalf("authenticated fleet lost %d bindings to attackers", r.Hijacks)
	}
	if r.Forged == 0 || r.Replayed == 0 || r.Tampered == 0 {
		t.Fatalf("storm idle: forged=%d replayed=%d tampered=%d", r.Forged, r.Replayed, r.Tampered)
	}
	if r.AuthBadMACDrops == 0 || r.AuthReplayDrops == 0 || r.AuthStaleDrops == 0 {
		t.Fatalf("reject causes not all exercised: bad_mac=%d replay=%d stale=%d",
			r.AuthBadMACDrops, r.AuthReplayDrops, r.AuthStaleDrops)
	}
	if r.AttackAccepted != 0 {
		t.Fatalf("%d attack messages got an acceptance reply", r.AttackAccepted)
	}
	if r.DeniedBadMAC != r.Forged+r.Tampered {
		t.Fatalf("bad-MAC receipts %d != forged %d + tampered %d", r.DeniedBadMAC, r.Forged, r.Tampered)
	}
	if r.DeniedReplay+r.DeniedStale != r.Replayed {
		t.Fatalf("replay %d + stale %d receipts != %d replayed", r.DeniedReplay, r.DeniedStale, r.Replayed)
	}
}

// TestFleetAdversaryNegativeControl runs the same storm against an
// unauthenticated fleet: the thieves must win (bindings hijacked),
// which is the invariant that proves the attack — and therefore E15's
// zero-hijack result — is real.
func TestFleetAdversaryNegativeControl(t *testing.T) {
	o := smallOpts(1)
	o.Attack.Enabled = true
	r := New(o).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if r.Hijacks == 0 {
		t.Fatal("unauthenticated fleet under attack lost no binding; the storm is toothless")
	}
}

// TestFleetAuthCleanRun checks the authenticated fleet without any
// attack: the security machinery must be invisible — no auth rejects,
// all the usual invariants.
func TestFleetAuthCleanRun(t *testing.T) {
	o := smallOpts(1)
	o.Auth = true
	r := New(o).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if n := r.AuthBadMACDrops + r.AuthReplayDrops + r.AuthStaleDrops; n != 0 {
		t.Fatalf("clean authenticated run tripped %d auth rejects", n)
	}
}

func TestFleetAdversaryDeterministicRepeat(t *testing.T) {
	a := New(advOpts(7)).Run()
	b := New(advOpts(7)).Run()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed, same options: adversary results differ")
	}
}

func TestFleetAdversaryWorkerInvariant(t *testing.T) {
	serial := New(advOpts(3)).Run()
	opts := advOpts(3)
	opts.Workers = 4
	parallel := New(opts).Run()
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("adversary result depends on worker count")
	}
}
