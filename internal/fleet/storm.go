package fleet

import (
	"fmt"

	"mob4x4/internal/core"
	"mob4x4/internal/faults"
	"mob4x4/internal/metrics"
	"mob4x4/internal/routeopt"
	"mob4x4/internal/vtime"
)

// Result is one fleet trial's deterministic outcome: a pure function of
// the Options (see the package determinism contract).
type Result struct {
	Seed  int64
	Nodes int
	Cells int
	Model string

	// Handoff machinery.
	Moves    uint64 // attach/reattach events commanded
	Handoffs uint64 // completed (registration re-confirmed) handoffs
	// Handoff latency quantiles, nanoseconds of vtime from attachment
	// to the accepted registration reply.
	HandoffP50 int64
	HandoffP95 int64
	HandoffP99 int64

	// Traffic mix: the joint (Out, In) matrix of workload conversations
	// (rows = Out mode of the request, columns = In mode of its reply),
	// plus the marginal per-mode totals from the nodes' own counters.
	ModeMix   [core.NumOutModes][core.NumInModes]uint64
	OutByMode [core.NumOutModes]uint64
	InByMode  [core.NumInModes]uint64

	// Registration machinery totals across the fleet.
	Registrations     uint64
	Renewals          uint64
	RegistrationFails uint64
	RecoveryProbes    uint64
	Expiries          uint64 // bindings the home agent timed out

	// End-of-run state.
	RegisteredAtEnd int // nodes holding a confirmed binding at EndAt
	BindingsAtEnd   int // home agent's table size at EndAt

	// FacadeEchoes counts conversations the far facade echo server
	// answered: the clsFacade workload (both ends on internal/sock core
	// sockets) completing round trips inside the sharded engine.
	FacadeEchoes uint64

	// Drop accounting, from the shared drop-cause vector.
	DownDrops   uint64 // partition-window losses
	FilterDrops uint64 // boundary-filter losses
	NoDestDrops uint64 // frames to detached radios

	// Adversarial storm accounting (zero unless Opts.Attack.Enabled).
	// The Denied* receipts are reply codes tallied at the attackers'
	// own sockets, so attack attribution stays exact even when
	// legitimate traffic earns a (correct) reject of its own — e.g. a
	// reordered in-flight registration refused as stale.
	Forged         uint64 // registrations forged by binding thieves
	Replayed       uint64 // captured registrations re-emitted by the replayer
	Tampered       uint64 // captures re-emitted with inflated lifetimes
	Hijacks        uint64 // bindings that ever pointed at an attacker care-of address
	AttackAccepted uint64 // attack messages the home agent accepted (must stay 0)
	DeniedBadMAC   uint64 // CodeDeniedAuthFailed receipts at the attackers
	DeniedReplay   uint64 // CodeDeniedReplay receipts
	DeniedStale    uint64 // CodeDeniedStaleID receipts

	// Route-optimization tier accounting (zero unless Opts.RouteOpt is
	// engaged). Push* sums the MN-push and HA-push engines; CHUpdates*
	// is the aware correspondent's receiver; Recovery* quantifies how
	// long the aware correspondent routed against stale binding
	// information after each real movement (nanoseconds of vtime).
	PushUpdatesSent   uint64
	PushAcks          uint64
	PushNacks         uint64
	PushRetransmits   uint64
	PushAbandons      uint64
	CHUpdatesAccepted uint64
	CHUpdatesRefused  uint64
	RecoverySamples   uint64
	RecoveryP50       int64
	RecoveryP95       int64

	// Hierarchical tier accounting.
	RegionalRegistrations uint64 // gateway-accepted regional registrations
	RegionalDenied        uint64
	LocalRegFails         uint64 // registrar-side denials + exhausted retries
	GFADownRelayed        uint64 // HA→gateway tunnels re-tunneled to a cell
	GFAUpRelayed          uint64 // reverse tunnels relayed on to the HA
	GFANoBinding          uint64

	// UplinkBytes is the byte count carried by the home uplink segment
	// — the link the hierarchical tier keeps intra-metro handoffs off.
	UplinkBytes uint64
	// BlackholeDrops counts update requests eaten by the fault-injected
	// blackhole (RouteOpt.BlackholeUpdates).
	BlackholeDrops uint64

	// Auth rejects from the shared drop-cause vector: the agents' view.
	// Superset of the attacker receipts when legitimate traffic was
	// reordered in flight.
	AuthBadMACDrops uint64 // auth_bad_mac rejects
	AuthReplayDrops uint64 // auth_replay rejects
	AuthStaleDrops  uint64 // auth_stale_id rejects

	FaultLog          []string
	PendingAfterDrain int
	Metrics           metrics.Snapshot
	Violations        []string
}

// Run executes the handoff-storm schedule and returns the trial result:
//
//	[0, PlaceWindow)          staggered initial placement
//	[..., PartitionAt)        steady roaming + workload
//	[PartitionAt, +For)       home uplink dark: registrations die
//	heal                      thundering-herd re-registration
//	[MassMoveAt, +Window)     every node commanded to move at once
//	[..., EndAt)              cooldown; all bindings must re-form
//
// followed by measurement, cleanup and a full drain.
func (f *Fleet) Run() Result {
	opts := f.Opts
	sched := f.Net.Sched() // hub shard: placement and faults start there
	t0 := f.Net.Sim.Now()
	at := func(d vtime.Duration) vtime.Time { return t0.Add(d) }
	inj := faults.NewInjector(f.Net.Sim)

	// Placement: spread initial attachments across the window, each
	// jittered a little by the node's own RNG. Placement events run on
	// the hub shard, where every node starts; the hop migrates it out.
	// (The ticker starts on migration arrival, like after any crossing.)
	inj.At(at(0), fmt.Sprintf("placement: %d nodes over %v", len(f.Nodes), opts.PlaceWindow), nil)
	for _, n := range f.Nodes {
		n := n
		off := vtime.Duration(int64(opts.PlaceWindow) * int64(n.Idx) / int64(len(f.Nodes)))
		off += vtime.Duration(n.rng.Int63n(int64(20 * millisecond)))
		sched.At(at(off), func() { f.hop(n) })
	}

	// The partition: home network unreachable mid-churn. The uplink is a
	// hub-internal segment, so the fault runs entirely on the hub shard.
	inj.CutLink(at(opts.PartitionAt), f.HomeUplink, opts.PartitionFor)

	// The adversarial storm, when armed: forge/capture/replay windows
	// placed around the partition, never inside it.
	if f.attack != nil {
		f.scheduleAttack(inj, at)
	}

	// The mass-move storm: every node commanded to move inside the
	// window. The jitter is drawn per node now (setup, index order) so
	// the command times are deterministic; the command timer itself
	// travels with the node across migrations (see armCmd).
	inj.At(at(opts.MassMoveAt), fmt.Sprintf("mass-move storm: %d nodes over %v", len(f.Nodes), opts.MassMoveWindow), nil)
	for _, n := range f.Nodes {
		j := vtime.Duration(n.rng.Int63n(int64(opts.MassMoveWindow)))
		n.cmdAt = at(opts.MassMoveAt).Add(j)
	}

	// Quiesce: movement stops a little before the end so the final
	// handoffs can complete and the end-of-run binding census is
	// well-defined (workload traffic keeps flowing). The flags are
	// per-region (each shard reads only its own), so the flip is an event
	// on every shard; the injector lines just log the schedule.
	inj.At(at(opts.EndAt-opts.QuiesceFor), "movement quiesced", nil)
	inj.At(at(opts.EndAt), "measurement ends", nil)
	for r, sim := range f.Net.Regions() {
		rs := f.rs[r]
		sim.Sched.At(at(opts.EndAt-opts.QuiesceFor), func() { rs.movementOn = false })
		sim.Sched.At(at(opts.EndAt), func() { rs.trafficOn = false })
	}
	f.group.RunUntil(at(opts.EndAt), opts.Workers)

	// --- Measurement, before any cleanup disturbs the state. The
	// workers have joined, so reading across regions is safe; per-region
	// registries and accumulators merge into one cluster-wide view
	// (histograms merge bucket-exactly, so the quantiles equal a
	// single-registry run's). ---
	res := Result{
		Seed:  opts.Seed,
		Nodes: opts.Nodes,
		Cells: opts.Cells,
		Model: opts.Model,
	}
	merged := f.mergedMetrics()
	hist := merged.Histogram("fleet/handoff_ns", handoffBuckets())
	res.HandoffP50 = hist.Quantile(0.50)
	res.HandoffP95 = hist.Quantile(0.95)
	res.HandoffP99 = hist.Quantile(0.99)
	for _, rs := range f.rs {
		res.Handoffs += rs.handoffs
		for o := 0; o < core.NumOutModes; o++ {
			for i := 0; i < core.NumInModes; i++ {
				res.ModeMix[o][i] += rs.modeMix[o][i]
			}
		}
	}
	for _, n := range f.Nodes {
		st := &n.MN.Stats
		res.Moves += st.Moves
		res.Registrations += st.Registrations
		res.Renewals += st.Renewals
		res.RegistrationFails += st.RegistrationFails
		res.RecoveryProbes += st.RecoveryProbes
		for m := 0; m < core.NumOutModes; m++ {
			res.OutByMode[m] += st.OutByMode[m]
		}
		for m := 0; m < core.NumInModes; m++ {
			res.InByMode[m] += st.InByMode[m]
		}
		if n.MN.Registered() {
			res.RegisteredAtEnd++
		}
	}
	if opts.RouteOpt.engaged() {
		tallyPush := func(st *routeopt.PushStats) {
			res.PushUpdatesSent += st.UpdatesSent
			res.PushAcks += st.Acks
			res.PushNacks += st.Nacks
			res.PushRetransmits += st.Retransmits
			res.PushAbandons += st.Abandons
		}
		for _, n := range f.Nodes {
			if n.up != nil {
				tallyPush(&n.up.Stats)
			}
			if n.lr != nil {
				res.LocalRegFails += n.lr.Stats.Fails
			}
		}
		if f.hup != nil {
			tallyPush(&f.hup.Stats)
		}
		res.CHUpdatesAccepted = f.recvAware.Stats.Accepted
		res.CHUpdatesRefused = f.recvAware.Stats.Refused
		rhist := merged.Histogram("routeopt/recovery_ns", recoveryBuckets())
		res.RecoverySamples = rhist.Count()
		res.RecoveryP50 = rhist.Quantile(0.50)
		res.RecoveryP95 = rhist.Quantile(0.95)
		if f.GFA != nil {
			res.RegionalRegistrations = f.GFA.Stats.Registrations
			res.RegionalDenied = f.GFA.Stats.Denied
			res.GFADownRelayed = f.GFA.Stats.DownRelayed
			res.GFAUpRelayed = f.GFA.Stats.UpRelayed
			res.GFANoBinding = f.GFA.Stats.NoBinding
		}
		res.BlackholeDrops = merged.DropCount(metrics.DropBlackhole)
	}
	res.UplinkBytes = f.HomeUplink.BytesCarried
	res.Expiries = f.HA.Stats.Expiries
	res.BindingsAtEnd = f.HA.Bindings()
	res.FacadeEchoes = f.facadeEchoes
	res.DownDrops = merged.DropCount(metrics.DropDown)
	res.FilterDrops = merged.DropCount(metrics.DropFilter)
	res.AuthBadMACDrops = merged.DropCount(metrics.DropAuthBadMAC)
	res.AuthReplayDrops = merged.DropCount(metrics.DropAuthReplay)
	res.AuthStaleDrops = merged.DropCount(metrics.DropAuthStaleID)
	if f.attack != nil {
		tally := func(d *faults.Denials) {
			res.AttackAccepted += d.Accepted
			res.DeniedBadMAC += d.BadMAC
			res.DeniedReplay += d.Replay
			res.DeniedStale += d.Stale
		}
		for _, th := range f.attack.thieves {
			res.Forged += th.Forged
			tally(&th.Denials)
		}
		for _, r := range f.attack.replayers {
			res.Replayed += r.Replayed
			tally(&r.Denials)
		}
		for _, rg := range f.attack.rogues {
			res.Tampered += rg.Tampered
			tally(&rg.Denials)
		}
		res.Hijacks = f.attack.hijacks
	}
	res.FaultLog = inj.Log()

	// --- Cleanup: everything the run started must wind down.
	// Single-threaded across all regions (workers joined). ---
	for _, n := range f.Nodes {
		n.stopped = true
		n.moveTimer.Stop()
		n.tickTimer.Stop()
		n.cmdTimer.Stop()
		n.MN.Detach() // also cancels the registration timers
		n.sock.Close()
		if n.fconn != nil {
			n.fconn.CloseCore()
		}
		if n.up != nil {
			n.up.Close()
		}
		if n.lr != nil {
			n.lr.Close()
		}
	}
	for _, c := range f.Cells {
		if c.FA != nil {
			c.FA.Crash() // drops the visitor table and its expiry timers
		}
		c.kioskCancel()
		c.kioskSrv.Close()
	}
	f.probeSrv.Close()
	f.facadeSrv.CloseCore()
	if f.hup != nil {
		f.hup.Close()
	}
	if f.recvAware != nil {
		f.recvAware.Close()
	}
	if f.GFA != nil {
		f.GFA.Close()
	}
	f.closeAttackers()
	for _, cancel := range f.cancels {
		cancel()
	}
	// The agent last: Crash resets the binding table and disarms the
	// expiry wheel together (the pairing the wheel's staleness contract
	// requires), leaving zero pending expiry timers.
	f.HA.Crash()
	f.Net.Run() // drain remaining one-shot timers (ARP, binding expiry)
	res.PendingAfterDrain = f.group.Pending()
	// Re-merge after the drain: the drain itself drops frames to crashed
	// agents and detached radios, and those must appear in the exported
	// snapshot and the no-destination total.
	drained := f.mergedMetrics()
	res.NoDestDrops = drained.DropCount(metrics.DropNoDest)
	res.Metrics = drained.Snapshot()

	res.Violations = f.invariants(&res)
	return res
}

// mergedMetrics folds every region registry into a fresh one. Quiescent
// callers only (build or post-join).
func (f *Fleet) mergedMetrics() *metrics.Registry {
	merged := metrics.NewRegistry()
	for _, sim := range f.Net.Regions() {
		merged.Merge(sim.Metrics)
	}
	return merged
}

// invariants checks a finished trial against the fleet contract.
func (f *Fleet) invariants(r *Result) []string {
	var v []string
	bad := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if f.Opts.Attack.Enabled && !f.Opts.Auth {
		// Negative control: an unauthenticated fleet under the same
		// storm is EXPECTED to lose bindings — that it does is itself
		// the invariant. The re-formation checks below would (rightly)
		// fail here, so only the engine contract still applies.
		if r.Hijacks == 0 {
			bad("attack storm against an unauthenticated fleet stole no binding")
		}
		if r.PendingAfterDrain != 0 {
			bad("%d scheduler events leaked after cleanup", r.PendingAfterDrain)
		}
		return v
	}
	if f.Opts.Attack.Enabled {
		if r.Hijacks != 0 {
			bad("%d bindings pointed at an attacker care-of address", r.Hijacks)
		}
		if r.AttackAccepted != 0 {
			bad("home agent accepted %d attack messages", r.AttackAccepted)
		}
		if r.Forged == 0 || r.Replayed == 0 || r.Tampered == 0 {
			bad("attack storm idle: forged=%d replayed=%d tampered=%d",
				r.Forged, r.Replayed, r.Tampered)
		}
		// Exact attribution, checked at the attackers' own sockets:
		// every attack message drew a denial with the cause its kind
		// predicts. Forgeries and tampered relays carry unverifiable
		// MACs; re-emitted genuine bytes die on the identification
		// window, promptly as duplicates, late as stale.
		if r.DeniedBadMAC != r.Forged+r.Tampered {
			bad("attackers received %d bad-MAC denials for %d forged + %d tampered messages",
				r.DeniedBadMAC, r.Forged, r.Tampered)
		}
		if r.DeniedReplay+r.DeniedStale != r.Replayed {
			bad("replayer received %d replay + %d stale denials for %d replayed messages",
				r.DeniedReplay, r.DeniedStale, r.Replayed)
		}
		if r.DeniedReplay == 0 {
			bad("prompt replays drew no duplicate-identification denials")
		}
		if r.DeniedStale == 0 {
			bad("late replays drew no stale-identification denials")
		}
		// The registry tells the same story: every receipt has its drop,
		// with equality except where legitimate reordering adds rejects
		// of its own (possible for replay/stale, impossible for MAC
		// failures — honest parties always sign correctly).
		if r.AuthBadMACDrops != r.DeniedBadMAC {
			bad("auth_bad_mac drops %d != %d bad-MAC denials received", r.AuthBadMACDrops, r.DeniedBadMAC)
		}
		if r.AuthReplayDrops < r.DeniedReplay || r.AuthStaleDrops < r.DeniedStale {
			bad("registry rejects (replay=%d stale=%d) below attacker receipts (replay=%d stale=%d)",
				r.AuthReplayDrops, r.AuthStaleDrops, r.DeniedReplay, r.DeniedStale)
		}
	} else if f.Opts.Auth {
		// Clean authenticated run: legitimate traffic must never fail a
		// MAC check or duplicate an identification. Stale rejects are
		// permitted — a reordered in-flight registration is rightly
		// refused rather than rolled back onto a stale care-of address.
		if r.AuthBadMACDrops != 0 || r.AuthReplayDrops != 0 {
			bad("legitimate traffic tripped auth rejects: bad_mac=%d replay=%d",
				r.AuthBadMACDrops, r.AuthReplayDrops)
		}
	}
	ro := f.Opts.RouteOpt
	pushing := ro.PushUpdates || ro.PushFromHA
	if pushing && ro.BlackholeUpdates {
		// The fallback proof: with every update request eaten, the push
		// tier must fail hard — retries exhausted, nothing acked,
		// nothing learned — while the conversation-survival checks
		// below still hold via In-IE triangle routing.
		if r.PushAcks != 0 || r.CHUpdatesAccepted != 0 {
			bad("blackholed binding updates got through: acks=%d accepted=%d",
				r.PushAcks, r.CHUpdatesAccepted)
		}
		if r.PushUpdatesSent == 0 || r.PushAbandons == 0 {
			bad("blackholed push tier idle: sent=%d abandons=%d",
				r.PushUpdatesSent, r.PushAbandons)
		}
		if r.BlackholeDrops == 0 {
			bad("blackhole armed but ate no update request")
		}
	} else if pushing && !(ro.PushFromHA && !ro.PushUpdates && ro.Hierarchical) {
		// (HA-push under the hierarchical tier is degenerate — the home
		// agent sees one stable address per node and never pushes — so
		// the liveness check skips that combination.)
		if r.PushUpdatesSent == 0 {
			bad("push tier enabled but no update was ever sent")
		}
		if r.PushAcks == 0 {
			bad("no push was ever acknowledged")
		}
	}
	if ro.Hierarchical {
		if r.RegionalRegistrations == 0 {
			bad("hierarchical tier enabled but the gateway accepted no registration")
		}
		if r.GFADownRelayed == 0 {
			bad("gateway never re-tunneled home-agent traffic to a cell")
		}
	}
	if r.RegisteredAtEnd != r.Nodes {
		bad("only %d/%d nodes hold a confirmed binding at end of run", r.RegisteredAtEnd, r.Nodes)
	}
	if r.BindingsAtEnd != r.Nodes {
		bad("home agent holds %d bindings at end, want %d (every node away)", r.BindingsAtEnd, r.Nodes)
	}
	if r.Handoffs == 0 {
		bad("no handoff ever completed")
	}
	if r.Handoffs > r.Moves {
		bad("%d handoffs completed but only %d moves commanded", r.Handoffs, r.Moves)
	}
	if r.DownDrops == 0 {
		bad("partition window dropped nothing; the storm never bit")
	}
	if f.Opts.Nodes >= numClasses && r.FacadeEchoes == 0 {
		bad("facade workload class completed no conversations")
	}
	expectFilterDrops := false
	for _, rs := range f.rs {
		expectFilterDrops = expectFilterDrops || rs.expectFilterDrops
	}
	if expectFilterDrops && r.FilterDrops == 0 {
		bad("home-sourced traffic left a filtered cell but the boundary filter dropped nothing")
	}
	var mixTotal, inTotal uint64
	for _, row := range r.ModeMix {
		for _, c := range row {
			mixTotal += c
		}
	}
	for _, c := range r.InByMode {
		inTotal += c
	}
	if mixTotal > inTotal {
		bad("mode-mix matrix attributes %d replies but only %d packets arrived", mixTotal, inTotal)
	}
	if r.PendingAfterDrain != 0 {
		bad("%d scheduler events leaked after cleanup", r.PendingAfterDrain)
	}
	return v
}
