package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"mob4x4/internal/assert"
	"mob4x4/internal/faults"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/vtime"
)

// The adversarial storm: fleet-side wiring for the faults package's
// attack actors (binding thieves, replayer, rogue agents) plus the
// hijack monitor that decides E15. Everything here is built before
// routes are computed and scheduled before the run starts; during the
// run each actor's events execute on its own region's shard, so the
// attack adds no cross-shard traffic beyond the packets it sends.

// attackRngBase offsets the attackers' rngFor streams past any node
// index (rngFor streams are disjoint below one million).
const attackRngBase = 500_000

// maxCapturesPerActor bounds how many requests a tap keeps.
const maxCapturesPerActor = 32

// rogueTamperDelay is the lag between a rogue's capture and its
// tampered re-emission — a relay that thinks before it rewrites.
const rogueTamperDelay = 50 * millisecond

// attackState holds the built adversarial actors and the hijack count.
type attackState struct {
	thieves   []*faults.BindingThief
	replayers []*faults.Replayer
	rogues    []*faults.RogueFA

	// attackerAddrs marks every attacker source address. Written only
	// during build; read-only during the run (taps on any shard consult
	// it, which is safe precisely because nothing writes it anymore).
	attackerAddrs map[ipv4.Addr]bool

	// hijacks counts bindings that ever pointed at an attacker care-of
	// address. Written only by the home agent's OnBind hook, i.e. on
	// the hub shard.
	hijacks uint64
}

// authKeyFor derives node idx's registration key from the fleet seed.
// Deterministic and per-node distinct; the node's and the home agent's
// authenticators are built from it separately, so no HMAC state is
// shared across shards.
func authKeyFor(seed int64, idx int) []byte {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], uint64(seed))
	binary.BigEndian.PutUint64(b[8:], uint64(idx))
	sum := sha256.Sum256(b[:])
	return sum[:]
}

// authSPIFor names node idx's mobility security association.
func authSPIFor(idx int) uint32 { return 0x4d4e_0000 + uint32(idx) }

// buildAttackers constructs the adversarial hosts and actors. Called
// from buildTopology after the home agent exists and before routes are
// computed (the attackers need routes like anyone else). No-op unless
// the storm is armed.
func (f *Fleet) buildAttackers() {
	if !f.Opts.Attack.Enabled {
		return
	}
	a := f.Opts.Attack
	n := f.Net
	ak := &attackState{attackerAddrs: make(map[ipv4.Addr]bool)}
	f.attack = ak
	// skip filters attacker-sourced frames out of the taps: without it a
	// tap would capture another actor's (or its own) emissions and the
	// exact-attribution invariant would double-count.
	skip := func(src ipv4.Addr) bool { return ak.attackerAddrs[src] }

	for k := 0; k < a.Thieves; k++ {
		c := k % f.Opts.Cells
		n.SetBuildRegion(regionOf(c))
		host := n.AddHost(fmt.Sprintf("thief%d", k), f.Cells[c].LAN)
		th, err := faults.NewBindingThief(host, f.HA.Addr())
		assert.NoError(err, "fleet: binding thief")
		ak.attackerAddrs[th.Addr()] = true
		ak.thieves = append(ak.thieves, th)
	}
	for k := 0; k < a.Rogues; k++ {
		c := (2*k + 1) % f.Opts.Cells
		n.SetBuildRegion(regionOf(c))
		host := n.AddHost(fmt.Sprintf("rogue%d", k), f.Cells[c].LAN)
		rg, err := faults.NewRogueFA(host, f.Cells[c].LAN.Seg, f.HA.Addr(),
			maxCapturesPerActor, rogueTamperDelay, skip)
		assert.NoError(err, "fleet: rogue agent")
		ak.attackerAddrs[rg.Addr()] = true
		ak.rogues = append(ak.rogues, rg)
	}
	for k := 0; k < a.Replayers; k++ {
		n.SetBuildRegion(0)
		host := n.AddHost(fmt.Sprintf("replayer%d", k), f.HomeLAN)
		r, err := faults.NewReplayer(host, f.HomeLAN.Seg,
			maxCapturesPerActor, a.ReplayDelay, skip)
		assert.NoError(err, "fleet: replayer")
		ak.attackerAddrs[r.Host().FirstAddr()] = true
		ak.replayers = append(ak.replayers, r)
	}
	n.SetBuildRegion(0)

	// The hijack monitor: fires on the hub shard for every binding the
	// home agent installs. A single binding to an attacker care-of
	// address is the failure E15 exists to rule out.
	f.HA.OnBind = func(home, careOf ipv4.Addr) {
		if ak.attackerAddrs[careOf] {
			ak.hijacks++
		}
	}
}

// scheduleAttack lays the adversarial plan into the shard schedulers:
// hub-side injector lines document the plan in the fault log, and each
// actor's actions are scheduled on its own region's scheduler. Called
// from Run before the workers start.
func (f *Fleet) scheduleAttack(inj *faults.Injector, at func(vtime.Duration) vtime.Time) {
	a := f.Opts.Attack
	ak := f.attack

	inj.At(at(a.ForgeAt), fmt.Sprintf("attack: %d thieves forge %d registrations over %v",
		len(ak.thieves), len(ak.thieves)*a.ForgeCount, a.ForgeWindow), nil)
	for k, th := range ak.thieves {
		th := th
		rng := rngFor(f.Opts.Seed, attackRngBase+k)
		sched := th.Host().Sched()
		for i := 0; i < a.ForgeCount; i++ {
			victim := f.Nodes[rng.Intn(len(f.Nodes))].MN.Home()
			off := a.ForgeAt + vtime.Duration(int64(a.ForgeWindow)*int64(i)/int64(a.ForgeCount))
			off += vtime.Duration(rng.Int63n(int64(10 * millisecond)))
			// Alternate between naked forgeries (no extension) and ones
			// carrying a fabricated MAC, covering both denial paths.
			bogus := i%2 == 1
			sched.At(at(off), func() { th.Forge(victim, bogus) })
		}
	}

	for _, r := range ak.replayers {
		r := r
		sched := r.Host().Sched()
		inj.At(at(a.CaptureAt), fmt.Sprintf("attack: replayer taps home LAN for %v, prompt replay +%v",
			a.CaptureFor, a.ReplayDelay), nil)
		sched.At(at(a.CaptureAt), r.StartCapture)
		sched.At(at(a.CaptureAt+a.CaptureFor), r.StopCapture)
		inj.At(at(a.LateReplayAt), fmt.Sprintf("attack: late replay of up to %d captures", a.LateReplays), nil)
		sched.At(at(a.LateReplayAt), func() { r.ReplayCaptured(a.LateReplays) })
	}

	for k, rg := range ak.rogues {
		rg := rg
		sched := rg.Host().Sched()
		inj.At(at(a.CaptureAt), fmt.Sprintf("attack: rogue agent %d taps its cell for %v", k, a.CaptureFor), nil)
		sched.At(at(a.CaptureAt), rg.StartRelay)
		sched.At(at(a.CaptureAt+a.CaptureFor), rg.StopRelay)
		// A few lure beacons across the window: fleet nodes attach by
		// command and ignore them, but the broadcasts cross the cell
		// under attack load.
		for b := 0; b < 3; b++ {
			off := a.CaptureAt + vtime.Duration(int64(a.CaptureFor)*int64(b)/3)
			sched.At(at(off), rg.AdvertiseOnce)
		}
	}
}

// closeAttackers winds the actors down during cleanup: taps off,
// sockets closed. Counters stay readable.
func (f *Fleet) closeAttackers() {
	if f.attack == nil {
		return
	}
	for _, th := range f.attack.thieves {
		th.Close()
	}
	for _, r := range f.attack.replayers {
		r.Close()
	}
	for _, rg := range f.attack.rogues {
		rg.Close()
	}
}

// provisionAuth equips node idx with its authenticator and registers
// the matching association at the home agent. Two authenticators are
// built from the same key: the node's lives on whatever shard the node
// roams to, the agent's on the hub, and neither shares HMAC state.
func (f *Fleet) provisionAuth(idx int, home ipv4.Addr) *mobileip.Authenticator {
	key := authKeyFor(f.Opts.Seed, idx)
	spi := authSPIFor(idx)
	f.HA.ProvisionKey(home, spi, key)
	return mobileip.NewAuthenticator(spi, key)
}
