package fleet

import (
	"fmt"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/faults"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/routeopt"
	"mob4x4/internal/sock"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// buildTopology constructs the metro: home network and agent, a routed
// backbone, K visited cells (each with gateway, foreign agent and
// kiosk), and a far network of correspondents.
//
//	home(36.1/16) --hagw-- bb0 -- bb1 -- ... -- bbB-1 --fargw-- far(17.5.1/24)
//	                        |      |             |
//	                     cell0   cell1  ...   cellK-1   (10.(i+1)/16, i%B)
func (f *Fleet) buildTopology() {
	n := f.Net
	opts := f.Opts

	f.HomeLAN = n.AddLAN("home", "36.1.0.0/16", netsim.SegmentOpts{Latency: 1 * millisecond})
	hagw := n.AddRouter("hagw")
	n.AttachRouter(hagw, f.HomeLAN)

	bb := n.Chain("bb", opts.Backbone, 5*millisecond)
	n.Link(hagw, bb[0], 2*millisecond)

	far := n.AddLAN("far", "17.5.1.0/24", netsim.SegmentOpts{Latency: 1 * millisecond})
	fargw := n.AddRouter("fargw")
	n.AttachRouter(fargw, far)
	n.Link(fargw, bb[len(bb)-1], 8*millisecond)

	// Far correspondents: one per reply style.
	// chNaive is a conventional 1996 host: it answers pings to whatever
	// source address they carried; replies to the home address arrive
	// In-IE via the home agent's tunnel.
	chNaiveHost := n.AddHost("ch-naive", far)
	icmphost.Install(chNaiveHost)
	f.chNaive = chNaiveHost.FirstAddr()

	// chAware is mobile-aware: it learns bindings from the home agent's
	// notices and switches its replies to In-DE. It can also
	// decapsulate, so nodes may send to it Out-DE. The route-
	// optimization tier hangs its binding-update receiver off this
	// correspondent — the other correspondents stay update-deaf, so
	// pushes to them exhaust their retries and the TTL fallback carries
	// the conversation.
	chAwareHost := n.AddHost("ch-aware", far)
	chAwareIC := icmphost.Install(chAwareHost)
	f.chAwareC = mobileip.NewCorrespondent(chAwareHost, chAwareIC, mobileip.CorrespondentConfig{
		MobileAware:    true,
		CanDecapsulate: true,
		Codec:          f.tunnelCodec(ipv4.Zero),
	})
	f.chAware = chAwareHost.FirstAddr()
	if opts.RouteOpt.engaged() {
		recv, err := routeopt.NewReceiver(f.chAwareC, routeopt.ReceiverConfig{
			RequireAuth: opts.Auth,
		})
		assert.NoError(err, "fleet: binding-update receiver")
		f.recvAware = recv
	}

	// chProbe answers UDP probes on port 53; the port heuristic elects
	// Out-DT for them, and the echoed reply comes back In-DT.
	chProbeHost := n.AddHost("ch-probe", far)
	f.chProbe = chProbeHost.FirstAddr()
	probeSrv, err := chProbeHost.OpenUDP(ipv4.Zero, 53,
		func(src ipv4.Addr, srcPort uint16, _ ipv4.Addr, payload []byte) {
			_ = f.probeSrv.SendTo(src, srcPort, payload)
		})
	assert.NoError(err, "fleet: open probe server")
	f.probeSrv = probeSrv

	// chFacade answers UDP echoes through the socket facade's core layer:
	// both ends of a clsFacade conversation run on facade sockets, no
	// driver goroutines, proving the facade inside the sharded engine.
	chFacadeHost := n.AddHost("ch-facade", far)
	f.chFacade = chFacadeHost.FirstAddr()
	facadeSrv, err := sock.NewNet(nil, chFacadeHost, nil).ListenPacketCore(sock.Addr{Port: portFacade})
	assert.NoError(err, "fleet: open facade echo server")
	f.facadeSrv = facadeSrv
	facadeBuf := make([]byte, 64)
	facadeSrv.SetEvent(func() {
		for {
			nr, src, ok, rerr := facadeSrv.TryReadFrom(facadeBuf)
			if !ok || rerr != nil {
				return
			}
			f.facadeEchoes++
			_ = facadeSrv.WriteToCore(facadeBuf[:nr], src)
		}
	})

	// The visited cells. Cell i hangs off backbone router i%B with a
	// small deterministic latency spread, so handoff latency varies by
	// destination cell. Each cell is its own region shard: the LAN, the
	// gateway, the foreign agent and the kiosk all live there, and the
	// gateway's backbone link — latency >= 2ms by construction — becomes
	// the shard pair's conservative lookahead window.
	f.Cells = make([]*Cell, opts.Cells)
	for i := 0; i < opts.Cells; i++ {
		n.SetBuildRegion(regionOf(i))
		lan := n.AddLAN(fmt.Sprintf("cell%d", i), fmt.Sprintf("10.%d.0.0/16", i+1),
			netsim.SegmentOpts{Latency: 1 * millisecond})
		gw := n.AddRouter(fmt.Sprintf("cgw%d", i))
		n.AttachRouter(gw, lan)
		n.Link(gw, bb[i%len(bb)], vtime.Duration(2+i%5)*millisecond)

		c := &Cell{Index: i, LAN: lan}
		if opts.FilterEvery > 0 && (i+1)%opts.FilterEvery == 0 {
			// A source-filtering edge: home-sourced packets may not
			// leave this cell (the Section 3 hostility Out-DH dies to).
			n.SetBoundaryFilter(gw, true, true, lan.Prefix.String())
			c.Filtered = true
		}

		if opts.FAEvery > 0 {
			faHost := n.AddHost(fmt.Sprintf("fa%d", i), lan)
			fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0],
				mobileip.ForeignAgentConfig{VisitorLifetime: 60})
			assert.NoError(err, "fleet: create foreign agent")
			c.FA = fa
		}

		// The kiosk: a mobile-aware host on the cell LAN that learns
		// visiting nodes from presence announcements and answers their
		// UDP echoes In-DH — the paper's Row C same-segment case.
		kioskHost := n.AddHost(fmt.Sprintf("kiosk%d", i), lan)
		kc := mobileip.NewCorrespondent(kioskHost, icmphost.Install(kioskHost),
			mobileip.CorrespondentConfig{MobileAware: true, Codec: f.tunnelCodec(ipv4.Zero)})
		cancel, err := kc.ListenForVisitors(30)
		assert.NoError(err, "fleet: kiosk visitor listener")
		c.kioskCancel = cancel
		c.Kiosk = kioskHost.FirstAddr()
		srv := kioskHost
		c.kioskSrv, err = srv.OpenUDP(ipv4.Zero, portKiosk, f.kioskHandler(c))
		assert.NoError(err, "fleet: kiosk echo server")

		f.Cells[i] = c
	}
	n.SetBuildRegion(0)

	// The home agent, on the home LAN behind hagw.
	haHost := n.AddHost("ha", f.HomeLAN)
	ha, err := mobileip.NewHomeAgent(haHost, haHost.Ifaces()[0], mobileip.HomeAgentConfig{
		SendBindingNotices: true,
		NoticeLifetime:     30,
		ExpiryGranularity:  opts.ExpiryGranularity,
		RequireAuth:        opts.Auth,
		Codec:              f.tunnelCodec(ipv4.Zero),
	})
	assert.NoError(err, "fleet: create home agent")
	f.HA = ha

	f.buildRouteOpt(bb)

	// Adversaries, when armed, are hosts like any other and need routes.
	f.buildAttackers()

	n.ComputeRoutes()

	f.HomeUplink = n.Sim.SegmentByName("p2p-hagw-bb0")
	if f.HomeUplink == nil {
		assert.Unreachable("fleet: home uplink segment missing")
	}
}

// buildRouteOpt constructs the route-optimization tier's hub-side
// pieces: the correspondent-recovery bookkeeping, the regional gateway
// (Hierarchical), the HA-push updater (PushFromHA), and the
// binding-update blackholes of the fallback proof. Runs in build region
// 0, after the home agent exists and before routes are computed.
func (f *Fleet) buildRouteOpt(bb []*stack.Host) {
	opts := f.Opts
	if !opts.RouteOpt.engaged() {
		return
	}
	n := f.Net

	// Recovery bookkeeping: the home agent (and gateway) mark binding
	// movements; the aware correspondent's cache learns clear them. All
	// the hooks run on the hub shard, so the mark map needs no locks.
	// The HA-push updater chains onto OnBind after this, preserving the
	// mark hook.
	f.roMarks = make(map[ipv4.Addr]*roMark, opts.Nodes)
	f.recoveryHist = f.Net.Sim.Metrics.Histogram("routeopt/recovery_ns", recoveryBuckets())
	f.HA.OnBind = f.markBinding
	f.chAwareC.OnLearn = f.noteLearn

	if opts.RouteOpt.Hierarchical {
		// The gateway agent: its own LAN behind a metro gateway router
		// on the backbone, in the hub region — its registrations and
		// re-tunnels are hub events like the home agent's. Every cell
		// reaches it without crossing the home uplink.
		gfaLAN := n.AddLAN("gfa", "11.1.0.0/24", netsim.SegmentOpts{Latency: 1 * millisecond})
		mgw := n.AddRouter("mgw")
		n.AttachRouter(mgw, gfaLAN)
		n.Link(mgw, bb[1%len(bb)], 3*millisecond)
		gfaHost := n.AddHost("gfa", gfaLAN)
		gfa, err := routeopt.NewRegionalAgent(gfaHost, gfaHost.FirstAddr(), routeopt.RegionalAgentConfig{
			HomeAgent:   f.HA.Addr(),
			RequireAuth: opts.Auth,
		})
		assert.NoError(err, "fleet: regional gateway agent")
		gfa.OnRegister = f.markBinding
		f.GFA = gfa
		f.gfaAddr = gfa.Addr()
	}

	if opts.RouteOpt.PushFromHA {
		hup, err := routeopt.NewHAUpdater(f.HA, routeopt.HAUpdaterConfig{
			Lifetime: opts.RouteOpt.UpdateTTL,
		})
		assert.NoError(err, "fleet: ha-push updater")
		f.hup = hup
	}

	if opts.RouteOpt.BlackholeUpdates {
		// Silent discard of every binding-update request at its first
		// segment: cell LANs for MN-push, the home LAN for HA-push. The
		// acks need no hole — no update arrives to be acked.
		for _, c := range f.Cells {
			faults.BlackholePort(c.LAN.Seg, udp.PortBindingUpdate)
		}
		faults.BlackholePort(f.HomeLAN.Seg, udp.PortBindingUpdate)
	}
}

// kioskHandler returns the cell kiosk's UDP echo handler.
func (f *Fleet) kioskHandler(c *Cell) stack.UDPHandler {
	return func(src ipv4.Addr, srcPort uint16, _ ipv4.Addr, payload []byte) {
		_ = c.kioskSrv.SendTo(src, srcPort, payload)
	}
}

// buildNodes creates the mobile hosts on the home network and installs
// their mobility support. Every node is detached immediately after
// construction: a fleet-sized home segment would otherwise broadcast
// every gratuitous ARP to every node, and the run starts with the
// placement storm anyway.
func (f *Fleet) buildNodes() {
	n := f.Net
	opts := f.Opts
	haAddr := f.HA.Addr()
	f.Nodes = make([]*Node, opts.Nodes)
	for i := 0; i < opts.Nodes; i++ {
		host, ifc := n.AddMobileHost(nodeName(i), f.HomeLAN)
		ic := icmphost.Install(host)

		sel := core.NewSelector(core.StartPessimistic)
		class := i % numClasses
		if class == clsPingAware {
			// The aware correspondent can decapsulate, so these nodes
			// are configured (the user-rule mechanism of Section 7.1.2)
			// to tunnel to it directly: Out-DE.
			de := core.OutDE
			sel.AddRule(core.Rule{Prefix: ipv4.PrefixFrom(f.chAware, 32), ForceMode: &de})
		}

		var auth *mobileip.Authenticator
		if opts.Auth {
			auth = f.provisionAuth(i, ifc.Addr())
		}

		// Hierarchical nodes register through the regional gateway:
		// the home agent sees the gateway's stable address, intra-metro
		// moves register locally only. Foreign-agent-attached nodes
		// keep the flat path — their care-of address (the FA) is
		// already a relay the gateway would only shadow.
		viaFA := opts.FAEvery > 0 && i%opts.FAEvery == 0
		hier := opts.RouteOpt.Hierarchical && !viaFA
		cfg := mobileip.MobileNodeConfig{
			Home:             ifc.Addr(),
			HomePrefix:       f.HomeLAN.Prefix,
			HomeAgent:        haAddr,
			Lifetime:         opts.RegLifetime,
			RegProbeInterval: 4 * second,
			Selector:         sel,
			AnnouncePresence: class == clsKiosk,
			Auth:             auth,
			Codec:            f.tunnelCodec(ifc.Addr()),
		}
		if hier {
			cfg.RegisterCareOf = f.gfaAddr
			cfg.RegionalAgent = f.gfaAddr
		}
		mn, err := mobileip.NewMobileNode(host, ifc, cfg)
		assert.NoError(err, "fleet: create mobile node")

		ws, err := host.OpenUDP(ipv4.Zero, 0, func(ipv4.Addr, uint16, ipv4.Addr, []byte) {})
		assert.NoError(err, "fleet: node workload socket")

		// Facade nodes get a core-layer facade socket instead of using
		// the raw one: same host, same policy table, but every send and
		// receive crosses internal/sock. The drain hook keeps the queue
		// empty (replies are attributed by OnInPacket, not consumed here).
		var fconn *sock.PacketConn
		if class == clsFacade {
			fconn, err = sock.NewNet(nil, host, nil).ListenPacketCore(sock.Addr{})
			assert.NoError(err, "fleet: node facade socket")
			drainBuf := make([]byte, 64)
			fc := fconn
			fc.SetEvent(func() {
				for {
					if _, _, ok, _ := fc.TryReadFrom(drainBuf); !ok {
						return
					}
				}
			})
		}

		node := &Node{
			Idx:    i,
			MN:     mn,
			Host:   host,
			fleet:  f,
			ic:     ic,
			sock:   ws,
			fconn:  fconn,
			rng:    rngFor(opts.Seed, i),
			class:  class,
			viaFA:  viaFA,
			hier:   hier,
			cell:   -1,
			region: 0, // built on the home LAN, in the hub region
		}
		mn.OnRegistered = func() { f.onRegistered(node) }
		mn.OnInPacket = func(mode core.InMode, pkt ipv4.Packet) { f.noteIn(node, mode, pkt) }
		f.attachRouteOpt(node, auth)
		// Built detached; the placement storm attaches it.
		mn.Detach()
		f.Nodes[i] = node
	}
}

// attachRouteOpt installs a node's per-node route-optimization pieces —
// the MN-push updater, the regional registration client — and
// provisions the keys their verifiers check against. No-op when the
// tier is off.
func (f *Fleet) attachRouteOpt(n *Node, auth *mobileip.Authenticator) {
	opts := f.Opts
	if !opts.RouteOpt.engaged() {
		return
	}
	home := n.MN.Home()
	if (opts.RouteOpt.PushUpdates || opts.RouteOpt.PushFromHA) && opts.Auth {
		f.recvAware.ProvisionKey(home, authSPIFor(n.Idx), authKeyFor(opts.Seed, n.Idx))
	}
	if opts.RouteOpt.PushUpdates {
		up, err := routeopt.NewUpdater(n.MN, routeopt.UpdaterConfig{
			Lifetime: opts.RouteOpt.UpdateTTL,
			Auth:     auth,
		})
		assert.NoError(err, "fleet: node binding updater")
		n.up = up
	}
	if opts.RouteOpt.PushFromHA {
		var hubAuth *mobileip.Authenticator
		if opts.Auth {
			// The HA-side pusher signs on the hub shard, so it gets its
			// own authenticator instance; the node's lives on the
			// node's shard.
			hubAuth = mobileip.NewAuthenticator(authSPIFor(n.Idx), authKeyFor(opts.Seed, n.Idx))
		}
		f.hup.ProvisionHome(home, hubAuth)
	}
	if n.hier {
		if opts.Auth {
			f.GFA.ProvisionKey(home, authSPIFor(n.Idx), authKeyFor(opts.Seed, n.Idx))
		}
		lr, err := routeopt.NewLocalRegistrar(n.MN, routeopt.LocalRegistrarConfig{
			Regional: f.gfaAddr,
			Auth:     auth,
		})
		assert.NoError(err, "fleet: node local registrar")
		lr.OnAccepted = func(ipv4.Addr) { f.onRegionalAccepted(n) }
		n.lr = lr
	}
}
