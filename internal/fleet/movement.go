package fleet

import (
	"math/rand"

	"mob4x4/internal/vtime"
)

// Movement models. Each node owns a private RNG derived from (seed,
// node index), so its itinerary is byte-reproducible per seed and
// independent of every other node's — and of event interleaving, since
// one node's draws are totally ordered by its own vtime events.
//
// Two models:
//
//   - waypoint: the classic random-waypoint pattern flattened onto the
//     cell grid — pick a uniformly random destination cell, go there,
//     dwell for a uniform [3s,8s) pause, repeat.
//   - markov: a cell-transition chain with neighbor bias — from cell i
//     the node hops to i-1 or i+1 (ring topology) with probability
//     0.35 each, teleports uniformly with 0.1, and stays put with 0.2;
//     dwell is uniform [2s,6s). Models campus-style locality.

// rngFor derives node idx's private RNG from the fleet seed. The
// multiplier keeps per-node streams disjoint for any fleet size below
// one million nodes.
func rngFor(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(idx)))
}

// nextCell draws the node's next destination cell, or -1 to stay put
// this step (markov self-transition).
func (f *Fleet) nextCell(n *Node) int {
	k := len(f.Cells)
	if k == 1 {
		if n.cell < 0 {
			return 0
		}
		return -1
	}
	switch f.Opts.Model {
	case ModelMarkov:
		if n.cell < 0 {
			return n.rng.Intn(k)
		}
		switch p := n.rng.Float64(); {
		case p < 0.35:
			return (n.cell + k - 1) % k
		case p < 0.70:
			return (n.cell + 1) % k
		case p < 0.80:
			return n.rng.Intn(k)
		default:
			return -1 // dwell in place
		}
	default: // ModelWaypoint
		c := n.rng.Intn(k)
		if c == n.cell {
			// A waypoint is always somewhere else.
			c = (c + 1) % k
		}
		return c
	}
}

// dwell draws how long the node stays before its next movement step.
func (f *Fleet) dwell(n *Node) vtime.Duration {
	if f.Opts.Model == ModelMarkov {
		return 2*second + vtime.Duration(n.rng.Int63n(int64(4*second)))
	}
	return 3*second + vtime.Duration(n.rng.Int63n(int64(5*second)))
}

// hop performs one movement step: draw a destination, move, and arm the
// next step. Also the entry point for commanded moves (placement and
// the mass-move storm), which simply hop early.
func (f *Fleet) hop(n *Node) {
	if n.stopped || !f.movementOn {
		return
	}
	if c := f.nextCell(n); c >= 0 {
		f.move(n, c)
	}
	d := f.dwell(n)
	if n.moveTimer == nil {
		n.moveTimer = f.Net.Sched().After(d, func() {
			if f.movementOn && !n.stopped {
				f.hop(n)
			}
		})
	} else {
		n.moveTimer.Reset(d)
	}
}

// move attaches node n to cell c and starts the re-registration that
// completes the handoff. Foreign-agent nodes attach through the cell's
// agent (shared care-of address, relayed registration); self-sufficient
// nodes take their own care-of address on the cell LAN.
func (f *Fleet) move(n *Node, c int) {
	n.moveAt = f.Net.Sim.Now()
	n.cell = c
	cell := f.Cells[c]
	if n.viaFA && cell.FA != nil {
		n.MN.MoveToForeignAgent(cell.LAN.Seg, cell.FA.Addr())
	} else {
		n.MN.MoveTo(cell.LAN.Seg, f.careOf(c, n.Idx), cell.LAN.Prefix, cell.LAN.Gateway)
	}
}
