package fleet

import (
	"math/rand"

	"mob4x4/internal/vtime"
)

// Movement models. Each node owns a private RNG derived from (seed,
// node index), so its itinerary is byte-reproducible per seed and
// independent of every other node's — and of event interleaving, since
// one node's draws are totally ordered by its own vtime events.
//
// Two models:
//
//   - waypoint: the classic random-waypoint pattern flattened onto the
//     cell grid — pick a uniformly random destination cell, go there,
//     dwell for a uniform [3s,8s) pause, repeat.
//   - markov: a cell-transition chain with neighbor bias — from cell i
//     the node hops to i-1 or i+1 (ring topology) with probability
//     0.35 each, teleports uniformly with 0.1, and stays put with 0.2;
//     dwell is uniform [2s,6s). Models campus-style locality.

// rngFor derives node idx's private RNG from the fleet seed. The
// multiplier keeps per-node streams disjoint for any fleet size below
// one million nodes.
func rngFor(seed int64, idx int) *rand.Rand {
	return rand.New(rand.NewSource(seed*1_000_003 + int64(idx)))
}

// nextCell draws the node's next destination cell, or -1 to stay put
// this step (markov self-transition).
func (f *Fleet) nextCell(n *Node) int {
	k := len(f.Cells)
	if k == 1 {
		if n.cell < 0 {
			return 0
		}
		return -1
	}
	switch f.Opts.Model {
	case ModelMarkov:
		if n.cell < 0 {
			return n.rng.Intn(k)
		}
		switch p := n.rng.Float64(); {
		case p < 0.35:
			return (n.cell + k - 1) % k
		case p < 0.70:
			return (n.cell + 1) % k
		case p < 0.80:
			return n.rng.Intn(k)
		default:
			return -1 // dwell in place
		}
	default: // ModelWaypoint
		c := n.rng.Intn(k)
		if c == n.cell {
			// A waypoint is always somewhere else.
			c = (c + 1) % k
		}
		return c
	}
}

// dwell draws how long the node stays before its next movement step.
func (f *Fleet) dwell(n *Node) vtime.Duration {
	if f.Opts.Model == ModelMarkov {
		return 2*second + vtime.Duration(n.rng.Int63n(int64(4*second)))
	}
	return 3*second + vtime.Duration(n.rng.Int63n(int64(5*second)))
}

// hop performs one movement step: draw a destination and a dwell, then
// either move locally (markov self-teleport back into the current cell)
// or migrate to the destination cell's region shard. Also the entry point
// for commanded moves (placement and the mass-move storm), which simply
// hop early. Runs on the node's current shard.
//
// The draws happen up front, in a fixed order (cell, then dwell), before
// the node's fate forks: the node's RNG stream is consumed only by its
// own events, which are totally ordered in virtual time, so the draw
// sequence — and with it the itinerary — is identical for any worker
// count.
func (f *Fleet) hop(n *Node) {
	if n.stopped || !f.rs[n.region].movementOn {
		return
	}
	c := f.nextCell(n)
	d := f.dwell(n)
	if c >= 0 && regionOf(c) != n.region {
		f.migrate(n, c, d)
		return
	}
	if c >= 0 {
		f.move(n, c)
	}
	f.armMove(n, d)
}

// armMove arms (or re-arms) the node's next movement step d from now, on
// the node's current shard.
func (f *Fleet) armMove(n *Node, d vtime.Duration) {
	if n.moveTimer == nil {
		n.moveTimer = n.Host.Sched().After(d, func() { f.hop(n) })
	} else {
		n.moveTimer.Reset(d)
	}
}

// migrate ships node n to cell c's region: the radio goes dark here, the
// laptop is in transit for migrationTransit of virtual time, and arrival
// on the destination shard completes the move. Everything that pins the
// old shard — MIP timers, fleet timers, reassembly and ARP jobs — is torn
// down before the node crosses; the timer handles are nilled because a
// vtime.Timer is bound to the scheduler that created it.
func (f *Fleet) migrate(n *Node, c int, d vtime.Duration) {
	src := n.Host.Sim()
	if n.up != nil {
		n.up.Quiesce()
	}
	if n.lr != nil {
		n.lr.Quiesce()
	}
	if n.hier {
		// A hierarchical node keeps its home registration across the
		// transit: the home agent's view (the stable gateway address)
		// is still correct, and the regional re-registration after
		// arrival is the whole point of the tier.
		n.MN.DetachRetain()
	} else {
		n.MN.Detach()
	}
	n.moveTimer.Stop()
	n.tickTimer.Stop()
	n.cmdTimer.Stop()
	n.moveTimer, n.tickTimer, n.cmdTimer = nil, nil, nil
	n.Host.Quiesce()
	n.migCell = c
	n.migDwell = d
	dst := f.Net.Regions()[regionOf(c)]
	src.Sched.SendTo(dst.Sched, src.Now().Add(migrationTransit), migrateArrive, n)
}

// migrateArrive is the cross-shard arrival trampoline (a top-level func
// so SendTo carries no closure).
func migrateArrive(a any) {
	n := a.(*Node)
	n.fleet.arrive(n)
}

// arrive completes a migration on the destination shard: rehome the host
// and the mobility daemon, attach to the drawn cell, and rebuild the
// node's timers on the new scheduler.
func (f *Fleet) arrive(n *Node) {
	region := regionOf(n.migCell)
	sim := f.Net.Regions()[region]
	n.Host.Rehome(sim)
	n.MN.Rehome()
	if n.up != nil {
		n.up.Rehome()
	}
	if n.lr != nil {
		n.lr.Rehome()
	}
	n.region = region
	f.move(n, n.migCell)
	f.armMove(n, n.migDwell)
	f.startTicker(n)
	if n.cmdAt != 0 {
		if n.cmdAt.Sub(sim.Now()) <= 0 {
			// The commanded move fell inside the transit window; the move
			// that just completed satisfies it.
			n.cmdAt = 0
		} else {
			f.armCmd(n)
		}
	}
}

// armCmd arms the node's commanded mass-move timer on its current shard.
func (f *Fleet) armCmd(n *Node) {
	d := n.cmdAt.Sub(n.Host.Sim().Now())
	if n.cmdTimer == nil {
		n.cmdTimer = n.Host.Sched().After(d, func() { f.cmdFire(n) })
	} else {
		n.cmdTimer.Reset(d)
	}
}

// cmdFire executes the commanded mass-move.
func (f *Fleet) cmdFire(n *Node) {
	n.cmdAt = 0
	f.hop(n)
}

// move attaches node n to cell c and starts the re-registration that
// completes the handoff. Foreign-agent nodes attach through the cell's
// agent (shared care-of address, relayed registration); self-sufficient
// nodes take their own care-of address on the cell LAN. A hierarchical
// node that still holds its home registration moves regionally: only
// the gateway learns the new cell, and the gateway's accept is what
// completes the handoff. The node's host must already live in cell c's
// region.
func (f *Fleet) move(n *Node, c int) {
	n.moveAt = n.Host.Sim().Now()
	n.cell = c
	n.movedRegional = false
	cell := f.Cells[c]
	switch {
	case n.viaFA && cell.FA != nil:
		n.MN.MoveToForeignAgent(cell.LAN.Seg, cell.FA.Addr())
	case n.hier && n.MN.Registered():
		n.movedRegional = true
		n.MN.MoveToRegional(cell.LAN.Seg, f.careOf(c, n.Idx), cell.LAN.Prefix, cell.LAN.Gateway)
		n.lr.Register()
	default:
		n.MN.MoveTo(cell.LAN.Seg, f.careOf(c, n.Idx), cell.LAN.Prefix, cell.LAN.Gateway)
		if n.hier {
			// First attach (or a re-attach after losing the home
			// registration): the full home path runs, and the gateway
			// learns the cell in parallel so the home agent's tunnels
			// to the stable address have somewhere to go.
			n.lr.Register()
		}
	}
}
