package fleet

import (
	"reflect"
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/netsim"
)

// roOpts is the CI-sized route-optimization fleet.
func roOpts(seed int64, ro RouteOptOptions) Options {
	o := smallOpts(seed)
	o.RouteOpt = ro
	return o
}

func runClean(t *testing.T, opts Options) Result {
	t.Helper()
	outstanding := netsim.BufOutstanding()
	r := New(opts).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if got := netsim.BufOutstanding(); got != outstanding {
		t.Errorf("pooled buffers outstanding drifted %d -> %d across the run", outstanding, got)
	}
	return r
}

// TestFleetRouteOptPush: MN-push binding updates reach the aware
// correspondent, get acked, and shrink the correspondent's
// stale-binding window relative to the notice-only baseline.
func TestFleetRouteOptPush(t *testing.T) {
	base := runClean(t, roOpts(1, RouteOptOptions{Enabled: true}))
	push := runClean(t, roOpts(1, RouteOptOptions{PushUpdates: true}))
	if push.PushUpdatesSent == 0 || push.PushAcks == 0 {
		t.Fatalf("push tier idle: sent=%d acks=%d", push.PushUpdatesSent, push.PushAcks)
	}
	if push.CHUpdatesAccepted == 0 {
		t.Errorf("aware correspondent accepted no pushed update")
	}
	// Pushes to the update-deaf correspondents (probe, kiosk, facade
	// peers) must exhaust their retries, not hang.
	if push.PushAbandons == 0 {
		t.Errorf("no push was ever abandoned despite update-deaf correspondents")
	}
	if base.RecoverySamples == 0 || push.RecoverySamples == 0 {
		t.Fatalf("recovery histogram empty: base=%d push=%d",
			base.RecoverySamples, push.RecoverySamples)
	}
	if push.RecoveryP95 >= base.RecoveryP95 {
		t.Errorf("pushed updates did not shrink the correspondent recovery tail: p95 %d (push) >= %d (baseline)",
			push.RecoveryP95, base.RecoveryP95)
	}
}

// TestFleetRouteOptPushAuth: the same tier under fleet-wide auth — every
// update signed and verified, no legitimate message tripping a reject
// (the clean-run auth invariant checks that).
func TestFleetRouteOptPushAuth(t *testing.T) {
	o := roOpts(2, RouteOptOptions{PushUpdates: true})
	o.Auth = true
	r := runClean(t, o)
	if r.PushAcks == 0 || r.CHUpdatesAccepted == 0 {
		t.Fatalf("authenticated push tier idle: acks=%d accepted=%d",
			r.PushAcks, r.CHUpdatesAccepted)
	}
}

// TestFleetRouteOptPushFromHA: the HA-push alternative also reaches the
// aware correspondent (it sees its In-IE traffic).
func TestFleetRouteOptPushFromHA(t *testing.T) {
	r := runClean(t, roOpts(3, RouteOptOptions{PushFromHA: true}))
	if r.PushUpdatesSent == 0 || r.PushAcks == 0 {
		t.Fatalf("ha-push tier idle: sent=%d acks=%d", r.PushUpdatesSent, r.PushAcks)
	}
}

// TestFleetRouteOptCompact: compact encapsulation carries the whole
// storm — every tunnel mode still completes conversations — with fewer
// bytes on the home uplink than IPIP moves for the same schedule.
func TestFleetRouteOptCompact(t *testing.T) {
	// The baseline must match the compact run's schedule exactly, so it
	// drops foreign agents the same way Compact forces.
	bo := roOpts(4, RouteOptOptions{Enabled: true})
	bo.FAEvery = -1
	base := runClean(t, bo)
	o := roOpts(4, RouteOptOptions{Compact: true})
	f := New(o)
	if f.Opts.FAEvery != -1 {
		t.Fatalf("compact fleet kept foreign agents: FAEvery=%d", f.Opts.FAEvery)
	}
	r := f.Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	for _, c := range []struct {
		out core.OutMode
		in  core.InMode
	}{
		{core.OutIE, core.InIE},
		{core.OutDE, core.InDE},
	} {
		if r.ModeMix[c.out][c.in] == 0 {
			t.Errorf("compact run lost the [%v][%v] conversations", c.out, c.in)
		}
	}
	if r.UplinkBytes >= base.UplinkBytes {
		t.Errorf("compact encapsulation did not reduce home-uplink bytes: %d (compact) >= %d (ipip)",
			r.UplinkBytes, base.UplinkBytes)
	}
}

// TestFleetRouteOptHierarchical: the regional tier registers intra-metro
// handoffs at the gateway, relays tunnels both ways, and keeps the
// registration traffic those handoffs used to send off the home uplink.
func TestFleetRouteOptHierarchical(t *testing.T) {
	r := runClean(t, roOpts(5, RouteOptOptions{Hierarchical: true}))
	if r.RegionalRegistrations == 0 {
		t.Fatalf("gateway accepted no regional registration")
	}
	if r.GFADownRelayed == 0 || r.GFAUpRelayed == 0 {
		t.Errorf("gateway relay idle: down=%d up=%d", r.GFADownRelayed, r.GFAUpRelayed)
	}
	if r.LocalRegFails > r.RegionalRegistrations/10 {
		t.Errorf("local registration unreliable: %d fails vs %d accepts",
			r.LocalRegFails, r.RegionalRegistrations)
	}
	// Most handoffs are intra-metro: the home uplink's queueing tail —
	// where storm handoffs pile up — must vanish, along with the
	// registration bytes those handoffs used to send over the uplink.
	base := runClean(t, roOpts(5, RouteOptOptions{Enabled: true}))
	if r.HandoffP95 >= base.HandoffP95 {
		t.Errorf("hierarchical handoffs did not collapse the tail: p95 %d >= %d",
			r.HandoffP95, base.HandoffP95)
	}
	if r.UplinkBytes >= base.UplinkBytes {
		t.Errorf("hierarchical registration did not reduce home-uplink bytes: %d >= %d",
			r.UplinkBytes, base.UplinkBytes)
	}
}

// TestFleetRouteOptBlackholeFallback is the fallback proof: with every
// binding-update request silently discarded, pushes abandon, nothing is
// learned, and the fleet invariants (all bindings re-formed, every
// conversation class alive) still hold via In-IE triangle routing.
func TestFleetRouteOptBlackholeFallback(t *testing.T) {
	r := runClean(t, roOpts(6, RouteOptOptions{PushUpdates: true, BlackholeUpdates: true}))
	if r.PushAcks != 0 || r.CHUpdatesAccepted != 0 {
		t.Fatalf("blackholed updates got through: acks=%d accepted=%d",
			r.PushAcks, r.CHUpdatesAccepted)
	}
	if r.PushAbandons == 0 || r.BlackholeDrops == 0 {
		t.Fatalf("blackhole never bit: abandons=%d drops=%d", r.PushAbandons, r.BlackholeDrops)
	}
	if r.ModeMix[core.OutIE][core.InIE] == 0 {
		t.Errorf("triangle-routed conversations died with the push tier down")
	}
}

// TestFleetRouteOptDeterminism: the full tier (hierarchy + push + auth)
// is byte-identical run-to-run and across worker counts, like every
// other fleet configuration.
func TestFleetRouteOptDeterminism(t *testing.T) {
	o := roOpts(7, RouteOptOptions{PushUpdates: true, Hierarchical: true})
	o.Auth = true
	serial := New(o).Run()
	repeat := New(o).Run()
	if !reflect.DeepEqual(serial, repeat) {
		t.Fatalf("two runs of the same route-opt options diverged:\n%+v\nvs\n%+v", serial, repeat)
	}
	for _, workers := range []int{2, 4} {
		po := o
		po.Workers = workers
		got := New(po).Run()
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from serial route-opt run", workers)
		}
	}
}
