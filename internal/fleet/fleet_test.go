package fleet

import (
	"reflect"
	"runtime"
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/netsim"
)

// smallOpts is the CI-sized fleet: big enough to populate every
// workload class, every cell role (filtered, foreign-agent) and the
// whole storm schedule, small enough for -race.
func smallOpts(seed int64) Options {
	return Options{Seed: seed, Nodes: 24, Cells: 4}
}

func TestFleetStormInvariants(t *testing.T) {
	outstanding := netsim.BufOutstanding()
	r := New(smallOpts(1)).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if got := netsim.BufOutstanding(); got != outstanding {
		t.Errorf("pooled buffers outstanding drifted %d -> %d across the run", outstanding, got)
	}
	if r.Handoffs == 0 || r.Moves == 0 {
		t.Fatalf("storm moved nothing: moves=%d handoffs=%d", r.Moves, r.Handoffs)
	}
	if r.HandoffP50 <= 0 || r.HandoffP50 > r.HandoffP95 || r.HandoffP95 > r.HandoffP99 {
		t.Errorf("handoff quantiles out of order: p50=%d p95=%d p99=%d",
			r.HandoffP50, r.HandoffP95, r.HandoffP99)
	}
}

// TestFleetModeMixCoversGrid verifies each workload class lands its
// conversations where the 4x4 taxonomy says it must: naive-host pings
// come back In-IE, forced Out-DE conversations migrate to In-DE once
// the binding notice arrives, port-heuristic probes stay on the
// temporary address both ways, and kiosk traffic never leaves the cell.
func TestFleetModeMixCoversGrid(t *testing.T) {
	r := New(smallOpts(1)).Run()
	type cell struct {
		out  core.OutMode
		in   core.InMode
		name string
	}
	for _, c := range []cell{
		{core.OutIE, core.InIE, "naive ping"},
		{core.OutDE, core.InDE, "aware ping after notice"},
		{core.OutDT, core.InDT, "port-53 probe"},
		{core.OutDH, core.InDH, "kiosk echo"},
	} {
		if r.ModeMix[c.out][c.in] == 0 {
			t.Errorf("%s: ModeMix[%v][%v] = 0, want > 0\nmix=%v", c.name, c.out, c.in, r.ModeMix)
		}
	}
	// Encapsulated requests never elicit same-segment replies: the far
	// correspondents are not on the node's link.
	if r.ModeMix[core.OutIE][core.InDH] != 0 || r.ModeMix[core.OutDE][core.InDH] != 0 {
		t.Errorf("far conversations produced In-DH replies: mix=%v", r.ModeMix)
	}
}

// TestFleetWorkerCountInvariant is the sharded engine's core acceptance
// property: the Workers knob buys wall-clock parallelism only. The region
// structure, event keys and lookahead bounds are Workers-independent, so
// every observable — counters, quantiles, the merged metrics snapshot —
// must match the serial run exactly.
func TestFleetWorkerCountInvariant(t *testing.T) {
	base := smallOpts(7)
	serial := New(base).Run()
	for _, workers := range []int{2, 3, 8} {
		opts := base
		opts.Workers = workers
		got := New(opts).Run()
		if !reflect.DeepEqual(serial, got) {
			t.Errorf("workers=%d diverged from serial run:\n%+v\nvs\n%+v", workers, serial, got)
		}
	}
}

// TestFleetMigrationKeepsClassesAlive: after the storm (placement plus
// mass move, so every node migrated across region shards at least twice),
// all four workload classes still complete conversations — the
// rehoming protocol preserves sockets, handlers and instruments.
func TestFleetMigrationKeepsClassesAlive(t *testing.T) {
	opts := smallOpts(9)
	opts.Workers = 2
	r := New(opts).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	if r.Moves < uint64(2*opts.Nodes) {
		t.Errorf("storm commanded only %d moves for %d nodes; migrations under-exercised", r.Moves, opts.Nodes)
	}
}

func TestFleetDeterministicRepeat(t *testing.T) {
	a := New(smallOpts(3)).Run()
	b := New(smallOpts(3)).Run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("two runs of the same options diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestFleetCrossSeedDiffers(t *testing.T) {
	a := New(smallOpts(3)).Run()
	b := New(smallOpts(4)).Run()
	if reflect.DeepEqual(a.ModeMix, b.ModeMix) && a.Moves == b.Moves && a.Handoffs == b.Handoffs {
		t.Errorf("seeds 3 and 4 produced identical storms (moves=%d handoffs=%d)", a.Moves, a.Handoffs)
	}
}

func TestFleetMarkovModel(t *testing.T) {
	opts := smallOpts(2)
	opts.Model = ModelMarkov
	r := New(opts).Run()
	for _, v := range r.Violations {
		t.Errorf("violation: %s", v)
	}
	w := New(smallOpts(2)).Run()
	if r.Moves == w.Moves && r.Handoffs == w.Handoffs {
		t.Errorf("markov and waypoint itineraries identical for seed 2: moves=%d handoffs=%d", r.Moves, r.Handoffs)
	}
}

// TestFleetMarkovLocality checks the chain's neighbor bias: most markov
// hops land in an adjacent cell on the ring, while random waypoints at
// K=8 mostly do not.
func TestFleetMarkovLocality(t *testing.T) {
	for _, model := range []string{ModelMarkov, ModelWaypoint} {
		opts := Options{Seed: 5, Nodes: 16, Cells: 8, Model: model}
		f := New(opts)
		k := len(f.Cells)
		var adjacent, far int
		for _, n := range f.Nodes {
			cur := n.rng.Intn(k) // stand-in for a current cell
			n.cell = cur
			for i := 0; i < 200; i++ {
				next := f.nextCell(n)
				if next < 0 {
					continue
				}
				d := (next - n.cell + k) % k
				if d == 1 || d == k-1 {
					adjacent++
				} else {
					far++
				}
				n.cell = next
			}
		}
		frac := float64(adjacent) / float64(adjacent+far)
		if model == ModelMarkov && frac < 0.6 {
			t.Errorf("markov adjacency fraction = %.2f, want >= 0.6", frac)
		}
		if model == ModelWaypoint && frac > 0.5 {
			t.Errorf("waypoint adjacency fraction = %.2f, want < 0.5", frac)
		}
	}
}

// TestFleetCareOfUnique: the arithmetic care-of plan gives every (node,
// cell) pair a distinct address, disjoint from the cell's
// infrastructure block.
func TestFleetCareOfUnique(t *testing.T) {
	f := New(Options{Seed: 1, Nodes: 40, Cells: 3})
	seen := make(map[string]bool)
	for c := range f.Cells {
		for i := range f.Nodes {
			a := f.careOf(c, i).String()
			if seen[a] {
				t.Fatalf("care-of %s assigned twice", a)
			}
			seen[a] = true
		}
		if f.careOf(c, 0) == f.Cells[c].Kiosk || (f.Cells[c].FA != nil && f.careOf(c, 0) == f.Cells[c].FA.Addr()) {
			t.Fatalf("node care-of collides with cell infrastructure")
		}
	}
	// Dispose of the built-but-never-run fleet so its node sockets and
	// listeners do not linger (nothing is scheduled yet, so a plain
	// drain suffices).
	f.Net.Run()
}

func TestFleetDefaultsClamp(t *testing.T) {
	o := Options{Cells: 100000}.withDefaults()
	if o.Cells != maxCells {
		t.Errorf("Cells clamped to %d, want %d", o.Cells, maxCells)
	}
	if o.Model != ModelWaypoint || o.Nodes == 0 || o.RegLifetime == 0 {
		t.Errorf("defaults not filled: %+v", o)
	}
}

func BenchmarkFleetHandoffStorm(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := New(Options{Seed: 1, Nodes: 64, Cells: 8}).Run()
		if len(r.Violations) != 0 {
			b.Fatalf("violations: %v", r.Violations)
		}
	}
}

// BenchmarkShardedFleetStorm is the multi-worker counterpart: same storm,
// workers bounded by available cores. On a multi-core box the wall-clock
// ratio against BenchmarkFleetHandoffStorm is the sharding speedup; the
// results are byte-identical either way.
func BenchmarkShardedFleetStorm(b *testing.B) {
	workers := runtime.NumCPU()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := New(Options{Seed: 1, Nodes: 64, Cells: 8, Workers: workers}).Run()
		if len(r.Violations) != 0 {
			b.Fatalf("violations: %v", r.Violations)
		}
	}
}
