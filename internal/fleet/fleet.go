// Package fleet is the fleet-scale roaming engine: a parameterized
// metro-scale topology (one home network, K visited cells behind a
// routed backbone, far correspondents), N mobile nodes driven by seeded
// movement models, and a scripted handoff storm that stresses the
// registration machinery the way Section 3 of the paper says real
// deployments will — everything moving at once, the home network
// partitioning mid-churn, and every drop accounted for.
//
// Determinism contract: a Fleet's Result is a pure function of its
// Options. Every random draw comes either from the simulation
// scheduler's seeded RNG or from a per-node RNG derived from (seed,
// node index); no wall-clock time, no map-iteration-order dependence.
// Two runs with the same Options are byte-identical, regardless of how
// many sibling trials run concurrently in the same process.
package fleet

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"mob4x4/internal/core"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// Local duration units (vtime.Duration is nanoseconds).
const (
	millisecond = vtime.Duration(1e6)
	second      = vtime.Duration(1e9)
)

// Movement model names accepted by Options.Model.
const (
	ModelWaypoint = "waypoint"
	ModelMarkov   = "markov"
)

// maxCells bounds the cell count: cell i uses prefix 10.(i+1).0.0/16,
// and the builder's point-to-point transfer networks are allocated from
// 10.200.0.0, so cells must stay below that.
const maxCells = 128

// nodeHostBase is the first host number inside a cell prefix reserved
// for node care-of addresses (numbers below it belong to the cell
// gateway, foreign agent and kiosk). Node i's care-of address in any
// cell is Prefix.Host(nodeHostBase+i) — allocated by arithmetic, not by
// a per-move allocator, so moving never grows an address table.
const nodeHostBase = 16

// Workload classes, assigned round-robin by node index. Each exercises
// a different region of the 4x4 grid.
const (
	clsPingNaive = iota // ICMP to an unaware far host: replies In-IE
	clsPingAware        // Out-DE to an aware far host: replies In-IE then In-DE
	clsProbe            // UDP to port 53: Out-DT out, In-DT back
	clsKiosk            // UDP to the cell kiosk: Out-DH out, In-DH back
	numClasses
)

// portKiosk is the UDP port the per-cell kiosk echo service listens on.
const portKiosk = 9

// handoffBuckets returns nanosecond bounds for handoff latency: one
// uncontested registration round trip sits in the low milliseconds; a
// handoff that rode out a partition on retry backoff can take tens of
// seconds. A fresh slice per call keeps the package free of mutable
// globals (shard safety); it is called once per Fleet.
func handoffBuckets() []int64 {
	return []int64{
		1e6, 2e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6,
		1e9, 2e9, 5e9, 10e9, 20e9,
	}
}

// Options parameterizes a fleet. The zero value of any field selects
// the documented default.
type Options struct {
	Seed  int64
	Nodes int    // mobile node count (default 256)
	Cells int    // visited cell count (default 8, max 128)
	Model string // ModelWaypoint (default) or ModelMarkov

	Backbone    int // backbone router count (default 4)
	FilterEvery int // every k-th cell gets a source-filtering boundary router (default 4, 0 disables)
	FAEvery     int // every k-th node attaches via the cell's foreign agent (default 5, 0 disables)

	RegLifetime       uint16         // registration lifetime in seconds (default 20)
	ExpiryGranularity vtime.Duration // home agent expiry wheel coarseness (default 1s)

	// Storm schedule, relative to the run start.
	PlaceWindow    vtime.Duration // initial attach staggered over this window (default 2s)
	PartitionAt    vtime.Duration // home uplink cut at (default 12s)
	PartitionFor   vtime.Duration // ... for this long (default 6s)
	MassMoveAt     vtime.Duration // commanded all-nodes move at (default 24s)
	MassMoveWindow vtime.Duration // ... jittered over this window (default 2s)
	QuiesceFor     vtime.Duration // movement stops this long before EndAt (default 3s)
	EndAt          vtime.Duration // measurement ends at (default 34s)
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 256
	}
	if o.Cells <= 0 {
		o.Cells = 8
	}
	if o.Cells > maxCells {
		o.Cells = maxCells
	}
	if o.Model == "" {
		o.Model = ModelWaypoint
	}
	if o.Backbone <= 0 {
		o.Backbone = 4
	}
	if o.FilterEvery == 0 {
		o.FilterEvery = 4
	}
	if o.FAEvery == 0 {
		o.FAEvery = 5
	}
	if o.RegLifetime == 0 {
		o.RegLifetime = 20
	}
	if o.PlaceWindow == 0 {
		o.PlaceWindow = 2 * second
	}
	if o.PartitionAt == 0 {
		o.PartitionAt = 12 * second
	}
	if o.PartitionFor == 0 {
		o.PartitionFor = 6 * second
	}
	if o.MassMoveAt == 0 {
		o.MassMoveAt = 24 * second
	}
	if o.MassMoveWindow == 0 {
		o.MassMoveWindow = 2 * second
	}
	if o.QuiesceFor == 0 {
		o.QuiesceFor = 3 * second
	}
	if o.EndAt == 0 {
		o.EndAt = 34 * second
	}
	return o
}

// Cell is one visited network: a LAN behind its own gateway router,
// with a foreign agent and a mobile-aware kiosk host on-link.
type Cell struct {
	Index    int
	LAN      *inet.LAN
	FA       *mobileip.ForeignAgent
	Kiosk    ipv4.Addr // kiosk echo service address
	Filtered bool      // gateway enforces source-address filtering

	kioskSrv    *stack.UDPSocket
	kioskCancel func()
}

// Node is one mobile host under fleet control.
type Node struct {
	Idx  int
	MN   *mobileip.MobileNode
	Host *stack.Host

	ic    *icmphost.ICMP
	sock  *stack.UDPSocket // workload socket (probe + kiosk traffic, reply sink)
	rng   *rand.Rand
	class int
	viaFA bool

	cell    int // current cell index; -1 until first placement
	moveAt  vtime.Time
	lastOut core.OutMode // out mode of the most recent workload send
	hasOut  bool
	seq     uint16

	moveTimer *vtime.Timer
	tickTimer *vtime.Timer
	stopped   bool
}

// Fleet is a built (but not yet run) fleet simulation.
type Fleet struct {
	Opts Options
	Net  *inet.Network
	HA   *mobileip.HomeAgent

	HomeLAN    *inet.LAN
	HomeUplink *netsim.Segment // the link the storm partitions
	Cells      []*Cell
	Nodes      []*Node

	chNaive ipv4.Addr
	chAware ipv4.Addr
	chProbe ipv4.Addr

	// Per-fleet workload payloads (see initPayloads).
	pingPayload  []byte
	probePayload []byte
	kioskPayload []byte

	probeSrv *stack.UDPSocket
	cancels  []func() // listeners/sockets to close during cleanup

	handoffHist *metrics.Histogram
	mHandoffs   *metrics.Counter
	handoffs    uint64
	modeMix     [core.NumOutModes][core.NumInModes]uint64

	// expectFilterDrops is set the moment a node emits a packet the
	// boundary filter is guaranteed to drop (a foreign-agent-attached
	// node sending home-sourced traffic out of a filtered cell), so the
	// accounting invariant knows whether filter drops are owed.
	expectFilterDrops bool

	trafficOn  bool
	movementOn bool
}

// New builds a fleet. The topology and all nodes are constructed; the
// nodes start detached and attach during the placement window of Run.
func New(opts Options) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{Opts: opts, trafficOn: true, movementOn: true}
	f.initPayloads()
	f.Net = inet.New(opts.Seed)
	// Fleet runs read counters, never trace events; tracing at this
	// scale would dominate the run.
	f.Net.Sim.Trace.Discard()
	reg := f.Net.Sim.Metrics
	f.handoffHist = reg.Histogram("fleet/handoff_ns", handoffBuckets())
	f.mHandoffs = reg.Counter("fleet/handoffs")
	f.buildTopology()
	f.buildNodes()
	return f
}

// careOf returns node idx's care-of address in cell c. Purely
// arithmetic: every (node, cell) pair has a fixed, unique address.
func (f *Fleet) careOf(c, idx int) ipv4.Addr {
	return f.Cells[c].LAN.Prefix.Host(nodeHostBase + idx)
}

// onRegistered records a completed handoff: the re-registration that
// followed the node's most recent attachment was accepted.
func (f *Fleet) onRegistered(n *Node) {
	f.handoffs++
	f.mHandoffs.Inc()
	f.handoffHist.ObserveDuration(f.Net.Sim.Now().Sub(n.moveAt))
}

// noteIn attributes one classified arrival to the (Out, In) pair of the
// conversation that elicited it. Registration replies are the mobility
// machinery's own traffic (always In-DT by Section 6.4) and are excluded
// so the matrix reflects workload conversations only.
func (f *Fleet) noteIn(n *Node, mode core.InMode, pkt ipv4.Packet) {
	if pkt.Protocol == ipv4.ProtoUDP && len(pkt.Payload) >= 2 &&
		binary.BigEndian.Uint16(pkt.Payload[0:2]) == udp.PortRegistration {
		return
	}
	if !n.hasOut {
		return
	}
	f.modeMix[n.lastOut][mode]++
}

// nodeName formats the canonical host name for node idx.
func nodeName(idx int) string { return fmt.Sprintf("mh%04d", idx) }
