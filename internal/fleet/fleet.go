// Package fleet is the fleet-scale roaming engine: a parameterized
// metro-scale topology (one home network, K visited cells behind a
// routed backbone, far correspondents), N mobile nodes driven by seeded
// movement models, and a scripted handoff storm that stresses the
// registration machinery the way Section 3 of the paper says real
// deployments will — everything moving at once, the home network
// partitioning mid-churn, and every drop accounted for.
//
// Determinism contract: a Fleet's Result is a pure function of its
// Options. Every random draw comes either from the simulation
// scheduler's seeded RNG or from a per-node RNG derived from (seed,
// node index); no wall-clock time, no map-iteration-order dependence.
// Two runs with the same Options are byte-identical, regardless of how
// many sibling trials run concurrently in the same process.
package fleet

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/encap"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/routeopt"
	"mob4x4/internal/sock"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// Local duration units (vtime.Duration is nanoseconds).
const (
	millisecond = vtime.Duration(1e6)
	second      = vtime.Duration(1e9)
)

// migrationTransit is the virtual transit delay of a node moving between
// regions: the radio is dark while the laptop rides to the next cell. It
// doubles as the shard group's default lookahead — a migration is the only
// cross-region event that does not travel over a declared link, so its
// delay is the floor on how far ahead any shard must announce one. Every
// cross-region network link has latency >= this (the closest cell hangs
// 2ms off the backbone), keeping the default a valid group-wide floor.
const migrationTransit = 2 * millisecond

// Movement model names accepted by Options.Model.
const (
	ModelWaypoint = "waypoint"
	ModelMarkov   = "markov"
)

// maxCells bounds the cell count: cell i uses prefix 10.(i+1).0.0/16,
// and the builder's point-to-point transfer networks are allocated from
// 10.200.0.0, so cells must stay below that.
const maxCells = 128

// nodeHostBase is the first host number inside a cell prefix reserved
// for node care-of addresses (numbers below it belong to the cell
// gateway, foreign agent and kiosk). Node i's care-of address in any
// cell is Prefix.Host(nodeHostBase+i) — allocated by arithmetic, not by
// a per-move allocator, so moving never grows an address table.
const nodeHostBase = 16

// Workload classes, assigned round-robin by node index. Each exercises
// a different region of the 4x4 grid.
const (
	clsPingNaive = iota // ICMP to an unaware far host: replies In-IE
	clsPingAware        // Out-DE to an aware far host: replies In-IE then In-DE
	clsProbe            // UDP to port 53: Out-DT out, In-DT back
	clsKiosk            // UDP to the cell kiosk: Out-DH out, In-DH back
	clsFacade           // UDP echo through the sock facade's core layer: Out-IE out, In-IE back
	numClasses
)

// portKiosk is the UDP port the per-cell kiosk echo service listens on.
const portKiosk = 9

// portFacade is the UDP port of the far facade echo service (clsFacade).
const portFacade = 7

// handoffBuckets returns nanosecond bounds for handoff latency: one
// uncontested registration round trip sits in the low milliseconds; a
// handoff that rode out a partition on retry backoff can take tens of
// seconds. A fresh slice per call keeps the package free of mutable
// globals (shard safety); it is called once per Fleet.
func handoffBuckets() []int64 {
	return []int64{
		1e6, 2e6, 5e6, 10e6, 25e6, 50e6, 100e6, 250e6, 500e6,
		1e9, 2e9, 5e9, 10e9, 20e9,
	}
}

// Options parameterizes a fleet. The zero value of any field selects
// the documented default.
type Options struct {
	Seed  int64
	Nodes int    // mobile node count (default 256)
	Cells int    // visited cell count (default 8, max 128)
	Model string // ModelWaypoint (default) or ModelMarkov

	// Workers is the number of goroutines driving the region shards
	// (default 1). The region structure — one shard per cell plus the
	// hub — is fixed by Cells, so the result is byte-identical for any
	// Workers value; more workers only buy wall-clock speed.
	Workers int

	Backbone    int // backbone router count (default 4)
	FilterEvery int // every k-th cell gets a source-filtering boundary router (default 4, 0 disables)
	FAEvery     int // every k-th node attaches via the cell's foreign agent (default 5, 0 disables)

	RegLifetime       uint16         // registration lifetime in seconds (default 20)
	ExpiryGranularity vtime.Duration // home agent expiry wheel coarseness (default 1s)

	// Storm schedule, relative to the run start.
	PlaceWindow    vtime.Duration // initial attach staggered over this window (default 2s)
	PartitionAt    vtime.Duration // home uplink cut at (default 12s)
	PartitionFor   vtime.Duration // ... for this long (default 6s)
	MassMoveAt     vtime.Duration // commanded all-nodes move at (default 24s)
	MassMoveWindow vtime.Duration // ... jittered over this window (default 2s)
	QuiesceFor     vtime.Duration // movement stops this long before EndAt (default 3s)
	EndAt          vtime.Duration // measurement ends at (default 34s)

	// Auth provisions a mobility security association per node: a key
	// derived from (Seed, index) shared by the node and the home agent,
	// HMAC authenticators on every registration message, and the home
	// agent's sliding identification window (DESIGN.md §11).
	Auth bool

	// Attack arms the adversarial storm of E15: binding thieves, a
	// replayer and rogue agents attacking the fleet mid-run.
	Attack AttackOptions

	// RouteOpt arms the route-optimization tier of E17: pushed
	// correspondent binding updates, compact encapsulation and
	// hierarchical local registration.
	RouteOpt RouteOptOptions
}

// RouteOptOptions parameterizes the route-optimization tier. Each piece
// is independent so experiments can measure it in isolation; the whole
// tier's bookkeeping (the correspondent-recovery histogram and the
// binding-update receiver) is armed when any field is set, or by
// Enabled alone for a measured baseline.
type RouteOptOptions struct {
	// Enabled arms the tier's measurement — the recovery histogram and
	// the aware correspondent's update receiver — without any feature:
	// the with/without baseline. Any feature flag implies it.
	Enabled bool

	// PushUpdates gives every mobile node a binding updater: on each
	// completed handoff it pushes the new care-of address straight to
	// its active correspondents (routeopt.Updater).
	PushUpdates bool

	// PushFromHA installs the home-agent-push alternative
	// (routeopt.HAUpdater): the agent pushes when a binding moves, to
	// the correspondents it saw tunneling In-IE.
	PushFromHA bool

	// Compact switches every tunnel endpoint to compact encapsulation
	// (encap.Compact). Implies FAEvery=-1: a shared foreign agent
	// cannot reconstruct per-visitor elided home addresses. Ignored
	// when Hierarchical is set, for the same reason one tier up — the
	// gateway decapsulates tunnels for every home in the metro.
	Compact bool

	// Hierarchical builds the regional gateway tier: a gateway foreign
	// agent (routeopt.RegionalAgent) aggregates the metro's cells
	// behind one stable care-of address, and every self-sufficient
	// node registers intra-metro handoffs locally with it instead of
	// across the home uplink. Foreign-agent-attached nodes keep their
	// flat registration path.
	Hierarchical bool

	// UpdateTTL is the cache lifetime advertised in pushed binding
	// updates (seconds, default 20).
	UpdateTTL uint16

	// BlackholeUpdates silently discards every binding-update request
	// (UDP 435) at the cell and home LANs — the fault-injection proof
	// that the push tier fails hard to In-IE triangle routing without
	// losing conversations.
	BlackholeUpdates bool
}

// engaged reports whether any part of the tier (or its baseline
// measurement) is armed.
func (r RouteOptOptions) engaged() bool {
	return r.Enabled || r.PushUpdates || r.PushFromHA || r.Compact || r.Hierarchical
}

// AttackOptions parameterizes the adversarial storm. The zero value of
// any field selects the documented default; the whole storm is off
// unless Enabled. Every window must clear the home-uplink partition
// ([PartitionAt, PartitionAt+PartitionFor)) — attack traffic that dies
// on a downed link is accounted as a partition drop, not an auth
// reject, and the exact-attribution invariant would misfire.
type AttackOptions struct {
	Enabled bool

	Thieves   int // binding thieves, thief k on cell k mod Cells (default 2)
	Replayers int // home-LAN replayer; the LAN admits one tap (default 1, max 1)
	Rogues    int // rogue agents, rogue k taps cell 2k+1 mod Cells (default 1, max Cells)

	ForgeAt     vtime.Duration // thief forge storm starts (default 5s)
	ForgeWindow vtime.Duration // ... and is spread over this window (default 5s)
	ForgeCount  int            // forgeries per thief (default 20)

	CaptureAt   vtime.Duration // replayer and rogue taps install (default 4s)
	CaptureFor  vtime.Duration // ... and hold for this long (default 5s)
	ReplayDelay vtime.Duration // prompt re-emission lag: auth_replay (default 250ms)

	LateReplayAt vtime.Duration // stale re-emission burst: auth_stale_id (default 30s)
	LateReplays  int            // captures re-emitted in the late burst (default 8)
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Nodes <= 0 {
		o.Nodes = 256
	}
	if o.Cells <= 0 {
		o.Cells = 8
	}
	if o.Cells > maxCells {
		o.Cells = maxCells
	}
	if o.Model == "" {
		o.Model = ModelWaypoint
	}
	if o.Workers <= 0 {
		o.Workers = 1
	}
	if o.Backbone <= 0 {
		o.Backbone = 4
	}
	if o.FilterEvery == 0 {
		o.FilterEvery = 4
	}
	if o.FAEvery == 0 {
		o.FAEvery = 5
	}
	if o.RouteOpt.Hierarchical {
		o.RouteOpt.Compact = false
	}
	if o.RouteOpt.Compact {
		o.FAEvery = -1
	}
	if o.RouteOpt.UpdateTTL == 0 {
		o.RouteOpt.UpdateTTL = 20
	}
	if o.RegLifetime == 0 {
		o.RegLifetime = 20
	}
	if o.PlaceWindow == 0 {
		o.PlaceWindow = 2 * second
	}
	if o.PartitionAt == 0 {
		o.PartitionAt = 12 * second
	}
	if o.PartitionFor == 0 {
		o.PartitionFor = 6 * second
	}
	if o.MassMoveAt == 0 {
		o.MassMoveAt = 24 * second
	}
	if o.MassMoveWindow == 0 {
		o.MassMoveWindow = 2 * second
	}
	if o.QuiesceFor == 0 {
		o.QuiesceFor = 3 * second
	}
	if o.EndAt == 0 {
		o.EndAt = 34 * second
	}
	if o.Attack.Enabled {
		a := &o.Attack
		if a.Thieves <= 0 {
			a.Thieves = 2
		}
		if a.Replayers <= 0 || a.Replayers > 1 {
			a.Replayers = 1
		}
		if a.Rogues <= 0 {
			a.Rogues = 1
		}
		if a.Rogues > o.Cells {
			a.Rogues = o.Cells
		}
		if a.ForgeAt == 0 {
			a.ForgeAt = 5 * second
		}
		if a.ForgeWindow == 0 {
			a.ForgeWindow = 5 * second
		}
		if a.ForgeCount <= 0 {
			a.ForgeCount = 20
		}
		if a.CaptureAt == 0 {
			a.CaptureAt = 4 * second
		}
		if a.CaptureFor == 0 {
			a.CaptureFor = 5 * second
		}
		if a.ReplayDelay == 0 {
			a.ReplayDelay = 250 * millisecond
		}
		if a.LateReplayAt == 0 {
			a.LateReplayAt = 30 * second
		}
		if a.LateReplays <= 0 {
			a.LateReplays = 8
		}
	}
	return o
}

// Cell is one visited network: a LAN behind its own gateway router,
// with a foreign agent and a mobile-aware kiosk host on-link.
type Cell struct {
	Index    int
	LAN      *inet.LAN
	FA       *mobileip.ForeignAgent
	Kiosk    ipv4.Addr // kiosk echo service address
	Filtered bool      // gateway enforces source-address filtering

	kioskSrv    *stack.UDPSocket
	kioskCancel func()
}

// Node is one mobile host under fleet control.
type Node struct {
	Idx  int
	MN   *mobileip.MobileNode
	Host *stack.Host

	fleet *Fleet
	ic    *icmphost.ICMP
	sock  *stack.UDPSocket // workload socket (probe + kiosk traffic, reply sink)
	fconn *sock.PacketConn // facade socket (clsFacade nodes only, core layer)
	rng   *rand.Rand
	class int
	viaFA bool

	// Route-optimization tier attachments (nil/false unless the
	// corresponding RouteOpt option is set). hier marks a node on the
	// hierarchical registration path; movedRegional is true while the
	// node's latest move awaits its regional registration reply — the
	// accept completes the handoff (see onRegionalAccepted).
	up            *routeopt.Updater
	lr            *routeopt.LocalRegistrar
	hier          bool
	movedRegional bool

	cell   int // current cell index; -1 until first placement
	region int // current region shard index (0 = hub)
	moveAt vtime.Time

	// migCell/migDwell carry the drawn destination and dwell across a
	// cross-region migration: the node is quiescent in flight, so parking
	// them on the Node itself costs no allocation and no synchronization.
	migCell  int
	migDwell vtime.Duration

	lastOut core.OutMode // out mode of the most recent workload send
	hasOut  bool
	seq     uint16

	moveTimer *vtime.Timer
	tickTimer *vtime.Timer
	// cmdTimer fires the node's commanded mass-move; cmdAt is the absolute
	// command time, drawn at setup. The timer travels with the node: each
	// migration cancels it on the old shard and re-arms on the new one.
	cmdTimer *vtime.Timer
	cmdAt    vtime.Time
	stopped  bool
}

// regionState is the per-region slice of the fleet's mutable run state.
// Every field is written only from events executing on that region's
// shard, which is what makes the engine race-free without locks; the
// measurement phase (workers joined) merges the slices.
type regionState struct {
	handoffHist *metrics.Histogram // this region's fleet/handoff_ns
	mHandoffs   *metrics.Counter   // this region's fleet/handoffs
	handoffs    uint64
	modeMix     [core.NumOutModes][core.NumInModes]uint64

	// expectFilterDrops is set the moment a node in this region emits a
	// packet the boundary filter is guaranteed to drop (a foreign-agent-
	// attached node sending home-sourced traffic out of a filtered cell).
	expectFilterDrops bool

	trafficOn  bool
	movementOn bool
}

// Fleet is a built (but not yet run) fleet simulation. The topology is
// sharded into regions — region 0 (the hub) holds the home network, the
// backbone and the far correspondents; region i+1 holds cell i — each
// with its own netsim.Sim on its own vtime shard, synchronized by the
// conservative lookahead of the cross-region links.
type Fleet struct {
	Opts Options
	Net  *inet.Network
	HA   *mobileip.HomeAgent

	HomeLAN    *inet.LAN
	HomeUplink *netsim.Segment // the link the storm partitions
	Cells      []*Cell
	Nodes      []*Node

	group *vtime.Group
	rs    []*regionState // indexed by region shard

	chNaive  ipv4.Addr
	chAware  ipv4.Addr
	chProbe  ipv4.Addr
	chFacade ipv4.Addr

	// Per-fleet workload payloads (see initPayloads).
	pingPayload   []byte
	probePayload  []byte
	kioskPayload  []byte
	facadePayload []byte

	probeSrv  *stack.UDPSocket
	facadeSrv *sock.PacketConn // facade echo server (core layer, hub shard)
	// facadeEchoes counts requests the facade server answered; written
	// only from its event hook on the hub shard.
	facadeEchoes uint64
	cancels      []func() // listeners/sockets to close during cleanup

	// attack holds the adversarial actors when Opts.Attack.Enabled; nil
	// otherwise, and every attack path is skipped.
	attack *attackState

	// Route-optimization tier (nil/zero unless Opts.RouteOpt engaged).
	// GFA is the hierarchical gateway; gfaAddr caches its address for
	// the hot markBinding compare. chAwareC is the aware far
	// correspondent, recvAware its binding-update receiver, hup the
	// HA-push updater.
	GFA       *routeopt.RegionalAgent
	gfaAddr   ipv4.Addr
	chAwareC  *mobileip.Correspondent
	recvAware *routeopt.Receiver
	hup       *routeopt.HAUpdater

	// Correspondent-recovery bookkeeping, all hub-shard state: the home
	// agent (and gateway) mark each real binding movement, and the aware
	// correspondent's cache learns observe how long the correspondent
	// routed against stale information. roMarks is point-lookup only,
	// never iterated.
	roMarks      map[ipv4.Addr]*roMark
	recoveryHist *metrics.Histogram
}

// roMark is one home address's latest binding movement as seen at the
// hub: the care-of address it moved to, when, and whether the aware
// correspondent has caught up yet.
type roMark struct {
	careOf ipv4.Addr
	at     vtime.Time
	seen   bool
}

// regionOf maps a cell index to its region shard index.
func regionOf(cell int) int { return cell + 1 }

// New builds a fleet. The topology and all nodes are constructed; the
// nodes start detached and attach during the placement window of Run.
func New(opts Options) *Fleet {
	opts = opts.withDefaults()
	f := &Fleet{Opts: opts}
	f.initPayloads()

	// One region shard per cell plus the hub. MAC addresses come from a
	// cluster-wide allocator so sender exclusion by MAC works across
	// split segments.
	regions := regionOf(opts.Cells)
	f.group = vtime.NewGroup(opts.Seed, regions)
	assert.NoError(f.group.SetDefaultLookahead(migrationTransit), "fleet: default lookahead")
	cluster := netsim.NewCluster()
	sims := make([]*netsim.Sim, regions)
	f.rs = make([]*regionState, regions)
	for i := range sims {
		sims[i] = cluster.NewSim(f.group.Shard(i))
		// Fleet runs read counters, never trace events; tracing at this
		// scale would dominate the run.
		sims[i].Trace.Discard()
		f.rs[i] = &regionState{
			handoffHist: sims[i].Metrics.Histogram("fleet/handoff_ns", handoffBuckets()),
			mHandoffs:   sims[i].Metrics.Counter("fleet/handoffs"),
			trafficOn:   true,
			movementOn:  true,
		}
	}
	f.Net = inet.NewSharded(sims)
	f.buildTopology()
	f.buildNodes()
	return f
}

// careOf returns node idx's care-of address in cell c. Purely
// arithmetic: every (node, cell) pair has a fixed, unique address.
func (f *Fleet) careOf(c, idx int) ipv4.Addr {
	return f.Cells[c].LAN.Prefix.Host(nodeHostBase + idx)
}

// onRegistered records a completed handoff: the re-registration that
// followed the node's most recent attachment was accepted. It runs on the
// node's current shard and charges that region's accumulators. With the
// push tier armed, a completed handoff is also the moment to tell the
// node's correspondents where it went.
func (f *Fleet) onRegistered(n *Node) {
	n.movedRegional = false
	rs := f.rs[n.region]
	rs.handoffs++
	rs.mHandoffs.Inc()
	rs.handoffHist.ObserveDuration(n.Host.Sim().Now().Sub(n.moveAt))
	if n.up != nil {
		n.up.PushBinding()
	}
}

// onRegionalAccepted fires when the gateway accepted a node's regional
// registration. When the node's latest move took the regional path,
// this accept is what completes the handoff — the home agent never saw
// the move. The first attach in a metro runs both registrations; the
// movedRegional flag makes whichever acceptance lands count the handoff
// exactly once.
func (f *Fleet) onRegionalAccepted(n *Node) {
	if !n.movedRegional {
		return
	}
	n.movedRegional = false
	rs := f.rs[n.region]
	rs.handoffs++
	rs.mHandoffs.Inc()
	rs.handoffHist.ObserveDuration(n.Host.Sim().Now().Sub(n.moveAt))
	if n.up != nil {
		n.up.PushBinding()
	}
}

// recoveryBuckets extends the handoff buckets upward: a correspondent
// that must wait out a partition plus a cache TTL before relearning a
// binding can lag most of a minute.
func recoveryBuckets() []int64 {
	return append(handoffBuckets(), 40e9, 60e9)
}

// markBinding records a real binding movement at the hub: the home
// agent accepted a registration for a new care-of address, or the
// gateway accepted a regional one. Renewals at the same address are not
// movements; neither is the home agent's view of a hierarchical node
// (the stable gateway address) changing hands.
func (f *Fleet) markBinding(home, careOf ipv4.Addr) {
	if careOf == f.gfaAddr {
		return
	}
	m := f.roMarks[home]
	if m == nil {
		m = &roMark{}
		f.roMarks[home] = m
	}
	if m.careOf == careOf {
		return
	}
	m.careOf = careOf
	m.at = f.Net.Sim.Now()
	m.seen = false
}

// noteLearn observes the aware correspondent catching up with a marked
// movement: the lag from the binding moving to the correspondent's
// cache holding the new care-of address is the window it routed (or
// would have routed) against stale information.
func (f *Fleet) noteLearn(b core.Binding) {
	m := f.roMarks[b.Home]
	if m == nil || m.seen || m.careOf != b.CareOf {
		return
	}
	m.seen = true
	f.recoveryHist.ObserveDuration(f.Net.Sim.Now().Sub(m.at))
}

// tunnelCodec returns the fleet's tunnel codec for an endpoint whose
// mobile home address is home (zero for agents and correspondents,
// which state per-binding homes via AppendEncapHome). nil selects the
// default IPIP.
func (f *Fleet) tunnelCodec(home ipv4.Addr) encap.Codec {
	if !f.Opts.RouteOpt.Compact {
		return nil
	}
	return encap.Compact{Home: home}
}

// noteIn attributes one classified arrival to the (Out, In) pair of the
// conversation that elicited it. Registration replies and binding-update
// acks are the mobility machinery's own traffic (always In-DT by Section
// 6.4) and are excluded so the matrix reflects workload conversations
// only.
func (f *Fleet) noteIn(n *Node, mode core.InMode, pkt ipv4.Packet) {
	if pkt.Protocol == ipv4.ProtoUDP && len(pkt.Payload) >= 2 {
		if sp := binary.BigEndian.Uint16(pkt.Payload[0:2]); sp == udp.PortRegistration ||
			sp == udp.PortBindingUpdate {
			return
		}
	}
	if !n.hasOut {
		return
	}
	f.rs[n.region].modeMix[n.lastOut][mode]++
}

// nodeName formats the canonical host name for node idx.
func nodeName(idx int) string { return fmt.Sprintf("mh%04d", idx) }
