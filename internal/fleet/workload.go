package fleet

import (
	"mob4x4/internal/core"
	"mob4x4/internal/sock"
	"mob4x4/internal/vtime"
)

// Workload: every node sends one small request per ~1s tick; the reply
// (if any) comes back through whichever In mode the correspondent
// chooses, and noteIn attributes it to the Out mode of the send. One
// outstanding conversation per node keeps the attribution sound.

// Workload payload bytes, built once per Fleet (not package-level: the
// slices would be process-global mutable state shared across shards).
func (f *Fleet) initPayloads() {
	f.pingPayload = []byte("fleet-ping")
	f.probePayload = []byte("fleet-probe")
	f.kioskPayload = []byte("fleet-kiosk")
	f.facadePayload = []byte("fleet-facade")
}

// startTicker arms node n's workload tick on its current shard,
// phase-offset by the node's RNG so ticks spread across the period
// instead of bursting. Called at every migration arrival (the ticker does
// not survive a region crossing; the fresh phase draw is deterministic
// because it sits in the node's own event order).
func (f *Fleet) startTicker(n *Node) {
	first := vtime.Duration(n.rng.Int63n(int64(second)))
	n.tickTimer = n.Host.Sched().After(first, func() { f.tick(n) })
}

// tick sends one workload request and re-arms.
func (f *Fleet) tick(n *Node) {
	if !f.rs[n.region].trafficOn || n.stopped {
		return
	}
	f.sendWorkload(n)
	n.tickTimer.Reset(second + vtime.Duration(n.rng.Int63n(int64(100*millisecond))))
}

// sendWorkload emits node n's class-specific request and records which
// Out mode the policy chose for it (read off the node's own per-mode
// counters around the synchronous send).
func (f *Fleet) sendWorkload(n *Node) {
	if n.cell < 0 {
		return
	}
	before := n.MN.Stats.OutByMode
	n.seq++
	switch n.class {
	case clsPingNaive:
		_ = n.ic.Ping(n.MN.Home(), f.chNaive, uint16(n.Idx), n.seq, f.pingPayload)
	case clsPingAware:
		_ = n.ic.Ping(n.MN.Home(), f.chAware, uint16(n.Idx), n.seq, f.pingPayload)
	case clsProbe:
		_ = n.sock.SendTo(f.chProbe, 53, f.probePayload)
	case clsKiosk:
		_ = n.sock.SendTo(f.Cells[n.cell].Kiosk, portKiosk, f.kioskPayload)
	case clsFacade:
		// Through the facade's core layer: the send resolves its source
		// through the node's mobility policy exactly like a raw socket,
		// and both ends of the conversation live on facade sockets.
		_ = n.fconn.WriteToCore(f.facadePayload, sock.Addr{IP: f.chFacade, Port: portFacade, Proto: "udp"})
	}
	after := n.MN.Stats.OutByMode
	for m := range after {
		if after[m] != before[m] {
			n.lastOut = core.OutMode(m)
			n.hasOut = true
		}
	}
	// A foreign-agent visitor in a filtered cell has no choice but
	// home-sourced packets (Out-DH), and any of them bound past the
	// boundary router is guaranteed dead: the invariant suite now owes
	// the drop-cause vector at least one filter drop.
	if n.viaFA && n.class != clsKiosk && f.Cells[n.cell].Filtered {
		f.rs[n.region].expectFilterDrops = true
	}
}
