// Package assert centralizes the repository's invariant failures. Library
// code must not call panic directly (the panicpolicy analyzer in
// internal/lint enforces this); instead it routes genuine
// cannot-happen conditions through Unreachable and impossible errors
// through NoError. Keeping every deliberate panic behind one tiny,
// grep-able package separates "a programmer broke an invariant" from
// "hostile or malformed input reached the wrong layer" — the latter must
// always surface as a returned error, never as a crash.
package assert

import "fmt"

// Unreachable reports a broken invariant: a state the surrounding logic
// guarantees cannot occur. It always panics. Callers should phrase the
// format string as a statement of the violated invariant, e.g.
// "vtime: scheduling event at %v before now %v".
func Unreachable(format string, args ...any) {
	panic("invariant violated: " + fmt.Sprintf(format, args...))
}

// NoError panics if err is non-nil. It is for errors that the caller has
// already made impossible (marshalling a packet it just built, parsing a
// literal it controls) where propagating an error return would only add
// dead code paths. context names the operation that "cannot fail".
func NoError(err error, context string) {
	if err != nil {
		panic("invariant violated: " + context + ": " + err.Error())
	}
}
