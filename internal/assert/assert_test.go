package assert

import (
	"errors"
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected a panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panicked with %T, want string", r)
		}
		if !strings.HasPrefix(msg, "invariant violated: ") {
			t.Errorf("panic %q lacks the invariant prefix", msg)
		}
		if !strings.Contains(msg, want) {
			t.Errorf("panic %q does not contain %q", msg, want)
		}
	}()
	fn()
}

func TestUnreachable(t *testing.T) {
	mustPanic(t, "mode 7 out of range", func() {
		Unreachable("mode %d out of range", 7)
	})
}

func TestNoError(t *testing.T) {
	NoError(nil, "never fails") // must not panic
	mustPanic(t, "building packet: boom", func() {
		NoError(errors.New("boom"), "building packet")
	})
}
