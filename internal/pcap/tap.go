package pcap

import (
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

// Attach installs a capture tap on sim that streams every transmitted
// frame into w as a synthesized Ethernet packet (14-byte header built
// from the frame's MACs and EtherType, followed by the IP/ARP payload),
// timestamped with the Sim's virtual clock. The tap copies the payload
// into the writer synchronously, honoring the pooled-buffer ownership
// contract: nothing aliases the frame after the tap returns.
//
// The vantage point is the sending NIC, before the loss draw and before
// fault-hook corruption (see Sim.SetTap): the capture records what was
// transmitted, like tcpdump on the sender, so a frame the wire later
// loses still appears exactly once.
//
// Attach belongs to the single-threaded build phase. Multiple Sims (the
// region shards of a sharded run) may share one Writer only if their
// events never interleave; per-region Writers are the shard-safe shape.
func Attach(sim *netsim.Sim, w *Writer) {
	sched := sim.Sched
	sim.SetTap(func(f netsim.Frame) {
		writeFrame(w, sched.Now(), f)
	})
}

// writeFrame appends one frame to w with a synthesized Ethernet header.
func writeFrame(w *Writer, at vtime.Time, f netsim.Frame) {
	var hdr [netsim.FrameHeaderLen]byte
	putMAC(hdr[0:6], f.Dst)
	putMAC(hdr[6:12], f.Src)
	hdr[12] = byte(f.Type >> 8)
	hdr[13] = byte(f.Type)
	w.WritePacket(int64(at), hdr[:], f.Payload)
}

// putMAC writes the low 48 bits of m big-endian — the same bytes
// netsim.MAC.String renders.
func putMAC(b []byte, m netsim.MAC) {
	b[0] = byte(m >> 40)
	b[1] = byte(m >> 32)
	b[2] = byte(m >> 24)
	b[3] = byte(m >> 16)
	b[4] = byte(m >> 8)
	b[5] = byte(m)
}
