package pcap_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"mob4x4/internal/encap"
	"mob4x4/internal/experiments"
	"mob4x4/internal/inet"
	"mob4x4/internal/netsim"
	"mob4x4/internal/pcap"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

var update = flag.Bool("update", false, "rewrite pcap golden files")

// arpUDPCapture captures one cold-start UDP exchange on a LAN: the ARP
// request/reply that resolves the peer, then the datagram and its echo.
func arpUDPCapture() *pcap.Writer {
	n := inet.New(3)
	lan := n.AddLAN("lan", "10.0.0.0/24", netsim.SegmentOpts{Latency: vtime.Duration(1e6)})
	a := n.AddHost("a", lan)
	b := n.AddHost("b", lan)
	n.ComputeRoutes()

	w := pcap.NewWriter()
	pcap.Attach(n.Sim, w)

	bs, err := b.OpenUDP(b.FirstAddr(), 7, nil)
	if err != nil {
		panic(err)
	}
	as, err := a.OpenUDP(a.FirstAddr(), 7000, nil)
	if err != nil {
		panic(err)
	}
	_ = as.SendTo(b.FirstAddr(), 7, []byte("hello"))
	n.RunFor(vtime.Duration(50e6))
	_ = bs.SendTo(a.FirstAddr(), 7000, []byte("world"))
	n.RunFor(vtime.Duration(50e6))
	return w
}

// tcpHandshakeCapture captures a correspondent-to-mobile tcplite
// handshake (plus a tiny exchange and orderly close) while the mobile
// host is away from home, so the home agent tunnels every inbound
// segment with the given encapsulation codec.
func tcpHandshakeCapture(codec encap.Codec) *pcap.Writer {
	s := experiments.Build(experiments.Options{Seed: 5, Codec: codec})
	s.Net.Sim.Trace.Discard()
	s.Roam()

	// Capture only the conversation, not the registration chatter.
	w := pcap.NewWriter()
	pcap.Attach(s.Net.Sim, w)

	if _, err := s.MHTCP.Listen(80, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		panic(err)
	}
	conn, err := s.CHFarTCP.Dial(s.CHFar.FirstAddr(), s.MN.Home(), 80)
	if err != nil {
		panic(err)
	}
	conn.OnEstablished = func() { _ = conn.Write([]byte("GET /")) }
	got := 0
	conn.OnData = func(p []byte) {
		got += len(p)
		if got >= 5 {
			conn.Close()
		}
	}
	s.Net.RunFor(2 * experiments.Second)
	return w
}

func TestGoldenCaptures(t *testing.T) {
	cases := []struct {
		name    string
		capture func() *pcap.Writer
	}{
		{"arp_udp", arpUDPCapture},
		{"tcp_handshake_ipip", func() *pcap.Writer { return tcpHandshakeCapture(encap.IPIP{}) }},
		{"tcp_handshake_minenc", func() *pcap.Writer { return tcpHandshakeCapture(encap.MinEnc{}) }},
		{"tcp_handshake_gre", func() *pcap.Writer { return tcpHandshakeCapture(encap.GRE{}) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := tc.capture()
			if w.Packets() == 0 {
				t.Fatal("capture is empty")
			}
			// Determinism: a fresh world produces identical bytes.
			if again := tc.capture(); !bytes.Equal(w.Bytes(), again.Bytes()) {
				t.Fatal("capture bytes differ between identical runs")
			}
			path := filepath.Join("testdata", tc.name+".pcap")
			if *update {
				if err := os.WriteFile(path, w.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			golden, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(w.Bytes(), golden) {
				t.Fatalf("capture differs from golden %s: %d vs %d bytes (re-run with -update if the change is intended)",
					path, len(w.Bytes()), len(golden))
			}
			// Reader verification: the golden parses as a classic
			// nanosecond capture of whole Ethernet frames.
			c, err := pcap.Parse(golden)
			if err != nil {
				t.Fatalf("golden does not parse: %v", err)
			}
			if !c.Nanosecond || c.LinkType != pcap.LinkTypeEthernet {
				t.Fatalf("golden header: %+v", c)
			}
			if len(c.Packets) != w.Packets() {
				t.Fatalf("golden has %d packets, writer reports %d", len(c.Packets), w.Packets())
			}
			last := int64(-1)
			for i, p := range c.Packets {
				if len(p.Data) < 14 {
					t.Fatalf("packet %d shorter than an Ethernet header", i)
				}
				if p.TSNanos < last {
					t.Fatalf("packet %d timestamp regresses", i)
				}
				last = p.TSNanos
			}
		})
	}
}
