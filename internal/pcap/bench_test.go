package pcap_test

import (
	"testing"

	"mob4x4/internal/pcap"
)

// BenchmarkWritePacket measures the per-frame cost of the capture plane:
// one packet-header encode plus the layer copies. This is the price every
// transmitted frame pays while a tap is attached; with the tap detached
// the datapath pays nothing (the 0 allocs/op steady-state benchmarks in
// netsim/stack run tapless and gate that half of the contract).
func BenchmarkWritePacket(b *testing.B) {
	hdr := make([]byte, 14)
	payload := make([]byte, 60)
	w := pcap.NewWriter()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A fresh writer every 64k packets bounds the capture buffer;
		// the allocation amortizes to nothing against the copies.
		if i%65536 == 0 {
			w = pcap.NewWriter()
		}
		w.WritePacket(int64(i)*1000, hdr, payload)
	}
}
