package pcap_test

import (
	"encoding/binary"
	"testing"

	"mob4x4/internal/pcap"
)

func TestWriterRoundTrip(t *testing.T) {
	w := pcap.NewWriter()
	w.WritePacket(0, []byte{1, 2, 3})
	w.WritePacket(1_500_000_000, []byte{0xde, 0xad}, []byte{0xbe, 0xef}) // layered write, 1.5s
	if w.Packets() != 2 {
		t.Fatalf("Packets() = %d", w.Packets())
	}
	c, err := pcap.Parse(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Nanosecond || c.BigEndian || c.LinkType != pcap.LinkTypeEthernet || c.SnapLen != pcap.DefaultSnapLen {
		t.Fatalf("header mismatch: %+v", c)
	}
	if len(c.Packets) != 2 {
		t.Fatalf("parsed %d packets", len(c.Packets))
	}
	p0, p1 := c.Packets[0], c.Packets[1]
	if p0.TSNanos != 0 || string(p0.Data) != "\x01\x02\x03" || p0.OrigLen != 3 {
		t.Fatalf("packet 0: %+v", p0)
	}
	if p1.TSNanos != 1_500_000_000 || string(p1.Data) != "\xde\xad\xbe\xef" {
		t.Fatalf("packet 1: %+v", p1)
	}
}

func TestWriterSnapLenTruncation(t *testing.T) {
	w := pcap.NewWriterSnapLen(4)
	if w.SnapLen() != 4 {
		t.Fatalf("SnapLen() = %d", w.SnapLen())
	}
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	w.WritePacket(42, payload[:2], payload[2:])
	c, err := pcap.Parse(w.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	p := c.Packets[0]
	if len(p.Data) != 4 || p.OrigLen != 8 {
		t.Fatalf("truncation: incl=%d orig=%d", len(p.Data), p.OrigLen)
	}
	if string(p.Data) != "\x01\x02\x03\x04" {
		t.Fatalf("truncated data: % x", p.Data)
	}
}

func TestSHA256Stable(t *testing.T) {
	mk := func() string {
		w := pcap.NewWriter()
		w.WritePacket(7, []byte("abc"))
		return w.SHA256()
	}
	a, b := mk(), mk()
	if a != b {
		t.Fatalf("hash unstable: %s vs %s", a, b)
	}
	if len(a) != 64 {
		t.Fatalf("hash length %d", len(a))
	}
}

// TestParseBigEndianMicros: the reader accepts the classic big-endian
// microsecond flavor a foreign tool might hand us.
func TestParseBigEndianMicros(t *testing.T) {
	var b []byte
	be := binary.BigEndian
	hdr := make([]byte, 24)
	be.PutUint32(hdr[0:], pcap.MagicMicros)
	be.PutUint16(hdr[4:], 2)
	be.PutUint16(hdr[6:], 4)
	be.PutUint32(hdr[16:], 1000)
	be.PutUint32(hdr[20:], pcap.LinkTypeEthernet)
	b = append(b, hdr...)
	rec := make([]byte, 16)
	be.PutUint32(rec[0:], 3)       // 3s
	be.PutUint32(rec[4:], 250_000) // 250ms in µs
	be.PutUint32(rec[8:], 2)
	be.PutUint32(rec[12:], 2)
	b = append(b, rec...)
	b = append(b, 0xca, 0xfe)

	c, err := pcap.Parse(b)
	if err != nil {
		t.Fatal(err)
	}
	if !c.BigEndian || c.Nanosecond {
		t.Fatalf("flavor: %+v", c)
	}
	p := c.Packets[0]
	if p.TSNanos != 3_250_000_000 {
		t.Fatalf("timestamp %d", p.TSNanos)
	}
	if string(p.Data) != "\xca\xfe" {
		t.Fatalf("data % x", p.Data)
	}
}

func TestParseErrors(t *testing.T) {
	w := pcap.NewWriter()
	w.WritePacket(0, []byte{1, 2, 3})
	good := w.Bytes()

	cases := []struct {
		name string
		b    []byte
	}{
		{"short header", good[:10]},
		{"bad magic", append([]byte{9, 9, 9, 9}, good[4:]...)},
		{"truncated record header", good[:len(good)-12]},
		{"truncated record body", good[:len(good)-1]},
	}
	for _, tc := range cases {
		buf := append([]byte(nil), tc.b...)
		if _, err := pcap.Parse(buf); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}

	// Corrupt the version in place.
	bad := append([]byte(nil), good...)
	bad[4] = 9
	if _, err := pcap.Parse(bad); err == nil {
		t.Error("bad version: no error")
	}
	// incl_len > snaplen.
	bad = append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[16:], 2) // snaplen 2 < incl 3
	if _, err := pcap.Parse(bad); err == nil {
		t.Error("incl over snaplen: no error")
	}
}
