// Package pcap writes — and minimally reads — classic libpcap capture
// files, with zero dependencies beyond the standard library. The writer
// is the repository's capture plane: a netsim tap (see Attach) streams
// every frame entering a simulated segment into a Writer, stamped with
// the deterministic virtual clock, so any experiment can emit a capture
// that Wireshark/tcpdump open directly. The reader exists for the golden
// tests: it validates exactly the fields a capture consumer depends on
// (magic, endianness, snaplen, link type, per-packet lengths) and
// nothing more.
//
// Only the classic (pre-pcapng) format is implemented, with the
// nanosecond-resolution magic: virtual timestamps are exact nanosecond
// counts and rounding them to microseconds would alias distinct events.
package pcap

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
)

// Capture-file constants.
const (
	// MagicNanos is the classic-pcap magic for nanosecond timestamp
	// resolution, written in the producer's byte order.
	MagicNanos = 0xa1b23c4d
	// MagicMicros is the original microsecond-resolution magic. The
	// writer never produces it; the reader accepts it.
	MagicMicros = 0xa1b2c3d4
	// LinkTypeEthernet is the DLT for Ethernet framing (what the netsim
	// tap synthesizes).
	LinkTypeEthernet = 1
	// DefaultSnapLen captures frames in full; segments enforce MTUs far
	// below it.
	DefaultSnapLen = 65535

	fileHeaderLen   = 24
	packetHeaderLen = 16
)

// Writer accumulates one capture in memory. Packets are appended in call
// order; the byte stream is a pure function of that call sequence, so a
// deterministic simulation produces a byte-identical capture every run.
// The writer is not safe for concurrent use — like everything else on a
// Sim it belongs to one event loop.
type Writer struct {
	buf     []byte
	snapLen uint32
	packets int
}

// NewWriter returns a Writer with an Ethernet link type and the default
// snap length. All multi-byte fields are little-endian.
func NewWriter() *Writer { return NewWriterSnapLen(DefaultSnapLen) }

// NewWriterSnapLen returns a Writer that truncates captured packets to
// snapLen bytes (recording the original length, as the format requires).
func NewWriterSnapLen(snapLen uint32) *Writer {
	w := &Writer{snapLen: snapLen, buf: make([]byte, 0, 4096)}
	var hdr [fileHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], MagicNanos)
	binary.LittleEndian.PutUint16(hdr[4:], 2) // version major
	binary.LittleEndian.PutUint16(hdr[6:], 4) // version minor
	// thiszone and sigfigs stay zero.
	binary.LittleEndian.PutUint32(hdr[16:], snapLen)
	binary.LittleEndian.PutUint32(hdr[20:], LinkTypeEthernet)
	w.buf = append(w.buf, hdr[:]...)
	return w
}

// WritePacket appends one packet whose on-wire bytes are the
// concatenation of the given layers (the tap passes the synthesized
// Ethernet header and the pooled IP payload separately to avoid an
// intermediate copy). tsNanos is the capture timestamp in nanoseconds;
// the layers are copied before return, so callers may pass pooled
// storage they immediately recycle.
func (w *Writer) WritePacket(tsNanos int64, layers ...[]byte) {
	orig := 0
	for _, l := range layers {
		orig += len(l)
	}
	incl := orig
	if incl > int(w.snapLen) {
		incl = int(w.snapLen)
	}
	var hdr [packetHeaderLen]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(tsNanos/1e9))
	binary.LittleEndian.PutUint32(hdr[4:], uint32(tsNanos%1e9))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(incl))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(orig))
	w.buf = append(w.buf, hdr[:]...)
	remain := incl
	for _, l := range layers {
		if remain <= 0 {
			break
		}
		if len(l) > remain {
			l = l[:remain]
		}
		w.buf = append(w.buf, l...)
		remain -= len(l)
	}
	w.packets++
}

// Bytes returns the capture file contents accumulated so far. The slice
// aliases the writer's buffer; callers must not mutate it.
func (w *Writer) Bytes() []byte { return w.buf }

// Packets returns the number of packets written.
func (w *Writer) Packets() int { return w.packets }

// SnapLen returns the writer's snap length.
func (w *Writer) SnapLen() uint32 { return w.snapLen }

// SHA256 returns the hex SHA-256 of the capture bytes — the digest the
// determinism gate compares across runs, worker counts and shard counts.
func (w *Writer) SHA256() string {
	sum := sha256.Sum256(w.buf)
	return hex.EncodeToString(sum[:])
}

// Packet is one record decoded by Parse.
type Packet struct {
	// TSNanos is the timestamp normalized to nanoseconds regardless of
	// the file's native resolution.
	TSNanos int64
	// Data is the captured bytes (len(Data) == incl_len).
	Data []byte
	// OrigLen is the packet's original wire length (>= len(Data)).
	OrigLen int
}

// Capture is a parsed classic-pcap file.
type Capture struct {
	// Nanosecond reports nanosecond (vs microsecond) timestamp
	// resolution.
	Nanosecond bool
	// BigEndian reports the file's byte order.
	BigEndian bool
	SnapLen   uint32
	LinkType  uint32
	Packets   []Packet
}

// Parse decodes a classic-pcap byte stream, accepting both byte orders
// and both timestamp resolutions, and validating that every record's
// lengths are internally consistent (incl_len <= orig_len, incl_len <=
// snaplen, record fits the file).
func Parse(b []byte) (*Capture, error) {
	if len(b) < fileHeaderLen {
		return nil, fmt.Errorf("pcap: truncated file header (%d bytes)", len(b))
	}
	var bo binary.ByteOrder = binary.LittleEndian
	c := &Capture{}
	switch binary.LittleEndian.Uint32(b) {
	case MagicNanos:
		c.Nanosecond = true
	case MagicMicros:
	default:
		switch binary.BigEndian.Uint32(b) {
		case MagicNanos:
			c.Nanosecond, c.BigEndian = true, true
			bo = binary.BigEndian
		case MagicMicros:
			c.BigEndian = true
			bo = binary.BigEndian
		default:
			return nil, fmt.Errorf("pcap: bad magic %#08x", binary.LittleEndian.Uint32(b))
		}
	}
	if major := bo.Uint16(b[4:]); major != 2 {
		return nil, fmt.Errorf("pcap: unsupported version %d.%d", major, bo.Uint16(b[6:]))
	}
	c.SnapLen = bo.Uint32(b[16:])
	c.LinkType = bo.Uint32(b[20:])
	rest := b[fileHeaderLen:]
	for len(rest) > 0 {
		if len(rest) < packetHeaderLen {
			return nil, fmt.Errorf("pcap: truncated packet header at record %d", len(c.Packets))
		}
		sec := int64(bo.Uint32(rest[0:]))
		frac := int64(bo.Uint32(rest[4:]))
		incl := int(bo.Uint32(rest[8:]))
		orig := int(bo.Uint32(rest[12:]))
		if incl > orig {
			return nil, fmt.Errorf("pcap: record %d incl_len %d > orig_len %d", len(c.Packets), incl, orig)
		}
		if uint32(incl) > c.SnapLen {
			return nil, fmt.Errorf("pcap: record %d incl_len %d > snaplen %d", len(c.Packets), incl, c.SnapLen)
		}
		if len(rest) < packetHeaderLen+incl {
			return nil, fmt.Errorf("pcap: record %d truncated (%d of %d data bytes)",
				len(c.Packets), len(rest)-packetHeaderLen, incl)
		}
		ts := sec * 1e9
		if c.Nanosecond {
			if frac >= 1e9 {
				return nil, fmt.Errorf("pcap: record %d nanosecond field %d out of range", len(c.Packets), frac)
			}
			ts += frac
		} else {
			if frac >= 1e6 {
				return nil, fmt.Errorf("pcap: record %d microsecond field %d out of range", len(c.Packets), frac)
			}
			ts += frac * 1e3
		}
		c.Packets = append(c.Packets, Packet{
			TSNanos: ts,
			Data:    rest[packetHeaderLen : packetHeaderLen+incl],
			OrigLen: orig,
		})
		rest = rest[packetHeaderLen+incl:]
	}
	return c, nil
}
