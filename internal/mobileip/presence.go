package mobileip

import (
	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
)

// Same-segment presence (Row C discovery). Section 5 motivates In-DH
// with the visiting-another-institution case, and Section 7.2 says the
// correspondent should use In-DH "if the correspondent host knows that
// the mobile host is on the same Ethernet segment". This file provides
// the knowing: a visiting mobile host broadcasts a small presence
// announcement (home address + current care-of address) on its local
// segment, and mobile-aware correspondents that hear it record an
// on-link binding — switching their replies to In-DH with no routers,
// no home agent, and no wide-area discovery involved.

// PortPresence is the UDP port presence announcements use.
const PortPresence = 436

// AnnouncePresence broadcasts one presence announcement on the mobile
// node's current segment. Call after each move (and optionally
// periodically); it is a no-op at home or when detached.
func (mn *MobileNode) AnnouncePresence() {
	if mn.atHome || !mn.ifc.NIC().Attached() {
		return
	}
	// Reuse the binding-notice wire format via a tiny header: the
	// advertisement codec already carries (addr, flags, lifetime, seq);
	// we need (home, careOf). Encode both addresses explicitly.
	b := make([]byte, 9)
	b[0] = 17 // presence type byte (16 = agent advertisement)
	copy(b[1:5], mn.cfg.Home[:])
	copy(b[5:9], mn.careOf[:])
	sock, err := mn.host.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		return
	}
	defer sock.Close()
	_ = sock.SendToFrom(mn.careOf, ipv4.Broadcast, PortPresence, b)
}

// ListenForVisitors makes a correspondent record on-link bindings from
// presence announcements heard on its segments. Returns a cancel
// function. Non-aware correspondents ignore everything (the policy drops
// the learn).
func (c *Correspondent) ListenForVisitors(lifetimeSec uint16) (cancel func(), err error) {
	sock, err := c.host.OpenUDP(ipv4.Zero, PortPresence, func(src ipv4.Addr, sp uint16, dst ipv4.Addr, payload []byte) {
		if len(payload) < 9 || payload[0] != 17 {
			return
		}
		var home, careOf ipv4.Addr
		copy(home[:], payload[1:5])
		copy(careOf[:], payload[5:9])
		if src != careOf {
			return // announcement must come from the claimed care-of address
		}
		c.LearnBinding(core.Binding{Home: home, CareOf: careOf}, lifetimeSec)
	})
	if err != nil {
		return nil, err
	}
	return sock.Close, nil
}
