package mobileip

import (
	"fmt"

	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
)

// Multicast support for Section 6.4: "One of the goals of IP multicast is
// to reduce unnecessary replication of network traffic. Tunneling
// multicast packets from the home network to the visited network is
// therefore a little self-defeating. It would be better if the multicast
// application were able to join the multicast group through its real
// physical interface on the current local network."
//
// Both options are implemented so the experiment can quantify the
// difference:
//
//   - MobileNode.JoinMulticastLocal — the paper's recommendation: join on
//     the visited network's physical interface (no Mobile IP involved).
//   - HomeAgent.RelayGroup — the "virtual interface on its distant home
//     network" alternative: the agent joins on the home segment on the
//     mobile host's behalf and tunnels every group packet to the care-of
//     address.

// JoinMulticastLocal subscribes the mobile host to group on its physical
// interface at the current location.
func (mn *MobileNode) JoinMulticastLocal(group ipv4.Addr) {
	mn.host.JoinGroup(mn.ifc, group)
}

// LeaveMulticastLocal drops the local subscription.
func (mn *MobileNode) LeaveMulticastLocal(group ipv4.Addr) {
	mn.host.LeaveGroup(mn.ifc, group)
}

// RelayGroup makes the home agent join the group on the home segment on
// behalf of the registered mobile host with the given home address, and
// tunnel every packet of that group through the binding. Returns an error
// if the host is not registered.
func (ha *HomeAgent) RelayGroup(group ipv4.Addr, home ipv4.Addr) error {
	if !group.IsMulticast() {
		return fmt.Errorf("mobileip: %s is not a multicast group", group)
	}
	if ha.bindings.get(home) == nil {
		return fmt.Errorf("mobileip: no binding for %s", home)
	}
	if ha.relayGroups == nil {
		ha.relayGroups = make(map[ipv4.Addr][]ipv4.Addr)
		ha.host.MulticastTap = ha.tapMulticast
	}
	ha.relayGroups[group] = append(ha.relayGroups[group], home)
	ha.host.JoinGroup(ha.iface, group)
	return nil
}

// StopRelayGroup removes the relay for (group, home).
func (ha *HomeAgent) StopRelayGroup(group ipv4.Addr, home ipv4.Addr) {
	subs := ha.relayGroups[group]
	out := subs[:0]
	for _, h := range subs {
		if h != home {
			out = append(out, h)
		}
	}
	if len(out) == 0 {
		delete(ha.relayGroups, group)
		ha.host.LeaveGroup(ha.iface, group)
	} else {
		ha.relayGroups[group] = out
	}
}

// tapMulticast intercepts group packets arriving on the home segment and
// tunnels them to each subscribed mobile host — the self-defeating
// replication the paper warns about, measured by the experiment.
func (ha *HomeAgent) tapMulticast(ifc *stack.Iface, pkt ipv4.Packet) bool {
	subs := ha.relayGroups[pkt.Dst]
	if len(subs) == 0 {
		return false
	}
	for _, home := range subs {
		b := ha.bindings.get(home)
		if b == nil {
			continue
		}
		// Relay fan-out builds each copy in a pooled buffer; Resubmit
		// copies it onward synchronously, so the buffer recycles per sub.
		buf := netsim.GetBuf()
		outer, err := encap.AppendEncapHome(ha.cfg.Codec, pkt, ha.Addr(), b.careOf, b.home, buf.B)
		if err != nil {
			netsim.PutBuf(buf)
			continue
		}
		// Group traffic is link-scoped (TTL 1); the tunnel is a fresh
		// unicast journey and needs its own TTL.
		outer.TTL = ipv4.DefaultTTL
		ha.Stats.MulticastRelayed++
		ha.host.Sim().Trace.Record(netsim.Event{
			Kind: netsim.EventEncap, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
			PktID:  pkt.TraceID,
			Detail: fmt.Sprintf("multicast relay %s -> %s via %s", pkt.Dst, home, b.careOf),
		})
		_ = ha.host.Resubmit(outer)
		netsim.PutBuf(buf)
	}
	return true
}
