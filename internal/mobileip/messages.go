// Package mobileip implements the Mobile IP machinery of Section 2 of the
// paper, in the style of the Draft IETF protocol ([Per96a]) with the
// paper's MosquitoNet emphasis on self-sufficient mobile hosts: a mobile
// host connects directly to visited networks, acquires its own care-of
// address, and registers it with its home agent over UDP; no foreign
// agent is required (one is provided anyway, for the comparison
// benchmark).
//
// The package executes the routing modes that package core selects: the
// home agent implements In-IE capture-and-tunnel (gratuitous proxy ARP +
// encapsulation) and the reverse tunnel of Out-IE; the mobile node
// implements all four Out modes behind the stack's route-lookup override;
// the correspondent agent implements the smart-CH behavior (In-DE, In-DH)
// of Sections 3.2 and 7.2.
package mobileip

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
)

// Registration message types (UDP port 434, after [Per96a]).
const (
	TypeRegistrationRequest uint8 = 1
	TypeRegistrationReply   uint8 = 3
)

// Registration reply codes. The three denial codes the authenticated
// path can return map one-to-one onto the metrics drop causes
// auth_bad_mac / auth_replay / auth_stale_id, so a reply trace and a
// metrics dump tell the same story.
const (
	CodeAccepted           uint8 = 0
	CodeDeniedUnreachable  uint8 = 64 // reason unspecified / delivery failure
	CodeDeniedBadRequest   uint8 = 70
	CodeDeniedAuthFailed   uint8 = 131 // authenticator missing, malformed, or MAC mismatch
	CodeDeniedStaleID      uint8 = 133 // identification behind the replay window (or legacy counter)
	CodeDeniedReplay       uint8 = 134 // identification already accepted inside the replay window
	CodeDeniedNotHomeAgent uint8 = 136 // we are not a home agent for this host
)

// Request flags.
const (
	// FlagReverseTunnel asks the home agent to accept reverse-tunneled
	// (Out-IE) packets from this binding ([Mon96] bi-directional
	// tunneling).
	FlagReverseTunnel uint8 = 1 << 0
	// FlagViaForeignAgent marks a registration relayed by a foreign
	// agent (the care-of address is the agent's, not the mobile
	// host's own).
	FlagViaForeignAgent uint8 = 1 << 1
)

// Request is a registration request. Lifetime zero with CareOf equal to
// the home address is a deregistration (the mobile host came home).
type Request struct {
	Flags     uint8
	Lifetime  uint16 // seconds
	Home      ipv4.Addr
	HomeAgent ipv4.Addr
	CareOf    ipv4.Addr
	ID        uint64 // matches replies to requests; replay ordering
}

const requestLen = 1 + 1 + 2 + 4 + 4 + 4 + 8

// Marshal serializes the request.
func (r *Request) Marshal() []byte {
	return r.AppendMarshal(make([]byte, 0, requestLen))
}

// AppendMarshal appends the serialized request to dst and returns the
// extended slice. Marshalling into a pooled buffer with AppendMarshal is
// the allocation-free form used on the registration path.
func (r *Request) AppendMarshal(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, requestLen)...)
	b := dst[n:]
	b[0] = TypeRegistrationRequest
	b[1] = r.Flags
	binary.BigEndian.PutUint16(b[2:], r.Lifetime)
	copy(b[4:8], r.Home[:])
	copy(b[8:12], r.HomeAgent[:])
	copy(b[12:16], r.CareOf[:])
	binary.BigEndian.PutUint64(b[16:], r.ID)
	return dst
}

// Unmarshal decodes a registration request in place, without the
// interface boxing of ParseMessage. It reports whether b held a
// well-formed request. Exactly requestLen bytes are required: a message
// that may carry a trailing authentication extension goes through
// ParseRequest instead. (The old `len(b) < requestLen` minimum silently
// accepted trailing garbage, which would have left bytes on the wire
// that no authenticator covers.)
func (r *Request) Unmarshal(b []byte) bool {
	if len(b) != requestLen || b[0] != TypeRegistrationRequest {
		return false
	}
	r.Flags = b[1]
	r.Lifetime = binary.BigEndian.Uint16(b[2:])
	copy(r.Home[:], b[4:8])
	copy(r.HomeAgent[:], b[8:12])
	copy(r.CareOf[:], b[12:16])
	r.ID = binary.BigEndian.Uint64(b[16:])
	return true
}

// Reply is a registration reply.
type Reply struct {
	Code      uint8
	Lifetime  uint16
	Home      ipv4.Addr
	HomeAgent ipv4.Addr
	ID        uint64
}

const replyLen = 1 + 1 + 2 + 4 + 4 + 8

// Marshal serializes the reply.
func (r *Reply) Marshal() []byte {
	return r.AppendMarshal(make([]byte, 0, replyLen))
}

// AppendMarshal appends the serialized reply to dst and returns the
// extended slice.
func (r *Reply) AppendMarshal(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, replyLen)...)
	b := dst[n:]
	b[0] = TypeRegistrationReply
	b[1] = r.Code
	binary.BigEndian.PutUint16(b[2:], r.Lifetime)
	copy(b[4:8], r.Home[:])
	copy(b[8:12], r.HomeAgent[:])
	binary.BigEndian.PutUint64(b[12:], r.ID)
	return dst
}

// Unmarshal decodes a registration reply in place; see Request.Unmarshal
// for the strict-length contract.
func (r *Reply) Unmarshal(b []byte) bool {
	if len(b) != replyLen || b[0] != TypeRegistrationReply {
		return false
	}
	r.Code = b[1]
	r.Lifetime = binary.BigEndian.Uint16(b[2:])
	copy(r.Home[:], b[4:8])
	copy(r.HomeAgent[:], b[8:12])
	r.ID = binary.BigEndian.Uint64(b[12:])
	return true
}

// ParseRequest decodes a registration datagram that may carry a trailing
// authentication extension. ok is true only for exactly requestLen bytes
// (hasAuth false) or requestLen+authExtLen bytes with a well-formed
// extension (hasAuth true) — anything truncated, oversized, or carrying
// a malformed extension is rejected whole, so an accepted message's MAC
// provably covers every byte that arrived.
func ParseRequest(b []byte) (r Request, ext AuthExt, hasAuth bool, ok bool) {
	switch len(b) {
	case requestLen:
	case requestLen + authExtLen:
		if !ext.Unmarshal(b[requestLen:]) {
			return r, ext, false, false
		}
		hasAuth = true
	default:
		return r, ext, false, false
	}
	if !r.Unmarshal(b[:requestLen]) {
		return r, ext, false, false
	}
	return r, ext, hasAuth, true
}

// ParseReply is ParseRequest's counterpart for replies: replies from an
// agent holding the mobility security association are authenticated too,
// so a rogue relay cannot tamper with granted lifetimes unnoticed.
func ParseReply(b []byte) (r Reply, ext AuthExt, hasAuth bool, ok bool) {
	switch len(b) {
	case replyLen:
	case replyLen + authExtLen:
		if !ext.Unmarshal(b[replyLen:]) {
			return r, ext, false, false
		}
		hasAuth = true
	default:
		return r, ext, false, false
	}
	if !r.Unmarshal(b[:replyLen]) {
		return r, ext, false, false
	}
	return r, ext, hasAuth, true
}

// ParseMessage decodes a registration datagram into *Request or *Reply.
// Messages with a well-formed authentication extension parse to their
// base message; trailing bytes that are not a well-formed extension are
// an error.
func ParseMessage(b []byte) (any, error) {
	if len(b) < 1 {
		return nil, fmt.Errorf("mobileip: empty message")
	}
	switch b[0] {
	case TypeRegistrationRequest:
		r, _, _, ok := ParseRequest(b)
		if !ok {
			return nil, fmt.Errorf("mobileip: malformed request (%d bytes)", len(b))
		}
		return &r, nil
	case TypeRegistrationReply:
		r, _, _, ok := ParseReply(b)
		if !ok {
			return nil, fmt.Errorf("mobileip: malformed reply (%d bytes)", len(b))
		}
		return &r, nil
	default:
		return nil, fmt.Errorf("mobileip: unknown message type %d", b[0])
	}
}

// IsDeregistration reports whether the request asks to clear the binding.
func (r *Request) IsDeregistration() bool { return r.Lifetime == 0 }
