package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/encap"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/stack"
)

func TestBindingLifetimeExpiry(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	// The default lifetime is 120s with renewal at 96s; kill the mobile
	// host before renewal by detaching it, then let the binding expire.
	w.mn.Detach()
	w.net.RunFor(121e9)
	if w.ha.Bindings() != 0 {
		t.Errorf("binding survived its lifetime: %d", w.ha.Bindings())
	}
	if w.ha.Stats.Expiries != 1 {
		t.Errorf("expiries = %d", w.ha.Stats.Expiries)
	}
	// The proxy-ARP entry is gone too: pings to the home address now
	// just vanish on the home LAN instead of reaching the HA.
	fwdBefore := w.ha.Stats.Forwarded
	ic := icmphost.Install(w.chFar)
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 1, 1, nil)
	w.net.RunFor(3e9)
	if w.ha.Stats.Forwarded != fwdBefore {
		t.Error("expired binding still forwarding")
	}
}

func TestRegistrationRenewalKeepsBindingAlive(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	// Run past several lifetimes; renewals must keep the binding.
	w.net.RunFor(400e9)
	if !w.mn.Registered() || w.ha.Bindings() != 1 {
		t.Fatalf("binding lost: registered=%v bindings=%d", w.mn.Registered(), w.ha.Bindings())
	}
	if w.mn.Stats.Renewals < 3 {
		t.Errorf("renewals = %d, want >= 3", w.mn.Stats.Renewals)
	}
	if w.ha.Stats.Expiries != 0 {
		t.Errorf("expiries = %d during steady renewal", w.ha.Stats.Expiries)
	}
}

func TestGoHomeDeregistersAndReclaims(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	w.mn.GoHome(w.homeLAN.Seg, w.homeLAN.Gateway)
	w.net.RunFor(3e9)

	if w.mn.Registered() || !w.mn.AtHome() {
		t.Error("node still registered/away after GoHome")
	}
	if w.ha.Bindings() != 0 {
		t.Errorf("binding survived deregistration: %d", w.ha.Bindings())
	}
	if w.ha.Stats.Deregistrations != 1 {
		t.Errorf("deregistrations = %d", w.ha.Stats.Deregistrations)
	}

	// Conversations now run completely normally: ping from far CH goes
	// directly, no tunnel.
	ic := icmphost.Install(w.chFar)
	delivered := false
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { delivered = src == w.mn.Home() }
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 1, 1, nil)
	w.net.RunFor(3e9)
	if !delivered {
		t.Fatal("ping to home address failed after return")
	}
	if w.ha.Stats.Forwarded != 0 {
		t.Errorf("HA tunneled %d packets for a host that is home", w.ha.Stats.Forwarded)
	}
}

func TestSecondMoveRebinds(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	first := w.roam(t)
	second := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, second, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(3e9)
	if !w.mn.Registered() {
		t.Fatal("re-registration failed")
	}
	if got, _ := w.ha.CareOf(w.mn.Home()); got != second || got == first {
		t.Errorf("binding = %s, want %s", got, second)
	}
	if w.ha.Bindings() != 1 {
		t.Errorf("bindings = %d", w.ha.Bindings())
	}
}

func TestReverseTunnelRejectsForgedOuterSource(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)

	// An attacker on the far LAN tunnels a packet to the HA with an
	// inner source of the mobile host but the WRONG outer source (its
	// own). The HA must not relay it (Section 6.1's spoofing concern).
	attacker := w.chFar
	inner := ipv4.Packet{
		Header: ipv4.Header{
			Protocol: 99, TTL: 64,
			Src: w.mn.Home(), // forged
			Dst: w.chNear.FirstAddr(),
		},
		Payload: []byte("evil"),
	}
	outer, err := encap.IPIP{}.Encapsulate(inner, attacker.FirstAddr(), w.haHost.FirstAddr())
	if err != nil {
		t.Fatal(err)
	}
	var got int
	w.chNear.Handle(99, func(_ *stack.Iface, pkt ipv4.Packet) { got++ })
	relayedBefore := w.ha.Stats.ReverseRelayed
	_ = attacker.SendIP(outer)
	w.net.RunFor(3e9)
	if got != 0 {
		t.Error("forged reverse-tunnel packet relayed to victim")
	}
	if w.ha.Stats.ReverseRelayed != relayedBefore {
		t.Error("forged packet counted as relayed")
	}
}

func TestBindingNoticeSentOncePerSource(t *testing.T) {
	w := buildWorld(t, worldOpts{notices: true})
	w.roam(t)
	ic := icmphost.Install(w.chFar)
	var notices int
	ic.OnBinding = func(src ipv4.Addr, msg icmp.Message) { notices++ }
	for i := 0; i < 4; i++ {
		_ = ic.Ping(ipv4.Zero, w.mn.Home(), 7, uint16(i+1), nil)
		w.net.RunFor(2e9)
	}
	if notices != 1 {
		t.Errorf("notices = %d, want 1 (rate limited per binding generation)", notices)
	}
	if w.ha.Stats.NoticesSent != 1 {
		t.Errorf("HA notices sent = %d", w.ha.Stats.NoticesSent)
	}
}

func TestOutModeCountsTracked(t *testing.T) {
	sel := core.NewSelector(core.StartOptimistic)
	w := buildWorld(t, worldOpts{selector: sel})
	w.roam(t)
	// Home-sourced traffic to the far CH: optimistic -> Out-DH.
	_ = w.mhHost.SendIP(ipv4.Packet{
		Header: ipv4.Header{Protocol: 99, Src: w.mn.Home(), Dst: w.chFar.FirstAddr()},
	})
	// Care-of-sourced traffic: Out-DT.
	_ = w.mhHost.SendIP(ipv4.Packet{
		Header: ipv4.Header{Protocol: 99, Src: w.mn.CareOf(), Dst: w.chFar.FirstAddr()},
	})
	w.net.RunFor(1e9)
	if w.mn.Stats.OutByMode[core.OutDH] == 0 {
		t.Error("Out-DH not counted")
	}
	if w.mn.Stats.OutByMode[core.OutDT] == 0 {
		t.Error("Out-DT not counted")
	}
}

func TestRegistrationDeniedWrongHomeAgent(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	// Point the MN at a host that is NOT its home agent (the far CH).
	mn2Host := w.chNear
	ifc := mn2Host.Ifaces()[0]
	mn2, err := mobileip.NewMobileNode(mn2Host, ifc, mobileip.MobileNodeConfig{
		Home:          ifc.Addr(),
		HomePrefix:    w.visitLAN.Prefix,
		HomeAgent:     w.haHost.FirstAddr(), // HA serves 36.1.1/24, not 128.9.1/24
		RegMaxRetries: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	mn2.MoveTo(w.farLAN.Seg, w.farLAN.NextAddr(), w.farLAN.Prefix, w.farLAN.Gateway)
	w.net.RunFor(5e9)
	if mn2.Registered() {
		t.Error("registration accepted for a home address outside the HA's network")
	}
	if mn2.Stats.RegistrationFails == 0 {
		t.Error("denial not recorded")
	}
	if w.ha.Bindings() != 0 {
		t.Error("HA holds a binding it should have denied")
	}
}
