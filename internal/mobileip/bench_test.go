package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/stack"
)

// BenchmarkRegistration measures the registration round trip: request
// marshal, UDP+IP transit across the simulated internet, agent binding
// update (proxy ARP, claim, timers), and the reply back.
func BenchmarkRegistration(b *testing.B) {
	w := buildWorld(b, worldOpts{})
	w.net.Sim.Trace.Enabled = false
	careOf := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(3e9)
	if !w.mn.Registered() {
		b.Fatal("initial registration failed")
	}
	careOf2 := w.visitLAN.NextAddr()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate care-of addresses: every move is a fresh
		// registration exchange.
		coa := careOf
		if i%2 == 1 {
			coa = careOf2
		}
		w.mn.MoveTo(w.visitLAN.Seg, coa, w.visitLAN.Prefix, w.visitLAN.Gateway)
		w.net.RunFor(3e9)
		if !w.mn.Registered() {
			b.Fatal("registration failed mid-benchmark")
		}
	}
	b.ReportMetric(float64(w.ha.Stats.Registrations), "registrations")
}

// BenchmarkTunnelForwarding measures the home agent's per-packet capture
// + encapsulate + resubmit path, end to end through the simulated
// internet to the mobile host.
func BenchmarkTunnelForwarding(b *testing.B) {
	w := buildWorld(b, worldOpts{selector: core.NewSelector(core.StartOptimistic)})
	w.net.Sim.Trace.Enabled = false
	w.roam(b)
	var delivered int
	w.mhHost.Handle(99, func(_ *stack.Iface, pkt ipv4.Packet) { delivered++ })
	payload := make([]byte, 1000)
	b.SetBytes(1000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.chFar.SendIP(ipv4.Packet{
			Header:  ipv4.Header{Protocol: 99, Dst: w.mn.Home()},
			Payload: payload,
		})
		if i%64 == 63 {
			// Bounded drain: the mobile node's renewal timers keep the
			// queue non-empty forever, so Run() would never return.
			w.net.RunFor(1e9)
		}
	}
	w.net.RunFor(2e9)
	if delivered == 0 {
		b.Fatal("nothing delivered")
	}
}

// BenchmarkModeDecision measures the route-override hot path for each
// outgoing mode (the per-packet policy cost the paper's method cache
// keeps small).
func BenchmarkModeDecision(b *testing.B) {
	for _, mode := range []core.OutMode{core.OutIE, core.OutDE, core.OutDH} {
		b.Run(mode.String(), func(b *testing.B) {
			sel := core.NewSelector(core.StartPessimistic)
			m := mode
			sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), ForceMode: &m})
			w := buildWorld(b, worldOpts{selector: sel, chDecap: true})
			w.net.Sim.Trace.Enabled = false
			w.roam(b)
			dst := w.chFar.FirstAddr()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pkt := ipv4.Packet{Header: ipv4.Header{Protocol: 99, Dst: dst}}
				_, _ = w.mhHost.RouteOverride(&pkt)
			}
		})
	}
}
