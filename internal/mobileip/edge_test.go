package mobileip_test

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
)

func TestHomeAgentMaxBindings(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	// Rebuild the agent with a capacity of 1 on a fresh host to avoid
	// the port-434 clash with the world's agent.
	haHost2 := stack.NewHost(w.net.Sim, "ha2")
	ifc := haHost2.AddIface("eth0", w.homeLAN.Seg, w.homeLAN.NextAddr(), w.homeLAN.Prefix)
	haHost2.Routes().AddDefault(ifc, w.homeLAN.Gateway)
	ha2, err := mobileip.NewHomeAgent(haHost2, ifc, mobileip.HomeAgentConfig{MaxBindings: 1})
	if err != nil {
		t.Fatal(err)
	}

	// Two registration requests from different "mobile hosts" (faked
	// directly over UDP from the visited LAN).
	sock, err := w.chNear.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	mkReq := func(home ipv4.Addr, id uint64) []byte {
		r := mobileip.Request{
			Lifetime: 120, Home: home, HomeAgent: ifc.Addr(),
			CareOf: w.chNear.FirstAddr(), ID: id,
		}
		return r.Marshal()
	}
	_ = sock.SendTo(ifc.Addr(), udp.PortRegistration, mkReq(w.homeLAN.Prefix.Host(50), 1))
	w.net.RunFor(2e9)
	_ = sock.SendTo(ifc.Addr(), udp.PortRegistration, mkReq(w.homeLAN.Prefix.Host(51), 1))
	w.net.RunFor(2e9)

	if ha2.Bindings() != 1 {
		t.Errorf("bindings = %d, want capacity limit 1", ha2.Bindings())
	}
	// Refreshing the existing binding is still allowed at capacity.
	_ = sock.SendTo(ifc.Addr(), udp.PortRegistration, mkReq(w.homeLAN.Prefix.Host(50), 2))
	w.net.RunFor(2e9)
	if ha2.Bindings() != 1 {
		t.Errorf("bindings after refresh = %d", ha2.Bindings())
	}
}

func TestRegistrationRetriesExhaustOnBlackhole(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	// Cut the visited LAN off from the home network before moving: the
	// gateway loses its route toward the home domain, so registration
	// requests vanish in a blackhole.
	w.visitGW.Routes().Remove(ipv4.MustParsePrefix("36.1.1.0/24"))
	careOf := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(30e9)
	if w.mn.Registered() {
		t.Fatal("registered through a blackhole?")
	}
	if w.mn.Stats.RegistrationFails == 0 {
		t.Error("retry exhaustion not recorded")
	}
	// Packets sent meanwhile via Out-IE are lost — the paper's
	// "transition period" packet loss — but nothing crashes, and a
	// later repaired network lets a fresh move register.
	w.net.ComputeRoutes()
	careOf2 := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf2, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(5e9)
	if !w.mn.Registered() {
		t.Error("recovery registration failed")
	}
}

func TestForeignAgentVisitorExpiry(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	faHost := w.net.AddHost("fa", w.visitLAN)
	w.net.ComputeRoutes()
	fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{
		VisitorLifetime: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	w.mn.MoveToForeignAgent(w.visitLAN.Seg, fa.Addr())
	w.net.RunFor(3e9)
	if fa.Visitors() != 1 {
		t.Fatalf("visitors = %d", fa.Visitors())
	}
	// Stop the node from refreshing and let the visitor entry lapse.
	w.mn.Detach()
	w.net.RunFor(10e9)
	if fa.Visitors() != 0 {
		t.Errorf("visitor entry survived its lifetime: %d", fa.Visitors())
	}
}

func TestGoHomeWithoutEverRoaming(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	// GoHome from home: a harmless no-op re-assertion.
	w.mn.GoHome(w.homeLAN.Seg, w.homeLAN.Gateway)
	w.net.RunFor(3e9)
	if !w.mn.AtHome() || w.mn.Registered() {
		t.Error("state wrong after redundant GoHome")
	}
	if w.ha.Bindings() != 0 {
		t.Error("phantom binding")
	}
}

func TestDeregistrationIsAcknowledged(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	deregsBefore := w.ha.Stats.Deregistrations
	w.mn.GoHome(w.homeLAN.Seg, w.homeLAN.Gateway)
	w.net.RunFor(3e9)
	if w.ha.Stats.Deregistrations != deregsBefore+1 {
		t.Errorf("deregistrations = %d", w.ha.Stats.Deregistrations)
	}
}

func TestTunnelTraceEventsRecorded(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	encBefore := w.net.Sim.Trace.Count(netsim.EventEncap)
	decBefore := w.net.Sim.Trace.Count(netsim.EventDecap)
	_ = w.chFar.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: 99, Dst: w.mn.Home()},
		Payload: []byte("x"),
	})
	w.net.RunFor(2e9)
	if w.net.Sim.Trace.Count(netsim.EventEncap) != encBefore+1 {
		t.Error("encap event missing")
	}
	if w.net.Sim.Trace.Count(netsim.EventDecap) != decBefore+1 {
		t.Error("decap event missing")
	}
}
