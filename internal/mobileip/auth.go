package mobileip

import (
	"crypto/hmac"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/binary"
	"hash"
)

// Mobile-home authentication extension (RFC 3220 §3.5.2 lineage, the
// mechanism PAPERS.md's authentication-extension paper grafts onto
// [Per96a]'s port-434 messages). The extension trails the fixed-size
// registration message:
//
//	+------+--------+---------+----------------+
//	| type | length |   SPI   |      MAC       |
//	|  32  |   20   | 4 bytes |    16 bytes    |
//	+------+--------+---------+----------------+
//
// The MAC is HMAC-SHA256 truncated to 16 bytes, computed over every byte
// that precedes it on the wire: the base message plus the extension's
// type, length, and SPI fields. The strict-length Unmarshal/ParseRequest
// contract (exactly base or base+extension, nothing else) is what makes
// "every byte that precedes it" well defined — no unauthenticated
// trailing bytes can ride along.
const (
	// AuthExtType identifies the mobile-home authentication extension.
	AuthExtType uint8 = 32
	// authMACLen is the truncated HMAC-SHA256 length carried on the wire.
	authMACLen = 16
	// authExtPayloadLen is the extension's length field: SPI + MAC.
	authExtPayloadLen = 4 + authMACLen
	// authExtLen is the full on-wire extension size.
	authExtLen = 2 + authExtPayloadLen
	// AuthExtLen exports the full on-wire extension size for other
	// packages framing authenticated messages with the same extension
	// (internal/routeopt's binding updates).
	AuthExtLen = authExtLen
)

// AuthExt is the decoded authenticator extension.
type AuthExt struct {
	SPI uint32
	MAC [authMACLen]byte
}

// AppendMarshal appends the serialized extension to dst and returns the
// extended slice.
func (a *AuthExt) AppendMarshal(dst []byte) []byte {
	n := len(dst)
	dst = append(dst, make([]byte, authExtLen)...)
	b := dst[n:]
	b[0] = AuthExtType
	b[1] = authExtPayloadLen
	binary.BigEndian.PutUint32(b[2:], a.SPI)
	copy(b[6:], a.MAC[:])
	return dst
}

// Unmarshal decodes an extension in place. Exactly authExtLen bytes are
// required: truncated or oversized extensions are rejected, never
// panicked over (fuzz invariant).
func (a *AuthExt) Unmarshal(b []byte) bool {
	if len(b) != authExtLen || b[0] != AuthExtType || b[1] != authExtPayloadLen {
		return false
	}
	a.SPI = binary.BigEndian.Uint32(b[2:])
	copy(a.MAC[:], b[6:])
	return true
}

// Authenticator is one mobility security association: an SPI naming the
// shared key plus a preallocated HMAC state. Sign and Verify reuse that
// state and a fixed scratch array, so the steady-state authenticated
// renewal path allocates nothing. An Authenticator belongs to a single
// simulation entity (MN, or the HA's per-home table) and is not safe for
// concurrent use — exactly the ownership discipline every per-node state
// in this repo already follows.
type Authenticator struct {
	spi     uint32
	mac     hash.Hash
	scratch [sha256.Size]byte
}

// NewAuthenticator builds the security association for (spi, key). The
// key bytes are absorbed into the HMAC state here, once.
func NewAuthenticator(spi uint32, key []byte) *Authenticator {
	return &Authenticator{spi: spi, mac: hmac.New(sha256.New, key)}
}

// SPI returns the association's security parameter index.
func (a *Authenticator) SPI() uint32 { return a.spi }

// AppendAuth appends the authentication extension to msg — which must
// hold the complete marshaled base message — and returns the extended
// slice. The MAC covers msg plus the extension's type/length/SPI header,
// i.e. exactly the bytes that precede the MAC on the wire.
func (a *Authenticator) AppendAuth(msg []byte) []byte {
	msg = append(msg, AuthExtType, authExtPayloadLen)
	msg = binary.BigEndian.AppendUint32(msg, a.spi)
	a.mac.Reset()
	a.mac.Write(msg)
	sum := a.mac.Sum(a.scratch[:0])
	return append(msg, sum[:authMACLen]...)
}

// Verify checks a full on-wire message (base || extension) against this
// association: the extension must parse, name our SPI, and carry a MAC
// matching the preceding bytes. Comparison is constant-time; state is
// not modified, so a failed Verify leaves no trace an attacker could
// probe.
func (a *Authenticator) Verify(msg []byte) bool {
	if len(msg) < authExtLen {
		return false
	}
	extOff := len(msg) - authExtLen
	var ext AuthExt
	if !ext.Unmarshal(msg[extOff:]) || ext.SPI != a.spi {
		return false
	}
	a.mac.Reset()
	a.mac.Write(msg[:len(msg)-authMACLen])
	sum := a.mac.Sum(a.scratch[:0])
	return subtle.ConstantTimeCompare(sum[:authMACLen], ext.MAC[:]) == 1
}

// ReplayVerdict classifies an identification against a ReplayWindow,
// mirroring the package's internal verdicts for external receivers
// (internal/routeopt's binding-update receiver).
type ReplayVerdict uint8

const (
	// ReplayAccept: fresh identification; the window has advanced.
	ReplayAccept ReplayVerdict = ReplayVerdict(replayAccept)
	// ReplayDuplicate: inside the window and already accepted.
	ReplayDuplicate ReplayVerdict = ReplayVerdict(replayDuplicate)
	// ReplayStale: behind the window entirely.
	ReplayStale ReplayVerdict = ReplayVerdict(replayStale)
)

// ReplayWindow is the exported form of the sliding identification window
// below, for packages that build their own authenticated message
// handlers on this package's associations. The zero value is ready to
// use. Callers must verify the message's MAC before Check — see
// replayWindow.check.
type ReplayWindow struct{ w replayWindow }

// Check classifies id and, on accept, marks it as seen.
func (w *ReplayWindow) Check(id uint64) ReplayVerdict {
	return ReplayVerdict(w.w.check(id))
}

// replayWindow is the sliding identification window of RFC 3220 §5.7
// style replay protection: the highest identification accepted so far
// plus a 64-bit bitmap over the 64 identifications at and below it.
// Identifications are vtime-derived and strictly monotone per mobile
// node, so in the common case every check is a shift-and-accept.
type replayWindow struct {
	lastID uint64
	bitmap uint64 // bit i set => lastID-i was accepted
}

// replayVerdict classifies an identification against a window.
type replayVerdict uint8

const (
	// replayAccept: fresh identification; the window has advanced.
	replayAccept replayVerdict = iota
	// replayDuplicate: inside the window and already accepted.
	replayDuplicate
	// replayStale: behind the window entirely.
	replayStale
)

// check classifies id and, on accept, marks it as seen. Callers must
// verify the message's MAC first: advancing the window on a forgery
// would let an attacker burn identifications the real node still needs.
func (w *replayWindow) check(id uint64) replayVerdict {
	switch {
	case id > w.lastID:
		if shift := id - w.lastID; shift >= 64 {
			w.bitmap = 1
		} else {
			w.bitmap = w.bitmap<<shift | 1
		}
		w.lastID = id
		return replayAccept
	case w.lastID-id >= 64:
		return replayStale
	default:
		bit := uint64(1) << (w.lastID - id)
		if w.bitmap&bit != 0 {
			return replayDuplicate
		}
		w.bitmap |= bit
		return replayAccept
	}
}
