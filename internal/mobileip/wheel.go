package mobileip

import (
	"slices"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/vtime"
)

// defaultExpiryGranularity is the coarseness of binding-expiry rounding:
// a binding expires at most this much later than its exact lifetime.
// Soft-state lifetimes are tens of seconds and mobile nodes renew at 80%
// of the lifetime, so sub-second expiry precision buys nothing — but one
// scheduler timer per binding costs a heap entry and a closure each, and
// at fleet scale (thousands of bindings renewing every lifetime) the old
// Stop-then-After per renewal churned the 4-ary heap for no benefit.
const defaultExpiryGranularity = vtime.Duration(1e9) // 1s

// wheelEntry defers the expiry of one binding generation. Entries are
// never removed early: renewal advances the binding's gen, and the stale
// entry is skipped when its slot fires (lazy deletion).
type wheelEntry struct {
	home ipv4.Addr
	gen  uint32
}

// expiryWheel is a coarse timer wheel for binding expiries. All bindings
// whose (rounded-up) expiry lands in the same granularity slot share one
// scheduler event; the wheel keeps exactly one vtime.Timer armed, for
// the earliest non-empty slot. Registering or renewing a binding is an
// append to a slot bucket — no heap churn, no per-binding timer — which
// is what makes thousand-node renewal storms cheap.
//
// Determinism: slot buckets fire in append order, the next armed slot is
// the minimum key over the slot map (order-independent), and entry
// staleness is a pure function of the binding table — no map-iteration
// order leaks into behavior.
type expiryWheel struct {
	gran  vtime.Duration
	slots map[int64][]wheelEntry
	// spare recycles fired slot buckets so steady-state renewals do not
	// allocate a fresh bucket per slot.
	spare [][]wheelEntry
	timer *vtime.Timer
	armed int64 // slot the timer is armed for; armedNone when idle
}

const armedNone = int64(-1)

func newExpiryWheel(gran vtime.Duration) *expiryWheel {
	if gran <= 0 {
		gran = defaultExpiryGranularity
	}
	return &expiryWheel{
		gran:  gran,
		slots: make(map[int64][]wheelEntry),
		armed: armedNone,
	}
}

// slotOf rounds an instant up to its slot: the slot boundary is the
// first instant at or after t, so entries always fire at or after their
// exact expiry (never early).
func (w *expiryWheel) slotOf(t vtime.Time) int64 {
	return (int64(t) + int64(w.gran) - 1) / int64(w.gran)
}

// schedule files an expiry for (home, gen) at instant at. fire is the
// home agent's sweep callback; it is the same function for every call,
// so the single timer can be re-armed freely.
func (w *expiryWheel) schedule(sched *vtime.Scheduler, at vtime.Time, home ipv4.Addr, gen uint32, fire func()) {
	slot := w.slotOf(at)
	bucket, ok := w.slots[slot]
	if !ok && len(w.spare) > 0 {
		bucket = w.spare[len(w.spare)-1][:0]
		w.spare = w.spare[:len(w.spare)-1]
	}
	w.slots[slot] = append(bucket, wheelEntry{home: home, gen: gen})
	if w.armed == armedNone || slot < w.armed {
		w.arm(sched, slot, fire)
	}
}

// arm points the single timer at slot's boundary instant.
func (w *expiryWheel) arm(sched *vtime.Scheduler, slot int64, fire func()) {
	w.armed = slot
	d := vtime.Time(slot * int64(w.gran)).Sub(sched.Now())
	if w.timer == nil {
		w.timer = sched.After(d, fire)
		return
	}
	w.timer.Reset(d)
}

// take removes and returns the bucket for the armed slot (nil when the
// wheel is idle) and disarms. The caller processes the entries, then
// calls rearm.
func (w *expiryWheel) take() []wheelEntry {
	if w.armed == armedNone {
		return nil
	}
	bucket := w.slots[w.armed]
	delete(w.slots, w.armed)
	w.armed = armedNone
	return bucket
}

// recycle returns a processed bucket to the spare pool.
func (w *expiryWheel) recycle(bucket []wheelEntry) {
	if cap(bucket) > 0 {
		w.spare = append(w.spare, bucket[:0])
	}
}

// rearm points the timer at the earliest remaining slot, if any. When
// every slot is empty the timer stays unarmed — a drained agent holds
// zero pending scheduler events, the invariant the chaos and fleet
// drains assert.
func (w *expiryWheel) rearm(sched *vtime.Scheduler, fire func()) {
	min := armedNone
	//mob4x4vet:allow mapiter min over keys is a commutative reduction; only the scalar escapes
	for slot := range w.slots {
		if min == armedNone || slot < min {
			min = slot
		}
	}
	if min != armedNone {
		w.arm(sched, min, fire)
	}
}

// reset disarms the timer and drops every pending entry (crash: the
// bindings the entries referred to are gone, and the binding table's
// generations restart, so stale entries must not survive).
func (w *expiryWheel) reset() {
	if w.timer != nil {
		w.timer.Stop()
	}
	// Drain in slot order so the spare pool is rebuilt identically every
	// run — recycle order decides which capacities later slots inherit.
	slots := make([]int64, 0, len(w.slots))
	for slot := range w.slots {
		slots = append(slots, slot)
	}
	slices.Sort(slots)
	for _, slot := range slots {
		w.recycle(w.slots[slot])
		delete(w.slots, slot)
	}
	w.armed = armedNone
}
