package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/tcplite"
)

// TestAutoProberUpgradesPessimisticStart wires the full §7.1.2 loop: a
// pessimistic conversation starts at Out-IE, the prober tentatively
// upgrades, transport progress confirms each step, and the conversation
// ends up direct (Out-DH) with no filters in the way.
func TestAutoProberUpgradesPessimisticStart(t *testing.T) {
	sel := core.NewSelector(core.StartPessimistic)
	w := buildWorld(t, worldOpts{selector: sel, chDecap: true})
	w.roam(t)

	// Transport feedback drives confirm/rollback.
	fb := &mobileip.SelectorFeedback{Selector: sel}
	mhTCP := tcplite.New(w.mhHost)
	mhTCP.Feedback = fb
	chTCP := tcplite.New(w.chFar)
	if _, err := chTCP.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		t.Fatal(err)
	}

	prober := mobileip.NewAutoProber(w.mn, 3e9)
	defer prober.Stop()
	target := w.chFar.FirstAddr()
	prober.Track(target)

	conn, err := mhTCP.Dial(w.mn.Home(), target, 7)
	if err != nil {
		t.Fatal(err)
	}
	echoes := 0
	conn.OnData = func(p []byte) { echoes++ }
	conn.OnEstablished = func() { _ = conn.Write([]byte("k")) }
	tick := func() {}
	tick = func() {
		if conn.State() == tcplite.StateClosed {
			return
		}
		_ = conn.Write([]byte("k"))
		w.net.Sched().After(1e9, tick)
	}
	w.net.Sched().After(1e9, tick)

	if got := sel.ModeFor(target); got != core.OutIE {
		t.Fatalf("initial mode = %s", got)
	}
	w.net.RunFor(30e9)

	if echoes == 0 {
		t.Fatal("conversation made no progress")
	}
	if got := sel.ModeFor(target); got != core.OutDH {
		t.Errorf("mode after probing = %s, want Out-DH", got)
	}
	if prober.Probes < 2 {
		t.Errorf("probes = %d, want >= 2 (IE->DE->DH)", prober.Probes)
	}
}

// TestAutoProberRollsBackUnderFiltering: with the home boundary
// filtering, Out-DH probes fail and the conversation settles back to a
// working tunneled mode instead of dying.
func TestAutoProberRollsBackUnderFiltering(t *testing.T) {
	sel := core.NewSelector(core.StartPessimistic)
	w := buildWorld(t, worldOpts{selector: sel, homeFilter: true, chDecap: false})
	w.roam(t)

	fb := &mobileip.SelectorFeedback{Selector: sel}
	sel.CHCanDecapsulate = func(a ipv4.Addr) bool { return false }
	mhTCP := tcplite.New(w.mhHost)
	mhTCP.Feedback = fb
	chTCP := tcplite.New(w.chHome)
	if _, err := chTCP.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		t.Fatal(err)
	}

	prober := mobileip.NewAutoProber(w.mn, 5e9)
	defer prober.Stop()
	target := w.chHome.FirstAddr()
	prober.Track(target)

	conn, err := mhTCP.Dial(w.mn.Home(), target, 7)
	if err != nil {
		t.Fatal(err)
	}
	echoes := 0
	dead := false
	conn.OnData = func(p []byte) { echoes++ }
	conn.OnError = func(error) { dead = true }
	conn.OnEstablished = func() { _ = conn.Write([]byte("k")) }
	tick := func() {}
	tick = func() {
		if dead || conn.State() == tcplite.StateClosed {
			return
		}
		_ = conn.Write([]byte("k"))
		w.net.Sched().After(1e9, tick)
	}
	w.net.Sched().After(1e9, tick)

	w.net.RunFor(120e9)

	if dead {
		t.Fatal("conversation died; probe rollback failed")
	}
	if echoes == 0 {
		t.Fatal("no progress")
	}
	// Probes to Out-DH were tried and rolled back: the final mode is the
	// conservative one, and the selector recorded fallback moves.
	if got := sel.ModeFor(target); got != core.OutIE {
		t.Errorf("final mode = %s, want Out-IE (DH fails through the filter)", got)
	}
	if sel.FallbackMoves == 0 {
		t.Error("no rollbacks recorded despite failing probes")
	}
}
