package mobileip

import (
	"mob4x4/internal/ipv4"
)

// Trace-detail builders for the tunnel hot paths, byte-identical to the
// fmt.Sprintf strings they replaced but assembled with ipv4.Addr.AppendText
// into stack buffers. Call sites gate on Tracer.Detailing().

// tunnelDetail renders "tunnel SRC > DST (inner ISRC > IDST)".
func tunnelDetail(src, dst, innerSrc, innerDst ipv4.Addr) string {
	var buf [96]byte
	b := append(buf[:0], "tunnel "...)
	b = src.AppendText(b)
	b = append(b, " > "...)
	b = dst.AppendText(b)
	b = append(b, " (inner "...)
	b = innerSrc.AppendText(b)
	b = append(b, " > "...)
	b = innerDst.AppendText(b)
	b = append(b, ')')
	return string(b)
}

// chTunnelDetail renders "CH tunnel SRC > CAREOF (inner dst DST)".
func chTunnelDetail(src, careOf, innerDst ipv4.Addr) string {
	var buf [96]byte
	b := append(buf[:0], "CH tunnel "...)
	b = src.AppendText(b)
	b = append(b, " > "...)
	b = careOf.AppendText(b)
	b = append(b, " (inner dst "...)
	b = innerDst.AppendText(b)
	b = append(b, ')')
	return string(b)
}

// decapDetail renders prefix + "inner ISRC > IDST" (prefix is
// "detunnel: " or "reverse tunnel: ").
func decapDetail(prefix string, innerSrc, innerDst ipv4.Addr) string {
	var buf [64]byte
	b := append(buf[:0], prefix...)
	b = append(b, "inner "...)
	b = innerSrc.AppendText(b)
	b = append(b, " > "...)
	b = innerDst.AppendText(b)
	return string(b)
}
