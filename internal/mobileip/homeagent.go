package mobileip

import (
	"fmt"

	"mob4x4/internal/encap"
	"mob4x4/internal/icmp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// HomeAgentConfig tunes a home agent.
type HomeAgentConfig struct {
	// Codec selects the tunnel encapsulation (default IPIP).
	Codec encap.Codec
	// SendBindingNotices makes the agent send the ICMP care-of
	// notification of Section 3.2 to correspondents whose packets it
	// forwards, so smart correspondents can switch to In-DE.
	SendBindingNotices bool
	// NoticeLifetime is the lifetime advertised in binding notices
	// (seconds; default 60).
	NoticeLifetime uint16
	// MaxBindings bounds the binding table (0 = unlimited).
	MaxBindings int
	// ExpiryGranularity is the coarseness of the binding-expiry timer
	// wheel (default 1s): a binding may outlive its exact lifetime by up
	// to this much. See expiryWheel.
	ExpiryGranularity vtime.Duration
	// RequireAuth denies every registration that does not carry a valid
	// mobile-home authenticator, even for homes with no provisioned key
	// (those can never authenticate and are always refused). Without it,
	// authentication is enforced per home address: provisioning a key
	// (ProvisionKey) makes it mandatory for that home only, and
	// unprovisioned homes keep the legacy trust-the-sender behavior.
	RequireAuth bool
}

// HomeAgentStats counts agent activity.
type HomeAgentStats struct {
	Registrations    uint64
	Deregistrations  uint64
	Expiries         uint64
	Forwarded        uint64 // packets tunneled to mobile hosts
	ReverseRelayed   uint64 // reverse-tunneled packets forwarded for MHs
	NoticesSent      uint64
	BadRequests      uint64
	StaleRequests    uint64
	AuthBadMAC       uint64 // registrations denied: missing/forged/tampered authenticator
	AuthReplays      uint64 // registrations denied: identification replayed inside the window
	AuthStale        uint64 // registrations denied: identification behind the window
	MulticastRelayed uint64
	Crashes          uint64
	Restarts         uint64
}

// authState is one provisioned mobility security association at the
// agent: the shared-key authenticator plus the sliding identification
// window. The key is configuration and survives Crash; the window is
// soft state and dies with it.
type authState struct {
	auth   *Authenticator
	window replayWindow
}

// HomeAgent is "a machine on the mobile host's home network that acts as a
// proxy on behalf of the mobile host for the duration of its absence"
// (Section 2). It captures packets for registered mobile hosts with proxy
// ARP, tunnels them to the current care-of address, relays reverse-
// tunneled packets, and optionally tells smart correspondents where the
// mobile host is.
//
// The agent is built to hold thousands of bindings: registrations live
// in an indexed slot table (bindingTable) and expiries share a coarse
// timer wheel (expiryWheel) instead of one scheduler timer per binding,
// so a fleet-wide renewal storm costs O(1) scheduler work per renewal.
type HomeAgent struct {
	host  *stack.Host
	iface *stack.Iface // home-network interface used for proxy ARP
	cfg   HomeAgentConfig
	sock  *stack.UDPSocket

	bindings *bindingTable
	wheel    *expiryWheel
	// fireExpiry is the wheel's sweep callback, bound once so re-arming
	// the wheel timer never allocates a closure.
	fireExpiry func()

	// relayGroups maps multicast groups to the home addresses of mobile
	// hosts subscribed through this agent (Section 6.4 relay mode).
	relayGroups map[ipv4.Addr][]ipv4.Addr

	// auth holds the provisioned security associations, keyed by home
	// address. The map is never iterated on a hot path; registration
	// processing only does point lookups.
	auth map[ipv4.Addr]*authState

	// crashed marks the agent as dead: all handlers drop their input
	// until Restart. Fault schedules use Crash/Restart to model agent
	// power loss with binding-table loss.
	crashed bool

	// OnBind, when non-nil, observes every accepted (non-deregistration)
	// registration after the binding lands in the table. E15's hijack
	// monitor hangs here so "no binding ever pointed at an attacker
	// care-of address" is checked at every install, not just at quiesce.
	OnBind func(home, careOf ipv4.Addr)

	// OnForward, when non-nil, observes every packet the agent tunnels
	// to a mobile host, keyed by (correspondent source, home address).
	// The HA-push route-optimization updater hangs here to learn which
	// correspondents are active per binding.
	OnForward func(correspondent, home ipv4.Addr)

	Stats HomeAgentStats

	// Metric instruments, resolved once at construction.
	reg        *metrics.Registry
	bindGauge  *metrics.Gauge
	mForwarded *metrics.Counter
	mReverse   *metrics.Counter
	mNotices   *metrics.Counter
	mExpiries  *metrics.Counter
}

// NewHomeAgent starts a home agent on host, using iface as the
// home-network interface (the one on whose segment it proxy-ARPs for
// absent mobile hosts).
func NewHomeAgent(host *stack.Host, iface *stack.Iface, cfg HomeAgentConfig) (*HomeAgent, error) {
	if cfg.Codec == nil {
		cfg.Codec = encap.IPIP{}
	}
	if cfg.NoticeLifetime == 0 {
		cfg.NoticeLifetime = 60
	}
	// Count tunnel work under the "ha" role alongside the registry's
	// global Encaps/Decaps totals.
	cfg.Codec = encap.Instrument(cfg.Codec, host.Sim().Metrics, "ha")
	reg := host.Sim().Metrics
	ha := &HomeAgent{
		host:       host,
		iface:      iface,
		cfg:        cfg,
		bindings:   newBindingTable(),
		wheel:      newExpiryWheel(cfg.ExpiryGranularity),
		reg:        reg,
		bindGauge:  reg.Gauge("ha/bindings"),
		mForwarded: reg.Counter("ha/forwarded"),
		mReverse:   reg.Counter("ha/reverse_relayed"),
		mNotices:   reg.Counter("ha/notices_sent"),
		mExpiries:  reg.Counter("ha/expiries"),
	}
	ha.fireExpiry = ha.sweepExpiries
	sock, err := host.OpenUDP(ipv4.Zero, udp.PortRegistration, ha.handleRegistration)
	if err != nil {
		return nil, fmt.Errorf("mobileip: home agent: %w", err)
	}
	ha.sock = sock
	// Reverse tunnel: decapsulate tunneled packets addressed to us and
	// forward the inner packet on behalf of the mobile host (Figure 3).
	host.Handle(cfg.Codec.Proto(), ha.handleTunneled)
	return ha, nil
}

// Host returns the agent's host.
func (ha *HomeAgent) Host() *stack.Host { return ha.host }

// Addr returns the agent's address on the home network.
func (ha *HomeAgent) Addr() ipv4.Addr { return ha.iface.Addr() }

// Bindings returns the number of active bindings.
func (ha *HomeAgent) Bindings() int { return ha.bindings.len() }

// CareOf returns the registered care-of address for a home address.
func (ha *HomeAgent) CareOf(home ipv4.Addr) (ipv4.Addr, bool) {
	b := ha.bindings.get(home)
	if b == nil {
		return ipv4.Zero, false
	}
	return b.careOf, true
}

// Crash models the agent losing power: every binding — and with it the
// proxy-ARP claims and address captures — vanishes, timers included, and
// the agent stops answering until Restart. The soft-state design means
// no stable storage exists to recover from; re-registration by the
// mobile hosts is the only way bindings come back (graceful restart).
func (ha *HomeAgent) Crash() {
	if ha.crashed {
		return
	}
	ha.crashed = true
	ha.Stats.Crashes++
	// Slot order is deterministic (a pure function of the registration
	// history), so crash cleanup stays trace-deterministic without the
	// sort the old map-keyed table needed.
	ha.bindings.forEach(func(b *binding) {
		ha.host.Unclaim(b.home)
		ha.iface.Proxy().Remove(b.home)
	})
	ha.bindings.reset()
	ha.wheel.reset()
	ha.bindGauge.Set(0)
	ha.relayGroups = nil
	// Keys are configuration and survive; replay windows are soft state
	// and die with the crash (Restart's documented amnesty for in-flight
	// identifications).
	//mob4x4vet:allow mapiter per-key window resets touch disjoint state; order cannot leak
	for _, st := range ha.auth {
		st.window = replayWindow{}
	}
	ha.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventNote, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
		Detail: "home agent crashed: bindings lost",
	})
}

// Restart brings a crashed agent back with an empty binding table. It
// re-learns bindings from the registrations (and renewal probes) mobile
// hosts keep sending; identification replay state died with the crash,
// so in-flight IDs from before the crash are accepted — the counter only
// ever advances on the mobile-host side.
func (ha *HomeAgent) Restart() {
	if !ha.crashed {
		return
	}
	ha.crashed = false
	ha.Stats.Restarts++
	ha.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventNote, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
		Detail: "home agent restarted: awaiting re-registrations",
	})
}

// Crashed reports whether the agent is currently down.
func (ha *HomeAgent) Crashed() bool { return ha.crashed }

// ProvisionKey installs the mobility security association for a home
// address: registrations for it must from now on carry a valid
// authenticator under (spi, key), and replies to it are authenticated
// with the same association. Provisioning is configuration, done at
// build time; it survives Crash (the replay window does not).
func (ha *HomeAgent) ProvisionKey(home ipv4.Addr, spi uint32, key []byte) {
	if ha.auth == nil {
		ha.auth = make(map[ipv4.Addr]*authState)
	}
	ha.auth[home] = &authState{auth: NewAuthenticator(spi, key)}
}

// handleRegistration serves UDP 434.
func (ha *HomeAgent) handleRegistration(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	if ha.crashed {
		return
	}
	req, _, hasAuth, ok := ParseRequest(payload)
	if !ok {
		ha.Stats.BadRequests++
		return
	}
	reply := Reply{
		Code:      CodeAccepted,
		Lifetime:  req.Lifetime,
		Home:      req.Home,
		HomeAgent: ha.Addr(),
		ID:        req.ID,
	}
	st := ha.auth[req.Home]
	switch {
	case req.HomeAgent != ha.Addr():
		reply.Code = CodeDeniedNotHomeAgent
	case !ha.iface.Prefix().Contains(req.Home):
		// We can only proxy for hosts that actually live on our
		// home network segment.
		reply.Code = CodeDeniedNotHomeAgent
	case st != nil || ha.cfg.RequireAuth:
		// Authenticated path: the MAC must verify and the
		// identification must clear the replay window before the
		// request is considered at all.
		if code := ha.checkAuth(st, payload, hasAuth, req.ID); code != CodeAccepted {
			reply.Code = code
			break
		}
		ha.admit(&req, &reply)
	case ha.isStale(&req):
		// Legacy replay protection for unprovisioned homes: the
		// identification must advance with every request for the
		// binding ([Per96a] uses timestamps or nonces; the
		// simulation's mobile nodes use virtual-time stamps).
		reply.Code = CodeDeniedStaleID
		ha.Stats.StaleRequests++
	default:
		ha.admit(&req, &reply)
	}
	// Marshal into a pooled buffer: SendToFrom copies the payload into
	// the datagram it builds before returning, so the buffer is recycled
	// immediately and a renewal storm's replies cost zero allocations.
	// Replies under a security association carry their own
	// authenticator, so a rogue relay cannot tamper with the granted
	// lifetime (or forge a denial) unnoticed.
	buf := netsim.GetBuf()
	rb := reply.AppendMarshal(buf.B)
	if st != nil {
		rb = st.auth.AppendAuth(rb)
	}
	if err := ha.sock.SendToFrom(ha.Addr(), src, srcPort, rb); err != nil {
		// Reply undeliverable; the mobile host will retransmit.
		_ = err
	}
	netsim.PutBuf(buf)
}

// checkAuth validates the authenticator and identification of a
// registration on the authenticated path, counting every rejection in
// both the agent stats and the unified drop-cause taxonomy. The replay
// window only advances after the MAC verifies — advancing it on a
// forgery would let an attacker burn identifications the real node
// still needs.
func (ha *HomeAgent) checkAuth(st *authState, payload []byte, hasAuth bool, id uint64) uint8 {
	if st == nil || !hasAuth || !st.auth.Verify(payload) {
		ha.Stats.AuthBadMAC++
		ha.reg.Drop(metrics.DropAuthBadMAC)
		return CodeDeniedAuthFailed
	}
	switch st.window.check(id) {
	case replayDuplicate:
		ha.Stats.AuthReplays++
		ha.reg.Drop(metrics.DropAuthReplay)
		return CodeDeniedReplay
	case replayStale:
		ha.Stats.AuthStale++
		ha.reg.Drop(metrics.DropAuthStaleID)
		return CodeDeniedStaleID
	}
	return CodeAccepted
}

// admit is the tail every accepted-so-far request goes through:
// deregistration, capacity check, then registration.
func (ha *HomeAgent) admit(req *Request, reply *Reply) {
	if req.IsDeregistration() {
		ha.deregister(req.Home)
		ha.Stats.Deregistrations++
		return
	}
	if ha.cfg.MaxBindings > 0 && ha.bindings.len() >= ha.cfg.MaxBindings &&
		ha.bindings.get(req.Home) == nil {
		reply.Code = CodeDeniedUnreachable
		return
	}
	ha.register(req)
	ha.Stats.Registrations++
}

// isStale reports whether the request's identification fails to advance
// past the binding's last accepted one.
func (ha *HomeAgent) isStale(req *Request) bool {
	b := ha.bindings.get(req.Home)
	return b != nil && req.ID <= b.lastID
}

func (ha *HomeAgent) register(req *Request) {
	b, created := ha.bindings.getOrCreate(req.Home)
	if created {
		// Claim the home address: packets for the mobile host arriving
		// at this host are diverted to the tunnel forwarder.
		home := req.Home
		ha.host.Claim(home, func(ifc *stack.Iface, pkt ipv4.Packet) {
			ha.forwardToMobile(home, pkt)
		})
		// Gratuitous proxy ARP ([RFC1027]): neighbours on the home
		// segment now deliver the mobile host's frames to us.
		ha.iface.Proxy().Add(req.Home)
		ha.iface.GratuitousARP(req.Home)
	} else {
		// New binding generation: the wheel entry for the previous
		// lifetime goes stale (lazy deletion — nothing to cancel).
		b.gen++
	}
	b.careOf = req.CareOf
	b.flags = req.Flags
	b.lastID = req.ID
	if b.noticed == nil {
		b.noticed = make(map[ipv4.Addr]bool)
	} else {
		clear(b.noticed) // new generation, same map — renewals don't allocate
	}
	lifetime := vtime.Duration(req.Lifetime) * 1e9
	b.expiresAt = ha.host.Sched().Now().Add(lifetime)
	ha.wheel.schedule(ha.host.Sched(), b.expiresAt, req.Home, b.gen, ha.fireExpiry)
	ha.bindGauge.Set(int64(ha.bindings.len()))
	var detail string
	if ha.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("binding %s -> %s lifetime=%ds", req.Home, req.CareOf, req.Lifetime)
	}
	ha.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventRegister, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
		Detail: detail,
	})
	if ha.OnBind != nil {
		ha.OnBind(req.Home, req.CareOf)
	}
}

// sweepExpiries is the wheel timer's callback: expire every binding in
// the due slot whose generation still matches (renewed bindings are
// skipped), then re-arm for the next slot.
func (ha *HomeAgent) sweepExpiries() {
	bucket := ha.wheel.take()
	for _, e := range bucket {
		b := ha.bindings.get(e.home)
		if b == nil || b.gen != e.gen {
			continue // renewed or deregistered since scheduling: stale
		}
		ha.Stats.Expiries++
		ha.mExpiries.Inc()
		ha.deregister(e.home)
	}
	ha.wheel.recycle(bucket)
	ha.wheel.rearm(ha.host.Sched(), ha.fireExpiry)
}

func (ha *HomeAgent) deregister(home ipv4.Addr) {
	if !ha.bindings.remove(home) {
		return
	}
	ha.bindGauge.Set(int64(ha.bindings.len()))
	ha.host.Unclaim(home)
	ha.iface.Proxy().Remove(home)
	var detail string
	if ha.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("binding %s cleared", home)
	}
	ha.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventRegister, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
		Detail: detail,
	})
}

// forwardToMobile implements Figure 1's thick arrow: encapsulate the
// intercepted packet and send it to the care-of address.
func (ha *HomeAgent) forwardToMobile(home ipv4.Addr, pkt ipv4.Packet) {
	if ha.crashed {
		return
	}
	b := ha.bindings.get(home)
	if b == nil {
		return // binding raced away; packet is lost (higher layers recover)
	}
	// Build the tunnel payload in a pooled buffer; Resubmit copies it
	// onward before returning, so the buffer is recycled immediately.
	buf := netsim.GetBuf()
	// home names the inner destination, so a home-aware codec (compact)
	// can elide it from the tunnel header.
	outer, err := encap.AppendEncapHome(ha.cfg.Codec, pkt, ha.Addr(), b.careOf, home, buf.B)
	if err != nil {
		netsim.PutBuf(buf)
		return
	}
	ha.Stats.Forwarded++
	ha.mForwarded.Inc()
	var detail string
	if ha.host.Sim().Trace.Detailing() {
		detail = tunnelDetail(ha.Addr(), b.careOf, pkt.Src, pkt.Dst)
	}
	ha.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventEncap, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
		PktID:  pkt.TraceID,
		Detail: detail,
	})
	_ = ha.host.Resubmit(outer)
	netsim.PutBuf(buf)

	if ha.OnForward != nil {
		ha.OnForward(pkt.Src, home)
	}
	// Resubmit never registers bindings, so b still points at the same
	// slot here (inserts are the only operation that may move slots).
	if ha.cfg.SendBindingNotices && !b.noticed[pkt.Src] {
		b.noticed[pkt.Src] = true
		ha.sendBindingNotice(pkt.Src, home, b.careOf)
	}
}

// sendBindingNotice tells a correspondent the mobile host's care-of
// address (Section 3.2's first discovery mechanism: "when the home agent
// forwards a packet to the mobile host, it may also send an ICMP message
// back to the packet's source").
func (ha *HomeAgent) sendBindingNotice(to, home, careOf ipv4.Addr) {
	msg := icmp.BindingNotice(home, careOf, ha.cfg.NoticeLifetime)
	ha.Stats.NoticesSent++
	ha.mNotices.Inc()
	//mob4x4vet:allow hotpathalloc binding notices are rate-limited to one per correspondent per binding generation
	payload := msg.Marshal()
	_ = ha.host.SendIP(ipv4.Packet{
		Header:  ipv4.Header{Protocol: ipv4.ProtoICMP, Src: ha.Addr(), Dst: to},
		Payload: payload,
	})
}

// handleTunneled serves the reverse tunnel (Out-IE, Figure 3): packets
// tunneled to the agent are decapsulated and the inner packet forwarded.
// Only inner sources belonging to registered mobile hosts are relayed —
// an open decapsulator would be exactly the spoofing hole Section 6.1
// warns about.
func (ha *HomeAgent) handleTunneled(ifc *stack.Iface, outer ipv4.Packet) {
	if ha.crashed {
		return
	}
	inner, err := ha.cfg.Codec.Decapsulate(outer)
	if err != nil {
		return
	}
	b := ha.bindings.get(inner.Src)
	if b == nil {
		// Not one of ours. If the inner destination is a registered
		// mobile host this is a correspondent's tunnel that happened to
		// target us — forward it on; otherwise drop.
		if ha.bindings.get(inner.Dst) == nil {
			return
		}
	} else {
		if outer.Src != b.careOf {
			// Tunnel source does not match the registered care-of
			// address; treat as stale or forged and drop.
			return
		}
		if b.flags&FlagReverseTunnel == 0 {
			// The binding did not ask for reverse tunneling; accept
			// anyway (the paper's agents are permissive about their own
			// hosts) but count it separately would be noise — relay.
		}
	}
	ha.Stats.ReverseRelayed++
	ha.mReverse.Inc()
	var detail string
	if ha.host.Sim().Trace.Detailing() {
		detail = decapDetail("reverse tunnel: ", inner.Src, inner.Dst)
	}
	ha.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventDecap, Time: ha.host.Sim().Now(), Where: ha.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = ha.host.Resubmit(inner)
}
