package mobileip_test

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
)

var group = ipv4.MustParseAddr("239.1.2.3")

func TestMulticastLocalJoinBeatsTunnel(t *testing.T) {
	// Local join: a multicast source on the VISITED network, the roamed
	// MH joins through its physical interface — zero Mobile IP
	// involvement (the paper's recommendation).
	w := buildWorld(t, worldOpts{})
	w.roam(t)

	var localGot int
	w.mhHost.Handle(97, func(_ *stack.Iface, pkt ipv4.Packet) { localGot++ })
	w.mn.JoinMulticastLocal(group)

	// chNear multicasts on the visited LAN.
	sender := w.chNear
	sIfc := sender.Ifaces()[0]
	for i := 0; i < 3; i++ {
		_ = sender.SendMulticast(sIfc, ipv4.Packet{
			Header:  ipv4.Header{Protocol: 97, Dst: group},
			Payload: []byte("stream"),
		})
	}
	w.net.RunFor(2e9)
	if localGot != 3 {
		t.Fatalf("local join delivered %d/3", localGot)
	}
	if w.ha.Stats.MulticastRelayed != 0 {
		t.Error("local join involved the home agent")
	}
	if w.mn.Stats.InTunneled != 0 {
		t.Error("local join tunneled packets")
	}
}

func TestMulticastHomeRelayIsSelfDefeating(t *testing.T) {
	// Relay mode: the source is on the HOME network; the HA joins on the
	// MH's behalf and tunnels every packet across the internet.
	w := buildWorld(t, worldOpts{})
	w.roam(t)

	var got int
	w.mhHost.Handle(97, func(_ *stack.Iface, pkt ipv4.Packet) { got++ })
	if err := w.ha.RelayGroup(group, w.mn.Home()); err != nil {
		t.Fatal(err)
	}

	// A separate host on the home LAN sources the stream (the agent
	// cannot tap its own transmissions: taps see received packets).
	sender := stack.NewHost(w.net.Sim, "mcastsrc")
	sIfc := sender.AddIface("eth0", w.homeLAN.Seg, w.homeLAN.NextAddr(), w.homeLAN.Prefix)
	fwdBefore := w.net.Sim.Trace.Count(netsim.EventForward)
	for i := 0; i < 3; i++ {
		_ = sender.SendMulticast(sIfc, ipv4.Packet{
			Header:  ipv4.Header{Protocol: 97, Src: sender.FirstAddr(), Dst: group},
			Payload: []byte("stream"),
		})
	}
	w.net.RunFor(3e9)

	if got != 3 {
		t.Fatalf("relay delivered %d/3", got)
	}
	if w.ha.Stats.MulticastRelayed != 3 {
		t.Errorf("relayed = %d", w.ha.Stats.MulticastRelayed)
	}
	if w.mn.Stats.InTunneled != 3 {
		t.Errorf("tunneled in = %d", w.mn.Stats.InTunneled)
	}
	// The self-defeating part: every group packet crossed the backbone
	// (forwarding events), where a local join would have crossed none.
	if fwd := w.net.Sim.Trace.Count(netsim.EventForward) - fwdBefore; fwd == 0 {
		t.Error("relay mode used no routers?")
	}
}

func TestMulticastRelayRequiresBinding(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	// Not roamed: no binding.
	if err := w.ha.RelayGroup(group, w.mn.Home()); err == nil {
		t.Error("relay accepted without a binding")
	}
	if err := w.ha.RelayGroup(ipv4.MustParseAddr("17.5.0.2"), w.mn.Home()); err == nil {
		t.Error("relay accepted a unicast 'group'")
	}
}

func TestMulticastStopRelay(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	if err := w.ha.RelayGroup(group, w.mn.Home()); err != nil {
		t.Fatal(err)
	}
	w.ha.StopRelayGroup(group, w.mn.Home())

	sender := stack.NewHost(w.net.Sim, "mcastsrc")
	sIfc := sender.AddIface("eth0", w.homeLAN.Seg, w.homeLAN.NextAddr(), w.homeLAN.Prefix)
	_ = sender.SendMulticast(sIfc, ipv4.Packet{
		Header: ipv4.Header{Protocol: 97, Src: sender.FirstAddr(), Dst: group},
	})
	w.net.RunFor(2e9)
	if w.ha.Stats.MulticastRelayed != 0 {
		t.Error("stopped relay still forwarding")
	}
}

func TestMulticastMembershipFilters(t *testing.T) {
	// A host that has NOT joined must not see group traffic on its
	// segment.
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	var got int
	w.chNear.Handle(97, func(_ *stack.Iface, pkt ipv4.Packet) { got++ })
	// MH multicasts locally; chNear (not joined) must not deliver.
	w.mn.JoinMulticastLocal(group)
	_ = w.mhHost.SendMulticast(w.mhIfc, ipv4.Packet{
		Header: ipv4.Header{Protocol: 97, Src: w.mn.CareOf(), Dst: group},
	})
	w.net.RunFor(1e9)
	if got != 0 {
		t.Errorf("non-member delivered %d group packets", got)
	}
	// After joining, it does.
	w.chNear.JoinGroup(w.chNear.Ifaces()[0], group)
	_ = w.mhHost.SendMulticast(w.mhIfc, ipv4.Packet{
		Header: ipv4.Header{Protocol: 97, Src: w.mn.CareOf(), Dst: group},
	})
	w.net.RunFor(1e9)
	if got != 1 {
		t.Errorf("member delivered %d group packets, want 1", got)
	}
}
