package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/encap"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

const ms = vtime.Duration(1e6)

// world is the standard integration topology:
//
//	homeLAN(36.1.1.0/24) -- homeGW -- bb0 -- bb1 -- bb2 -- visitGW -- visitLAN(128.9.1.0/24)
//	                                   |
//	                                 farGW -- farLAN(17.5.0.0/24)
//
// The home agent lives on the home LAN; the mobile host starts at home and
// roams to the visited LAN; correspondents live on the far LAN (distant)
// and the visited LAN (nearby).
type world struct {
	net      *inet.Network
	homeLAN  *inet.LAN
	visitLAN *inet.LAN
	farLAN   *inet.LAN
	homeGW   *stack.Host
	visitGW  *stack.Host
	farGW    *stack.Host

	haHost *stack.Host
	ha     *mobileip.HomeAgent

	mhHost *stack.Host
	mhIfc  *stack.Iface
	mn     *mobileip.MobileNode
	mhICMP *icmphost.ICMP

	chFar   *stack.Host // correspondent on farLAN
	chFarC  *mobileip.Correspondent
	chNear  *stack.Host // correspondent on visitLAN
	chNearC *mobileip.Correspondent
	chHome  *stack.Host // correspondent inside the home domain
}

type worldOpts struct {
	homeFilter  bool // boundary filtering at the home domain
	visitFilter bool // egress filtering at the visited domain
	notices     bool // HA sends binding notices
	chAware     bool // correspondents are fully mobile-aware
	chDecap     bool // correspondents can decapsulate (Out-DE target)
	auth        bool // provision the MH's mobility security association
	codec       encap.Codec
	selector    *core.Selector

	// Registration-robustness knobs (zero = the MobileNode defaults).
	lifetime         uint16
	regMaxRetries    int
	regProbeInterval vtime.Duration
}

func buildWorld(t testing.TB, opts worldOpts) *world {
	t.Helper()
	w := &world{net: inet.New(42)}
	n := w.net

	lat := netsim.SegmentOpts{Latency: 1 * ms}
	w.homeLAN = n.AddLAN("home", "36.1.1.0/24", lat)
	w.visitLAN = n.AddLAN("visit", "128.9.1.0/24", lat)
	w.farLAN = n.AddLAN("far", "17.5.0.0/24", lat)

	w.homeGW = n.AddRouter("homeGW")
	w.visitGW = n.AddRouter("visitGW")
	w.farGW = n.AddRouter("farGW")
	bb := n.Chain("bb", 3, 5*ms)

	n.AttachRouter(w.homeGW, w.homeLAN)
	n.AttachRouter(w.visitGW, w.visitLAN)
	n.AttachRouter(w.farGW, w.farLAN)
	n.Link(w.homeGW, bb[0], 5*ms)
	n.Link(w.visitGW, bb[2], 5*ms)
	n.Link(w.farGW, bb[0], 5*ms)

	// Hosts. Order matters for address allocation: gateway took .1.
	w.haHost = n.AddHost("ha", w.homeLAN)
	mh, mhIfc := n.AddMobileHost("mh", w.homeLAN)
	w.mhHost, w.mhIfc = mh, mhIfc
	w.chFar = n.AddHost("chFar", w.farLAN)
	w.chNear = n.AddHost("chNear", w.visitLAN)
	w.chHome = n.AddHost("chHome", w.homeLAN)

	if opts.homeFilter {
		n.SetBoundaryFilter(w.homeGW, true, true, "36.1.1.0/24")
	}
	if opts.visitFilter {
		n.SetBoundaryFilter(w.visitGW, true, true, "128.9.1.0/24")
	}
	n.ComputeRoutes()

	var err error
	w.ha, err = mobileip.NewHomeAgent(w.haHost, w.haHost.Ifaces()[0], mobileip.HomeAgentConfig{
		Codec:              opts.codec,
		SendBindingNotices: opts.notices,
	})
	if err != nil {
		t.Fatalf("NewHomeAgent: %v", err)
	}

	var auth *mobileip.Authenticator
	if opts.auth {
		w.ha.ProvisionKey(w.mhIfc.Addr(), testSPI, testKey)
		auth = mobileip.NewAuthenticator(testSPI, testKey)
	}

	w.mhICMP = icmphost.Install(w.mhHost)
	w.mn, err = mobileip.NewMobileNode(w.mhHost, w.mhIfc, mobileip.MobileNodeConfig{
		Auth:             auth,
		Home:             w.mhIfc.Addr(),
		HomePrefix:       w.homeLAN.Prefix,
		HomeAgent:        w.haHost.Ifaces()[0].Addr(),
		Codec:            opts.codec,
		Selector:         opts.selector,
		Lifetime:         opts.lifetime,
		RegMaxRetries:    opts.regMaxRetries,
		RegProbeInterval: opts.regProbeInterval,
	})
	if err != nil {
		t.Fatalf("NewMobileNode: %v", err)
	}

	chCfg := mobileip.CorrespondentConfig{
		Codec:          opts.codec,
		CanDecapsulate: opts.chDecap,
		MobileAware:    opts.chAware,
	}
	w.chFarC = mobileip.NewCorrespondent(w.chFar, icmphost.Install(w.chFar), chCfg)
	w.chNearC = mobileip.NewCorrespondent(w.chNear, icmphost.Install(w.chNear), chCfg)
	return w
}

// roam moves the MH to the visited LAN and waits for registration.
func (w *world) roam(t testing.TB) ipv4.Addr {
	t.Helper()
	careOf := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(2e9) // 2s: plenty for registration including a retry
	if !w.mn.Registered() {
		t.Fatalf("mobile node failed to register (care-of %s)", careOf)
	}
	if got, ok := w.ha.CareOf(w.mn.Home()); !ok || got != careOf {
		t.Fatalf("home agent binding = %v,%v; want %s", got, ok, careOf)
	}
	return careOf
}

func TestRegistrationAtHomeAgent(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)
	if w.ha.Bindings() != 1 {
		t.Errorf("bindings = %d, want 1", w.ha.Bindings())
	}
}

func TestFig1BasicMobileIP(t *testing.T) {
	// Figure 1: CH sends to the MH's home address; the packet is routed
	// to the home network, captured by the HA, tunneled to the MH. The
	// MH's reply travels directly (here: Out-DH, optimistic selector, no
	// filters anywhere).
	w := buildWorld(t, worldOpts{selector: core.NewSelector(core.StartOptimistic)})
	w.roam(t)

	ic := icmphost.Install(w.chFar)
	var replies int
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) {
		replies++
		if src != w.mn.Home() {
			t.Errorf("echo reply from %s, want home address %s (transparent mobility)", src, w.mn.Home())
		}
	}

	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 1, 1, []byte("fig1"))
	w.net.RunFor(2e9)

	if replies != 1 {
		t.Fatalf("echo replies = %d, want 1", replies)
	}
	// The HA must have tunneled exactly one packet to the MH.
	if w.ha.Stats.Forwarded != 1 {
		t.Errorf("HA forwarded = %d, want 1", w.ha.Stats.Forwarded)
	}
	if w.mn.Stats.InTunneled != 1 {
		t.Errorf("MH tunneled-in = %d, want 1", w.mn.Stats.InTunneled)
	}
}
