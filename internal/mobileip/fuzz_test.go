package mobileip

import (
	"bytes"
	"testing"
)

// FuzzAuthExtension feeds arbitrary bytes to the authentication-carrying
// parsers. These sit on the registration plane's hostile-input boundary
// — every port-434 datagram an attacker can forge goes through them —
// so they must reject garbage without panicking, and anything accepted
// must be in canonical form: re-marshalling the parsed message (plus its
// extension, if any) reproduces the input byte-for-byte. That property
// is what makes "the MAC covers every byte that arrived" checkable.
func FuzzAuthExtension(f *testing.F) {
	auth := NewAuthenticator(0x101, []byte("fuzz-seed-key"))
	req := Request{
		Flags:     FlagReverseTunnel,
		Lifetime:  300,
		Home:      [4]byte{36, 1, 1, 3},
		HomeAgent: [4]byte{36, 1, 1, 2},
		CareOf:    [4]byte{128, 9, 1, 4},
		ID:        0xdeadbeefcafe,
	}
	rep := Reply{Code: CodeAccepted, Lifetime: 300, Home: req.Home, HomeAgent: req.HomeAgent, ID: req.ID}
	signedReq := auth.AppendAuth(req.Marshal())
	signedRep := auth.AppendAuth(rep.Marshal())
	f.Add(signedReq)
	f.Add(signedRep)
	f.Add(req.Marshal())
	f.Add(rep.Marshal())
	f.Add(signedReq[:len(signedReq)-1])           // truncated MAC
	f.Add(append(signedReq, 0))                   // trailing garbage after the extension
	f.Add(append(req.Marshal(), 1, 2))            // trailing garbage, no extension
	f.Add(signedReq[requestLen:])                 // a bare extension
	f.Add([]byte{AuthExtType, authExtPayloadLen}) // extension header, no body

	f.Fuzz(func(t *testing.T, data []byte) {
		var ext AuthExt
		if ext.Unmarshal(data) {
			b := ext.AppendMarshal(nil)
			if !bytes.Equal(b, data) {
				t.Fatalf("accepted extension not canonical: %x -> %x", data, b)
			}
		}
		if r, e, hasAuth, ok := ParseRequest(data); ok {
			b := r.AppendMarshal(nil)
			if hasAuth {
				b = e.AppendMarshal(b)
			}
			if !bytes.Equal(b, data) {
				t.Fatalf("accepted request not canonical: %x -> %x", data, b)
			}
		}
		if r, e, hasAuth, ok := ParseReply(data); ok {
			b := r.AppendMarshal(nil)
			if hasAuth {
				b = e.AppendMarshal(b)
			}
			if !bytes.Equal(b, data) {
				t.Fatalf("accepted reply not canonical: %x -> %x", data, b)
			}
		}
		// ParseMessage must agree with the typed parsers and never panic.
		_, _ = ParseMessage(data)
	})
}
