package mobileip

import (
	"math/rand"
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

func TestReplayWindowVerdicts(t *testing.T) {
	var w replayWindow
	steps := []struct {
		id   uint64
		want replayVerdict
	}{
		{100, replayAccept},    // first sighting
		{100, replayDuplicate}, // exact replay
		{101, replayAccept},    // monotone advance
		{99, replayAccept},     // in-window, not yet seen: late but legitimate
		{99, replayDuplicate},  // now it has been
		{38, replayAccept},     // 63 behind the head of 101: last in-window slot
		{37, replayStale},      // 64 behind: off the window edge
		{1, replayStale},       // far behind
		{500, replayAccept},    // jump > 64: bitmap resets to just the head
		{101, replayStale},     // the old head is now far stale
	}
	for i, s := range steps {
		if got := w.check(s.id); got != s.want {
			t.Fatalf("step %d: check(%d) = %d, want %d", i, s.id, got, s.want)
		}
	}
}

func TestAuthExtRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		in := AuthExt{SPI: rng.Uint32()}
		rng.Read(in.MAC[:])
		b := in.AppendMarshal(nil)
		if len(b) != authExtLen {
			t.Fatalf("marshaled length %d, want %d", len(b), authExtLen)
		}
		var out AuthExt
		if !out.Unmarshal(b) || out != in {
			t.Fatalf("round trip lost %+v -> %+v", in, out)
		}
		// Truncated and oversized forms must be rejected whole.
		if out.Unmarshal(b[:len(b)-1]) {
			t.Fatal("truncated extension accepted")
		}
		if out.Unmarshal(append(b, 0)) {
			t.Fatal("oversized extension accepted")
		}
	}
}

func TestAuthenticatorTamperDetection(t *testing.T) {
	auth := NewAuthenticator(7, []byte("key"))
	req := Request{Lifetime: 300, Home: ipv4.Addr{36, 1, 1, 9}, ID: 42}
	msg := auth.AppendAuth(req.Marshal())
	if !auth.Verify(msg) {
		t.Fatal("freshly signed message failed to verify")
	}
	// Any single flipped bit — base message, extension header, or MAC —
	// must kill the signature: the MAC covers every preceding byte and is
	// itself compared in full.
	for i := range msg {
		msg[i] ^= 0x01
		if auth.Verify(msg) {
			t.Fatalf("verify passed with byte %d tampered", i)
		}
		msg[i] ^= 0x01
	}
	if !auth.Verify(msg) {
		t.Fatal("message no longer verifies after restoring bytes")
	}
	if auth.Verify(msg[:len(msg)-1]) || auth.Verify(msg[:requestLen]) || auth.Verify(nil) {
		t.Fatal("truncated message verified")
	}
	if NewAuthenticator(8, []byte("key")).Verify(msg) {
		t.Fatal("verified under the wrong SPI")
	}
	if NewAuthenticator(7, []byte("KEY")).Verify(msg) {
		t.Fatal("verified under the wrong key")
	}
}

// authedAgent is benchAgent plus one provisioned association: n filler
// bindings, a second host to receive replies, and the signer for home.
func authedAgent(tb testing.TB, n int) (net *inet.Network, ha *HomeAgent, auth *Authenticator, home, src ipv4.Addr) {
	tb.Helper()
	net = inet.New(1)
	net.Sim.Trace.Discard()
	lan := net.AddLAN("home", "36.1.0.0/16", netsim.SegmentOpts{Latency: 1e6})
	haHost := net.AddHost("ha", lan)
	var err error
	ha, err = NewHomeAgent(haHost, haHost.Ifaces()[0], HomeAgentConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		req := Request{
			Lifetime:  3600,
			Home:      lan.Prefix.Host(1000 + i),
			HomeAgent: ha.Addr(),
			CareOf:    lan.Prefix.Host(40000 + i),
			ID:        1,
		}
		ha.register(&req)
	}
	srcHost := net.AddHost("mh", lan)
	home = lan.Prefix.Host(500)
	key := []byte("bench-key-0123456789abcdef012345")
	ha.ProvisionKey(home, 9, key)
	return net, ha, NewAuthenticator(9, key), home, srcHost.FirstAddr()
}

// authedRenewal is one steady-state authenticated renewal: marshal and
// sign into a pooled buffer, full agent processing (parse, MAC verify,
// window advance, rebind, signed reply), then a short sim drain so the
// reply's pooled frame is recycled.
func authedRenewal(net *inet.Network, ha *HomeAgent, auth *Authenticator, req *Request, src ipv4.Addr) {
	buf := netsim.GetBuf()
	b := req.AppendMarshal(buf.B)
	b = auth.AppendAuth(b)
	ha.handleRegistration(src, 5001, ha.Addr(), b)
	netsim.PutBuf(buf)
	net.RunFor(5e6)
}

// TestAuthenticatedRenewalAllocs pins the whole authenticated renewal
// path — signing, HMAC verification, replay window, rebind, signed
// reply — at zero steady-state allocations: the HMAC states are
// preallocated per association and every wire image lives in a pooled
// buffer.
func TestAuthenticatedRenewalAllocs(t *testing.T) {
	net, ha, auth, home, src := authedAgent(t, 1000)
	req := Request{Lifetime: 3600, Home: home, HomeAgent: ha.Addr(), CareOf: src, ID: 1}
	renew := func() {
		req.ID++
		authedRenewal(net, ha, auth, &req, src)
	}
	renew() // create the binding; everything after is the renewal path
	if ha.Stats.AuthBadMAC+ha.Stats.AuthReplays+ha.Stats.AuthStale != 0 {
		t.Fatalf("renewal setup tripped auth rejects: %+v", ha.Stats)
	}
	avg := testing.AllocsPerRun(1000, renew)
	if avg > 0.1 {
		t.Errorf("authenticated renewal allocates %.3f objects/op, want <= 0.1", avg)
	}
}

// BenchmarkAuthenticatedRenewal measures the same path; the number to
// watch next to BenchmarkHARegisterRenewal is the HMAC-SHA256 sign +
// verify pair, which is the entire cost of turning the fleet's
// registration plane hijack-proof.
func BenchmarkAuthenticatedRenewal(b *testing.B) {
	net, ha, auth, home, src := authedAgent(b, 10_000)
	req := Request{Lifetime: 3600, Home: home, HomeAgent: ha.Addr(), CareOf: src, ID: 1}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req.ID = uint64(i + 2)
		authedRenewal(net, ha, auth, &req, src)
	}
	if ha.Stats.AuthBadMAC+ha.Stats.AuthReplays+ha.Stats.AuthStale != 0 {
		b.Fatalf("benchmark tripped auth rejects: %+v", ha.Stats)
	}
}
