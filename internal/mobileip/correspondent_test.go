package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

func TestOutDEDeliveredToDecapCapableCH(t *testing.T) {
	sel := core.NewSelector(core.StartPessimistic)
	m := core.OutDE
	sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), ForceMode: &m})
	w := buildWorld(t, worldOpts{selector: sel, chDecap: true})
	w.roam(t)

	ic := icmphost.Install(w.chFar)
	var requests int
	ic.OnEchoRequest = func(src ipv4.Addr, msg icmp.Message) { requests++ }

	// MH pings CH: Out-DE encapsulates directly to the correspondent,
	// which decapsulates and answers.
	var replies int
	w.mhICMP.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }
	_ = w.mhICMP.Ping(ipv4.Zero, w.chFar.FirstAddr(), 1, 1, nil)
	w.net.RunFor(3e9)

	if requests != 1 {
		t.Fatalf("CH received %d requests", requests)
	}
	if w.chFarC.Stats.Decapsulated != 1 {
		t.Errorf("decapsulated = %d", w.chFarC.Stats.Decapsulated)
	}
	if replies != 1 {
		t.Errorf("MH received %d replies", replies)
	}
	// The tunnel went straight to the CH: the HA relayed nothing.
	if w.ha.Stats.ReverseRelayed != 0 {
		t.Errorf("HA relayed %d packets in Out-DE mode", w.ha.Stats.ReverseRelayed)
	}
}

func TestAwareCHSwitchesToInDE(t *testing.T) {
	w := buildWorld(t, worldOpts{notices: true, chAware: true, chDecap: true,
		selector: core.NewSelector(core.StartOptimistic)})
	w.roam(t)

	ic := icmphost.Install(w.chFar)
	// NewCorrespondent wired OnBinding on the world's original ICMP
	// endpoint; reinstalling replaced the handler chain, so rewire.
	reattachBinding(w, ic)
	var replies int
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }

	for seq := uint16(1); seq <= 3; seq++ {
		_ = ic.Ping(ipv4.Zero, w.mn.Home(), 9, seq, nil)
		w.net.RunFor(3e9)
	}
	if replies != 3 {
		t.Fatalf("replies = %d", replies)
	}
	// First ping went via the HA; the notice then switched the CH to
	// In-DE for the rest.
	if w.ha.Stats.Forwarded != 1 {
		t.Errorf("HA forwarded = %d, want 1", w.ha.Stats.Forwarded)
	}
	if w.chFarC.Stats.SentInDE != 2 {
		t.Errorf("SentInDE = %d, want 2", w.chFarC.Stats.SentInDE)
	}
}

// reattachBinding rewires the binding-notice callback after a test
// replaced the host's ICMP endpoint.
func reattachBinding(w *world, ic *icmphost.ICMP) {
	ic.OnBinding = func(src ipv4.Addr, msg icmp.Message) {
		w.chFarC.LearnBinding(core.Binding{Home: msg.Home, CareOf: msg.CareOf}, msg.Lifetime)
	}
}

func TestSameSegmentCHUsesInDH(t *testing.T) {
	w := buildWorld(t, worldOpts{chAware: true, chDecap: true,
		selector: core.NewSelector(core.StartOptimistic)})
	careOf := w.roam(t)

	// The near correspondent (same LAN as the roamed MH) learns the
	// binding; the care-of address is on its own prefix -> In-DH.
	w.chNearC.LearnBinding(core.Binding{Home: w.mn.Home(), CareOf: careOf}, 0)

	ic := icmphost.Install(w.chNear)
	var replies int
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }
	fwdBefore := w.net.Sim.Trace.Count(netsim.EventForward)
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 2, 1, nil)
	w.net.RunFor(3e9)

	if replies != 1 {
		t.Fatalf("replies = %d", replies)
	}
	if w.chNearC.Stats.SentInDH != 1 {
		t.Errorf("SentInDH = %d", w.chNearC.Stats.SentInDH)
	}
	// Zero router involvement in either direction (Row C).
	if got := w.net.Sim.Trace.Count(netsim.EventForward) - fwdBefore; got != 0 {
		t.Errorf("routers forwarded %d packets on a same-segment exchange", got)
	}
	if w.ha.Stats.Forwarded != 0 {
		t.Errorf("HA involved: %d", w.ha.Stats.Forwarded)
	}
}

func TestBindingExpiryFallsBackToInIE(t *testing.T) {
	w := buildWorld(t, worldOpts{notices: true, chAware: true, chDecap: true,
		selector: core.NewSelector(core.StartOptimistic)})
	w.roam(t)
	ic := icmphost.Install(w.chFar)
	reattachBinding(w, ic)

	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 3, 1, nil)
	w.net.RunFor(3e9)
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok {
		t.Fatal("binding not learned")
	}
	// Default notice lifetime is 60s; wait it out.
	w.net.RunFor(70e9)
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); ok {
		t.Error("binding survived its lifetime")
	}
	if w.chFarC.Stats.BindingsExpired != 1 {
		t.Errorf("expired = %d", w.chFarC.Stats.BindingsExpired)
	}
	// Next packet goes via the HA again.
	fwd := w.ha.Stats.Forwarded
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 3, 2, nil)
	w.net.RunFor(3e9)
	if w.ha.Stats.Forwarded != fwd+1 {
		t.Error("CH did not fall back to In-IE after expiry")
	}
}

func TestNonAwareCHIgnoresNotices(t *testing.T) {
	w := buildWorld(t, worldOpts{notices: true, chAware: false, chDecap: false,
		selector: core.NewSelector(core.StartOptimistic)})
	w.roam(t)
	ic := icmphost.Install(w.chFar)
	for seq := uint16(1); seq <= 3; seq++ {
		_ = ic.Ping(ipv4.Zero, w.mn.Home(), 4, seq, nil)
		w.net.RunFor(3e9)
	}
	// Every packet keeps going through the HA.
	if w.ha.Stats.Forwarded != 3 {
		t.Errorf("HA forwarded = %d, want 3", w.ha.Stats.Forwarded)
	}
	if w.chFarC.Stats.SentInDE != 0 {
		t.Error("non-aware CH sent In-DE")
	}
}

func TestForgetBindingOnDemand(t *testing.T) {
	w := buildWorld(t, worldOpts{chAware: true, chDecap: true})
	careOf := w.roam(t)
	w.chFarC.LearnBinding(core.Binding{Home: w.mn.Home(), CareOf: careOf}, 0)
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); !ok {
		t.Fatal("not learned")
	}
	w.chFarC.ForgetBinding(w.mn.Home())
	if _, ok := w.chFarC.Policy().Binding(w.mn.Home()); ok {
		t.Error("not forgotten")
	}
}
