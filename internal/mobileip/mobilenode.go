package mobileip

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// MobileNodeConfig configures a mobile host's mobility support software.
type MobileNodeConfig struct {
	// Home is the permanent home address; HomePrefix its home network.
	Home       ipv4.Addr
	HomePrefix ipv4.Prefix
	// HomeAgent is the agent's address on the home network.
	HomeAgent ipv4.Addr
	// Codec selects tunnel encapsulation (default IPIP).
	Codec encap.Codec
	// Lifetime is the registration lifetime requested, in seconds
	// (default 120).
	Lifetime uint16
	// RegRetryInterval is the initial registration retransmission
	// interval (default 1s); RegMaxRetries bounds attempts per exchange
	// (default 5). Retries back off exponentially with jitter up to
	// RegBackoffMax (default 8s) so a recovering agent is not met with a
	// synchronized thundering herd.
	RegRetryInterval vtime.Duration
	RegMaxRetries    int
	RegBackoffMax    vtime.Duration
	// RegProbeInterval, when non-zero, keeps probing for the home agent
	// after an exchange exhausts its retries: a fresh registration is
	// attempted every interval until one succeeds. Zero disables
	// probing (the node stays silent after giving up).
	RegProbeInterval vtime.Duration
	// Selector is the outgoing-mode decision engine (default: a
	// pessimistic selector). Ports is the Out-DT port heuristic
	// (default: the paper's HTTP+DNS set; set to an empty heuristic to
	// disable).
	Selector *core.Selector
	Ports    *core.PortHeuristic
	// Privacy forces all home-address traffic through Out-IE regardless
	// of the selector (the location-privacy motivation of Section 4).
	Privacy bool
	// AnnouncePresence broadcasts a same-segment presence announcement
	// after every move, so aware hosts on the visited LAN switch to
	// In-DH (Row C discovery). Off when Privacy is set — announcing
	// location defeats the point.
	AnnouncePresence bool
	// ReverseTunnelFlag is advertised in registrations.
	ReverseTunnelFlag bool
	// RegisterCareOf, when non-zero, is advertised to the home agent in
	// place of the node's actual care-of address. The hierarchical
	// route-optimization tier sets it to the regional gateway agent's
	// address so the home agent sees one stable care-of address per
	// metro; intra-metro moves then register locally only.
	// Deregistrations (GoHome) still advertise the home address.
	RegisterCareOf ipv4.Addr
	// RegionalAgent, when non-zero, is the regional gateway agent this
	// node tunnels through: Out-IE traffic is tunneled to it instead of
	// the home agent, and tunnels arriving from it are classified In-IE
	// (the agent is re-tunneling what the home agent sent it).
	RegionalAgent ipv4.Addr
	// Auth, when non-nil, is the node's mobility security association:
	// every registration carries the mobile-home authentication
	// extension computed with it, and replies must carry a valid one
	// back — a reply that fails verification (a rogue relay tampering
	// with the lifetime, or an outright forgery) is dropped and counted
	// under auth_bad_mac. The same (SPI, key) pair must be provisioned
	// at the home agent (HomeAgent.ProvisionKey).
	Auth *Authenticator
}

// MobileNodeStats counts mobility events and per-mode traffic.
type MobileNodeStats struct {
	Moves             uint64
	Registrations     uint64
	RegistrationFails uint64
	Renewals          uint64
	RecoveryProbes    uint64
	OutByMode         [core.NumOutModes]uint64
	InByMode          [core.NumInModes]uint64
	InTunneled        uint64 // packets received through the tunnel
	InDirect          uint64 // plain packets to the home address (In-DH)
}

// MobileNode is the mobile host's mobility support: it owns the policy
// decision for every outgoing packet (via the stack's route-lookup
// override), runs the registration protocol with the home agent, and
// decapsulates incoming tunneled packets. It corresponds to the Linux
// kernel modification plus user-level daemon described in Section 7.
type MobileNode struct {
	host *stack.Host
	ifc  *stack.Iface
	cfg  MobileNodeConfig

	careOf     ipv4.Addr
	atHome     bool
	registered bool
	// viaFA marks foreign-agent attachment: the care-of address is the
	// agent's, the node keeps its home address on the local link, and —
	// as the paper stresses — the agent "restrict[s] the freedom of the
	// mobile host to choose from the full range of possible
	// optimizations": outgoing traffic is Out-DH only.
	viaFA bool

	regID      uint64
	regTimer   *vtime.Timer
	renewTimer *vtime.Timer
	probeTimer *vtime.Timer
	regTries   int
	// awaitingReply is true while a registration exchange (initial or
	// renewal) has an unanswered request in flight; it is what the retry
	// timer checks, so renewals retransmit exactly like first
	// registrations.
	awaitingReply bool
	// regBackoff is the current retransmission interval, doubling per
	// retry up to cfg.RegBackoffMax.
	regBackoff vtime.Duration
	// renewAt is the absolute deadline of the scheduled renewal, kept so
	// MoveToRegional can re-arm the renewal timer after a migration
	// (DetachRetain nils timer handles but the home binding lives on).
	renewAt vtime.Time
	sock    *stack.UDPSocket

	// tunIE and tunDE are the two virtual-interface routes the policy
	// hands out, built once: their Output closures read the node's
	// current state (care-of address, inner destination) at call time,
	// so handing out a route allocates nothing per packet.
	tunIE stack.Route
	tunDE stack.Route

	// OnRegistered, when non-nil, fires when a registration (not a
	// renewal) is accepted.
	OnRegistered func()

	// OnRegistrationLost, when non-nil, fires when a registration
	// exchange exhausts its retries: the node no longer believes it is
	// registered and (if RegProbeInterval is set) has fallen back to
	// periodic probing. Applications use it to stop relying on
	// tunnel-dependent delivery modes.
	OnRegistrationLost func()

	// OnInPacket, when non-nil, observes every arrival the node classifies
	// into the In half of the grid, after the mode counters are bumped.
	// The packet's payload is only valid for the duration of the call
	// (pooled buffers). It is passed by value so a nil hook costs nothing:
	// taking the packet's address here would make escape analysis heap-
	// copy every classified arrival whether or not a hook is installed.
	// The fleet engine uses it to attribute replies to the (Out, In) pair
	// of the conversation that elicited them.
	OnInPacket func(mode core.InMode, pkt ipv4.Packet)

	// OnOutPacket, when non-nil, observes every packet the node files
	// into the Out half of the grid, after the mode counters are bumped.
	// Passed by value for the same escape-analysis reason as OnInPacket.
	// The route-optimization updater uses it to learn which
	// correspondents are active and so deserve pushed binding updates.
	OnOutPacket func(mode core.OutMode, pkt ipv4.Packet)

	Stats MobileNodeStats

	// Metric instruments, resolved once at construction so the
	// per-packet and per-exchange cost is a plain increment.
	reg           *metrics.Registry
	regGauge      *metrics.Gauge
	regRTT        *metrics.Histogram
	mRegs         *metrics.Counter
	mRegFails     *metrics.Counter
	mRenewals     *metrics.Counter
	mProbes       *metrics.Counter
	mMoves        *metrics.Counter
	regExchangeAt vtime.Time

	// rng is the node's own jitter stream, derived from (seed, index) at
	// construction; retry desynchronization draws must not couple this
	// node's schedule to any other entity's draw sequence.
	rng *rand.Rand
}

// NewMobileNode installs mobility support on host. The host must already
// have its physical interface configured at home (address == cfg.Home).
func NewMobileNode(host *stack.Host, ifc *stack.Iface, cfg MobileNodeConfig) (*MobileNode, error) {
	if cfg.Codec == nil {
		cfg.Codec = encap.IPIP{}
	}
	if cfg.Lifetime == 0 {
		cfg.Lifetime = 120
	}
	if cfg.RegRetryInterval == 0 {
		cfg.RegRetryInterval = vtime.Duration(1e9)
	}
	if cfg.RegMaxRetries == 0 {
		cfg.RegMaxRetries = 5
	}
	if cfg.RegBackoffMax == 0 {
		cfg.RegBackoffMax = vtime.Duration(8e9)
	}
	if cfg.Selector == nil {
		cfg.Selector = core.NewSelector(core.StartPessimistic)
	}
	if cfg.Ports == nil {
		cfg.Ports = core.DefaultPortHeuristic()
	}
	// Count tunnel work (global Encaps/Decaps plus "mn/..." role
	// counters) without touching the codec implementations.
	cfg.Codec = encap.Instrument(cfg.Codec, host.Sim().Metrics, "mn")
	reg := host.Sim().Metrics
	mn := &MobileNode{
		host:      host,
		ifc:       ifc,
		cfg:       cfg,
		careOf:    cfg.Home,
		atHome:    true,
		reg:       reg,
		regGauge:  reg.Gauge("mn/registered"),
		regRTT:    reg.Histogram("mn/reg_rtt_ns", metrics.DefaultLatencyBuckets),
		mRegs:     reg.Counter("mn/registrations"),
		mRegFails: reg.Counter("mn/registration_fails"),
		mRenewals: reg.Counter("mn/renewals"),
		mProbes:   reg.Counter("mn/recovery_probes"),
		mMoves:    reg.Counter("mn/moves"),
		rng:       host.Sched().NewStream(),
	}
	mn.tunIE = stack.Route{Name: "mip-tunnel", Output: func(inner ipv4.Packet) {
		mn.tunnelOutput(inner, mn.ieDecapsulator(), core.OutIE)
	}}
	mn.tunDE = stack.Route{Name: "mip-tunnel", Output: func(inner ipv4.Packet) {
		mn.tunnelOutput(inner, inner.Dst, core.OutDE)
	}}
	// The home address is always ours, wherever we are.
	host.Claim(cfg.Home, nil)
	// Tunnel decapsulation: packets tunneled to our care-of address.
	host.Handle(cfg.Codec.Proto(), mn.handleTunneled)
	// The mobility policy consults us before the route table.
	host.RouteOverride = mn.routeOverride
	// Classify over-the-wire arrivals into the In-mode half of the grid
	// (tunneled arrivals are classified at decapsulation instead).
	host.DeliveryHook = mn.classifyDelivery
	sock, err := host.OpenUDP(ipv4.Zero, 0, mn.handleRegistrationReply)
	if err != nil {
		return nil, fmt.Errorf("mobileip: mobile node: %w", err)
	}
	mn.sock = sock
	return mn, nil
}

// Host returns the underlying host.
func (mn *MobileNode) Host() *stack.Host { return mn.host }

// Iface returns the node's physical interface (fault schedules bounce it
// to model a radio dropping off the network).
func (mn *MobileNode) Iface() *stack.Iface { return mn.ifc }

// Home returns the permanent home address.
func (mn *MobileNode) Home() ipv4.Addr { return mn.cfg.Home }

// CareOf returns the current care-of address (== Home when at home).
func (mn *MobileNode) CareOf() ipv4.Addr { return mn.careOf }

// HomeAgentAddr returns the configured home agent's address (the
// route-optimization updater filters it out of peer tracking).
func (mn *MobileNode) HomeAgentAddr() ipv4.Addr { return mn.cfg.HomeAgent }

// AtHome reports whether the node is on its home network.
func (mn *MobileNode) AtHome() bool { return mn.atHome }

// Registered reports whether the current care-of address is registered
// with the home agent.
func (mn *MobileNode) Registered() bool { return mn.registered }

// setRegistered updates the flag and mirrors the transition into the
// mn/registered gauge as an Add delta, so the gauge counts
// currently-registered nodes. Deltas (rather than Set) keep the gauge
// correct when many nodes share one registry, and make per-region gauge
// levels disjoint contributions that metrics.Merge can sum.
func (mn *MobileNode) setRegistered(v bool) {
	if v != mn.registered {
		if v {
			mn.regGauge.Add(1)
		} else {
			mn.regGauge.Add(-1)
		}
	}
	mn.registered = v
}

// Selector exposes the outgoing-mode engine (experiments feed it
// retransmission signals).
func (mn *MobileNode) Selector() *core.Selector { return mn.cfg.Selector }

// SetPrivacy toggles location privacy at runtime.
func (mn *MobileNode) SetPrivacy(v bool) { mn.cfg.Privacy = v }

// MoveTo attaches the node to a visited segment with the given care-of
// address, on-link prefix and default gateway, then registers the new
// location with the home agent ("If the mobile host moves again ... it
// must again inform its home agent of its new location").
func (mn *MobileNode) MoveTo(seg *netsim.Segment, careOf ipv4.Addr, prefix ipv4.Prefix, gateway ipv4.Addr) {
	mn.cancelTimers()
	mn.setRegistered(false)
	mn.atHome = false
	mn.viaFA = false
	mn.careOf = careOf
	mn.Stats.Moves++
	mn.mMoves.Inc()
	mn.ifc.Attach(seg)
	mn.ifc.SetAddr(careOf, prefix)
	mn.host.Routes().Remove(ipv4.Prefix{}) // old default route
	if !gateway.IsZero() {
		mn.host.Routes().AddDefault(mn.ifc, gateway)
	}
	// History built at the old location may be wrong here (different
	// filters on the path); start conversations fresh.
	mn.cfg.Selector.Reset()
	if mn.cfg.AnnouncePresence && !mn.cfg.Privacy {
		mn.AnnouncePresence()
	}
	mn.register()
}

// MoveToForeignAgent attaches the node to a visited segment served by a
// foreign agent (the IETF attachment style of Section 2). The node keeps
// its home address on the local link; the agent's address becomes the
// care-of address; registration is relayed through the agent.
func (mn *MobileNode) MoveToForeignAgent(seg *netsim.Segment, faAddr ipv4.Addr) {
	mn.cancelTimers()
	mn.setRegistered(false)
	mn.atHome = false
	mn.viaFA = true
	mn.careOf = faAddr
	mn.Stats.Moves++
	mn.mMoves.Inc()
	mn.ifc.Attach(seg)
	// Keep the home address; no on-link prefix is configured because the
	// home address is not topologically valid here. The node answers ARP
	// for its home address, which is how the agent link-delivers to it.
	mn.ifc.SetAddr(mn.cfg.Home, ipv4.Prefix{})
	mn.host.Routes().Remove(ipv4.Prefix{})
	mn.host.Routes().AddDefault(mn.ifc, faAddr)
	mn.cfg.Selector.Reset()
	mn.register()
}

// ViaForeignAgent reports whether the node is attached through a foreign
// agent.
func (mn *MobileNode) ViaForeignAgent() bool { return mn.viaFA }

// GoHome reattaches the node to its home segment and clears the binding
// ("When the mobile host is at home, it ... functions like a normal
// non-mobile Internet host").
func (mn *MobileNode) GoHome(seg *netsim.Segment, gateway ipv4.Addr) {
	mn.cancelTimers()
	mn.Stats.Moves++
	mn.mMoves.Inc()
	mn.ifc.Attach(seg)
	mn.ifc.SetAddr(mn.cfg.Home, mn.cfg.HomePrefix)
	mn.host.Routes().Remove(ipv4.Prefix{})
	if !gateway.IsZero() {
		mn.host.Routes().AddDefault(mn.ifc, gateway)
	}
	mn.careOf = mn.cfg.Home
	mn.atHome = true
	mn.viaFA = false
	mn.setRegistered(false)
	mn.cfg.Selector.Reset()
	// Deregister and reclaim our address on the home segment.
	mn.sendRegistration(0, mn.cfg.Home)
	mn.ifc.GratuitousARP(mn.cfg.Home)
}

// MoveToRegional attaches the node to a new segment inside its current
// metro without touching the home registration: the home agent keeps
// tunneling to the stable regional care-of address (cfg.RegisterCareOf),
// so only the regional agent needs to learn the new location — the
// caller's local registrar does that. The registered flag and the
// renewal schedule survive the move; if a migration (DetachRetain +
// Rehome) nilled the renewal timer, it is re-armed here from the
// preserved deadline.
func (mn *MobileNode) MoveToRegional(seg *netsim.Segment, careOf ipv4.Addr, prefix ipv4.Prefix, gateway ipv4.Addr) {
	mn.atHome = false
	mn.viaFA = false
	mn.careOf = careOf
	mn.Stats.Moves++
	mn.mMoves.Inc()
	mn.ifc.Attach(seg)
	mn.ifc.SetAddr(careOf, prefix)
	mn.host.Routes().Remove(ipv4.Prefix{})
	if !gateway.IsZero() {
		mn.host.Routes().AddDefault(mn.ifc, gateway)
	}
	mn.cfg.Selector.Reset()
	if !mn.registered || mn.awaitingReply {
		return
	}
	now := mn.host.Sim().Now()
	switch {
	case mn.renewTimer.Pending():
		// Intra-region move without migration: the schedule is intact.
	case mn.renewAt > now:
		if mn.renewTimer == nil {
			mn.renewTimer = mn.host.Sched().After(mn.renewAt.Sub(now), mn.onRenew)
		} else {
			mn.renewTimer.Reset(mn.renewAt.Sub(now))
		}
	default:
		// The renewal came due while the node was in transit: renew now
		// rather than letting the home binding silently expire.
		mn.onRenew()
	}
}

// DetachRetain detaches the node for migration while keeping its home
// registration: the hierarchical tier's intra-metro moves never clear
// the home binding (the home agent points at the regional care-of
// address, which does not change). Timers are stopped — Rehome requires
// a quiet node — and MoveToRegional re-arms renewal from the preserved
// deadline. The node's +1 contribution to the mn/registered gauge moves
// with it: DetachRetain takes it out of this region's registry, Rehome
// adds it to the next one's.
func (mn *MobileNode) DetachRetain() {
	mn.cancelTimers()
	if mn.registered {
		mn.regGauge.Add(-1)
	}
	mn.atHome = false
	mn.ifc.Detach()
}

// Detach models the laptop going to sleep mid-move: connected to nothing.
// A detached node no longer assumes it is home — wherever it wakes up, it
// either discovers an agent (ListenForAgents), acquires an address
// (MoveTo/DHCP), or is explicitly returned home (GoHome).
func (mn *MobileNode) Detach() {
	mn.cancelTimers()
	mn.setRegistered(false)
	mn.atHome = false
	mn.ifc.Detach()
}

// Rehome rebinds the node's cached per-region state after its host has
// been migrated to a new region Sim (stack.Host.Rehome). The node must be
// detached with no registration exchange in flight — the fleet migration
// protocol guarantees this by calling Detach before shipping the node.
//
// Three kinds of state pin the old region and are rebuilt here:
//
//   - Metric instruments were resolved once at construction from the old
//     region's registry; they are re-resolved from the new one (the codec
//     wrapper too, since encap.Instrument caches its counters).
//   - Timer handles carry the old region's *Scheduler inside them, so
//     Reset would re-arm on a shard this node no longer runs on. They are
//     nilled; the next arm lazily creates fresh handles on the new
//     scheduler (the usual nil-handle path in armRegRetry and friends).
//   - The jitter rng is NOT touched: it is plain PRNG state, and the
//     node's events are totally ordered in virtual time across
//     migrations, so carrying the stream keeps the draw sequence — and
//     with it cross-worker-count determinism — intact.
func (mn *MobileNode) Rehome() {
	// A preserved registration (DetachRetain, hierarchical tier) may ride
	// along — its stable regional care-of address stays valid across the
	// migration — but an unanswered exchange may not: its reply would
	// arrive on the old shard.
	if mn.awaitingReply {
		assert.Unreachable("mobileip: Rehome of %s with a registration exchange in flight",
			mn.host.Name())
	}
	if mn.regTimer.Pending() || mn.renewTimer.Pending() || mn.probeTimer.Pending() {
		assert.Unreachable("mobileip: Rehome of %s with pending timers", mn.host.Name())
	}
	reg := mn.host.Sim().Metrics
	mn.reg = reg
	mn.regGauge = reg.Gauge("mn/registered")
	mn.regRTT = reg.Histogram("mn/reg_rtt_ns", metrics.DefaultLatencyBuckets)
	mn.mRegs = reg.Counter("mn/registrations")
	mn.mRegFails = reg.Counter("mn/registration_fails")
	mn.mRenewals = reg.Counter("mn/renewals")
	mn.mProbes = reg.Counter("mn/recovery_probes")
	mn.mMoves = reg.Counter("mn/moves")
	if w, ok := mn.cfg.Codec.(*encap.Instrumented); ok {
		mn.cfg.Codec = encap.Instrument(w.Unwrap(), reg, "mn")
	}
	mn.regTimer, mn.renewTimer, mn.probeTimer = nil, nil, nil
	if mn.registered {
		// The registration survived the migration (DetachRetain): its
		// gauge contribution lands in the new region's registry.
		mn.regGauge.Add(1)
	}
}

func (mn *MobileNode) cancelTimers() {
	// Stop, don't nil: the handles are reused via Reset so re-arming a
	// timer never allocates (the tcplite retransmission idiom).
	mn.regTimer.Stop()
	mn.renewTimer.Stop()
	mn.probeTimer.Stop()
	mn.awaitingReply = false
}

// register starts (or restarts) the registration exchange.
func (mn *MobileNode) register() {
	mn.startExchange()
}

// ieDecapsulator is where Out-IE tunnels terminate: the regional gateway
// agent when the hierarchical tier is configured, the home agent
// otherwise.
func (mn *MobileNode) ieDecapsulator() ipv4.Addr {
	if !mn.cfg.RegionalAgent.IsZero() {
		return mn.cfg.RegionalAgent
	}
	return mn.cfg.HomeAgent
}

// registerCareOf is the care-of address advertised to the home agent:
// the configured stable regional address when the hierarchical tier is
// on, the node's actual one otherwise.
func (mn *MobileNode) registerCareOf() ipv4.Addr {
	if !mn.cfg.RegisterCareOf.IsZero() {
		return mn.cfg.RegisterCareOf
	}
	return mn.careOf
}

// Reregister restarts the registration exchange for the current care-of
// address without moving — the recovery primitive after an interface
// bounce or a suspected agent restart. A no-op at home.
func (mn *MobileNode) Reregister() {
	if mn.atHome {
		return
	}
	mn.cancelTimers()
	mn.setRegistered(false)
	mn.startExchange()
}

// startExchange begins a registration exchange (initial, renewal or
// recovery probe): fresh try count, initial backoff, first transmission,
// retry timer armed.
func (mn *MobileNode) startExchange() {
	mn.regTries = 0
	mn.regBackoff = mn.cfg.RegRetryInterval
	mn.awaitingReply = true
	mn.regExchangeAt = mn.host.Sim().Now()
	mn.sendRegistration(mn.cfg.Lifetime, mn.registerCareOf())
	mn.armRegRetry()
}

// nextRegID returns a fresh identification for an outgoing request: the
// current virtual time in nanoseconds, forced strictly monotone per node
// ([Per96a]'s timestamp-style identification). Monotonicity is what the
// agent-side replay window orders by; the vtime base means the IDs of a
// replayed old message fall behind the window (auth_stale_id) rather
// than merely colliding with it.
func (mn *MobileNode) nextRegID() uint64 {
	id := uint64(mn.host.Sim().Now())
	if id <= mn.regID {
		id = mn.regID + 1
	}
	mn.regID = id
	return id
}

func (mn *MobileNode) sendRegistration(lifetime uint16, careOf ipv4.Addr) {
	var flags uint8
	if mn.cfg.ReverseTunnelFlag {
		flags |= FlagReverseTunnel
	}
	req := Request{
		Flags:     flags,
		Lifetime:  lifetime,
		Home:      mn.cfg.Home,
		HomeAgent: mn.cfg.HomeAgent,
		CareOf:    careOf,
		ID:        mn.nextRegID(),
	}
	if mn.viaFA {
		req.Flags |= FlagViaForeignAgent
	}
	// Marshal into a pooled buffer: SendToFrom copies the payload before
	// returning, so a renewal storm's requests cost zero allocations.
	// The authenticator is computed into the same pooled buffer with the
	// association's preallocated HMAC state — still zero allocations.
	buf := netsim.GetBuf()
	rb := req.AppendMarshal(buf.B)
	if mn.cfg.Auth != nil {
		rb = mn.cfg.Auth.AppendAuth(rb)
	}
	if mn.viaFA {
		// Via a foreign agent: the request goes to the agent (one
		// link-layer hop) from the home address; the agent substitutes
		// its own address as the care-of address and relays.
		_ = mn.sock.SendToFrom(mn.cfg.Home, mn.careOf, udp.PortRegistration, rb)
	} else {
		// Self-sufficient: registration always travels Out-DT — "It has no
		// choice, since until it has registered with the home agent the
		// other Mobile IP delivery services are not available" (Section 6.4).
		_ = mn.sock.SendToFrom(mn.careOf, mn.cfg.HomeAgent, udp.PortRegistration, rb)
	}
	netsim.PutBuf(buf)
}

// armRegRetry schedules the next retransmission at the current backoff.
// From the second retry on, a jitter of up to backoff/4 is added so
// nodes re-registering after a shared outage do not stay synchronized
// (the first arm is unjittered, keeping the common lossless exchange
// free of extra RNG draws).
func (mn *MobileNode) armRegRetry() {
	d := mn.regBackoff
	if d > mn.cfg.RegRetryInterval {
		if q := int64(d / 4); q > 0 {
			d += vtime.Duration(mn.rng.Int63n(q))
		}
	}
	if mn.regTimer == nil {
		mn.regTimer = mn.host.Sched().After(d, mn.onRegRetry)
	} else {
		mn.regTimer.Reset(d)
	}
}

// onRegRetry fires when a registration request has gone unanswered for
// the current backoff interval: retransmit with the interval doubled, or
// — once the exchange's try budget is spent — give up, report the loss,
// and fall back to recovery probing.
func (mn *MobileNode) onRegRetry() {
	if !mn.awaitingReply || mn.atHome {
		return
	}
	mn.regTries++
	if mn.regTries >= mn.cfg.RegMaxRetries {
		mn.awaitingReply = false
		mn.setRegistered(false)
		mn.Stats.RegistrationFails++
		mn.mRegFails.Inc()
		var detail string
		if mn.host.Sim().Trace.Detailing() {
			detail = "registration abandoned: retries exhausted"
		}
		mn.host.Sim().Trace.Record(netsim.Event{
			Kind: netsim.EventRegister, Time: mn.host.Sim().Now(), Where: mn.host.Name(),
			Detail: detail,
		})
		if mn.OnRegistrationLost != nil {
			mn.OnRegistrationLost()
		}
		mn.armRecoveryProbe()
		return
	}
	mn.regBackoff *= 2
	if mn.regBackoff > mn.cfg.RegBackoffMax {
		mn.regBackoff = mn.cfg.RegBackoffMax
	}
	mn.sendRegistration(mn.cfg.Lifetime, mn.registerCareOf())
	mn.armRegRetry()
}

// armRecoveryProbe schedules the next post-give-up registration attempt.
func (mn *MobileNode) armRecoveryProbe() {
	if mn.cfg.RegProbeInterval <= 0 || mn.atHome {
		return
	}
	if mn.probeTimer == nil {
		mn.probeTimer = mn.host.Sched().After(mn.cfg.RegProbeInterval, mn.onRecoveryProbe)
	} else {
		mn.probeTimer.Reset(mn.cfg.RegProbeInterval)
	}
}

func (mn *MobileNode) onRecoveryProbe() {
	if mn.registered || mn.atHome || mn.awaitingReply {
		return
	}
	mn.Stats.RecoveryProbes++
	mn.mProbes.Inc()
	mn.startExchange()
}

func (mn *MobileNode) onRenew() {
	if mn.atHome || !mn.registered {
		return
	}
	mn.Stats.Renewals++
	mn.mRenewals.Inc()
	mn.startExchange()
}

func (mn *MobileNode) handleRegistrationReply(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	rep, _, hasAuth, ok := ParseReply(payload)
	if !ok {
		return
	}
	if mn.cfg.Auth != nil && (!hasAuth || !mn.cfg.Auth.Verify(payload)) {
		// Under a security association every reply must authenticate:
		// this is what catches a rogue relay re-writing lifetimes (the
		// MAC covers them) or forging denials.
		mn.reg.Drop(metrics.DropAuthBadMAC)
		return
	}
	if rep.ID != mn.regID || rep.Home != mn.cfg.Home {
		return
	}
	if !mn.awaitingReply {
		// The exchange this reply answers is already settled: a network
		// duplicate, or the agent's denial of a replayed copy of our
		// request spoofed back at us. Either way there is nothing to
		// update, and counting it as a fresh failure would let a
		// replayer pollute the node's registration stats.
		return
	}
	if rep.Code != CodeAccepted {
		mn.Stats.RegistrationFails++
		mn.mRegFails.Inc()
		return
	}
	if rep.Lifetime == 0 {
		return // deregistration confirmed
	}
	mn.regTimer.Stop()
	mn.probeTimer.Stop()
	if mn.awaitingReply {
		// Exchange latency: first transmission of this exchange to the
		// accepted reply, including any retransmission backoff.
		mn.regRTT.ObserveDuration(mn.host.Sim().Now().Sub(mn.regExchangeAt))
	}
	mn.awaitingReply = false
	first := !mn.registered
	mn.setRegistered(true)
	mn.Stats.Registrations++
	mn.mRegs.Inc()
	var detail string
	if mn.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("registered %s -> %s lifetime=%ds", mn.cfg.Home, mn.careOf, rep.Lifetime)
	}
	mn.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventRegister, Time: mn.host.Sim().Now(), Where: mn.host.Name(),
		Detail: detail,
	})
	// Renew at 80% of the granted lifetime.
	renewAt := vtime.Duration(rep.Lifetime) * 1e9 * 8 / 10
	mn.renewAt = mn.host.Sim().Now().Add(renewAt)
	if mn.renewTimer == nil {
		mn.renewTimer = mn.host.Sched().After(renewAt, mn.onRenew)
	} else {
		mn.renewTimer.Reset(renewAt)
	}
	if first && mn.OnRegistered != nil {
		mn.OnRegistered()
	}
}

// classifyDelivery is the stack's DeliveryHook: it files every genuine
// over-the-wire arrival (ifc == nil marks loopback/resubmitted inner
// packets, which are skipped — their tunnel was classified at decap
// time) into the In-mode half of the 4x4 grid. Packets to the home
// address while away are In-DH (link-direct delivery, Section 5);
// packets to the care-of address are In-DT — including registration
// replies, which per Section 6.4 have no other mode available. Tunnel
// outers to the care-of address are skipped here and counted as
// In-IE/In-DE after decapsulation.
func (mn *MobileNode) classifyDelivery(ifc *stack.Iface, pkt ipv4.Packet) {
	if ifc == nil || mn.atHome {
		return
	}
	switch pkt.Dst {
	case mn.cfg.Home:
		if pkt.Protocol == mn.cfg.Codec.Proto() {
			return // tunneled to the home address: classified at decap
		}
		mn.Stats.InDirect++
		mn.Stats.InByMode[core.InDH]++
		mn.reg.InPackets[core.InDH].Inc()
		mn.reg.InBytes[core.InDH].Add(uint64(pkt.TotalLen()))
		mn.reg.InWireBytes[core.InDH].Add(uint64(pkt.TotalLen()))
		if mn.OnInPacket != nil {
			mn.OnInPacket(core.InDH, pkt)
		}
	case mn.careOf:
		if pkt.Protocol == mn.cfg.Codec.Proto() {
			return // tunnel outer: classified at decap
		}
		mn.Stats.InByMode[core.InDT]++
		mn.reg.InPackets[core.InDT].Inc()
		mn.reg.InBytes[core.InDT].Add(uint64(pkt.TotalLen()))
		mn.reg.InWireBytes[core.InDT].Add(uint64(pkt.TotalLen()))
		if mn.OnInPacket != nil {
			mn.OnInPacket(core.InDT, pkt)
		}
	}
}

// handleTunneled decapsulates packets tunneled to our care-of address and
// re-injects the inner packet (addressed to the home address, which we
// claim, so it is delivered locally).
func (mn *MobileNode) handleTunneled(ifc *stack.Iface, outer ipv4.Packet) {
	inner, err := mn.cfg.Codec.Decapsulate(outer)
	if err != nil {
		return
	}
	mn.Stats.InTunneled++
	// In-IE when the tunnel entry point was the home agent, In-DE when a
	// correspondent encapsulated directly to us (Section 4's columns).
	inMode := core.InDE
	if outer.Src == mn.cfg.HomeAgent ||
		(!mn.cfg.RegionalAgent.IsZero() && outer.Src == mn.cfg.RegionalAgent) {
		inMode = core.InIE
	}
	mn.Stats.InByMode[inMode]++
	mn.reg.InPackets[inMode].Inc()
	mn.reg.InBytes[inMode].Add(uint64(inner.TotalLen()))
	mn.reg.InWireBytes[inMode].Add(uint64(outer.TotalLen()))
	if mn.OnInPacket != nil {
		mn.OnInPacket(inMode, inner)
	}
	if inner.Dst.IsMulticast() {
		// Group traffic relayed by the home agent (Section 6.4's
		// tunneled alternative): deliver to our own subscribers.
		mn.host.InjectLocal(inner)
		return
	}
	var detail string
	if mn.host.Sim().Trace.Detailing() {
		detail = decapDetail("detunnel: ", inner.Src, inner.Dst)
	}
	mn.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventDecap, Time: mn.host.Sim().Now(), Where: mn.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = mn.host.Resubmit(inner)
}

// transportDstPort extracts the destination port from a UDP or TCP
// payload (both carry it at offset 2).
func transportDstPort(pkt *ipv4.Packet) (uint16, bool) {
	if pkt.Protocol != ipv4.ProtoUDP && pkt.Protocol != ipv4.ProtoTCP {
		return 0, false
	}
	if len(pkt.Payload) < 4 {
		return 0, false
	}
	return binary.BigEndian.Uint16(pkt.Payload[2:4]), true
}

// countOut files one outgoing packet under its Out mode, in both the
// legacy per-node stats and the registry's grid families.
func (mn *MobileNode) countOut(mode core.OutMode, pkt *ipv4.Packet) {
	mn.Stats.OutByMode[mode]++
	mn.reg.OutPackets[mode].Inc()
	mn.reg.OutBytes[mode].Add(uint64(pkt.TotalLen()))
	if mode == core.OutDH || mode == core.OutDT {
		// Direct modes hit the wire as-is; the encapsulated modes file
		// their wire bytes in tunnelOutput, where the outer exists.
		mn.reg.OutWireBytes[mode].Add(uint64(pkt.TotalLen()))
	}
	if mn.OnOutPacket != nil {
		mn.OnOutPacket(mode, *pkt)
	}
}

// routeOverride is the paper's policy-table-before-route-table hook. It
// decides, per packet, which of the four outgoing modes to use and either
// routes the packet onto the tunnel virtual interface (encapsulated
// modes) or pins the source address and falls through to normal routing.
func (mn *MobileNode) routeOverride(pkt *ipv4.Packet) (stack.Route, bool) {
	if mn.atHome {
		return stack.Route{}, false // normal host at home: normal routing
	}
	if mn.viaFA {
		// Foreign-agent attachment: the full menu is unavailable. All
		// outgoing traffic is plain IP from the home address, routed
		// via the agent (the restriction Section 2 criticizes).
		pkt.Src = mn.cfg.Home
		mn.countOut(core.OutDH, pkt)
		return stack.Route{}, false
	}
	// Never intercept our own registration/tunnel machinery, and honor
	// explicit bindings: a packet sourced from the care-of address — or
	// from the address of ANY physical interface ("If the application
	// binds its socket to the source address of (any of) the machine's
	// physical interface(s), then the packets sent through that socket
	// are sent directly", §7.1.1) — is Out-DT by application request.
	if pkt.Src == mn.careOf {
		mn.countOut(core.OutDT, pkt)
		return stack.Route{}, false
	}
	if !pkt.Src.IsZero() && pkt.Src != mn.cfg.Home {
		for _, ifc := range mn.host.Ifaces() {
			if ifc.Addr() == pkt.Src {
				mn.countOut(core.OutDT, pkt)
				return stack.Route{}, false
			}
		}
	}

	pref := core.PreferAuto
	if pkt.Src == mn.cfg.Home {
		pref = core.PreferHome
	}
	dstPort, _ := transportDstPort(pkt)

	_, ruleForced := mn.cfg.Selector.ForcedMode(pkt.Dst)
	var mode core.OutMode
	switch {
	case mn.cfg.Privacy:
		mode = core.OutIE
	case !ruleForced && mn.ifc.Prefix().Bits > 0 && mn.ifc.Prefix().Contains(pkt.Dst):
		// Same-segment correspondent (Row C): deliver directly with the
		// home source address; no router — and so no filter — is
		// involved. This also satisfies a socket pinned to the home
		// address: Out-DH keeps the home address as the endpoint. An
		// explicit user rule for the destination overrides the shortcut.
		mode = core.OutDH
	default:
		mode = core.Decide(mn.cfg.Selector, mn.cfg.Ports, pref, pkt.Dst, dstPort).Mode
	}
	mn.countOut(mode, pkt)

	switch mode {
	case core.OutDT:
		pkt.Src = mn.careOf
		return stack.Route{}, false
	case core.OutDH:
		pkt.Src = mn.cfg.Home
		return stack.Route{}, false
	case core.OutDE:
		if pkt.Src.IsZero() {
			pkt.Src = mn.cfg.Home
		}
		return mn.tunDE, true
	default: // core.OutIE
		if pkt.Src.IsZero() {
			pkt.Src = mn.cfg.Home
		}
		return mn.tunIE, true
	}
}

// tunnelOutput is the virtual-interface output function ("the routine
// directs IP to send the packet to our virtual interface, which
// encapsulates the packet and resubmits it to IP"). The tunnel payload is
// built in a pooled buffer; Resubmit copies it onward before returning, so
// the buffer is recycled immediately.
func (mn *MobileNode) tunnelOutput(inner ipv4.Packet, decapsulator ipv4.Addr, mode core.OutMode) {
	if inner.TTL == 0 {
		inner.TTL = ipv4.DefaultTTL
	}
	careOf := mn.careOf
	buf := netsim.GetBuf()
	outer, err := mn.cfg.Codec.AppendEncap(inner, careOf, decapsulator, buf.B)
	if err != nil {
		netsim.PutBuf(buf)
		return
	}
	mn.reg.OutWireBytes[mode].Add(uint64(outer.TotalLen()))
	var detail string
	if mn.host.Sim().Trace.Detailing() {
		detail = tunnelDetail(careOf, decapsulator, inner.Src, inner.Dst)
	}
	mn.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventEncap, Time: mn.host.Sim().Now(), Where: mn.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = mn.host.Resubmit(outer)
	netsim.PutBuf(buf)
}
