package mobileip

import (
	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
)

// SelectorFeedback adapts the transport's original-vs-retransmission
// signals (tcplite.FeedbackListener) to the mode selector, realizing the
// IP-interface addition proposed in Section 7.1.2: "If the IP layer sees
// repeated retransmissions to a particular address, then this suggests
// that the currently selected delivery method may not be working."
type SelectorFeedback struct {
	Selector *core.Selector
	// OnSwitch, when non-nil, fires when accumulated retransmissions
	// cause a delivery-method change.
	OnSwitch func(remote ipv4.Addr, newMode core.OutMode)

	// Switches counts delivery-method changes triggered by feedback.
	Switches uint64
}

// Retransmission implements tcplite.FeedbackListener.
func (f *SelectorFeedback) Retransmission(remote ipv4.Addr) {
	switched, mode := f.Selector.ReportRetransmission(remote)
	if switched {
		f.Switches++
		if f.OnSwitch != nil {
			f.OnSwitch(remote, mode)
		}
	}
}

// Progress implements tcplite.FeedbackListener.
func (f *SelectorFeedback) Progress(remote ipv4.Addr) {
	f.Selector.ReportSuccess(remote)
}
