package mobileip

import (
	"encoding/binary"
	"fmt"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/vtime"
)

// Agent discovery. The IETF protocol the paper builds on ([Per96a])
// has agents periodically multicast Agent Advertisements so arriving
// mobile hosts can find a foreign agent without configuration. The
// simulation carries advertisements as small UDP broadcasts on the
// agent's segment (the real protocol extends ICMP Router Discovery; the
// discovery semantics — hear a beacon, learn the agent, register — are
// identical).

// Advertisement is one agent beacon.
type Advertisement struct {
	Agent    ipv4.Addr
	Flags    uint8 // AdvFlagFA / AdvFlagHA
	Lifetime uint16
	Sequence uint16
}

// Advertisement flags.
const (
	AdvFlagFA uint8 = 1 << 0 // sender offers foreign-agent service
	AdvFlagHA uint8 = 1 << 1 // sender is a home agent
)

// PortAgentAdvert is the UDP port advertisements use.
const PortAgentAdvert = 435

const advLen = 1 + 4 + 1 + 2 + 2

// Marshal serializes the advertisement (type byte 16 distinguishes it
// from registration traffic if ports are ever shared).
func (a *Advertisement) Marshal() []byte {
	b := make([]byte, advLen)
	b[0] = 16
	copy(b[1:5], a.Agent[:])
	b[5] = a.Flags
	binary.BigEndian.PutUint16(b[6:], a.Lifetime)
	binary.BigEndian.PutUint16(b[8:], a.Sequence)
	return b
}

// ParseAdvertisement decodes a beacon.
func ParseAdvertisement(b []byte) (Advertisement, error) {
	var a Advertisement
	if len(b) < advLen || b[0] != 16 {
		return a, fmt.Errorf("mobileip: not an agent advertisement")
	}
	copy(a.Agent[:], b[1:5])
	a.Flags = b[5]
	a.Lifetime = binary.BigEndian.Uint16(b[6:])
	a.Sequence = binary.BigEndian.Uint16(b[8:])
	return a, nil
}

// Advertise starts periodic beaconing from the foreign agent. Stop the
// returned timer-chain by calling the returned cancel function.
func (fa *ForeignAgent) Advertise(interval vtime.Duration) (cancel func()) {
	seq := uint16(0)
	stopped := false
	sock, err := fa.host.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		return func() {}
	}
	var beacon func()
	beacon = func() {
		if stopped {
			return
		}
		seq++
		adv := Advertisement{
			Agent:    fa.Addr(),
			Flags:    AdvFlagFA,
			Lifetime: fa.cfg.VisitorLifetime,
			Sequence: seq,
		}
		//mob4x4vet:allow hotpathalloc agent beacons are periodic control traffic, not per-packet datapath
		_ = sock.SendToFrom(fa.Addr(), ipv4.Broadcast, PortAgentAdvert, adv.Marshal())
		fa.host.Sched().After(interval, beacon)
	}
	beacon()
	return func() { stopped = true; sock.Close() }
}

// ListenForAgents makes the mobile node register through any foreign
// agent it hears on its current segment when it is detached-from-home and
// unregistered — the zero-configuration attachment path. Returns the
// socket's close function.
func (mn *MobileNode) ListenForAgents() (cancel func(), err error) {
	sock, err := mn.host.OpenUDP(ipv4.Zero, PortAgentAdvert, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		adv, err := ParseAdvertisement(payload)
		if err != nil || adv.Flags&AdvFlagFA == 0 {
			return
		}
		if mn.atHome || mn.registered {
			return
		}
		if mn.viaFA && mn.careOf == adv.Agent {
			return // already registering through this agent
		}
		seg := mn.ifc.NIC().Segment()
		if seg == nil {
			return
		}
		mn.MoveToForeignAgent(seg, adv.Agent)
	})
	if err != nil {
		return nil, fmt.Errorf("mobileip: agent listener: %w", err)
	}
	return sock.Close, nil
}
