package mobileip

import (
	"mob4x4/internal/ipv4"
	"mob4x4/internal/vtime"
)

// binding is one mobile host's registration. Bindings live in the
// bindingTable's dense slot array; pointers into it stay valid only
// until the next insert (growth may move the backing array), so hot
// paths look a binding up, use it, and let go — exactly the pattern the
// single-threaded simulator enforces anyway.
type binding struct {
	home   ipv4.Addr
	careOf ipv4.Addr
	flags  uint8
	live   bool
	// gen advances on every (re-)registration and deregistration of this
	// slot. The expiry wheel stamps entries with the gen they were
	// scheduled under; a mismatch at fire time means the entry is stale
	// (renewed or slot reused) and is skipped. See expiryWheel.
	gen       uint32
	expiresAt vtime.Time
	lastID    uint64
	// noticed tracks which correspondents already got a binding notice
	// for this binding generation (simple rate limit: one per source per
	// registration). The map is cleared — not reallocated — on renewal.
	noticed map[ipv4.Addr]bool
}

// bindingTable is the home agent's registration store, built for
// fleet-scale populations: a dense slot slice (cache-friendly iteration,
// one allocation amortized over doublings instead of one per binding)
// with a home-address index and a freelist of vacated slots. Lookup is
// one map probe; insert and remove are O(1); iteration is a linear walk
// over the slots in deterministic slot order.
type bindingTable struct {
	slots []binding
	index map[ipv4.Addr]int32
	free  []int32
	live  int
}

func newBindingTable() *bindingTable {
	return &bindingTable{index: make(map[ipv4.Addr]int32)}
}

// get returns the live binding for home, or nil.
func (t *bindingTable) get(home ipv4.Addr) *binding {
	i, ok := t.index[home]
	if !ok {
		return nil
	}
	return &t.slots[i]
}

// getOrCreate returns the binding for home, creating a slot (reusing a
// vacated one when available) if none exists.
func (t *bindingTable) getOrCreate(home ipv4.Addr) (b *binding, created bool) {
	if i, ok := t.index[home]; ok {
		return &t.slots[i], false
	}
	var i int32
	if n := len(t.free); n > 0 {
		i = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		t.slots = append(t.slots, binding{})
		i = int32(len(t.slots) - 1)
	}
	t.index[home] = i
	b = &t.slots[i]
	// Slot reuse keeps gen and the noticed map: gen must keep advancing
	// so stale wheel entries from the previous occupant never match, and
	// the map is cleared by the caller on registration.
	gen := b.gen
	noticed := b.noticed
	*b = binding{home: home, live: true, gen: gen + 1, noticed: noticed}
	t.live++
	return b, true
}

// remove vacates home's slot. The slot's gen survives (and advances) so
// wheel entries scheduled under the old occupancy stay stale forever.
func (t *bindingTable) remove(home ipv4.Addr) bool {
	i, ok := t.index[home]
	if !ok {
		return false
	}
	b := &t.slots[i]
	b.live = false
	b.gen++
	delete(t.index, home)
	t.free = append(t.free, i)
	t.live--
	return true
}

// len returns the number of live bindings.
func (t *bindingTable) len() int { return t.live }

// forEach visits every live binding in slot order. Slot order is a pure
// function of the registration/deregistration history, so per-seed runs
// iterate identically — the determinism the trace and metrics tests
// rely on (the old map-keyed table had to sort addresses to get this).
func (t *bindingTable) forEach(fn func(*binding)) {
	for i := range t.slots {
		if t.slots[i].live {
			fn(&t.slots[i])
		}
	}
}

// reset drops every binding and the freelist but keeps the allocated
// capacity (crash teardown on a busy agent is followed by re-learning a
// similarly sized table). Generations restart from zero, so reset is
// only valid together with an expiryWheel reset — the home agent's
// Crash path does both.
func (t *bindingTable) reset() {
	t.slots = t.slots[:0]
	t.free = t.free[:0]
	clear(t.index)
	t.live = 0
}
