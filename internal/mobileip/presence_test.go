package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
)

// TestPresenceAnnouncementEnablesInDH: the visiting mobile host announces
// itself on the visited segment; the aware local server hears it and
// switches to In-DH — the whole Row C exchange with zero routers.
func TestPresenceAnnouncementEnablesInDH(t *testing.T) {
	w := buildWorld(t, worldOpts{chAware: true, chDecap: true,
		selector: core.NewSelector(core.StartOptimistic)})
	cancel, err := w.chNearC.ListenForVisitors(60)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	w.roam(t)
	w.mn.AnnouncePresence()
	w.net.RunFor(2e9)

	if _, ok := w.chNearC.Policy().Binding(w.mn.Home()); !ok {
		t.Fatal("binding not learned from the announcement")
	}
	if got := w.chNearC.Policy().ModeFor(w.mn.Home(), false); got != core.InDH {
		t.Fatalf("mode = %s, want In-DH", got)
	}

	ic := icmphost.Install(w.chNear)
	replies := 0
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }
	fwdBefore := w.net.Sim.Trace.Count(netsim.EventForward)
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 6, 1, nil)
	w.net.RunFor(2e9)
	if replies != 1 {
		t.Fatal("In-DH ping failed")
	}
	if got := w.net.Sim.Trace.Count(netsim.EventForward) - fwdBefore; got != 0 {
		t.Errorf("same-segment exchange used %d router forwards", got)
	}
}

// TestPresenceSpoofRejected: an announcement whose source does not match
// the claimed care-of address is ignored (a host on the segment cannot
// steal another's binding with a forged presence).
func TestPresenceSpoofRejected(t *testing.T) {
	w := buildWorld(t, worldOpts{chAware: true})
	cancel, err := w.chNearC.ListenForVisitors(60)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()
	w.roam(t)

	// chFar-style attacker is not on the segment; forge from chNear's
	// own segment using a second host.
	atk := w.net.AddHost("atk", w.visitLAN)
	w.net.ComputeRoutes()
	sock, err := atk.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 9)
	b[0] = 17
	home := w.mn.Home()
	copy(b[1:5], home[:])
	evil := ipv4.MustParseAddr("128.9.1.200") // claims a care-of it doesn't hold
	copy(b[5:9], evil[:])
	_ = sock.SendTo(ipv4.Broadcast, 436, b)
	w.net.RunFor(2e9)

	if b, ok := w.chNearC.Policy().Binding(w.mn.Home()); ok {
		t.Fatalf("forged binding accepted: %+v", b)
	}
}

// TestPresenceIgnoredAtHome: announcing at home is a no-op.
func TestPresenceIgnoredAtHome(t *testing.T) {
	w := buildWorld(t, worldOpts{chAware: true})
	w.mn.AnnouncePresence() // at home: nothing sent
	w.net.RunFor(1e9)
	if _, ok := w.chNearC.Policy().Binding(w.mn.Home()); ok {
		t.Error("binding learned from a host that is home")
	}
}

// TestAnnouncePresenceOnMoveOption: the config switch announces
// automatically after each move.
func TestAnnouncePresenceOnMoveOption(t *testing.T) {
	w := buildWorld(t, worldOpts{chAware: true})
	// Rebuild the node with announcements on: reuse the existing host is
	// not possible (route override and claims are installed); instead
	// flip the behavior by moving and announcing manually is already
	// covered, so here we build a second mobile host configured with
	// AnnouncePresence.
	mh2 := w.net.AddHost("mh2", w.homeLAN)
	ifc2 := mh2.Ifaces()[0]
	w.net.ComputeRoutes()
	mn2, err := mobileip.NewMobileNode(mh2, ifc2, mobileip.MobileNodeConfig{
		Home:             ifc2.Addr(),
		HomePrefix:       w.homeLAN.Prefix,
		HomeAgent:        w.haHost.FirstAddr(),
		AnnouncePresence: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cancel, err := w.chNearC.ListenForVisitors(60)
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	coa := w.visitLAN.NextAddr()
	mn2.MoveTo(w.visitLAN.Seg, coa, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(3e9)

	b, ok := w.chNearC.Policy().Binding(mn2.Home())
	if !ok || b.CareOf != coa {
		t.Fatalf("binding not learned automatically: %v %v", b, ok)
	}
	if got := w.chNearC.Policy().ModeFor(mn2.Home(), false); got != core.InDH {
		t.Errorf("mode = %s, want In-DH", got)
	}
}
