package mobileip

import (
	"fmt"

	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// ForeignAgentConfig tunes a foreign agent.
type ForeignAgentConfig struct {
	// Codec must match the home agents' tunnel encapsulation (default
	// IPIP).
	Codec encap.Codec
	// VisitorLifetime bounds how long a visitor entry survives without
	// re-registration, in seconds (default 300).
	VisitorLifetime uint16
}

// ForeignAgentStats counts agent activity.
type ForeignAgentStats struct {
	Relayed     uint64 // registration requests relayed to home agents
	Replies     uint64 // registration replies relayed back
	Delivered   uint64 // decapsulated packets delivered to visitors
	BadRequests uint64
	AuthReplays uint64 // authenticated requests suppressed at the relay: duplicate ID
	AuthStale   uint64 // authenticated requests suppressed at the relay: ID behind the window
	Crashes     uint64
	Restarts    uint64
}

// ForeignAgent implements the IETF-style agent the paper contrasts its
// self-sufficient design with (Section 2): visiting mobile hosts keep
// their home address, register through the agent, and receive their
// tunneled packets via the agent, which "decapsulates them and delivers
// the enclosed packet to the mobile host" over the final link-layer hop
// (the In-DH delivery technique, Section 5).
//
// The paper's critique — agents restrict the mobile host's options (no
// Out-DT, no choice of decapsulator) — is what BenchmarkForeignAgent
// quantifies.
type ForeignAgent struct {
	host  *stack.Host
	iface *stack.Iface
	cfg   ForeignAgentConfig
	sock  *stack.UDPSocket

	visitors map[ipv4.Addr]*visitor // keyed by home address

	// windows holds a best-effort identification window per visiting
	// home address, applied only to authenticated requests the agent
	// relays. The agent holds no keys, so this is duplicate suppression,
	// not authentication — see DESIGN.md §11 for what it does and does
	// not defend. Soft state: lost on Crash, like the visitor table.
	windows map[ipv4.Addr]*replayWindow

	// crashed marks the agent as dead (visitor table lost, handlers
	// inert) until Restart.
	crashed bool

	Stats ForeignAgentStats

	reg *metrics.Registry
}

type visitor struct {
	homeAgent ipv4.Addr
	port      uint16 // visitor's registration source port, for the reply
	expiry    *vtime.Timer
}

// NewForeignAgent starts a foreign agent on host serving the segment of
// iface.
func NewForeignAgent(host *stack.Host, iface *stack.Iface, cfg ForeignAgentConfig) (*ForeignAgent, error) {
	if cfg.Codec == nil {
		cfg.Codec = encap.IPIP{}
	}
	if cfg.VisitorLifetime == 0 {
		cfg.VisitorLifetime = 300
	}
	// Count decapsulations for visitors under the "fa" role.
	cfg.Codec = encap.Instrument(cfg.Codec, host.Sim().Metrics, "fa")
	fa := &ForeignAgent{
		host:     host,
		iface:    iface,
		cfg:      cfg,
		visitors: make(map[ipv4.Addr]*visitor),
		windows:  make(map[ipv4.Addr]*replayWindow),
		reg:      host.Sim().Metrics,
	}
	// A foreign agent routes on behalf of its visitors: their outgoing
	// packets use it as the default gateway, so the host must forward.
	host.Forwarding = true
	sock, err := host.OpenUDP(ipv4.Zero, udp.PortRegistration, fa.handleRegistration)
	if err != nil {
		return nil, fmt.Errorf("mobileip: foreign agent: %w", err)
	}
	fa.sock = sock
	host.Handle(cfg.Codec.Proto(), fa.handleTunneled)
	return fa, nil
}

// Addr returns the agent's address — the care-of address its visitors
// share.
func (fa *ForeignAgent) Addr() ipv4.Addr { return fa.iface.Addr() }

// Visitors returns the number of registered visitors.
func (fa *ForeignAgent) Visitors() int { return len(fa.visitors) }

// Crash models the agent dying mid-service: the visitor table (and its
// expiry timers) is lost and both the registration relay and the tunnel
// endpoint go dark until Restart. Visitors discover this the hard way —
// relayed registrations stop being answered — and must give up and
// re-attach elsewhere (or re-register once the agent returns).
func (fa *ForeignAgent) Crash() {
	if fa.crashed {
		return
	}
	fa.crashed = true
	fa.Stats.Crashes++
	//mob4x4vet:allow mapiter Stop removes by handle and pop order is (time,seq); stop order cannot leak
	for _, v := range fa.visitors {
		if v.expiry != nil {
			v.expiry.Stop()
		}
	}
	fa.visitors = make(map[ipv4.Addr]*visitor)
	fa.windows = make(map[ipv4.Addr]*replayWindow)
	fa.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventNote, Time: fa.host.Sim().Now(), Where: fa.host.Name(),
		Detail: "foreign agent crashed: visitor table lost",
	})
}

// Restart brings a crashed agent back with an empty visitor table.
func (fa *ForeignAgent) Restart() {
	if !fa.crashed {
		return
	}
	fa.crashed = false
	fa.Stats.Restarts++
	fa.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventNote, Time: fa.host.Sim().Now(), Where: fa.host.Name(),
		Detail: "foreign agent restarted",
	})
}

// Crashed reports whether the agent is currently down.
func (fa *ForeignAgent) Crashed() bool { return fa.crashed }

// handleRegistration relays visitor registrations to their home agents
// and home-agent replies back to the visitors.
func (fa *ForeignAgent) handleRegistration(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
	if fa.crashed {
		return
	}
	if len(payload) < 1 {
		fa.Stats.BadRequests++
		return
	}
	switch payload[0] {
	case TypeRegistrationRequest:
		m, _, hasAuth, ok := ParseRequest(payload)
		if !ok {
			fa.Stats.BadRequests++
			return
		}
		if hasAuth {
			// An authenticated request must be relayed byte-for-byte:
			// rewriting the care-of address would break a MAC the agent
			// cannot recompute (the key lives at the MN and HA only).
			// The visitor already set CareOf to our address and the
			// via-FA flag before signing; anything else is malformed.
			if m.CareOf != fa.Addr() || m.Flags&FlagViaForeignAgent == 0 {
				fa.Stats.BadRequests++
				return
			}
			// Best-effort duplicate suppression at the relay, keyed on
			// the identification alone (unverifiable without the key):
			// exact replays and far-stale IDs die one hop early instead
			// of burdening the home uplink.
			w := fa.windows[m.Home]
			if w == nil {
				w = &replayWindow{}
				fa.windows[m.Home] = w
			}
			switch w.check(m.ID) {
			case replayDuplicate:
				fa.Stats.AuthReplays++
				fa.reg.Drop(metrics.DropAuthReplay)
				return
			case replayStale:
				fa.Stats.AuthStale++
				fa.reg.Drop(metrics.DropAuthStaleID)
				return
			}
		} else {
			// Legacy visitor: substitute our address as the care-of
			// address and relay to the home agent.
			m.CareOf = fa.Addr()
			m.Flags |= FlagViaForeignAgent
		}
		v := fa.visitors[m.Home]
		if v == nil {
			v = &visitor{}
			fa.visitors[m.Home] = v
		} else if v.expiry != nil {
			v.expiry.Stop()
		}
		v.homeAgent = m.HomeAgent
		v.port = srcPort
		home := m.Home
		v.expiry = fa.host.Sched().After(vtime.Duration(fa.cfg.VisitorLifetime)*1e9, func() {
			delete(fa.visitors, home)
		})
		if m.IsDeregistration() {
			v.expiry.Stop()
			delete(fa.visitors, home)
		}
		fa.Stats.Relayed++
		if hasAuth {
			// SendToFrom copies the payload synchronously, so relaying
			// the received bytes directly is safe.
			_ = fa.sock.SendToFrom(fa.Addr(), m.HomeAgent, udp.PortRegistration, payload)
			return
		}
		// Relay from a pooled buffer; SendToFrom copies synchronously.
		buf := netsim.GetBuf()
		_ = fa.sock.SendToFrom(fa.Addr(), m.HomeAgent, udp.PortRegistration, m.AppendMarshal(buf.B))
		netsim.PutBuf(buf)
	case TypeRegistrationReply:
		m, _, _, ok := ParseReply(payload)
		if !ok {
			fa.Stats.BadRequests++
			return
		}
		// From a home agent: forward to the visitor over the local
		// link. The visitor's home address is not routable here, so the
		// delivery is link-direct (ARP resolves the visitor's answer
		// for its own home address on this segment).
		v, known := fa.visitors[m.Home]
		if !known {
			// Reply for a visitor we never saw; ignore.
			fa.Stats.BadRequests++
			return
		}
		fa.Stats.Replies++
		d := udp.Datagram{SrcPort: udp.PortRegistration, DstPort: v.port, Payload: payload}
		buf := netsim.GetBuf()
		b, err := d.AppendMarshal(fa.Addr(), m.Home, buf.B)
		if err != nil {
			netsim.PutBuf(buf)
			return
		}
		_ = fa.host.SendIPLinkDirect(fa.iface, m.Home, ipv4.Packet{
			Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: fa.Addr(), Dst: m.Home},
			Payload: b,
		})
		netsim.PutBuf(buf)
	default:
		fa.Stats.BadRequests++
	}
}

// handleTunneled decapsulates packets tunneled to the agent and delivers
// the inner packet to the visiting mobile host in a single link-layer
// hop.
func (fa *ForeignAgent) handleTunneled(ifc *stack.Iface, outer ipv4.Packet) {
	if fa.crashed {
		return
	}
	inner, err := fa.cfg.Codec.Decapsulate(outer)
	if err != nil {
		return
	}
	if _, known := fa.visitors[inner.Dst]; !known {
		return // not one of our visitors
	}
	fa.Stats.Delivered++
	var detail string
	if fa.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("FA delivers inner %s > %s on-link", inner.Src, inner.Dst)
	}
	fa.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventDecap, Time: fa.host.Sim().Now(), Where: fa.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = fa.host.SendIPLinkDirect(fa.iface, inner.Dst, inner)
}
