package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

// TestRenewalRetransmitsThroughOutage: a backbone outage swallows the
// renewal and its first retransmissions; exponential backoff must carry
// the exchange across the healed window and keep the binding alive.
func TestRenewalRetransmitsThroughOutage(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t) // t ~= 2s; renewal due ~96s after the accepted registration

	uplink := w.net.Sim.SegmentByName("p2p-visitGW-bb2")
	if uplink == nil {
		t.Fatal("visited-domain uplink segment not found")
	}
	w.net.RunFor(92e9) // t ~= 94s, just before the renewal
	uplink.SetDown(true)
	w.net.RunFor(7e9) // renewal (~96s) and early retries (~97s, ~99s) vanish
	uplink.SetDown(false)
	w.net.RunFor(19e9) // backed-off retry (~103s + jitter) gets through

	if !w.mn.Registered() {
		t.Fatal("renewal never recovered after the outage healed")
	}
	if w.ha.Bindings() != 1 {
		t.Errorf("bindings = %d, want 1", w.ha.Bindings())
	}
	if w.ha.Stats.Expiries != 0 {
		t.Errorf("binding expired (%d) despite successful recovery", w.ha.Stats.Expiries)
	}
	if w.mn.Stats.Renewals < 1 {
		t.Errorf("renewals = %d, want >= 1", w.mn.Stats.Renewals)
	}
	if uplink.DroppedDown == 0 {
		t.Error("outage window dropped nothing; test exercised no retransmission")
	}
}

// TestHACrashRelearnsBindingsFromRenewal: a home agent crash loses all
// soft state; after restart, the next renewal from the mobile node must
// rebuild the binding without any operator intervention (the graceful
// restart path).
func TestHACrashRelearnsBindingsFromRenewal(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)

	w.ha.Crash()
	if !w.ha.Crashed() || w.ha.Bindings() != 0 {
		t.Fatalf("crash left state: crashed=%v bindings=%d", w.ha.Crashed(), w.ha.Bindings())
	}

	// While crashed, the agent neither captures nor tunnels: a ping to
	// the home address just dies on the home LAN.
	ic := icmphost.Install(w.chFar)
	var replies int
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 3, 1, nil)
	w.net.RunFor(3e9)
	if replies != 0 {
		t.Error("crashed home agent still forwarded traffic")
	}
	if w.ha.Stats.Forwarded != 0 {
		t.Errorf("forwarded = %d while crashed", w.ha.Stats.Forwarded)
	}

	w.ha.Restart()
	// The node believes it is registered; nothing happens until its
	// renewal (~96s after the original acceptance) re-teaches the agent.
	w.net.RunFor(110e9)
	if w.ha.Bindings() != 1 {
		t.Fatalf("bindings = %d after restart + renewal, want 1 (re-learned)", w.ha.Bindings())
	}
	if !w.mn.Registered() {
		t.Error("mobile node lost its registration across the agent restart")
	}
	if w.ha.Stats.Crashes != 1 || w.ha.Stats.Restarts != 1 {
		t.Errorf("crashes/restarts = %d/%d, want 1/1", w.ha.Stats.Crashes, w.ha.Stats.Restarts)
	}

	// Delivery works end-to-end again.
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 3, 2, nil)
	w.net.RunFor(3e9)
	if replies != 1 {
		t.Errorf("replies = %d after recovery, want 1", replies)
	}
}

// TestRegistrationGiveUpThenRecoveryProbe: with the home agent dead, a
// bounded exchange must give up (surfacing OnRegistrationLost) and then
// keep probing at RegProbeInterval until the agent returns.
func TestRegistrationGiveUpThenRecoveryProbe(t *testing.T) {
	w := buildWorld(t, worldOpts{regMaxRetries: 2, regProbeInterval: 5e9})
	w.ha.Crash()

	lost := 0
	w.mn.OnRegistrationLost = func() { lost++ }
	w.mn.MoveTo(w.visitLAN.Seg, w.visitLAN.NextAddr(), w.visitLAN.Prefix, w.visitLAN.Gateway)
	// Attempts at ~0s and ~1s, give-up at ~3s (second retry timer).
	w.net.RunFor(4e9)

	if lost != 1 {
		t.Fatalf("OnRegistrationLost fired %d times, want 1", lost)
	}
	if w.mn.Registered() {
		t.Error("node claims registered with a dead agent")
	}
	if w.mn.Stats.RegistrationFails == 0 {
		t.Error("give-up not recorded in RegistrationFails")
	}

	w.ha.Restart()
	w.net.RunFor(7e9) // probe at ~8s finds the restarted agent

	if !w.mn.Registered() {
		t.Fatal("recovery probe never re-registered after the agent returned")
	}
	if w.mn.Stats.RecoveryProbes < 1 {
		t.Errorf("recovery probes = %d, want >= 1", w.mn.Stats.RecoveryProbes)
	}
	if w.ha.Bindings() != 1 {
		t.Errorf("bindings = %d, want 1", w.ha.Bindings())
	}
}

// TestFACrashLosesVisitorsUntilReregistration: a foreign agent crash
// erases the visitor table; tunneled delivery stays dark until the
// mobile node re-registers through the restarted agent.
func TestFACrashLosesVisitorsUntilReregistration(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	faHost := w.net.AddHost("fa", w.visitLAN)
	w.net.ComputeRoutes()
	fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	w.mn.MoveToForeignAgent(w.visitLAN.Seg, fa.Addr())
	w.net.RunFor(2e9)
	if !w.mn.Registered() || fa.Visitors() != 1 {
		t.Fatalf("FA attach failed: registered=%v visitors=%d", w.mn.Registered(), fa.Visitors())
	}

	fa.Crash()
	if fa.Visitors() != 0 {
		t.Fatalf("visitors = %d after crash, want 0", fa.Visitors())
	}

	// The HA still tunnels to the FA's address, but the dead agent
	// delivers nothing.
	ic := icmphost.Install(w.chFar)
	var replies int
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { replies++ }
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 4, 1, nil)
	w.net.RunFor(3e9)
	if replies != 0 {
		t.Error("crashed foreign agent still delivered to its visitor")
	}

	fa.Restart()
	w.mn.Reregister()
	w.net.RunFor(3e9)
	if fa.Visitors() != 1 {
		t.Fatalf("visitors = %d after re-registration, want 1", fa.Visitors())
	}
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 4, 2, nil)
	w.net.RunFor(3e9)
	if replies != 1 {
		t.Errorf("replies = %d after recovery, want 1", replies)
	}
	if fa.Stats.Crashes != 1 || fa.Stats.Restarts != 1 {
		t.Errorf("crashes/restarts = %d/%d, want 1/1", fa.Stats.Crashes, fa.Stats.Restarts)
	}
}

// TestUnboundUDPElectsTemporaryAddress: an unbound socket sending to a
// heuristic port (DNS) must resolve its source through the policy table
// with the transport context attached, electing Out-DT. Regression for a
// gap where source resolution ran before the port was known, pinning the
// home address and making the temporary path unreachable for unbound
// sockets.
func TestUnboundUDPElectsTemporaryAddress(t *testing.T) {
	w := buildWorld(t, worldOpts{selector: core.NewSelector(core.StartOptimistic)})
	w.roam(t)

	sock, err := w.mhHost.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sock.Close()

	beforeDT := w.mn.Stats.OutByMode[core.OutDT]
	if err := sock.SendTo(w.chFar.FirstAddr(), 53, []byte("query")); err != nil {
		t.Fatal(err)
	}
	w.net.RunFor(1e9)
	if got := w.mn.Stats.OutByMode[core.OutDT]; got <= beforeDT {
		t.Errorf("Out-DT count %d -> %d; unbound DNS send never used the temporary address", beforeDT, got)
	}

	// A non-heuristic port from the same unbound socket stays on the
	// home-address modes.
	beforeDT = w.mn.Stats.OutByMode[core.OutDT]
	beforeDH := w.mn.Stats.OutByMode[core.OutDH]
	if err := sock.SendTo(w.chFar.FirstAddr(), 9999, []byte("bulk")); err != nil {
		t.Fatal(err)
	}
	w.net.RunFor(1e9)
	if got := w.mn.Stats.OutByMode[core.OutDT]; got != beforeDT {
		t.Errorf("Out-DT count moved %d -> %d for a non-heuristic port", beforeDT, got)
	}
	if got := w.mn.Stats.OutByMode[core.OutDH]; got <= beforeDH {
		t.Errorf("Out-DH count %d -> %d; long-lived send should use the home address", beforeDH, got)
	}
}

// TestInterfaceBounceReregisters: the radio drops and returns; Reregister
// on the way back up restores the binding promptly.
func TestInterfaceBounceReregisters(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	w.roam(t)

	seg := w.mn.Iface().NIC().Segment()
	w.mn.Iface().Detach()
	w.net.RunFor(1e9)
	w.mn.Iface().Attach(seg)
	w.mn.Reregister()
	w.net.RunFor(2e9)

	if !w.mn.Registered() {
		t.Fatal("node not registered after interface bounce + Reregister")
	}
	if w.ha.Bindings() != 1 {
		t.Errorf("bindings = %d, want 1", w.ha.Bindings())
	}
}
