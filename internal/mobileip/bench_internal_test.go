package mobileip

import (
	"testing"

	"mob4x4/internal/inet"
	"mob4x4/internal/netsim"
)

// benchAgent builds a home agent with n bindings installed directly
// through the registration path (no simulated transit), the shape a
// fleet-scale storm leaves the table in.
func benchAgent(tb testing.TB, n int) (*HomeAgent, *inet.LAN) {
	tb.Helper()
	net := inet.New(1)
	net.Sim.Trace.Discard()
	home := net.AddLAN("home", "36.1.0.0/16", netsim.SegmentOpts{Latency: 1e6})
	haHost := net.AddHost("ha", home)
	ha, err := NewHomeAgent(haHost, haHost.Ifaces()[0], HomeAgentConfig{})
	if err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < n; i++ {
		req := Request{
			Lifetime:  3600,
			Home:      home.Prefix.Host(1000 + i),
			HomeAgent: ha.Addr(),
			CareOf:    home.Prefix.Host(40000 + i),
			ID:        1,
		}
		ha.register(&req)
	}
	if ha.Bindings() != n {
		tb.Fatalf("installed %d bindings, want %d", ha.Bindings(), n)
	}
	return ha, home
}

// BenchmarkHABindingLookup measures CareOf against a fleet-sized binding
// table: the per-forwarded-packet lookup every In-IE delivery pays.
func BenchmarkHABindingLookup(b *testing.B) {
	const n = 10_000
	ha, home := benchAgent(b, n)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := home.Prefix.Host(1000 + i%n)
		if _, ok := ha.CareOf(addr); !ok {
			b.Fatalf("binding for %s missing", addr)
		}
	}
}

// BenchmarkHARegisterRenewal measures the steady-state renewal path —
// getOrCreate hit, generation bump, wheel re-schedule — against a full
// table. This is the per-handoff processing cost the fleet storm pays N
// times per mass move; the allocation pin lives in
// TestRenewalProcessingAllocs.
func BenchmarkHARegisterRenewal(b *testing.B) {
	const n = 10_000
	ha, home := benchAgent(b, n)
	req := Request{
		Lifetime:  3600,
		Home:      home.Prefix.Host(1000),
		HomeAgent: ha.Addr(),
		CareOf:    home.Prefix.Host(40000),
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		req.ID = uint64(i + 2)
		ha.register(&req)
	}
}

// TestRenewalProcessingAllocs pins the steady-state re-registration path
// near zero allocations per renewal. The binding struct, its noticed
// map, and the wheel's slot buckets are all reused across generations;
// the only allocation left is the amortized growth of the slot bucket
// the renewals append into (lazy deletion keeps superseded entries until
// the slot fires), so the average over many renewals must stay a small
// fraction of an object per op — not the several objects a timer-per-
// renewal design costs.
func TestRenewalProcessingAllocs(t *testing.T) {
	ha, home := benchAgent(t, 1000)
	req := Request{
		Lifetime:  3600,
		Home:      home.Prefix.Host(1000),
		HomeAgent: ha.Addr(),
		CareOf:    home.Prefix.Host(40000),
	}
	id := uint64(1)
	renew := func() {
		id++
		req.ID = id
		ha.register(&req)
	}
	renew() // create once; everything after is the renewal path
	avg := testing.AllocsPerRun(1000, renew)
	if avg > 0.1 {
		t.Errorf("steady-state renewal allocates %.3f objects/op, want <= 0.1", avg)
	}
}
