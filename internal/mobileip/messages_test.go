package mobileip

import (
	"testing"
	"testing/quick"

	"mob4x4/internal/ipv4"
)

func TestRequestRoundTrip(t *testing.T) {
	req := Request{
		Flags:     FlagReverseTunnel,
		Lifetime:  300,
		Home:      ipv4.MustParseAddr("36.1.1.3"),
		HomeAgent: ipv4.MustParseAddr("36.1.1.2"),
		CareOf:    ipv4.MustParseAddr("128.9.1.4"),
		ID:        0xdeadbeefcafe,
	}
	msg, err := ParseMessage(req.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Request)
	if !ok {
		t.Fatalf("parsed %T", msg)
	}
	if *got != req {
		t.Errorf("round trip: %+v vs %+v", *got, req)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	rep := Reply{
		Code:      CodeAccepted,
		Lifetime:  120,
		Home:      ipv4.MustParseAddr("36.1.1.3"),
		HomeAgent: ipv4.MustParseAddr("36.1.1.2"),
		ID:        42,
	}
	msg, err := ParseMessage(rep.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	got, ok := msg.(*Reply)
	if !ok {
		t.Fatalf("parsed %T", msg)
	}
	if *got != rep {
		t.Errorf("round trip: %+v vs %+v", *got, rep)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseMessage(nil); err == nil {
		t.Error("empty accepted")
	}
	if _, err := ParseMessage([]byte{TypeRegistrationRequest, 0, 0}); err == nil {
		t.Error("truncated request accepted")
	}
	if _, err := ParseMessage([]byte{TypeRegistrationReply, 0, 0}); err == nil {
		t.Error("truncated reply accepted")
	}
	if _, err := ParseMessage([]byte{99, 0, 0, 0}); err == nil {
		t.Error("unknown type accepted")
	}
}

// TestUnmarshalRejectsTrailingBytes is the regression test for the old
// `len(b) < requestLen` minimum, which silently accepted trailing
// garbage — bytes on the wire no authenticator covers. The strict
// contract: exactly the base message, or exactly base plus a well-formed
// authentication extension; anything else is rejected whole.
func TestUnmarshalRejectsTrailingBytes(t *testing.T) {
	req := Request{Lifetime: 300, Home: ipv4.MustParseAddr("36.1.1.3"), ID: 9}
	rb := req.Marshal()
	var r2 Request
	if r2.Unmarshal(append(rb, 0)) {
		t.Error("request Unmarshal accepted one trailing byte")
	}
	if _, _, _, ok := ParseRequest(append(rb, 0)); ok {
		t.Error("ParseRequest accepted one trailing byte")
	}
	if _, err := ParseMessage(append(rb, 0)); err == nil {
		t.Error("ParseMessage accepted a request with a trailing byte")
	}
	// Padding out to exactly base+extension length is not enough: the
	// trailing bytes must be a well-formed extension.
	padded := append(rb, make([]byte, authExtLen)...)
	if _, _, _, ok := ParseRequest(padded); ok {
		t.Error("ParseRequest accepted zero padding as an extension")
	}

	rep := Reply{Code: CodeAccepted, Lifetime: 300, Home: req.Home, ID: 9}
	pb := rep.Marshal()
	var p2 Reply
	if p2.Unmarshal(append(pb, 0)) {
		t.Error("reply Unmarshal accepted one trailing byte")
	}
	if _, _, _, ok := ParseReply(append(pb, 0)); ok {
		t.Error("ParseReply accepted one trailing byte")
	}

	// The valid signed forms still parse, with hasAuth set.
	auth := NewAuthenticator(1, []byte("k"))
	if _, _, hasAuth, ok := ParseRequest(auth.AppendAuth(req.Marshal())); !ok || !hasAuth {
		t.Errorf("signed request: hasAuth=%v ok=%v, want true/true", hasAuth, ok)
	}
	if _, _, hasAuth, ok := ParseReply(auth.AppendAuth(rep.Marshal())); !ok || !hasAuth {
		t.Errorf("signed reply: hasAuth=%v ok=%v, want true/true", hasAuth, ok)
	}
}

func TestIsDeregistration(t *testing.T) {
	r := Request{Lifetime: 0}
	if !r.IsDeregistration() {
		t.Error("lifetime 0 should be deregistration")
	}
	r.Lifetime = 1
	if r.IsDeregistration() {
		t.Error("lifetime 1 is not deregistration")
	}
}

func TestRequestRoundTripProperty(t *testing.T) {
	f := func(flags uint8, lifetime uint16, home, ha, coa uint32, id uint64) bool {
		req := Request{
			Flags: flags, Lifetime: lifetime,
			Home:      ipv4.AddrFromUint32(home),
			HomeAgent: ipv4.AddrFromUint32(ha),
			CareOf:    ipv4.AddrFromUint32(coa),
			ID:        id,
		}
		msg, err := ParseMessage(req.Marshal())
		if err != nil {
			return false
		}
		got, ok := msg.(*Request)
		return ok && *got == req
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
