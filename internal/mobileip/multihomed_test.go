package mobileip_test

import (
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
)

// TestMultihomedInterfaceBindingIsOutDT exercises §7.1.1's "any of the
// machine's physical interface(s)": a mobile host with a second
// (wireless-like) interface on another visited segment sends Out-DT
// through it when a socket is bound to that interface's address, even
// though the primary mobility interface is registered elsewhere.
func TestMultihomedInterfaceBindingIsOutDT(t *testing.T) {
	sel := core.NewSelector(core.StartPessimistic) // would tunnel by default
	w := buildWorld(t, worldOpts{selector: sel})
	w.roam(t)

	// Second interface: attach to the far LAN (as if a second radio).
	wirelessAddr := w.farLAN.NextAddr()
	w2 := w.mhHost.AddIface("wlan0", w.farLAN.Seg, wirelessAddr, w.farLAN.Prefix)
	_ = w2

	var got []ipv4.Addr
	if _, err := w.chFar.OpenUDP(ipv4.Zero, 9999, func(src ipv4.Addr, sp uint16, dst ipv4.Addr, p []byte) {
		got = append(got, src)
	}); err != nil {
		t.Fatal(err)
	}

	// A socket bound to the wireless address: Out-DT through wlan0,
	// single LAN hop to chFar, no tunnel.
	sock, err := w.mhHost.OpenUDP(wirelessAddr, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	encapBefore := w.net.Sim.Trace.Count(netsim.EventEncap)
	if err := sock.SendTo(w.chFar.FirstAddr(), 9999, []byte("direct")); err != nil {
		t.Fatal(err)
	}
	w.net.RunFor(2e9)

	if len(got) != 1 || got[0] != wirelessAddr {
		t.Fatalf("delivery = %v, want from %s", got, wirelessAddr)
	}
	if w.net.Sim.Trace.Count(netsim.EventEncap) != encapBefore {
		t.Error("bound-interface traffic was tunneled")
	}
	if w.mn.Stats.OutByMode[core.OutDT] == 0 {
		t.Error("Out-DT not recorded for interface-bound traffic")
	}

	// The same destination via an unbound socket still tunnels
	// (pessimistic selector -> Out-IE).
	sock2, err := w.mhHost.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := sock2.SendTo(w.chFar.FirstAddr(), 9999, []byte("tunneled")); err != nil {
		t.Fatal(err)
	}
	w.net.RunFor(2e9)
	if w.net.Sim.Trace.Count(netsim.EventEncap) == encapBefore {
		t.Error("unbound traffic was not tunneled under the pessimistic selector")
	}
}
