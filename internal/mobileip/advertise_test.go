package mobileip_test

import (
	"testing"

	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

func TestAdvertisementRoundTrip(t *testing.T) {
	adv := mobileip.Advertisement{
		Agent:    ipv4.MustParseAddr("128.9.1.9"),
		Flags:    mobileip.AdvFlagFA,
		Lifetime: 300,
		Sequence: 7,
	}
	got, err := mobileip.ParseAdvertisement(adv.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got != adv {
		t.Errorf("round trip: %+v vs %+v", got, adv)
	}
	if _, err := mobileip.ParseAdvertisement([]byte{1, 2}); err == nil {
		t.Error("truncated accepted")
	}
	if _, err := mobileip.ParseAdvertisement(make([]byte, 10)); err == nil {
		t.Error("wrong type byte accepted")
	}
}

func TestAgentDiscoveryAutoRegisters(t *testing.T) {
	w := buildWorld(t, worldOpts{})

	// A foreign agent on the visited LAN, beaconing every second.
	faHost := w.net.AddHost("fa", w.visitLAN)
	w.net.ComputeRoutes()
	fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cancel := fa.Advertise(1e9)
	defer cancel()

	// The mobile node listens for agents, then wanders onto the visited
	// segment with no configuration at all: no care-of address, no
	// gateway, nothing.
	cancelListen, err := w.mn.ListenForAgents()
	if err != nil {
		t.Fatal(err)
	}
	defer cancelListen()
	w.mn.Detach()
	w.mhIfc.Attach(w.visitLAN.Seg)
	w.net.RunFor(10e9)

	if !w.mn.Registered() {
		t.Fatal("node did not auto-register via the advertised agent")
	}
	if !w.mn.ViaForeignAgent() || w.mn.CareOf() != fa.Addr() {
		t.Errorf("attachment: viaFA=%v careOf=%s", w.mn.ViaForeignAgent(), w.mn.CareOf())
	}
	if got, _ := w.ha.CareOf(w.mn.Home()); got != fa.Addr() {
		t.Errorf("HA binding = %s, want the agent's address", got)
	}

	// End-to-end check: a ping to the home address arrives through the
	// discovered agent.
	ic := icmphost.Install(w.chFar)
	delivered := false
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) { delivered = true }
	_ = ic.Ping(ipv4.Zero, w.mn.Home(), 1, 1, nil)
	w.net.RunFor(3e9)
	if !delivered {
		t.Error("ping via discovered agent failed")
	}
	if fa.Stats.Delivered == 0 {
		t.Error("agent relayed nothing")
	}
}

func TestReplayedRegistrationRejected(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	careOf := w.roam(t)

	// Capture-and-replay: an attacker resends the mobile host's old
	// registration with a hijacked care-of address but a stale ID.
	req := mobileip.Request{
		Lifetime:  300,
		Home:      w.mn.Home(),
		HomeAgent: w.haHost.FirstAddr(),
		CareOf:    w.chFar.FirstAddr(), // hijack attempt
		ID:        1,                   // the node's counter is already past this
	}
	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, req.Marshal())
	w.net.RunFor(3e9)

	if got, _ := w.ha.CareOf(w.mn.Home()); got != careOf {
		t.Errorf("binding hijacked: %s", got)
	}
	if w.ha.Stats.StaleRequests != 1 {
		t.Errorf("stale requests = %d", w.ha.Stats.StaleRequests)
	}
}
