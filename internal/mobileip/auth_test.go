package mobileip_test

import (
	"testing"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
)

// The mobility security association every auth-enabled world test
// shares: buildWorld provisions it at the HA and hands the matching
// authenticator to the mobile node.
const testSPI uint32 = 0x4d4e_0001

var testKey = []byte("mob4x4-test-key-0123456789abcdef")

func TestAuthenticatedRoamRegisters(t *testing.T) {
	w := buildWorld(t, worldOpts{auth: true})
	w.roam(t)
	if w.ha.Stats.AuthBadMAC+w.ha.Stats.AuthReplays+w.ha.Stats.AuthStale != 0 {
		t.Errorf("clean authenticated roam tripped auth rejects: %+v", w.ha.Stats)
	}
	// A second move is the renewal shape: new care-of, fresh ID, same key.
	careOf2 := w.visitLAN.NextAddr()
	w.mn.MoveTo(w.visitLAN.Seg, careOf2, w.visitLAN.Prefix, w.visitLAN.Gateway)
	w.net.RunFor(2e9)
	if got, ok := w.ha.CareOf(w.mn.Home()); !ok || got != careOf2 {
		t.Fatalf("re-registration under auth: binding = %v,%v; want %s", got, ok, careOf2)
	}
}

// TestUnsignedRegistrationDenied: once a key is provisioned for a home,
// a bare (legacy) registration for it must be refused — this is the
// binding-thief attack at unit scale.
func TestUnsignedRegistrationDenied(t *testing.T) {
	w := buildWorld(t, worldOpts{auth: true})
	careOf := w.roam(t)

	req := mobileip.Request{
		Lifetime:  300,
		Home:      w.mn.Home(),
		HomeAgent: w.haHost.FirstAddr(),
		CareOf:    w.chFar.FirstAddr(), // hijack attempt
		ID:        1 << 40,             // beats any vtime-derived ID
	}
	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, req.Marshal())
	w.net.RunFor(2e9)

	if got, _ := w.ha.CareOf(w.mn.Home()); got != careOf {
		t.Errorf("binding hijacked by unsigned request: %s", got)
	}
	if w.ha.Stats.AuthBadMAC != 1 {
		t.Errorf("AuthBadMAC = %d, want 1", w.ha.Stats.AuthBadMAC)
	}
}

// TestWrongKeyAndWrongSPIDenied: a signature under the wrong key, or the
// right key under the wrong SPI, is exactly as dead as no signature.
func TestWrongKeyAndWrongSPIDenied(t *testing.T) {
	w := buildWorld(t, worldOpts{auth: true})
	careOf := w.roam(t)

	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := mobileip.Request{
		Lifetime:  300,
		Home:      w.mn.Home(),
		HomeAgent: w.haHost.FirstAddr(),
		CareOf:    w.chFar.FirstAddr(),
		ID:        1 << 40,
	}
	wrongKey := mobileip.NewAuthenticator(testSPI, []byte("not-the-provisioned-key-at-all!!"))
	wrongSPI := mobileip.NewAuthenticator(testSPI+1, testKey)
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, wrongKey.AppendAuth(req.Marshal()))
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, wrongSPI.AppendAuth(req.Marshal()))
	w.net.RunFor(2e9)

	if got, _ := w.ha.CareOf(w.mn.Home()); got != careOf {
		t.Errorf("binding hijacked by mis-keyed request: %s", got)
	}
	if w.ha.Stats.AuthBadMAC != 2 {
		t.Errorf("AuthBadMAC = %d, want 2", w.ha.Stats.AuthBadMAC)
	}
}

// TestAuthReplayAndStaleDenied drives the HA's sliding window directly:
// a phantom home (provisioned key, no mobile node) registers once, then
// sees the same bytes again (replay) and an identification 100 behind
// (stale). Each rejection lands on its own counter.
func TestAuthReplayAndStaleDenied(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	phantom := w.homeLAN.Prefix.Host(77)
	w.ha.ProvisionKey(phantom, testSPI, testKey)
	auth := mobileip.NewAuthenticator(testSPI, testKey)

	sock, err := w.chFar.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := mobileip.Request{
		Lifetime:  300,
		Home:      phantom,
		HomeAgent: w.haHost.FirstAddr(),
		CareOf:    w.chFar.FirstAddr(),
		ID:        1000,
	}
	signed := auth.AppendAuth(req.Marshal())
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, signed)
	w.net.RunFor(1e9)
	if got, ok := w.ha.CareOf(phantom); !ok || got != req.CareOf {
		t.Fatalf("signed registration refused: binding = %v,%v", got, ok)
	}

	// Exact replay: same bytes, window already holds ID 1000.
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, signed)
	// Stale: properly signed but 100 behind the window head.
	req.ID = 900
	_ = sock.SendTo(w.haHost.FirstAddr(), 434, auth.AppendAuth(req.Marshal()))
	w.net.RunFor(1e9)

	if w.ha.Stats.AuthReplays != 1 {
		t.Errorf("AuthReplays = %d, want 1", w.ha.Stats.AuthReplays)
	}
	if w.ha.Stats.AuthStale != 1 {
		t.Errorf("AuthStale = %d, want 1", w.ha.Stats.AuthStale)
	}
	if w.ha.Stats.AuthBadMAC != 0 {
		t.Errorf("AuthBadMAC = %d, want 0 (both rejects were well-signed)", w.ha.Stats.AuthBadMAC)
	}
}

// TestFARelayWindowSuppressesDuplicates: the foreign agent's best-effort
// identification window kills exact replays and far-stale IDs one hop
// early, without holding any key.
func TestFARelayWindowSuppressesDuplicates(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	faHost := w.net.AddHost("fa", w.visitLAN)
	w.net.ComputeRoutes()
	fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	phantom := w.homeLAN.Prefix.Host(78)
	w.ha.ProvisionKey(phantom, testSPI, testKey)
	auth := mobileip.NewAuthenticator(testSPI, testKey)

	sock, err := w.chNear.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := mobileip.Request{
		Flags:     mobileip.FlagViaForeignAgent,
		Lifetime:  300,
		Home:      phantom,
		HomeAgent: w.haHost.FirstAddr(),
		CareOf:    fa.Addr(), // authenticated via-FA requests name the agent before signing
		ID:        2000,
	}
	signed := auth.AppendAuth(req.Marshal())
	_ = sock.SendTo(fa.Addr(), 434, signed)
	w.net.RunFor(1e9)
	if got, ok := w.ha.CareOf(phantom); !ok || got != fa.Addr() {
		t.Fatalf("relayed signed registration refused: binding = %v,%v", got, ok)
	}

	_ = sock.SendTo(fa.Addr(), 434, signed) // exact replay at the relay
	req.ID = 1900                           // 100 behind: stale at the relay
	_ = sock.SendTo(fa.Addr(), 434, auth.AppendAuth(req.Marshal()))
	w.net.RunFor(1e9)

	if fa.Stats.AuthReplays != 1 || fa.Stats.AuthStale != 1 {
		t.Errorf("FA relay window: replays=%d stale=%d, want 1/1", fa.Stats.AuthReplays, fa.Stats.AuthStale)
	}
	// Suppressed one hop early: the home agent never saw either.
	if w.ha.Stats.AuthReplays != 0 || w.ha.Stats.AuthStale != 0 {
		t.Errorf("HA saw suppressed messages: replays=%d stale=%d", w.ha.Stats.AuthReplays, w.ha.Stats.AuthStale)
	}
	if fa.Stats.Relayed != 1 {
		t.Errorf("Relayed = %d, want 1", fa.Stats.Relayed)
	}
}

// TestFARefusesRewrittenAuthenticatedRequest: an authenticated request
// whose care-of is not the agent's own (i.e. one the agent would have to
// rewrite, breaking a MAC it cannot recompute) is refused at the relay.
func TestFARefusesRewrittenAuthenticatedRequest(t *testing.T) {
	w := buildWorld(t, worldOpts{})
	faHost := w.net.AddHost("fa", w.visitLAN)
	w.net.ComputeRoutes()
	fa, err := mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{})
	if err != nil {
		t.Fatal(err)
	}
	auth := mobileip.NewAuthenticator(testSPI, testKey)
	sock, err := w.chNear.OpenUDP(ipv4.Zero, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	req := mobileip.Request{
		Lifetime:  300, // no via-FA flag, care-of not the agent's
		Home:      w.homeLAN.Prefix.Host(79),
		HomeAgent: w.haHost.FirstAddr(),
		CareOf:    w.chNear.FirstAddr(),
		ID:        1,
	}
	_ = sock.SendTo(fa.Addr(), 434, auth.AppendAuth(req.Marshal()))
	w.net.RunFor(1e9)
	if fa.Stats.Relayed != 0 {
		t.Errorf("agent relayed an authenticated request it would have had to rewrite")
	}
	if fa.Stats.BadRequests != 1 {
		t.Errorf("BadRequests = %d, want 1", fa.Stats.BadRequests)
	}
}
