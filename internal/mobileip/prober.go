package mobileip

import (
	"sort"

	"mob4x4/internal/ipv4"
	"mob4x4/internal/vtime"
)

// AutoProber completes the pessimistic strategy of Section 7.1.2: "start
// with the most conservative (Out-IE), and then over the lifetime of the
// conversation tentatively try each of the more aggressive options
// (Out-DE and Out-DH), at each stage being prepared to return to the
// conservative method if the more aggressive method fails." It
// periodically asks the selector to probe one step up the ladder for
// every active correspondent; the transport feedback loop confirms or
// rolls back each probe.
type AutoProber struct {
	mn       *MobileNode
	interval vtime.Duration
	active   map[ipv4.Addr]bool
	timer    *vtime.Timer
	stopped  bool
	// RetryTemporary, when set, also re-enables the temporary-address
	// (Out-DT) path for every tracked correspondent on each tick, so a
	// port-heuristic conversation demoted by ingress filtering probes
	// for the filter's removal instead of staying demoted forever.
	RetryTemporary bool
	// Probes counts upgrade attempts started.
	Probes uint64
}

// NewAutoProber starts probing every interval for correspondents
// registered with Track. Stop it with Stop.
func NewAutoProber(mn *MobileNode, interval vtime.Duration) *AutoProber {
	p := &AutoProber{
		mn:       mn,
		interval: interval,
		active:   make(map[ipv4.Addr]bool),
	}
	p.arm()
	return p
}

// Track adds a correspondent to the probing set (call when a conversation
// starts). Untrack removes it (conversation over — no point probing).
func (p *AutoProber) Track(dst ipv4.Addr)   { p.active[dst] = true }
func (p *AutoProber) Untrack(dst ipv4.Addr) { delete(p.active, dst) }

// Stop halts probing and releases the pending tick, so a stopped prober
// leaves nothing in the scheduler.
func (p *AutoProber) Stop() {
	p.stopped = true
	if p.timer != nil {
		p.timer.Stop()
		p.timer = nil
	}
}

func (p *AutoProber) arm() {
	p.timer = p.mn.host.Sched().After(p.interval, p.tick)
}

func (p *AutoProber) tick() {
	if p.stopped {
		return
	}
	if !p.mn.AtHome() && len(p.active) > 0 {
		sel := p.mn.Selector()
		// Probe in address order: map iteration order must never reach
		// the selector, or runs stop being byte-reproducible.
		dsts := make([]ipv4.Addr, 0, len(p.active))
		for dst := range p.active {
			dsts = append(dsts, dst)
		}
		sort.Slice(dsts, func(i, j int) bool { return dsts[i].Less(dsts[j]) })
		for _, dst := range dsts {
			if ok, _ := sel.TryUpgrade(dst); ok {
				p.Probes++
			}
			if p.RetryTemporary && sel.RetryTemporary(dst) {
				p.Probes++
			}
		}
	}
	p.arm()
}
