package mobileip

import (
	"mob4x4/internal/ipv4"
	"mob4x4/internal/vtime"
)

// AutoProber completes the pessimistic strategy of Section 7.1.2: "start
// with the most conservative (Out-IE), and then over the lifetime of the
// conversation tentatively try each of the more aggressive options
// (Out-DE and Out-DH), at each stage being prepared to return to the
// conservative method if the more aggressive method fails." It
// periodically asks the selector to probe one step up the ladder for
// every active correspondent; the transport feedback loop confirms or
// rolls back each probe.
type AutoProber struct {
	mn       *MobileNode
	interval vtime.Duration
	active   map[ipv4.Addr]bool
	stopped  bool
	// Probes counts upgrade attempts started.
	Probes uint64
}

// NewAutoProber starts probing every interval for correspondents
// registered with Track. Stop it with Stop.
func NewAutoProber(mn *MobileNode, interval vtime.Duration) *AutoProber {
	p := &AutoProber{
		mn:       mn,
		interval: interval,
		active:   make(map[ipv4.Addr]bool),
	}
	p.arm()
	return p
}

// Track adds a correspondent to the probing set (call when a conversation
// starts). Untrack removes it (conversation over — no point probing).
func (p *AutoProber) Track(dst ipv4.Addr)   { p.active[dst] = true }
func (p *AutoProber) Untrack(dst ipv4.Addr) { delete(p.active, dst) }

// Stop halts probing.
func (p *AutoProber) Stop() { p.stopped = true }

func (p *AutoProber) arm() {
	p.mn.host.Sched().After(p.interval, func() {
		if p.stopped {
			return
		}
		if !p.mn.AtHome() {
			sel := p.mn.Selector()
			for dst := range p.active {
				if ok, _ := sel.TryUpgrade(dst); ok {
					p.Probes++
				}
			}
		}
		p.arm()
	})
}
