package mobileip

import (
	"fmt"

	"mob4x4/internal/core"
	"mob4x4/internal/encap"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// CorrespondentConfig configures a correspondent host's mobility
// awareness.
type CorrespondentConfig struct {
	// Codec selects tunnel encapsulation for In-DE (default IPIP).
	Codec encap.Codec
	// CanDecapsulate gives the host the "recent versions of Linux"
	// capability of Section 6.1: it accepts tunneled packets addressed
	// to itself (enabling the mobile host's Out-DE) without being
	// otherwise mobile-aware.
	CanDecapsulate bool
	// MobileAware enables the full Section 7.2 behavior: learn bindings
	// from ICMP notices (and DNS), encapsulate directly to care-of
	// addresses (In-DE), detect same-segment mobile hosts (In-DH).
	MobileAware bool
}

// CorrespondentStats counts correspondent-side mobility activity.
type CorrespondentStats struct {
	BindingsLearned uint64
	BindingsExpired uint64
	SentInDE        uint64
	SentInDH        uint64
	Decapsulated    uint64
}

// Correspondent wraps a host with the correspondent-side choices of
// Section 7.2. A conventional 1996 host is a Correspondent with both
// capability flags false (the wrapper then does nothing at all).
type Correspondent struct {
	host   *stack.Host
	cfg    CorrespondentConfig
	policy *core.CorrespondentPolicy
	expiry map[ipv4.Addr]*vtime.Timer

	// inDH and inDE are the two virtual-interface routes the policy
	// hands out, built once; their Output closures re-resolve the
	// binding for the packet's destination at call time (Output runs
	// synchronously from the route decision, so the binding cannot
	// change in between).
	inDH stack.Route
	inDE stack.Route

	// OnLearn, when non-nil, observes every accepted binding learn —
	// ICMP notice, DNS, or pushed binding update — after the policy is
	// updated. E17's recovery-latency monitor hangs here so both learn
	// paths feed one histogram.
	OnLearn func(b core.Binding)

	Stats CorrespondentStats

	// Metric instruments, resolved once at construction.
	mLearned *metrics.Counter
	mSentDE  *metrics.Counter
	mSentDH  *metrics.Counter
}

// NewCorrespondent installs correspondent-side mobility support on host.
// ic may be nil when the host has no ICMP endpoint; binding notices are
// then never learned.
func NewCorrespondent(host *stack.Host, ic *icmphost.ICMP, cfg CorrespondentConfig) *Correspondent {
	if cfg.Codec == nil {
		cfg.Codec = encap.IPIP{}
	}
	// Count tunnel work under the "ch" role alongside the registry's
	// global Encaps/Decaps totals.
	cfg.Codec = encap.Instrument(cfg.Codec, host.Sim().Metrics, "ch")
	reg := host.Sim().Metrics
	c := &Correspondent{
		host:     host,
		cfg:      cfg,
		policy:   core.NewCorrespondentPolicy(cfg.MobileAware),
		expiry:   make(map[ipv4.Addr]*vtime.Timer),
		mLearned: reg.Counter("ch/bindings_learned"),
		mSentDE:  reg.Counter("ch/sent_in_de"),
		mSentDH:  reg.Counter("ch/sent_in_dh"),
	}
	c.inDH = stack.Route{Name: "mip-ch-samelink", Output: c.sameLinkOutput}
	c.inDE = stack.Route{Name: "mip-ch-tunnel", Output: c.tunnelOutput}
	if cfg.CanDecapsulate || cfg.MobileAware {
		host.Handle(cfg.Codec.Proto(), c.handleTunneled)
	}
	if cfg.MobileAware {
		host.RouteOverride = c.routeOverride
		if ic != nil {
			ic.OnBinding = func(src ipv4.Addr, msg icmp.Message) {
				c.LearnBinding(core.Binding{Home: msg.Home, CareOf: msg.CareOf}, msg.Lifetime)
			}
		}
	}
	return c
}

// Host returns the wrapped host.
func (c *Correspondent) Host() *stack.Host { return c.host }

// Policy exposes the Section 7.2 decision state.
func (c *Correspondent) Policy() *core.CorrespondentPolicy { return c.policy }

// LearnBinding records a mobile host's location with a lifetime in
// seconds (from an ICMP binding notice, a DNS CA record, or test setup).
func (c *Correspondent) LearnBinding(b core.Binding, lifetimeSec uint16) {
	if !c.cfg.MobileAware {
		return
	}
	c.policy.LearnBinding(b)
	c.Stats.BindingsLearned++
	c.mLearned.Inc()
	// Same-segment detection: if the care-of address is on one of our
	// own links, In-DH beats In-DE.
	onLink := false
	for _, ifc := range c.host.Ifaces() {
		if ifc.Prefix().Bits > 0 && ifc.Prefix().Contains(b.CareOf) && ifc.NIC().Attached() {
			onLink = true
			break
		}
	}
	c.policy.NoteOnLink(b.Home, onLink)
	if c.OnLearn != nil {
		c.OnLearn(b)
	}
	if t := c.expiry[b.Home]; t != nil {
		t.Stop()
	}
	if lifetimeSec > 0 {
		home := b.Home
		c.expiry[home] = c.host.Sched().After(vtime.Duration(lifetimeSec)*1e9, func() {
			c.policy.ForgetBinding(home)
			c.policy.NoteOnLink(home, false)
			c.Stats.BindingsExpired++
		})
	}
	c.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventRegister, Time: c.host.Sim().Now(), Where: c.host.Name(),
		Detail: fmt.Sprintf("learned binding %s -> %s (on-link=%v)", b.Home, b.CareOf, onLink),
	})
}

// ForgetBinding drops what we know about a mobile host (delivery failure).
func (c *Correspondent) ForgetBinding(home ipv4.Addr) {
	if t := c.expiry[home]; t != nil {
		t.Stop()
		delete(c.expiry, home)
	}
	c.policy.ForgetBinding(home)
	c.policy.NoteOnLink(home, false)
}

// handleTunneled accepts packets tunneled directly to us by a mobile host
// (Out-DE) and re-injects the inner packet. The inner destination is one
// of our own addresses, so it is delivered locally. This is the
// "automatic decapsulation" capability whose spoofing risk Section 6.1
// flags — the simulation exposes exactly that property in its tests.
func (c *Correspondent) handleTunneled(ifc *stack.Iface, outer ipv4.Packet) {
	inner, err := c.cfg.Codec.Decapsulate(outer)
	if err != nil {
		return
	}
	c.Stats.Decapsulated++
	var detail string
	if c.host.Sim().Trace.Detailing() {
		detail = fmt.Sprintf("decap from %s: inner %s > %s", outer.Src, inner.Src, inner.Dst)
	}
	c.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventDecap, Time: c.host.Sim().Now(), Where: c.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = c.host.Resubmit(inner)
}

// routeOverride implements the smart correspondent's send path: if we
// know the destination is a mobile host, bypass the home agent (Figure 5).
func (c *Correspondent) routeOverride(pkt *ipv4.Packet) (stack.Route, bool) {
	mode := c.policy.ModeFor(pkt.Dst, false)
	switch mode {
	case core.InDH:
		// Same segment: plain packet to the home address, link-
		// delivered to the care-of MAC. "The only difference is in the
		// link-layer destination."
		if _, ok := c.policy.Binding(pkt.Dst); !ok {
			return stack.Route{}, false
		}
		c.Stats.SentInDH++
		c.mSentDH.Inc()
		return c.inDH, true
	case core.InDE:
		if _, ok := c.policy.Binding(pkt.Dst); !ok {
			return stack.Route{}, false
		}
		c.Stats.SentInDE++
		c.mSentDE.Inc()
		if pkt.Src.IsZero() {
			pkt.Src = c.host.SourceForDestinationPlain(pkt.Dst)
		}
		return c.inDE, true
	default:
		return stack.Route{}, false // In-IE: plain IP, the HA does the work
	}
}

// sameLinkOutput is the In-DH virtual interface: the packet keeps the
// mobile host's home address as its IP destination but is link-delivered
// to the care-of address on the shared segment.
func (c *Correspondent) sameLinkOutput(p ipv4.Packet) {
	b, ok := c.policy.Binding(p.Dst)
	if ok {
		for _, ifc := range c.host.Ifaces() {
			if ifc.Prefix().Bits > 0 && ifc.Prefix().Contains(b.CareOf) {
				_ = c.host.SendIPLinkDirect(ifc, b.CareOf, p)
				return
			}
		}
	}
	// Segment changed underneath us: fall back to plain IP.
	p2 := p
	p2.TraceID = 0
	_ = c.host.SendIP(p2)
}

// tunnelOutput is the In-DE virtual interface: encapsulate straight to
// the care-of address (Figure 5), bypassing the home agent. The tunnel
// payload is built in a pooled buffer; Resubmit copies it onward before
// returning, so the buffer is recycled immediately.
func (c *Correspondent) tunnelOutput(inner ipv4.Packet) {
	b, ok := c.policy.Binding(inner.Dst)
	if !ok {
		p2 := inner
		p2.TraceID = 0
		_ = c.host.SendIP(p2)
		return
	}
	if inner.TTL == 0 {
		inner.TTL = ipv4.DefaultTTL
	}
	careOf := b.CareOf
	buf := netsim.GetBuf()
	// The binding names the inner destination's home address, so a
	// home-aware codec (compact) can elide the inner destination from
	// the tunnel header entirely.
	outer, err := encap.AppendEncapHome(c.cfg.Codec, inner, inner.Src, careOf, b.Home, buf.B)
	if err != nil {
		netsim.PutBuf(buf)
		return
	}
	var detail string
	if c.host.Sim().Trace.Detailing() {
		detail = chTunnelDetail(inner.Src, careOf, inner.Dst)
	}
	c.host.Sim().Trace.Record(netsim.Event{
		Kind: netsim.EventEncap, Time: c.host.Sim().Now(), Where: c.host.Name(),
		PktID:  inner.TraceID,
		Detail: detail,
	})
	_ = c.host.Resubmit(outer)
	netsim.PutBuf(buf)
}
