package experiments

import "testing"

func TestAsymmetricPaths(t *testing.T) {
	r := RunAsymmetry(41)
	if !r.Delivered {
		t.Fatalf("echo failed:\n%s", r.String())
	}
	// The inbound direction crosses the slow access link twice (in and
	// out of the home domain); the outbound direction never touches it.
	if r.Ratio < 3 {
		t.Errorf("one-way asymmetry ratio = %.2f, want >= 3\n%s", r.Ratio, r.String())
	}
	if r.InboundBps == 0 || r.OutboundBps == 0 {
		t.Fatalf("bulk transfers incomplete:\n%s", r.String())
	}
	// Outbound bulk throughput must be dramatically higher than inbound
	// (the inbound stream is bottlenecked at 128 kbit/s = 16 kB/s).
	if r.OutboundBps < 2*r.InboundBps {
		t.Errorf("throughput asymmetry missing: in=%.0f out=%.0f", r.InboundBps, r.OutboundBps)
	}
	if r.InboundBps > 17_000 {
		t.Errorf("inbound %.0f B/s exceeds the 16kB/s bottleneck", r.InboundBps)
	}
}
