package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
)

// MulticastResult compares the two ways a roaming mobile host can receive
// a multicast stream (Section 6.4): joining through the real physical
// interface on the visited network, or having the home agent join on its
// behalf and tunnel every packet.
type MulticastResult struct {
	Mode           string // "local-join" or "home-relay"
	PacketsSent    int
	PacketsGot     int
	Tunneled       uint64 // packets that crossed the MH's tunnel
	RouterForwards uint64 // router work caused by the stream
}

// RunMulticast executes the §6.4 comparison. In local-join mode the
// stream source sits on the visited LAN; in home-relay mode it sits on
// the home LAN and the agent relays.
func RunMulticast(seed int64, localJoin bool, packets int) MulticastResult {
	res := MulticastResult{Mode: "home-relay", PacketsSent: packets}
	if localJoin {
		res.Mode = "local-join"
	}
	s := Build(Options{Seed: seed})
	s.Roam()

	group := ipv4.MustParseAddr("239.9.9.9")
	var got int
	s.MHHost.Handle(103, func(_ *stack.Iface, pkt ipv4.Packet) { got++ })

	var sender *stack.Host
	var sIfc *stack.Iface
	if localJoin {
		s.MN.JoinMulticastLocal(group)
		sender = stack.NewHost(s.Net.Sim, "mcast-src")
		sIfc = sender.AddIface("eth0", s.VisitA.Seg, s.VisitA.NextAddr(), s.VisitA.Prefix)
	} else {
		if err := s.HA.RelayGroup(group, s.MN.Home()); err != nil {
			assert.Unreachable("multicast: relay group on home agent: %v", err)
		}
		sender = stack.NewHost(s.Net.Sim, "mcast-src")
		sIfc = sender.AddIface("eth0", s.HomeLAN.Seg, s.HomeLAN.NextAddr(), s.HomeLAN.Prefix)
	}

	fwdBefore := s.Net.Sim.Trace.Count(netsim.EventForward)
	tunBefore := s.MN.Stats.InTunneled
	for i := 0; i < packets; i++ {
		_ = sender.SendMulticast(sIfc, ipv4.Packet{
			Header:  ipv4.Header{Protocol: 103, Src: sIfc.Addr(), Dst: group},
			Payload: make([]byte, 512),
		})
		s.Net.RunFor(100 * Millisecond)
	}
	s.Net.RunFor(2 * Second)

	res.PacketsGot = got
	res.Tunneled = s.MN.Stats.InTunneled - tunBefore
	res.RouterForwards = s.Net.Sim.Trace.Count(netsim.EventForward) - fwdBefore
	return res
}

// MulticastTable renders the comparison.
func MulticastTable(rows []MulticastResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 6.4 — multicast for a roaming host (stream of 512B datagrams)\n")
	fmt.Fprintf(&b, "  %-12s %8s %8s %10s %16s\n", "mode", "sent", "got", "tunneled", "router-forwards")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %8d %8d %10d %16d\n",
			r.Mode, r.PacketsSent, r.PacketsGot, r.Tunneled, r.RouterForwards)
	}
	return b.String()
}

// TraceResult is one traceroute rendering for the trace subcommand.
type TraceResult struct {
	Label string
	Hops  []icmphost.TracerouteHop
}

// RunTraceroutes runs a TTL sweep from the far correspondent to the
// mobile host's home address, before and after roaming — showing how the
// tunnel hides the second half of the journey from the prober.
func RunTraceroutes(seed int64) []TraceResult {
	mk := func(label string, roam bool) TraceResult {
		s := Build(Options{Seed: seed})
		for _, name := range []string{"homeGW", "visitGWA", "visitGWB", "farGW", "bb0", "bb1", "bb2"} {
			if r := s.Net.Router(name); r != nil {
				icmphost.EnableRouterErrors(r)
			}
		}
		if err := icmphost.RespondToProbes(s.MHHost); err != nil {
			assert.Unreachable("multicast: enable probe responder: %v", err)
		}
		if roam {
			s.Roam()
		}
		var hops []icmphost.TracerouteHop
		done := false
		icmphost.Traceroute(s.CHFar, s.CHFarIC, s.MN.Home(), 16, &hops, func() { done = true })
		s.Net.RunFor(60 * Second)
		_ = done
		return TraceResult{Label: label, Hops: hops}
	}
	return []TraceResult{
		mk("MH at home", false),
		mk("MH roamed (tunnel via HA)", true),
	}
}

// TraceTable renders traceroutes.
func TraceTable(rows []TraceResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "traceroute chFar -> MH home address\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "\n%s:\n", r.Label)
		for _, h := range r.Hops {
			from := "*"
			if !h.From.IsZero() {
				from = h.From.String()
			}
			mark := ""
			if h.Reached {
				mark = "  <- destination"
			}
			fmt.Fprintf(&b, "  %2d  %-16s%s\n", h.TTL, from, mark)
		}
	}
	return b.String()
}
