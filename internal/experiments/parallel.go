package experiments

import (
	"sync"
	"sync/atomic"
)

// Parallel trial execution. Every experiment in this package is a pure
// function of (scenario options, seed): each trial builds its own Sim,
// scheduler, tracer and RNG, and the only package-level state anywhere in
// the simulator is sync.Pool buffers. Independent trials therefore run
// safely on separate goroutines, and because each worker writes its result
// only at the trial's own index, the assembled slice is identical to what
// the serial loop produces — regardless of worker count or completion
// order. TestParallelGridMatchesSerial pins that equivalence.
//
// Note the virtual clock is untouched: parallelism here is across whole
// simulations, never within one, so determinism per seed is preserved.

// parallelEach runs fn(0) … fn(n-1) across at most workers goroutines.
// workers <= 1 degenerates to the plain serial loop. fn must not touch
// state shared with other trials (each call builds its own Sim).
func parallelEach(workers, n int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// RunGridParallel is RunGrid with the 16 cells executed on up to workers
// goroutines. Cell order (and every cell's content) is identical to the
// serial RunGrid for the same seed.
func RunGridParallel(seed int64, workers int) []GridCell {
	combos := allGridCombos()
	cells := make([]GridCell, len(combos))
	parallelEach(workers, len(combos), func(i int) {
		cells[i] = runGridCell(seed, combos[i])
	})
	return cells
}

// RunAdaptiveParallel is RunAdaptive with the start strategies executed on
// up to workers goroutines, results in the serial order.
func RunAdaptiveParallel(seed int64, filtering bool, workers int) []AdaptiveRow {
	names := adaptiveStrategyNames()
	rows := make([]AdaptiveRow, len(names))
	parallelEach(workers, len(names), func(i int) {
		rows[i] = runAdaptiveStrategy(seed, filtering, names[i])
	})
	return rows
}

// RunDurabilityParallel runs the home-address and temporary-address E11
// trials concurrently and returns them in the usual [home, temporary]
// order.
func RunDurabilityParallel(seed int64, moves, workers int) []DurabilityResult {
	rows := make([]DurabilityResult, 2)
	parallelEach(workers, 2, func(i int) {
		rows[i] = RunDurability(seed, i == 0, moves)
	})
	return rows
}

// RunWebBrowseParallel runs the Mobile-IP and Out-DT Row-D trials
// concurrently, returned in [mobileip, out-dt] order.
func RunWebBrowseParallel(seed int64, n, workers int) []WebBrowseResult {
	rows := make([]WebBrowseResult, 2)
	parallelEach(workers, 2, func(i int) {
		rows[i] = RunWebBrowse(seed, n, i == 0)
	})
	return rows
}
