package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/fleet"
)

// The adversary experiment (E15): hijack resistance under an attack
// storm. An authenticated fleet runs the full E14 handoff storm while
// scripted adversaries work it over — binding thieves forging
// registrations for victim nodes, a replayer re-emitting captured
// renewals promptly and late, rogue agents relaying tampered
// lifetimes. A clean twin (same fleet, storm disarmed) supplies the
// baseline. The claims E15 asserts, per seed:
//
//   - no binding ever pointed at an attacker care-of address;
//   - every forged, replayed and tampered message is accounted to
//     exactly one auth reject cause (auth_bad_mac / auth_replay /
//     auth_stale_id);
//   - legitimate handoff latency quantiles under attack stay within
//     the benchgate envelope (25%) of the clean twin's;
//   - byte-identical output across runs, -parallel and -shards.

// AdversarySpec selects the fleet's shape, exactly like FleetSpec (the
// adversarial schedule rides on fleet.AttackOptions defaults).
type AdversarySpec = FleetSpec

// envelopePct is the allowed quantile degradation under attack,
// mirroring the benchmark gate's 25% envelope.
const envelopePct = 25

// AdversaryResult pairs one attacked trial with its clean twin.
type AdversaryResult struct {
	Attack fleet.Result // authenticated fleet under the storm
	Clean  fleet.Result // same fleet and seed, storm disarmed

	// Violations folds both trials' invariant violations with the
	// attack-vs-clean envelope check; empty means E15 holds.
	Violations []string
}

// RunAdversary runs one E15 trial: the attacked fleet and its clean
// twin. The result is a pure function of (seed, spec).
func RunAdversary(seed int64, spec AdversarySpec) AdversaryResult {
	base := fleet.Options{
		Seed:    seed,
		Nodes:   spec.Nodes,
		Cells:   spec.Cells,
		Model:   spec.Model,
		Workers: spec.Shards,
		Auth:    true,
	}
	attacked := base
	attacked.Attack.Enabled = true
	res := AdversaryResult{
		Attack: fleet.New(attacked).Run(),
		Clean:  fleet.New(base).Run(),
	}
	res.Violations = append(res.Violations, res.Attack.Violations...)
	for _, v := range res.Clean.Violations {
		res.Violations = append(res.Violations, "clean twin: "+v)
	}
	res.Violations = append(res.Violations, envelope(&res.Attack, &res.Clean)...)
	return res
}

// envelope checks the attacked trial's handoff quantiles against the
// clean twin's, allowing envelopePct degradation.
func envelope(attack, clean *fleet.Result) []string {
	var v []string
	check := func(name string, a, c int64) {
		// a <= c * (1 + pct/100), in integer arithmetic.
		if a*100 > c*(100+envelopePct) {
			v = append(v, fmt.Sprintf("handoff %s under attack %.1fms exceeds clean %.1fms by more than %d%%",
				name, float64(a)/1e6, float64(c)/1e6, envelopePct))
		}
	}
	check("p50", attack.HandoffP50, clean.HandoffP50)
	check("p95", attack.HandoffP95, clean.HandoffP95)
	check("p99", attack.HandoffP99, clean.HandoffP99)
	return v
}

// RunAdversaryParallel runs trials E15 trials (seeds seed..seed+trials-1)
// on up to workers goroutines; results are in seed order and identical
// to the serial run regardless of worker count.
func RunAdversaryParallel(seed int64, trials, workers int, spec AdversarySpec) []AdversaryResult {
	rows := make([]AdversaryResult, trials)
	parallelEach(workers, trials, func(i int) {
		rows[i] = RunAdversary(seed+int64(i), spec)
	})
	return rows
}

// AdversaryTable renders E15 trials: one attack-accounting line per
// trial, the attack-vs-clean handoff quantiles, the legitimate fleet's
// end state, and (single-trial runs only) the attacked run's fault log
// with the adversarial plan inline.
func AdversaryTable(rows []AdversaryResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E15 — adversarial storm (hijack resistance)\n")
	fmt.Fprintf(&b, "  %-6s %6s %6s %9s %7s %9s %9s %8s %8s %7s %6s %5s\n",
		"seed", "nodes", "cells", "model", "forged", "replayed", "tampered", "hijacks", "bad_mac", "replay", "stale", "viol")
	for i := range rows {
		r := &rows[i]
		a := &r.Attack
		fmt.Fprintf(&b, "  %-6d %6d %6d %9s %7d %9d %9d %8d %8d %7d %6d %5d\n",
			a.Seed, a.Nodes, a.Cells, a.Model, a.Forged, a.Replayed, a.Tampered,
			a.Hijacks, a.AuthBadMACDrops, a.AuthReplayDrops, a.AuthStaleDrops, len(r.Violations))
	}
	for i := range rows {
		r := &rows[i]
		a, c := &r.Attack, &r.Clean
		fmt.Fprintf(&b, "  seed %d handoff ms attack/clean: p50 %.1f/%.1f  p95 %.1f/%.1f  p99 %.1f/%.1f (envelope %d%%)\n",
			a.Seed,
			float64(a.HandoffP50)/1e6, float64(c.HandoffP50)/1e6,
			float64(a.HandoffP95)/1e6, float64(c.HandoffP95)/1e6,
			float64(a.HandoffP99)/1e6, float64(c.HandoffP99)/1e6, envelopePct)
		fmt.Fprintf(&b, "  seed %d legit: registered %d/%d  bindings %d  handoffs %d  renewals %d  fails %d  pending %d\n",
			a.Seed, a.RegisteredAtEnd, a.Nodes, a.BindingsAtEnd, a.Handoffs,
			a.Renewals, a.RegistrationFails, a.PendingAfterDrain)
	}
	for i := range rows {
		r := &rows[i]
		for _, viol := range r.Violations {
			fmt.Fprintf(&b, "  seed %d VIOLATION: %s\n", r.Attack.Seed, viol)
		}
	}
	if len(rows) == 1 {
		fmt.Fprintf(&b, "  fault log (vtime ns, attacked run):\n")
		for _, line := range rows[0].Attack.FaultLog {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
