// Package experiments builds the scenarios and runs the measurements that
// regenerate every figure of the paper (see DESIGN.md's per-experiment
// index). Each experiment returns structured rows so the same code backs
// the unit tests, the benchmark harness (bench_test.go) and the CLI tools
// (cmd/mob4x4, cmd/gridshow).
package experiments

import (
	"fmt"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/dhcpsim"
	"mob4x4/internal/dnssim"
	"mob4x4/internal/encap"
	"mob4x4/internal/icmp"
	"mob4x4/internal/icmphost"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

// Handy durations.
const (
	Millisecond = vtime.Duration(1e6)
	Second      = vtime.Duration(1e9)
)

// Options parameterizes the standard scenario topology.
type Options struct {
	Seed int64
	// HomeFilter enables ingress+egress source filtering at the home
	// domain boundary (the Figure 2 situation).
	HomeFilter bool
	// VisitFilter enables egress+ingress source filtering at the first
	// visited domain boundary (the anti-transit policy of Section 3.1).
	VisitFilter bool
	// Notices makes the home agent send ICMP binding notices (Fig 5).
	Notices bool
	// HADistance inserts this many extra routers between the home
	// domain and the backbone, lengthening every indirect path (the
	// Figure 4 sweep parameter). 0 = directly on the backbone.
	HADistance int
	// Codec selects tunnel encapsulation everywhere (default IPIP).
	Codec encap.Codec
	// Selector overrides the mobile node's mode selector.
	Selector *core.Selector
	// CHAware / CHDecap configure the far correspondent's capability
	// level (Row B vs Row A of the grid).
	CHAware bool
	CHDecap bool
	// WithServices adds the DNS server (home LAN) and DHCP server
	// (visited LAN A).
	WithServices bool
	// SecondMobile adds a second mobile host whose home is the far LAN
	// (with its own home agent there), for the §1 "both hosts are
	// mobile" experiments.
	SecondMobile bool
	// LANLatency and BackboneLatency tune link delays (defaults 1ms and
	// 5ms).
	LANLatency      vtime.Duration
	BackboneLatency vtime.Duration
	// Registration-robustness knobs for the mobile node, passed through
	// to MobileNodeConfig (zero = that package's defaults). The chaos
	// experiment shortens the lifetime and enables recovery probing so
	// agent crashes are felt — and healed — within the run.
	RegLifetime      uint16
	RegMaxRetries    int
	RegProbeInterval vtime.Duration
	// MetricsLabel names this scenario's registry when a collector is
	// installed with SetCollector (default "seed=<Seed>").
	MetricsLabel string
}

// collector, when non-nil, receives every scenario registry built in
// this process. Install it once at startup (cmd tools) before any
// Build; Register itself is safe under the parallel runners.
var collector *metrics.Collector

// SetCollector routes the registries of all subsequently built
// scenarios into c (nil disables). Not safe to call concurrently with
// Build.
func SetCollector(c *metrics.Collector) { collector = c }

// Scenario is the standard experiment topology:
//
//	homeLAN ─ homeGW ─[HADistance routers]─ bb0 ─ bb1 ─ bb2 ─ visitGW-A ─ visitLAN-A
//	  │ HA, chHome, (DNS)                    │                             │ MH (roams here), chNear, (DHCP)
//	  │ MH starts here                      farGW ─ farLAN                bb2 ─ visitGW-B ─ visitLAN-B
//	                                          │ chFar
type Scenario struct {
	Opts Options
	Net  *inet.Network

	HomeLAN, VisitA, VisitB, FarLAN   *inet.LAN
	HomeGW, VisitGWA, VisitGWB, FarGW *stack.Host
	Backbone                          []*stack.Host

	HAHost *stack.Host
	HA     *mobileip.HomeAgent

	MHHost *stack.Host
	MHIfc  *stack.Iface
	MN     *mobileip.MobileNode
	MHICMP *icmphost.ICMP
	MHTCP  *tcplite.Endpoint

	CHFar    *stack.Host // distant correspondent (far LAN)
	CHFarIC  *icmphost.ICMP
	CHFarC   *mobileip.Correspondent
	CHFarTCP *tcplite.Endpoint

	CHNear    *stack.Host // correspondent on the visited LAN A
	CHNearIC  *icmphost.ICMP
	CHNearC   *mobileip.Correspondent
	CHNearTCP *tcplite.Endpoint

	CHHome    *stack.Host // correspondent inside the home domain
	CHHomeIC  *icmphost.ICMP
	CHHomeC   *mobileip.Correspondent
	CHHomeTCP *tcplite.Endpoint

	DNSHost *stack.Host
	DNS     *dnssim.Server
	DHCP    *dhcpsim.Server

	// Second mobile host (Options.SecondMobile): home on the far LAN.
	HA2Host *stack.Host
	HA2     *mobileip.HomeAgent
	MH2Host *stack.Host
	MH2Ifc  *stack.Iface
	MN2     *mobileip.MobileNode
	MH2TCP  *tcplite.Endpoint
}

// Build constructs the scenario.
func Build(opts Options) *Scenario {
	if opts.LANLatency == 0 {
		opts.LANLatency = 1 * Millisecond
	}
	if opts.BackboneLatency == 0 {
		opts.BackboneLatency = 5 * Millisecond
	}
	s := &Scenario{Opts: opts, Net: inet.New(opts.Seed + 1)}
	n := s.Net
	if collector != nil {
		label := opts.MetricsLabel
		if label == "" {
			label = fmt.Sprintf("seed=%d", opts.Seed)
		}
		collector.Register(label, n.Sim.Metrics)
	}

	lanOpts := netsim.SegmentOpts{Latency: opts.LANLatency}
	s.HomeLAN = n.AddLAN("home", "36.1.1.0/24", lanOpts)
	s.VisitA = n.AddLAN("visitA", "128.9.1.0/24", lanOpts)
	s.VisitB = n.AddLAN("visitB", "130.5.1.0/24", lanOpts)
	s.FarLAN = n.AddLAN("far", "17.5.0.0/24", lanOpts)

	s.HomeGW = n.AddRouter("homeGW")
	s.VisitGWA = n.AddRouter("visitGWA")
	s.VisitGWB = n.AddRouter("visitGWB")
	s.FarGW = n.AddRouter("farGW")
	s.Backbone = n.Chain("bb", 3, opts.BackboneLatency)

	n.AttachRouter(s.HomeGW, s.HomeLAN)
	n.AttachRouter(s.VisitGWA, s.VisitA)
	n.AttachRouter(s.VisitGWB, s.VisitB)
	n.AttachRouter(s.FarGW, s.FarLAN)

	// Home domain to backbone, optionally through a chain of extra
	// routers (Figure 4's "home agent is at MIT" distance knob).
	if opts.HADistance > 0 {
		chain := n.Chain("hd", opts.HADistance, opts.BackboneLatency)
		n.Link(s.HomeGW, chain[0], opts.BackboneLatency)
		n.Link(chain[len(chain)-1], s.Backbone[0], opts.BackboneLatency)
	} else {
		n.Link(s.HomeGW, s.Backbone[0], opts.BackboneLatency)
	}
	n.Link(s.VisitGWA, s.Backbone[2], opts.BackboneLatency)
	n.Link(s.VisitGWB, s.Backbone[2], opts.BackboneLatency)
	n.Link(s.FarGW, s.Backbone[0], opts.BackboneLatency)

	// Hosts.
	s.HAHost = n.AddHost("ha", s.HomeLAN)
	mh, mhIfc := n.AddMobileHost("mh", s.HomeLAN)
	s.MHHost, s.MHIfc = mh, mhIfc
	s.CHHome = n.AddHost("chHome", s.HomeLAN)
	s.CHFar = n.AddHost("chFar", s.FarLAN)
	s.CHNear = n.AddHost("chNear", s.VisitA)

	if opts.HomeFilter {
		n.SetBoundaryFilter(s.HomeGW, true, true, "36.1.1.0/24")
	}
	if opts.VisitFilter {
		n.SetBoundaryFilter(s.VisitGWA, true, true, "128.9.1.0/24")
	}
	n.ComputeRoutes()

	var err error
	s.HA, err = mobileip.NewHomeAgent(s.HAHost, s.HAHost.Ifaces()[0], mobileip.HomeAgentConfig{
		Codec:              opts.Codec,
		SendBindingNotices: opts.Notices,
	})
	assert.NoError(err, "experiments: create home agent")

	s.MHICMP = icmphost.Install(s.MHHost)
	s.MHTCP = tcplite.New(s.MHHost)
	s.MN, err = mobileip.NewMobileNode(s.MHHost, s.MHIfc, mobileip.MobileNodeConfig{
		Home:             s.MHIfc.Addr(),
		HomePrefix:       s.HomeLAN.Prefix,
		HomeAgent:        s.HAHost.Ifaces()[0].Addr(),
		Codec:            opts.Codec,
		Selector:         opts.Selector,
		Lifetime:         opts.RegLifetime,
		RegMaxRetries:    opts.RegMaxRetries,
		RegProbeInterval: opts.RegProbeInterval,
	})
	assert.NoError(err, "experiments: create mobile node")

	s.CHFarIC = icmphost.Install(s.CHFar)
	s.CHFarTCP = tcplite.New(s.CHFar)
	s.CHFarC = mobileip.NewCorrespondent(s.CHFar, s.CHFarIC, mobileip.CorrespondentConfig{
		Codec:          opts.Codec,
		CanDecapsulate: opts.CHDecap,
		MobileAware:    opts.CHAware,
	})
	s.CHNearIC = icmphost.Install(s.CHNear)
	s.CHNearTCP = tcplite.New(s.CHNear)
	s.CHNearC = mobileip.NewCorrespondent(s.CHNear, s.CHNearIC, mobileip.CorrespondentConfig{
		Codec:          opts.Codec,
		CanDecapsulate: opts.CHDecap,
		MobileAware:    opts.CHAware,
	})
	s.CHHomeIC = icmphost.Install(s.CHHome)
	s.CHHomeTCP = tcplite.New(s.CHHome)
	s.CHHomeC = mobileip.NewCorrespondent(s.CHHome, s.CHHomeIC, mobileip.CorrespondentConfig{
		Codec:          opts.Codec,
		CanDecapsulate: opts.CHDecap,
		MobileAware:    false, // the home-domain correspondent stays conventional
	})

	if opts.SecondMobile {
		s.HA2Host = n.AddHost("ha2", s.FarLAN)
		mh2, mh2Ifc := n.AddMobileHost("mh2", s.FarLAN)
		s.MH2Host, s.MH2Ifc = mh2, mh2Ifc
		n.ComputeRoutes()
		s.HA2, err = mobileip.NewHomeAgent(s.HA2Host, s.HA2Host.Ifaces()[0], mobileip.HomeAgentConfig{
			Codec: opts.Codec,
		})
		if err != nil {
			assert.Unreachable("experiments: create second home agent: %v", err)
		}
		icmphost.Install(s.MH2Host)
		s.MH2TCP = tcplite.New(s.MH2Host)
		s.MN2, err = mobileip.NewMobileNode(s.MH2Host, s.MH2Ifc, mobileip.MobileNodeConfig{
			Home:       s.MH2Ifc.Addr(),
			HomePrefix: s.FarLAN.Prefix,
			HomeAgent:  s.HA2Host.Ifaces()[0].Addr(),
			Codec:      opts.Codec,
			Selector:   core.NewSelector(core.StartOptimistic),
		})
		if err != nil {
			assert.Unreachable("experiments: create second mobile node: %v", err)
		}
	}

	if opts.WithServices {
		s.DNSHost = n.AddHost("dns", s.HomeLAN)
		s.DNS, err = dnssim.NewServer(s.DNSHost)
		if err != nil {
			assert.Unreachable("experiments: create DNS server: %v", err)
		}
		s.DNS.AddA("mh.mosquitonet.stanford.edu", s.MN.Home())
		s.DHCP, err = dhcpsim.NewServer(n.AddHost("dhcp", s.VisitA),
			s.VisitA.Prefix, s.VisitA.Gateway, 100, 150)
		if err != nil {
			assert.Unreachable("experiments: create DHCP server: %v", err)
		}
		n.ComputeRoutes() // refresh for the service hosts
	}
	return s
}

// Roam moves the MH to visited LAN A with a manually assigned care-of
// address and waits for registration. It panics if registration fails
// (experiments require a working binding).
func (s *Scenario) Roam() ipv4.Addr {
	careOf := s.VisitA.NextAddr()
	s.MN.MoveTo(s.VisitA.Seg, careOf, s.VisitA.Prefix, s.VisitA.Gateway)
	s.Net.RunFor(3 * Second)
	if !s.MN.Registered() {
		assert.Unreachable("experiments: registration failed (care-of %s)", careOf)
	}
	return careOf
}

// RoamB moves the MH to visited LAN B (second move).
func (s *Scenario) RoamB() ipv4.Addr {
	careOf := s.VisitB.NextAddr()
	s.MN.MoveTo(s.VisitB.Seg, careOf, s.VisitB.Prefix, s.VisitB.Gateway)
	s.Net.RunFor(3 * Second)
	if !s.MN.Registered() {
		assert.Unreachable("experiments: registration failed (care-of %s)", careOf)
	}
	return careOf
}

// RoamDHCP moves the MH to visited LAN A and acquires the care-of address
// via DHCP (requires WithServices). Returns the leased address.
func (s *Scenario) RoamDHCP() (ipv4.Addr, error) {
	if s.DHCP == nil {
		return ipv4.Zero, fmt.Errorf("experiments: scenario built without services")
	}
	// Attach with no address and run the client.
	s.MHIfc.Attach(s.VisitA.Seg)
	s.MHIfc.SetAddr(ipv4.Zero, ipv4.Prefix{})
	client, err := dhcpsim.NewClient(s.MHHost, s.MHIfc)
	if err != nil {
		return ipv4.Zero, err
	}
	var lease dhcpsim.Lease
	var acquireErr error
	gotLease := false
	client.Acquire(func(l dhcpsim.Lease, err error) {
		lease, acquireErr, gotLease = l, err, true
	})
	s.Net.RunFor(5 * Second)
	if !gotLease {
		return ipv4.Zero, fmt.Errorf("experiments: DHCP did not complete")
	}
	if acquireErr != nil {
		return ipv4.Zero, acquireErr
	}
	s.MN.MoveTo(s.VisitA.Seg, lease.Addr, lease.Prefix, lease.Gateway)
	s.Net.RunFor(3 * Second)
	if !s.MN.Registered() {
		return ipv4.Zero, fmt.Errorf("experiments: registration after DHCP failed")
	}
	return lease.Addr, nil
}

// PingResult describes one echo round trip (or its failure).
type PingResult struct {
	Delivered   bool
	RTT         vtime.Duration
	RequestHops int // router forwardings for the request
	ReplyHops   int // router forwardings for the reply
	RequestPath string
	ReplyPath   string
	ReplySource ipv4.Addr
	// One-way transit times reconstructed from the trace (send to final
	// delivery), exposing the paper's §2 point that the two directions
	// of a Mobile IP conversation can differ wildly.
	RequestOneWay vtime.Duration
	ReplyOneWay   vtime.Duration
}

// PingFrom sends one echo request from the given host's ICMP endpoint to
// dst and reports the outcome. The tracer must be enabled.
func (s *Scenario) PingFrom(ic *icmphost.ICMP, host *stack.Host, dst ipv4.Addr, timeout vtime.Duration) PingResult {
	tr := s.Net.Sim.Trace
	startEvents := len(tr.Events())
	start := s.Net.Sim.Now()

	var res PingResult
	seq := uint16(len(tr.Events())%60000 + 1)
	done := false
	prev := ic.OnEchoReply
	ic.OnEchoReply = func(src ipv4.Addr, msg icmp.Message) {
		if msg.Seq != seq || done {
			return
		}
		done = true
		res.Delivered = true
		res.RTT = s.Net.Sim.Now().Sub(start)
		res.ReplySource = src
	}
	defer func() { ic.OnEchoReply = prev }()

	_ = ic.Ping(ipv4.Zero, dst, 0x4d4d, seq, []byte("probe"))
	s.Net.RunFor(timeout)

	// Reconstruct per-direction hop counts from the trace: the request
	// is the first send from this host in the window; the reply is the
	// send whose destination is this host... simpler: count forwards per
	// packet id attributed to request vs reply by looking at send order.
	evs := tr.Events()[startEvents:]
	var reqID, repID uint64
	for _, e := range evs {
		if e.Kind == netsim.EventSend && e.Where == host.Name() && reqID == 0 {
			reqID = e.PktID
		}
	}
	if reqID != 0 {
		for _, e := range evs {
			if e.Kind == netsim.EventSend && e.PktID > reqID && e.Where != host.Name() && repID == 0 {
				repID = e.PktID
			}
		}
		res.RequestHops = tr.Hops(reqID)
		res.RequestPath = tr.Path(reqID)
		res.RequestOneWay = packetTransit(tr.PacketEvents(reqID))
		if repID != 0 {
			res.ReplyHops = tr.Hops(repID)
			res.ReplyPath = tr.Path(repID)
			res.ReplyOneWay = packetTransit(tr.PacketEvents(repID))
		}
	}
	return res
}

// packetTransit returns the time between a packet's first send and its
// last delivery event (zero if it was never delivered).
func packetTransit(evs []netsim.Event) vtime.Duration {
	var sent, delivered vtime.Time
	haveSent := false
	for _, e := range evs {
		switch e.Kind {
		case netsim.EventSend:
			if !haveSent {
				sent = e.Time
				haveSent = true
			}
		case netsim.EventDeliver:
			delivered = e.Time
		}
	}
	if !haveSent || delivered.Before(sent) {
		return 0
	}
	return delivered.Sub(sent)
}
