package experiments

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/dnssim"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/pcap"
	"mob4x4/internal/sock"
	"mob4x4/internal/udp"
	"mob4x4/internal/vtime"
)

// Experiment E16 (httpgrid): an unmodified net/http server on the mobile
// host and an unmodified net/http client plus a DNS lookup on the
// correspondent, run over the sock facade in every cell of the 4x4 grid,
// with the NIC boundary tapped into a pcap capture. The cell's capture
// SHA-256 is part of the printed table, so the determinism gate compares
// the captured bytes themselves across repeats, -parallel and -shards.
//
// TCP keys both directions of a conversation to one address pair, so six
// of the sixteen requested combinations cannot be honored literally (the
// paper's §6 point): when In is not In-DT the correspondent targets the
// home address and every reply is keyed to it (Out-DT is overridden),
// and when In is In-DT the replies come from the care-of address no
// matter which Out mode the selector would force. The table reports the
// requested and the delivered modes side by side.

// httpGridName is the mobile host's published DNS name (the WithServices
// zone entry).
const httpGridName = "mh.mosquitonet.stanford.edu"

// httpGridHorizon is how long past roam each cell stays open. Teardown
// (FIN exchange, TIME-WAIT) and the periodic Mobile IP chatter all land
// before it; cutting the tap at a pre-scheduled virtual instant makes
// the capture's extent a virtual-time fact rather than a scheduling one.
const httpGridHorizon = 10 * Second

// HTTPCell is one measured cell of E16.
type HTTPCell struct {
	Combo core.Combo
	Class core.Class

	DNSOK   bool      // the facade DNS exchange resolved the MH's name
	DNSAddr ipv4.Addr // the resolved address (the home address)

	Status int    // HTTP status of the GET (0 on transport failure)
	BodyOK bool   // response body matched what the server wrote
	Err    string // transport error, empty on success

	// Requested vs delivered mode, measured from the mobile node's
	// per-mode packet counters over the HTTP exchange.
	EffectiveOut core.OutMode
	EffectiveIn  core.InMode
	Honored      bool // delivered == requested in both directions

	Packets int    // captured frames for the whole cell
	PcapSHA string // SHA-256 of the capture bytes
}

// RunHTTPGrid measures all 16 cells serially.
func RunHTTPGrid(seed int64) []HTTPCell { return RunHTTPGridParallel(seed, 1) }

// RunHTTPGridParallel is RunHTTPGrid on up to workers goroutines. Each
// cell owns a full scenario, driver and capture, so cells parallelize
// like any other trial and the assembled slice matches the serial run.
func RunHTTPGridParallel(seed int64, workers int) []HTTPCell {
	combos := allGridCombos()
	cells := make([]HTTPCell, len(combos))
	parallelEach(workers, len(combos), func(i int) {
		cells[i] = runHTTPGridCell(seed, combos[i])
	})
	return cells
}

func runHTTPGridCell(seed int64, combo core.Combo) HTTPCell {
	cell := HTTPCell{Combo: combo, Class: core.Classify(combo)}

	// Force the MH's outgoing mode for home-sourced traffic, exactly as
	// the UDP grid does (Out-DT needs no rule: care-of-sourced packets
	// go out plain by construction).
	sel := core.NewSelector(core.StartPessimistic)
	if combo.Out != core.OutDT {
		m := combo.Out
		sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), ForceMode: &m})
	}
	aware := combo.In == core.InDE || combo.In == core.InDH
	s := Build(Options{
		Seed:         seed,
		Selector:     sel,
		CHAware:      aware,
		CHDecap:      true,
		WithServices: true,
		MetricsLabel: fmt.Sprintf("httpgrid/%s/%s", combo.Out, combo.In),
	})
	s.Net.Sim.Trace.Discard()
	careOf := s.Roam()

	// Same-segment correspondent for Row C, distant otherwise.
	ch, chC, chTCP := s.CHFar, s.CHFarC, s.CHFarTCP
	if combo.In == core.InDH {
		ch, chC, chTCP = s.CHNear, s.CHNearC, s.CHNearTCP
	}
	if aware {
		chC.LearnBinding(core.Binding{Home: s.MN.Home(), CareOf: careOf}, 0)
	}

	// Capture from here on: registration chatter is over, the
	// conversation is what the capture shows. The tap detaches at the
	// horizon via a timer scheduled before the driver takes over.
	w := pcap.NewWriter()
	pcap.Attach(s.Net.Sim, w)
	sim := s.Net.Sim
	s.Net.Sched().After(vtime.Duration(httpGridHorizon), func() { sim.SetTap(nil) })
	horizonWall := sock.EpochTime().Add(time.Duration(s.Net.Sim.Now().Add(vtime.Duration(httpGridHorizon))))

	d := sock.NewDriver(s.Net.Sched())
	mhNet := sock.NewNet(d, s.MHHost, s.MHTCP)
	chNet := sock.NewNet(d, ch, chTCP)
	d.Start()

	// The mobile host serves HTTP over the facade, unmodified stdlib.
	ln, err := mhNet.Listen("tcp", ":80")
	assert.NoError(err, "httpgrid: listen")
	body := fmt.Sprintf("mob4x4 %s/%s: served from the mobile host\n", combo.Out, combo.In)
	srv := &http.Server{Handler: http.HandlerFunc(func(rw http.ResponseWriter, r *http.Request) {
		// Pin the Date header to the virtual wall clock: net/http stamps
		// it from the real clock otherwise, which would put
		// run-dependent bytes on the captured wire.
		rw.Header().Set("Date", d.WallNow().UTC().Format(http.TimeFormat))
		_, _ = io.WriteString(rw, body)
	})}
	go func() { _ = srv.Serve(ln) }()

	// DNS over the facade: the correspondent resolves the MH's published
	// name through a blocking PacketConn before dialing.
	pc, err := chNet.ListenPacket("udp", ":0")
	assert.NoError(err, "httpgrid: dns socket")
	q, err := dnssim.MarshalQuery(0x4d00|uint16(combo.Out)<<2|uint16(combo.In), httpGridName)
	assert.NoError(err, "httpgrid: marshal query")
	_, err = pc.WriteTo(q, sock.Addr{IP: s.DNSHost.FirstAddr(), Port: udp.PortDNS, Proto: "udp"})
	assert.NoError(err, "httpgrid: send query")
	_ = pc.SetReadDeadline(horizonWall) // bounded; never reached in practice
	buf := make([]byte, 512)
	if n, _, rerr := pc.ReadFrom(buf); rerr == nil {
		if _, name, recs, perr := dnssim.ParseResponse(buf[:n]); perr == nil && name == httpGridName {
			if a, _, ok := dnssim.BestAddr(recs); ok {
				cell.DNSOK, cell.DNSAddr = true, a
			}
		}
	}

	// The address the CH targets: what the DNS published (the home
	// address) — except in In-DT, where there is no Mobile IP at all and
	// the CH must know the temporary address out of band.
	target := s.MN.Home()
	if cell.DNSOK {
		target = cell.DNSAddr
	}
	if combo.In == core.InDT {
		target = careOf
	}

	// Mode accounting across the HTTP exchange. The counters live on the
	// event loop; Do gives a consistent read.
	reg := s.Net.Sim.Metrics
	readModes := func() (out, in [metrics.NumModes]uint64) {
		d.Do(func() {
			for i := 0; i < metrics.NumModes; i++ {
				out[i] = reg.OutPackets[i].Value()
				in[i] = reg.InPackets[i].Value()
			}
		})
		return out, in
	}
	outP0, inP0 := readModes()

	tr := &http.Transport{DialContext: chNet.DialContext}
	resp, err := (&http.Client{Transport: tr}).Get(fmt.Sprintf("http://%s/", target))
	if err != nil {
		cell.Err = err.Error()
	} else {
		cell.Status = resp.StatusCode
		got, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		cell.BodyOK = rerr == nil && string(got) == body
	}

	outP1, inP1 := readModes()
	dominant := func(p0, p1 [metrics.NumModes]uint64) int {
		k, max := 0, uint64(0)
		for i := range p1 {
			if delta := p1[i] - p0[i]; delta > max {
				max, k = delta, i
			}
		}
		return k
	}
	cell.EffectiveOut = core.OutMode(dominant(outP0, outP1))
	cell.EffectiveIn = core.InMode(dominant(inP0, inP1))
	cell.Honored = cell.EffectiveOut == combo.Out && cell.EffectiveIn == combo.In

	// Orderly close now, at the virtual instant the response finished:
	// the FIN exchange and TIME-WAIT land in the capture well before the
	// horizon.
	tr.CloseIdleConnections()

	// Hold the cell open to the fixed horizon (the deadline read wakes
	// exactly there), then tear down the world.
	_, _, _ = pc.ReadFrom(buf)
	_ = pc.Close()
	_ = srv.Close()
	d.Shutdown()

	cell.Packets = w.Packets()
	cell.PcapSHA = w.SHA256()
	registerCapture(fmt.Sprintf("httpgrid_%s_%s", combo.Out, combo.In), w)
	return cell
}

// HTTPGridTable renders the E16 table, one row per cell, capture hash
// included so stdout pins the captured bytes.
func HTTPGridTable(cells []HTTPCell) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E16 — HTTP + DNS over the socket facade, all 16 (Out,In) pairs\n")
	fmt.Fprintf(&b, "%-7s %-6s  %-4s %-5s %-4s  %-7s %-6s %-7s %5s  %s\n",
		"out", "in", "http", "body", "dns", "actOut", "actIn", "honored", "pkts", "capture sha256")
	for _, c := range cells {
		honored := "yes"
		if !c.Honored {
			honored = "no"
		}
		fmt.Fprintf(&b, "%-7s %-6s  %-4d %-5v %-4v  %-7s %-6s %-7s %5d  %s",
			c.Combo.Out, c.Combo.In, c.Status, c.BodyOK, c.DNSOK,
			c.EffectiveOut, c.EffectiveIn, honored, c.Packets, c.PcapSHA)
		if c.Err != "" {
			fmt.Fprintf(&b, "  err=%s", c.Err)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "actOut/actIn: the delivered modes. TCP keys both directions to one address\n")
	fmt.Fprintf(&b, "pair, so requested combinations that split the keys are overridden (§6).\n")
	return b.String()
}
