package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/faults"
	"mob4x4/internal/icmp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

// The chaos experiment (E13): the standard topology under a scripted
// storm of the failures Section 3 warns about — burst loss and
// corruption on the backbone, an ingress filter blackholing the care-of
// source mid-conversation, the home agent dying and restarting, the
// visited domain's uplink going dark, and the mobile host's own radio
// bouncing. The stack must limp through where it can and heal completely
// once the faults lift; the result is byte-reproducible per seed, so the
// whole run doubles as a determinism fixture under fault load.

// ChaosResult is one chaos trial's deterministic outcome: counters, the
// vtime-stamped fault log, and any invariant violations. Every field is
// a pure function of the seed.
type ChaosResult struct {
	Seed int64

	// FaultLog is the injector's record of what fired when.
	FaultLog []string

	// Interactive TCP session (home address; must survive everything).
	TCPEchoes   int
	TCPRetrans  uint64
	TCPSurvived bool

	// DT probe stream (port heuristic; demoted while blackholed).
	ProbesSent       int
	ProbeReplies     int
	RepliesAfterHeal int
	DTDemotions      uint64
	DTUsableAtEnd    bool

	// Registration machinery across the agent crash.
	Renewals          uint64
	RegistrationFails uint64
	RecoveryProbes    uint64
	RegisteredAtEnd   bool
	BindingsAtEnd     int

	// Link-level damage tally, read from the sim registry's drop-cause
	// vector at end of run (the faults no longer keep private counts).
	GEDrops        uint64
	BlackholeDrops uint64
	DownDrops      uint64

	// Metrics is the registry snapshot after cleanup and drain; Series
	// is the 2s-vtime sampler's trajectory through the storm. Both are
	// pure functions of the seed, so the determinism and parallelism
	// fixtures cover them for free.
	Metrics metrics.Snapshot
	Series  []metrics.Sample

	// PostHealPing reports whether an echo to the home address completed
	// after every fault lifted.
	PostHealPing bool

	// PendingAfterDrain is the scheduler's event count after cleanup and
	// a full drain — nonzero means a leaked (self-rearming) timer.
	PendingAfterDrain int

	// Violations lists every broken invariant (empty on a healthy run).
	Violations []string
}

// RunChaos executes one chaos trial.
func RunChaos(seed int64) ChaosResult {
	res := ChaosResult{Seed: seed}
	sel := core.NewSelector(core.StartOptimistic)
	s := Build(Options{
		Seed:     seed,
		Selector: sel,
		// Short lifetime + bounded retries + probing: the agent crash is
		// discovered, given up on, and healed inside the run.
		RegLifetime:      10,
		RegMaxRetries:    3,
		RegProbeInterval: 4 * Second,
	})
	// Chaos reads counters and the fault log, never trace events.
	s.Net.Sim.Trace.Discard()
	// Sample the registry every 2s of vtime for the recovery trajectory.
	samp := metrics.NewSampler(s.Net.Sched(), s.Net.Sim.Metrics, 2*Second)
	// Enough retransmission budget to outlast the longest outage window.
	s.MHTCP.MaxRetries = 12
	s.CHFarTCP.MaxRetries = 12
	s.MHTCP.Feedback = &mobileip.SelectorFeedback{Selector: sel}

	s.Roam()
	t0 := s.Net.Sim.Now()
	at := func(d vtime.Duration) vtime.Time { return t0.Add(d) }
	chFar := s.CHFar.FirstAddr()

	// --- Workload 1: interactive TCP echo over the home address. ---
	if _, err := s.CHFarTCP.Listen(23, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		assert.Unreachable("chaos: start echo server: %v", err)
	}
	conn, err := s.MHTCP.Dial(s.MN.Home(), chFar, 23)
	assert.NoError(err, "chaos: dial echo server")
	tcpAlive := true
	conn.OnData = func(p []byte) { res.TCPEchoes++ }
	conn.OnError = func(error) { tcpAlive = false }
	conn.OnEstablished = func() { _ = conn.Write([]byte("k")) }
	writersOn := true
	var keystroke func()
	keystroke = func() {
		if !writersOn || !tcpAlive || conn.State() == tcplite.StateClosed {
			return
		}
		_ = conn.Write([]byte("k"))
		s.Net.Sched().After(500*Millisecond, keystroke)
	}
	s.Net.Sched().After(500*Millisecond, keystroke)

	// --- Workload 2: a DT-eligible UDP probe stream (dst port 53). The
	// port heuristic elects Out-DT; missing replies feed the selector, so
	// a blackholed DT path demotes and — via the prober — recovers. The
	// probe correspondent is deliberately NOT the TCP correspondent: the
	// selector state is per destination, and the healthy TCP session's
	// success feedback would mask the probe stream's DT losses. ---
	probeDst := s.CHHome.FirstAddr()
	var srv *stack.UDPSocket
	srv, err = s.CHHome.OpenUDP(ipv4.Zero, 53,
		func(src ipv4.Addr, srcPort uint16, _ ipv4.Addr, payload []byte) {
			_ = srv.SendTo(src, srcPort, payload)
		})
	assert.NoError(err, "chaos: open probe server")

	awaiting := false
	probeSock, err := s.MHHost.OpenUDP(ipv4.Zero, 0,
		func(ipv4.Addr, uint16, ipv4.Addr, []byte) {
			awaiting = false
			res.ProbeReplies++
		})
	assert.NoError(err, "chaos: open probe socket")
	var probe func()
	probe = func() {
		if !writersOn {
			return
		}
		if awaiting {
			// Last probe unanswered: application-level feedback, the same
			// signal a transport retransmission would send.
			sel.ReportRetransmission(probeDst)
		}
		awaiting = true
		res.ProbesSent++
		_ = probeSock.SendTo(probeDst, 53, []byte("probe"))
		s.Net.Sched().After(1*Second, probe)
	}
	s.Net.Sched().After(1*Second, probe)

	// The prober keeps retrying demoted paths (including Out-DT).
	prober := mobileip.NewAutoProber(s.MN, 2*Second)
	prober.RetryTemporary = true
	prober.Track(chFar)
	prober.Track(probeDst)

	// --- The fault schedule. ---
	inj := faults.NewInjector(s.Net.Sim)
	backbone := s.Net.Sim.SegmentByName("p2p-bb0-bb1")
	uplink := s.Net.Sim.SegmentByName("p2p-visitGWA-bb2")
	if backbone == nil || uplink == nil {
		assert.Unreachable("chaos: fault-target segments missing")
	}

	var ge *faults.LinkFault
	inj.At(at(1*Second), "impair backbone (gilbert-elliott)", func() {
		ge = faults.ImpairLink(s.Net.Sim, backbone, faults.LinkFaultOpts{
			PGoodBad: 0.05, PBadGood: 0.3, GoodLoss: 0.01, BadLoss: 0.5,
			DupRate: 0.02, CorruptRate: 0.01,
			ReorderRate: 0.05, ReorderMax: 20 * Millisecond,
		})
	})
	var bh *faults.Blackhole
	inj.At(at(4*Second), "blackhole care-of source at visited uplink", func() {
		bh = faults.BlackholeSource(uplink, s.MN.CareOf())
	})
	inj.CrashHomeAgent(at(6*Second), s.HA)
	inj.At(at(10*Second), "heal backbone", func() { ge.Remove() })
	inj.At(at(14*Second), "remove blackhole", func() { bh.Remove() })
	inj.RestartHomeAgent(at(16*Second), s.HA)
	inj.CutLink(at(18*Second), uplink, 4*Second)
	inj.BounceInterface(at(24*Second), s.MN.Iface(), 500*Millisecond, s.MN.Reregister)

	healMark := 0
	inj.At(at(26*Second), "all faults healed; measuring recovery", func() {
		healMark = res.ProbeReplies
	})
	inj.At(at(30*Second), "stop writers", func() { writersOn = false })

	s.Net.Sim.Sched.RunUntil(at(31 * Second))
	res.RepliesAfterHeal = res.ProbeReplies - healMark

	// --- Post-heal verification: transparent delivery works again. The
	// prober is stopped and the correspondent's mode state dropped first:
	// the ping models a FRESH conversation after the storm, not whatever
	// probing state the now-idle flows left mid-flight. ---
	prober.Stop()
	sel.Forget(chFar)
	prevReply := s.CHFarIC.OnEchoReply
	s.CHFarIC.OnEchoReply = func(src ipv4.Addr, _ icmp.Message) {
		if src == s.MN.Home() {
			res.PostHealPing = true
		}
	}
	_ = s.CHFarIC.Ping(ipv4.Zero, s.MN.Home(), 0x4343, 1, []byte("heal"))
	s.Net.RunFor(5 * Second)
	s.CHFarIC.OnEchoReply = prevReply

	res.TCPSurvived = tcpAlive && conn.State() != tcplite.StateClosed
	res.TCPRetrans = s.MHTCP.Stats.Retransmissions
	res.DTDemotions = sel.DTDemotions
	res.DTUsableAtEnd = sel.TemporaryUsable(probeDst)
	res.Renewals = s.MN.Stats.Renewals
	res.RegistrationFails = s.MN.Stats.RegistrationFails
	res.RecoveryProbes = s.MN.Stats.RecoveryProbes
	res.RegisteredAtEnd = s.MN.Registered()
	res.BindingsAtEnd = s.HA.Bindings()
	// Per-mechanism drop counts come from the one drop-cause vector the
	// faults and the link layer share — no fault-object bookkeeping.
	reg := s.Net.Sim.Metrics
	res.GEDrops = reg.DropCount(metrics.DropGilbertElliott)
	res.BlackholeDrops = reg.DropCount(metrics.DropBlackhole)
	res.DownDrops = reg.DropCount(metrics.DropDown)
	res.FaultLog = inj.Log()

	// --- Cleanup: everything the run started must wind down. ---
	samp.Stop() // before the drain: a rearming sampler never drains
	conn.Close()
	probeSock.Close()
	srv.Close()
	s.MN.GoHome(s.HomeLAN.Seg, s.HomeLAN.Gateway)
	s.Net.Run() // drain every remaining timer (reassembly, ARP, FINs)
	res.PendingAfterDrain = s.Net.Sched().Pending()
	res.Metrics = reg.Snapshot()
	res.Series = samp.Samples()

	res.Violations = chaosInvariants(res)
	return res
}

// chaosInvariants checks a finished trial against the self-healing
// contract and returns the list of violations.
func chaosInvariants(r ChaosResult) []string {
	var v []string
	bad := func(format string, args ...any) { v = append(v, fmt.Sprintf(format, args...)) }
	if !r.TCPSurvived {
		bad("interactive TCP session died (echoes=%d retrans=%d)", r.TCPEchoes, r.TCPRetrans)
	}
	if !r.RegisteredAtEnd {
		bad("mobile node not registered after all faults healed")
	}
	if r.BindingsAtEnd != 1 {
		bad("home agent holds %d bindings at end, want 1", r.BindingsAtEnd)
	}
	if !r.PostHealPing {
		bad("post-heal ping to the home address failed")
	}
	if r.DTDemotions == 0 {
		bad("blackholed DT path was never demoted")
	}
	if !r.DTUsableAtEnd {
		bad("DT path still demoted after blackhole removal + probing")
	}
	if r.RepliesAfterHeal == 0 {
		bad("no probe replies after the heal point")
	}
	if r.BlackholeDrops == 0 {
		bad("blackhole dropped nothing; DT path never exercised")
	}
	if r.DownDrops == 0 {
		bad("link-cut window dropped nothing")
	}
	if r.PendingAfterDrain != 0 {
		bad("%d scheduler events leaked after cleanup", r.PendingAfterDrain)
	}
	return v
}

// RunChaosParallel runs trials chaos trials (seeds seed..seed+trials-1)
// on up to workers goroutines; results are in seed order and identical
// to the serial run regardless of worker count.
func RunChaosParallel(seed int64, trials, workers int) []ChaosResult {
	rows := make([]ChaosResult, trials)
	parallelEach(workers, trials, func(i int) {
		rows[i] = RunChaos(seed + int64(i))
	})
	return rows
}

// ChaosTable renders chaos trials, one block per trial.
func ChaosTable(rows []ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E13 — fault injection & self-healing\n")
	fmt.Fprintf(&b, "  %-6s %7s %8s %8s %7s %8s %7s %7s %6s %5s %5s\n",
		"seed", "echoes", "retrans", "probes", "replies", "demoted", "gedrop", "bhdrop", "regOK", "ping", "viol")
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "  %-6d %7d %8d %8d %7d %8d %7d %7d %6v %5v %5d\n",
			r.Seed, r.TCPEchoes, r.TCPRetrans, r.ProbesSent, r.ProbeReplies,
			r.DTDemotions, r.GEDrops, r.BlackholeDrops,
			r.RegisteredAtEnd, r.PostHealPing, len(r.Violations))
	}
	for i := range rows {
		r := &rows[i]
		for _, viol := range r.Violations {
			fmt.Fprintf(&b, "  seed %d VIOLATION: %s\n", r.Seed, viol)
		}
	}
	if len(rows) == 1 {
		fmt.Fprintf(&b, "  fault log (vtime ns):\n")
		for _, line := range rows[0].FaultLog {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
