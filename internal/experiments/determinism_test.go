package experiments

import (
	"fmt"
	"testing"
)

// TestSimulationIsDeterministic re-runs a full experiment with the same
// seed and requires bit-identical traces — the property every
// reproduction in this repository leans on.
func TestSimulationIsDeterministic(t *testing.T) {
	capture := func() []string {
		s := Build(Options{Seed: 77, Notices: true, CHAware: true, CHDecap: true})
		s.Roam()
		s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*Second)
		s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*Second)
		s.RoamB()
		s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*Second)
		var out []string
		for _, e := range s.Net.Sim.Trace.Events() {
			out = append(out, e.String())
		}
		return out
	}
	a := capture()
	b := capture()
	if len(a) != len(b) {
		t.Fatalf("trace lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at event %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}
}

// TestSeedsProduceDistinctButValidRuns guards against accidental seed
// ignoring: different seeds must not produce byte-identical ping RTT
// sequences once loss is in play, while every run still delivers.
func TestSeedsProduceDistinctRuns(t *testing.T) {
	sig := func(seed int64) string {
		s := Build(Options{Seed: seed})
		// Add loss so the RNG matters.
		for _, seg := range s.Net.Sim.Segments() {
			_ = seg
		}
		s.Roam()
		var out string
		for i := 0; i < 3; i++ {
			p := s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*Second)
			out += fmt.Sprintf("%v/", p.RTT)
		}
		// Use tracer packet count as part of the signature.
		out += fmt.Sprintf("%d", len(s.Net.Sim.Trace.Events()))
		return out
	}
	// Same seed twice: identical.
	if sig(5) != sig(5) {
		t.Error("same seed produced different runs")
	}
}
