package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
)

// OverheadRow is one point of the encapsulation size/fragmentation sweep
// (experiment E9, Section 3.3).
type OverheadRow struct {
	Codec         string
	PayloadBytes  int // transport payload size before any IP header
	PlainBytes    int // wire bytes unencapsulated (IP header + payload)
	EncapBytes    int // wire bytes encapsulated
	OverheadBytes int
	// Fragments counts the IP packets on the wire after fragmentation to
	// a 1500-byte MTU. Crossing the MTU because of encapsulation is the
	// paper's "doubling the packet count".
	PlainFragments int
	EncapFragments int
}

// RunOverhead executes experiment E9 analytically at the codec layer:
// serialize, encapsulate, fragment, count. No network is needed; the
// deliverable claims are byte arithmetic.
func RunOverhead(payloadSizes []int, mtu int) []OverheadRow {
	var rows []OverheadRow
	src := ipv4.MustParseAddr("128.9.1.4")
	ha := ipv4.MustParseAddr("36.1.1.2")
	dst := ipv4.MustParseAddr("17.5.0.2")
	for _, codec := range encap.All() {
		for _, size := range payloadSizes {
			inner := ipv4.Packet{
				Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: src, Dst: dst, TTL: 64, ID: 99},
				Payload: make([]byte, size),
			}
			row := OverheadRow{Codec: codec.Name(), PayloadBytes: size}
			row.PlainBytes = inner.TotalLen()
			plainFrags, err := ipv4.Fragment(inner, mtu)
			if err != nil {
				continue
			}
			row.PlainFragments = len(plainFrags)

			outer, err := codec.Encapsulate(inner, src, ha)
			if err != nil {
				continue
			}
			row.EncapBytes = outer.TotalLen()
			row.OverheadBytes = row.EncapBytes - row.PlainBytes
			encFrags, err := ipv4.Fragment(outer, mtu)
			if err != nil {
				continue
			}
			row.EncapFragments = len(encFrags)
			rows = append(rows, row)
		}
	}
	return rows
}

// OverheadTable renders the sweep.
func OverheadTable(rows []OverheadRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 3.3 — encapsulation size overhead and MTU crossing (MTU=1500)\n")
	fmt.Fprintf(&b, "  %-8s %9s %9s %9s %9s %8s %8s\n",
		"codec", "payload", "plain", "encap", "overhead", "frags", "frags+e")
	for _, r := range rows {
		note := ""
		if r.EncapFragments > r.PlainFragments {
			note = "  <- encapsulation crossed the MTU"
		}
		fmt.Fprintf(&b, "  %-8s %9d %9d %9d %9d %8d %8d%s\n",
			r.Codec, r.PayloadBytes, r.PlainBytes, r.EncapBytes, r.OverheadBytes,
			r.PlainFragments, r.EncapFragments, note)
	}
	return b.String()
}

// TunnelFragmentationResult measures the end-to-end version of E9: the
// same UDP payload sent to a correspondent with and without tunneling,
// counting IP packets that actually crossed the backbone.
type TunnelFragmentationResult struct {
	PayloadBytes  int
	PlainPackets  uint64
	TunnelPackets uint64
	Delivered     bool
}

// RunTunnelFragmentation sends one datagram of the given size Out-DT
// (plain) and Out-IE (tunneled) and counts backbone frames.
func RunTunnelFragmentation(seed int64, payload int) TunnelFragmentationResult {
	res := TunnelFragmentationResult{PayloadBytes: payload}

	countBackbone := func(s *Scenario) uint64 {
		var total uint64
		for _, seg := range s.Net.Sim.Segments() {
			name := seg.Name()
			if strings.HasPrefix(name, "p2p-bb") || strings.HasPrefix(name, "p2p-visitGWA-bb") ||
				strings.HasPrefix(name, "p2p-homeGW-bb") || strings.HasPrefix(name, "p2p-farGW-bb") {
				total += seg.Delivered
			}
		}
		return total
	}

	run := func(tunnel bool) (uint64, bool) {
		s := Build(Options{Seed: seed})
		s.Roam()
		delivered := false
		_, err := s.CHFar.OpenUDP(ipv4.Zero, 6000, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, p []byte) {
			delivered = len(p) == payload
		})
		if err != nil {
			assert.Unreachable("overhead: open CH socket: %v", err)
		}
		var sock interface {
			SendToFrom(srcAddr, dst ipv4.Addr, dstPort uint16, payload []byte) error
		}
		mhSock, err := s.MHHost.OpenUDP(ipv4.Zero, 0, nil)
		assert.NoError(err, "overhead: open MH socket")
		sock = mhSock
		before := countBackbone(s)
		if tunnel {
			// Out-IE: source the packet from the home address; the
			// (pessimistic) selector starts at Out-IE.
			_ = sock.SendToFrom(s.MN.Home(), s.CHFar.FirstAddr(), 6000, make([]byte, payload))
		} else {
			_ = sock.SendToFrom(s.MN.CareOf(), s.CHFar.FirstAddr(), 6000, make([]byte, payload))
		}
		s.Net.RunFor(10 * Second)
		return countBackbone(s) - before, delivered
	}

	res.PlainPackets, res.Delivered = run(false)
	tunnelPackets, deliveredTunnel := run(true)
	res.TunnelPackets = tunnelPackets
	res.Delivered = res.Delivered && deliveredTunnel
	return res
}
