package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/fleet"
)

// The route-optimization experiment (E17): the tier of Section 5 — the
// paper's answer to triangle routing — measured piece by piece against a
// common baseline. Six trials share one seed, schedule and topology
// (foreign agents off, so every configuration moves the same nodes the
// same way):
//
//   - baseline:  notices only; the aware correspondent relearns
//     bindings from the home agent's ICMP notices.
//   - push:      MN-push binding updates (routeopt.Updater).
//   - ha-push:   HA-push alternative (routeopt.HAUpdater).
//   - compact:   compact encapsulation on every tunnel endpoint.
//   - hier:      hierarchical local registration behind the regional
//     gateway agent.
//   - fallback:  MN-push with every update request blackholed — the
//     hard-fallback proof.
//
// The claims E17 asserts, per seed:
//
//   - every trial's own fleet invariants hold (bindings re-form,
//     conversations survive, drops accounted);
//   - push shrinks the correspondent's stale-binding recovery tail
//     (p95) below the notice-only baseline's;
//   - compact carries the same storm with fewer bytes on the home
//     uplink than IPIP;
//   - hier collapses the handoff tail (p95) and cuts home-uplink
//     bytes — intra-metro moves never queue on the uplink;
//   - fallback loses every update yet keeps every conversation class
//     alive on In-IE triangle routing (acks and learns exactly zero);
//   - byte-identical output across runs, -parallel and -shards.

// RouteOptSpec selects the fleet's shape, exactly like FleetSpec (the
// tier's knobs ride on fleet.RouteOptOptions defaults).
type RouteOptSpec = FleetSpec

// RouteOptTrial is one configuration's outcome.
type RouteOptTrial struct {
	Name string
	fleet.Result
}

// RouteOptResult is one E17 run: the six trials plus the cross-trial
// claims, folded into Violations (empty means E17 holds).
type RouteOptResult struct {
	Trials     []RouteOptTrial
	Violations []string
}

// routeOptConfigs returns the trial matrix in render order.
func routeOptConfigs() []struct {
	name string
	ro   fleet.RouteOptOptions
} {
	return []struct {
		name string
		ro   fleet.RouteOptOptions
	}{
		{"baseline", fleet.RouteOptOptions{Enabled: true}},
		{"push", fleet.RouteOptOptions{PushUpdates: true}},
		{"ha-push", fleet.RouteOptOptions{PushFromHA: true}},
		{"compact", fleet.RouteOptOptions{Compact: true}},
		{"hier", fleet.RouteOptOptions{Hierarchical: true}},
		{"fallback", fleet.RouteOptOptions{PushUpdates: true, BlackholeUpdates: true}},
	}
}

// RunRouteOpt runs one E17 set: all six configurations at one seed, up
// to workers of them concurrently (they are independent fleets). The
// result is a pure function of (seed, spec).
func RunRouteOpt(seed int64, workers int, spec RouteOptSpec) RouteOptResult {
	configs := routeOptConfigs()
	res := RouteOptResult{Trials: make([]RouteOptTrial, len(configs))}
	parallelEach(workers, len(configs), func(i int) {
		o := fleet.Options{
			Seed:    seed,
			Nodes:   spec.Nodes,
			Cells:   spec.Cells,
			Model:   spec.Model,
			Workers: spec.Shards,
			// Foreign agents off everywhere: Compact forces it, and the
			// other trials must run the identical movement schedule to
			// be comparable.
			FAEvery:  -1,
			RouteOpt: configs[i].ro,
		}
		res.Trials[i] = RouteOptTrial{Name: configs[i].name, Result: fleet.New(o).Run()}
	})
	trial := func(name string) *fleet.Result {
		for i := range res.Trials {
			if res.Trials[i].Name == name {
				return &res.Trials[i].Result
			}
		}
		return nil
	}
	bad := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	for i := range res.Trials {
		t := &res.Trials[i]
		for _, v := range t.Result.Violations {
			bad("%s: %s", t.Name, v)
		}
	}
	base, push, compact, hier, fb := trial("baseline"), trial("push"),
		trial("compact"), trial("hier"), trial("fallback")
	if push.RecoverySamples == 0 || base.RecoverySamples == 0 {
		bad("recovery histogram empty: baseline=%d push=%d samples",
			base.RecoverySamples, push.RecoverySamples)
	} else if push.RecoveryP95 >= base.RecoveryP95 {
		bad("pushed updates did not shrink the correspondent recovery tail: p95 %.1fms (push) >= %.1fms (baseline)",
			float64(push.RecoveryP95)/1e6, float64(base.RecoveryP95)/1e6)
	}
	if compact.UplinkBytes >= base.UplinkBytes {
		bad("compact encapsulation did not reduce home-uplink bytes: %d >= %d (ipip)",
			compact.UplinkBytes, base.UplinkBytes)
	}
	// The hierarchical claim is the tail, not the median: the regional
	// round trip can be a few ms longer than an uncontended home path,
	// but the home uplink's queueing tail — where storm handoffs pile
	// up — vanishes when intra-metro moves never touch it.
	if hier.HandoffP95 >= base.HandoffP95 {
		bad("hierarchical registration did not collapse the handoff tail: p95 %.1fms >= %.1fms",
			float64(hier.HandoffP95)/1e6, float64(base.HandoffP95)/1e6)
	}
	if hier.UplinkBytes >= base.UplinkBytes {
		bad("hierarchical registration did not reduce home-uplink bytes: %d >= %d",
			hier.UplinkBytes, base.UplinkBytes)
	}
	if fb.PushAcks != 0 || fb.CHUpdatesAccepted != 0 {
		bad("fallback trial: blackholed updates got through (acks=%d accepted=%d)",
			fb.PushAcks, fb.CHUpdatesAccepted)
	}
	return res
}

// RunRouteOptParallel runs trials E17 sets (seeds seed..seed+trials-1).
// The worker budget is shared: each set fans its six configurations out
// on the same pool via parallelEach's sequential fallback, so results
// are in seed order and identical to the serial run for any count.
func RunRouteOptParallel(seed int64, trials, workers int, spec RouteOptSpec) []RouteOptResult {
	rows := make([]RouteOptResult, trials)
	if trials == 1 {
		// A single set gets the whole budget for its configurations.
		rows[0] = RunRouteOpt(seed, workers, spec)
		return rows
	}
	parallelEach(workers, trials, func(i int) {
		rows[i] = RunRouteOpt(seed+int64(i), 1, spec)
	})
	return rows
}

// RouteOptTable renders E17: one line per configuration with the
// handoff and recovery quantiles, bytes on the home uplink, and the
// push/regional accounting — the with/without overhead table of the
// tier.
func RouteOptTable(rows []RouteOptResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E17 — route-optimization tier (pushed updates, compact encap, hierarchical registration)\n")
	for i := range rows {
		r := &rows[i]
		if len(r.Trials) == 0 {
			continue
		}
		first := &r.Trials[0].Result
		fmt.Fprintf(&b, "  seed %d: %d nodes, %d cells, %s model\n",
			first.Seed, first.Nodes, first.Cells, first.Model)
		fmt.Fprintf(&b, "  %-9s %9s %9s %9s %9s %9s %8s %6s %6s %8s %8s %7s %5s\n",
			"config", "p50(ms)", "p95(ms)", "p99(ms)", "rec50", "rec95",
			"uplinkB", "sent", "acks", "abandon", "regregs", "relay", "viol")
		for j := range r.Trials {
			t := &r.Trials[j]
			fmt.Fprintf(&b, "  %-9s %9.1f %9.1f %9.1f %9.1f %9.1f %8d %6d %6d %8d %8d %7d %5d\n",
				t.Name,
				float64(t.HandoffP50)/1e6, float64(t.HandoffP95)/1e6, float64(t.HandoffP99)/1e6,
				float64(t.RecoveryP50)/1e6, float64(t.RecoveryP95)/1e6,
				t.UplinkBytes, t.PushUpdatesSent, t.PushAcks, t.PushAbandons,
				t.RegionalRegistrations, t.GFADownRelayed+t.GFAUpRelayed,
				len(t.Result.Violations))
		}
		for _, v := range r.Violations {
			fmt.Fprintf(&b, "  seed %d VIOLATION: %s\n", first.Seed, v)
		}
	}
	return b.String()
}
