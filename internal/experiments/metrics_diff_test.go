package experiments

import (
	"strings"
	"testing"
)

// Differential tests: the metrics pipeline must be a pure function of
// the experiment inputs. Serial and parallel execution, and re-execution,
// must produce byte-identical reports — any divergence means a counter
// is shared across scenarios or depends on scheduling.

func TestGridReportIdenticalAcrossWorkers(t *testing.T) {
	serial := RunGridReport(5, 1).JSON()
	if !strings.Contains(serial, `"out": "Out-IE"`) {
		t.Fatalf("report JSON missing cells:\n%s", serial)
	}
	for _, workers := range []int{4, 8} {
		if got := RunGridReport(5, workers).JSON(); got != serial {
			t.Errorf("report with %d workers differs from serial run:\nserial:\n%s\nparallel:\n%s", workers, serial, got)
		}
	}
}

func TestGridReportIdenticalAcrossSeeds(t *testing.T) {
	// The grid exchange involves no randomness — topology, latencies and
	// the single echo are all deterministic — so the report is the same
	// for every seed, which is what makes it a regression artifact.
	a := RunGridReport(1, 4).JSON()
	b := RunGridReport(0x5eed, 4).JSON()
	if a != b {
		t.Errorf("grid report depends on the seed:\nseed 1:\n%s\nseed 0x5eed:\n%s", a, b)
	}
}

func TestChaosMetricsSnapshotDeterministic(t *testing.T) {
	a := RunChaos(11)
	b := RunChaos(11)
	aj, bj := string(a.Metrics.JSON()), string(b.Metrics.JSON())
	if aj != bj {
		t.Errorf("chaos metrics snapshots diverged for the same seed:\n%s\nvs:\n%s", aj, bj)
	}
	if len(a.Series) == 0 || len(a.Series) != len(b.Series) {
		t.Fatalf("sampler series lengths = %d/%d, want equal and nonzero", len(a.Series), len(b.Series))
	}
	for i := range a.Series {
		if a.Series[i].At != b.Series[i].At {
			t.Fatalf("sample %d at %v vs %v", i, a.Series[i].At, b.Series[i].At)
		}
		if string(a.Series[i].Snap.JSON()) != string(b.Series[i].Snap.JSON()) {
			t.Errorf("sample %d snapshot differs", i)
		}
	}
	// And the parallel trial runner hands back the same per-trial
	// snapshot the serial call produces.
	rows := RunChaosParallel(11, 2, 2)
	if got := string(rows[0].Metrics.JSON()); got != aj {
		t.Errorf("parallel trial 0 metrics differ from serial RunChaos(11):\n%s\nvs:\n%s", got, aj)
	}
}
