package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/encap"
	"mob4x4/internal/ipv4"
)

// FormatRow is one mode's wire format in the paper's s/d/S/D notation
// (Figures 6-9): lower case is the outer (encapsulating) header, upper
// case the packet the endpoints see.
type FormatRow struct {
	Direction string // "out" or "in"
	Mode      string
	// Encapsulated reports whether an outer header exists.
	Encapsulated bool
	// OuterSrc/OuterDst ("s"/"d") — zero when unencapsulated.
	OuterSrc, OuterDst string
	// InnerSrc/InnerDst ("S"/"D").
	InnerSrc, InnerDst string
}

// Address roles used in the format table, matching the paper's labels.
const (
	roleMH  = "MH (home address)"
	roleCOA = "COA (care-of address)"
	roleHA  = "HA (home agent)"
	roleCH  = "CH (correspondent)"
)

// RunFormats builds each of the eight packet formats with the real codec
// machinery and reports the observed address placement — reproducing the
// diagrams of Figures 6, 7, 8 and 9 as a table (experiments E6+E7).
func RunFormats() []FormatRow {
	home := ipv4.MustParseAddr("36.1.1.3")
	coa := ipv4.MustParseAddr("128.9.1.4")
	ha := ipv4.MustParseAddr("36.1.1.2")
	ch := ipv4.MustParseAddr("17.5.0.2")
	codec := encap.IPIP{}

	role := func(a ipv4.Addr) string {
		switch a {
		case home:
			return roleMH
		case coa:
			return roleCOA
		case ha:
			return roleHA
		case ch:
			return roleCH
		default:
			return a.String()
		}
	}
	payload := []byte("fmt")
	inner := func(src, dst ipv4.Addr) ipv4.Packet {
		return ipv4.Packet{
			Header:  ipv4.Header{Protocol: ipv4.ProtoUDP, Src: src, Dst: dst, TTL: 64},
			Payload: payload,
		}
	}
	plainRow := func(dir, mode string, p ipv4.Packet) FormatRow {
		return FormatRow{
			Direction: dir, Mode: mode,
			InnerSrc: role(p.Src), InnerDst: role(p.Dst),
		}
	}
	encapRow := func(dir, mode string, outer ipv4.Packet) FormatRow {
		in, err := codec.Decapsulate(outer)
		assert.NoError(err, "formats: decapsulate freshly encapsulated packet")
		return FormatRow{
			Direction: dir, Mode: mode, Encapsulated: true,
			OuterSrc: role(outer.Src), OuterDst: role(outer.Dst),
			InnerSrc: role(in.Src), InnerDst: role(in.Dst),
		}
	}

	var rows []FormatRow

	// Figure 7: outgoing encapsulated (Out-IE, Out-DE).
	oie, _ := codec.Encapsulate(inner(home, ch), coa, ha)
	rows = append(rows, encapRow("out", core.OutIE.String(), oie))
	ode, _ := codec.Encapsulate(inner(home, ch), coa, ch)
	rows = append(rows, encapRow("out", core.OutDE.String(), ode))
	// Figure 6: outgoing unencapsulated (Out-DH, Out-DT).
	rows = append(rows, plainRow("out", core.OutDH.String(), inner(home, ch)))
	rows = append(rows, plainRow("out", core.OutDT.String(), inner(coa, ch)))

	// Figure 9: incoming encapsulated (In-IE from the HA, In-DE from the CH).
	iie, _ := codec.Encapsulate(inner(ch, home), ha, coa)
	rows = append(rows, encapRow("in", core.InIE.String(), iie))
	ide, _ := codec.Encapsulate(inner(ch, home), ch, coa)
	rows = append(rows, encapRow("in", core.InDE.String(), ide))
	// Figure 8: incoming unencapsulated (In-DH same segment, In-DT).
	rows = append(rows, plainRow("in", core.InDH.String(), inner(ch, home)))
	rows = append(rows, plainRow("in", core.InDT.String(), inner(ch, coa)))

	return rows
}

// FormatsTable renders the eight formats.
func FormatsTable(rows []FormatRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 6-9 — packet formats (s/d = outer header, S/D = inner)\n")
	fmt.Fprintf(&b, "  %-4s %-7s %-24s %-24s %-24s %-24s\n", "dir", "mode", "s (outer src)", "d (outer dst)", "S (src)", "D (dst)")
	for _, r := range rows {
		os, od := "-", "-"
		if r.Encapsulated {
			os, od = r.OuterSrc, r.OuterDst
		}
		fmt.Fprintf(&b, "  %-4s %-7s %-24s %-24s %-24s %-24s\n", r.Direction, r.Mode, os, od, r.InnerSrc, r.InnerDst)
	}
	return b.String()
}
