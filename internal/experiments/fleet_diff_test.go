package experiments

import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// The E14 differential fixtures: the fleet report and its metrics
// snapshot must be byte-identical run-to-run with the same seed and
// across any -parallel worker count, and must differ across seeds.

// fleetTestSpec is the CI-sized storm (matches the fleet package's own
// small fixture).
var fleetTestSpec = FleetSpec{Nodes: 24, Cells: 4}

func TestFleetReportParallelIdentical(t *testing.T) {
	serial := RunFleetParallel(31, 3, 1, fleetTestSpec)
	want := FleetTable(serial)
	for _, workers := range []int{2, 4} {
		rows := RunFleetParallel(31, 3, workers, fleetTestSpec)
		if got := FleetTable(rows); got != want {
			t.Errorf("FleetTable differs between 1 and %d workers:\n--- serial ---\n%s\n--- %d workers ---\n%s",
				workers, want, workers, got)
		}
		for i := range rows {
			if a, b := string(serial[i].Metrics.JSON()), string(rows[i].Metrics.JSON()); a != b {
				t.Errorf("trial %d metrics snapshot differs at %d workers", i, workers)
			}
		}
	}
}

func TestFleetRepeatSameSeedIdentical(t *testing.T) {
	a := RunFleet(47, fleetTestSpec)
	b := RunFleet(47, fleetTestSpec)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed fleet trials diverged:\n%+v\nvs\n%+v", a, b)
	}
	if string(a.Metrics.JSON()) != string(b.Metrics.JSON()) {
		t.Errorf("same-seed metrics snapshots differ")
	}
}

func TestFleetCrossSeedDiffers(t *testing.T) {
	a := RunFleet(47, fleetTestSpec)
	b := RunFleet(48, fleetTestSpec)
	if string(a.Metrics.JSON()) == string(b.Metrics.JSON()) {
		t.Errorf("seeds 47 and 48 produced byte-identical metrics snapshots")
	}
}

func TestFleetTableReportsViolations(t *testing.T) {
	r := RunFleet(47, fleetTestSpec)
	if len(r.Violations) != 0 {
		t.Fatalf("healthy seed produced violations: %v", r.Violations)
	}
	r.Violations = append(r.Violations, "synthetic violation for rendering")
	out := FleetTable([]FleetResult{r})
	if want := "VIOLATION: synthetic violation for rendering"; !strings.Contains(out, want) {
		t.Errorf("FleetTable output missing %q:\n%s", want, out)
	}
}

// fleetSeed lets CI reproduce a failing smoke: FLEET_SEED=n make fleet-smoke.
func fleetSeed(t *testing.T) int64 {
	if s := os.Getenv("FLEET_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FLEET_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestFleetSmoke is the CI fleet soak: one small storm under -race must
// complete with every invariant intact.
func TestFleetSmoke(t *testing.T) {
	seed := fleetSeed(t)
	r := RunFleet(seed, fleetTestSpec)
	for _, v := range r.Violations {
		t.Errorf("seed %d: %s (reproduce: FLEET_SEED=%d make fleet-smoke)", seed, v, seed)
	}
	if r.Handoffs == 0 || r.Moves == 0 {
		t.Errorf("seed %d: storm moved nothing (moves=%d handoffs=%d)", seed, r.Moves, r.Handoffs)
	}
	if len(r.FaultLog) == 0 {
		t.Errorf("seed %d: empty fault log", seed)
	}
}
