package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/core"
	"mob4x4/internal/dnssim"
	"mob4x4/internal/icmp"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/vtime"
)

// Fig1Result reproduces Figure 1 (Basic Mobile IP): the asymmetric paths
// of a conversation between a conventional correspondent and a roaming
// mobile host.
type Fig1Result struct {
	Ping         PingResult
	HATunneled   uint64
	MHDetunneled uint64
}

// RunFig1 executes experiment E1.
func RunFig1(seed int64) Fig1Result {
	s := Build(Options{Seed: seed, Selector: core.NewSelector(core.StartOptimistic)})
	s.Roam()
	var r Fig1Result
	r.Ping = s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 5*Second)
	r.HATunneled = s.HA.Stats.Forwarded
	r.MHDetunneled = s.MN.Stats.InTunneled
	return r
}

func (r Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — Basic Mobile IP (conventional CH, roaming MH)\n")
	fmt.Fprintf(&b, "  delivered:       %v (reply from %s)\n", r.Ping.Delivered, r.Ping.ReplySource)
	fmt.Fprintf(&b, "  request (In-IE): %d hops  %s\n", r.Ping.RequestHops, r.Ping.RequestPath)
	fmt.Fprintf(&b, "  reply  (Out-DH): %d hops  %s\n", r.Ping.ReplyHops, r.Ping.ReplyPath)
	fmt.Fprintf(&b, "  asymmetry:       request travels %+d hops vs reply\n", r.Ping.RequestHops-r.Ping.ReplyHops)
	fmt.Fprintf(&b, "  HA tunneled=%d, MH detunneled=%d\n", r.HATunneled, r.MHDetunneled)
	return b.String()
}

// Fig2Row is one outgoing mode's fate under source-address filtering.
type Fig2Row struct {
	Mode        core.OutMode
	Sent        int
	Delivered   int
	FilterDrops uint64 // drops recorded at the home boundary during the run
	Path        string
}

// Fig2Result reproduces Figure 2 (and Figure 3, which is the Out-IE row):
// a mobile host away from home replying to a correspondent inside its
// (filtering) home domain.
type Fig2Result struct {
	FilterOn bool
	Rows     []Fig2Row
}

// RunFig2 executes experiments E2+E3. With filterOn, Out-DH dies at the
// home boundary router (Figure 2) while Out-IE and Out-DE survive
// (Figure 3); with it off, everything is delivered.
func RunFig2(seed int64, filterOn bool) Fig2Result {
	res := Fig2Result{FilterOn: filterOn}
	for _, mode := range []core.OutMode{core.OutDH, core.OutDE, core.OutIE} {
		sel := core.NewSelector(core.StartPessimistic)
		m := mode
		sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), ForceMode: &m})
		s := Build(Options{
			Seed:       seed,
			HomeFilter: filterOn,
			Selector:   sel,
			// The Out-DE row needs the target to decapsulate ("recent
			// versions of Linux", Section 6.1); the other rows are
			// unaffected by this capability.
			CHDecap: true,
		})
		s.Roam()

		// The MH pings the correspondent inside its home domain. (MH
		// initiates, so we observe the MH->CH direction: exactly the
		// packets Figure 2 is about.)
		const count = 5
		row := Fig2Row{Mode: mode, Sent: count}
		var delivered int
		prevIC := s.CHHomeIC.OnEchoRequest
		s.CHHomeIC.OnEchoRequest = func(src ipv4.Addr, _ icmp.Message) { delivered++ }
		dropsBefore := homeBoundaryDrops(s)
		var lastReqID uint64
		for i := 0; i < count; i++ {
			_ = s.MHICMP.Ping(ipv4.Zero, s.CHHome.FirstAddr(), 0x0f02, uint16(i+1), []byte("fig2"))
			s.Net.RunFor(2 * Second)
		}
		s.CHHomeIC.OnEchoRequest = prevIC
		row.Delivered = delivered
		row.FilterDrops = homeBoundaryDrops(s) - dropsBefore
		// Path of the last request.
		for _, e := range s.Net.Sim.Trace.Events() {
			if e.Kind == netsim.EventSend && e.Where == "mh" {
				lastReqID = e.PktID
			}
		}
		row.Path = s.Net.Sim.Trace.Path(lastReqID)
		res.Rows = append(res.Rows, row)
	}
	return res
}

func homeBoundaryDrops(s *Scenario) uint64 {
	if s.HomeGW.Filter == nil {
		return 0
	}
	return s.HomeGW.Filter.IngressDrops + s.HomeGW.Filter.EgressDrops
}

func (r Fig2Result) String() string {
	var b strings.Builder
	title := "off (all modes deliverable)"
	if r.FilterOn {
		title = "ON (Figures 2 & 3)"
	}
	fmt.Fprintf(&b, "Figures 2/3 — source-address filtering %s\n", title)
	fmt.Fprintf(&b, "  %-7s %9s %10s %12s  path\n", "mode", "sent", "delivered", "filterdrops")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-7s %9d %10d %12d  %s\n", row.Mode, row.Sent, row.Delivered, row.FilterDrops, row.Path)
	}
	return b.String()
}

// Fig4Row is one point of the triangle-routing sweep.
type Fig4Row struct {
	HADistance int
	InIERTT    vtime.Duration // RTT via home agent (conventional CH)
	InDERTT    vtime.Duration // RTT with direct delivery (smart CH)
	InIEHops   int
	InDEHops   int
}

// RunFig4 executes experiment E4: the correspondent is one LAN away from
// the mobile host, and the home agent's distance from the backbone is
// swept. Indirect delivery cost grows with home-agent distance; direct
// delivery does not (Figure 4's "more efficient if a correspondent host
// could discover that the mobile host is nearby").
func RunFig4(seed int64, distances []int) []Fig4Row {
	var rows []Fig4Row
	for _, d := range distances {
		row := Fig4Row{HADistance: d}

		// Conventional correspondent: everything via the home agent.
		s := Build(Options{Seed: seed, HADistance: d, Selector: core.NewSelector(core.StartOptimistic)})
		s.Roam()
		p := s.PingFrom(s.CHNearIC, s.CHNear, s.MN.Home(), 20*Second)
		row.InIERTT, row.InIEHops = p.RTT, p.RequestHops

		// Smart correspondent with the binding already learned: In-DE.
		s2 := Build(Options{Seed: seed, HADistance: d, CHAware: true, CHDecap: true,
			Selector: core.NewSelector(core.StartOptimistic)})
		careOf := s2.Roam()
		s2.CHNearC.LearnBinding(core.Binding{Home: s2.MN.Home(), CareOf: careOf}, 0)
		p2 := s2.PingFrom(s2.CHNearIC, s2.CHNear, s2.MN.Home(), 20*Second)
		row.InDERTT, row.InDEHops = p2.RTT, p2.RequestHops

		rows = append(rows, row)
	}
	return rows
}

// Fig4Table renders the sweep.
func Fig4Table(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — triangle routing vs home-agent distance (CH one LAN from MH)\n")
	fmt.Fprintf(&b, "  %-10s %14s %14s %10s %10s %8s\n", "HAdist", "In-IE RTT", "In-DE RTT", "IE hops", "DE hops", "ratio")
	for _, r := range rows {
		ratio := float64(r.InIERTT) / float64(r.InDERTT)
		fmt.Fprintf(&b, "  %-10d %14v %14v %10d %10d %8.2f\n",
			r.HADistance, r.InIERTT, r.InDERTT, r.InIEHops, r.InDEHops, ratio)
	}
	return b.String()
}

// Fig5Result reproduces Figure 5 / experiment E5: a smart correspondent
// learns the care-of address (via the HA's ICMP binding notice, and
// separately via a DNS CA record) and switches from indirect to direct
// delivery.
type Fig5Result struct {
	// Pings in order; the first goes via the HA, later ones directly.
	Hops         []int
	RTTs         []vtime.Duration
	SwitchedAt   int // index of the first direct delivery (-1 if never)
	ViaDNSWorked bool
	DNSCareOf    ipv4.Addr
}

// RunFig5 executes experiment E5.
func RunFig5(seed int64) Fig5Result {
	s := Build(Options{
		Seed: seed, Notices: true, CHAware: true, CHDecap: true, WithServices: true,
		Selector: core.NewSelector(core.StartOptimistic),
	})
	careOf := s.Roam()

	res := Fig5Result{SwitchedAt: -1}
	const count = 4
	for i := 0; i < count; i++ {
		p := s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 20*Second)
		res.Hops = append(res.Hops, p.RequestHops)
		res.RTTs = append(res.RTTs, p.RTT)
		if res.SwitchedAt < 0 && s.CHFarC.Stats.SentInDE > 0 {
			res.SwitchedAt = i
		}
	}

	// Second discovery mechanism: the DNS CA record. The MH registers
	// its care-of address; a resolver on the far host sees both records.
	s.DNS.SetCA("mh.mosquitonet.stanford.edu", careOf, 120)
	resolver, err := dnssim.NewResolver(s.CHFar, s.Net.Host("dns").FirstAddr())
	if err == nil {
		resolver.Query("mh.mosquitonet.stanford.edu", func(recs []dnssim.Record, qerr error) {
			if qerr != nil {
				return
			}
			if addr, isCareOf, ok := dnssim.BestAddr(recs); ok && isCareOf && addr == careOf {
				res.ViaDNSWorked = true
				res.DNSCareOf = addr
			}
		})
		s.Net.RunFor(5 * Second)
	}
	return res
}

func (r Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 — smart correspondent host (binding discovery)\n")
	for i, h := range r.Hops {
		mode := "In-IE (via HA)"
		if r.SwitchedAt >= 0 && i >= r.SwitchedAt {
			mode = "In-DE (direct)"
		}
		fmt.Fprintf(&b, "  ping %d: %2d hops  rtt=%-10v %s\n", i+1, h, r.RTTs[i], mode)
	}
	fmt.Fprintf(&b, "  ICMP notice switch after ping %d; DNS CA discovery worked: %v (%s)\n",
		r.SwitchedAt+1, r.ViaDNSWorked, r.DNSCareOf)
	return b.String()
}
