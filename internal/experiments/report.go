package experiments

import (
	"fmt"
	"strings"
)

// Report runs every experiment at the given seed and renders one
// markdown-ish document — the machine-generated companion to
// EXPERIMENTS.md. `cmd/mob4x4 report` prints it; CI-style checks can diff
// successive runs (the simulation is deterministic per seed).
func Report(seed int64) string {
	var b strings.Builder
	section := func(title, body string) {
		fmt.Fprintf(&b, "## %s\n\n```\n%s```\n\n", title, body)
	}
	fmt.Fprintf(&b, "# Internet Mobility 4x4 — measured results (seed %d)\n\n", seed)

	section("E1 — Figure 1, basic Mobile IP", RunFig1(seed).String())
	section("E2/E3 — Figures 2 & 3, filtering and tunneling",
		RunFig2(seed, true).String()+RunFig2(seed, false).String())
	section("E4 — Figure 4, triangle routing",
		Fig4Table(RunFig4(seed, []int{0, 1, 2, 4, 8, 16})))
	section("E5 — Figure 5, care-of discovery", RunFig5(seed).String())
	section("E6/E7 — Figures 6-9, packet formats", FormatsTable(RunFormats()))

	grid := RunGrid(seed)
	agree, total, _ := GridAgreement(grid)
	section("E8 — Figure 10, the grid",
		GridTable(grid)+fmt.Sprintf("agreement with the paper: %d/%d\n", agree, total))

	section("E9 — §3.3, encapsulation overhead",
		OverheadTable(RunOverhead([]int{64, 1400, 1470, 1475, 1500, 4000}, 1500)))
	fr := RunTunnelFragmentation(seed, 1460)
	fmt.Fprintf(&b, "end-to-end fragmentation: %d plain vs %d tunneled backbone packets (delivered=%v)\n\n",
		fr.PlainPackets, fr.TunnelPackets, fr.Delivered)

	section("E10 — §7.1.2, start strategies",
		AdaptiveTable(RunAdaptive(seed, true))+AdaptiveTable(RunAdaptive(seed, false)))
	section("E11 — §2, durability", DurabilityTable([]DurabilityResult{
		RunDurability(seed, true, 3), RunDurability(seed, false, 3),
	}))
	mip := RunWebBrowse(seed, 5, true)
	dt := RunWebBrowse(seed, 5, false)
	section("Row D — web browsing", fmt.Sprintf(
		"mobileip: %d/%d in %v, %dB backbone\nout-dt:   %d/%d in %v, %dB backbone\n",
		mip.Completed, mip.Fetches, mip.TotalTime, mip.BackboneBytes,
		dt.Completed, dt.Fetches, dt.TotalTime, dt.BackboneBytes))
	section("§2 — attachment styles", FATable([]FAResult{
		RunForeignAgent(seed, false), RunForeignAgent(seed, true),
	}))
	section("E12 — §7.2, correspondent transitions",
		RunCorrespondentTransitions(seed).String()+"\n")
	section("§6.4 — multicast", MulticastTable([]MulticastResult{
		RunMulticast(seed, true, 10), RunMulticast(seed, false, 10),
	}))
	section("§1 — both hosts mobile", RunDualMobile(seed).String())
	section("§2 — path asymmetry", RunAsymmetry(seed).String())
	section("§3.2 — shared-resource load", SavingsTable(RunSavings(seed)))
	section("tunnel opacity (traceroute)", TraceTable(RunTraceroutes(seed)))
	return b.String()
}
