package experiments

import "testing"

func TestMulticastLocalVsRelay(t *testing.T) {
	local := RunMulticast(23, true, 5)
	relay := RunMulticast(23, false, 5)

	if local.PacketsGot != 5 || relay.PacketsGot != 5 {
		t.Fatalf("delivery: local=%d relay=%d, want 5/5", local.PacketsGot, relay.PacketsGot)
	}
	// The paper's point: the local join involves no tunnel and no
	// routers; the relay tunnels every packet across the internet.
	if local.Tunneled != 0 || local.RouterForwards != 0 {
		t.Errorf("local join cost: tunneled=%d forwards=%d, want 0/0",
			local.Tunneled, local.RouterForwards)
	}
	if relay.Tunneled != 5 {
		t.Errorf("relay tunneled = %d, want 5", relay.Tunneled)
	}
	if relay.RouterForwards == 0 {
		t.Error("relay used no routers?")
	}
}

func TestTraceroutesShowTunnelOpacity(t *testing.T) {
	rows := RunTraceroutes(29)
	if len(rows) != 2 {
		t.Fatal("want 2 traceroutes")
	}
	home, roamed := rows[0], rows[1]

	reached := func(r TraceResult) (bool, int, int) {
		silent := 0
		for _, h := range r.Hops {
			if h.From.IsZero() {
				silent++
			}
			if h.Reached {
				return true, len(r.Hops), silent
			}
		}
		return false, len(r.Hops), silent
	}
	homeOK, homeHops, homeSilent := reached(home)
	roamOK, roamHops, roamSilent := reached(roamed)

	if !homeOK || !roamOK {
		t.Fatalf("traceroute did not reach: home=%v roamed=%v", homeOK, roamOK)
	}
	if homeSilent != 0 {
		t.Errorf("at-home trace has %d silent hops", homeSilent)
	}
	// Roamed: the tunnel swallows the probes that expire inside it, so
	// the trace shows silent hops and a longer total.
	if roamSilent == 0 {
		t.Error("roamed trace shows no silent hops; the tunnel should hide its interior")
	}
	if roamHops <= homeHops {
		t.Errorf("roamed trace (%d hops) not longer than at-home (%d)", roamHops, homeHops)
	}
}
