package experiments

import (
	"testing"

	"mob4x4/internal/core"
)

func TestFig1Shape(t *testing.T) {
	r := RunFig1(1)
	if !r.Ping.Delivered {
		t.Fatalf("ping not delivered: %s", r.String())
	}
	if r.HATunneled != 1 || r.MHDetunneled != 1 {
		t.Errorf("tunnel counts = %d/%d, want 1/1", r.HATunneled, r.MHDetunneled)
	}
	// Figure 1's asymmetry: the incoming path (via the home agent) is
	// strictly longer than the direct outgoing path.
	if r.Ping.RequestHops <= r.Ping.ReplyHops {
		t.Errorf("expected request hops (%d) > reply hops (%d); paths:\n in: %s\n out: %s",
			r.Ping.RequestHops, r.Ping.ReplyHops, r.Ping.RequestPath, r.Ping.ReplyPath)
	}
}

func TestFig2FilteringOn(t *testing.T) {
	r := RunFig2(1, true)
	for _, row := range r.Rows {
		switch row.Mode {
		case core.OutDH:
			// Figure 2: every Out-DH packet dies at the boundary.
			if row.Delivered != 0 {
				t.Errorf("Out-DH delivered %d/%d with filtering on; want 0\npath: %s",
					row.Delivered, row.Sent, row.Path)
			}
			if row.FilterDrops == 0 {
				t.Error("Out-DH: no filter drops recorded at home boundary")
			}
		case core.OutDE, core.OutIE:
			// Figure 3: tunneling restores deliverability.
			if row.Delivered != row.Sent {
				t.Errorf("%s delivered %d/%d with filtering on; want all\npath: %s",
					row.Mode, row.Delivered, row.Sent, row.Path)
			}
		}
	}
}

func TestFig2FilteringOff(t *testing.T) {
	r := RunFig2(1, false)
	for _, row := range r.Rows {
		if row.Delivered != row.Sent {
			t.Errorf("%s delivered %d/%d with filtering off; want all\npath: %s",
				row.Mode, row.Delivered, row.Sent, row.Path)
		}
		if row.FilterDrops != 0 {
			t.Errorf("%s: %d filter drops with filtering off", row.Mode, row.FilterDrops)
		}
	}
}

func TestFig4TrianglePenaltyGrows(t *testing.T) {
	rows := RunFig4(1, []int{0, 2, 4, 8})
	for i, r := range rows {
		if r.InIERTT <= r.InDERTT {
			t.Errorf("d=%d: In-IE RTT %v not greater than In-DE RTT %v",
				r.HADistance, r.InIERTT, r.InDERTT)
		}
		if i > 0 {
			prev := rows[i-1]
			if r.InIERTT <= prev.InIERTT {
				t.Errorf("In-IE RTT did not grow with distance: d=%d %v vs d=%d %v",
					r.HADistance, r.InIERTT, prev.HADistance, prev.InIERTT)
			}
			if r.InDERTT != prev.InDERTT {
				t.Errorf("In-DE RTT changed with HA distance: d=%d %v vs d=%d %v (direct path must not involve the HA)",
					r.HADistance, r.InDERTT, prev.HADistance, prev.InDERTT)
			}
		}
	}
}

func TestFig5Discovery(t *testing.T) {
	r := RunFig5(1)
	if len(r.Hops) < 2 {
		t.Fatalf("too few pings: %v", r.Hops)
	}
	if r.SwitchedAt < 0 {
		t.Fatalf("correspondent never switched to In-DE:\n%s", r.String())
	}
	first, last := r.Hops[0], r.Hops[len(r.Hops)-1]
	if first <= last {
		t.Errorf("hops did not drop after discovery: first=%d last=%d", first, last)
	}
	if !r.ViaDNSWorked {
		t.Error("DNS CA-record discovery failed")
	}
}

func TestGridMatchesPaperClassification(t *testing.T) {
	cells := RunGrid(1)
	if len(cells) != 16 {
		t.Fatalf("got %d cells, want 16", len(cells))
	}
	matches, total, mismatches := GridAgreement(cells)
	if matches != total {
		for _, c := range mismatches {
			t.Errorf("cell %s: class=%v deliveredIn=%v deliveredOut=%v consistent=%v",
				c.Combo, c.Class, c.DeliveredIn, c.DeliveredOut, c.Consistent)
		}
		t.Fatalf("grid agreement %d/%d\n%s", matches, total, GridTable(cells))
	}
	// Count classes: 7 useful, 3 valid-unlikely, 6 broken.
	counts := map[core.Class]int{}
	for _, c := range cells {
		counts[c.Class]++
	}
	if counts[core.Useful] != 7 || counts[core.ValidUnlikely] != 3 || counts[core.Broken] != 6 {
		t.Errorf("class counts = %v, want 7/3/6", counts)
	}
}

func TestGridHopShapes(t *testing.T) {
	cells := RunGrid(1)
	byCombo := map[core.Combo]GridCell{}
	for _, c := range cells {
		byCombo[c.Combo] = c
	}
	// In-IE incoming must travel further than In-DE incoming (triangle).
	ieIn := byCombo[core.Combo{In: core.InIE, Out: core.OutDH}].InHops
	deIn := byCombo[core.Combo{In: core.InDE, Out: core.OutDH}].InHops
	if ieIn <= deIn {
		t.Errorf("In-IE hops (%d) not greater than In-DE hops (%d)", ieIn, deIn)
	}
	// Same-segment delivery involves no routers at all.
	dhdh := byCombo[core.Combo{In: core.InDH, Out: core.OutDH}]
	if dhdh.InHops != 0 || dhdh.OutHops != 0 {
		t.Errorf("In-DH/Out-DH hops = %d/%d, want 0/0", dhdh.InHops, dhdh.OutHops)
	}
	// Out-IE replies travel further than Out-DH replies.
	outIE := byCombo[core.Combo{In: core.InIE, Out: core.OutIE}].OutHops
	outDH := byCombo[core.Combo{In: core.InIE, Out: core.OutDH}].OutHops
	if outIE <= outDH {
		t.Errorf("Out-IE hops (%d) not greater than Out-DH hops (%d)", outIE, outDH)
	}
}
