package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

// DurabilityResult is experiment E11 (Section 2's connection-durability
// requirement vs Section 4's Out-DT trade-off): a long-lived interactive
// session while the mobile host moves between visited networks.
type DurabilityResult struct {
	Endpoint string // "home" or "temporary"
	Moves    int
	// EchoesBeforeMove and EchoesAfterMoves count request/response round
	// trips completed in each epoch.
	EchoesBeforeMove int
	EchoesAfterMoves int
	// Survived reports whether the connection was still usable at the
	// end (home-address sessions must survive; temporary-address
	// sessions must not).
	Survived bool
	// ConnError is the error the transport reported, if any.
	ConnError string
	// ReconnectsNeeded is how many fresh connections an application
	// using temporary addresses would have needed (the Web-browser
	// 'reload' model).
	ReconnectsNeeded int
}

// RunDurability executes E11 for one endpoint choice.
func RunDurability(seed int64, useHomeAddress bool, moves int) DurabilityResult {
	res := DurabilityResult{Endpoint: "temporary", Moves: moves}
	if useHomeAddress {
		res.Endpoint = "home"
	}

	s := Build(Options{Seed: seed, Selector: core.NewSelector(core.StartOptimistic)})
	// E11 reads only connection state and echo counts, never trace events.
	s.Net.Sim.Trace.Discard()
	s.Roam()

	// Echo server on the far correspondent.
	if _, err := s.CHFarTCP.Listen(23, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		assert.Unreachable("durability: start echo server: %v", err)
	}

	local := s.MN.CareOf()
	if useHomeAddress {
		local = s.MN.Home()
	}
	conn, err := s.MHTCP.Dial(local, s.CHFar.FirstAddr(), 23)
	assert.NoError(err, "durability: dial echo server")
	alive := true
	echoes := 0
	conn.OnData = func(p []byte) { echoes++ }
	conn.OnError = func(e error) {
		alive = false
		res.ConnError = e.Error()
	}
	conn.OnEstablished = func() { _ = conn.Write([]byte("keystroke")) }
	// Interactive traffic: one keystroke per second, paced by echoes.
	ticker := func() {}
	ticker = func() {
		if !alive || conn.State() == tcplite.StateClosed {
			return
		}
		_ = conn.Write([]byte("k"))
		s.Net.Sched().After(1*Second, ticker)
	}
	s.Net.Sched().After(1*Second, ticker)

	s.Net.RunFor(10 * Second)
	res.EchoesBeforeMove = echoes

	// Roam between the two visited LANs.
	for i := 0; i < moves; i++ {
		if i%2 == 0 {
			s.RoamB()
		} else {
			s.Roam()
		}
		s.Net.RunFor(10 * Second)
	}
	s.Net.RunFor(30 * Second)

	res.EchoesAfterMoves = echoes - res.EchoesBeforeMove
	res.Survived = alive && conn.State() != tcplite.StateClosed && res.EchoesAfterMoves > 0
	if !res.Survived {
		res.ReconnectsNeeded = moves
	}
	return res
}

// DurabilityTable renders a pair of E11 runs.
func DurabilityTable(rows []DurabilityResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2 — connection durability across movement\n")
	fmt.Fprintf(&b, "  %-10s %6s %12s %12s %9s %11s\n",
		"endpoint", "moves", "echoes-pre", "echoes-post", "survived", "reconnects")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-10s %6d %12d %12d %9v %11d\n",
			r.Endpoint, r.Moves, r.EchoesBeforeMove, r.EchoesAfterMoves, r.Survived, r.ReconnectsNeeded)
	}
	return b.String()
}

// WebBrowseResult compares full Mobile IP against the Out-DT port
// heuristic for short HTTP-like fetches (the Row D motivation: "the large
// cost of slowing down all Web browsing with the overhead of using Mobile
// IP for every connection").
type WebBrowseResult struct {
	Mode          string // "mobileip" or "out-dt"
	Fetches       int
	Completed     int
	TotalTime     vtime.Duration
	BackboneBytes uint64
}

// RunWebBrowse executes the examples/webbrowse measurement: n sequential
// small fetches from the far correspondent.
func RunWebBrowse(seed int64, n int, useMobileIP bool) WebBrowseResult {
	res := WebBrowseResult{Mode: "out-dt", Fetches: n}
	sel := core.NewSelector(core.StartPessimistic) // Out-IE for home traffic
	s := Build(Options{Seed: seed, Selector: sel})
	// Row D reads only segment byte counters, never trace events.
	s.Net.Sim.Trace.Discard()
	s.Roam()

	const page = 8 * 1024
	if _, err := s.CHFarTCP.Listen(80, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) {
			_ = c.Write(make([]byte, page))
			c.Close()
		}
	}); err != nil {
		assert.Unreachable("durability: start page server: %v", err)
	}

	local := s.MN.CareOf()
	if useMobileIP {
		res.Mode = "mobileip"
		local = s.MN.Home()
	}

	start := s.Net.Sim.Now()
	var fetch func(i int)
	fetch = func(i int) {
		if i >= n {
			res.TotalTime = s.Net.Sim.Now().Sub(start)
			return
		}
		conn, err := s.MHTCP.Dial(local, s.CHFar.FirstAddr(), 80)
		if err != nil {
			return
		}
		var got int
		conn.OnEstablished = func() { _ = conn.Write([]byte("GET / HTTP/1.0\r\n\r\n")) }
		conn.OnData = func(p []byte) { got += len(p) }
		conn.OnClose = func() {
			if got >= page {
				res.Completed++
			}
			conn.Close()
			fetch(i + 1)
		}
	}
	fetch(0)
	s.Net.RunFor(vtime.Duration(n) * 30 * Second)
	if res.TotalTime == 0 {
		res.TotalTime = s.Net.Sim.Now().Sub(start) // did not finish
	}

	for _, seg := range s.Net.Sim.Segments() {
		if strings.HasPrefix(seg.Name(), "p2p-") {
			res.BackboneBytes += seg.BytesCarried
		}
	}
	return res
}
