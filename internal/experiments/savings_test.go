package experiments

import "testing"

func TestSavingsOrdering(t *testing.T) {
	rows := RunSavings(53)
	if len(rows) != 3 {
		t.Fatal("want 3 setups")
	}
	conv, aware, near := rows[0], rows[1], rows[2]
	for _, r := range rows {
		if r.Delivered != 20 {
			t.Fatalf("%s: delivered %d/20", r.Setup, r.Delivered)
		}
	}
	// The paper's ordering: every optimization level strictly reduces
	// network work and latency.
	if !(conv.RouterForwards > aware.RouterForwards && aware.RouterForwards > near.RouterForwards) {
		t.Errorf("router forwards not decreasing: %d, %d, %d",
			conv.RouterForwards, aware.RouterForwards, near.RouterForwards)
	}
	if !(conv.BackboneBytes > aware.BackboneBytes && aware.BackboneBytes > near.BackboneBytes) {
		t.Errorf("backbone bytes not decreasing: %d, %d, %d",
			conv.BackboneBytes, aware.BackboneBytes, near.BackboneBytes)
	}
	if !(conv.MeanRTT > aware.MeanRTT && aware.MeanRTT > near.MeanRTT) {
		t.Errorf("mean RTT not decreasing: %.1f, %.1f, %.1f",
			conv.MeanRTT, aware.MeanRTT, near.MeanRTT)
	}
	// Same-segment involves no routers at all after discovery.
	if near.RouterForwards > 2 {
		t.Errorf("same-segment conversation used %d forwards", near.RouterForwards)
	}
}
