package experiments

import (
	"strings"
	"testing"
)

// TestReportCoversEverything smoke-tests the all-experiments document:
// it must run to completion and contain each section with its headline
// agreement intact.
func TestReportCoversEverything(t *testing.T) {
	out := Report(3)
	for _, want := range []string{
		"E1 — Figure 1",
		"E2/E3 — Figures 2 & 3",
		"E4 — Figure 4",
		"E5 — Figure 5",
		"E6/E7 — Figures 6-9",
		"E8 — Figure 10",
		"agreement with the paper: 16/16",
		"E9 — §3.3",
		"E10 — §7.1.2",
		"E11 — §2, durability",
		"Row D — web browsing",
		"§2 — attachment styles",
		"E12 — §7.2",
		"§6.4 — multicast",
		"§1 — both hosts mobile",
		"§2 — path asymmetry",
		"§3.2 — shared-resource load",
		"tunnel opacity",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
	// Deterministic per seed: the reproduction's core guarantee.
	if Report(3) != out {
		t.Error("report not deterministic for a fixed seed")
	}
}
