package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
)

// GridCell is one measured cell of the Figure 10 matrix.
type GridCell struct {
	Combo core.Combo
	// Class is the paper's classification (core.Classify).
	Class core.Class

	// Measured behavior of one request/reply exchange run with the
	// combination forced:
	DeliveredIn  bool // CH's request reached the MH
	DeliveredOut bool // MH's reply reached the CH
	// Consistent reports endpoint consistency: the reply's source
	// address is the address the CH originally targeted. TCP (and every
	// two-way protocol keyed on addresses) requires this; the darkly
	// shaded cells of Figure 10 are exactly the ones that fail it.
	Consistent bool

	InHops  int // router forwardings, CH -> MH (all wrappings included)
	OutHops int // router forwardings, MH -> CH

	// InOverheadBytes/OutOverheadBytes are the encapsulation bytes the
	// mode adds to every packet in that direction (analytic, from the
	// codec; Section 3.3).
	InOverheadBytes  int
	OutOverheadBytes int

	// Requirements renders the cell's caption from Figure 10.
	Requirements string
}

// WorksForTCP is the measured analogue of "would work correctly with
// current protocols such as TCP": both directions delivered and the
// endpoints consistent.
func (c GridCell) WorksForTCP() bool {
	return c.DeliveredIn && c.DeliveredOut && c.Consistent
}

const gridEchoPort = 7777

// RunGrid executes experiment E8: every cell of the 4x4 grid is forced in
// a fresh scenario and measured with a one-shot UDP echo whose reply
// source is pinned to the column's address, mirroring how a transport
// keyed to that address would behave.
func RunGrid(seed int64) []GridCell {
	var cells []GridCell
	for _, combo := range allGridCombos() {
		cells = append(cells, runGridCell(seed, combo))
	}
	return cells
}

// allGridCombos is the cell enumeration shared by the serial and parallel
// grid runners (one fixed order keeps their outputs comparable).
func allGridCombos() []core.Combo { return core.AllCombos() }

func runGridCell(seed int64, combo core.Combo) GridCell {
	cell := GridCell{Combo: combo, Class: core.Classify(combo)}
	var reqs []string
	for _, r := range combo.Requirements() {
		reqs = append(reqs, r.String())
	}
	cell.Requirements = strings.Join(reqs, "; ")

	// Force the MH's outgoing mode for home-sourced traffic.
	sel := core.NewSelector(core.StartPessimistic)
	outMode := combo.Out
	if outMode != core.OutDT {
		m := outMode
		sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), ForceMode: &m})
	}
	aware := combo.In == core.InDE || combo.In == core.InDH
	s := Build(Options{
		Seed:     seed,
		Selector: sel,
		CHAware:  aware,
		CHDecap:  true, // Out-DE must be answerable in every row
	})
	// The grid reads events structurally (Kind/Where/PktID for hop
	// counting); keep the trace, skip the Detail strings.
	s.Net.Sim.Trace.DiscardDetails()
	careOf := s.Roam()

	// Pick the correspondent: same-segment for Row C, distant otherwise.
	ch := s.CHFar
	chC := s.CHFarC
	if combo.In == core.InDH {
		ch = s.CHNear
		chC = s.CHNearC
	}
	if aware {
		chC.LearnBinding(core.Binding{Home: s.MN.Home(), CareOf: careOf}, 0)
	}

	// The address the CH targets (the MH endpoint as the CH knows it).
	target := s.MN.Home()
	if combo.In == core.InDT {
		target = careOf
	}
	// The source the MH's reply is keyed to (the column's address).
	replySrc := s.MN.Home()
	if combo.Out == core.OutDT {
		replySrc = careOf
	}

	// MH echo service with the reply source pinned.
	deliveredIn := false
	var mhSock *stack.UDPSocket
	mhSock, err := s.MHHost.OpenUDP(ipv4.Zero, gridEchoPort, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		deliveredIn = true
		_ = mhSock.SendToFrom(replySrc, src, srcPort, payload)
	})
	assert.NoError(err, "grid: open MH socket")

	deliveredOut := false
	var replyFrom ipv4.Addr
	chSock, err := ch.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		deliveredOut = true
		replyFrom = src
	})
	assert.NoError(err, "grid: open CH socket")

	tr := s.Net.Sim.Trace
	evStart := len(tr.Events())
	_ = chSock.SendTo(target, gridEchoPort, []byte("grid-probe"))
	s.Net.RunFor(10 * Second)

	cell.DeliveredIn = deliveredIn
	cell.DeliveredOut = deliveredOut
	cell.Consistent = deliveredOut && replyFrom == target

	// Hop counts from the trace: first send from the CH is the request,
	// first send from the MH after that is the reply.
	evs := tr.Events()[evStart:]
	var reqID, repID uint64
	for _, e := range evs {
		if e.Kind == netsim.EventSend && e.Where == ch.Name() && reqID == 0 {
			reqID = e.PktID
		}
		if e.Kind == netsim.EventSend && e.Where == s.MHHost.Name() && reqID != 0 && e.PktID > reqID && repID == 0 {
			repID = e.PktID
		}
	}
	cell.InHops = tr.Hops(reqID)
	if repID != 0 {
		cell.OutHops = tr.Hops(repID)
	}

	// Analytic per-packet overhead (Section 3.3): the tunnel header.
	overhead := 20 // IPIP default
	if s.Opts.Codec != nil {
		overhead = s.Opts.Codec.Overhead()
	}
	if combo.In.Encapsulated() {
		cell.InOverheadBytes = overhead
	}
	if combo.Out.Encapsulated() {
		cell.OutOverheadBytes = overhead
	}
	return cell
}

// GridTable renders the measured matrix in Figure 10's layout.
func GridTable(cells []GridCell) string {
	byCombo := make(map[core.Combo]GridCell, len(cells))
	for _, c := range cells {
		byCombo[c.Combo] = c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — Internet Mobility 4x4 (measured)\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, out := range core.OutModes() {
		fmt.Fprintf(&b, " %-22s", out)
	}
	fmt.Fprintln(&b)
	for _, in := range core.InModes() {
		fmt.Fprintf(&b, "%-8s", in)
		for _, out := range core.OutModes() {
			c := byCombo[core.Combo{In: in, Out: out}]
			status := "BROKEN"
			if c.WorksForTCP() {
				status = fmt.Sprintf("ok %d/%dh +%d/%dB", c.InHops, c.OutHops, c.InOverheadBytes, c.OutOverheadBytes)
			}
			mark := map[core.Class]string{
				core.Useful: " ", core.ValidUnlikely: "~", core.Broken: "x",
			}[c.Class]
			fmt.Fprintf(&b, " %s%-21s", mark, status)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "legend: ' '=useful  '~'=valid-but-unlikely  'x'=broken (paper classification)\n")
	fmt.Fprintf(&b, "        cell shows in/out router hops and per-packet encapsulation bytes\n")
	return b.String()
}

// GridAgreement compares the measured matrix against the paper's
// classification and returns (matches, total, mismatches). A cell agrees
// when WorksForTCP() is true exactly for non-Broken cells.
func GridAgreement(cells []GridCell) (int, int, []GridCell) {
	matches := 0
	var mismatches []GridCell
	for _, c := range cells {
		expectWorks := c.Class != core.Broken
		if c.WorksForTCP() == expectWorks {
			matches++
		} else {
			mismatches = append(mismatches, c)
		}
	}
	return matches, len(cells), mismatches
}
