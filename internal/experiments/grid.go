package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/metrics"
	"mob4x4/internal/stack"
	"mob4x4/internal/vtime"
)

// GridCell is one measured cell of the Figure 10 matrix.
type GridCell struct {
	Combo core.Combo
	// Class is the paper's classification (core.Classify).
	Class core.Class

	// Measured behavior of one request/reply exchange run with the
	// combination forced:
	DeliveredIn  bool // CH's request reached the MH
	DeliveredOut bool // MH's reply reached the CH
	// Consistent reports endpoint consistency: the reply's source
	// address is the address the CH originally targeted. TCP (and every
	// two-way protocol keyed on addresses) requires this; the darkly
	// shaded cells of Figure 10 are exactly the ones that fail it.
	Consistent bool

	// Hop counts come from the metrics registry, not the tracer: the
	// request's hops are the IPForwarded delta between the probe's send
	// and its delivery at the MH, the reply's the delta between the echo
	// and its delivery at the CH. One packet is in flight at a time, so
	// the deltas attribute exactly.
	InHops  int // router forwardings, CH -> MH (all wrappings included)
	OutHops int // router forwardings, MH -> CH

	// RTT is the request->reply round trip in virtual time (zero when
	// the reply never arrived).
	RTT vtime.Duration

	// Tunnel work per direction, from the same registry deltas:
	// encapsulations, decapsulations, and tunnel-protocol router
	// forwards for the request (Req*) and the reply (Rep*).
	ReqEncaps, ReqDecaps, ReqTunnelHops uint64
	RepEncaps, RepDecaps, RepTunnelHops uint64

	// Mobile-node mode accounting over the whole exchange window: how
	// many packets (and bytes) the MN sent and received in each of the
	// four modes, indexed by core.OutMode/core.InMode.
	MNOutPackets, MNOutBytes [metrics.NumModes]uint64
	MNInPackets, MNInBytes   [metrics.NumModes]uint64

	// Bytes-on-wire per mode over the same window: tunnel headers
	// included, so MNOutWireBytes-MNOutBytes is the measured (not
	// analytic) encapsulation overhead the route-opt tier shrinks.
	MNOutWireBytes, MNInWireBytes [metrics.NumModes]uint64

	// Drops per cause over the exchange window (all-zero on the healthy
	// grid topology).
	Drops [metrics.NumDropCauses]uint64

	// InOverheadBytes/OutOverheadBytes are the encapsulation bytes the
	// mode adds to every packet in that direction (analytic, from the
	// codec; Section 3.3).
	InOverheadBytes  int
	OutOverheadBytes int

	// Requirements renders the cell's caption from Figure 10.
	Requirements string
}

// WorksForTCP is the measured analogue of "would work correctly with
// current protocols such as TCP": both directions delivered and the
// endpoints consistent.
func (c GridCell) WorksForTCP() bool {
	return c.DeliveredIn && c.DeliveredOut && c.Consistent
}

const gridEchoPort = 7777

// RunGrid executes experiment E8: every cell of the 4x4 grid is forced in
// a fresh scenario and measured with a one-shot UDP echo whose reply
// source is pinned to the column's address, mirroring how a transport
// keyed to that address would behave.
func RunGrid(seed int64) []GridCell {
	var cells []GridCell
	for _, combo := range allGridCombos() {
		cells = append(cells, runGridCell(seed, combo))
	}
	return cells
}

// allGridCombos is the cell enumeration shared by the serial and parallel
// grid runners (one fixed order keeps their outputs comparable).
func allGridCombos() []core.Combo { return core.AllCombos() }

// gridTopo varies the scenario topology for the grid property tests. The
// zero value is the standard Figure 10 topology; the taxonomy must hold
// on every variant.
type gridTopo struct {
	HADistance      int
	LANLatency      vtime.Duration
	BackboneLatency vtime.Duration
}

func runGridCell(seed int64, combo core.Combo) GridCell {
	return runGridCellTopo(seed, combo, gridTopo{})
}

// gridMark is one reading of the registry counters the grid attributes
// per direction.
type gridMark struct {
	fwd, enc, dec, tun uint64
}

func runGridCellTopo(seed int64, combo core.Combo, topo gridTopo) GridCell {
	cell := GridCell{Combo: combo, Class: core.Classify(combo)}
	var reqs []string
	for _, r := range combo.Requirements() {
		reqs = append(reqs, r.String())
	}
	cell.Requirements = strings.Join(reqs, "; ")

	// Force the MH's outgoing mode for home-sourced traffic.
	sel := core.NewSelector(core.StartPessimistic)
	outMode := combo.Out
	if outMode != core.OutDT {
		m := outMode
		sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("0.0.0.0/0"), ForceMode: &m})
	}
	aware := combo.In == core.InDE || combo.In == core.InDH
	s := Build(Options{
		Seed:            seed,
		Selector:        sel,
		CHAware:         aware,
		CHDecap:         true, // Out-DE must be answerable in every row
		HADistance:      topo.HADistance,
		LANLatency:      topo.LANLatency,
		BackboneLatency: topo.BackboneLatency,
		MetricsLabel:    fmt.Sprintf("grid/%s/%s", combo.Out, combo.In),
	})
	// Everything the grid measures comes from the metrics registry; the
	// event trace is pure overhead here.
	s.Net.Sim.Trace.Discard()
	careOf := s.Roam()

	// Pick the correspondent: same-segment for Row C, distant otherwise.
	ch := s.CHFar
	chC := s.CHFarC
	if combo.In == core.InDH {
		ch = s.CHNear
		chC = s.CHNearC
	}
	if aware {
		chC.LearnBinding(core.Binding{Home: s.MN.Home(), CareOf: careOf}, 0)
	}

	// The address the CH targets (the MH endpoint as the CH knows it).
	target := s.MN.Home()
	if combo.In == core.InDT {
		target = careOf
	}
	// The source the MH's reply is keyed to (the column's address).
	replySrc := s.MN.Home()
	if combo.Out == core.OutDT {
		replySrc = careOf
	}

	reg := s.Net.Sim.Metrics
	mark := func() gridMark {
		return gridMark{
			fwd: reg.IPForwarded.Value(),
			enc: reg.Encaps.Value(),
			dec: reg.Decaps.Value(),
			tun: reg.TunnelForwards.Value(),
		}
	}
	read4 := func(cs *[metrics.NumModes]metrics.Counter) (v [metrics.NumModes]uint64) {
		for i := range cs {
			v[i] = cs[i].Value()
		}
		return v
	}

	// MH echo service with the reply source pinned. The mark is taken
	// before the echo goes out so the reply's synchronous encapsulation
	// lands on the reply's side of the split.
	deliveredIn := false
	var atMH gridMark
	var mhSock *stack.UDPSocket
	mhSock, err := s.MHHost.OpenUDP(ipv4.Zero, gridEchoPort, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		deliveredIn = true
		atMH = mark()
		_ = mhSock.SendToFrom(replySrc, src, srcPort, payload)
	})
	assert.NoError(err, "grid: open MH socket")

	deliveredOut := false
	var atCH gridMark
	var replyFrom ipv4.Addr
	sendAt := s.Net.Sim.Now()
	chSock, err := ch.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, srcPort uint16, dst ipv4.Addr, payload []byte) {
		deliveredOut = true
		atCH = mark()
		cell.RTT = s.Net.Sim.Now().Sub(sendAt)
		replyFrom = src
	})
	assert.NoError(err, "grid: open CH socket")

	// Baselines before the probe: the CH's own encapsulation (In-DE)
	// happens synchronously inside SendTo.
	base := mark()
	outP0, outB0 := read4(&reg.OutPackets), read4(&reg.OutBytes)
	inP0, inB0 := read4(&reg.InPackets), read4(&reg.InBytes)
	outW0, inW0 := read4(&reg.OutWireBytes), read4(&reg.InWireBytes)
	var drops0 [metrics.NumDropCauses]uint64
	for c := range drops0 {
		drops0[c] = reg.DropCount(metrics.DropCause(c))
	}
	sendAt = s.Net.Sim.Now()
	_ = chSock.SendTo(target, gridEchoPort, []byte("grid-probe"))
	s.Net.RunFor(10 * Second)

	cell.DeliveredIn = deliveredIn
	cell.DeliveredOut = deliveredOut
	cell.Consistent = deliveredOut && replyFrom == target

	if deliveredIn {
		cell.InHops = int(atMH.fwd - base.fwd)
		cell.ReqEncaps = atMH.enc - base.enc
		cell.ReqDecaps = atMH.dec - base.dec
		cell.ReqTunnelHops = atMH.tun - base.tun
		if deliveredOut {
			cell.OutHops = int(atCH.fwd - atMH.fwd)
			cell.RepEncaps = atCH.enc - atMH.enc
			cell.RepDecaps = atCH.dec - atMH.dec
			cell.RepTunnelHops = atCH.tun - atMH.tun
		}
	}
	outP1, outB1 := read4(&reg.OutPackets), read4(&reg.OutBytes)
	inP1, inB1 := read4(&reg.InPackets), read4(&reg.InBytes)
	outW1, inW1 := read4(&reg.OutWireBytes), read4(&reg.InWireBytes)
	for m := 0; m < metrics.NumModes; m++ {
		cell.MNOutPackets[m] = outP1[m] - outP0[m]
		cell.MNOutBytes[m] = outB1[m] - outB0[m]
		cell.MNInPackets[m] = inP1[m] - inP0[m]
		cell.MNInBytes[m] = inB1[m] - inB0[m]
		cell.MNOutWireBytes[m] = outW1[m] - outW0[m]
		cell.MNInWireBytes[m] = inW1[m] - inW0[m]
	}
	for c := range cell.Drops {
		cell.Drops[c] = reg.DropCount(metrics.DropCause(c)) - drops0[c]
	}

	// Analytic per-packet overhead (Section 3.3): the tunnel header.
	overhead := 20 // IPIP default
	if s.Opts.Codec != nil {
		overhead = s.Opts.Codec.Overhead()
	}
	if combo.In.Encapsulated() {
		cell.InOverheadBytes = overhead
	}
	if combo.Out.Encapsulated() {
		cell.OutOverheadBytes = overhead
	}
	return cell
}

// GridTable renders the measured matrix in Figure 10's layout.
func GridTable(cells []GridCell) string {
	byCombo := make(map[core.Combo]GridCell, len(cells))
	for _, c := range cells {
		byCombo[c.Combo] = c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 10 — Internet Mobility 4x4 (measured)\n")
	fmt.Fprintf(&b, "%-8s", "")
	for _, out := range core.OutModes() {
		fmt.Fprintf(&b, " %-22s", out)
	}
	fmt.Fprintln(&b)
	for _, in := range core.InModes() {
		fmt.Fprintf(&b, "%-8s", in)
		for _, out := range core.OutModes() {
			c := byCombo[core.Combo{In: in, Out: out}]
			status := "BROKEN"
			if c.WorksForTCP() {
				status = fmt.Sprintf("ok %d/%dh +%d/%dB", c.InHops, c.OutHops, c.InOverheadBytes, c.OutOverheadBytes)
			}
			mark := map[core.Class]string{
				core.Useful: " ", core.ValidUnlikely: "~", core.Broken: "x",
			}[c.Class]
			fmt.Fprintf(&b, " %s%-21s", mark, status)
		}
		fmt.Fprintln(&b)
	}
	fmt.Fprintf(&b, "legend: ' '=useful  '~'=valid-but-unlikely  'x'=broken (paper classification)\n")
	fmt.Fprintf(&b, "        cell shows in/out router hops and per-packet encapsulation bytes\n")
	return b.String()
}

// GridAgreement compares the measured matrix against the paper's
// classification and returns (matches, total, mismatches). A cell agrees
// when WorksForTCP() is true exactly for non-Broken cells.
func GridAgreement(cells []GridCell) (int, int, []GridCell) {
	matches := 0
	var mismatches []GridCell
	for _, c := range cells {
		expectWorks := c.Class != core.Broken
		if c.WorksForTCP() == expectWorks {
			matches++
		} else {
			mismatches = append(mismatches, c)
		}
	}
	return matches, len(cells), mismatches
}

// GridCellMetrics is the machine-readable form of one cell, with mode
// and drop counters keyed by name. Zero-valued map entries are elided so
// the JSON states exactly what happened and nothing else.
type GridCellMetrics struct {
	Out           string            `json:"out"`
	In            string            `json:"in"`
	Class         string            `json:"class"`
	DeliveredIn   bool              `json:"delivered_in"`
	DeliveredOut  bool              `json:"delivered_out"`
	Consistent    bool              `json:"consistent"`
	WorksForTCP   bool              `json:"works_for_tcp"`
	InHops        int               `json:"in_hops"`
	OutHops       int               `json:"out_hops"`
	InOverhead    int               `json:"in_overhead_bytes"`
	OutOverhead   int               `json:"out_overhead_bytes"`
	RTTNs         int64             `json:"rtt_ns"`
	ReqEncaps     uint64            `json:"req_encaps"`
	ReqDecaps     uint64            `json:"req_decaps"`
	ReqTunnelHops uint64            `json:"req_tunnel_hops"`
	RepEncaps     uint64            `json:"rep_encaps"`
	RepDecaps     uint64            `json:"rep_decaps"`
	RepTunnelHops uint64            `json:"rep_tunnel_hops"`
	MNOutPackets  map[string]uint64 `json:"mn_out_pkts,omitempty"`
	MNOutBytes    map[string]uint64 `json:"mn_out_bytes,omitempty"`
	MNInPackets   map[string]uint64 `json:"mn_in_pkts,omitempty"`
	MNInBytes     map[string]uint64 `json:"mn_in_bytes,omitempty"`

	// Measured wire cost (tunnel headers included) per mode: the E17
	// bytes-on-wire column, also surfaced per grid cell so header
	// overhead is visible per (Out, In) pair.
	MNOutWireBytes map[string]uint64 `json:"mn_out_wire_bytes,omitempty"`
	MNInWireBytes  map[string]uint64 `json:"mn_in_wire_bytes,omitempty"`
	Drops         map[string]uint64 `json:"drops,omitempty"`
	Requirements  string            `json:"requirements,omitempty"`
}

// nonzeroByName converts a per-mode counter array into a name-keyed map,
// dropping zero entries (nil when all are zero, so omitempty fires).
func nonzeroByName(v [metrics.NumModes]uint64, names [metrics.NumModes]string) map[string]uint64 {
	var m map[string]uint64
	for i, n := range v {
		if n == 0 {
			continue
		}
		if m == nil {
			m = make(map[string]uint64)
		}
		m[names[i]] = n
	}
	return m
}

// CellMetrics converts a measured cell to its report form.
func CellMetrics(c GridCell) GridCellMetrics {
	gm := GridCellMetrics{
		Out:           c.Combo.Out.String(),
		In:            c.Combo.In.String(),
		Class:         c.Class.String(),
		DeliveredIn:   c.DeliveredIn,
		DeliveredOut:  c.DeliveredOut,
		Consistent:    c.Consistent,
		WorksForTCP:   c.WorksForTCP(),
		InHops:        c.InHops,
		OutHops:       c.OutHops,
		InOverhead:    c.InOverheadBytes,
		OutOverhead:   c.OutOverheadBytes,
		RTTNs:         int64(c.RTT),
		ReqEncaps:     c.ReqEncaps,
		ReqDecaps:     c.ReqDecaps,
		ReqTunnelHops: c.ReqTunnelHops,
		RepEncaps:     c.RepEncaps,
		RepDecaps:     c.RepDecaps,
		RepTunnelHops: c.RepTunnelHops,
		MNOutPackets:  nonzeroByName(c.MNOutPackets, metrics.OutModeNames),
		MNOutBytes:    nonzeroByName(c.MNOutBytes, metrics.OutModeNames),
		MNInPackets:   nonzeroByName(c.MNInPackets, metrics.InModeNames),
		MNInBytes:     nonzeroByName(c.MNInBytes, metrics.InModeNames),

		MNOutWireBytes: nonzeroByName(c.MNOutWireBytes, metrics.OutModeNames),
		MNInWireBytes:  nonzeroByName(c.MNInWireBytes, metrics.InModeNames),
		Requirements:  c.Requirements,
	}
	for cause, n := range c.Drops {
		if n == 0 {
			continue
		}
		if gm.Drops == nil {
			gm.Drops = make(map[string]uint64)
		}
		gm.Drops[metrics.DropCause(cause).String()] = n
	}
	return gm
}

// GridReport is the machine-readable 4x4 grid: one entry per cell in the
// fixed AllCombos order. Its JSON is deterministic — same bytes for any
// worker count, because every cell is a pure function of (seed, combo)
// and encoding/json sorts map keys.
type GridReport struct {
	Cells []GridCellMetrics `json:"cells"`
}

// RunGridReport measures all 16 cells (on up to workers goroutines) and
// assembles the report.
func RunGridReport(seed int64, workers int) GridReport {
	cells := RunGridParallel(seed, workers)
	rep := GridReport{Cells: make([]GridCellMetrics, len(cells))}
	for i, c := range cells {
		rep.Cells[i] = CellMetrics(c)
	}
	return rep
}

// JSON renders the report with a trailing newline.
func (r GridReport) JSON() string {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		assert.Unreachable("grid report marshal: %v", err)
	}
	return string(b) + "\n"
}
