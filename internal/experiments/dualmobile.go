package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/tcplite"
)

// DualMobileResult is the §1 claim exercised end to end: "the same
// techniques and optimizations apply equally well if both hosts are
// mobile." Two mobile hosts, each with its own home agent, hold a
// conversation keyed to their home addresses while BOTH roam.
type DualMobileResult struct {
	Established bool
	// Echo counts per epoch: both home, MH1 roamed, both roamed, after
	// both move again.
	EchoesBothHome   int
	EchoesMH1Roamed  int
	EchoesBothRoamed int
	EchoesAfterMoves int
	Survived         bool
	// DoubleTunneled reports whether, with both away, packets traversed
	// both home agents (each direction tunneling through the peer's
	// agent).
	HA1Forwarded uint64
	HA2Forwarded uint64
}

// RunDualMobile executes the dual-mobility session.
func RunDualMobile(seed int64) DualMobileResult {
	s := Build(Options{
		Seed:         seed,
		SecondMobile: true,
		Selector:     core.NewSelector(core.StartPessimistic), // MH1 tunnels out
	})
	var res DualMobileResult

	// MH2 runs the echo service on its home address.
	if _, err := s.MH2TCP.Listen(7, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		assert.Unreachable("dualmobile: start echo server on MH2: %v", err)
	}

	echoes := 0
	alive := true
	conn, err := s.MHTCP.Dial(s.MN.Home(), s.MN2.Home(), 7)
	assert.NoError(err, "dualmobile: dial MH2 echo server")
	conn.OnData = func(p []byte) { echoes++ }
	conn.OnError = func(error) { alive = false }
	conn.OnEstablished = func() {
		res.Established = true
		_ = conn.Write([]byte("k"))
	}
	tick := func() {}
	tick = func() {
		if !alive || conn.State() == tcplite.StateClosed {
			return
		}
		_ = conn.Write([]byte("k"))
		s.Net.Sched().After(1*Second, tick)
	}
	s.Net.Sched().After(1*Second, tick)

	s.Net.RunFor(8 * Second)
	res.EchoesBothHome = echoes

	// MH1 roams to visited LAN A.
	s.Roam()
	s.Net.RunFor(8 * Second)
	res.EchoesMH1Roamed = echoes - res.EchoesBothHome

	// MH2 roams to visited LAN B: both hosts are now away from home.
	coa2 := s.VisitB.NextAddr()
	s.MN2.MoveTo(s.VisitB.Seg, coa2, s.VisitB.Prefix, s.VisitB.Gateway)
	s.Net.RunFor(8 * Second)
	res.EchoesBothRoamed = echoes - res.EchoesBothHome - res.EchoesMH1Roamed

	// Both move again simultaneously.
	s.RoamB()
	coa2b := s.VisitA.NextAddr()
	s.MN2.MoveTo(s.VisitA.Seg, coa2b, s.VisitA.Prefix, s.VisitA.Gateway)
	s.Net.RunFor(12 * Second)
	res.EchoesAfterMoves = echoes - res.EchoesBothHome - res.EchoesMH1Roamed - res.EchoesBothRoamed

	res.Survived = alive && conn.State() != tcplite.StateClosed && res.EchoesAfterMoves > 0
	res.HA1Forwarded = s.HA.Stats.Forwarded
	res.HA2Forwarded = s.HA2.Stats.Forwarded
	return res
}

func (r DualMobileResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§1 — both hosts mobile (home-keyed session, both roam twice)\n")
	fmt.Fprintf(&b, "  established=%v survived=%v\n", r.Established, r.Survived)
	fmt.Fprintf(&b, "  echoes: both-home=%d mh1-roamed=%d both-roamed=%d after-more-moves=%d\n",
		r.EchoesBothHome, r.EchoesMH1Roamed, r.EchoesBothRoamed, r.EchoesAfterMoves)
	fmt.Fprintf(&b, "  HA1 tunneled=%d, HA2 tunneled=%d (both agents working at once)\n",
		r.HA1Forwarded, r.HA2Forwarded)
	return b.String()
}
