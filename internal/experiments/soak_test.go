package experiments

import (
	"fmt"
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/tcplite"
)

// TestSoakManyCorrespondentsAndChurn is the stress test: the mobile host
// talks to many correspondents with mixed modes while moving repeatedly.
// Every conversation keyed to the home address must survive all the
// churn; the per-correspondent method cache must hold one entry per peer.
func TestSoakManyCorrespondentsAndChurn(t *testing.T) {
	sel := core.NewSelector(core.StartOptimistic)
	s := Build(Options{Seed: 99, Selector: sel})

	// A fleet of echo servers on the far LAN.
	const peers = 12
	type peer struct {
		host ipv4.Addr
		conn *tcplite.Conn
		rx   int
		dead bool
	}
	var ps []*peer
	for i := 0; i < peers; i++ {
		h := s.Net.AddHost(fmt.Sprintf("peer%d", i), s.FarLAN)
		ep := tcplite.New(h)
		if _, err := ep.Listen(7, func(c *tcplite.Conn) {
			c.OnData = func(b []byte) { _ = c.Write(b) }
		}); err != nil {
			t.Fatal(err)
		}
		ps = append(ps, &peer{host: h.FirstAddr()})
	}
	s.Net.ComputeRoutes()
	s.Roam()

	for _, p := range ps {
		conn, err := s.MHTCP.Dial(s.MN.Home(), p.host, 7)
		if err != nil {
			t.Fatal(err)
		}
		pp := p
		conn.OnData = func(b []byte) { pp.rx += len(b) }
		conn.OnError = func(error) { pp.dead = true }
		conn.OnEstablished = func() { _ = conn.Write([]byte("0")) }
		p.conn = conn
		// Keep each conversation chattering.
		tick := func() {}
		tick = func() {
			if pp.dead || pp.conn.State() == tcplite.StateClosed {
				return
			}
			_ = pp.conn.Write([]byte("k"))
			s.Net.Sched().After(2*Second, tick)
		}
		s.Net.Sched().After(2*Second, tick)
	}
	s.Net.RunFor(10 * Second)

	// Churn: six moves between the two visited LANs.
	for i := 0; i < 6; i++ {
		if i%2 == 0 {
			s.RoamB()
		} else {
			s.Roam()
		}
		s.Net.RunFor(10 * Second)
	}
	s.Net.RunFor(20 * Second)

	for i, p := range ps {
		if p.dead {
			t.Errorf("peer %d: connection died", i)
		}
		if p.rx == 0 {
			t.Errorf("peer %d: no echoes at all", i)
		}
	}
	if got := sel.CacheLen(); got > peers+2 {
		t.Errorf("method cache holds %d entries for %d peers", got, peers)
	}
	// Determinism sanity on a big run: the tracer never saw a filter
	// drop (no filters configured) and the HA kept exactly one binding.
	if s.HA.Bindings() != 1 {
		t.Errorf("bindings = %d", s.HA.Bindings())
	}
}
