package experiments

import (
	"os"
	"path/filepath"
	"sort"
	"sync"

	"mob4x4/internal/pcap"
)

// Capture registry: experiments that tap the NIC boundary (httpgrid)
// register their per-scenario writers here, and cmd/mob4x4's -pcap flag
// names the directory they are written to after the run. Registration is
// guarded because the parallel cell runners register concurrently; the
// bytes inside each writer are a pure function of (seed, cell) and never
// depend on worker count.
var (
	captureMu  sync.Mutex
	captureDir string
	captures   map[string]*pcap.Writer
)

// SetCaptureDir enables capture collection into dir for all subsequently
// run capture-aware experiments (empty disables and drops anything
// collected). Not safe to call concurrently with a running experiment.
func SetCaptureDir(dir string) {
	captureMu.Lock()
	defer captureMu.Unlock()
	captureDir = dir
	captures = nil
	if dir != "" {
		captures = make(map[string]*pcap.Writer)
	}
}

// registerCapture records a finished writer under label when collection
// is enabled. Later registrations under the same label win (labels are
// unique per run in practice).
func registerCapture(label string, w *pcap.Writer) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if captures != nil {
		captures[label] = w
	}
}

// WriteCaptures writes every registered capture to <dir>/<label>.pcap in
// sorted label order and reports how many files it wrote. A no-op (0,
// nil) when no directory is set or nothing was captured.
func WriteCaptures() (int, error) {
	captureMu.Lock()
	defer captureMu.Unlock()
	if captureDir == "" || len(captures) == 0 {
		return 0, nil
	}
	if err := os.MkdirAll(captureDir, 0o755); err != nil {
		return 0, err
	}
	labels := make([]string, 0, len(captures))
	for l := range captures {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	for _, l := range labels {
		if err := os.WriteFile(filepath.Join(captureDir, l+".pcap"), captures[l].Bytes(), 0o644); err != nil {
			return 0, err
		}
	}
	return len(labels), nil
}
