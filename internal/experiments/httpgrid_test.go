package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/pcap"
)

// TestHTTPGridAllCellsComplete: the E16 acceptance — an unmodified
// net/http round trip and a DNS exchange complete over the facade in
// every one of the 16 (Out,In) pairs.
func TestHTTPGridAllCellsComplete(t *testing.T) {
	cells := RunHTTPGridParallel(1, 8)
	if len(cells) != 16 {
		t.Fatalf("got %d cells", len(cells))
	}
	for _, c := range cells {
		if c.Err != "" {
			t.Errorf("%s/%s: transport error %q", c.Combo.Out, c.Combo.In, c.Err)
		}
		if c.Status != 200 || !c.BodyOK {
			t.Errorf("%s/%s: status=%d bodyOK=%v", c.Combo.Out, c.Combo.In, c.Status, c.BodyOK)
		}
		if !c.DNSOK {
			t.Errorf("%s/%s: DNS exchange failed", c.Combo.Out, c.Combo.In)
		}
		if c.Packets == 0 || len(c.PcapSHA) != 64 {
			t.Errorf("%s/%s: packets=%d sha=%q", c.Combo.Out, c.Combo.In, c.Packets, c.PcapSHA)
		}
		// TCP pins both conversation keys to one address: a requested
		// combination is honored exactly when it doesn't split them —
		// Out-DT demands care-of keys, In != In-DT demands home keys.
		wantHonored := (c.Combo.Out == core.OutDT) == (c.Combo.In == core.InDT)
		if c.Honored != wantHonored {
			t.Errorf("%s/%s: honored=%v (delivered %s/%s), want honored=%v",
				c.Combo.Out, c.Combo.In, c.Honored, c.EffectiveOut, c.EffectiveIn, wantHonored)
		}
	}
}

// TestHTTPGridCaptureDeterminism: the captured bytes are a pure function
// of (seed, cell) — identical SHA-256 per cell across a repeat run and
// across serial vs parallel execution, even though blocking net/http
// goroutines drive the virtual clock.
func TestHTTPGridCaptureDeterminism(t *testing.T) {
	a := RunHTTPGridParallel(3, 8)
	b := RunHTTPGridParallel(3, 8)
	for i := range a {
		if a[i].PcapSHA != b[i].PcapSHA {
			t.Errorf("%s/%s: capture hash differs between runs: %s vs %s",
				a[i].Combo.Out, a[i].Combo.In, a[i].PcapSHA, b[i].PcapSHA)
		}
		if a[i] != b[i] {
			t.Errorf("%s/%s: cell differs between runs:\n%+v\n%+v",
				a[i].Combo.Out, a[i].Combo.In, a[i], b[i])
		}
	}
	serialCell := runHTTPGridCell(3, a[5].Combo)
	if serialCell != a[5] {
		t.Errorf("serial cell differs from parallel run:\n%+v\n%+v", serialCell, a[5])
	}
}

// TestHTTPGridCaptureParses: each cell's capture is a valid classic pcap
// whose packet count matches the reported one.
func TestHTTPGridCaptureParses(t *testing.T) {
	dir := t.TempDir()
	SetCaptureDir(dir)
	defer SetCaptureDir("")
	cells := RunHTTPGridParallel(5, 8)
	n, err := WriteCaptures()
	if err != nil {
		t.Fatalf("WriteCaptures: %v", err)
	}
	if n != 16 {
		t.Fatalf("wrote %d captures, want 16", n)
	}
	for _, c := range cells {
		path := filepath.Join(dir, fmt.Sprintf("httpgrid_%s_%s.pcap", c.Combo.Out, c.Combo.In))
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s/%s: %v", c.Combo.Out, c.Combo.In, err)
		}
		cap, err := pcap.Parse(b)
		if err != nil {
			t.Fatalf("%s/%s: capture does not parse: %v", c.Combo.Out, c.Combo.In, err)
		}
		if len(cap.Packets) != c.Packets {
			t.Errorf("%s/%s: file has %d packets, cell reports %d",
				c.Combo.Out, c.Combo.In, len(cap.Packets), c.Packets)
		}
	}
}

// TestWriteCapturesDisabled: without a directory the registry stays off.
func TestWriteCapturesDisabled(t *testing.T) {
	SetCaptureDir("")
	registerCapture("nope", pcap.NewWriter())
	if n, err := WriteCaptures(); n != 0 || err != nil {
		t.Fatalf("WriteCaptures = %d, %v", n, err)
	}
}
