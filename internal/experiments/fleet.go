package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/core"
	"mob4x4/internal/fleet"
)

// The fleet experiment (E14): the handoff storm. A metro-scale topology
// (home network + K visited cells behind a routed backbone), N mobile
// nodes roaming under a seeded movement model, and a scripted storm: a
// home-uplink partition mid-churn followed by a commanded mass move of
// every node at once. The registration machinery must re-form every
// binding by the end of the run, with every drop accounted for, and the
// whole trial byte-reproducible per seed.

// FleetSpec selects the fleet's shape; the storm schedule and the rest
// of the knobs ride on fleet.Options defaults.
type FleetSpec struct {
	Nodes int
	Cells int
	Model string // "waypoint" or "markov"

	// Shards is the worker-goroutine count driving the region shards
	// inside each trial (fleet.Options.Workers). Orthogonal to the
	// trial-level parallelism of RunFleetParallel: that knob runs whole
	// trials concurrently, this one parallelizes the regions of a single
	// trial. Output is byte-identical for any value.
	Shards int
}

// FleetResult is one fleet trial's deterministic outcome.
type FleetResult = fleet.Result

// RunFleet runs one E14 trial. The result is a pure function of
// (seed, spec).
func RunFleet(seed int64, spec FleetSpec) FleetResult {
	return fleet.New(fleet.Options{
		Seed:    seed,
		Nodes:   spec.Nodes,
		Cells:   spec.Cells,
		Model:   spec.Model,
		Workers: spec.Shards,
	}).Run()
}

// RunFleetParallel runs trials fleet trials (seeds seed..seed+trials-1)
// on up to workers goroutines; results are in seed order and identical
// to the serial run regardless of worker count.
func RunFleetParallel(seed int64, trials, workers int, spec FleetSpec) []FleetResult {
	rows := make([]FleetResult, trials)
	parallelEach(workers, trials, func(i int) {
		rows[i] = RunFleet(seed+int64(i), spec)
	})
	return rows
}

// FleetTable renders fleet trials: a summary line per trial, the
// per-trial (Out, In) mode-mix matrix, and (single-trial runs only) the
// fault log.
func FleetTable(rows []FleetResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "E14 — fleet handoff storm\n")
	fmt.Fprintf(&b, "  %-6s %6s %6s %9s %7s %9s %10s %10s %10s %6s %7s %7s %5s\n",
		"seed", "nodes", "cells", "model", "moves", "handoffs", "p50(ms)", "p95(ms)", "p99(ms)", "fails", "down", "filter", "viol")
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "  %-6d %6d %6d %9s %7d %9d %10.1f %10.1f %10.1f %6d %7d %7d %5d\n",
			r.Seed, r.Nodes, r.Cells, r.Model, r.Moves, r.Handoffs,
			float64(r.HandoffP50)/1e6, float64(r.HandoffP95)/1e6, float64(r.HandoffP99)/1e6,
			r.RegistrationFails, r.DownDrops, r.FilterDrops, len(r.Violations))
	}
	for i := range rows {
		r := &rows[i]
		fmt.Fprintf(&b, "  seed %d mode mix (rows Out, cols In; workload conversations):\n", r.Seed)
		fmt.Fprintf(&b, "    %8s", "")
		for in := 0; in < core.NumInModes; in++ {
			fmt.Fprintf(&b, " %8s", core.InMode(in).String())
		}
		fmt.Fprintf(&b, "\n")
		for out := 0; out < core.NumOutModes; out++ {
			fmt.Fprintf(&b, "    %8s", core.OutMode(out).String())
			for in := 0; in < core.NumInModes; in++ {
				fmt.Fprintf(&b, " %8d", r.ModeMix[out][in])
			}
			fmt.Fprintf(&b, "\n")
		}
		fmt.Fprintf(&b, "    registered %d/%d  bindings %d  renewals %d  probes %d  expiries %d  pending %d\n",
			r.RegisteredAtEnd, r.Nodes, r.BindingsAtEnd, r.Renewals, r.RecoveryProbes, r.Expiries, r.PendingAfterDrain)
	}
	for i := range rows {
		r := &rows[i]
		for _, viol := range r.Violations {
			fmt.Fprintf(&b, "  seed %d VIOLATION: %s\n", r.Seed, viol)
		}
	}
	if len(rows) == 1 {
		fmt.Fprintf(&b, "  fault log (vtime ns):\n")
		for _, line := range rows[0].FaultLog {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	return b.String()
}
