package experiments

import (
	"reflect"
	"testing"
)

// TestParallelGridMatchesSerial pins the parallel runner's determinism
// contract: the same seed must produce identical results (content and
// order) whether the 16 cells run serially or on 8 workers.
func TestParallelGridMatchesSerial(t *testing.T) {
	serial := RunGrid(3)
	parallel := RunGridParallel(3, 8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel grid diverges from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
	if GridTable(serial) != GridTable(parallel) {
		t.Fatal("rendered grid tables differ between serial and parallel runs")
	}
}

// TestParallelAdaptiveMatchesSerial does the same for the E10 strategy
// sweep, which exercises the TCP/selector layers concurrently.
func TestParallelAdaptiveMatchesSerial(t *testing.T) {
	serial := RunAdaptive(5, true)
	parallel := RunAdaptiveParallel(5, true, 4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("parallel adaptive diverges from serial:\nserial   %+v\nparallel %+v", serial, parallel)
	}
}

// TestParallelEachCoversAllIndices checks the work-stealing loop visits
// every index exactly once for worker counts below, at and above n.
func TestParallelEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 8, 50} {
		const n = 17
		hits := make([]int, n)
		parallelEach(workers, n, func(i int) { hits[i]++ })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}
