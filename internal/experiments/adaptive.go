package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

// AdaptiveRow is one strategy's cost in one environment (experiment E10,
// Section 7.1.2).
type AdaptiveRow struct {
	Strategy  string
	Filtering bool // source filtering between MH and CH
	// Completed reports whether the transfer finished.
	Completed bool
	// TimeToComplete is virtual time from dial to full echo.
	TimeToComplete vtime.Duration
	// Retransmissions wasted probing non-working modes (plus loss).
	Retransmissions uint64
	// ModeSwitches by the selector during the conversation.
	ModeSwitches uint64
	// FinalMode is the delivery method the conversation converged on.
	FinalMode core.OutMode
}

// RunAdaptive executes experiment E10: a small TCP transfer from the MH
// to the correspondent inside the (optionally filtering) home domain,
// under three start strategies:
//
//   - pessimistic: start Out-IE, no probing (always works, never optimal);
//   - optimistic: start Out-DH, fall back on retransmission feedback;
//   - ruled: the paper's address/mask table pins Out-IE for the home
//     network, so the conversation starts correctly with no waste.
func RunAdaptive(seed int64, filtering bool) []AdaptiveRow {
	names := adaptiveStrategyNames()
	rows := make([]AdaptiveRow, len(names))
	for i, name := range names {
		rows[i] = runAdaptiveStrategy(seed, filtering, name)
	}
	return rows
}

func adaptiveStrategyNames() []string {
	return []string{"pessimistic", "optimistic", "ruled"}
}

func newAdaptiveSelector(strategy string, filtering bool) *core.Selector {
	switch strategy {
	case "pessimistic":
		return core.NewSelector(core.StartPessimistic)
	case "optimistic":
		return core.NewSelector(core.StartOptimistic)
	default: // ruled
		sel := core.NewSelector(core.StartOptimistic)
		if filtering {
			// "a single rule to identify, for example, the entire
			// home network as a region where Out-IE should always
			// be used".
			m := core.OutIE
			sel.AddRule(core.Rule{Prefix: ipv4.MustParsePrefix("36.1.1.0/24"), ForceMode: &m})
		}
		return sel
	}
}

// runAdaptiveStrategy measures one start strategy in its own scenario; it
// is the unit of work the parallel runner schedules.
func runAdaptiveStrategy(seed int64, filtering bool, strategy string) AdaptiveRow {
	sel := newAdaptiveSelector(strategy, filtering)
	s := Build(Options{Seed: seed, HomeFilter: filtering, Selector: sel})
	// This experiment reads only endpoint statistics, never trace events.
	s.Net.Sim.Trace.Discard()
	s.Roam()

	// Wire the Section 7.1.2 feedback loop: transport
	// retransmissions drive selector fallback.
	fb := &mobileip.SelectorFeedback{Selector: sel}
	s.MHTCP.Feedback = fb
	// Out-DE must be skipped for this correspondent: it cannot
	// decapsulate (conventional host), and the paper's selector is
	// allowed to know per-host capabilities.
	sel.CHCanDecapsulate = func(ipv4.Addr) bool { return false }

	const payload = 4000
	target := s.CHHome.FirstAddr()
	done := false
	start := s.Net.Sim.Now()
	var doneAt vtime.Time
	if _, err := s.CHHomeTCP.Listen(7001, func(c *tcplite.Conn) {
		var got int
		c.OnData = func(p []byte) {
			got += len(p)
			if got >= payload && !done {
				done = true
				doneAt = s.Net.Sim.Now()
			}
		}
	}); err != nil {
		assert.Unreachable("adaptive: start echo server: %v", err)
	}

	conn, err := s.MHTCP.Dial(s.MN.Home(), target, 7001)
	assert.NoError(err, "adaptive: dial echo server")
	conn.OnEstablished = func() { _ = conn.Write(make([]byte, payload)) }
	s.Net.RunFor(120 * Second)

	elapsed := s.Net.Sim.Now().Sub(start)
	if done {
		elapsed = doneAt.Sub(start)
	}
	return AdaptiveRow{
		Strategy:        strategy,
		Filtering:       filtering,
		Completed:       done,
		TimeToComplete:  elapsed,
		Retransmissions: s.MHTCP.Stats.Retransmissions,
		ModeSwitches:    sel.ModeSwitches,
		FinalMode:       sel.ModeFor(target),
	}
}

// AdaptiveTable renders E10.
func AdaptiveTable(rows []AdaptiveRow) string {
	var b strings.Builder
	if len(rows) > 0 {
		fmt.Fprintf(&b, "Section 7.1.2 — start-strategy cost (home-domain filtering: %v)\n", rows[0].Filtering)
	}
	fmt.Fprintf(&b, "  %-12s %10s %12s %9s %9s %10s\n",
		"strategy", "completed", "time", "retrans", "switches", "finalmode")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-12s %10v %12v %9d %9d %10s\n",
			r.Strategy, r.Completed, r.TimeToComplete, r.Retransmissions, r.ModeSwitches, r.FinalMode)
	}
	return b.String()
}
