package experiments

import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// The E17 differential fixtures: the route-optimization report (six
// configurations off one seed and schedule) must be byte-identical
// run-to-run and across any -parallel worker count, and every
// cross-configuration claim must hold at CI size.

var routeOptTestSpec = RouteOptSpec{Nodes: 24, Cells: 4}

func TestRouteOptReportParallelIdentical(t *testing.T) {
	serial := RunRouteOptParallel(31, 2, 1, routeOptTestSpec)
	want := RouteOptTable(serial)
	rows := RunRouteOptParallel(31, 2, 4, routeOptTestSpec)
	if got := RouteOptTable(rows); got != want {
		t.Errorf("RouteOptTable differs between 1 and 4 workers:\n--- serial ---\n%s\n--- 4 workers ---\n%s",
			want, got)
	}
	for i := range rows {
		for j := range rows[i].Trials {
			a := string(serial[i].Trials[j].Metrics.JSON())
			b := string(rows[i].Trials[j].Metrics.JSON())
			if a != b {
				t.Errorf("set %d trial %s metrics snapshot differs at 4 workers",
					i, rows[i].Trials[j].Name)
			}
		}
	}
}

func TestRouteOptRepeatSameSeedIdentical(t *testing.T) {
	a := RunRouteOpt(47, 1, routeOptTestSpec)
	b := RunRouteOpt(47, 2, routeOptTestSpec)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed route-opt sets diverged across worker counts:\n%+v\nvs\n%+v", a, b)
	}
}

func TestRouteOptTableReportsViolations(t *testing.T) {
	r := RunRouteOpt(47, 2, routeOptTestSpec)
	if len(r.Violations) != 0 {
		t.Fatalf("healthy seed produced violations: %v", r.Violations)
	}
	r.Violations = append(r.Violations, "synthetic violation for rendering")
	out := RouteOptTable([]RouteOptResult{r})
	if want := "VIOLATION: synthetic violation for rendering"; !strings.Contains(out, want) {
		t.Errorf("RouteOptTable output missing %q:\n%s", want, out)
	}
	for _, name := range []string{"baseline", "push", "ha-push", "compact", "hier", "fallback"} {
		if !strings.Contains(out, name) {
			t.Errorf("RouteOptTable output missing the %q row:\n%s", name, out)
		}
	}
}

// routeOptSeed lets CI reproduce a failing smoke: RO_SEED=n make routeopt-smoke.
func routeOptSeed(t *testing.T) int64 {
	if s := os.Getenv("RO_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad RO_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestRouteOptSmoke is the CI route-optimization soak: the six-way
// comparison at one seed, run with -race, must complete with every
// per-trial invariant and cross-trial claim intact — push shrinks the
// recovery tail, compact shrinks uplink bytes, hier shrinks the median
// handoff, and the blackholed fallback loses no conversation.
func TestRouteOptSmoke(t *testing.T) {
	seed := routeOptSeed(t)
	r := RunRouteOpt(seed, 4, routeOptTestSpec)
	for _, v := range r.Violations {
		t.Errorf("seed %d: %s (reproduce: RO_SEED=%d make routeopt-smoke)", seed, v, seed)
	}
	for i := range r.Trials {
		tr := &r.Trials[i]
		if tr.Handoffs == 0 {
			t.Errorf("seed %d: %s trial moved nothing", seed, tr.Name)
		}
	}
}
