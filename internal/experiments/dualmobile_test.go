package experiments

import (
	"testing"

	"mob4x4/internal/tcplite"
)

func TestDualMobileSessionSurvives(t *testing.T) {
	r := RunDualMobile(31)
	if !r.Established {
		t.Fatal("session never established")
	}
	if !r.Survived {
		t.Fatalf("session did not survive dual mobility:\n%s", r.String())
	}
	for name, n := range map[string]int{
		"both-home":   r.EchoesBothHome,
		"mh1-roamed":  r.EchoesMH1Roamed,
		"both-roamed": r.EchoesBothRoamed,
		"after-moves": r.EchoesAfterMoves,
	} {
		if n == 0 {
			t.Errorf("no progress in epoch %s", name)
		}
	}
	// With both hosts away, each side's agent must be doing tunnel work.
	if r.HA1Forwarded == 0 || r.HA2Forwarded == 0 {
		t.Errorf("agents idle: ha1=%d ha2=%d", r.HA1Forwarded, r.HA2Forwarded)
	}
}

// TestSleepWakeSessionResumes exercises the paper's §2 anecdote: "putting
// a laptop computer to sleep while moving it from place to place does not
// necessarily break connections ... idle telnet connections that are
// preserved for hours". The mobile host sleeps long enough for its
// binding to lapse, wakes on a different network, re-registers, and the
// idle session picks up where it left off.
func TestSleepWakeSessionResumes(t *testing.T) {
	s := Build(Options{Seed: 47, Selector: nil})
	if _, err := s.CHFarTCP.Listen(23, func(c *tcplite.Conn) {
		c.OnData = func(p []byte) { _ = c.Write(p) }
	}); err != nil {
		t.Fatal(err)
	}
	s.Roam()

	echoes := 0
	dead := false
	conn, err := s.MHTCP.Dial(s.MN.Home(), s.CHFar.FirstAddr(), 23)
	if err != nil {
		t.Fatal(err)
	}
	conn.OnData = func(p []byte) { echoes++ }
	conn.OnError = func(error) { dead = true }
	conn.OnEstablished = func() { _ = conn.Write([]byte("before sleep")) }
	s.Net.RunFor(5 * Second)
	if echoes == 0 {
		t.Fatal("session never worked")
	}

	// Sleep: detached for 5 minutes of virtual time — far past the 120s
	// registration lifetime, so the home agent forgets the binding.
	s.MN.Detach()
	s.Net.RunFor(300 * Second)
	if s.HA.Bindings() != 0 {
		t.Fatal("binding survived the sleep")
	}

	// Wake on the other visited network and use the same connection.
	s.RoamB()
	before := echoes
	if err := conn.Write([]byte("after wake")); err != nil {
		t.Fatalf("write after wake: %v", err)
	}
	s.Net.RunFor(30 * Second)

	if dead {
		t.Fatal("session died across sleep")
	}
	if echoes <= before {
		t.Error("no echo after wake; session did not resume")
	}
}
