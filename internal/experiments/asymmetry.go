package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/inet"
	"mob4x4/internal/ipv4"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/netsim"
	"mob4x4/internal/stack"
	"mob4x4/internal/tcplite"
	"mob4x4/internal/vtime"
)

// AsymmetryResult reproduces the §2 observation about Figure 1: "The
// latency and available bandwidth over the two different paths may be
// significantly different, but this is not unusual for IP." A
// conventional correspondent's packets detour through a slow, narrow
// home-network access link; the mobile host's replies take a fast direct
// path.
type AsymmetryResult struct {
	Delivered     bool
	RequestOneWay vtime.Duration // CH -> MH via the slow home link
	ReplyOneWay   vtime.Duration // MH -> CH direct
	Ratio         float64
	// Throughput of a bulk transfer in each direction (bytes/s of
	// virtual time), shaped by the bandwidth asymmetry.
	InboundBps  float64
	OutboundBps float64
}

// RunAsymmetry builds a topology whose home-agent access link is slow
// (128 kbit/s, 40 ms) while everything else is fast, then measures one
// echo and two 64 KiB transfers.
func RunAsymmetry(seed int64) AsymmetryResult {
	n := inet.New(seed)
	fast := netsim.SegmentOpts{Latency: 1 * Millisecond}
	home := n.AddLAN("home", "36.1.1.0/24", fast)
	visit := n.AddLAN("visit", "128.9.1.0/24", fast)
	far := n.AddLAN("far", "17.5.0.0/24", fast)

	homeGW := n.AddRouter("homeGW")
	visitGW := n.AddRouter("visitGW")
	farGW := n.AddRouter("farGW")
	bb := n.AddRouter("bb")
	n.AttachRouter(homeGW, home)
	n.AttachRouter(visitGW, visit)
	n.AttachRouter(farGW, far)
	// The home domain hangs off a slow access circuit; the rest of the
	// internet is fast. (Built manually so the link can carry
	// bandwidth options.)
	slow := n.Sim.NewSegment("slow-access", netsim.SegmentOpts{
		Latency: 40 * Millisecond, BandwidthBps: 128_000,
	})
	p := ipv4.MustParsePrefix("10.250.0.0/30")
	homeGW.AddIface("to-bb", slow, p.Host(1), p)
	bb.AddIface("to-homeGW", slow, p.Host(2), p)
	n.Link(visitGW, bb, 2*Millisecond)
	n.Link(farGW, bb, 2*Millisecond)

	haHost := n.AddHost("ha", home)
	mhHost, mhIfc := n.AddMobileHost("mh", home)
	chHost := n.AddHost("ch", far)
	n.ComputeRoutes()
	// ComputeRoutes cannot see the hand-built slow link; install the
	// missing routes across it.
	addVia := func(r *stack.Host, prefix string, nh ipv4.Addr) {
		for _, ifc := range r.Ifaces() {
			if ifc.Prefix().Contains(nh) {
				r.Routes().Add(stack.Route{
					Prefix: ipv4.MustParsePrefix(prefix), NextHop: nh, Iface: ifc, Metric: 5,
				})
				return
			}
		}
	}
	addVia(homeGW, "128.9.1.0/24", p.Host(2))
	addVia(homeGW, "17.5.0.0/24", p.Host(2))
	addVia(bb, "36.1.1.0/24", p.Host(1))
	// The visited and far gateways reach the home domain via bb. Link()
	// assigned them Host(1) and bb Host(2) on each transfer net.
	for _, gw := range []*stack.Host{visitGW, farGW} {
		ifc := gw.IfaceByName("to-bb")
		if ifc == nil {
			assert.Unreachable("asymmetry: missing backbone interface")
		}
		addVia(gw, "36.1.1.0/24", ifc.Prefix().Host(2))
	}

	ha, err := mobileip.NewHomeAgent(haHost, haHost.Ifaces()[0], mobileip.HomeAgentConfig{})
	assert.NoError(err, "asymmetry: create home agent")
	_ = ha
	mhTCP := tcplite.New(mhHost)
	mn, err := mobileip.NewMobileNode(mhHost, mhIfc, mobileip.MobileNodeConfig{
		Home:       mhIfc.Addr(),
		HomePrefix: home.Prefix,
		HomeAgent:  haHost.Ifaces()[0].Addr(),
		Selector:   core.NewSelector(core.StartOptimistic), // direct replies
	})
	assert.NoError(err, "asymmetry: create mobile node")
	careOf := visit.NextAddr()
	mn.MoveTo(visit.Seg, careOf, visit.Prefix, visit.Gateway)
	n.RunFor(5 * Second)
	if !mn.Registered() {
		assert.Unreachable("asymmetry: registration failed")
	}

	var res AsymmetryResult

	// One echo for the latency asymmetry. (Reuse the Scenario helper's
	// trace reconstruction by hand.)
	tr := n.Sim.Trace
	evStart := len(tr.Events())
	echoGot := false
	chSock, err := chHost.OpenUDP(ipv4.Zero, 0, func(src ipv4.Addr, sp uint16, dst ipv4.Addr, pl []byte) {
		echoGot = true
	})
	assert.NoError(err, "asymmetry: open CH socket")
	var mhSock *stack.UDPSocket
	mhSock, err = mhHost.OpenUDP(ipv4.Zero, 4242, func(src ipv4.Addr, sp uint16, dst ipv4.Addr, pl []byte) {
		_ = mhSock.SendToFrom(mn.Home(), src, sp, pl)
	})
	assert.NoError(err, "asymmetry: open MH socket")
	_ = chSock.SendTo(mn.Home(), 4242, []byte("probe"))
	n.RunFor(10 * Second)
	res.Delivered = echoGot

	var reqID, repID uint64
	for _, e := range tr.Events()[evStart:] {
		if e.Kind == netsim.EventSend && e.Where == "ch" && reqID == 0 {
			reqID = e.PktID
		}
		if e.Kind == netsim.EventSend && e.Where == "mh" && reqID != 0 && e.PktID > reqID && repID == 0 {
			repID = e.PktID
		}
	}
	res.RequestOneWay = packetTransit(tr.PacketEvents(reqID))
	res.ReplyOneWay = packetTransit(tr.PacketEvents(repID))
	if res.ReplyOneWay > 0 {
		res.Ratio = float64(res.RequestOneWay) / float64(res.ReplyOneWay)
	}

	// Bulk throughput each way (64 KiB).
	chTCP := tcplite.New(chHost)
	const bulk = 64 * 1024
	measure := func(fromCH bool) float64 {
		var rx int
		var doneAt vtime.Time
		port := uint16(5000)
		if fromCH {
			port = 5001
		}
		serverEP := mhTCP
		clientEP := chTCP
		clientLocal := ipv4.Zero
		target := mn.Home()
		if !fromCH {
			serverEP = chTCP
			clientEP = mhTCP
			clientLocal = mn.Home()
			target = chHost.FirstAddr()
		}
		if _, err := serverEP.Listen(port, func(c *tcplite.Conn) {
			c.OnData = func(b []byte) {
				rx += len(b)
				if rx >= bulk {
					doneAt = n.Sim.Now()
				}
			}
		}); err != nil {
			assert.Unreachable("asymmetry: start sink server: %v", err)
		}
		start := n.Sim.Now()
		conn, err := clientEP.Dial(clientLocal, target, port)
		assert.NoError(err, "asymmetry: dial sink server")
		conn.OnEstablished = func() { _ = conn.Write(make([]byte, bulk)) }
		n.RunFor(120 * Second)
		if rx < bulk || doneAt.Before(start) {
			return 0
		}
		return float64(bulk) / (float64(doneAt.Sub(start)) / 1e9)
	}
	res.InboundBps = measure(true)
	res.OutboundBps = measure(false)
	return res
}

func (r AsymmetryResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§2 — path asymmetry (slow 128kbit/40ms home access link)\n")
	fmt.Fprintf(&b, "  one-way:   CH->MH %v (via HA, slow link twice)   MH->CH %v (direct)   ratio %.1fx\n",
		r.RequestOneWay, r.ReplyOneWay, r.Ratio)
	fmt.Fprintf(&b, "  bulk 64KiB: inbound %.0f B/s   outbound %.0f B/s\n", r.InboundBps, r.OutboundBps)
	return b.String()
}
