package experiments

import (
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// The E15 differential fixtures: the adversary report (attack trial plus
// clean twin) must be byte-identical run-to-run and across any -parallel
// worker count, and every hijack-resistance invariant must hold at CI
// size.

var adversaryTestSpec = AdversarySpec{Nodes: 24, Cells: 4}

func TestAdversaryReportParallelIdentical(t *testing.T) {
	serial := RunAdversaryParallel(31, 2, 1, adversaryTestSpec)
	want := AdversaryTable(serial)
	rows := RunAdversaryParallel(31, 2, 4, adversaryTestSpec)
	if got := AdversaryTable(rows); got != want {
		t.Errorf("AdversaryTable differs between 1 and 4 workers:\n--- serial ---\n%s\n--- 4 workers ---\n%s",
			want, got)
	}
	for i := range rows {
		if a, b := string(serial[i].Attack.Metrics.JSON()), string(rows[i].Attack.Metrics.JSON()); a != b {
			t.Errorf("trial %d attacked metrics snapshot differs at 4 workers", i)
		}
	}
}

func TestAdversaryRepeatSameSeedIdentical(t *testing.T) {
	a := RunAdversary(47, adversaryTestSpec)
	b := RunAdversary(47, adversaryTestSpec)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same-seed adversary trials diverged:\n%+v\nvs\n%+v", a, b)
	}
}

func TestAdversaryTableReportsViolations(t *testing.T) {
	r := RunAdversary(47, adversaryTestSpec)
	if len(r.Violations) != 0 {
		t.Fatalf("healthy seed produced violations: %v", r.Violations)
	}
	r.Violations = append(r.Violations, "synthetic violation for rendering")
	out := AdversaryTable([]AdversaryResult{r})
	if want := "VIOLATION: synthetic violation for rendering"; !strings.Contains(out, want) {
		t.Errorf("AdversaryTable output missing %q:\n%s", want, out)
	}
}

// adversarySeed lets CI reproduce a failing smoke: ADV_SEED=n make adversary-smoke.
func adversarySeed(t *testing.T) int64 {
	if s := os.Getenv("ADV_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad ADV_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestAdversarySmoke is the CI hijack-resistance soak: one small
// authenticated storm under attack, run with -race, must complete with
// zero hijacks, exact attack attribution, and the legit fleet inside the
// latency envelope of its clean twin.
func TestAdversarySmoke(t *testing.T) {
	seed := adversarySeed(t)
	r := RunAdversary(seed, adversaryTestSpec)
	for _, v := range r.Violations {
		t.Errorf("seed %d: %s (reproduce: ADV_SEED=%d make adversary-smoke)", seed, v, seed)
	}
	a := &r.Attack
	if a.Hijacks != 0 {
		t.Errorf("seed %d: %d bindings pointed at attacker care-of addresses", seed, a.Hijacks)
	}
	if a.Forged == 0 || a.Replayed == 0 || a.Tampered == 0 {
		t.Errorf("seed %d: storm idle (forged=%d replayed=%d tampered=%d)", seed, a.Forged, a.Replayed, a.Tampered)
	}
	if a.Handoffs == 0 {
		t.Errorf("seed %d: legit fleet moved nothing under attack", seed)
	}
	if len(a.FaultLog) == 0 {
		t.Errorf("seed %d: empty fault log", seed)
	}
}
