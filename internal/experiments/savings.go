package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/core"
	"mob4x4/internal/netsim"
)

// SavingsRow quantifies the paper's §3.2 motivation — indirect delivery
// "affects other users by increasing the overall load on the shared
// resources of the Internet" — for one correspondent-capability level.
type SavingsRow struct {
	Setup string
	// RouterForwards and BackboneBytes are the total network work for a
	// fixed 20-round-trip conversation.
	RouterForwards uint64
	BackboneBytes  uint64
	MeanRTT        float64 // milliseconds
	Delivered      int
}

// RunSavings measures the same conversation (20 echo round trips)
// under three correspondent setups: conventional (everything via the home
// agent), mobile-aware (In-DE after discovery), and same-segment (In-DH).
func RunSavings(seed int64) []SavingsRow {
	type setup struct {
		name  string
		aware bool
		near  bool
	}
	setups := []setup{
		{"conventional (In-IE)", false, false},
		{"mobile-aware (In-DE)", true, false},
		{"same-segment (In-DH)", true, true},
	}
	var rows []SavingsRow
	for _, cfg := range setups {
		s := Build(Options{
			Seed: seed, Notices: cfg.aware, CHAware: cfg.aware, CHDecap: cfg.aware,
			Selector: core.NewSelector(core.StartOptimistic),
		})
		careOf := s.Roam()
		ic := s.CHFarIC
		host := s.CHFar
		if cfg.near {
			ic = s.CHNearIC
			host = s.CHNear
			s.CHNearC.LearnBinding(core.Binding{Home: s.MN.Home(), CareOf: careOf}, 0)
		}

		fwdBefore := s.Net.Sim.Trace.Count(netsim.EventForward)
		bytesBefore := backboneBytes(s)
		row := SavingsRow{Setup: cfg.name}
		var totalRTT float64
		const rounds = 20
		for i := 0; i < rounds; i++ {
			p := s.PingFrom(ic, host, s.MN.Home(), 2*Second)
			if p.Delivered {
				row.Delivered++
				totalRTT += float64(p.RTT) / 1e6
			}
		}
		row.RouterForwards = s.Net.Sim.Trace.Count(netsim.EventForward) - fwdBefore
		row.BackboneBytes = backboneBytes(s) - bytesBefore
		if row.Delivered > 0 {
			row.MeanRTT = totalRTT / float64(row.Delivered)
		}
		rows = append(rows, row)
	}
	return rows
}

func backboneBytes(s *Scenario) uint64 {
	var total uint64
	for _, seg := range s.Net.Sim.Segments() {
		if strings.HasPrefix(seg.Name(), "p2p-") {
			total += seg.BytesCarried
		}
	}
	return total
}

// SavingsTable renders the comparison.
func SavingsTable(rows []SavingsRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.2 — shared-resource load of a 20-round-trip echo conversation\n")
	fmt.Fprintf(&b, "  %-22s %10s %15s %14s %10s\n", "correspondent", "delivered", "router-forwards", "backbone-bytes", "mean RTT")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-22s %10d %15d %14d %8.1fms\n",
			r.Setup, r.Delivered, r.RouterForwards, r.BackboneBytes, r.MeanRTT)
	}
	return b.String()
}
