package experiments

import (
	"math/rand"
	"testing"

	"mob4x4/internal/core"
	"mob4x4/internal/metrics"
	"mob4x4/internal/vtime"
)

// The grid property suite: for every one of the 16 (Out, In) pairs, over
// randomized topologies and seeds, one two-way exchange must behave
// exactly as Section 6's taxonomy predicts, and the metrics registry
// must agree packet-for-packet with the traffic the cell generated. This
// is the paper's Figure 10 as an executable invariant rather than a
// single measured table.

// propTopos returns the default topology plus n pseudo-random variants.
// The generator is fixed-seeded: the suite is property-style in coverage
// but fully deterministic run to run.
func propTopos(n int) []gridTopo {
	rng := rand.New(rand.NewSource(0x4d4d))
	topos := []gridTopo{{}}
	for i := 0; i < n; i++ {
		topos = append(topos, gridTopo{
			HADistance:      rng.Intn(5),
			LANLatency:      vtime.Duration(1+rng.Intn(4)) * Millisecond,
			BackboneLatency: vtime.Duration(2+rng.Intn(9)) * Millisecond,
		})
	}
	return topos
}

// checkGridCell asserts every per-cell invariant of the taxonomy.
func checkGridCell(t *testing.T, c GridCell) {
	t.Helper()
	combo := c.Combo

	// Delivery: every mode combination moves packets in both directions
	// on a healthy topology — brokenness in the paper's sense is never
	// loss, it is endpoint inconsistency (§6).
	if !c.DeliveredIn {
		t.Errorf("%v: request not delivered", combo)
	}
	if !c.DeliveredOut {
		t.Errorf("%v: reply not delivered", combo)
	}

	// The six broken cells are exactly the address-mismatched ones; the
	// seven useful and three valid-but-unlikely cells all carry TCP.
	wantConsistent := combo.In.UsesHomeAddress() == combo.Out.UsesHomeAddress()
	if c.Consistent != wantConsistent {
		t.Errorf("%v: consistent = %v, want %v", combo, c.Consistent, wantConsistent)
	}
	if works, want := c.WorksForTCP(), c.Class != core.Broken; works != want {
		t.Errorf("%v (class %v): WorksForTCP = %v, want %v", combo, c.Class, works, want)
	}

	// Mode accounting: the MN saw exactly one packet in under the
	// forced In mode, sent exactly one out under the forced Out mode,
	// and nothing under any other mode.
	for m := 0; m < metrics.NumModes; m++ {
		wantIn := uint64(0)
		if m == int(combo.In) {
			wantIn = 1
		}
		if c.MNInPackets[m] != wantIn {
			t.Errorf("%v: MNInPackets[%s] = %d, want %d", combo, metrics.InModeNames[m], c.MNInPackets[m], wantIn)
		}
		wantOut := uint64(0)
		if m == int(combo.Out) {
			wantOut = 1
		}
		if c.MNOutPackets[m] != wantOut {
			t.Errorf("%v: MNOutPackets[%s] = %d, want %d", combo, metrics.OutModeNames[m], c.MNOutPackets[m], wantOut)
		}
	}
	// The echo mirrors the payload, so the inner reply is byte-for-byte
	// the size of the inner request.
	if in, out := c.MNInBytes[combo.In], c.MNOutBytes[combo.Out]; in == 0 || in != out {
		t.Errorf("%v: MNInBytes = %d, MNOutBytes = %d, want equal and nonzero", combo, in, out)
	}

	// Tunnel work: encapsulated modes cost exactly one encap and one
	// decap per direction, transparent modes cost none.
	wantReq, wantRep := uint64(0), uint64(0)
	if combo.In.Encapsulated() {
		wantReq = 1
	}
	if combo.Out.Encapsulated() {
		wantRep = 1
	}
	if c.ReqEncaps != wantReq || c.ReqDecaps != wantReq {
		t.Errorf("%v: request encaps/decaps = %d/%d, want %d/%d", combo, c.ReqEncaps, c.ReqDecaps, wantReq, wantReq)
	}
	if c.RepEncaps != wantRep || c.RepDecaps != wantRep {
		t.Errorf("%v: reply encaps/decaps = %d/%d, want %d/%d", combo, c.RepEncaps, c.RepDecaps, wantRep, wantRep)
	}

	// Nothing on the healthy grid topology is ever dropped.
	for cause, n := range c.Drops {
		if n != 0 {
			t.Errorf("%v: drop/%s = %d, want 0", combo, metrics.DropCause(cause), n)
		}
	}

	// A completed exchange took time; a same-segment one took no router
	// hops at all.
	if c.RTT <= 0 {
		t.Errorf("%v: RTT = %v, want > 0", combo, c.RTT)
	}
	if combo.In == core.InDH && combo.Out == core.OutDH && (c.InHops != 0 || c.OutHops != 0) {
		t.Errorf("%v: same-segment hops = %d/%d, want 0/0", combo, c.InHops, c.OutHops)
	}
}

func TestGridTaxonomyProperty(t *testing.T) {
	topoVariants, seeds := 2, []int64{1, 0x5eed}
	if testing.Short() {
		topoVariants, seeds = 0, []int64{1}
	}
	for ti, topo := range propTopos(topoVariants) {
		for _, seed := range seeds {
			topo, seed := topo, seed
			name := "default"
			if ti > 0 {
				name = "variant"
			}
			t.Run(name, func(t *testing.T) {
				combos := allGridCombos()
				cells := make([]GridCell, len(combos))
				parallelEach(4, len(combos), func(i int) {
					cells[i] = runGridCellTopo(seed, combos[i], topo)
				})
				if len(cells) != 16 {
					t.Fatalf("got %d cells, want 16", len(cells))
				}
				broken := 0
				for _, c := range cells {
					checkGridCell(t, c)
					if c.Class == core.Broken {
						broken++
					}
				}
				if broken != 6 {
					t.Errorf("broken cells = %d, want 6 (topo %+v seed %d)", broken, topo, seed)
				}
				// Longer indirect paths still deliver, and the triangle
				// shows: In-IE travels at least as far as In-DE from the
				// same correspondent.
				byCombo := map[core.Combo]GridCell{}
				for _, c := range cells {
					byCombo[c.Combo] = c
				}
				ie := byCombo[core.Combo{In: core.InIE, Out: core.OutDH}]
				de := byCombo[core.Combo{In: core.InDE, Out: core.OutDH}]
				if ie.InHops <= de.InHops {
					t.Errorf("In-IE hops (%d) not greater than In-DE hops (%d) (topo %+v)", ie.InHops, de.InHops, topo)
				}
			})
		}
	}
}
