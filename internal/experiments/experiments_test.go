package experiments

import (
	"strings"
	"testing"

	"mob4x4/internal/core"
)

func TestOverheadArithmetic(t *testing.T) {
	rows := RunOverhead([]int{100, 1400, 1470, 1475, 1500, 4000}, 1500)
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	sawDoubling := map[string]bool{}
	for _, r := range rows {
		switch r.Codec {
		case "ipip":
			if r.OverheadBytes != 20 {
				t.Errorf("ipip overhead = %d bytes, want 20 (Section 3.3)", r.OverheadBytes)
			}
		case "minenc":
			// Section 2: Minimal Encapsulation beats the 20-byte cost;
			// worst case 12 bytes (source present).
			if r.OverheadBytes < 8 || r.OverheadBytes > 12 {
				t.Errorf("minenc overhead = %d bytes, want 8..12", r.OverheadBytes)
			}
		case "gre":
			if r.OverheadBytes < 24 || r.OverheadBytes > 28 {
				t.Errorf("gre overhead = %d bytes, want 24..28", r.OverheadBytes)
			}
		}
		if r.EncapFragments > r.PlainFragments && r.EncapFragments != 2*r.PlainFragments {
			// "doubling the packet count": a just-over-MTU packet goes
			// from 1 fragment to 2.
			t.Errorf("%s payload=%d: fragments %d -> %d (expected doubling)",
				r.Codec, r.PayloadBytes, r.PlainFragments, r.EncapFragments)
		}
		if r.EncapFragments > r.PlainFragments {
			sawDoubling[r.Codec] = true
		}
	}
	for _, codec := range []string{"ipip", "minenc", "gre"} {
		if !sawDoubling[codec] {
			t.Errorf("%s: sweep never crossed the MTU; widen the payload range", codec)
		}
	}
}

func TestTunnelFragmentationDoubling(t *testing.T) {
	// 1490-byte UDP payload: fits plain (1518 > ... no: 1490+8+20 = 1518
	// exceeds 1500), use 1450: plain = 1478 fits; tunneled = 1498+20 =
	// exceeds; wait — pick 1460: plain 1488 fits, encap 1508 fragments.
	r := RunTunnelFragmentation(3, 1460)
	if !r.Delivered {
		t.Fatal("payload not delivered in both modes")
	}
	if r.TunnelPackets <= r.PlainPackets {
		t.Errorf("tunneled backbone packets (%d) not greater than plain (%d); fragmentation doubling not observed",
			r.TunnelPackets, r.PlainPackets)
	}
}

func TestAdaptiveStrategies(t *testing.T) {
	rows := RunAdaptive(5, true)
	byName := map[string]AdaptiveRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	for name, r := range byName {
		if !r.Completed {
			t.Fatalf("%s: transfer did not complete\n%s", name, AdaptiveTable(rows))
		}
	}
	opt := byName["optimistic"]
	ruled := byName["ruled"]
	pess := byName["pessimistic"]
	// The optimistic start against a filtering home domain wastes
	// retransmissions before the feedback loop drops to Out-IE.
	if opt.Retransmissions == 0 || opt.ModeSwitches == 0 {
		t.Errorf("optimistic: expected wasted probes and a mode switch, got retrans=%d switches=%d",
			opt.Retransmissions, opt.ModeSwitches)
	}
	if opt.FinalMode != core.OutIE {
		t.Errorf("optimistic converged to %s, want Out-IE", opt.FinalMode)
	}
	// The rule table eliminates the waste entirely.
	if ruled.Retransmissions > 0 || ruled.ModeSwitches > 0 {
		t.Errorf("ruled: expected no waste, got retrans=%d switches=%d",
			ruled.Retransmissions, ruled.ModeSwitches)
	}
	if ruled.TimeToComplete >= opt.TimeToComplete {
		t.Errorf("ruled (%v) not faster than optimistic (%v)", ruled.TimeToComplete, opt.TimeToComplete)
	}
	// Pessimistic works immediately too (Out-IE start).
	if pess.ModeSwitches != 0 {
		t.Errorf("pessimistic: unexpected mode switches %d", pess.ModeSwitches)
	}
}

func TestAdaptiveNoFiltering(t *testing.T) {
	rows := RunAdaptive(5, false)
	for _, r := range rows {
		if !r.Completed {
			t.Fatalf("%s: transfer did not complete without filtering", r.Strategy)
		}
	}
	byName := map[string]AdaptiveRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	// Without filtering the optimistic start is strictly better: direct
	// delivery with no switches.
	opt := byName["optimistic"]
	if opt.ModeSwitches != 0 || opt.FinalMode != core.OutDH {
		t.Errorf("optimistic without filtering: switches=%d final=%s, want 0/Out-DH",
			opt.ModeSwitches, opt.FinalMode)
	}
}

func TestDurabilityHomeVsTemporary(t *testing.T) {
	home := RunDurability(9, true, 3)
	temp := RunDurability(9, false, 3)

	if !home.Survived {
		t.Errorf("home-address session did not survive %d moves (err=%q, echoes post=%d)",
			home.Moves, home.ConnError, home.EchoesAfterMoves)
	}
	if home.EchoesAfterMoves == 0 {
		t.Error("home-address session made no progress after moving")
	}
	if temp.Survived {
		t.Error("temporary-address session survived movement; it must break (Out-DT trade-off)")
	}
	if temp.EchoesBeforeMove == 0 {
		t.Error("temporary-address session never worked even before moving")
	}
}

func TestWebBrowseTradeoff(t *testing.T) {
	mip := RunWebBrowse(11, 5, true)
	dt := RunWebBrowse(11, 5, false)
	if mip.Completed != 5 || dt.Completed != 5 {
		t.Fatalf("fetches completed: mobileip=%d out-dt=%d, want 5/5", mip.Completed, dt.Completed)
	}
	// Out-DT avoids the triangle: faster and fewer backbone bytes.
	if dt.TotalTime >= mip.TotalTime {
		t.Errorf("Out-DT total time %v not less than Mobile IP %v", dt.TotalTime, mip.TotalTime)
	}
	if dt.BackboneBytes >= mip.BackboneBytes {
		t.Errorf("Out-DT backbone bytes %d not less than Mobile IP %d", dt.BackboneBytes, mip.BackboneBytes)
	}
}

func TestFormatsMatchPaperNotation(t *testing.T) {
	rows := RunFormats()
	if len(rows) != 8 {
		t.Fatalf("got %d format rows, want 8", len(rows))
	}
	find := func(dir, mode string) FormatRow {
		for _, r := range rows {
			if r.Direction == dir && r.Mode == mode {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", dir, mode)
		return FormatRow{}
	}
	// Figure 7: Out-IE — s=COA d=HA S=MH D=CH.
	oie := find("out", "Out-IE")
	if oie.OuterSrc != roleCOA || oie.OuterDst != roleHA || oie.InnerSrc != roleMH || oie.InnerDst != roleCH {
		t.Errorf("Out-IE format wrong: %+v", oie)
	}
	// Figure 7: Out-DE — s=COA d=CH S=MH D=CH.
	ode := find("out", "Out-DE")
	if ode.OuterSrc != roleCOA || ode.OuterDst != roleCH || ode.InnerSrc != roleMH || ode.InnerDst != roleCH {
		t.Errorf("Out-DE format wrong: %+v", ode)
	}
	// Figure 6: Out-DH — S=MH D=CH, no outer.
	odh := find("out", "Out-DH")
	if odh.Encapsulated || odh.InnerSrc != roleMH || odh.InnerDst != roleCH {
		t.Errorf("Out-DH format wrong: %+v", odh)
	}
	// Figure 6: Out-DT — S=COA D=CH.
	odt := find("out", "Out-DT")
	if odt.Encapsulated || odt.InnerSrc != roleCOA || odt.InnerDst != roleCH {
		t.Errorf("Out-DT format wrong: %+v", odt)
	}
	// Figure 9: In-IE — s=HA d=COA S=CH D=MH.
	iie := find("in", "In-IE")
	if iie.OuterSrc != roleHA || iie.OuterDst != roleCOA || iie.InnerSrc != roleCH || iie.InnerDst != roleMH {
		t.Errorf("In-IE format wrong: %+v", iie)
	}
	// Figure 9: In-DE — s=CH d=COA S=CH D=MH.
	ide := find("in", "In-DE")
	if ide.OuterSrc != roleCH || ide.OuterDst != roleCOA || ide.InnerSrc != roleCH || ide.InnerDst != roleMH {
		t.Errorf("In-DE format wrong: %+v", ide)
	}
	// Figure 8: In-DH — S=CH D=MH; In-DT — S=CH D=COA.
	idh := find("in", "In-DH")
	if idh.Encapsulated || idh.InnerSrc != roleCH || idh.InnerDst != roleMH {
		t.Errorf("In-DH format wrong: %+v", idh)
	}
	idt := find("in", "In-DT")
	if idt.Encapsulated || idt.InnerSrc != roleCH || idt.InnerDst != roleCOA {
		t.Errorf("In-DT format wrong: %+v", idt)
	}
	if !strings.Contains(FormatsTable(rows), "Out-IE") {
		t.Error("FormatsTable missing rows")
	}
}

func TestForeignAgentComparison(t *testing.T) {
	self := RunForeignAgent(13, false)
	fa := RunForeignAgent(13, true)

	for _, r := range []FAResult{self, fa} {
		if !r.Registered {
			t.Fatalf("%s: registration failed", r.Attachment)
		}
		if !r.PingDelivered {
			t.Fatalf("%s: ping to home address failed", r.Attachment)
		}
	}
	if !self.OutDTAvailable {
		t.Error("self-sufficient attachment should allow Out-DT")
	}
	if fa.OutDTAvailable {
		t.Error("foreign-agent attachment must not allow Out-DT (the paper's critique)")
	}
	if fa.FADelivered == 0 {
		t.Error("foreign agent relayed nothing; the tunnel did not go through it")
	}
}

func TestCorrespondentTransitions(t *testing.T) {
	r := RunCorrespondentTransitions(17)
	if r.BeforeDiscovery != core.InIE {
		t.Errorf("before discovery: %s, want In-IE", r.BeforeDiscovery)
	}
	if r.AfterNotice != core.InDE {
		t.Errorf("after ICMP notice: %s, want In-DE", r.AfterNotice)
	}
	if r.AfterExpiry != core.InIE {
		t.Errorf("after binding expiry: %s, want In-IE", r.AfterExpiry)
	}
	if r.TempReply != core.InDT {
		t.Errorf("temp-initiated reply: %s, want In-DT", r.TempReply)
	}
}

func TestRoamViaDHCP(t *testing.T) {
	s := Build(Options{Seed: 21, WithServices: true})
	addr, err := s.RoamDHCP()
	if err != nil {
		t.Fatalf("RoamDHCP: %v", err)
	}
	if !s.VisitA.Prefix.Contains(addr) {
		t.Errorf("leased address %s not in visited prefix %s", addr, s.VisitA.Prefix)
	}
	if got, ok := s.HA.CareOf(s.MN.Home()); !ok || got != addr {
		t.Errorf("HA binding = %v,%v; want %s", got, ok, addr)
	}
}
