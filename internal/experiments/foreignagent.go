package experiments

import (
	"fmt"
	"strings"

	"mob4x4/internal/assert"
	"mob4x4/internal/core"
	"mob4x4/internal/mobileip"
	"mob4x4/internal/vtime"
)

// FAResult compares foreign-agent attachment against the paper's
// preferred self-sufficient attachment (Section 2: "It is impractical for
// mobile hosts to assume that foreign agent services will be available
// everywhere ... they also restrict the freedom of the mobile host").
type FAResult struct {
	Attachment string // "self-sufficient" or "foreign-agent"
	Registered bool
	// PingRTT is a round trip from the far correspondent to the MH's
	// home address.
	PingRTT       vtime.Duration
	PingDelivered bool
	// OutDTAvailable reports whether the mobile host can bypass Mobile
	// IP for short connections (the key freedom a foreign agent takes
	// away in this design).
	OutDTAvailable bool
	// FADelivered counts packets the foreign agent relayed on-link.
	FADelivered uint64
}

// RunForeignAgent executes the foreign-agent ablation.
func RunForeignAgent(seed int64, viaFA bool) FAResult {
	res := FAResult{Attachment: "self-sufficient"}
	if viaFA {
		res.Attachment = "foreign-agent"
	}
	s := Build(Options{Seed: seed, Selector: core.NewSelector(core.StartOptimistic)})

	var fa *mobileip.ForeignAgent
	if viaFA {
		faHost := s.Net.AddHost("fa", s.VisitA)
		s.Net.ComputeRoutes()
		var err error
		fa, err = mobileip.NewForeignAgent(faHost, faHost.Ifaces()[0], mobileip.ForeignAgentConfig{})
		assert.NoError(err, "foreignagent: create foreign agent")
		s.MN.MoveToForeignAgent(s.VisitA.Seg, fa.Addr())
		s.Net.RunFor(3 * Second)
	} else {
		s.Roam()
	}
	res.Registered = s.MN.Registered()

	p := s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*Second)
	res.PingDelivered = p.Delivered
	res.PingRTT = p.RTT

	// Out-DT availability: can the MH source a packet from an address of
	// its own that is topologically valid here? Self-sufficient: yes
	// (the care-of address is its own). Via FA: no — the care-of address
	// belongs to the agent.
	res.OutDTAvailable = !s.MN.ViaForeignAgent() && s.MN.CareOf() != s.MN.Home()
	if fa != nil {
		res.FADelivered = fa.Stats.Delivered
	}
	return res
}

// FATable renders the comparison.
func FATable(rows []FAResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 2 — attachment styles (self-sufficient vs foreign agent)\n")
	fmt.Fprintf(&b, "  %-16s %11s %10s %12s %8s %12s\n",
		"attachment", "registered", "ping ok", "ping RTT", "Out-DT?", "FA-relayed")
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-16s %11v %10v %12v %8v %12d\n",
			r.Attachment, r.Registered, r.PingDelivered, r.PingRTT, r.OutDTAvailable, r.FADelivered)
	}
	return b.String()
}

// CorrespondentTransitions is experiment E12: the correspondent-side
// decision sequence of Section 7.2 exercised end to end.
type CorrespondentTransitions struct {
	// Steps lists the In-mode the correspondent used for each phase:
	// before discovery, after an ICMP notice, after binding expiry.
	BeforeDiscovery core.InMode
	AfterNotice     core.InMode
	AfterExpiry     core.InMode
	// TempReply is the mode used when the MH initiated from its
	// temporary address.
	TempReply core.InMode
}

// RunCorrespondentTransitions executes E12.
func RunCorrespondentTransitions(seed int64) CorrespondentTransitions {
	s := Build(Options{Seed: seed, Notices: true, CHAware: true, CHDecap: true,
		Selector: core.NewSelector(core.StartOptimistic)})
	careOf := s.Roam()
	var res CorrespondentTransitions

	pol := s.CHFarC.Policy()
	res.BeforeDiscovery = pol.ModeFor(s.MN.Home(), false)

	// Ping once; the HA notice teaches the CH the binding.
	s.PingFrom(s.CHFarIC, s.CHFar, s.MN.Home(), 10*Second)
	res.AfterNotice = pol.ModeFor(s.MN.Home(), false)

	// Let the binding lifetime (60s default notice lifetime) expire.
	s.Net.RunFor(90 * Second)
	res.AfterExpiry = pol.ModeFor(s.MN.Home(), false)

	// Temporary-address initiation: the reply necessarily goes to the
	// temporary address (In-DT), aware or not.
	res.TempReply = pol.ModeFor(careOf, true)
	_ = careOf
	return res
}

// String renders E12.
func (r CorrespondentTransitions) String() string {
	return fmt.Sprintf(
		"Section 7.2 — correspondent choices: before=%s afterNotice=%s afterExpiry=%s tempReply=%s",
		r.BeforeDiscovery, r.AfterNotice, r.AfterExpiry, r.TempReply)
}
