package experiments

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"mob4x4/internal/netsim"
)

// chaosSeed lets CI reproduce a failing soak: CHAOS_SEED=n make chaos-smoke.
func chaosSeed(t *testing.T) int64 {
	if s := os.Getenv("CHAOS_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad CHAOS_SEED %q: %v", s, err)
		}
		return v
	}
	return 1
}

// TestChaosInvariants is the headline robustness check: one full chaos
// trial must heal completely — no invariant violations, no timer leaks,
// and (serial-only check) the pooled frame buffers balance at quiescence.
func TestChaosInvariants(t *testing.T) {
	seed := chaosSeed(t)
	base := netsim.BufOutstanding()
	r := RunChaos(seed)
	for _, v := range r.Violations {
		t.Errorf("seed %d: %s (reproduce: CHAOS_SEED=%d)", seed, v, seed)
	}
	// Buffer balance: only valid serially — sync.Pool is process-wide, so
	// parallel trials elsewhere would skew the delta.
	if d := netsim.BufOutstanding() - base; d != 0 {
		t.Errorf("seed %d: %d pooled buffers outstanding at quiescence (reproduce: CHAOS_SEED=%d)", seed, d, seed)
	}
	if r.TCPEchoes == 0 || r.ProbesSent == 0 {
		t.Errorf("seed %d: workloads idle (echoes=%d probes=%d)", seed, r.TCPEchoes, r.ProbesSent)
	}
	if len(r.FaultLog) == 0 {
		t.Errorf("seed %d: empty fault log", seed)
	}
}

// TestChaosDeterministicAcrossRuns pins byte-reproducibility: two runs of
// the same seed produce identical results, including the fault log.
func TestChaosDeterministicAcrossRuns(t *testing.T) {
	seed := chaosSeed(t)
	a := RunChaos(seed)
	b := RunChaos(seed)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("seed %d: same-seed runs diverged (reproduce: CHAOS_SEED=%d)\nrun1: %+v\nrun2: %+v", seed, seed, a, b)
	}
	if c := RunChaos(seed + 1); reflect.DeepEqual(stripSeed(a), stripSeed(c)) {
		t.Errorf("seed %d and %d produced identical results (RNG not wired?)", seed, seed+1)
	}
}

func stripSeed(r ChaosResult) ChaosResult {
	r.Seed = 0
	return r
}

// TestChaosParallelMatchesSerial pins worker-count independence: the
// parallel runner must produce byte-identical results for any worker
// count, trial by trial.
func TestChaosParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial chaos soak")
	}
	seed := chaosSeed(t)
	const trials = 3
	serial := RunChaosParallel(seed, trials, 1)
	for _, workers := range []int{2, 4} {
		par := RunChaosParallel(seed, trials, workers)
		if !reflect.DeepEqual(serial, par) {
			t.Errorf("workers=%d diverged from serial (reproduce: CHAOS_SEED=%d)", workers, seed)
		}
	}
	for i := range serial {
		if len(serial[i].Violations) != 0 {
			t.Errorf("seed %d: violations: %v", serial[i].Seed, serial[i].Violations)
		}
	}
}

// TestChaosTableRenders keeps the CLI renderer from bit-rotting.
func TestChaosTableRenders(t *testing.T) {
	r := ChaosResult{Seed: 9, TCPEchoes: 5, Violations: []string{"x"}, FaultLog: []string{"1 y"}}
	out := ChaosTable([]ChaosResult{r})
	for _, want := range []string{"E13", "VIOLATION: x", "fault log", "1 y"} {
		if !contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
