package netsim

import (
	"bytes"
	"testing"

	"mob4x4/internal/vtime"
)

func faultPair(t *testing.T) (*Sim, *Segment, *NIC, *NIC, *[][]byte) {
	t.Helper()
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{Latency: 1e6})
	sender := sim.NewNIC("tx")
	receiver := sim.NewNIC("rx")
	var got [][]byte
	receiver.SetReceiver(func(_ *NIC, f Frame) {
		got = append(got, append([]byte(nil), f.Payload...))
	})
	sender.Attach(seg)
	receiver.Attach(seg)
	return sim, seg, sender, receiver, &got
}

func sendPooled(sender *NIC, dst MAC, payload []byte) {
	buf := GetBuf()
	buf.B = append(buf.B, payload...)
	sender.Send(Frame{Dst: dst, Type: EtherTypeIPv4, Payload: buf.B, Buf: buf})
}

func TestFaultHookDuplicate(t *testing.T) {
	sim, seg, sender, receiver, got := faultPair(t)
	seg.SetFaultHook(func(Frame) Impairment { return Impairment{Duplicate: true} })
	base := BufOutstanding()
	sendPooled(sender, receiver.MAC(), []byte("twice"))
	sim.Sched.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d copies, want 2", len(*got))
	}
	for _, p := range *got {
		if !bytes.Equal(p, []byte("twice")) {
			t.Errorf("payload corrupted in duplication: %q", p)
		}
	}
	if seg.DuplicatedFrames != 1 {
		t.Errorf("DuplicatedFrames = %d, want 1", seg.DuplicatedFrames)
	}
	if n := BufOutstanding() - base; n != 0 {
		t.Errorf("BufOutstanding grew by %d (duplicate buffer leaked)", n)
	}
}

func TestFaultHookCorrupt(t *testing.T) {
	sim, seg, sender, receiver, got := faultPair(t)
	seg.SetFaultHook(func(Frame) Impairment { return Impairment{Corrupt: true} })
	orig := []byte("checksums must catch this")
	sendPooled(sender, receiver.MAC(), orig)
	sim.Sched.Run()
	if len(*got) != 1 {
		t.Fatalf("delivered %d frames, want 1", len(*got))
	}
	if bytes.Equal((*got)[0], orig) {
		t.Error("payload unchanged; corruption did not flip a bit")
	}
	// Exactly one bit differs.
	diffBits := 0
	for i := range orig {
		x := orig[i] ^ (*got)[0][i]
		for ; x != 0; x &= x - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Errorf("corruption flipped %d bits, want exactly 1", diffBits)
	}
	if seg.CorruptedFrames != 1 {
		t.Errorf("CorruptedFrames = %d, want 1", seg.CorruptedFrames)
	}
}

func TestFaultHookReorder(t *testing.T) {
	sim, seg, sender, receiver, got := faultPair(t)
	// Delay only the first frame far enough that the second overtakes it.
	first := true
	seg.SetFaultHook(func(Frame) Impairment {
		if first {
			first = false
			return Impairment{ExtraDelay: vtime.Duration(10e6)}
		}
		return Impairment{}
	})
	sendPooled(sender, receiver.MAC(), []byte("A"))
	sendPooled(sender, receiver.MAC(), []byte("B"))
	sim.Sched.Run()
	if len(*got) != 2 {
		t.Fatalf("delivered %d frames, want 2", len(*got))
	}
	if string((*got)[0]) != "B" || string((*got)[1]) != "A" {
		t.Errorf("order = %q,%q, want B then A (reordered)", (*got)[0], (*got)[1])
	}
	if seg.ReorderedFrames != 1 {
		t.Errorf("ReorderedFrames = %d, want 1", seg.ReorderedFrames)
	}
}

func TestFaultHookRemovalRestoresCleanPath(t *testing.T) {
	sim, seg, sender, receiver, got := faultPair(t)
	seg.SetFaultHook(func(Frame) Impairment { return Impairment{Drop: true} })
	sendPooled(sender, receiver.MAC(), []byte("lost"))
	seg.SetFaultHook(nil)
	sendPooled(sender, receiver.MAC(), []byte("clean"))
	sim.Sched.Run()
	if len(*got) != 1 || string((*got)[0]) != "clean" {
		t.Fatalf("got %d frames, want only the post-removal one", len(*got))
	}
	if seg.DroppedFault != 1 {
		t.Errorf("DroppedFault = %d, want 1", seg.DroppedFault)
	}
}

func TestSegmentDownWindow(t *testing.T) {
	sim, seg, sender, receiver, got := faultPair(t)
	seg.SetDown(true)
	sendPooled(sender, receiver.MAC(), []byte("during"))
	seg.SetDown(false)
	sendPooled(sender, receiver.MAC(), []byte("after"))
	sim.Sched.Run()
	if len(*got) != 1 || string((*got)[0]) != "after" {
		t.Fatalf("got %d frames, want only the post-heal one", len(*got))
	}
	if seg.DroppedDown != 1 {
		t.Errorf("DroppedDown = %d, want 1", seg.DroppedDown)
	}
}

// TestSegmentByName covers the fault-schedule addressing helper.
func TestSegmentByName(t *testing.T) {
	sim := NewSim(1)
	a := sim.NewSegment("alpha", SegmentOpts{})
	sim.NewSegment("beta", SegmentOpts{})
	if sim.SegmentByName("alpha") != a {
		t.Error("SegmentByName(alpha) did not return the segment")
	}
	if sim.SegmentByName("gamma") != nil {
		t.Error("SegmentByName(gamma) should be nil")
	}
}
