package netsim

import (
	"testing"
)

func TestUnicastDelivery(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{Latency: 1e6})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	c := sim.NewNIC("c")
	var bGot, cGot []Frame
	b.SetReceiver(func(_ *NIC, f Frame) { bGot = append(bGot, f) })
	c.SetReceiver(func(_ *NIC, f Frame) { cGot = append(cGot, f) })
	a.Attach(seg)
	b.Attach(seg)
	c.Attach(seg)

	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4, Payload: []byte("hi")})
	sim.Sched.Run()

	if len(bGot) != 1 || string(bGot[0].Payload) != "hi" {
		t.Errorf("b got %v", bGot)
	}
	if bGot[0].Src != a.MAC() {
		t.Errorf("frame src = %v, want %v", bGot[0].Src, a.MAC())
	}
	if len(cGot) != 0 {
		t.Errorf("c overheard unicast: %v", cGot)
	}
	if sim.Now() != 1e6 {
		t.Errorf("delivery time %v, want 1ms", sim.Now())
	}
}

func TestBroadcastDelivery(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{})
	nics := make([]*NIC, 4)
	got := make([]int, 4)
	for i := range nics {
		i := i
		nics[i] = sim.NewNIC("n")
		nics[i].SetReceiver(func(_ *NIC, f Frame) { got[i]++ })
		nics[i].Attach(seg)
	}
	nics[0].Send(Frame{Dst: BroadcastMAC, Type: EtherTypeARP})
	sim.Sched.Run()
	if got[0] != 0 {
		t.Error("sender received its own broadcast")
	}
	for i := 1; i < 4; i++ {
		if got[i] != 1 {
			t.Errorf("nic %d got %d frames", i, got[i])
		}
	}
}

func TestPromiscuousReceivesAll(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	snoop := sim.NewNIC("snoop")
	snoop.SetPromiscuous(true)
	var snooped int
	snoop.SetReceiver(func(_ *NIC, f Frame) { snooped++ })
	b.SetReceiver(func(_ *NIC, f Frame) {})
	a.Attach(seg)
	b.Attach(seg)
	snoop.Attach(seg)

	a.Send(Frame{Dst: b.MAC(), Type: EtherTypeIPv4})
	sim.Sched.Run()
	if snooped != 1 {
		t.Errorf("promiscuous nic saw %d frames", snooped)
	}
}

func TestMTUDrop(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{MTU: 100})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	var got int
	b.SetReceiver(func(_ *NIC, f Frame) { got++ })
	a.Attach(seg)
	b.Attach(seg)

	a.Send(Frame{Dst: b.MAC(), Payload: make([]byte, 101)})
	a.Send(Frame{Dst: b.MAC(), Payload: make([]byte, 100)})
	sim.Sched.Run()
	if got != 1 {
		t.Errorf("got %d frames, want 1", got)
	}
	if seg.DroppedMTU != 1 {
		t.Errorf("DroppedMTU = %d", seg.DroppedMTU)
	}
	if sim.Trace.Count(EventDropMTU) != 1 {
		t.Error("MTU drop not traced")
	}
}

func TestLossRate(t *testing.T) {
	sim := NewSim(7)
	seg := sim.NewSegment("lossy", SegmentOpts{LossRate: 0.5})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	var got int
	b.SetReceiver(func(_ *NIC, f Frame) { got++ })
	a.Attach(seg)
	b.Attach(seg)

	const n = 2000
	for i := 0; i < n; i++ {
		a.Send(Frame{Dst: b.MAC()})
	}
	sim.Sched.Run()
	if got < n*4/10 || got > n*6/10 {
		t.Errorf("50%% loss delivered %d/%d", got, n)
	}
	if seg.DroppedLoss+uint64(got) != n {
		t.Errorf("drops (%d) + delivered (%d) != sent (%d)", seg.DroppedLoss, got, n)
	}
}

func TestDetachedSendDropped(t *testing.T) {
	sim := NewSim(1)
	a := sim.NewNIC("a")
	a.Send(Frame{Dst: BroadcastMAC}) // no segment: silently dropped
	sim.Sched.Run()
	if a.TxFrames != 0 {
		t.Error("detached send counted as transmitted")
	}
}

func TestDetachMidFlight(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{Latency: 10e6})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	var got int
	b.SetReceiver(func(_ *NIC, f Frame) { got++ })
	a.Attach(seg)
	b.Attach(seg)
	a.Send(Frame{Dst: b.MAC()})
	// b detaches before the frame lands.
	sim.Sched.After(5e6, func() { b.Detach() })
	sim.Sched.Run()
	if got != 0 {
		t.Error("frame delivered to detached NIC")
	}
}

func TestMoveBetweenSegments(t *testing.T) {
	sim := NewSim(1)
	s1 := sim.NewSegment("s1", SegmentOpts{})
	s2 := sim.NewSegment("s2", SegmentOpts{})
	mobile := sim.NewNIC("mobile")
	var got []string
	mobile.SetReceiver(func(_ *NIC, f Frame) { got = append(got, string(f.Payload)) })
	peer1 := sim.NewNIC("p1")
	peer2 := sim.NewNIC("p2")
	peer1.Attach(s1)
	peer2.Attach(s2)

	mobile.Attach(s1)
	peer1.Send(Frame{Dst: mobile.MAC(), Payload: []byte("one")})
	sim.Sched.Run()
	mobile.Attach(s2) // implicit detach from s1
	peer1.Send(Frame{Dst: mobile.MAC(), Payload: []byte("lost")})
	peer2.Send(Frame{Dst: mobile.MAC(), Payload: []byte("two")})
	sim.Sched.Run()

	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Errorf("got %v", got)
	}
	if len(s1.NICs()) != 1 {
		t.Errorf("s1 still has %d nics", len(s1.NICs()))
	}
}

func TestMACString(t *testing.T) {
	if BroadcastMAC.String() != "ff:ff:ff:ff:ff:ff" {
		t.Errorf("broadcast MAC = %s", BroadcastMAC)
	}
	m := MAC(0x020000000001)
	if m.String() != "02:00:00:00:00:01" {
		t.Errorf("MAC = %s", m)
	}
}

func TestAllocMACUnique(t *testing.T) {
	sim := NewSim(1)
	seen := map[MAC]bool{}
	for i := 0; i < 1000; i++ {
		m := sim.AllocMAC()
		if seen[m] {
			t.Fatalf("duplicate MAC %v", m)
		}
		seen[m] = true
	}
}

func TestTracerPathAndHops(t *testing.T) {
	tr := NewTracer()
	id := tr.NextPacketID()
	tr.Record(Event{Kind: EventSend, Where: "a", PktID: id})
	tr.Record(Event{Kind: EventForward, Where: "r1", PktID: id})
	tr.Record(Event{Kind: EventForward, Where: "r2", PktID: id})
	tr.Record(Event{Kind: EventDeliver, Where: "b", PktID: id})
	other := tr.NextPacketID()
	tr.Record(Event{Kind: EventForward, Where: "rX", PktID: other})

	if got := tr.Hops(id); got != 2 {
		t.Errorf("Hops = %d", got)
	}
	if got := tr.Path(id); got != "a -> r1 -> r2 -> b" {
		t.Errorf("Path = %q", got)
	}
	if got := len(tr.PacketEvents(id)); got != 4 {
		t.Errorf("PacketEvents = %d", got)
	}
	if tr.Count(EventForward) != 3 {
		t.Errorf("Count = %d", tr.Count(EventForward))
	}
	tr.Reset()
	if len(tr.Events()) != 0 || tr.Count(EventForward) != 0 {
		t.Error("Reset incomplete")
	}
}

func TestTracerDisabledStillCounts(t *testing.T) {
	tr := NewTracer()
	tr.Enabled = false
	tr.Record(Event{Kind: EventDropFilter, Where: "gw"})
	if len(tr.Events()) != 0 {
		t.Error("disabled tracer stored events")
	}
	if tr.Count(EventDropFilter) != 1 {
		t.Error("disabled tracer lost counts")
	}
}

func TestEventKindStrings(t *testing.T) {
	kinds := []EventKind{EventSend, EventForward, EventDeliver, EventDropFilter,
		EventDropTTL, EventDropNoRoute, EventDropMTU, EventDropLoss,
		EventEncap, EventDecap, EventMove, EventRegister, EventNote}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d string %q empty or duplicate", k, s)
		}
		seen[s] = true
	}
	if EventKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func BenchmarkSegmentThroughput(b *testing.B) {
	sim := NewSim(1)
	sim.Trace.Enabled = false
	seg := sim.NewSegment("lan", SegmentOpts{})
	a := sim.NewNIC("a")
	dst := sim.NewNIC("b")
	dst.SetReceiver(func(_ *NIC, f Frame) {})
	a.Attach(seg)
	dst.Attach(seg)
	payload := make([]byte, 1400)
	b.SetBytes(1400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Send(Frame{Dst: dst.MAC(), Payload: payload})
		if i%256 == 255 {
			sim.Sched.Run()
		}
	}
	sim.Sched.Run()
}

func TestBandwidthSerializationDelay(t *testing.T) {
	sim := NewSim(1)
	// 1 Mbit/s, zero propagation latency: a 1250-byte wire frame takes
	// exactly 10ms+ to serialize ((1250+14)*8 us ≈ 10.1ms).
	seg := sim.NewSegment("slow", SegmentOpts{BandwidthBps: 1_000_000})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	var arrivals []int64
	b.SetReceiver(func(_ *NIC, f Frame) { arrivals = append(arrivals, int64(sim.Now())) })
	a.Attach(seg)
	b.Attach(seg)

	a.Send(Frame{Dst: b.MAC(), Payload: make([]byte, 1236)}) // 1250B on the wire
	a.Send(Frame{Dst: b.MAC(), Payload: make([]byte, 1236)})
	sim.Sched.Run()

	if len(arrivals) != 2 {
		t.Fatalf("arrivals = %d", len(arrivals))
	}
	txNs := int64(1250 * 8 * 1000) // 10ms in ns
	if arrivals[0] != txNs {
		t.Errorf("first arrival at %d ns, want %d", arrivals[0], txNs)
	}
	// The second frame queued behind the first: twice the serialization.
	if arrivals[1] != 2*txNs {
		t.Errorf("second arrival at %d ns, want %d (queued)", arrivals[1], 2*txNs)
	}
	if seg.QueueDelayTotal == 0 {
		t.Error("queueing delay not recorded")
	}
}

func TestInfiniteBandwidthUnchanged(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("fast", SegmentOpts{Latency: 5e6})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	var when []int64
	b.SetReceiver(func(_ *NIC, f Frame) { when = append(when, int64(sim.Now())) })
	a.Attach(seg)
	b.Attach(seg)
	a.Send(Frame{Dst: b.MAC(), Payload: make([]byte, 1400)})
	a.Send(Frame{Dst: b.MAC(), Payload: make([]byte, 1400)})
	sim.Sched.Run()
	if len(when) != 2 || when[0] != 5e6 || when[1] != 5e6 {
		t.Errorf("arrivals = %v, want both at 5ms (no serialization)", when)
	}
}

func TestJitterReordersFrames(t *testing.T) {
	sim := NewSim(5)
	seg := sim.NewSegment("jittery", SegmentOpts{Latency: 1e6, JitterMax: 20e6})
	a := sim.NewNIC("a")
	b := sim.NewNIC("b")
	var order []byte
	b.SetReceiver(func(_ *NIC, f Frame) { order = append(order, f.Payload[0]) })
	a.Attach(seg)
	b.Attach(seg)
	for i := 0; i < 50; i++ {
		a.Send(Frame{Dst: b.MAC(), Payload: []byte{byte(i)}})
	}
	sim.Sched.Run()
	if len(order) != 50 {
		t.Fatalf("delivered %d/50", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
			break
		}
	}
	if inOrder {
		t.Error("50 frames under heavy jitter arrived perfectly ordered; reordering not happening")
	}
}
