package netsim

import (
	"fmt"
	"strings"

	"mob4x4/internal/vtime"
)

// EventKind classifies tracer events.
type EventKind int

// Tracer event kinds. The per-hop events (EventForward, EventDeliver,
// EventDropFilter, ...) are what the experiment harness uses to count hops,
// verify which router dropped a packet, and render paper-figure paths.
const (
	EventSend        EventKind = iota + 1 // host originated a packet
	EventForward                          // router forwarded a packet
	EventDeliver                          // packet delivered to final destination stack
	EventDropFilter                       // filter policy discarded the packet
	EventDropTTL                          // TTL expired
	EventDropNoRoute                      // no route to destination
	EventDropMTU                          // exceeded segment MTU
	EventDropLoss                         // random loss
	EventEncap                            // packet entered a tunnel
	EventDecap                            // packet exited a tunnel
	EventMove                             // mobile host changed attachment
	EventRegister                         // mobile host (de)registered with an agent
	EventNote                             // free-form annotation
	EventDropNoDest                       // no attached receiver on the segment
	EventDropDown                         // segment administratively down (fault window)
	EventDropFault                        // fault-injection hook discarded the frame
)

func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventForward:
		return "forward"
	case EventDeliver:
		return "deliver"
	case EventDropFilter:
		return "drop-filter"
	case EventDropTTL:
		return "drop-ttl"
	case EventDropNoRoute:
		return "drop-noroute"
	case EventDropMTU:
		return "drop-mtu"
	case EventDropLoss:
		return "drop-loss"
	case EventEncap:
		return "encap"
	case EventDecap:
		return "decap"
	case EventMove:
		return "move"
	case EventRegister:
		return "register"
	case EventNote:
		return "note"
	case EventDropNoDest:
		return "drop-nodest"
	case EventDropDown:
		return "drop-down"
	case EventDropFault:
		return "drop-fault"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one tracer record.
type Event struct {
	Kind   EventKind
	Time   vtime.Time
	Where  string // node or segment name
	PktID  uint64 // simulation-wide packet trace id (0 if not applicable)
	Detail string
}

func (e Event) String() string {
	if e.PktID != 0 {
		return fmt.Sprintf("%10v %-12s %-14s pkt=%d %s", e.Time, e.Kind, e.Where, e.PktID, e.Detail)
	}
	return fmt.Sprintf("%10v %-12s %-14s %s", e.Time, e.Kind, e.Where, e.Detail)
}

// traceChunk is the tracer's storage granularity: events are stored in
// fixed-capacity chunks so recording never copies old events (the old
// single-slice store re-copied the whole history on every append growth,
// which dominated tracer cost in long runs).
const traceChunk = 256

// Tracer collects events. Recording can be disabled for benchmarks (counts
// are still kept); Discard additionally releases the stored events.
type Tracer struct {
	Enabled  bool
	noDetail bool // events recorded, Detail strings skipped
	chunks   [][]Event
	n        int // total stored events
	counts   [32]uint64
	nextPkt  uint64
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{Enabled: true}
}

// NextPacketID allocates a trace id for a new packet entering the network.
func (t *Tracer) NextPacketID() uint64 {
	t.nextPkt++
	return t.nextPkt
}

// Recording reports whether events are being stored.
func (t *Tracer) Recording() bool { return t.Enabled }

// Detailing reports whether event Detail strings should be built. Hot
// paths gate the construction of Detail strings on it: counts and events
// are maintained either way, but formatting work is wasted when nobody
// will read the text. Experiments that walk events structurally (by
// Kind/Where/PktID, e.g. hop counting) call DiscardDetails to keep the
// trace and drop the strings.
func (t *Tracer) Detailing() bool { return t.Enabled && !t.noDetail }

// DiscardDetails keeps recording events but stops the construction of
// their Detail strings, the most expensive part of tracing.
func (t *Tracer) DiscardDetails() { t.noDetail = true }

// Discard turns off event storage and releases the events stored so far,
// keeping counts. Benchmarks and sweeps that never inspect paths call this
// right after building a scenario.
func (t *Tracer) Discard() {
	t.Enabled = false
	t.chunks = nil
	t.n = 0
}

func (t *Tracer) record(e Event) {
	if k := int(e.Kind); k >= 0 && k < len(t.counts) {
		t.counts[k]++
	}
	if !t.Enabled {
		return
	}
	last := len(t.chunks) - 1
	if last < 0 || len(t.chunks[last]) == traceChunk {
		t.chunks = append(t.chunks, make([]Event, 0, traceChunk))
		last++
	}
	t.chunks[last] = append(t.chunks[last], e)
	t.n++
}

// Record appends an event (exported for packages stack/mobileip).
func (t *Tracer) Record(e Event) { t.record(e) }

// Count returns how many events of the given kind were recorded since the
// last Reset, regardless of Enabled.
func (t *Tracer) Count(kind EventKind) uint64 {
	if k := int(kind); k >= 0 && k < len(t.counts) {
		return t.counts[k]
	}
	return 0
}

// Len returns the number of stored events. Use with EventsFrom to walk a
// window of the trace without copying it.
func (t *Tracer) Len() int { return t.n }

// Events returns all recorded events as one contiguous slice (copied).
// Callers that only need a suffix should use Len/EventsFrom.
func (t *Tracer) Events() []Event { return t.EventsFrom(0) }

// EventsFrom returns the events at indices [start, Len()). When the window
// lies inside the newest chunk — the common "what happened since I noted
// Len()" pattern — the returned slice aliases the store and allocates
// nothing; otherwise it is a fresh copy.
func (t *Tracer) EventsFrom(start int) []Event {
	if start < 0 {
		start = 0
	}
	if start >= t.n {
		return nil
	}
	ci, off := start/traceChunk, start%traceChunk
	if ci == len(t.chunks)-1 {
		return t.chunks[ci][off:]
	}
	out := make([]Event, 0, t.n-start)
	out = append(out, t.chunks[ci][off:]...)
	for _, c := range t.chunks[ci+1:] {
		out = append(out, c...)
	}
	return out
}

// PacketEvents returns the events for one packet trace id, in order.
func (t *Tracer) PacketEvents(pktID uint64) []Event {
	var out []Event
	for _, c := range t.chunks {
		for _, e := range c {
			if e.PktID == pktID {
				out = append(out, e)
			}
		}
	}
	return out
}

// Hops returns the number of forwarding hops (EventForward) for a packet.
func (t *Tracer) Hops(pktID uint64) int {
	n := 0
	for _, c := range t.chunks {
		for _, e := range c {
			if e.PktID == pktID && e.Kind == EventForward {
				n++
			}
		}
	}
	return n
}

// Path renders a packet's journey as "A -> B -> C" using the Where fields
// of its send/forward/deliver events.
func (t *Tracer) Path(pktID uint64) string {
	var parts []string
	for _, c := range t.chunks {
		for _, e := range c {
			if e.PktID != pktID {
				continue
			}
			switch e.Kind {
			case EventSend, EventForward, EventDeliver, EventEncap, EventDecap:
				label := e.Where
				if e.Kind == EventEncap {
					label += "[encap]"
				}
				if e.Kind == EventDecap {
					label += "[decap]"
				}
				if len(parts) == 0 || parts[len(parts)-1] != label {
					parts = append(parts, label)
				}
			case EventDropFilter, EventDropTTL, EventDropNoRoute, EventDropMTU, EventDropLoss,
				EventDropNoDest, EventDropDown, EventDropFault:
				parts = append(parts, fmt.Sprintf("X(%s@%s)", e.Kind, e.Where))
			}
		}
	}
	return strings.Join(parts, " -> ")
}

// Reset clears events and counts.
func (t *Tracer) Reset() {
	t.chunks = nil
	t.n = 0
	t.counts = [32]uint64{}
}
