package netsim

import (
	"fmt"
	"strings"

	"mob4x4/internal/vtime"
)

// EventKind classifies tracer events.
type EventKind int

// Tracer event kinds. The per-hop events (EventForward, EventDeliver,
// EventDropFilter, ...) are what the experiment harness uses to count hops,
// verify which router dropped a packet, and render paper-figure paths.
const (
	EventSend        EventKind = iota + 1 // host originated a packet
	EventForward                          // router forwarded a packet
	EventDeliver                          // packet delivered to final destination stack
	EventDropFilter                       // filter policy discarded the packet
	EventDropTTL                          // TTL expired
	EventDropNoRoute                      // no route to destination
	EventDropMTU                          // exceeded segment MTU
	EventDropLoss                         // random loss
	EventEncap                            // packet entered a tunnel
	EventDecap                            // packet exited a tunnel
	EventMove                             // mobile host changed attachment
	EventRegister                         // mobile host (de)registered with an agent
	EventNote                             // free-form annotation
)

func (k EventKind) String() string {
	switch k {
	case EventSend:
		return "send"
	case EventForward:
		return "forward"
	case EventDeliver:
		return "deliver"
	case EventDropFilter:
		return "drop-filter"
	case EventDropTTL:
		return "drop-ttl"
	case EventDropNoRoute:
		return "drop-noroute"
	case EventDropMTU:
		return "drop-mtu"
	case EventDropLoss:
		return "drop-loss"
	case EventEncap:
		return "encap"
	case EventDecap:
		return "decap"
	case EventMove:
		return "move"
	case EventRegister:
		return "register"
	case EventNote:
		return "note"
	default:
		return fmt.Sprintf("event(%d)", int(k))
	}
}

// Event is one tracer record.
type Event struct {
	Kind   EventKind
	Time   vtime.Time
	Where  string // node or segment name
	PktID  uint64 // simulation-wide packet trace id (0 if not applicable)
	Detail string
}

func (e Event) String() string {
	if e.PktID != 0 {
		return fmt.Sprintf("%10v %-12s %-14s pkt=%d %s", e.Time, e.Kind, e.Where, e.PktID, e.Detail)
	}
	return fmt.Sprintf("%10v %-12s %-14s %s", e.Time, e.Kind, e.Where, e.Detail)
}

// Tracer collects events. Recording can be disabled for benchmarks (counts
// are still kept).
type Tracer struct {
	Enabled bool
	events  []Event
	counts  map[EventKind]uint64
	nextPkt uint64
}

// NewTracer returns an enabled tracer.
func NewTracer() *Tracer {
	return &Tracer{Enabled: true, counts: make(map[EventKind]uint64)}
}

// NextPacketID allocates a trace id for a new packet entering the network.
func (t *Tracer) NextPacketID() uint64 {
	t.nextPkt++
	return t.nextPkt
}

func (t *Tracer) record(e Event) {
	t.counts[e.Kind]++
	if t.Enabled {
		t.events = append(t.events, e)
	}
}

// Record appends an event (exported for packages stack/mobileip).
func (t *Tracer) Record(e Event) { t.record(e) }

// Count returns how many events of the given kind were recorded since the
// last Reset, regardless of Enabled.
func (t *Tracer) Count(kind EventKind) uint64 { return t.counts[kind] }

// Events returns all recorded events.
func (t *Tracer) Events() []Event { return t.events }

// PacketEvents returns the events for one packet trace id, in order.
func (t *Tracer) PacketEvents(pktID uint64) []Event {
	var out []Event
	for _, e := range t.events {
		if e.PktID == pktID {
			out = append(out, e)
		}
	}
	return out
}

// Hops returns the number of forwarding hops (EventForward) for a packet.
func (t *Tracer) Hops(pktID uint64) int {
	n := 0
	for _, e := range t.events {
		if e.PktID == pktID && e.Kind == EventForward {
			n++
		}
	}
	return n
}

// Path renders a packet's journey as "A -> B -> C" using the Where fields
// of its send/forward/deliver events.
func (t *Tracer) Path(pktID uint64) string {
	var parts []string
	for _, e := range t.events {
		if e.PktID != pktID {
			continue
		}
		switch e.Kind {
		case EventSend, EventForward, EventDeliver, EventEncap, EventDecap:
			label := e.Where
			if e.Kind == EventEncap {
				label += "[encap]"
			}
			if e.Kind == EventDecap {
				label += "[decap]"
			}
			if len(parts) == 0 || parts[len(parts)-1] != label {
				parts = append(parts, label)
			}
		case EventDropFilter, EventDropTTL, EventDropNoRoute, EventDropMTU, EventDropLoss:
			parts = append(parts, fmt.Sprintf("X(%s@%s)", e.Kind, e.Where))
		}
	}
	return strings.Join(parts, " -> ")
}

// Reset clears events and counts.
func (t *Tracer) Reset() {
	t.events = t.events[:0]
	t.counts = make(map[EventKind]uint64)
}
