package netsim

import (
	"testing"

	"mob4x4/internal/race"
)

// TestSteadyStateHopZeroAllocs pins the link layer's per-frame cost: once
// the delivery-job and buffer pools are warm, carrying a frame across a
// segment (schedule, copy, deliver) must not allocate.
func TestSteadyStateHopZeroAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("allocation counts are unstable under the race detector")
	}
	sim := NewSim(1)
	sim.Trace.Discard()
	seg := sim.NewSegment("lan", SegmentOpts{})
	a := sim.NewNIC("a")
	dst := sim.NewNIC("b")
	delivered := 0
	dst.SetReceiver(func(_ *NIC, f Frame) { delivered++ })
	a.Attach(seg)
	dst.Attach(seg)
	payload := make([]byte, 1400)

	// Warm the pools and the scheduler's timer store.
	for i := 0; i < 64; i++ {
		a.Send(Frame{Dst: dst.MAC(), Payload: payload})
	}
	sim.Sched.Run()

	allocs := testing.AllocsPerRun(200, func() {
		a.Send(Frame{Dst: dst.MAC(), Payload: payload})
		sim.Sched.Run()
	})
	if delivered == 0 {
		t.Fatal("nothing delivered")
	}
	if allocs != 0 {
		t.Fatalf("steady-state hop allocated %.1f times per run, want 0", allocs)
	}
}
