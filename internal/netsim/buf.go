package netsim

import (
	"sync"
	"sync/atomic"

	"mob4x4/internal/metrics"
)

// Buf is a reusable payload buffer drawn from a process-wide pool. The fast
// packet path serializes every frame payload into one of these instead of
// allocating per hop: the sender appends wire bytes into B, hands the Buf to
// the link layer via Frame.Buf, and the segment returns it to the pool once
// the frame is dropped or every receiver callback has returned.
//
// Ownership contract (see DESIGN.md "Performance engineering"):
//
//   - A Buf handed to NIC.Send via Frame.Buf belongs to the link layer.
//     The sender must not touch B afterwards.
//   - Receive callbacks may read the payload only until they return.
//     Anything retained past the callback (reassembly pieces, ARP pending
//     queues, delivery deferred through the scheduler) must be copied.
//   - A Buf used as scratch (marshal, send synchronously, recycle) is
//     returned by the same function that got it.
//
// The pool is shared across simulations; sync.Pool is safe for the parallel
// experiment runner, and pooling does not affect determinism because buffer
// identity is never observable in traces.
type Buf struct {
	B []byte
}

// bufCap covers a full default-MTU frame plus tunnel headroom so steady
// state never grows a pooled buffer.
const bufCap = DefaultMTU + 64

//mob4x4vet:allow globalstate sync.Pool is concurrency-safe and buffer identity is unobservable; shards may share it
var bufPool = sync.Pool{New: func() any { return &Buf{B: make([]byte, 0, bufCap)} }}

// bufOutstanding counts buffers currently checked out of the pool
// (GetBuf minus PutBuf). The chaos experiment's quiescence invariant
// asserts it returns to its starting value once a run drains: a non-zero
// delta means some path leaked (or double-freed) a pooled buffer.
//mob4x4vet:allow globalstate atomic leak counter asserted by the chaos quiescence invariant; per-shard counts would hide cross-shard leaks
var bufOutstanding atomic.Int64

// BufOutstanding returns the number of pooled buffers currently checked
// out (GetBuf calls minus non-nil PutBuf calls), process-wide.
func BufOutstanding() int64 { return bufOutstanding.Load() }

// GetBuf returns an empty pooled buffer (len 0).
func GetBuf() *Buf {
	bufOutstanding.Add(1)
	return bufPool.Get().(*Buf)
}

// PutBuf returns b to the pool. nil is a no-op so error paths can recycle
// unconditionally.
func PutBuf(b *Buf) {
	if b == nil {
		return
	}
	bufOutstanding.Add(-1)
	b.B = b.B[:0]
	bufPool.Put(b)
}

// delivery is a pooled in-flight frame: the receiving segment plus the
// frame itself, scheduled through the handle-free vtime path so a
// steady-state hop allocates nothing. dests is scratch for runDelivery's
// receiver snapshot; its backing array is reused across deliveries.
type delivery struct {
	seg   *Segment
	frame Frame
	dests []*NIC
}

//mob4x4vet:allow globalstate sync.Pool is concurrency-safe and delivery identity is unobservable; shards may share it
var deliveryPool = sync.Pool{New: func() any { return new(delivery) }}

// runDelivery is the scheduler callback for frame delivery. A top-level
// func so scheduling it never allocates a closure.
//
// Receivers are resolved here — at arrival, against the segment's current
// attachment table — not at send time: who hears a frame is decided by
// who is on the wire when it lands (a NIC that attached mid-flight hears
// it, one that left does not), and for a split cross-shard segment this
// keeps every read of NIC state on the shard that owns the receiving
// half. The resolved set is snapshotted into the pooled dests slice
// before any callback runs, so receivers that attach or detach NICs from
// inside their callbacks cannot corrupt the iteration; the sender is
// excluded by MAC (frames carry Src, and MACs are cluster-unique), which
// works even when the sender's NIC lives on the far half.
func runDelivery(a any) {
	d := a.(*delivery)
	seg := d.seg
	f := d.frame
	if f.Dst != BroadcastMAC && seg.promisc == 0 {
		// Unicast with nobody listening promiscuously: direct dispatch
		// via the MAC index on big segments, a linear scan on small ones.
		var n *NIC
		if seg.byMAC != nil {
			n = seg.byMAC[f.Dst]
		} else {
			for _, m := range seg.nics {
				if m.mac == f.Dst {
					n = m
					break
				}
			}
		}
		if n != nil && n.mac != f.Src {
			d.dests = append(d.dests, n)
		}
	} else {
		for _, n := range seg.nics {
			if n.mac == f.Src {
				continue
			}
			if f.Dst == BroadcastMAC || f.Dst == n.mac || n.promiscuous {
				d.dests = append(d.dests, n)
			}
		}
	}
	if len(d.dests) == 0 {
		seg.DroppedNoDest++
		seg.sim.Metrics.Drop(metrics.DropNoDest)
		seg.sim.Trace.record(Event{Kind: EventDropNoDest, Time: seg.sim.Now(), Where: seg.name})
	}
	for _, n := range d.dests {
		if n.segment != seg {
			continue // detached by an earlier receiver in this very loop
		}
		seg.Delivered++
		if n.recv != nil {
			n.recv(n, f)
		}
	}
	// All receivers have returned (broadcast shares the one buffer), so
	// the payload storage can go back to the pool.
	PutBuf(f.Buf)
	releaseDelivery(d)
}

func releaseDelivery(d *delivery) {
	d.seg = nil
	d.frame = Frame{}
	for i := range d.dests {
		d.dests[i] = nil
	}
	d.dests = d.dests[:0]
	deliveryPool.Put(d)
}
