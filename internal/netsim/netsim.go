// Package netsim provides the simulated link layer and the simulation
// container. A Sim owns a deterministic virtual-time scheduler, a packet
// tracer and a set of Segments — broadcast link-layer domains analogous to
// Ethernet segments. Hosts and routers (package stack) attach NICs to
// segments; everything above the link layer is built on top of this
// package.
//
// The original paper ran on real Ethernets, PPP links and a modified Linux
// kernel. This package is the substitution: a deterministic in-process
// topology with per-segment latency, MTU and loss, which preserves the
// properties the paper's arguments depend on (who can hear whom, how many
// hops a path takes, where filters sit, and what the MTU does to
// encapsulated packets).
package netsim

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"

	"mob4x4/internal/assert"
	"mob4x4/internal/metrics"
	"mob4x4/internal/vtime"
)

// MAC is a simulated link-layer address.
type MAC uint64

// BroadcastMAC is the all-ones link-layer broadcast address.
const BroadcastMAC MAC = 0xffffffffffff

func (m MAC) String() string {
	if m == BroadcastMAC {
		return "ff:ff:ff:ff:ff:ff"
	}
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

// EtherType values used on simulated segments.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
)

// Frame is a link-layer frame. TraceID is simulation metadata (a capture
// annotation, not wire content): it identifies the logical packet across
// hops and through encapsulation so the tracer can reconstruct paths.
type Frame struct {
	Src     MAC
	Dst     MAC
	Type    uint16
	Payload []byte
	TraceID uint64
	// Buf, when non-nil, is the pooled buffer backing Payload. The link
	// layer owns it from NIC.Send onward and returns it to the pool once
	// the frame is dropped or every receiver callback has returned; see
	// the ownership contract on Buf.
	Buf *Buf
}

// FrameHeaderLen approximates an Ethernet header (dst+src+type) for size
// accounting; the simulation does not serialize frames to bytes.
const FrameHeaderLen = 14

// Sim is the simulation container: scheduler, tracer, and allocation of
// unique identifiers. Create one per experiment.
type Sim struct {
	Sched *vtime.Scheduler
	Trace *Tracer
	// Metrics is the simulation-wide metric registry. Everything above
	// the link layer (stack, mobileip, faults) funnels counts here; like
	// the scheduler it is per-Sim state, updated single-threaded from
	// inside the event loop, so parallel experiment workers never share
	// an instrument.
	Metrics  *metrics.Registry
	nextMAC  MAC
	segments []*Segment
	// cluster, when non-nil, is the shard cluster this Sim belongs to;
	// MAC allocation then draws from the cluster-wide counter so link
	// addresses stay unique across all region Sims of one run.
	cluster *Cluster
	// tap, when non-nil, observes every frame that enters a segment of
	// this Sim and survives the down and MTU checks — the vantage point
	// of a capture at the sending NIC, before the loss draw and before
	// any fault-hook corruption. The frame is passed by value (same
	// escape-analysis reasoning as the fault hook) and the tap must copy
	// any payload bytes it wants to keep before returning: the payload
	// is pooled storage the link layer recycles after delivery. Nil (the
	// default) costs one predictable branch on the fast path.
	tap func(Frame)
}

// NewSim returns a fresh simulation with the given RNG seed.
func NewSim(seed int64) *Sim {
	return &Sim{
		Sched:   vtime.NewScheduler(seed),
		Trace:   NewTracer(),
		Metrics: metrics.NewRegistry(),
		nextMAC: 0x0200_0000_0001, // locally administered range
	}
}

// Cluster groups the per-region Sims of one sharded run: each region owns
// its own scheduler (a shard of a vtime.Group), tracer and metric
// registry, while MAC addresses come from one shared counter — a MAC
// identifies a NIC across the whole simulated internetwork, so two
// regions must never mint the same one. Cluster construction and all
// allocation through it happen during the single-threaded build phase.
type Cluster struct {
	nextMAC MAC
	sims    []*Sim
}

// NewCluster returns an empty shard cluster.
func NewCluster() *Cluster { return &Cluster{nextMAC: 0x0200_0000_0001} }

// NewSim creates a region simulation driven by the given scheduler —
// one shard of a vtime.Group. The region owns its tracer and metric
// registry (merged at measurement time), but draws MACs from the
// cluster-wide counter.
func (c *Cluster) NewSim(sched *vtime.Scheduler) *Sim {
	s := &Sim{
		Sched:   sched,
		Trace:   NewTracer(),
		Metrics: metrics.NewRegistry(),
		cluster: c,
	}
	c.sims = append(c.sims, s)
	return s
}

// Sims returns the cluster's member simulations in creation order.
func (c *Cluster) Sims() []*Sim { return c.sims }

// Now returns the current virtual time.
func (s *Sim) Now() vtime.Time { return s.Sched.Now() }

// SetTap installs (or with nil removes) the Sim-wide frame tap; see the
// field comment for the vantage point and the ownership contract.
// Install during the single-threaded build phase: the tap is read from
// this Sim's event loop. Package pcap's Attach is the standard consumer.
func (s *Sim) SetTap(fn func(Frame)) { s.tap = fn }

// AllocMAC returns a fresh unique MAC address (cluster-wide unique when
// the Sim belongs to a Cluster).
func (s *Sim) AllocMAC() MAC {
	if s.cluster != nil {
		m := s.cluster.nextMAC
		s.cluster.nextMAC++
		return m
	}
	m := s.nextMAC
	s.nextMAC++
	return m
}

// Segments returns the segments created in this simulation, in creation
// order.
func (s *Sim) Segments() []*Segment { return s.segments }

// SegmentByName returns the segment with the given name, or nil. Fault
// schedules use it to address links by the names the topology builder
// assigned (e.g. "p2p-visitGWA-bb2").
func (s *Sim) SegmentByName(name string) *Segment {
	for _, seg := range s.segments {
		if seg.name == name {
			return seg
		}
	}
	return nil
}

// SegmentOpts configures a Segment.
type SegmentOpts struct {
	// Latency is the one-way propagation delay for every frame on the
	// segment. Zero is allowed (frames still go through the scheduler, so
	// ordering stays deterministic).
	Latency vtime.Duration
	// MTU is the maximum IP packet size (link payload) the segment
	// carries. Frames with larger payloads are dropped and counted.
	// Zero means DefaultMTU.
	MTU int
	// LossRate drops that fraction of frames uniformly at random
	// (deterministic given the Sim seed). 0 means lossless.
	LossRate float64
	// BandwidthBps, when non-zero, models transmission time: each frame
	// occupies the medium for size*8/bandwidth, and frames queue behind
	// one another (a busy segment delays later senders). Zero means
	// infinite bandwidth — frames experience latency only. The paper's
	// §2 observes that a mobile host's two path directions "may be
	// significantly different" in both latency and bandwidth; this knob
	// reproduces that.
	BandwidthBps int64
	// JitterMax, when non-zero, adds a uniformly random extra delay in
	// [0, JitterMax) per frame. Frames can overtake one another —
	// deliberate reordering, which transports must tolerate.
	JitterMax vtime.Duration
}

// DefaultMTU is the Ethernet-like default segment MTU.
const DefaultMTU = 1500

// Segment is a broadcast link-layer domain. Every attached NIC receives
// frames addressed to its MAC or to the broadcast MAC.
type Segment struct {
	sim  *Sim
	name string
	opts SegmentOpts
	nics []*NIC
	// byMAC maps unicast destinations directly to their NIC. It is built
	// lazily once the segment outgrows segIndexMin attachments: most
	// simulated segments hold a handful of NICs, where a linear scan of
	// nics beats a map and costs no allocation. promisc counts attached
	// promiscuous NICs; when zero, unicast frames skip the receiver scan
	// entirely.
	byMAC   map[MAC]*NIC
	promisc int
	// busyUntil is when the medium finishes transmitting the last queued
	// frame (bandwidth modeling).
	busyUntil vtime.Time
	// down administratively disables the segment: every frame offered
	// while down is dropped and counted. Fault schedules flip it to model
	// link flaps and partition windows.
	down bool
	// rng is the segment's own randomness stream (loss, corruption-bit
	// and jitter draws), derived from (seed, index) at construction.
	// Owning a stream — instead of sharing the scheduler's — keeps each
	// segment's draw sequence independent of every other entity's, so a
	// sharded engine can replay any segment in isolation.
	rng *rand.Rand
	// remote, when non-nil, marks this Segment as one half of a split
	// (cross-shard) point-to-point link: frames that survive this half's
	// drop/impairment checks are delivered on the peer half, which lives
	// in another region Sim, via the shard group's lookahead channel
	// rather than the local scheduler. See SplitPair.
	remote *remoteEnd
	// fault, when non-nil, is consulted once per frame that survived the
	// MTU and uniform-loss checks; the returned Impairment can drop,
	// duplicate, corrupt or delay the frame. Nil (the default) costs one
	// predictable branch on the fast path. The frame is passed by value
	// (a pointer would make every frame escape to the heap, hook or no
	// hook); hooks read it, the segment applies the verdict.
	fault func(Frame) Impairment
	// Stats
	Delivered     uint64
	DroppedMTU    uint64
	DroppedLoss   uint64
	DroppedNoDest uint64
	DroppedDown   uint64
	DroppedFault  uint64
	// DuplicatedFrames / CorruptedFrames / ReorderedFrames count
	// impairments applied by the fault hook (a reorder is an ExtraDelay
	// that lets later frames overtake this one).
	DuplicatedFrames uint64
	CorruptedFrames  uint64
	ReorderedFrames  uint64
	BytesCarried     uint64
	// QueueDelayTotal accumulates time frames spent waiting for the
	// medium (serialization queueing), for utilization analysis.
	QueueDelayTotal vtime.Duration
}

// NewSegment creates a broadcast segment.
func (s *Sim) NewSegment(name string, opts SegmentOpts) *Segment {
	if opts.MTU == 0 {
		opts.MTU = DefaultMTU
	}
	seg := &Segment{sim: s, name: name, opts: opts, rng: s.Sched.NewStream()}
	s.segments = append(s.segments, seg)
	return seg
}

// remoteEnd is the cross-shard side of a split Segment.
type remoteEnd struct {
	peer  *Segment
	sched *vtime.Scheduler
}

// SplitPair builds a cross-shard point-to-point link as two half
// segments, one per region Sim: each half owns its own randomness stream,
// stats and bandwidth state, and a frame sent on one half is delivered to
// the NICs attached to the *other* half after the usual latency. The
// link's Latency must be positive — it is registered with the shard group
// as the pair's conservative lookahead window (a frame entering the wire
// now cannot pop out at the far end sooner), which is what lets the two
// regions run concurrently. Both sims' schedulers must be shards of the
// same vtime.Group.
//
// Fault state is per half: SetDown/SetFaultHook on one half affects
// frames entering the wire from that side only, so partitioning a split
// link means downing both halves.
func SplitPair(a, b *Sim, name string, opts SegmentOpts) (*Segment, *Segment, error) {
	if opts.Latency <= 0 {
		return nil, nil, fmt.Errorf("netsim: SplitPair(%s): latency %v must be positive — the link latency is "+
			"the pair's shard lookahead window", name, opts.Latency)
	}
	ga, gb := a.Sched.Group(), b.Sched.Group()
	if ga == nil || ga != gb {
		return nil, nil, fmt.Errorf("netsim: SplitPair(%s): both sims must run on shards of the same vtime.Group", name)
	}
	sa, sb := a.Sched.ShardID(), b.Sched.ShardID()
	if sa == sb {
		return nil, nil, fmt.Errorf("netsim: SplitPair(%s): both ends on shard %d — use NewSegment for an intra-region link", name, sa)
	}
	if err := ga.EnsureLink(sa, sb, opts.Latency); err != nil {
		return nil, nil, err
	}
	if err := ga.EnsureLink(sb, sa, opts.Latency); err != nil {
		return nil, nil, err
	}
	ha := a.NewSegment(name, opts)
	hb := b.NewSegment(name, opts)
	ha.remote = &remoteEnd{peer: hb, sched: b.Sched}
	hb.remote = &remoteEnd{peer: ha, sched: a.Sched}
	return ha, hb, nil
}

// RemotePeer returns the far half of a split segment, or nil for an
// ordinary (single-shard) segment. The peer belongs to another shard:
// callers must not touch its mutable state outside the delivery queue —
// the shardpin analyzer enforces this.
func (seg *Segment) RemotePeer() *Segment {
	if seg.remote == nil {
		return nil
	}
	return seg.remote.peer
}

// Name returns the segment's name.
func (seg *Segment) Name() string { return seg.name }

// Sim returns the simulation (region) that owns the segment. Topology
// builders use it to place hosts in the region of the LAN they sit on.
func (seg *Segment) Sim() *Sim { return seg.sim }

// MTU returns the segment MTU.
func (seg *Segment) MTU() int { return seg.opts.MTU }

// Latency returns the one-way propagation delay.
func (seg *Segment) Latency() vtime.Duration { return seg.opts.Latency }

// NICs returns the currently attached NICs.
func (seg *Segment) NICs() []*NIC { return seg.nics }

// Impairment is a fault hook's verdict on one frame. The zero value passes
// the frame through untouched.
type Impairment struct {
	// Drop discards the frame (counted in DroppedFault).
	Drop bool
	// Cause attributes a Drop in the metrics drop-cause vector. The zero
	// value is metrics.DropFault, so hooks that don't care still count
	// under the generic fault bucket; the faults package sets specific
	// causes (gilbert_elliott, blackhole) so chaos invariants can read
	// per-mechanism counts from one registry.
	Cause metrics.DropCause
	// Duplicate delivers a second, independent copy of the frame at the
	// same delay (counted in DuplicatedFrames).
	Duplicate bool
	// Corrupt flips one RNG-chosen payload bit before delivery, so
	// checksums — not the simulator — must catch the damage (counted in
	// CorruptedFrames).
	Corrupt bool
	// ExtraDelay adds bounded extra latency to this frame only; later
	// frames can overtake it (counted in ReorderedFrames).
	ExtraDelay vtime.Duration
}

// SetFaultHook installs (or with nil removes) the segment's fault hook.
// The hook runs after the MTU and uniform-loss checks, draws any
// randomness it needs from the sim scheduler's RNG, and must not retain
// or mutate the frame's payload.
func (seg *Segment) SetFaultHook(fn func(Frame) Impairment) { seg.fault = fn }

// SetDown marks the segment administratively down (true) or up (false).
// Frames offered while down are dropped and counted in DroppedDown;
// frames already in flight still deliver (the partition cuts the cable,
// it does not vaporize signals already past it).
func (seg *Segment) SetDown(v bool) { seg.down = v }

// Down reports whether the segment is administratively down.
func (seg *Segment) Down() bool { return seg.down }

// dropDown counts and traces a frame offered to an administratively-down
// segment. Kept out of line so the fast path pays only the branch.
//
//go:noinline
func (seg *Segment) dropDown(f Frame) {
	seg.DroppedDown++
	seg.sim.Metrics.Drop(metrics.DropDown)
	seg.sim.Trace.record(Event{Kind: EventDropDown, Time: seg.sim.Now(), Where: seg.name})
	PutBuf(f.Buf)
}

// segIndexMin is the attachment count beyond which a segment builds its
// MAC index; below it, unicast dispatch linear-scans nics.
const segIndexMin = 8

func (seg *Segment) attach(n *NIC) {
	if seg.nics == nil {
		seg.nics = make([]*NIC, 0, 4)
	}
	n.segIdx = len(seg.nics)
	seg.nics = append(seg.nics, n)
	if seg.byMAC != nil {
		seg.byMAC[n.mac] = n
	} else if len(seg.nics) > segIndexMin {
		seg.byMAC = make(map[MAC]*NIC, 2*len(seg.nics))
		for _, m := range seg.nics {
			seg.byMAC[m.mac] = m
		}
	}
	if n.promiscuous {
		seg.promisc++
	}
}

func (seg *Segment) detach(n *NIC) {
	// The NIC records its own slot, so removal is O(1): a handoff storm
	// detaches thousands of NICs from cell segments, and the old linear
	// scan made fleet-scale roaming quadratic in the population.
	i := n.segIdx
	if i < 0 || i >= len(seg.nics) || seg.nics[i] != n {
		return
	}
	last := len(seg.nics) - 1
	if i != last {
		seg.nics[i] = seg.nics[last]
		seg.nics[i].segIdx = i
	}
	// Nil the trailing slot: the old append-based removal left the final
	// element aliased in the backing array, keeping detached NICs (and
	// their whole host) reachable.
	seg.nics[last] = nil
	seg.nics = seg.nics[:last]
	n.segIdx = -1
	if seg.byMAC != nil {
		delete(seg.byMAC, n.mac)
	}
	if n.promiscuous {
		seg.promisc--
	}
}

// send transmits a frame on the segment. Delivery is scheduled after the
// segment latency; unicast frames go to the owning NIC only, broadcast to
// all NICs except the sender.
func (seg *Segment) send(from *NIC, f Frame) {
	if seg.down {
		seg.dropDown(f)
		return
	}
	if len(f.Payload) > seg.opts.MTU {
		seg.DroppedMTU++
		seg.sim.Metrics.Drop(metrics.DropMTU)
		var detail string
		if seg.sim.Trace.Detailing() {
			var buf [40]byte
			b := append(buf[:0], "payload "...)
			b = strconv.AppendInt(b, int64(len(f.Payload)), 10)
			b = append(b, " > mtu "...)
			b = strconv.AppendInt(b, int64(seg.opts.MTU), 10)
			detail = string(b)
		}
		seg.sim.Trace.record(Event{
			Kind: EventDropMTU, Time: seg.sim.Now(), Where: seg.name,
			Detail: detail,
		})
		PutBuf(f.Buf)
		return
	}
	if t := seg.sim.tap; t != nil {
		t(f)
	}
	if seg.opts.LossRate > 0 && seg.rng.Float64() < seg.opts.LossRate {
		seg.DroppedLoss++
		seg.sim.Metrics.Drop(metrics.DropLoss)
		seg.sim.Trace.record(Event{Kind: EventDropLoss, Time: seg.sim.Now(), Where: seg.name})
		PutBuf(f.Buf)
		return
	}
	var imp Impairment
	if seg.fault != nil {
		imp = seg.fault(f)
		if imp.Drop {
			seg.DroppedFault++
			seg.sim.Metrics.Drop(imp.Cause)
			seg.sim.Trace.record(Event{Kind: EventDropFault, Time: seg.sim.Now(), Where: seg.name})
			PutBuf(f.Buf)
			return
		}
		if imp.Corrupt && len(f.Payload) > 0 && f.Buf != nil {
			// Flip one bit in the pooled (link-owned) payload; anything
			// above the link layer must detect this via checksums. Frames
			// without a pooled buffer may alias sender-retained storage,
			// so those are left alone.
			bit := seg.rng.Int63n(int64(len(f.Payload)) * 8)
			f.Payload[bit/8] ^= 1 << uint(bit%8)
			seg.CorruptedFrames++
		}
	}
	wireBytes := len(f.Payload) + FrameHeaderLen
	seg.BytesCarried += uint64(wireBytes)
	seg.sim.Metrics.LinkFrames.Inc()
	seg.sim.Metrics.LinkBytes.Add(uint64(wireBytes))
	// Bandwidth model: the frame must wait for the medium, then occupies
	// it for its serialization time; propagation latency follows.
	delay := seg.opts.Latency
	if seg.opts.JitterMax > 0 {
		delay += vtime.Duration(seg.rng.Int63n(int64(seg.opts.JitterMax)))
	}
	if imp.ExtraDelay > 0 {
		delay += imp.ExtraDelay
		seg.ReorderedFrames++
	}
	if seg.opts.BandwidthBps > 0 {
		now := seg.sim.Now()
		start := seg.busyUntil
		if start.Before(now) {
			start = now
		}
		seg.QueueDelayTotal += start.Sub(now)
		txTime := vtime.Duration(int64(wireBytes) * 8 * 1e9 / seg.opts.BandwidthBps)
		seg.busyUntil = start.Add(txTime)
		delay = seg.busyUntil.Sub(now) + seg.opts.Latency + imp.ExtraDelay
	}
	// Receivers are resolved at *delivery* time, in runDelivery — what
	// matters physically is who is attached when the frame arrives, and
	// resolving there keeps every read of NIC attachment state on the
	// shard that owns the receiving half of a split link. The pooled
	// delivery job carries only the frame and the receiving segment.
	d := deliveryPool.Get().(*delivery)
	d.seg = seg
	d.frame = f
	if r := seg.remote; r != nil {
		// Split link: the frame crosses a shard boundary. The delivery
		// executes on the peer's scheduler; the link latency ≤ delay is
		// the lookahead slack SplitPair registered for this pair.
		//mob4x4vet:allow shardpin handing the peer half to its own shard's delivery queue is the sanctioned crossing
		d.seg = r.peer
		seg.sim.Sched.SendTo(r.sched, seg.sim.Now().Add(delay), runDelivery, d)
	} else {
		seg.sim.Sched.AfterArg(delay, runDelivery, d)
	}
	if imp.Duplicate {
		// Deliver an independent copy at the same delay: its payload is
		// cloned into a fresh pooled buffer because the original is
		// recycled when its own delivery completes. Duplicates skip
		// bandwidth accounting — they model a confused relay, not a
		// second transmission by the sender.
		seg.DuplicatedFrames++
		db := GetBuf()
		db.B = append(db.B, f.Payload...)
		dd := deliveryPool.Get().(*delivery)
		dd.seg = d.seg
		dd.frame = f
		dd.frame.Payload = db.B
		dd.frame.Buf = db
		if r := seg.remote; r != nil {
			seg.sim.Sched.SendTo(r.sched, seg.sim.Now().Add(delay), runDelivery, dd)
		} else {
			seg.sim.Sched.AfterArg(delay, runDelivery, dd)
		}
	}
}

// NIC is a network interface attached to (at most) one segment. The
// owning stack provides the receive callback.
type NIC struct {
	sim     *Sim
	name    string
	mac     MAC
	segment *Segment
	// segIdx is this NIC's slot in segment.nics (-1 while detached),
	// maintained by attach/detach so detaching is O(1) instead of a scan.
	segIdx      int
	recv        func(*NIC, Frame)
	promiscuous bool
	// Stats
	TxFrames, RxFrames uint64
	TxBytes            uint64
}

// NewNIC allocates a NIC with a fresh MAC. It starts detached.
func (s *Sim) NewNIC(name string) *NIC {
	return &NIC{sim: s, name: name, mac: s.AllocMAC(), segIdx: -1}
}

// Name returns the interface name.
func (n *NIC) Name() string { return n.name }

// MAC returns the interface's link-layer address.
func (n *NIC) MAC() MAC { return n.mac }

// Segment returns the segment the NIC is attached to, or nil.
func (n *NIC) Segment() *Segment { return n.segment }

// Attached reports whether the NIC is connected to a segment.
func (n *NIC) Attached() bool { return n.segment != nil }

// MTU returns the MTU of the attached segment, or DefaultMTU if detached.
func (n *NIC) MTU() int {
	if n.segment == nil {
		return DefaultMTU
	}
	return n.segment.MTU()
}

// SetReceiver installs the frame receive callback (called by the owning
// stack exactly once during setup).
func (n *NIC) SetReceiver(fn func(*NIC, Frame)) { n.recv = fn }

// SetPromiscuous makes the NIC receive all frames on its segment.
func (n *NIC) SetPromiscuous(v bool) {
	if v == n.promiscuous {
		return
	}
	n.promiscuous = v
	if n.segment != nil {
		if v {
			n.segment.promisc++
		} else {
			n.segment.promisc--
		}
	}
}

// Attach connects the NIC to a segment, detaching from any previous one —
// this is the "mobile host moves" primitive.
func (n *NIC) Attach(seg *Segment) {
	if n.segment != nil {
		n.segment.detach(n)
	}
	n.segment = seg
	if seg != nil {
		seg.attach(n)
	}
}

// Detach disconnects the NIC (mobile host in transit / laptop asleep).
func (n *NIC) Detach() { n.Attach(nil) }

// Rehome moves a detached NIC to another region Sim: host migration
// re-parents a mobile node's interfaces onto the destination region's
// scheduler, tracer and metrics. The NIC must be detached — an attached
// NIC is reachable from its old segment, which lives on the old shard.
func (n *NIC) Rehome(sim *Sim) {
	if n.segment != nil {
		assert.Unreachable("netsim: Rehome of %s while attached to %s", n.name, n.segment.name)
	}
	n.sim = sim
}

// Send transmits a frame from this NIC onto its segment. Sending while
// detached silently drops the frame (the cable is unplugged).
func (n *NIC) Send(f Frame) {
	f.Src = n.mac
	if n.segment == nil {
		PutBuf(f.Buf) // cable unplugged: the frame dies here
		return
	}
	n.TxFrames++
	n.TxBytes += uint64(len(f.Payload) + FrameHeaderLen)
	n.segment.send(n, f)
}

// SortedSegmentNames is a test/debug helper returning segment names in
// lexical order.
func (s *Sim) SortedSegmentNames() []string {
	names := make([]string, 0, len(s.segments))
	for _, seg := range s.segments {
		names = append(names, seg.name)
	}
	sort.Strings(names)
	return names
}
