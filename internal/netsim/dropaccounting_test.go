package netsim

import "testing"

// TestSegmentDropAccounting pins the contract that every dropped frame is
// accounted exactly once: the segment counter for its drop reason
// increments by one AND the matching trace event is recorded exactly once.
func TestSegmentDropAccounting(t *testing.T) {
	cases := []struct {
		name    string
		opts    SegmentOpts
		prep    func(sim *Sim, seg *Segment, sender, receiver *NIC)
		payload int
		counter func(seg *Segment) uint64
		kind    EventKind
	}{
		{
			name:    "mtu",
			opts:    SegmentOpts{MTU: 100},
			payload: 200,
			counter: func(seg *Segment) uint64 { return seg.DroppedMTU },
			kind:    EventDropMTU,
		},
		{
			name:    "loss",
			opts:    SegmentOpts{LossRate: 1.0},
			payload: 50,
			counter: func(seg *Segment) uint64 { return seg.DroppedLoss },
			kind:    EventDropLoss,
		},
		{
			name: "nodest",
			opts: SegmentOpts{},
			prep: func(_ *Sim, _ *Segment, _, receiver *NIC) {
				receiver.Detach() // nobody left to hear the unicast
			},
			payload: 50,
			counter: func(seg *Segment) uint64 { return seg.DroppedNoDest },
			kind:    EventDropNoDest,
		},
		{
			name: "down",
			opts: SegmentOpts{},
			prep: func(_ *Sim, seg *Segment, _, _ *NIC) {
				seg.SetDown(true)
			},
			payload: 50,
			counter: func(seg *Segment) uint64 { return seg.DroppedDown },
			kind:    EventDropDown,
		},
		{
			name: "fault",
			opts: SegmentOpts{},
			prep: func(_ *Sim, seg *Segment, _, _ *NIC) {
				seg.SetFaultHook(func(Frame) Impairment { return Impairment{Drop: true} })
			},
			payload: 50,
			counter: func(seg *Segment) uint64 { return seg.DroppedFault },
			kind:    EventDropFault,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sim := NewSim(1)
			seg := sim.NewSegment("lan", tc.opts)
			sender := sim.NewNIC("tx")
			receiver := sim.NewNIC("rx")
			delivered := 0
			receiver.SetReceiver(func(*NIC, Frame) { delivered++ })
			sender.Attach(seg)
			receiver.Attach(seg)
			if tc.prep != nil {
				tc.prep(sim, seg, sender, receiver)
			}
			base := BufOutstanding()

			buf := GetBuf()
			buf.B = append(buf.B, make([]byte, tc.payload)...)
			sender.Send(Frame{Dst: receiver.MAC(), Type: EtherTypeIPv4, Payload: buf.B, Buf: buf})
			sim.Sched.Run()

			if got := tc.counter(seg); got != 1 {
				t.Errorf("drop counter = %d, want exactly 1", got)
			}
			if got := sim.Trace.Count(tc.kind); got != 1 {
				t.Errorf("Trace.Count(%s) = %d, want exactly 1", tc.kind, got)
			}
			if delivered != 0 {
				t.Errorf("frame delivered despite %s drop", tc.name)
			}
			// The dropped frame's pooled buffer must have been recycled.
			if n := BufOutstanding() - base; n != 0 {
				t.Errorf("BufOutstanding grew by %d after drop, want 0", n)
			}
			// No other drop reason fired.
			total := seg.DroppedMTU + seg.DroppedLoss + seg.DroppedNoDest + seg.DroppedDown + seg.DroppedFault
			if total != 1 {
				t.Errorf("total drops = %d, want 1 (single accounting)", total)
			}
		})
	}
}

// TestSegmentDeliveryNotAccountedAsDrop is the control: a delivered frame
// leaves every drop counter at zero.
func TestSegmentDeliveryNotAccountedAsDrop(t *testing.T) {
	sim := NewSim(1)
	seg := sim.NewSegment("lan", SegmentOpts{})
	sender := sim.NewNIC("tx")
	receiver := sim.NewNIC("rx")
	delivered := 0
	receiver.SetReceiver(func(*NIC, Frame) { delivered++ })
	sender.Attach(seg)
	receiver.Attach(seg)

	buf := GetBuf()
	buf.B = append(buf.B, []byte("payload")...)
	sender.Send(Frame{Dst: receiver.MAC(), Type: EtherTypeIPv4, Payload: buf.B, Buf: buf})
	sim.Sched.Run()

	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if total := seg.DroppedMTU + seg.DroppedLoss + seg.DroppedNoDest + seg.DroppedDown + seg.DroppedFault; total != 0 {
		t.Errorf("drop counters = %d on a clean delivery", total)
	}
}
